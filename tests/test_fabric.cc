// Fabric tests: frame codec round-trips and hostile-input decode (truncated,
// oversized, bad magic, CRC mismatch, version mismatch), message payload
// codecs with untrusted counts, endpoint parsing, and live worker/client
// integration — remote-vs-local bit-for-bit parity, hostile frames against a
// live worker (disconnect + counted, never a crash), universe-checksum
// handshake rejection, the heartbeat-driven breaker-open bound, and the
// reconnect -> half-open probe -> closed cycle. The FabricSoak suite
// (connect/disconnect churn while workers restart) carries the "stress"
// ctest label and runs under TSan in CI.

#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apk/apk.h"
#include "core/model_store.h"
#include "core/study.h"
#include "fabric/backend.h"
#include "fabric/messages.h"
#include "fabric/remote_client.h"
#include "fabric/transport.h"
#include "fabric/wire.h"
#include "fabric/worker.h"
#include "ingest/apk_blob.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "serve/farm_pool.h"
#include "serve/serving_model.h"
#include "synth/corpus.h"
#include "util/byte_io.h"
#include "util/crc32.h"

namespace apichecker::fabric {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

const android::ApiUniverse& TestUniverse() {
  static const android::ApiUniverse universe = [] {
    android::UniverseConfig config;
    config.num_apis = 6'000;
    return android::ApiUniverse::Generate(config);
  }();
  return universe;
}

core::ApiChecker TrainedChecker() {
  static const std::vector<uint8_t> blob = [] {
    synth::CorpusConfig corpus_config;
    synth::CorpusGenerator generator(TestUniverse(), corpus_config);
    core::StudyConfig study_config;
    study_config.num_apps = 1'000;
    const core::StudyDataset study =
        core::RunStudy(TestUniverse(), generator, study_config);
    core::ApiChecker checker(TestUniverse(), {});
    checker.TrainFromStudy(study);
    return core::SerializeChecker(checker);
  }();
  auto checker = core::DeserializeChecker(TestUniverse(), blob);
  EXPECT_TRUE(checker.ok());
  return std::move(*checker);
}

std::shared_ptr<const serve::ModelSnapshot> Snapshot() {
  return std::make_shared<const serve::ModelSnapshot>(1, TrainedChecker());
}

std::vector<apk::ApkFile> MakeApks(uint64_t seed, size_t count = 1) {
  synth::CorpusConfig config;
  config.seed = seed;
  config.update_fraction = 0.0;
  synth::CorpusGenerator generator(TestUniverse(), config);
  std::vector<apk::ApkFile> apks;
  for (size_t i = 0; i < count; ++i) {
    auto parsed =
        apk::ParseApk(synth::BuildApkBytes(generator.Next(), TestUniverse()));
    EXPECT_TRUE(parsed.ok());
    apks.push_back(std::move(*parsed));
  }
  return apks;
}

// Fresh unix-socket path per call, under the system temp dir (socket paths
// have a ~100-char limit, so no deep scratch trees).
std::string ScratchSocket() {
  static std::atomic<uint64_t> counter{0};
  return (fs::temp_directory_path() /
          ("apichecker_fab_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock"))
      .string();
}

emu::FarmConfig SmallFarm() {
  emu::FarmConfig farm;
  farm.num_emulators = 2;
  farm.worker_threads = 1;
  return farm;
}

std::unique_ptr<FarmWorker> StartWorker(const std::string& socket_path,
                                        uint32_t worker_id = 0) {
  FarmWorkerConfig config;
  config.endpoint = "unix:" + socket_path;
  config.farm = SmallFarm();
  config.farm.farm_id = worker_id;
  config.worker_id = worker_id;
  auto worker = std::make_unique<FarmWorker>(TestUniverse(), config);
  auto started = worker->Start();
  EXPECT_TRUE(started.ok()) << (started.ok() ? "" : started.error());
  return worker;
}

RemoteClientConfig FastClient(const std::string& socket_path) {
  RemoteClientConfig config;
  config.endpoint = "unix:" + socket_path;
  config.connect_timeout = milliseconds(500);
  config.rpc_timeout = milliseconds(10'000);
  config.heartbeat_interval = milliseconds(100);
  config.heartbeat_miss_threshold = 1;
  config.reconnect_backoff_min = milliseconds(20);
  config.reconnect_backoff_max = milliseconds(100);
  return config;
}

double CounterValue(const char* name) {
  return obs::MetricsRegistry::Default().counter(name).value();
}

// The monitor thread connects asynchronously; batch-path tests wait for the
// first handshake instead of racing it.
bool WaitConnected(const RemoteFarmClient& client,
                   milliseconds deadline = milliseconds(5000)) {
  const auto start = steady_clock::now();
  while (steady_clock::now() - start < deadline) {
    if (client.connected()) {
      return true;
    }
    std::this_thread::sleep_for(milliseconds(2));
  }
  return client.connected();
}

// ---------------------------------------------------------------- wire codec

TEST(Wire, FrameRoundTripsEveryType) {
  for (MsgType type : {MsgType::kHello, MsgType::kHelloAck, MsgType::kPing,
                       MsgType::kPong, MsgType::kSetModel, MsgType::kSetModelAck,
                       MsgType::kRunBatch, MsgType::kBatchResult, MsgType::kError}) {
    const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
    const std::vector<uint8_t> bytes = EncodeFrame(type, payload);
    EXPECT_EQ(bytes.size(), kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
    const DecodeResult decoded = DecodeFrame(bytes);
    ASSERT_EQ(decoded.status, DecodeStatus::kOk) << MsgTypeName(type);
    EXPECT_EQ(decoded.frame.type, type);
    EXPECT_EQ(decoded.frame.version, kProtocolVersion);
    EXPECT_EQ(decoded.frame.payload, payload);
    EXPECT_EQ(decoded.consumed, bytes.size());
  }
  // Empty payload is legal (kPong travels empty).
  const std::vector<uint8_t> empty = EncodeFrame(MsgType::kPong, std::vector<uint8_t>{});
  EXPECT_EQ(DecodeFrame(empty).status, DecodeStatus::kOk);
}

TEST(Wire, TruncatedHeaderAndBody) {
  const std::vector<uint8_t> bytes = EncodeFrame(MsgType::kPing, std::vector<uint8_t>{9, 9, 9});
  for (size_t len = 0; len < bytes.size(); ++len) {
    const DecodeResult decoded =
        DecodeFrame(std::span<const uint8_t>(bytes.data(), len));
    EXPECT_EQ(decoded.status, DecodeStatus::kTruncated) << "prefix " << len;
  }
}

TEST(Wire, BadMagicDetected) {
  std::vector<uint8_t> bytes = EncodeFrame(MsgType::kPing, std::vector<uint8_t>{1});
  bytes[0] ^= 0xFF;
  EXPECT_EQ(DecodeFrame(bytes).status, DecodeStatus::kBadMagic);
}

TEST(Wire, OversizedLengthRejectedBeforeAllocation) {
  // A header declaring a 4 GiB payload with almost no bytes behind it: the
  // decoder must classify by the declared length, not attempt to buffer it.
  util::ByteWriter writer;
  writer.PutU32(kFrameMagic);
  writer.PutU16(kProtocolVersion);
  writer.PutU16(static_cast<uint16_t>(MsgType::kRunBatch));
  writer.PutU32(0xFFFF'FFF0u);
  const std::vector<uint8_t> bytes = writer.TakeBytes();
  EXPECT_EQ(DecodeFrame(bytes).status, DecodeStatus::kOversized);
}

TEST(Wire, CrcMismatchDetected) {
  std::vector<uint8_t> bytes = EncodeFrame(MsgType::kSetModel, std::vector<uint8_t>{7, 7, 7, 7});
  bytes[kFrameHeaderBytes + 1] ^= 0x01;  // Flip one payload bit.
  EXPECT_EQ(DecodeFrame(bytes).status, DecodeStatus::kCrcMismatch);
}

// Re-signs a frame after mutating header fields, so the CRC is valid and the
// decoder's version check (not the CRC check) is what fires.
std::vector<uint8_t> ResignFrame(std::vector<uint8_t> bytes) {
  uint32_t crc = util::Crc32Init();
  crc = util::Crc32Update(crc, std::span<const uint8_t>(
                                   bytes.data() + 4,
                                   bytes.size() - 4 - kFrameTrailerBytes));
  crc = util::Crc32Final(crc);
  std::memcpy(bytes.data() + bytes.size() - kFrameTrailerBytes, &crc, 4);
  return bytes;
}

TEST(Wire, VersionMismatchDetectedOnIntactFrame) {
  std::vector<uint8_t> bytes = EncodeFrame(MsgType::kPing, std::vector<uint8_t>{1, 2});
  const uint16_t alien = 0x7F7F;
  std::memcpy(bytes.data() + 4, &alien, 2);
  EXPECT_EQ(DecodeFrame(ResignFrame(std::move(bytes))).status,
            DecodeStatus::kBadVersion);
}

TEST(Wire, ProtocolErrorCounterLabelsByKind) {
  const double before = CounterValue(obs::names::kFabricProtocolErrorsTotal);
  CountProtocolError(DecodeStatus::kBadMagic);
  CountProtocolError(DecodeStatus::kCrcMismatch);
  EXPECT_EQ(CounterValue(obs::names::kFabricProtocolErrorsTotal), before + 2);
}

// ------------------------------------------------------------- message codecs

TEST(Messages, HelloAndAckRoundTrip) {
  Hello hello;
  hello.channel = Channel::kHeartbeat;
  hello.farm_id = 7;
  hello.universe_checksum = 0xDEADBEEFCAFEF00Dull;
  hello.client_name = "front-end";
  auto decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->channel, Channel::kHeartbeat);
  EXPECT_EQ(decoded->farm_id, 7u);
  EXPECT_EQ(decoded->universe_checksum, hello.universe_checksum);
  EXPECT_EQ(decoded->client_name, "front-end");

  HelloAck ack;
  ack.worker_id = 3;
  ack.pid = 4242;
  ack.universe_checksum = hello.universe_checksum;
  auto ack_decoded = DecodeHelloAck(EncodeHelloAck(ack));
  ASSERT_TRUE(ack_decoded.ok());
  EXPECT_EQ(ack_decoded->worker_id, 3u);
  EXPECT_EQ(ack_decoded->pid, 4242u);
}

TEST(Messages, BatchResultRoundTripsEveryReportField) {
  emu::BatchResult result;
  result.makespan_minutes = 12.5;
  result.total_emulation_minutes = 40.25;
  result.crashes = 2;
  result.fallbacks = 1;
  emu::EmulationReport report;
  report.observed_apis = {10, 20, 30};
  report.observed_api_counts = {1, 2, 3};
  report.requested_permissions = {"CAMERA", "SEND_SMS"};
  report.manifest_intent_filters = {"MAIN"};
  report.total_invocations = 123;
  report.tracked_invocations = 45;
  report.emulation_minutes = 3.5;
  report.rac = 0.75;
  report.distinct_apis_invoked = 3;
  report.emulator_detected = true;
  report.crashed = false;
  report.retried = true;
  report.fell_back = false;
  result.reports.push_back(report);

  auto decoded = DecodeBatchResult(EncodeBatchResult(result));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->reports.size(), 1u);
  const emu::EmulationReport& got = decoded->reports[0];
  EXPECT_EQ(got.observed_apis, report.observed_apis);
  EXPECT_EQ(got.observed_api_counts, report.observed_api_counts);
  EXPECT_EQ(got.requested_permissions, report.requested_permissions);
  EXPECT_EQ(got.total_invocations, 123u);
  EXPECT_EQ(got.tracked_invocations, 45u);
  EXPECT_EQ(got.emulation_minutes, 3.5);
  EXPECT_EQ(got.rac, 0.75);
  EXPECT_TRUE(got.emulator_detected);
  EXPECT_TRUE(got.retried);
  EXPECT_FALSE(got.fell_back);
  EXPECT_EQ(decoded->makespan_minutes, 12.5);
  EXPECT_EQ(decoded->crashes, 2u);
  // Round-trip stability: encode(decode(x)) == encode(x) is the bit-for-bit
  // contract remote parity rests on.
  EXPECT_EQ(EncodeBatchResult(*decoded), EncodeBatchResult(result));
}

TEST(Messages, HostileElementCountRejectedWithoutAllocation) {
  // A RunBatch payload claiming ~500M APKs backed by 4 bytes: the decoder
  // must reject on "count exceeds remaining bytes", not reserve gigabytes.
  util::ByteWriter writer;
  writer.PutU32(1);              // model_version
  writer.PutUleb128(500'000'000);  // apk count
  writer.PutU32(0);
  auto decoded = DecodeRunBatch(writer.TakeBytes());
  EXPECT_FALSE(decoded.ok());

  // Same attack one level down: a blob length larger than the payload.
  util::ByteWriter inner;
  inner.PutU32(1);
  inner.PutUleb128(1);
  inner.PutUleb128(0xFFFF'FFFFu);  // blob length
  inner.PutU8(0);
  EXPECT_FALSE(DecodeRunBatch(inner.TakeBytes()).ok());
}

TEST(Endpoint, ParseVariants) {
  auto unix_ep = ParseEndpoint("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_ep.ok());
  EXPECT_EQ(unix_ep->kind, EndpointKind::kUnix);
  EXPECT_EQ(unix_ep->path, "/tmp/x.sock");
  EXPECT_EQ(unix_ep->ToString(), "unix:/tmp/x.sock");

  auto tcp_ep = ParseEndpoint("tcp:127.0.0.1:9021");
  ASSERT_TRUE(tcp_ep.ok());
  EXPECT_EQ(tcp_ep->kind, EndpointKind::kTcp);
  EXPECT_EQ(tcp_ep->host, "127.0.0.1");
  EXPECT_EQ(tcp_ep->port, 9021);

  EXPECT_FALSE(ParseEndpoint("").ok());
  EXPECT_FALSE(ParseEndpoint("carrier-pigeon:coop").ok());
  EXPECT_FALSE(ParseEndpoint("tcp:no-port").ok());
  EXPECT_FALSE(ParseEndpoint("tcp:host:99999").ok());
  EXPECT_FALSE(ParseEndpoint("unix:").ok());
}

// ------------------------------------------------------- live worker + client

TEST(FabricWorker, RemoteBatchMatchesLocalBitForBit) {
  const std::string socket_path = ScratchSocket();
  auto worker = StartWorker(socket_path);
  auto snapshot = Snapshot();
  const std::vector<apk::ApkFile> apks = MakeApks(11, 3);

  LocalFarmBackend local(TestUniverse(), SmallFarm());
  const emu::BatchResult local_result = local.ExecuteBatch(
      apks, snapshot->version, snapshot->checker, snapshot->tracked);
  ASSERT_FALSE(local_result.farm_fault);

  RemoteFarmClient remote(TestUniverse(), FastClient(socket_path));
  ASSERT_TRUE(WaitConnected(remote));
  const emu::BatchResult remote_result = remote.ExecuteBatch(
      apks, snapshot->version, snapshot->checker, snapshot->tracked);
  ASSERT_FALSE(remote_result.farm_fault) << remote_result.fault_reason;
  EXPECT_GT(remote.last_rpc_ms(), 0.0);
  EXPECT_EQ(local.last_rpc_ms(), 0.0);

  // The worker re-parsed the APKs from rebuilt container bytes, restored the
  // model from its serialized blob, and ran the same deterministic farm — the
  // whole result must serialize identically to the in-process run.
  EXPECT_EQ(EncodeBatchResult(remote_result), EncodeBatchResult(local_result));

  // A second batch on the same connection skips the model re-sync.
  const double syncs = CounterValue(obs::names::kFabricModelSyncsTotal);
  const emu::BatchResult again = remote.ExecuteBatch(
      apks, snapshot->version, snapshot->checker, snapshot->tracked);
  ASSERT_FALSE(again.farm_fault);
  EXPECT_EQ(CounterValue(obs::names::kFabricModelSyncsTotal), syncs);

  remote.StopMonitor();
  worker->Stop();
  fs::remove(socket_path);
}

// Sends raw bytes on the wire, bypassing the frame codec.
void SendRaw(const Socket& socket, std::span<const uint8_t> bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(socket.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return;  // Worker already dropped us — the test asserts via RecvFrame.
    }
    sent += static_cast<size_t>(n);
  }
}

TEST(FabricWorker, HostileFramesDisconnectAndCountNeverCrash) {
  const std::string socket_path = ScratchSocket();
  auto worker = StartWorker(socket_path);
  const Endpoint endpoint = *ParseEndpoint("unix:" + socket_path);

  // Each hostile payload on a fresh connection: the worker must drop the
  // connection (our next read fails), count a protocol error, and keep
  // serving new connections.
  std::vector<uint8_t> bad_magic(32, 0x58);  // "XXXX..." — never a frame.
  std::vector<uint8_t> oversized;
  {
    util::ByteWriter writer;
    writer.PutU32(kFrameMagic);
    writer.PutU16(kProtocolVersion);
    writer.PutU16(static_cast<uint16_t>(MsgType::kRunBatch));
    writer.PutU32(0xFFFF'FF00u);  // Declared length far beyond the cap.
    oversized = writer.TakeBytes();
  }
  std::vector<uint8_t> crc_mismatch = EncodeFrame(MsgType::kPing, std::vector<uint8_t>{1, 2, 3});
  crc_mismatch[kFrameHeaderBytes] ^= 0xFF;
  std::vector<uint8_t> bad_version = EncodeFrame(MsgType::kPing, std::vector<uint8_t>{1, 2, 3});
  {
    const uint16_t alien = 0x2222;
    std::memcpy(bad_version.data() + 4, &alien, 2);
    bad_version = ResignFrame(std::move(bad_version));
  }

  const double errors_before = CounterValue(obs::names::kFabricProtocolErrorsTotal);
  size_t hostile_sent = 0;
  for (const std::vector<uint8_t>* hostile :
       {&bad_magic, &oversized, &crc_mismatch, &bad_version}) {
    auto socket = Socket::Connect(endpoint, milliseconds(1000));
    ASSERT_TRUE(socket.ok());
    socket->SetRecvTimeout(milliseconds(2000));
    SendRaw(*socket, *hostile);
    ++hostile_sent;
    // The worker never answers a hostile frame; it just severs the link.
    auto reply = socket->RecvFrame();
    EXPECT_FALSE(reply.ok());
  }
  EXPECT_GE(CounterValue(obs::names::kFabricProtocolErrorsTotal),
            errors_before + hostile_sent);

  // A half-frame followed by disconnect (client death mid-send) must also be
  // harmless — it surfaces as a truncated read, not a protocol error loop.
  {
    auto socket = Socket::Connect(endpoint, milliseconds(1000));
    ASSERT_TRUE(socket.ok());
    const std::vector<uint8_t> good = EncodeFrame(MsgType::kPing, std::vector<uint8_t>{1});
    SendRaw(*socket, std::span<const uint8_t>(good.data(), 5));
  }

  // The worker survived all of it: a well-formed handshake still succeeds.
  auto socket = Socket::Connect(endpoint, milliseconds(1000));
  ASSERT_TRUE(socket.ok());
  socket->SetRecvTimeout(milliseconds(2000));
  Hello hello;
  hello.channel = Channel::kRpc;
  hello.universe_checksum = UniverseChecksum(TestUniverse());
  hello.client_name = "post-hostility-probe";
  ASSERT_TRUE(socket->SendFrame(MsgType::kHello, EncodeHello(hello)).ok());
  auto ack = socket->RecvFrame();
  ASSERT_TRUE(ack.ok()) << ack.error();
  EXPECT_EQ(ack->type, MsgType::kHelloAck);

  worker->Stop();
  fs::remove(socket_path);
}

TEST(FabricWorker, UniverseChecksumMismatchFailsHandshake) {
  const std::string socket_path = ScratchSocket();
  auto worker = StartWorker(socket_path);
  const Endpoint endpoint = *ParseEndpoint("unix:" + socket_path);

  auto socket = Socket::Connect(endpoint, milliseconds(1000));
  ASSERT_TRUE(socket.ok());
  socket->SetRecvTimeout(milliseconds(2000));
  Hello hello;
  hello.universe_checksum = 0x1234;  // Wrong universe.
  ASSERT_TRUE(socket->SendFrame(MsgType::kHello, EncodeHello(hello)).ok());
  auto reply = socket->RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MsgType::kError);
  // And then the worker hangs up.
  EXPECT_FALSE(socket->RecvFrame().ok());

  worker->Stop();
  fs::remove(socket_path);
}

// ------------------------------------------------- breaker + pool integration

std::vector<std::unique_ptr<FarmBackend>> OneRemoteBackend(
    const std::string& socket_path) {
  std::vector<std::unique_ptr<FarmBackend>> backends;
  backends.push_back(std::make_unique<RemoteFarmClient>(TestUniverse(),
                                                        FastClient(socket_path)));
  return backends;
}

// Polls pool stats until the predicate holds or the deadline passes; returns
// elapsed milliseconds.
template <typename Pred>
double PollUntil(const serve::FarmPool& pool, Pred pred, milliseconds deadline) {
  const auto start = steady_clock::now();
  while (steady_clock::now() - start < deadline) {
    if (pred(pool.stats())) {
      break;
    }
    std::this_thread::sleep_for(milliseconds(2));
  }
  return std::chrono::duration<double, std::milli>(steady_clock::now() - start)
      .count();
}

TEST(FabricBreaker, DeadWorkerOpensBreakerWithinOneHeartbeatInterval) {
  const std::string socket_path = ScratchSocket();
  auto worker = StartWorker(socket_path);

  serve::FarmPoolConfig pool_config;
  serve::FarmPool pool(pool_config, OneRemoteBackend(socket_path));
  // Wait for the initial connection (a cold client starts breaker-open from
  // the first failed connect, so "connected" = breaker closed).
  PollUntil(pool, [](const serve::FarmPoolStats& s) {
    return s.healthy_farms == 1;
  }, milliseconds(5000));
  ASSERT_EQ(pool.stats().healthy_farms, 1u);

  // Sever the worker. The client's heartbeat channel dies with it, so the
  // next ping (at most one heartbeat_interval away) fails and force-opens
  // the breaker — no batch has to be risked to notice.
  worker->Stop();
  const double elapsed_ms = PollUntil(pool, [](const serve::FarmPoolStats& s) {
    const serve::FarmStats& farm = s.farms[0];
    return farm.breaker == serve::BreakerState::kOpen && farm.conn_lost;
  }, milliseconds(5000));

  const serve::FarmPoolStats stats = pool.stats();
  ASSERT_EQ(stats.farms[0].breaker, serve::BreakerState::kOpen);
  EXPECT_TRUE(stats.farms[0].conn_lost);
  EXPECT_EQ(stats.farms[0].breaker_opens_conn, 1u);
  EXPECT_EQ(stats.farms[0].breaker_opens_fault, 0u);
  EXPECT_EQ(stats.healthy_farms, 0u);
  // One heartbeat interval (100 ms) + scheduling slack. Killing the link
  // makes the in-flight recv fail immediately, so in practice this is far
  // faster; the bound is the contract.
  EXPECT_LE(elapsed_ms, 100.0 + 400.0);

  // With the only farm breaker-open and the link down, a submission is
  // rejected visibly, never hung.
  std::promise<serve::PoolRejectReason> rejected;
  auto future = rejected.get_future();
  std::vector<ingest::ApkBlob> blobs;
  blobs.push_back(ingest::ApkBlob::FromBytes(
      synth::BuildApkBytes(synth::CorpusGenerator(TestUniverse(), {}).Next(),
                           TestUniverse())));
  ASSERT_TRUE(pool.Submit(
      std::move(blobs), Snapshot(), 0,
      [](const emu::BatchResult&, const std::vector<size_t>&) {
        FAIL() << "batch completed on a dead fabric";
      },
      [&](serve::PoolRejectReason reason, const std::vector<size_t>&) {
        rejected.set_value(reason);
      }));
  ASSERT_EQ(future.wait_for(milliseconds(5000)), std::future_status::ready);
  EXPECT_EQ(future.get(), serve::PoolRejectReason::kNoHealthyFarms);

  pool.Close();
  fs::remove(socket_path);
}

TEST(FabricBreaker, ReconnectTriggersHalfOpenProbeThenCloses) {
  const std::string socket_path = ScratchSocket();
  auto worker = StartWorker(socket_path);

  serve::FarmPoolConfig pool_config;
  serve::FarmPool pool(pool_config, OneRemoteBackend(socket_path));
  PollUntil(pool, [](const serve::FarmPoolStats& s) {
    return s.healthy_farms == 1;
  }, milliseconds(5000));

  worker->Stop();
  PollUntil(pool, [](const serve::FarmPoolStats& s) {
    return s.farms[0].breaker == serve::BreakerState::kOpen;
  }, milliseconds(5000));
  ASSERT_EQ(pool.stats().farms[0].breaker, serve::BreakerState::kOpen);

  // Restart the worker on the same endpoint: the client's reconnect loop
  // (bounded backoff) finds it, reports kRestored, and the breaker becomes
  // probe-eligible immediately — the next batch is the half-open probe, and
  // its success closes the breaker.
  worker = StartWorker(socket_path);
  PollUntil(pool, [](const serve::FarmPoolStats& s) {
    return !s.farms[0].conn_lost;
  }, milliseconds(5000));
  ASSERT_FALSE(pool.stats().farms[0].conn_lost);

  std::promise<bool> completed;
  auto future = completed.get_future();
  std::vector<ingest::ApkBlob> blobs;
  blobs.push_back(ingest::ApkBlob::FromBytes(
      synth::BuildApkBytes(synth::CorpusGenerator(TestUniverse(), {}).Next(),
                           TestUniverse())));
  ASSERT_TRUE(pool.Submit(
      std::move(blobs), Snapshot(), 0,
      [&](const emu::BatchResult&, const std::vector<size_t>&) {
        completed.set_value(true);
      },
      [&](serve::PoolRejectReason, const std::vector<size_t>&) {
        completed.set_value(false);
      }));
  ASSERT_EQ(future.wait_for(milliseconds(10'000)), std::future_status::ready);
  EXPECT_TRUE(future.get());

  const serve::FarmPoolStats stats = pool.stats();
  EXPECT_EQ(stats.farms[0].breaker, serve::BreakerState::kClosed);
  EXPECT_EQ(stats.healthy_farms, 1u);
  EXPECT_EQ(stats.farms[0].batches_completed, 1u);

  pool.Close();
  worker->Stop();
  fs::remove(socket_path);
}

// A blocking socket syscall interrupted by a signal whose handler was
// installed WITHOUT SA_RESTART returns EINTR instead of resuming. Every
// send/recv/connect/accept in the transport must retry, or a stray SIGUSR1
// (profilers, timers, debuggers) tears down a healthy connection. This storm
// interrupts both ends of a live echo session — connect and accept included —
// and large frames make mid-transfer interruption all but certain.
TEST(FabricSocket, SyscallsSurviveSignalStormWithoutSaRestart) {
  struct sigaction noop {};
  noop.sa_handler = [](int) {};
  sigemptyset(&noop.sa_mask);
  noop.sa_flags = 0;  // Deliberately NOT SA_RESTART.
  struct sigaction saved {};
  ASSERT_EQ(::sigaction(SIGUSR1, &noop, &saved), 0);

  const std::string socket_path = ScratchSocket();
  auto bound = Listener::Bind(*ParseEndpoint("unix:" + socket_path));
  ASSERT_TRUE(bound.ok()) << bound.error();
  Listener listener = std::move(*bound);

  constexpr int kRounds = 20;
  std::promise<pthread_t> echo_tid_promise;
  std::future<pthread_t> echo_tid = echo_tid_promise.get_future();
  std::thread echo([&] {
    echo_tid_promise.set_value(pthread_self());
    auto conn = listener.Accept();  // Interrupted accept must retry.
    ASSERT_TRUE(conn.ok()) << conn.error();
    for (int i = 0; i < kRounds; ++i) {
      auto frame = conn->RecvFrame();
      ASSERT_TRUE(frame.ok()) << "round " << i << ": " << frame.error();
      auto sent = conn->SendFrame(frame->type, frame->payload);
      ASSERT_TRUE(sent.ok()) << "round " << i << ": " << sent.error();
    }
  });

  const pthread_t victim_a = echo_tid.get();
  const pthread_t victim_b = pthread_self();
  std::atomic<bool> storming{true};
  std::thread storm([&] {
    while (storming.load()) {
      pthread_kill(victim_a, SIGUSR1);
      pthread_kill(victim_b, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Connect under fire (interrupted connect must retry), then push frames
  // large enough that send/recv are interrupted mid-transfer many times.
  auto socket =
      Socket::Connect(*ParseEndpoint("unix:" + socket_path), milliseconds(2'000));
  ASSERT_TRUE(socket.ok()) << socket.error();
  std::vector<uint8_t> payload(1 << 20);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  for (int i = 0; i < kRounds; ++i) {
    auto sent = socket->SendFrame(MsgType::kUploadChunk, payload);
    ASSERT_TRUE(sent.ok()) << "round " << i << ": " << sent.error();
    auto echoed = socket->RecvFrame();
    ASSERT_TRUE(echoed.ok()) << "round " << i << ": " << echoed.error();
    ASSERT_EQ(echoed->payload.size(), payload.size());
    EXPECT_EQ(echoed->payload, payload) << "payload corrupted in round " << i;
  }

  storming.store(false);
  storm.join();
  echo.join();
  listener.Close();
  fs::remove(socket_path);
  ::sigaction(SIGUSR1, &saved, nullptr);
}

// ------------------------------------------------------------------- soak

// Connect/disconnect churn: clients come and go while the worker is
// periodically killed and restarted on the same endpoint. Exercises the
// monitor-thread lifecycle (TryConnect racing Stop, MarkLost racing
// StopMonitor, listener teardown racing accept) under TSan in CI. The
// assertions are liveness and a final clean batch — individual RPCs are
// allowed to fail, that is the point.
TEST(FabricSoak, ConnectDisconnectChurnSurvives) {
  const std::string socket_path = ScratchSocket();
  auto worker = StartWorker(socket_path);
  auto snapshot = Snapshot();
  const std::vector<apk::ApkFile> apks = MakeApks(99, 1);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches_ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 10 && !stop.load(); ++i) {
        RemoteClientConfig config = FastClient(socket_path);
        config.heartbeat_interval = milliseconds(20 + t * 7);
        RemoteFarmClient client(TestUniverse(), config);
        if (i % 2 == 0) {
          const emu::BatchResult result = client.ExecuteBatch(
              apks, snapshot->version, snapshot->checker, snapshot->tracked);
          if (!result.farm_fault) {
            batches_ok.fetch_add(1);
          }
        } else {
          std::this_thread::sleep_for(milliseconds(5));
        }
        client.StopMonitor();
      }
    });
  }

  // Kill and resurrect the worker under the clients' feet.
  for (int round = 0; round < 3; ++round) {
    std::this_thread::sleep_for(milliseconds(120));
    worker->Stop();
    std::this_thread::sleep_for(milliseconds(30));
    worker = StartWorker(socket_path);
  }

  for (std::thread& thread : clients) {
    thread.join();
  }
  stop.store(true);

  // The fabric stayed live through the churn: a fresh client completes a
  // clean batch against the final worker incarnation.
  RemoteFarmClient client(TestUniverse(), FastClient(socket_path));
  ASSERT_TRUE(WaitConnected(client));
  const emu::BatchResult result = client.ExecuteBatch(
      apks, snapshot->version, snapshot->checker, snapshot->tracked);
  EXPECT_FALSE(result.farm_fault) << result.fault_reason;
  client.StopMonitor();

  worker->Stop();
  fs::remove(socket_path);
}

}  // namespace
}  // namespace apichecker::fabric
