// Unit tests for src/android: the API universe generator, catalogues,
// permission maps, dependency closure, and SDK evolution.

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "android/api_universe.h"
#include "android/catalogues.h"

namespace apichecker::android {
namespace {

UniverseConfig SmallConfig() {
  UniverseConfig config;
  config.num_apis = 5'000;
  return config;
}

TEST(Catalogues, ContainFigure13Names) {
  const auto permissions = BuiltinPermissions();
  const auto intents = BuiltinIntents();
  auto has_permission = [&](const std::string& name) {
    for (const auto& p : permissions) {
      if (p.name == name) {
        return true;
      }
    }
    return false;
  };
  auto has_intent = [&](const std::string& name) {
    for (const auto& i : intents) {
      if (i == name) {
        return true;
      }
    }
    return false;
  };
  // Every permission/intent named in the paper's Fig. 13 must exist.
  EXPECT_TRUE(has_permission("android.permission.SEND_SMS"));
  EXPECT_TRUE(has_permission("android.permission.RECEIVE_SMS"));
  EXPECT_TRUE(has_permission("android.permission.RECEIVE_MMS"));
  EXPECT_TRUE(has_permission("android.permission.RECEIVE_WAP_PUSH"));
  EXPECT_TRUE(has_permission("android.permission.READ_SMS"));
  EXPECT_TRUE(has_permission("android.permission.ACCESS_NETWORK_STATE"));
  EXPECT_TRUE(has_permission("android.permission.SYSTEM_ALERT_WINDOW"));
  EXPECT_TRUE(has_permission("android.permission.RECEIVE_BOOT_COMPLETED"));
  EXPECT_TRUE(has_intent("android.provider.Telephony.SMS_RECEIVED"));
  EXPECT_TRUE(has_intent("android.net.wifi.STATE_CHANGE"));
  EXPECT_TRUE(has_intent("android.app.action.DEVICE_ADMIN_ENABLED"));
  EXPECT_TRUE(has_intent("android.bluetooth.adapter.action.STATE_CHANGED"));
  EXPECT_TRUE(has_intent("android.intent.action.ACTION_BATTERY_OKAY"));
}

TEST(Catalogues, ProtectionLevelsSpanAllThree) {
  int normal = 0, dangerous = 0, signature = 0;
  for (const auto& p : BuiltinPermissions()) {
    switch (p.level) {
      case Protection::kNormal:
        ++normal;
        break;
      case Protection::kDangerous:
        ++dangerous;
        break;
      case Protection::kSignature:
        ++signature;
        break;
      default:
        ADD_FAILURE() << "unexpected level";
    }
  }
  EXPECT_GT(normal, 10);
  EXPECT_GT(dangerous, 15);
  EXPECT_GT(signature, 8);
}

TEST(ApiUniverse, GeneratesConfiguredCounts) {
  const ApiUniverse universe = ApiUniverse::Generate(SmallConfig());
  EXPECT_EQ(universe.num_apis(), 5'000u);
  EXPECT_EQ(universe.RestrictivePermissionApis().size(), 112u);
  EXPECT_EQ(universe.SensitiveOperationApis().size(), 70u);
  EXPECT_EQ(universe.AttackerUsefulApis().size(),
            universe.config().num_attacker_useful);
  EXPECT_EQ(universe.CommonOpApis().size(), 13u);  // Fig 4's frequent negatives.
  EXPECT_EQ(universe.sdk_level(), 27);
}

TEST(ApiUniverse, NamesAreUnique) {
  const ApiUniverse universe = ApiUniverse::Generate(SmallConfig());
  std::unordered_set<std::string> names;
  for (ApiId id = 0; id < universe.num_apis(); ++id) {
    EXPECT_TRUE(names.insert(universe.api(id).name).second)
        << "duplicate: " << universe.api(id).name;
  }
}

TEST(ApiUniverse, AnchorsResolvableByName) {
  const ApiUniverse universe = ApiUniverse::Generate(SmallConfig());
  const auto sms = universe.FindByName("android.telephony.SmsManager.sendTextMessage");
  ASSERT_TRUE(sms.has_value());
  const ApiInfo& info = universe.api(*sms);
  EXPECT_EQ(info.protection, Protection::kDangerous);
  EXPECT_TRUE(info.attacker_useful);
  ASSERT_GE(info.permission, 0);
  EXPECT_EQ(universe.permissions()[static_cast<size_t>(info.permission)].name,
            "android.permission.SEND_SMS");
  EXPECT_FALSE(universe.FindByName("does.not.Exist.method").has_value());
}

TEST(ApiUniverse, RestrictiveApisCarryRestrictivePermissions) {
  const ApiUniverse universe = ApiUniverse::Generate(SmallConfig());
  for (ApiId id : universe.RestrictivePermissionApis()) {
    const ApiInfo& info = universe.api(id);
    ASSERT_GE(info.permission, 0);
    EXPECT_TRUE(IsRestrictive(universe.permissions()[static_cast<size_t>(info.permission)].level));
    EXPECT_TRUE(IsRestrictive(info.protection));
  }
}

TEST(ApiUniverse, IntentRelatedApisAreSensitive) {
  const ApiUniverse universe = ApiUniverse::Generate(SmallConfig());
  size_t intent_related = 0;
  for (ApiId id = 0; id < universe.num_apis(); ++id) {
    if (universe.api(id).intent_related) {
      ++intent_related;
      EXPECT_NE(universe.api(id).sensitive, SensitiveOp::kNone)
          << universe.api(id).name << " carries intents but is not in Set-S";
    }
  }
  EXPECT_GE(intent_related, 4u);  // startActivity / sendBroadcast / ...
}

TEST(ApiUniverse, DeterministicForSameSeed) {
  const ApiUniverse a = ApiUniverse::Generate(SmallConfig());
  const ApiUniverse b = ApiUniverse::Generate(SmallConfig());
  ASSERT_EQ(a.num_apis(), b.num_apis());
  for (ApiId id = 0; id < a.num_apis(); ++id) {
    EXPECT_EQ(a.api(id).name, b.api(id).name);
    EXPECT_EQ(a.api(id).popularity, b.api(id).popularity);
    EXPECT_EQ(a.api(id).implemented_via, b.api(id).implemented_via);
  }
}

TEST(ApiUniverse, InvocationRatesNormalizedToTarget) {
  const ApiUniverse universe = ApiUniverse::Generate(SmallConfig());
  double per_kevent = 0.0;
  for (ApiId id = 0; id < universe.num_apis(); ++id) {
    per_kevent += static_cast<double>(universe.api(id).popularity) *
                  universe.api(id).invocations_per_kevent;
  }
  // One Monkey event should trigger roughly the configured invocation count
  // for a typical app (paper: ~8,460 per event).
  EXPECT_NEAR(per_kevent / 1000.0, universe.config().invocations_per_event,
              universe.config().invocations_per_event * 0.01);
}

TEST(ApiUniverse, DependencyEdgesPointAtSpecialPools) {
  const ApiUniverse universe = ApiUniverse::Generate(SmallConfig());
  size_t with_dependency = 0;
  for (ApiId id = 0; id < universe.num_apis(); ++id) {
    const int32_t via = universe.api(id).implemented_via;
    if (via < 0) {
      continue;
    }
    ++with_dependency;
    const ApiInfo& target = universe.api(static_cast<ApiId>(via));
    EXPECT_TRUE(IsRestrictive(target.protection) || target.sensitive != SensitiveOp::kNone ||
                target.attacker_useful);
    EXPECT_LT(static_cast<ApiId>(via), id);  // Edges point at older APIs.
  }
  // ~9.6% of APIs delegate (§5.4).
  EXPECT_NEAR(static_cast<double>(with_dependency) / universe.num_apis(), 0.096, 0.02);
}

TEST(ApiUniverse, TransitiveDependentsMatchDirectEdges) {
  const ApiUniverse universe = ApiUniverse::Generate(SmallConfig());
  const std::vector<ApiId> roots = universe.RestrictivePermissionApis();
  const std::vector<ApiId> dependents = universe.TransitiveDependents(roots);
  std::set<ApiId> root_set(roots.begin(), roots.end());
  for (ApiId id : dependents) {
    EXPECT_EQ(root_set.count(id), 0u);  // Roots are excluded.
  }
  // Every direct dependent of a root must be found.
  for (ApiId id = 0; id < universe.num_apis(); ++id) {
    const int32_t via = universe.api(id).implemented_via;
    if (via >= 0 && root_set.count(static_cast<ApiId>(via)) != 0) {
      EXPECT_TRUE(std::find(dependents.begin(), dependents.end(), id) != dependents.end());
    }
  }
}

TEST(ApiUniverse, AddSdkLevelAppendsApis) {
  ApiUniverse universe = ApiUniverse::Generate(SmallConfig());
  const size_t before = universe.num_apis();
  const auto added = universe.AddSdkLevel(28, 200, 77);
  EXPECT_EQ(added.size(), 200u);
  EXPECT_EQ(universe.num_apis(), before + 200);
  EXPECT_EQ(universe.sdk_level(), 28);
  for (ApiId id : added) {
    EXPECT_GE(id, before);
    EXPECT_EQ(universe.api(id).sdk_level, 28);
  }
}

TEST(ApiUniverse, NewSdkApisIncludeSpecialKinds) {
  ApiUniverse universe = ApiUniverse::Generate(SmallConfig());
  const auto added = universe.AddSdkLevel(28, 2'000, 77);
  size_t restrictive = 0, sensitive = 0, useful = 0;
  for (ApiId id : added) {
    const ApiInfo& info = universe.api(id);
    restrictive += IsRestrictive(info.protection) ? 1 : 0;
    sensitive += info.sensitive != SensitiveOp::kNone ? 1 : 0;
    useful += info.attacker_useful ? 1 : 0;
  }
  EXPECT_GT(restrictive, 0u);
  EXPECT_GT(sensitive, 0u);
  EXPECT_GT(useful, 0u);
}

TEST(Types, NamesAreStable) {
  EXPECT_STREQ(SensitiveOpName(SensitiveOp::kCrypto), "crypto");
  EXPECT_STREQ(SensitiveOpName(SensitiveOp::kDynamicCode), "dynamic-code");
  EXPECT_STREQ(ProtectionName(Protection::kDangerous), "dangerous");
  EXPECT_TRUE(IsRestrictive(Protection::kSignature));
  EXPECT_FALSE(IsRestrictive(Protection::kNormal));
}

}  // namespace
}  // namespace apichecker::android
