// Unit tests for src/util: RNG, CRC-32, byte IO, strings, tables, result,
// thread pool.

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "util/bounded_queue.h"
#include "util/byte_io.h"
#include "util/sha1.h"
#include "util/crc32.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace apichecker::util {
namespace {

TEST(SplitMix64, IsDeterministicAndMixes) {
  EXPECT_EQ(SplitMix64(0), SplitMix64(0));
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
  // Single-bit input changes flip roughly half the output bits.
  const uint64_t a = SplitMix64(0x1234);
  const uint64_t b = SplitMix64(0x1235);
  const int differing = std::popcount(a ^ b);
  EXPECT_GT(differing, 16);
  EXPECT_LT(differing, 48);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBoundedInRange) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, UniformIntCoversEndpoints) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 20'000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(29);
  std::vector<double> vs;
  for (int i = 0; i < 20'001; ++i) {
    vs.push_back(rng.LogNormal(5.0, 0.7));
  }
  std::nth_element(vs.begin(), vs.begin() + 10'000, vs.end());
  EXPECT_NEAR(vs[10'000], 5.0, 0.25);
}

TEST(Rng, PoissonMean) {
  Rng rng(31);
  for (double mean : {0.5, 4.0, 120.0}) {
    double sum = 0.0;
    for (int i = 0; i < 20'000; ++i) {
      sum += static_cast<double>(rng.Poisson(mean));
    }
    EXPECT_NEAR(sum / 20'000.0, mean, mean * 0.05 + 0.05);
  }
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 20'000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(41);
  const auto perm = rng.Permutation(257);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<uint32_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 30u);
  for (uint32_t v : seen) {
    EXPECT_LT(v, 100u);
  }
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 10).size(), 5u);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(Rng, ForkIsIndependentOfParentState) {
  Rng a(99);
  const Rng fork_before = a.Fork(1);
  a.Next();
  a.Next();
  Rng fork_after = a.Fork(1);
  Rng fork_before_copy = fork_before;
  // Forking depends only on the origin seed and stream id, not on how much
  // of the parent stream was consumed.
  EXPECT_EQ(fork_before_copy.Next(), fork_after.Next());
  EXPECT_NE(a.Fork(1).Next(), a.Fork(2).Next());
}

TEST(ZipfSampler, HeadDominates) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(47);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50'000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
  double pmf_sum = 0.0;
  for (size_t r = 0; r < zipf.size(); ++r) {
    pmf_sum += zipf.Pmf(r);
  }
  EXPECT_NEAR(pmf_sum, 1.0, 1e-9);
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value: CRC of "123456789" is 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(Crc32({reinterpret_cast<const uint8_t*>(s.data()), s.size()}), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31);
  }
  uint32_t state = Crc32Init();
  state = Crc32Update(state, std::span<const uint8_t>(data).subspan(0, 100));
  state = Crc32Update(state, std::span<const uint8_t>(data).subspan(100));
  EXPECT_EQ(Crc32Final(state), Crc32(data));
}

TEST(ByteIo, RoundTripsPrimitives) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutString("hello");
  const auto bytes = w.TakeBytes();
  ByteReader r(bytes);
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU16(), 0x1234);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

class Uleb128RoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Uleb128RoundTrip, RoundTrips) {
  ByteWriter w;
  w.PutUleb128(GetParam());
  const auto bytes = w.TakeBytes();
  ByteReader r(bytes);
  EXPECT_EQ(*r.ReadUleb128(), GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(EdgeValues, Uleb128RoundTrip,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull, 129ull, 16'383ull,
                                           16'384ull, 0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull));

TEST(ByteIo, UnderrunIsError) {
  const std::vector<uint8_t> bytes = {1, 2};
  ByteReader r(bytes);
  EXPECT_FALSE(r.ReadU32().ok());
  ByteReader r2(bytes);
  EXPECT_FALSE(r2.ReadBytes(3).ok());
}

TEST(ByteIo, TruncatedUlebIsError) {
  const std::vector<uint8_t> bytes = {0x80, 0x80};  // Continuation never ends.
  ByteReader r(bytes);
  EXPECT_FALSE(r.ReadUleb128().ok());
}

TEST(ByteIo, PatchU32Overwrites) {
  ByteWriter w;
  w.PutU32(0);
  w.PutU32(42);
  w.PatchU32(0, 0xCAFEBABE);
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadU32(), 0xCAFEBABEu);
  EXPECT_EQ(*r.ReadU32(), 42u);
}

TEST(ByteIo, SeekBoundsChecked) {
  const std::vector<uint8_t> bytes = {1, 2, 3};
  ByteReader r(bytes);
  EXPECT_TRUE(r.Seek(3).ok());
  EXPECT_FALSE(r.Seek(4).ok());
}

TEST(Result, ValueAndError) {
  Result<int> ok = 5;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Result<int> bad = Err("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
}

TEST(Strings, FormatAndSplitJoin) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"a", "b"}, "::"), "a::b");
  EXPECT_TRUE(StartsWith("android.permission.SEND_SMS", "android."));
  EXPECT_TRUE(EndsWith("android.permission.SEND_SMS", "SEND_SMS"));
  EXPECT_FALSE(EndsWith("x", "xyz"));
  EXPECT_EQ(FormatPercent(0.986), "98.6%");
  EXPECT_EQ(FormatCount(42'300'000.0), "42.3M");
  EXPECT_EQ(FormatCount(1'500.0), "1.5K");
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22,2"});
  std::ostringstream text, csv;
  t.Print(text);
  t.PrintCsv(csv);
  EXPECT_NE(text.str().find("| alpha"), std::string::npos);
  EXPECT_NE(csv.str().find("\"22,2\""), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, TrySubmitRejectsAboveMaxPending) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  // Occupy the single worker so further tasks stay pending.
  ASSERT_TRUE(pool.TrySubmit(
      [&] {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      },
      /*max_pending=*/4));
  int accepted = 0;
  while (pool.TrySubmit([] {}, /*max_pending=*/4)) {
    ++accepted;
    ASSERT_LT(accepted, 100);  // Must hit the cap, not loop forever.
  }
  EXPECT_EQ(accepted, 3);  // Blocker + 3 queued == max_pending of 4.
  release.store(true);
  pool.Wait();
  // Capacity freed up again after the drain.
  EXPECT_TRUE(pool.TrySubmit([] {}, /*max_pending=*/4));
  pool.Wait();
}

TEST(Sha1, KnownVectors) {
  const auto hex = [](const char* s) {
    return Sha1Hex(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(s), std::char_traits<char>::length(s)));
  };
  EXPECT_EQ(hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  // 1000 'a's: exercises multi-block input and the two-block length tail.
  const std::string a1000(1000, 'a');
  EXPECT_EQ(hex(a1000.c_str()), "291e9a6c66994949b57ba5e650361e98fc36b1ba");
}

TEST(Sha1, DistinctInputsDistinctDigests) {
  std::vector<uint8_t> a = {1, 2, 3, 4};
  std::vector<uint8_t> b = {1, 2, 3, 5};
  EXPECT_NE(Sha1Hex(a), Sha1Hex(b));
  EXPECT_EQ(Sha1Hex(a).size(), 2 * kSha1DigestSize);
}

TEST(BoundedQueue, TryPushRejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // Backpressure: reject, don't grow.
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.capacity(), 2u);
}

// Priority ordering moved up into serve::SubmissionShards' per-class lanes
// (weighted-fair pop); the queue itself is strict FIFO.
TEST(BoundedQueue, PopsInStrictFifoOrder) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  ASSERT_TRUE(queue.TryPush(99));
  EXPECT_EQ(queue.TryPop(), 1);
  EXPECT_EQ(queue.TryPop(), 2);
  EXPECT_EQ(queue.TryPop(), 99);
  EXPECT_EQ(queue.TryPop(), std::nullopt);
}

TEST(BoundedQueue, CloseDrainsRemainingThenReturnsNullopt) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(7));
  ASSERT_TRUE(queue.TryPush(8));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.TryPush(9));  // No new work after close.
  EXPECT_EQ(queue.Pop(), 7);       // Existing work still drains.
  EXPECT_EQ(queue.Pop(), 8);
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_EQ(queue.PopFor(std::chrono::milliseconds(1)), std::nullopt);
}

TEST(BoundedQueue, PopForTimesOutOnEmptyQueue) {
  BoundedQueue<int> queue(2);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.PopFor(std::chrono::milliseconds(10)), std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(5));
}

TEST(BoundedQueue, MpmcStressAccountsForEveryItem) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(16);
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.Pop()) {
        sum.fetch_add(*item);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.Push(p * kPerProducer + i);  // Blocking push: never drops.
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  queue.Close();
  for (auto& t : consumers) {
    t.join();
  }
  constexpr long kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace apichecker::util
