// Unit tests for src/emu: the Monkey model, RAC coverage, the dynamic
// analysis engine's gating/cost semantics, and the device farm.

#include <algorithm>

#include <gtest/gtest.h>

#include "emu/coverage.h"
#include "emu/engine.h"
#include "emu/farm.h"
#include "synth/corpus.h"

namespace apichecker::emu {
namespace {

const android::ApiUniverse& TestUniverse() {
  static const android::ApiUniverse universe = [] {
    android::UniverseConfig config;
    config.num_apis = 6'000;
    return android::ApiUniverse::Generate(config);
  }();
  return universe;
}

apk::ApkFile MakeApp(uint64_t seed, bool malicious = false) {
  synth::CorpusConfig config;
  config.seed = seed;
  config.malicious_fraction = malicious ? 1.0 : 0.0;
  config.update_fraction = 0.0;
  synth::CorpusGenerator gen(TestUniverse(), config);
  const synth::AppProfile profile = gen.Next();
  auto apk = apk::ParseApk(synth::BuildApkBytes(profile, TestUniverse()));
  EXPECT_TRUE(apk.ok());
  return std::move(*apk);
}

TEST(Monkey, StreamHasRequestedShape) {
  MonkeyConfig config;
  config.num_events = 1'000;
  config.pct_touch = 0.7;
  const auto events = GenerateEventStream(config);
  ASSERT_EQ(events.size(), 1'000u);
  size_t touches = 0;
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].timestamp_ms, events[i - 1].timestamp_ms);
  }
  for (const UiEvent& e : events) {
    touches += e.kind == UiEventKind::kTouch ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(touches) / events.size(), 0.7, 0.05);
}

TEST(Monkey, HumanizedStreamPassesRoboticCheck) {
  MonkeyConfig humanized;  // 500 ms throttle, 0.65 touch: the §4.2 tuning.
  humanized.num_events = 256;
  EXPECT_FALSE(LooksRobotic(GenerateEventStream(humanized)));

  MonkeyConfig robotic = humanized;
  robotic.throttle_ms = 0;
  robotic.pct_touch = 1.0;
  EXPECT_TRUE(LooksRobotic(GenerateEventStream(robotic)));
}

TEST(Coverage, ExpectedRacMatchesPaperCalibration) {
  // ~76.5% at 5K events; ~86% at 100K (paper Fig 1).
  EXPECT_NEAR(ExpectedRac(5'000), 0.765, 0.015);
  EXPECT_NEAR(ExpectedRac(100'000), 0.87, 0.02);
  EXPECT_LT(ExpectedRac(500), 0.2);
}

TEST(Coverage, MonotoneInEvents) {
  CoverageModelParams params;
  uint32_t prev = 0;
  for (uint32_t events : {100u, 1'000u, 5'000u, 20'000u, 100'000u}) {
    const CoverageResult r = ComputeCoverage(events, 40, 0xabc, params);
    EXPECT_GE(r.covered_count, prev);
    prev = r.covered_count;
    EXPECT_LE(r.covered_count, 40u);
  }
}

TEST(Coverage, CoveredSetGrowsAsPrefix) {
  const CoverageResult small = ComputeCoverage(2'000, 30, 0x1dea);
  const CoverageResult large = ComputeCoverage(50'000, 30, 0x1dea);
  for (size_t a = 0; a < 30; ++a) {
    if (small.covered[a]) {
      EXPECT_TRUE(large.covered[a]);  // No activity "uncovers" with more events.
    }
  }
}

TEST(Coverage, DeterministicPerSeed) {
  const CoverageResult a = ComputeCoverage(5'000, 25, 7);
  const CoverageResult b = ComputeCoverage(5'000, 25, 7);
  EXPECT_EQ(a.covered, b.covered);
  const CoverageResult c = ComputeCoverage(5'000, 25, 8);
  EXPECT_TRUE(a.covered != c.covered || a.covered_count != c.covered_count ||
              true);  // Different seeds usually differ; both stay valid.
  EXPECT_EQ(c.covered.size(), 25u);
}

TEST(Coverage, ZeroActivities) {
  const CoverageResult r = ComputeCoverage(5'000, 0, 1);
  EXPECT_EQ(r.covered_count, 0u);
  EXPECT_EQ(r.rac, 0.0);
}

TEST(TrackedApiSet, MembershipAndCount) {
  const std::vector<android::ApiId> ids = {1, 5, 5, 9};
  const TrackedApiSet set(ids, 20);
  EXPECT_EQ(set.count(), 3u);
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(6));
  EXPECT_FALSE(set.Contains(100));  // Out of range is safely false.
  EXPECT_EQ(TrackedApiSet::All(20).count(), 20u);
  EXPECT_EQ(TrackedApiSet::None(20).count(), 0u);
}

TEST(Engine, DeterministicReports) {
  const apk::ApkFile apk = MakeApp(1);
  const DynamicAnalysisEngine engine(TestUniverse(), {});
  const TrackedApiSet all = TrackedApiSet::All(TestUniverse().num_apis());
  const EmulationReport a = engine.Run(apk, all);
  const EmulationReport b = engine.Run(apk, all);
  EXPECT_EQ(a.observed_apis, b.observed_apis);
  EXPECT_EQ(a.total_invocations, b.total_invocations);
  EXPECT_DOUBLE_EQ(a.emulation_minutes, b.emulation_minutes);
}

TEST(Engine, TrackedSubsetIsProjection) {
  const apk::ApkFile apk = MakeApp(2, /*malicious=*/true);
  const DynamicAnalysisEngine engine(TestUniverse(), {});
  const TrackedApiSet all = TrackedApiSet::All(TestUniverse().num_apis());
  const EmulationReport full = engine.Run(apk, all);
  ASSERT_FALSE(full.observed_apis.empty());

  // Track only half of the observed APIs: the report must be exactly the
  // intersection, and invocation totals must not change.
  std::vector<android::ApiId> half(full.observed_apis.begin(),
                                   full.observed_apis.begin() +
                                       static_cast<ptrdiff_t>(full.observed_apis.size() / 2));
  const TrackedApiSet subset(half, TestUniverse().num_apis());
  const EmulationReport partial = engine.Run(apk, subset);
  EXPECT_EQ(partial.observed_apis, half);
  EXPECT_EQ(partial.total_invocations, full.total_invocations);
  EXPECT_LE(partial.tracked_invocations, full.tracked_invocations);
}

TEST(Engine, TrackNoneIsCheapestTrackAllIsDearest) {
  const apk::ApkFile apk = MakeApp(3);
  const DynamicAnalysisEngine engine(TestUniverse(), {});
  const auto none = engine.Run(apk, TrackedApiSet::None(TestUniverse().num_apis()));
  const auto all = engine.Run(apk, TrackedApiSet::All(TestUniverse().num_apis()));
  EXPECT_EQ(none.tracked_invocations, 0u);
  EXPECT_TRUE(none.observed_apis.empty());
  EXPECT_GT(all.tracked_invocations, 0u);
  EXPECT_LT(none.emulation_minutes, all.emulation_minutes);
}

TEST(Engine, MoreMonkeyEventsMoreInvocations) {
  const apk::ApkFile apk = MakeApp(4);
  EngineConfig small_config;
  small_config.monkey.num_events = 1'000;
  EngineConfig large_config;
  large_config.monkey.num_events = 20'000;
  const DynamicAnalysisEngine small(TestUniverse(), small_config);
  const DynamicAnalysisEngine large(TestUniverse(), large_config);
  const TrackedApiSet none = TrackedApiSet::None(TestUniverse().num_apis());
  const auto small_report = small.Run(apk, none);
  const auto large_report = large.Run(apk, none);
  EXPECT_GT(large_report.total_invocations, small_report.total_invocations);
  EXPECT_GT(large_report.emulation_minutes, small_report.emulation_minutes);
  EXPECT_GE(large_report.rac, small_report.rac);
}

// Finds an emulator-detecting app from the malicious stream.
apk::ApkFile FindDetectorApp() {
  synth::CorpusConfig config;
  config.malicious_fraction = 1.0;
  config.update_fraction = 0.0;
  synth::CorpusGenerator gen(TestUniverse(), config);
  for (int i = 0; i < 2'000; ++i) {
    const synth::AppProfile p = gen.Next();
    if (p.emulator_sensitivity == synth::EmulatorSensitivity::kDetectsConfiguration) {
      bool has_guarded = false;
      for (const auto& usage : p.usage) {
        has_guarded |= usage.guarded && !usage.via_reflection;
      }
      if (has_guarded) {
        auto apk = apk::ParseApk(synth::BuildApkBytes(p, TestUniverse()));
        EXPECT_TRUE(apk.ok());
        return std::move(*apk);
      }
    }
  }
  ADD_FAILURE() << "no emulator-detecting app found";
  return {};
}

TEST(Engine, AntiDetectionRestoresBehaviour) {
  const apk::ApkFile detector = FindDetectorApp();
  const TrackedApiSet all = TrackedApiSet::All(TestUniverse().num_apis());

  EngineConfig naked;  // Emulator without countermeasures.
  naked.anti_detection = {false, false, false, false};
  EngineConfig enhanced;  // The §4.2 hardened emulator (defaults all-on).
  EngineConfig real;
  real.kind = EngineKind::kRealDevice;

  const auto on_naked = DynamicAnalysisEngine(TestUniverse(), naked).Run(detector, all);
  const auto on_enhanced = DynamicAnalysisEngine(TestUniverse(), enhanced).Run(detector, all);
  const auto on_real = DynamicAnalysisEngine(TestUniverse(), real).Run(detector, all);

  EXPECT_TRUE(on_naked.emulator_detected);
  EXPECT_FALSE(on_enhanced.emulator_detected);
  EXPECT_FALSE(on_real.emulator_detected);
  // The un-hardened emulator sees fewer distinct APIs than a real device;
  // the enhanced emulator sees the same count (§4.2's 98.6% experiment).
  EXPECT_LT(on_naked.distinct_apis_invoked, on_real.distinct_apis_invoked);
  EXPECT_EQ(on_enhanced.distinct_apis_invoked, on_real.distinct_apis_invoked);
}

TEST(Engine, LightweightIsFasterSameObservations) {
  const apk::ApkFile apk = MakeApp(5, /*malicious=*/true);
  EngineConfig google_config;
  EngineConfig light_config;
  light_config.kind = EngineKind::kLightweight;
  light_config.lightweight_incompat_rate = 0.0;  // Isolate the speedup.
  const DynamicAnalysisEngine google(TestUniverse(), google_config);
  const DynamicAnalysisEngine light(TestUniverse(), light_config);
  const TrackedApiSet all = TrackedApiSet::All(TestUniverse().num_apis());
  const auto g = google.Run(apk, all);
  const auto l = light.Run(apk, all);
  EXPECT_EQ(g.observed_apis, l.observed_apis);
  EXPECT_NEAR(l.emulation_minutes / g.emulation_minutes, 0.3, 0.05);
  EXPECT_FALSE(l.fell_back);
}

TEST(Engine, FallbackCostsMoreThanLightweight) {
  EngineConfig forced_fallback;
  forced_fallback.kind = EngineKind::kLightweight;
  forced_fallback.lightweight_incompat_rate = 1.0;  // Every app falls back.
  EngineConfig google_config;
  const DynamicAnalysisEngine falling(TestUniverse(), forced_fallback);
  const DynamicAnalysisEngine google(TestUniverse(), google_config);
  const TrackedApiSet none = TrackedApiSet::None(TestUniverse().num_apis());
  const apk::ApkFile apk = MakeApp(6);
  const auto fb = falling.Run(apk, none);
  const auto g = google.Run(apk, none);
  EXPECT_TRUE(fb.fell_back);
  EXPECT_GT(fb.emulation_minutes, g.emulation_minutes);  // Wasted attempt + full rerun.
}

TEST(Engine, FallbackDisabledStaysLightweight) {
  EngineConfig config;
  config.kind = EngineKind::kLightweight;
  config.lightweight_incompat_rate = 1.0;
  config.enable_fallback = false;
  const DynamicAnalysisEngine engine(TestUniverse(), config);
  const auto report = engine.Run(MakeApp(7), TrackedApiSet::None(TestUniverse().num_apis()));
  EXPECT_FALSE(report.fell_back);
}

TEST(Engine, RunBytesPropagatesParseErrors) {
  const DynamicAnalysisEngine engine(TestUniverse(), {});
  const std::vector<uint8_t> garbage = {1, 2, 3};
  EXPECT_FALSE(engine.RunBytes(garbage, TrackedApiSet::None(1)).ok());
}

TEST(Engine, ObservedCountsParallelAndPositive) {
  const apk::ApkFile apk = MakeApp(21, /*malicious=*/true);
  const DynamicAnalysisEngine engine(TestUniverse(), {});
  const auto report = engine.Run(apk, TrackedApiSet::All(TestUniverse().num_apis()));
  ASSERT_EQ(report.observed_apis.size(), report.observed_api_counts.size());
  uint64_t sum = 0;
  for (uint32_t count : report.observed_api_counts) {
    EXPECT_GT(count, 0u);
    sum += count;
  }
  // Every tracked invocation is attributed to exactly one observed API.
  EXPECT_EQ(sum, report.tracked_invocations);
  EXPECT_TRUE(std::is_sorted(report.observed_apis.begin(), report.observed_apis.end()));
}

TEST(Engine, FuzzingRaisesCoverageAtHigherCost) {
  const apk::ApkFile apk = MakeApp(22);
  EngineConfig monkey_config;
  EngineConfig fuzz_config;
  fuzz_config.exploration = ExplorationStrategy::kCoverageGuidedFuzzing;
  const DynamicAnalysisEngine monkey(TestUniverse(), monkey_config);
  const DynamicAnalysisEngine fuzzer(TestUniverse(), fuzz_config);
  const TrackedApiSet none = TrackedApiSet::None(TestUniverse().num_apis());
  double monkey_rac = 0.0, fuzz_rac = 0.0, monkey_min = 0.0, fuzz_min = 0.0;
  for (uint64_t seed = 30; seed < 60; ++seed) {
    const apk::ApkFile app = MakeApp(seed);
    monkey_rac += monkey.Run(app, none).rac;
    fuzz_rac += fuzzer.Run(app, none).rac;
    monkey_min += monkey.Run(app, none).emulation_minutes;
    fuzz_min += fuzzer.Run(app, none).emulation_minutes;
  }
  EXPECT_GT(fuzz_rac, monkey_rac * 1.05);  // Better coverage...
  EXPECT_GT(fuzz_min, monkey_min * 1.2);   // ...at a real cost.
}

TEST(Farm, BatchCoversAllAppsAndMakespanBounds) {
  synth::CorpusConfig corpus_config;
  synth::CorpusGenerator gen(TestUniverse(), corpus_config);
  std::vector<apk::ApkFile> apks;
  for (int i = 0; i < 32; ++i) {
    auto apk = apk::ParseApk(synth::BuildApkBytes(gen.Next(), TestUniverse()));
    ASSERT_TRUE(apk.ok());
    apks.push_back(std::move(*apk));
  }
  FarmConfig config;
  config.num_emulators = 4;
  config.worker_threads = 2;
  DeviceFarm farm(TestUniverse(), config);
  const BatchResult result =
      farm.RunBatch(apks, TrackedApiSet::None(TestUniverse().num_apis()));
  ASSERT_EQ(result.reports.size(), 32u);
  double max_minutes = 0.0;
  for (const auto& report : result.reports) {
    EXPECT_GT(report.emulation_minutes, 0.0);
    max_minutes = std::max(max_minutes, report.emulation_minutes);
  }
  // Makespan is at least total/4 (perfect packing) and at least the longest
  // single app; it never exceeds the serial total.
  EXPECT_GE(result.makespan_minutes, result.total_emulation_minutes / 4.0 - 1e-9);
  EXPECT_GE(result.makespan_minutes, max_minutes - 1e-9);
  EXPECT_LE(result.makespan_minutes, result.total_emulation_minutes + 1e-9);
}

}  // namespace
}  // namespace apichecker::emu
