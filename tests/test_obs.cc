// Unit tests for src/obs: counters, gauges, lock-striped histograms and
// their quantiles, span tracing, scoped timers, exporters, and the JSON
// dump round-trip.

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace apichecker::obs {
namespace {

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Histogram, BucketsCountSumMinMax) {
  Histogram h(Histogram::LinearBounds(1.0, 1.0, 3));  // bounds {1, 2, 3}.
  h.Observe(0.5);   // bucket 0 (<= 1).
  h.Observe(1.5);   // bucket 1 (<= 2).
  h.Observe(2.5);   // bucket 2 (<= 3).
  h.Observe(99.0);  // overflow bucket.
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 1u);
  EXPECT_EQ(snap.bucket_counts[1], 1u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);
  EXPECT_EQ(snap.bucket_counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.5 + 2.5 + 99.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 99.0);
}

TEST(Histogram, BoundGenerators) {
  const std::vector<double> exp = Histogram::ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
  const std::vector<double> lin = Histogram::LinearBounds(0.5, 0.5, 4);
  ASSERT_EQ(lin.size(), 4u);
  EXPECT_DOUBLE_EQ(lin[0], 0.5);
  EXPECT_DOUBLE_EQ(lin[3], 2.0);
}

TEST(Histogram, QuantilesExactWhileStreamFitsReservoir) {
  // 500 observations from one thread stay inside one stripe's 512-slot
  // reservoir, so quantiles are exact (up to interpolation).
  Histogram h(Histogram::LinearBounds(50.0, 50.0, 10));
  for (int i = 1; i <= 500; ++i) {
    h.Observe(static_cast<double>(i));
  }
  EXPECT_NEAR(h.Quantile(0.5), 250.5, 1.0);
  EXPECT_NEAR(h.Quantile(0.95), 475.0, 1.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 500.0);
}

TEST(Histogram, EmptySnapshotIsSane) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
}

TEST(Metrics, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("apichecker_test_events_total");
  Histogram& hist = registry.histogram("apichecker_test_latency_ms");
  constexpr size_t kIters = 20'000;
  util::ThreadPool pool(8);
  pool.ParallelFor(0, kIters, [&](size_t i) {
    counter.Increment();
    hist.Observe(static_cast<double>(i % 100));
  });
  EXPECT_EQ(counter.value(), kIters);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kIters);
  // Sum over i % 100 for kIters observations: kIters/100 full cycles of 0..99.
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kIters / 100) * 4950.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 99.0);
}

TEST(Metrics, RegistryReturnsStableAddresses) {
  MetricsRegistry registry;
  Counter& a = registry.counter("apichecker_test_a_total");
  for (int i = 0; i < 100; ++i) {
    registry.counter("apichecker_test_filler_" + std::to_string(i) + "_total");
  }
  EXPECT_EQ(&a, &registry.counter("apichecker_test_a_total"));
}

TEST(Metrics, KindMismatchFallsBackToDummy) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("apichecker_test_kind_total");
  counter.Increment(5);
  // Asking for the same name as a gauge must not crash and must not clobber
  // the real counter.
  Gauge& dummy = registry.gauge("apichecker_test_kind_total");
  dummy.Set(123.0);
  EXPECT_EQ(registry.counter("apichecker_test_kind_total").value(), 5u);
}

TEST(Metrics, StandardMetricsRegisteredInDefault) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  const std::vector<MetricSnapshot> snap = reg.Snapshot();
  auto has = [&](std::string_view name) {
    for (const MetricSnapshot& m : snap) {
      if (m.name == name) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has(names::kEmuFarmMakespanMinutes));
  EXPECT_TRUE(has(names::kEmuAppMinutes));
  EXPECT_TRUE(has(names::kCoreClassifyLatencyUs));
  EXPECT_TRUE(has(names::kCoreVerdictMaliciousTotal));
  EXPECT_TRUE(has(names::kMarketOutcomePublishedTotal));
  // Idempotent: re-registering changes nothing.
  const size_t before = reg.size();
  RegisterStandardMetrics(reg);
  EXPECT_EQ(reg.size(), before);
}

TEST(Trace, NestedSpansTrackParentage) {
  MetricsRegistry registry;
  TraceLog log(64);
  EXPECT_EQ(TraceSpan::Current(), nullptr);
  {
    TraceSpan outer("outer", &registry, &log);
    EXPECT_EQ(TraceSpan::Current(), &outer);
    EXPECT_EQ(outer.depth(), 0u);
    EXPECT_EQ(outer.parent(), nullptr);
    {
      TraceSpan inner("inner", &registry, &log);
      EXPECT_EQ(TraceSpan::Current(), &inner);
      EXPECT_EQ(inner.depth(), 1u);
      ASSERT_NE(inner.parent(), nullptr);
      EXPECT_EQ(inner.parent()->name(), "outer");
    }
    EXPECT_EQ(TraceSpan::Current(), &outer);
  }
  EXPECT_EQ(TraceSpan::Current(), nullptr);

  const std::vector<SpanRecord> spans = log.Snapshot();
  ASSERT_EQ(spans.size(), 2u);  // inner finished first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, "outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, "");
  // Each span also landed in a per-name latency histogram.
  EXPECT_EQ(registry.histogram("apichecker_trace_inner_ms").count(), 1u);
  EXPECT_EQ(registry.histogram("apichecker_trace_outer_ms").count(), 1u);
}

TEST(Trace, LogDropsOldestWhenFull) {
  TraceLog log(8);
  for (int i = 0; i < 20; ++i) {
    SpanRecord r;
    r.name = "s" + std::to_string(i);
    log.Record(std::move(r));
  }
  EXPECT_GT(log.dropped(), 0u);
  const std::vector<SpanRecord> spans = log.Snapshot();
  EXPECT_LE(spans.size(), log.capacity());
  // The newest record always survives.
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.back().name, "s19");
}

TEST(Trace, ScopedTimerRecordsOnce) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("apichecker_test_timer_ms");
  {
    ScopedTimer timer(hist, ScopedTimer::Unit::kMicros);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const double elapsed_us = timer.Stop();
    EXPECT_GE(elapsed_us, 500.0);
    timer.Stop();  // Second stop is a no-op.
  }  // Destructor must not record again after Stop().
  EXPECT_EQ(hist.count(), 1u);
}

TEST(Export, PrometheusTextHasHelpTypeAndSamples) {
  MetricsRegistry registry;
  registry.counter("apichecker_test_events_total", "events").Increment(3);
  registry.gauge("apichecker_test_level", "level").Set(1.5);
  registry.histogram("apichecker_test_ms", Histogram::LinearBounds(1, 1, 2)).Observe(0.5);
  const std::string text = ToPrometheusText(registry);
  EXPECT_NE(text.find("# HELP apichecker_test_events_total events"), std::string::npos);
  EXPECT_NE(text.find("# TYPE apichecker_test_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("apichecker_test_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE apichecker_test_level gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE apichecker_test_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("apichecker_test_ms_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("apichecker_test_ms_count 1"), std::string::npos);
}

TEST(Export, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.counter("apichecker_test_events_total").Increment(7);
  registry.gauge("apichecker_test_level").Set(-2.25);
  Histogram& hist = registry.histogram("apichecker_test_ms", Histogram::LinearBounds(10, 10, 4));
  for (int i = 1; i <= 100; ++i) {
    hist.Observe(static_cast<double>(i));
  }
  TraceLog log(16);
  {
    TraceSpan span("roundtrip", &registry, &log);
  }

  const std::string json = ToJson(registry, &log);
  auto parsed = ParseJsonDump(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_DOUBLE_EQ(parsed->counters.at("apichecker_test_events_total"), 7.0);
  EXPECT_DOUBLE_EQ(parsed->gauges.at("apichecker_test_level"), -2.25);
  const ParsedHistogram& h = parsed->histograms.at("apichecker_test_ms");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.sum, 5050.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_NEAR(h.quantiles.at("p50"), 50.5, 1.0);
  EXPECT_EQ(parsed->num_spans, 1u);
  // The roundtrip span's latency histogram also made it into the dump.
  EXPECT_TRUE(parsed->histograms.count("apichecker_trace_roundtrip_ms"));
}

TEST(Export, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseJsonDump("not json").ok());
  EXPECT_FALSE(ParseJsonDump("{\"counters\": [1,2]").ok());
}

TEST(Export, PeriodicReporterFlushesAtLeastOnce) {
  MetricsRegistry registry;
  std::atomic<uint64_t> seen{0};
  {
    PeriodicReporter reporter(std::chrono::milliseconds(5),
                              [&](const MetricsRegistry&) { seen.fetch_add(1); },
                              registry);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    reporter.Stop();
    EXPECT_GE(reporter.flush_count(), 1u);
  }
  EXPECT_GE(seen.load(), 1u);
}

}  // namespace
}  // namespace apichecker::obs
