// Unit tests for src/obs: counters, gauges, lock-striped histograms and
// their quantiles, span tracing, scoped timers, exporters, the JSON
// dump round-trip, the request-scoped TraceCollector, label escaping,
// and the trace/bench file writers.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/bench_report.h"
#include "obs/export.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "obs/trace_collector.h"
#include "rt/runtime.h"
#include "util/thread_pool.h"

namespace apichecker::obs {
namespace {

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Histogram, BucketsCountSumMinMax) {
  Histogram h(Histogram::LinearBounds(1.0, 1.0, 3));  // bounds {1, 2, 3}.
  h.Observe(0.5);   // bucket 0 (<= 1).
  h.Observe(1.5);   // bucket 1 (<= 2).
  h.Observe(2.5);   // bucket 2 (<= 3).
  h.Observe(99.0);  // overflow bucket.
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 1u);
  EXPECT_EQ(snap.bucket_counts[1], 1u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);
  EXPECT_EQ(snap.bucket_counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.5 + 2.5 + 99.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 99.0);
}

TEST(Histogram, BoundGenerators) {
  const std::vector<double> exp = Histogram::ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
  const std::vector<double> lin = Histogram::LinearBounds(0.5, 0.5, 4);
  ASSERT_EQ(lin.size(), 4u);
  EXPECT_DOUBLE_EQ(lin[0], 0.5);
  EXPECT_DOUBLE_EQ(lin[3], 2.0);
}

TEST(Histogram, QuantilesExactWhileStreamFitsReservoir) {
  // 500 observations from one thread stay inside one stripe's 512-slot
  // reservoir, so quantiles are exact (up to interpolation).
  Histogram h(Histogram::LinearBounds(50.0, 50.0, 10));
  for (int i = 1; i <= 500; ++i) {
    h.Observe(static_cast<double>(i));
  }
  EXPECT_NEAR(h.Quantile(0.5), 250.5, 1.0);
  EXPECT_NEAR(h.Quantile(0.95), 475.0, 1.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 500.0);
}

TEST(Histogram, EmptySnapshotIsSane) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
}

TEST(Metrics, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("apichecker_test_events_total");
  Histogram& hist = registry.histogram("apichecker_test_latency_ms");
  constexpr size_t kIters = 20'000;
  util::ThreadPool pool(8);
  pool.ParallelFor(0, kIters, [&](size_t i) {
    counter.Increment();
    hist.Observe(static_cast<double>(i % 100));
  });
  EXPECT_EQ(counter.value(), kIters);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kIters);
  // Sum over i % 100 for kIters observations: kIters/100 full cycles of 0..99.
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kIters / 100) * 4950.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 99.0);
}

TEST(Metrics, RegistryReturnsStableAddresses) {
  MetricsRegistry registry;
  Counter& a = registry.counter("apichecker_test_a_total");
  for (int i = 0; i < 100; ++i) {
    registry.counter("apichecker_test_filler_" + std::to_string(i) + "_total");
  }
  EXPECT_EQ(&a, &registry.counter("apichecker_test_a_total"));
}

TEST(Metrics, KindMismatchFallsBackToDummy) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("apichecker_test_kind_total");
  counter.Increment(5);
  // Asking for the same name as a gauge must not crash and must not clobber
  // the real counter.
  Gauge& dummy = registry.gauge("apichecker_test_kind_total");
  dummy.Set(123.0);
  EXPECT_EQ(registry.counter("apichecker_test_kind_total").value(), 5u);
}

TEST(Metrics, StandardMetricsRegisteredInDefault) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  const std::vector<MetricSnapshot> snap = reg.Snapshot();
  auto has = [&](std::string_view name) {
    for (const MetricSnapshot& m : snap) {
      if (m.name == name) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has(names::kEmuFarmMakespanMinutes));
  EXPECT_TRUE(has(names::kEmuAppMinutes));
  EXPECT_TRUE(has(names::kCoreClassifyLatencyUs));
  EXPECT_TRUE(has(names::kCoreVerdictMaliciousTotal));
  EXPECT_TRUE(has(names::kMarketOutcomePublishedTotal));
  // Idempotent: re-registering changes nothing.
  const size_t before = reg.size();
  RegisterStandardMetrics(reg);
  EXPECT_EQ(reg.size(), before);
}

TEST(Trace, NestedSpansTrackParentage) {
  MetricsRegistry registry;
  TraceLog log(64);
  EXPECT_EQ(TraceSpan::Current(), nullptr);
  {
    TraceSpan outer("outer", &registry, &log);
    EXPECT_EQ(TraceSpan::Current(), &outer);
    EXPECT_EQ(outer.depth(), 0u);
    EXPECT_EQ(outer.parent(), nullptr);
    {
      TraceSpan inner("inner", &registry, &log);
      EXPECT_EQ(TraceSpan::Current(), &inner);
      EXPECT_EQ(inner.depth(), 1u);
      ASSERT_NE(inner.parent(), nullptr);
      EXPECT_EQ(inner.parent()->name(), "outer");
    }
    EXPECT_EQ(TraceSpan::Current(), &outer);
  }
  EXPECT_EQ(TraceSpan::Current(), nullptr);

  const std::vector<SpanRecord> spans = log.Snapshot();
  ASSERT_EQ(spans.size(), 2u);  // inner finished first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, "outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, "");
  // Each span also landed in a per-name latency histogram.
  EXPECT_EQ(registry.histogram("apichecker_trace_inner_ms").count(), 1u);
  EXPECT_EQ(registry.histogram("apichecker_trace_outer_ms").count(), 1u);
}

TEST(Trace, LogDropsOldestWhenFull) {
  TraceLog log(8);
  for (int i = 0; i < 20; ++i) {
    SpanRecord r;
    r.name = "s" + std::to_string(i);
    log.Record(std::move(r));
  }
  EXPECT_GT(log.dropped(), 0u);
  const std::vector<SpanRecord> spans = log.Snapshot();
  EXPECT_LE(spans.size(), log.capacity());
  // The newest record always survives.
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.back().name, "s19");
}

TEST(Trace, ScopedTimerRecordsOnce) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("apichecker_test_timer_ms");
  {
    ScopedTimer timer(hist, ScopedTimer::Unit::kMicros);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const double elapsed_us = timer.Stop();
    EXPECT_GE(elapsed_us, 500.0);
    timer.Stop();  // Second stop is a no-op.
  }  // Destructor must not record again after Stop().
  EXPECT_EQ(hist.count(), 1u);
}

TEST(Export, PrometheusTextHasHelpTypeAndSamples) {
  MetricsRegistry registry;
  registry.counter("apichecker_test_events_total", "events").Increment(3);
  registry.gauge("apichecker_test_level", "level").Set(1.5);
  registry.histogram("apichecker_test_ms", Histogram::LinearBounds(1, 1, 2)).Observe(0.5);
  const std::string text = ToPrometheusText(registry);
  EXPECT_NE(text.find("# HELP apichecker_test_events_total events"), std::string::npos);
  EXPECT_NE(text.find("# TYPE apichecker_test_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("apichecker_test_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE apichecker_test_level gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE apichecker_test_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("apichecker_test_ms_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("apichecker_test_ms_count 1"), std::string::npos);
}

TEST(Export, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.counter("apichecker_test_events_total").Increment(7);
  registry.gauge("apichecker_test_level").Set(-2.25);
  Histogram& hist = registry.histogram("apichecker_test_ms", Histogram::LinearBounds(10, 10, 4));
  for (int i = 1; i <= 100; ++i) {
    hist.Observe(static_cast<double>(i));
  }
  TraceLog log(16);
  {
    TraceSpan span("roundtrip", &registry, &log);
  }

  const std::string json = ToJson(registry, &log);
  auto parsed = ParseJsonDump(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_DOUBLE_EQ(parsed->counters.at("apichecker_test_events_total"), 7.0);
  EXPECT_DOUBLE_EQ(parsed->gauges.at("apichecker_test_level"), -2.25);
  const ParsedHistogram& h = parsed->histograms.at("apichecker_test_ms");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.sum, 5050.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_NEAR(h.quantiles.at("p50"), 50.5, 1.0);
  EXPECT_EQ(parsed->num_spans, 1u);
  // The roundtrip span's latency histogram also made it into the dump.
  EXPECT_TRUE(parsed->histograms.count("apichecker_trace_roundtrip_ms"));
}

TEST(Export, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseJsonDump("not json").ok());
  EXPECT_FALSE(ParseJsonDump("{\"counters\": [1,2]").ok());
}

TEST(Export, PeriodicReporterFlushesAtLeastOnce) {
  MetricsRegistry registry;
  std::atomic<uint64_t> seen{0};
  {
    PeriodicReporter reporter(std::chrono::milliseconds(5),
                              [&](const MetricsRegistry&) { seen.fetch_add(1); },
                              registry);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    reporter.Stop();
    EXPECT_GE(reporter.flush_count(), 1u);
  }
  EXPECT_GE(seen.load(), 1u);
}

TEST(Export, PeriodicReporterStopFlushesFinalInterval) {
  // An interval far longer than the test: the loop never fires on its own, so
  // the only flush is the one Stop() owes us. Counter increments made right
  // before Stop() must be visible to that flush — the last partial interval
  // is never dropped.
  MetricsRegistry registry;
  std::atomic<uint64_t> last_seen{0};
  PeriodicReporter reporter(
      std::chrono::hours(24),
      [&](const MetricsRegistry&) {
        last_seen.store(registry.counter("apichecker_test_final_total").value());
      },
      registry);
  registry.counter("apichecker_test_final_total").Increment(7);
  reporter.Stop();
  EXPECT_EQ(reporter.flush_count(), 1u);
  EXPECT_EQ(last_seen.load(), 7u);
}

TEST(Export, PeriodicReporterConcurrentStopNeverSkipsTheFinalFlush) {
  // Two threads race Stop(). The loser must BLOCK until the winner's final
  // flush has completed — neither caller may return while the last snapshot
  // is still unwritten.
  for (int round = 0; round < 20; ++round) {
    MetricsRegistry registry;
    std::atomic<uint64_t> flushes{0};
    PeriodicReporter reporter(
        std::chrono::hours(24),
        [&](const MetricsRegistry&) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          flushes.fetch_add(1);
        },
        registry);
    std::thread a([&] { reporter.Stop(); });
    std::thread b([&] { reporter.Stop(); });
    a.join();
    b.join();
    // Both callers returned => the single final flush must have run.
    EXPECT_EQ(flushes.load(), 1u);
  }
}

// Adapts an rt::Runtime into the reporter's TimerHost shape (what a unified-
// runtime process passes so reporting costs zero threads).
PeriodicReporter::TimerHost RuntimeHost(rt::Runtime& rt) {
  return [&rt](std::chrono::milliseconds delay, std::function<void()> tick) {
    rt::CancelToken token = rt.PostAfter(delay, std::move(tick));
    if (!token.valid()) return PeriodicReporter::CancelFn{};
    return PeriodicReporter::CancelFn([token]() mutable { return token.Cancel(); });
  };
}

TEST(Export, TimerHostReporterFlushesAndReschedules) {
  rt::Runtime rt(rt::RuntimeOptions{2});
  MetricsRegistry registry;
  std::atomic<uint64_t> seen{0};
  {
    PeriodicReporter reporter(std::chrono::milliseconds(5),
                              [&](const MetricsRegistry&) { seen.fetch_add(1); },
                              RuntimeHost(rt), registry);
    // Several intervals must elapse: the tick has to re-arm itself.
    while (seen.load() < 3) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    reporter.Stop();
    EXPECT_GE(reporter.flush_count(), 3u);
  }
  rt.Shutdown();
}

TEST(Export, TimerHostReporterStopOwesTheFinalFlush) {
  // Interval far longer than the test: only Stop()'s flush runs, and it must
  // see increments made right before Stop() — the last partial interval is
  // never dropped, exactly as in thread mode.
  rt::Runtime rt(rt::RuntimeOptions{2});
  MetricsRegistry registry;
  std::atomic<uint64_t> last_seen{0};
  PeriodicReporter reporter(
      std::chrono::hours(24),
      [&](const MetricsRegistry&) {
        last_seen.store(registry.counter("apichecker_test_final_total").value());
      },
      RuntimeHost(rt), registry);
  registry.counter("apichecker_test_final_total").Increment(7);
  reporter.Stop();
  EXPECT_EQ(reporter.flush_count(), 1u);
  EXPECT_EQ(last_seen.load(), 7u);
  rt.Shutdown();
}

TEST(Export, TimerHostReporterConcurrentStopNeverSkipsTheFinalFlush) {
  rt::Runtime rt(rt::RuntimeOptions{2});
  for (int round = 0; round < 20; ++round) {
    MetricsRegistry registry;
    std::atomic<uint64_t> flushes{0};
    PeriodicReporter reporter(
        std::chrono::hours(24),
        [&](const MetricsRegistry&) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          flushes.fetch_add(1);
        },
        RuntimeHost(rt), registry);
    std::thread a([&] { reporter.Stop(); });
    std::thread b([&] { reporter.Stop(); });
    a.join();
    b.join();
    EXPECT_EQ(flushes.load(), 1u);
  }
  rt.Shutdown();
}

TEST(Export, TimerHostReporterRacingTickAndStop) {
  // Tight interval + immediate Stop, many rounds: whichever way the
  // cancel-vs-fire race lands, Stop must return promptly and exactly one
  // final flush (plus any ticks that beat it) is recorded.
  rt::Runtime rt(rt::RuntimeOptions{2});
  for (int round = 0; round < 50; ++round) {
    MetricsRegistry registry;
    std::atomic<uint64_t> flushes{0};
    PeriodicReporter reporter(std::chrono::milliseconds(1),
                              [&](const MetricsRegistry&) { flushes.fetch_add(1); },
                              RuntimeHost(rt), registry);
    std::this_thread::sleep_for(std::chrono::microseconds(200 * (round % 10)));
    reporter.Stop();
    EXPECT_GE(flushes.load(), 1u);
    EXPECT_EQ(reporter.flush_count(), flushes.load());
  }
  rt.Shutdown();
}

// ---------------------------------------------------------------------------
// Label escaping (Prometheus exposition + JSON dump round-trip).

TEST(Labels, EscapesBackslashQuoteAndNewline) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(LabeledSeriesName("base_total", "farm", "2"),
            "base_total{farm=\"2\"}");
}

TEST(Labels, HostileValueRoundTripsThroughBothExporters) {
  // A label value containing every character the exposition format treats
  // specially. The series must survive Prometheus text rendering (escaped)
  // and the JSON dump -> ParseJsonDump round trip (name preserved exactly).
  MetricsRegistry registry;
  const std::string name =
      LabeledSeriesName("apichecker_test_hostile_total", "path",
                        "C:\\tmp\n\"quoted\"");
  registry.counter(name).Increment(3);

  const std::string prom = ToPrometheusText(registry);
  // Inside the quoted label value: \ -> \\, " -> \", newline -> \n.
  EXPECT_NE(prom.find("path=\"C:\\\\tmp\\n\\\"quoted\\\"\""), std::string::npos)
      << prom;
  // The raw newline must NOT appear inside the sample line.
  EXPECT_EQ(prom.find("C:\\tmp\n"), std::string::npos);

  auto parsed = ParseJsonDump(ToJson(registry));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_TRUE(parsed->counters.count(name))
      << "series name mangled by JSON round-trip";
  EXPECT_DOUBLE_EQ(parsed->counters.at(name), 3.0);
}

// ---------------------------------------------------------------------------
// Histogram quantile edge cases.

TEST(Histogram, QuantileOfSingleSample) {
  Histogram h;
  h.Observe(42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 42.0);
}

TEST(Histogram, QuantileWhenAllSamplesEqual) {
  Histogram h;
  for (int i = 0; i < 1'000; ++i) {
    h.Observe(7.5);
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1'000u);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.Quantile(q), 7.5) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// TraceCollector: request-scoped tracing across thread hops.

TEST(TraceCollector, RecordsSpansAndSealsOnComplete) {
  TraceCollector collector;
  const uint64_t id = collector.StartTrace();
  ASSERT_NE(id, 0u);
  EXPECT_EQ(collector.open_traces(), 1u);

  StageSpan late;
  late.stage = stages::kFarm;
  late.start_ms = 5.0;
  late.duration_ms = 2.0;
  collector.Record(id, late);
  StageSpan early;
  early.stage = stages::kSubmit;
  early.start_ms = 1.0;
  early.duration_ms = 0.5;
  collector.Record(id, early);

  std::vector<StageMs> breakdown;
  breakdown.push_back({stages::kSubmit, 4.0});
  breakdown.push_back({stages::kFarm, 2.0});
  breakdown.push_back({stages::kResolve, 1.0});
  collector.Complete(id, "ok", false, std::move(breakdown), 7.0);

  EXPECT_EQ(collector.open_traces(), 0u);
  const std::vector<Trace> completed = collector.Completed();
  ASSERT_EQ(completed.size(), 1u);
  const Trace& trace = completed[0];
  EXPECT_EQ(trace.trace_id, id);
  EXPECT_EQ(trace.status, "ok");
  ASSERT_EQ(trace.spans.size(), 2u);
  // Spans are sorted by start time at Complete, regardless of record order.
  EXPECT_EQ(trace.spans[0].stage, stages::kSubmit);
  EXPECT_EQ(trace.spans[1].stage, stages::kFarm);
  EXPECT_TRUE(trace.HasStage(stages::kSubmit));
  EXPECT_FALSE(trace.HasStage(stages::kClassify));
  EXPECT_NEAR(trace.BreakdownSumMs(), trace.total_ms, 1e-9);
}

TEST(TraceCollector, SpansAfterCompleteAreCountedDropped) {
  TraceCollector collector;
  const uint64_t id = collector.StartTrace();
  collector.Complete(id, "ok", false, {}, 1.0);
  StageSpan span;
  span.stage = stages::kFarm;
  collector.Record(id, span);  // Late: the trace is sealed.
  EXPECT_EQ(collector.spans_recorded(), 0u);
  EXPECT_EQ(collector.spans_dropped(), 1u);
}

TEST(TraceCollector, DropsNewTracesAtBirthWhenOverBound) {
  TraceCollector::Options options;
  options.max_open_traces = 8;  // 1 per stripe.
  TraceCollector collector(options);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(collector.StartTrace());
  }
  EXPECT_EQ(collector.traces_started(), 64u);
  EXPECT_LE(collector.open_traces(), 8u);
  EXPECT_EQ(collector.traces_dropped(), 64u - collector.open_traces());
  // Dropped ids are still safe to use — every call is a counted no-op.
  for (uint64_t id : ids) {
    StageSpan span;
    span.stage = stages::kSubmit;
    collector.Record(id, span);
    collector.Complete(id, "ok", false, {}, 1.0);
  }
  EXPECT_EQ(collector.traces_completed(), 64u - collector.traces_dropped());
  EXPECT_EQ(collector.open_traces(), 0u);
}

TEST(TraceCollector, CompletedRingDropsOldestButTailKeepsSlowest) {
  TraceCollector::Options options;
  options.completed_capacity = 8;  // 1 per stripe ring.
  options.tail_keep = 4;
  TraceCollector collector(options);
  // 64 traces with increasing totals, then one huge outlier early in id order
  // would be recycled by the ring — but the tail sampler must retain the
  // slowest 4 regardless of ring churn.
  for (int i = 1; i <= 64; ++i) {
    const uint64_t id = collector.StartTrace();
    collector.Complete(id, "ok", false, {}, static_cast<double>(i));
  }
  EXPECT_LE(collector.Completed().size(), 8u);
  const std::vector<Trace> slowest = collector.Slowest();
  ASSERT_EQ(slowest.size(), 4u);
  EXPECT_DOUBLE_EQ(slowest[0].total_ms, 64.0);
  EXPECT_DOUBLE_EQ(slowest[1].total_ms, 63.0);
  EXPECT_DOUBLE_EQ(slowest[2].total_ms, 62.0);
  EXPECT_DOUBLE_EQ(slowest[3].total_ms, 61.0);
}

TEST(TraceCollector, ClearDropsEverything) {
  TraceCollector collector;
  const uint64_t open_id = collector.StartTrace();
  (void)open_id;
  const uint64_t done_id = collector.StartTrace();
  collector.Complete(done_id, "ok", false, {}, 1.0);
  collector.Clear();
  EXPECT_EQ(collector.open_traces(), 0u);
  EXPECT_TRUE(collector.Completed().empty());
  EXPECT_TRUE(collector.Slowest().empty());
}

TEST(TraceCollector, StageHistogramNamesCoverTheVocabulary) {
  EXPECT_STREQ(StageHistogramName(stages::kSubmit),
               names::kServeStageSubmitMs);
  EXPECT_STREQ(StageHistogramName(stages::kShard),
               names::kServeStageQueueWaitMs);
  EXPECT_STREQ(StageHistogramName(stages::kBatch),
               names::kServeStageBatchLingerMs);
  EXPECT_STREQ(StageHistogramName(stages::kFarm),
               names::kServeStageFarmExecuteMs);
  EXPECT_STREQ(StageHistogramName(stages::kClassify),
               names::kServeStageClassifyMs);
  EXPECT_STREQ(StageHistogramName(stages::kStore),
               names::kServeStageStoreAppendMs);
  EXPECT_STREQ(StageHistogramName(stages::kResolve),
               names::kServeStageResolveMs);
  // Unknown stages are remainder time.
  EXPECT_STREQ(StageHistogramName("mystery"), names::kServeStageResolveMs);
}

// ---------------------------------------------------------------------------
// Trace export formats + file writer.

std::vector<Trace> MakeExportFixture() {
  TraceCollector collector;
  const uint64_t id = collector.StartTrace();
  StageSpan farm;
  farm.stage = stages::kFarm;
  farm.label = "farm=1";
  farm.start_ms = 10.0;
  farm.duration_ms = 3.5;
  farm.queue_depth = 2;
  farm.fault = true;
  collector.Record(id, farm);
  std::vector<StageMs> breakdown;
  breakdown.push_back({stages::kFarm, 3.5});
  collector.Complete(id, "rejected_unhealthy", false, std::move(breakdown), 3.5);
  return collector.Completed();
}

TEST(TraceExport, ChromeJsonCarriesCompleteEvents) {
  const std::string json = TracesToChromeJson(MakeExportFixture());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"farm\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"farm=1\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\": true"), std::string::npos);
  // ts/dur are microseconds: 10ms -> 10000us.
  EXPECT_NE(json.find("\"ts\": 10000.0"), std::string::npos);
}

TEST(TraceExport, JsonLinesAreSelfContainedObjects) {
  const std::string jsonl = TracesToJsonLines(MakeExportFixture());
  EXPECT_EQ(jsonl.back(), '\n');
  EXPECT_EQ(jsonl.find('\n'), jsonl.size() - 1) << "exactly one line per trace";
  EXPECT_NE(jsonl.find("\"status\": \"rejected_unhealthy\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"breakdown\": {\"farm\": 3.500}"), std::string::npos);
  EXPECT_NE(jsonl.find("\"queue_depth\": 2"), std::string::npos);
}

TEST(TraceExport, WriteRefusesToOverwriteWithoutForce) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "apichecker_obs_test.trace.json")
          .string();
  std::remove(path.c_str());
  const std::vector<Trace> traces = MakeExportFixture();
  auto first = WriteTraceFile(path, traces, /*force=*/false);
  ASSERT_TRUE(first.ok()) << first.error();
  auto second = WriteTraceFile(path, traces, /*force=*/false);
  EXPECT_FALSE(second.ok());
  EXPECT_NE(second.error().find("--force"), std::string::npos);
  auto forced = WriteTraceFile(path, traces, /*force=*/true);
  EXPECT_TRUE(forced.ok()) << forced.error();
  std::remove(path.c_str());
}

TEST(BenchReport, JsonCarriesSchemaAndStages) {
  BenchReport report;
  report.bench = "serve_throughput";
  report.git_rev = "abc123";
  report.submissions = 100;
  report.wall_s = 2.0;
  report.throughput_per_sec = 50.0;
  report.sample_rate = 0.01;
  report.stages["farm"] = BenchStage{1.5, 9.0, 42};
  const std::string json = BenchReportToJson(report);
  EXPECT_NE(json.find("\"schema\": \"apichecker-bench-serve-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"farm\": {\"p50_ms\": 1.5000"), std::string::npos);
  EXPECT_NE(json.find("\"submissions\": 100"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ObsSoak: concurrency suites, split out under the ctest "stress" label so
// tools/ci.sh runs them under ThreadSanitizer.

TEST(ObsSoak, ConcurrentObserveWhileSnapshottingQuantiles) {
  Histogram h;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const HistogramSnapshot snap = h.Snapshot();
      const double q = snap.Quantile(0.99);
      // Quantiles of an in-flux histogram must stay inside the observed range.
      if (snap.count > 0) {
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 100.0);
      }
    }
  });
  util::ThreadPool pool(8);
  pool.ParallelFor(0, 50'000, [&](size_t i) {
    h.Observe(static_cast<double>(i % 101));
  });
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(h.Snapshot().count, 50'000u);
}

TEST(ObsSoak, ConcurrentTraceLifecyclesLoseNoSpans) {
  TraceCollector collector;
  constexpr size_t kTraces = 4'000;
  util::ThreadPool pool(8);
  std::atomic<uint64_t> completed{0};
  pool.ParallelFor(0, kTraces, [&](size_t i) {
    const uint64_t id = collector.StartTrace();
    StageSpan span;
    span.stage = stages::kSubmit;
    span.start_ms = static_cast<double>(i);
    collector.Record(id, span);
    std::vector<StageMs> breakdown;
    breakdown.push_back({stages::kSubmit, 1.0});
    collector.Complete(id, "ok", false, std::move(breakdown), 1.0);
    completed.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(completed.load(), kTraces);
  // Every trace was completed before the next started on that thread, so no
  // trace was ever dropped at birth and every span landed pre-Complete.
  EXPECT_EQ(collector.traces_completed(), kTraces);
  EXPECT_EQ(collector.spans_recorded(), kTraces);
  EXPECT_EQ(collector.spans_dropped(), 0u);
  EXPECT_EQ(collector.open_traces(), 0u);
}

}  // namespace
}  // namespace apichecker::obs
