// Unit tests for src/serve: digest cache, serving-model hot swap, admission
// control / backpressure, deadline expiry, cache-hit emulation skipping, the
// no-lost-submissions invariant, and hot-swap-under-load consistency. The
// concurrency-heavy tests double as the ASan/TSan targets in tools/ci.sh.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_store.h"
#include "core/study.h"
#include "ingest/apk_blob.h"
#include "market/model_registry.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace_collector.h"
#include "serve/digest_cache.h"
#include "serve/overload.h"
#include "serve/service.h"
#include "serve/serving_model.h"
#include "serve/submission_shards.h"
#include "synth/corpus.h"
#include "util/rng.h"

namespace apichecker::serve {
namespace {

const android::ApiUniverse& TestUniverse() {
  static const android::ApiUniverse universe = [] {
    android::UniverseConfig config;
    config.num_apis = 6'000;
    return android::ApiUniverse::Generate(config);
  }();
  return universe;
}

// One small model trained once and round-tripped through the model store, so
// every test gets an identical, independently owned checker.
const std::vector<uint8_t>& TrainedBlob() {
  static const std::vector<uint8_t> blob = [] {
    synth::CorpusConfig corpus_config;
    synth::CorpusGenerator generator(TestUniverse(), corpus_config);
    core::StudyConfig study_config;
    study_config.num_apps = 1'200;
    const core::StudyDataset study =
        core::RunStudy(TestUniverse(), generator, study_config);
    core::ApiChecker checker(TestUniverse(), {});
    checker.TrainFromStudy(study);
    return core::SerializeChecker(checker);
  }();
  return blob;
}

core::ApiChecker TrainedChecker() {
  auto checker = core::DeserializeChecker(TestUniverse(), TrainedBlob());
  EXPECT_TRUE(checker.ok());
  return std::move(*checker);
}

std::vector<uint8_t> MakeApkBytes(uint64_t seed) {
  synth::CorpusConfig config;
  config.seed = seed;
  config.update_fraction = 0.0;  // Fresh packages only: distinct bytes.
  synth::CorpusGenerator generator(TestUniverse(), config);
  return synth::BuildApkBytes(generator.Next(), TestUniverse());
}

Submission MakeSubmission(ingest::ApkBlob blob,
                          Priority priority = Priority::kBulk,
                          std::chrono::milliseconds deadline = {}) {
  Submission submission;
  submission.blob = std::move(blob);
  submission.priority = priority;
  submission.deadline = deadline;
  return submission;
}

Submission MakeSubmission(std::vector<uint8_t> bytes,
                          Priority priority = Priority::kBulk,
                          std::chrono::milliseconds deadline = {}) {
  return MakeSubmission(ingest::ApkBlob::FromBytes(std::move(bytes)), priority,
                        deadline);
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Default().counter(name).value();
}

uint64_t HistogramCount(const char* name) {
  return obs::MetricsRegistry::Default().histogram(name).count();
}

ServiceConfig SmallConfig() {
  ServiceConfig config;
  config.num_shards = 2;
  config.shard_capacity = 64;
  config.farm.num_emulators = 4;
  config.farm.worker_threads = 2;
  config.scheduler.batch_size = 4;
  config.scheduler.max_linger = std::chrono::milliseconds(5);
  return config;
}

TEST(DigestCache, LruEvictsOldestWithinShard) {
  DigestCache cache(4, /*num_shards=*/1);
  for (int i = 0; i < 4; ++i) {
    cache.Put("digest" + std::to_string(i), {1, false, 0.1});
  }
  EXPECT_EQ(cache.size(), 4u);
  ASSERT_TRUE(cache.Get("digest0", 1).has_value());  // Refresh digest0.
  cache.Put("digest4", {1, true, 0.9});              // Evicts digest1 (LRU).
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Get("digest0", 1).has_value());
  EXPECT_FALSE(cache.Get("digest1", 1).has_value());
  EXPECT_TRUE(cache.Get("digest4", 1)->malicious);
}

TEST(DigestCache, StaleModelVersionIsAMissAndEvicted) {
  DigestCache cache(8);
  cache.Put("d", {1, true, 0.8});
  EXPECT_TRUE(cache.Get("d", 1).has_value());
  EXPECT_FALSE(cache.Get("d", 2).has_value());  // Hot swap happened.
  EXPECT_EQ(cache.size(), 0u);                  // Stale entry dropped.
}

TEST(DigestCache, WarmFlagSurvivesLookupAndIsClearedByOverwrite) {
  DigestCache cache(8);
  CachedVerdict warmed{1, true, 0.9, /*warm=*/true};
  cache.Put("d", warmed);
  auto hit = cache.Get("d", 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->warm);  // Warm-start hits are countable at Get time.
  cache.Put("d", {1, true, 0.9});  // Re-vetted this process: no longer warm.
  EXPECT_FALSE(cache.Get("d", 1)->warm);
}

TEST(ServingModel, SwapPublishesNewVersionWhileReadersKeepTheirSnapshot) {
  ServingModel model(TrainedChecker());
  EXPECT_EQ(model.version(), 1u);
  auto pinned = model.Acquire();
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(model.Swap(TrainedChecker()), 2u);
  EXPECT_EQ(model.version(), 2u);
  // The pinned snapshot is unaffected by the swap.
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_TRUE(pinned->checker.trained());
  EXPECT_EQ(model.Acquire()->version, 2u);
}

TEST(ServingModel, SwapFromBlobRejectsGarbage) {
  ServingModel model(TrainedChecker());
  const std::vector<uint8_t> garbage = {1, 2, 3, 4};
  auto swapped = model.SwapFromBlob(TestUniverse(), garbage);
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(model.version(), 1u);  // Bad blob never goes live.
}

TEST(VettingService, AdmissionRejectsWhenQueuesFull) {
  ServiceConfig config = SmallConfig();
  config.num_shards = 1;
  config.shard_capacity = 2;
  config.start_paused = true;  // Queues fill; nothing drains yet.
  VettingService service(TestUniverse(), config, TrainedChecker());

  std::vector<std::future<VettingResult>> futures;
  // Distinct seeds -> distinct digests, all landing on the single shard.
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    auto accepted = service.Submit(MakeSubmission(MakeApkBytes(seed)));
    ASSERT_TRUE(accepted.ok());
    futures.push_back(std::move(*accepted));
  }
  auto rejected = service.Submit(MakeSubmission(MakeApkBytes(3)));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error(), "admission queue full");

  service.Start();
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status, VetStatus::kOk);
  }
  service.Shutdown();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.accepted, stats.resolved());
}

TEST(VettingService, DeadlineExpiryReturnsTimeoutOutcome) {
  ServiceConfig config = SmallConfig();
  // Batch never fills, so the submission waits out the full linger — far past
  // its own deadline — before the scheduler executes it.
  config.scheduler.batch_size = 8;
  config.scheduler.max_linger = std::chrono::milliseconds(200);
  VettingService service(TestUniverse(), config, TrainedChecker());

  auto accepted = service.Submit(MakeSubmission(
      MakeApkBytes(11), Priority::kBulk, std::chrono::milliseconds(1)));
  ASSERT_TRUE(accepted.ok());
  const VettingResult result = accepted->get();
  EXPECT_EQ(result.status, VetStatus::kDeadlineExpired);
  service.Shutdown();
  EXPECT_EQ(service.stats().deadline_expired, 1u);
  EXPECT_EQ(service.stats().accepted, service.stats().resolved());
}

TEST(VettingService, DigestCacheHitSkipsEmulation) {
  VettingService service(TestUniverse(), SmallConfig(), TrainedChecker());
  const std::vector<uint8_t> bytes = MakeApkBytes(21);

  auto first = service.Submit(MakeSubmission(bytes));
  ASSERT_TRUE(first.ok());
  const VettingResult fresh = first->get();
  EXPECT_EQ(fresh.status, VetStatus::kOk);
  EXPECT_FALSE(fresh.from_cache);

  const uint64_t emu_apps_before = CounterValue(obs::names::kEmuAppsTotal);
  const uint64_t cache_hits_before = CounterValue(obs::names::kServeCacheHitsTotal);
  auto second = service.Submit(MakeSubmission(bytes));
  ASSERT_TRUE(second.ok());
  const VettingResult cached = second->get();
  EXPECT_EQ(cached.status, VetStatus::kOk);
  EXPECT_TRUE(cached.from_cache);
  EXPECT_EQ(cached.malicious, fresh.malicious);
  EXPECT_DOUBLE_EQ(cached.score, fresh.score);
  // The resubmission reached a verdict without a single emulator run.
  EXPECT_EQ(CounterValue(obs::names::kEmuAppsTotal), emu_apps_before);
  EXPECT_EQ(CounterValue(obs::names::kServeCacheHitsTotal), cache_hits_before + 1);
  service.Shutdown();
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(VettingService, InBatchDedupEmulatesIdenticalBytesOnce) {
  ServiceConfig config = SmallConfig();
  config.start_paused = true;  // Both copies land in the same batch.
  VettingService service(TestUniverse(), config, TrainedChecker());
  const std::vector<uint8_t> bytes = MakeApkBytes(22);

  auto a = service.Submit(MakeSubmission(bytes));
  auto b = service.Submit(MakeSubmission(bytes));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const uint64_t emu_apps_before = CounterValue(obs::names::kEmuAppsTotal);
  service.Start();
  const VettingResult ra = a->get();
  const VettingResult rb = b->get();
  EXPECT_EQ(CounterValue(obs::names::kEmuAppsTotal), emu_apps_before + 1);
  EXPECT_EQ(ra.malicious, rb.malicious);
  EXPECT_DOUBLE_EQ(ra.score, rb.score);
  EXPECT_TRUE(ra.from_cache || rb.from_cache);  // The follower skipped emulation.
}

TEST(VettingService, ParseErrorResolvesInsteadOfDropping) {
  VettingService service(TestUniverse(), SmallConfig(), TrainedChecker());
  auto accepted = service.Submit(MakeSubmission({'n', 'o', 't', 'a', 'p', 'k'}));
  ASSERT_TRUE(accepted.ok());
  const VettingResult result = accepted->get();
  EXPECT_EQ(result.status, VetStatus::kParseError);
  EXPECT_FALSE(result.error.empty());
  service.Shutdown();
  EXPECT_EQ(service.stats().parse_errors, 1u);
  EXPECT_EQ(service.stats().accepted, service.stats().resolved());
}

TEST(VettingService, HotSwapInvalidatesCachedVerdicts) {
  VettingService service(TestUniverse(), SmallConfig(), TrainedChecker());
  const std::vector<uint8_t> bytes = MakeApkBytes(23);

  auto first = service.Submit(MakeSubmission(bytes));
  ASSERT_TRUE(first.ok());
  const VettingResult before = first->get();
  EXPECT_EQ(before.model_version, 1u);

  EXPECT_EQ(service.SwapModel(TrainedChecker()), 2u);

  auto second = service.Submit(MakeSubmission(bytes));
  ASSERT_TRUE(second.ok());
  const VettingResult after = second->get();
  EXPECT_EQ(after.model_version, 2u);
  EXPECT_FALSE(after.from_cache);  // v1 cache entry is stale for v2.
  // Same weights round-tripped: the verdict itself must not change.
  EXPECT_EQ(after.malicious, before.malicious);
  EXPECT_DOUBLE_EQ(after.score, before.score);
  service.Shutdown();
}

TEST(VettingService, RegistryPromotionHotSwapsTheServingModel) {
  VettingService service(TestUniverse(), SmallConfig(), TrainedChecker());
  market::ModelRegistry registry;
  service.AttachToRegistry(registry);
  EXPECT_EQ(service.model_version(), 1u);

  market::ModelRecord candidate;
  candidate.month = 1;
  candidate.blob = TrainedBlob();
  candidate.validation_f1 = 0.95;
  EXPECT_TRUE(registry.Consider(std::move(candidate)));
  EXPECT_EQ(service.model_version(), 2u);  // Promotion went live immediately.

  // A guard-rejected candidate must NOT touch the serving model.
  market::ModelRecord regression;
  regression.month = 2;
  regression.blob = TrainedBlob();
  regression.validation_f1 = 0.10;
  EXPECT_FALSE(registry.Consider(std::move(regression)));
  EXPECT_EQ(service.model_version(), 2u);
  registry.SetPromotionListener(nullptr);  // Detach before the service dies.
  service.Shutdown();
}

// Hot-swap under load: writers republish the model while submitters hammer a
// small APK set. Every identical digest must produce an identical verdict no
// matter which snapshot classified it (all snapshots carry the same
// round-tripped weights), and nothing may be lost or torn. Run under
// ASan/TSan by tools/ci.sh.
TEST(VettingService, HotSwapUnderLoadKeepsVerdictsConsistent) {
  ServiceConfig config = SmallConfig();
  config.num_shards = 4;
  config.shard_capacity = 512;
  VettingService service(TestUniverse(), config, TrainedChecker());

  constexpr size_t kDistinctApks = 6;
  constexpr size_t kSubmitsPerThread = 48;
  constexpr size_t kSubmitters = 3;
  constexpr size_t kSwaps = 12;
  std::vector<std::vector<uint8_t>> apks;
  for (size_t i = 0; i < kDistinctApks; ++i) {
    apks.push_back(MakeApkBytes(100 + i));
  }

  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    for (size_t i = 0; i < kSwaps && !stop_swapping.load(); ++i) {
      auto swapped = service.SwapModelFromBlob(TrainedBlob());
      EXPECT_TRUE(swapped.ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<VettingResult>>> futures(kSubmitters);
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = 0; i < kSubmitsPerThread; ++i) {
        auto accepted =
            service.Submit(MakeSubmission(apks[(t + i) % kDistinctApks],
                                          i % 8 == 0 ? Priority::kInteractive
                                                     : Priority::kBulk));
        if (accepted.ok()) {
          futures[t].push_back(std::move(*accepted));
        }
      }
    });
  }
  for (auto& thread : submitters) {
    thread.join();
  }
  stop_swapping.store(true);
  swapper.join();

  // Per-digest verdict agreement across every model snapshot that served.
  struct Agreed {
    bool seen = false;
    bool malicious = false;
    double score = 0.0;
  };
  std::vector<Agreed> agreed(kDistinctApks);
  size_t resolved = 0;
  for (size_t t = 0; t < kSubmitters; ++t) {
    for (size_t i = 0; i < futures[t].size(); ++i) {
      const VettingResult result = futures[t][i].get();
      ASSERT_EQ(result.status, VetStatus::kOk);
      EXPECT_GE(result.model_version, 1u);
      Agreed& expect = agreed[(t + i) % kDistinctApks];
      if (!expect.seen) {
        expect = {true, result.malicious, result.score};
      } else {
        EXPECT_EQ(result.malicious, expect.malicious);
        EXPECT_DOUBLE_EQ(result.score, expect.score);
      }
      ++resolved;
    }
  }
  service.Shutdown();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, stats.resolved());  // Zero lost submissions.
  EXPECT_EQ(stats.accepted, resolved);
  EXPECT_GT(stats.cache_hits, 0u);  // Identical resubmits hit the cache.
  EXPECT_GE(stats.model_swaps, 1u);
}

// The scheduler parks on the shards' condition variable when idle; the next
// push must wake it immediately, so a lone submission resolves in roughly
// max_linger + one emulation — not at some polling granularity.
TEST(VettingService, IdleSchedulerWakesOnPushWithinLingerBound) {
  ServiceConfig config = SmallConfig();
  config.scheduler.batch_size = 8;  // One submission never fills the batch.
  config.scheduler.max_linger = std::chrono::milliseconds(25);
  VettingService service(TestUniverse(), config, TrainedChecker());
  // Let the scheduler reach its idle park before the probe submission.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto start = Clock::now();
  auto accepted = service.Submit(MakeSubmission(MakeApkBytes(41)));
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted->get().status, VetStatus::kOk);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  // Linger (25ms) + one-apk emulation + slack. Generous for CI noise but far
  // below anything a sleep-poll idle loop would allow.
  EXPECT_LT(elapsed_ms, 750.0);
  service.Shutdown();
}

// Soak test (ctest label: stress; tools/ci.sh runs it under TSan): several
// producers churn duplicate-digest submissions through a 3-farm pool while
// the model hot-swaps and one farm flaps through scripted outage windows.
// After the drain, nothing may be lost, torn, or disagreeing.
TEST(VettingServiceSoak, ChurnWithFlappingFarmHotSwapsAndDupDigests) {
  ServiceConfig config;
  config.num_shards = 4;
  config.shard_capacity = 512;
  config.cache_capacity = 4096;
  config.farm.num_emulators = 4;
  config.farm.worker_threads = 2;
  config.scheduler.batch_size = 4;
  config.scheduler.max_linger = std::chrono::milliseconds(2);
  config.pool.num_farms = 3;
  config.pool.max_attempts = 3;
  config.pool.breaker_failure_streak = 2;
  config.pool.breaker_cooldown = std::chrono::milliseconds(30);
  // Farm 0 flaps: repeated short outages with recovery in between, so the
  // breaker opens, cools down, re-probes, and closes — repeatedly — while
  // farms 1 and 2 absorb the failovers.
  for (uint64_t from = 1; from <= 19; from += 6) {
    emu::FaultWindow window;
    window.farm_id = 0;
    window.from_batch = from;
    window.to_batch = from + 2;
    config.pool.fault_plan.windows.push_back(window);
  }
  VettingService service(TestUniverse(), config, TrainedChecker());

  constexpr size_t kDistinctApks = 8;
  constexpr size_t kSubmitsPerThread = 50;
  constexpr size_t kProducers = 4;
  std::vector<std::vector<uint8_t>> apks;
  for (size_t i = 0; i < kDistinctApks; ++i) {
    apks.push_back(MakeApkBytes(500 + i));
  }

  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    for (int i = 0; i < 10 && !stop_swapping.load(); ++i) {
      EXPECT_TRUE(service.SwapModelFromBlob(TrainedBlob()).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<VettingResult>>> futures(kProducers);
  std::vector<std::vector<size_t>> apk_index(kProducers);
  std::atomic<size_t> admission_rejected{0};
  for (size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (size_t i = 0; i < kSubmitsPerThread; ++i) {
        // Heavy digest reuse: every producer cycles the same small APK set
        // (the market's resubmission pattern), some expedited.
        const size_t which = (t * 3 + i) % kDistinctApks;
        auto accepted = service.Submit(
            MakeSubmission(apks[which], i % 16 == 0 ? Priority::kInteractive
                                                    : Priority::kBulk));
        if (accepted.ok()) {
          futures[t].push_back(std::move(*accepted));
          apk_index[t].push_back(which);
        } else {
          admission_rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  stop_swapping.store(true);
  swapper.join();

  // Every accepted submission resolves kOk — farm flaps are absorbed by
  // failover, never surfaced to a client — and byte-identical submissions
  // agree on the verdict no matter which farm/snapshot served them.
  struct Agreed {
    bool seen = false;
    bool malicious = false;
    double score = 0.0;
  };
  std::vector<Agreed> agreed(kDistinctApks);
  size_t resolved = 0;
  for (size_t t = 0; t < kProducers; ++t) {
    for (size_t i = 0; i < futures[t].size(); ++i) {
      ASSERT_EQ(futures[t][i].wait_for(std::chrono::seconds(60)),
                std::future_status::ready)
          << "submission hung";
      const VettingResult result = futures[t][i].get();
      ASSERT_EQ(result.status, VetStatus::kOk);
      Agreed& expect = agreed[apk_index[t][i]];
      if (!expect.seen) {
        expect = {true, result.malicious, result.score};
      } else {
        EXPECT_EQ(result.malicious, expect.malicious);
        EXPECT_DOUBLE_EQ(result.score, expect.score);
      }
      ++resolved;
    }
  }
  service.Shutdown();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, stats.resolved());  // Zero lost, even under faults.
  EXPECT_EQ(stats.accepted, resolved);
  EXPECT_EQ(stats.accepted + admission_rejected.load(),
            kProducers * kSubmitsPerThread);
  EXPECT_EQ(stats.rejected_unhealthy, 0u);  // Two farms always stayed up.
  EXPECT_GT(stats.farm_faults, 0u);         // The flap windows actually fired...
  EXPECT_GT(stats.farm_retries, 0u);        // ...and every fault failed over.
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GE(stats.model_swaps, 1u);

  const FarmPoolStats pool_stats = service.farm_pool_stats();
  EXPECT_EQ(pool_stats.rejected_batches, 0u);
  uint64_t completed_across_farms = 0;
  for (const FarmStats& farm : pool_stats.farms) {
    completed_across_farms += farm.batches_completed;
  }
  EXPECT_EQ(completed_across_farms + pool_stats.retries,
            pool_stats.batches_routed);
  EXPECT_GE(pool_stats.farms[0].breaker_opens, 1u);
}

// Tentpole invariant: one allocation per APK, zero copies after Submit().
// The blob handle threads through shard -> scheduler -> pool -> verdict with
// reference bumps only; SHA-1 runs exactly once, at blob creation.
TEST(VettingService, BlobFlowsThroughThePipelineWithoutCopiesOrRehashing) {
  VettingService service(TestUniverse(), SmallConfig(), TrainedChecker());

  const uint64_t blobs_before = CounterValue(obs::names::kIngestBlobsTotal);
  const uint64_t hashes_before = CounterValue(obs::names::kServeHashOpsTotal);
  ingest::ApkBlob blob = ingest::ApkBlob::FromBytes(MakeApkBytes(61));
  EXPECT_EQ(CounterValue(obs::names::kIngestBlobsTotal), blobs_before + 1);
  EXPECT_EQ(CounterValue(obs::names::kServeHashOpsTotal), hashes_before + 1);
  EXPECT_EQ(blob.use_count(), 1u);
  const uint64_t pool_bytes_at_creation = ingest::ApkBlob::PoolBytes();

  auto accepted = service.Submit(MakeSubmission(blob));  // Handle copy, not bytes.
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted->get().status, VetStatus::kOk);
  service.Shutdown();

  // The whole trip — admission, shard queue, batch build, pool parse stage,
  // emulation, verdict — minted no new blob and ran no second hash.
  EXPECT_EQ(CounterValue(obs::names::kIngestBlobsTotal), blobs_before + 1);
  EXPECT_EQ(CounterValue(obs::names::kServeHashOpsTotal), hashes_before + 1);
  // Every pipeline reference was released; ours is the last one, and the pool
  // gauge accounts exactly this blob's bytes relative to creation time.
  EXPECT_EQ(blob.use_count(), 1u);
  EXPECT_EQ(ingest::ApkBlob::PoolBytes(), pool_bytes_at_creation);
  EXPECT_GE(ingest::ApkBlob::PoolPeakBytes(), pool_bytes_at_creation);
}

// Satellite: a digest the cache already holds resolves at Submit() itself —
// the fast-path never touches a shard queue, counted by its own metric.
TEST(VettingService, CachedDigestFastPathSkipsTheShardQueues) {
  VettingService service(TestUniverse(), SmallConfig(), TrainedChecker());
  const std::vector<uint8_t> bytes = MakeApkBytes(62);

  auto first = service.Submit(MakeSubmission(bytes));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->get().status, VetStatus::kOk);

  const uint64_t pushes_before = service.shard_pushes();
  const uint64_t fastpath_before =
      CounterValue(obs::names::kServeCacheFastpathHitsTotal);
  auto second = service.Submit(MakeSubmission(bytes));
  ASSERT_TRUE(second.ok());
  // Already resolved: the promise was satisfied inside Submit().
  ASSERT_EQ(second->wait_for(std::chrono::milliseconds(0)),
            std::future_status::ready);
  const VettingResult cached = second->get();
  EXPECT_EQ(cached.status, VetStatus::kOk);
  EXPECT_TRUE(cached.from_cache);
  // Not one shard push happened for the duplicate.
  EXPECT_EQ(service.shard_pushes(), pushes_before);
  EXPECT_EQ(CounterValue(obs::names::kServeCacheFastpathHitsTotal),
            fastpath_before + 1);
  service.Shutdown();
  EXPECT_EQ(service.stats().accepted, service.stats().resolved());
}

// Tentpole: Submit() returns before ParseApk runs. With the scheduler paused
// nothing downstream can parse; the accepted future exists while the parse-
// stage histogram is still unmoved, and only Start() makes it tick.
TEST(VettingService, SubmitReturnsBeforeParseExecutes) {
  ServiceConfig config = SmallConfig();
  config.start_paused = true;
  VettingService service(TestUniverse(), config, TrainedChecker());

  const uint64_t parses_before = HistogramCount(obs::names::kIngestParseStageMs);
  auto accepted = service.Submit(MakeSubmission(MakeApkBytes(63)));
  ASSERT_TRUE(accepted.ok());  // Admission done — and nothing parsed yet.
  EXPECT_EQ(HistogramCount(obs::names::kIngestParseStageMs), parses_before);

  service.Start();
  EXPECT_EQ(accepted->get().status, VetStatus::kOk);
  EXPECT_GT(HistogramCount(obs::names::kIngestParseStageMs), parses_before);
  service.Shutdown();
}

TEST(VettingService, SubmitAfterShutdownIsRejected) {
  VettingService service(TestUniverse(), SmallConfig(), TrainedChecker());
  service.Shutdown();
  auto rejected = service.Submit(MakeSubmission(MakeApkBytes(31)));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error(), "service is shut down");
}

TEST(VettingService, ShutdownIsIdempotentSequentiallyAndConcurrently) {
  // Teardown runs in dependency order (front door -> admission -> scheduler
  // -> pool -> store -> runtime) exactly once; every later or concurrent
  // caller must block until that teardown completes and then return — never
  // re-tear layers, never race the runtime join. The in-flight submission
  // still resolves (drain, not drop).
  VettingService service(TestUniverse(), SmallConfig(), TrainedChecker());
  auto accepted = service.Submit(MakeSubmission(MakeApkBytes(47)));
  ASSERT_TRUE(accepted.ok());

  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&service] { service.Shutdown(); });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(accepted->get().status, VetStatus::kOk);

  // Sequential re-calls after completion are no-ops, including via the
  // destructor (which calls Shutdown again when the test ends).
  service.Shutdown();
  service.Shutdown();
  EXPECT_FALSE(service.Submit(MakeSubmission(MakeApkBytes(53))).ok());
}

TEST(VettingService, TracesCoverTheFullPipelineAndFailoverSiblings) {
  // Deterministic end-to-end trace shapes, three submissions:
  //   A: both farms scripted to fault their first batch -> the pool fails over
  //      and rejects; A's trace carries one `farm` sibling span PER ATTEMPT,
  //      both marked fault, on two distinct farms.
  //   B: fault windows have passed -> classified ok; its trace must contain
  //      every pipeline stage (submit, shard, batch, farm, classify, store,
  //      resolve) and its breakdown must sum to the end-to-end latency.
  //   C: byte-identical to B -> digest-cache fast-path; a from_cache trace
  //      whose breakdown is submit + resolve only.
  obs::TraceCollector& collector = obs::TraceCollector::Default();
  collector.Clear();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  const char* kStageNames[] = {
      obs::stages::kSubmit,   obs::stages::kShard, obs::stages::kBatch,
      obs::stages::kClassify, obs::stages::kFarm,  obs::stages::kStore,
      obs::stages::kResolve};
  double stage_sum_before = 0.0;
  for (const char* stage : kStageNames) {
    stage_sum_before += metrics.histogram(obs::StageHistogramName(stage)).sum();
  }
  const double traced_sum_before =
      metrics.histogram(obs::names::kServeTracedE2eMs).sum();

  ServiceConfig config = SmallConfig();
  config.scheduler.batch_size = 1;
  config.scheduler.max_linger = std::chrono::milliseconds(1);
  config.pool.num_farms = 2;
  config.pool.max_attempts = 3;
  config.pool.breaker_failure_streak = 10;  // Breakers never open here.
  for (uint32_t farm = 0; farm < 2; ++farm) {
    emu::FaultWindow window;
    window.farm_id = farm;
    window.from_batch = 1;
    window.to_batch = 1;
    config.pool.fault_plan.windows.push_back(window);
  }
  config.trace_sample_rate = 1.0;
  const auto store_dir =
      std::filesystem::temp_directory_path() / "apichecker_trace_test_store";
  std::filesystem::remove_all(store_dir);
  config.store.dir = store_dir.string();
  VettingService service(TestUniverse(), config, TrainedChecker());

  auto submission_a = service.Submit(MakeSubmission(MakeApkBytes(910)));
  ASSERT_TRUE(submission_a.ok());
  EXPECT_EQ(submission_a->get().status, VetStatus::kRejectedUnhealthy);

  const std::vector<uint8_t> apk_b = MakeApkBytes(911);
  auto submission_b = service.Submit(MakeSubmission(apk_b));
  ASSERT_TRUE(submission_b.ok());
  EXPECT_EQ(submission_b->get().status, VetStatus::kOk);

  auto submission_c = service.Submit(MakeSubmission(apk_b));
  ASSERT_TRUE(submission_c.ok());
  const VettingResult result_c = submission_c->get();
  EXPECT_EQ(result_c.status, VetStatus::kOk);
  EXPECT_TRUE(result_c.from_cache);
  service.Shutdown();

  const std::vector<obs::Trace> traces = collector.Completed();
  ASSERT_EQ(traces.size(), 3u);  // Completed() is ordered by start time.
  const obs::Trace& rejected = traces[0];
  const obs::Trace& classified = traces[1];
  const obs::Trace& cached = traces[2];

  // A: one farm span per failover attempt, faulted, on two distinct farms.
  EXPECT_EQ(rejected.status, "rejected_unhealthy");
  std::vector<std::string> attempt_labels;
  for (const obs::StageSpan& span : rejected.spans) {
    if (span.stage != obs::stages::kFarm) {
      continue;
    }
    EXPECT_TRUE(span.fault) << span.label;
    attempt_labels.push_back(span.label);
  }
  ASSERT_EQ(attempt_labels.size(), 2u);
  EXPECT_NE(attempt_labels[0], attempt_labels[1]);
  EXPECT_NEAR(rejected.BreakdownSumMs(), rejected.total_ms,
              0.01 * rejected.total_ms + 0.05);

  // B: every pipeline stage present, breakdown sums to the traced total.
  EXPECT_EQ(classified.status, "ok");
  EXPECT_FALSE(classified.from_cache);
  for (const char* stage : kStageNames) {
    EXPECT_TRUE(classified.HasStage(stage)) << stage;
  }
  EXPECT_NEAR(classified.BreakdownSumMs(), classified.total_ms,
              0.01 * classified.total_ms + 0.05);

  // C: cache fast-path — no queue/farm stages, just submit + resolve.
  EXPECT_EQ(cached.status, "ok");
  EXPECT_TRUE(cached.from_cache);
  EXPECT_TRUE(cached.HasStage(obs::stages::kSubmit));
  EXPECT_FALSE(cached.HasStage(obs::stages::kFarm));
  EXPECT_NEAR(cached.BreakdownSumMs(), cached.total_ms,
              0.01 * cached.total_ms + 0.05);

  // The tail sampler retained the slowest of the three.
  const std::vector<obs::Trace> slowest = collector.Slowest();
  ASSERT_FALSE(slowest.empty());
  EXPECT_GE(slowest.front().total_ms, slowest.back().total_ms);

  // Registry-level invariant: per-stage histogram mass added by this test
  // equals the traced end-to-end mass (the breakdown is a partition).
  double stage_sum_after = 0.0;
  for (const char* stage : kStageNames) {
    stage_sum_after += metrics.histogram(obs::StageHistogramName(stage)).sum();
  }
  const double traced_sum_after =
      metrics.histogram(obs::names::kServeTracedE2eMs).sum();
  const double stage_delta = stage_sum_after - stage_sum_before;
  const double traced_delta = traced_sum_after - traced_sum_before;
  EXPECT_GT(traced_delta, 0.0);
  EXPECT_NEAR(stage_delta, traced_delta, 0.01 * traced_delta + 0.1);

  std::filesystem::remove_all(store_dir);
}

// ---------------------------------------------------------------------------
// Overload control & QoS: per-class lanes, weighted-fair pop, watermark
// shedding, class SLO deadlines, and the storm-tier invariant tests.
// ---------------------------------------------------------------------------

PendingSubmission MakePending(Priority priority, uint64_t tag) {
  PendingSubmission pending;
  pending.blob = ingest::ApkBlob::FromBytes(
      {static_cast<uint8_t>(tag), static_cast<uint8_t>(tag >> 8),
       static_cast<uint8_t>(tag >> 16), 0x7e});
  pending.priority = priority;
  pending.admitted_at = Clock::now();
  pending.deadline = Clock::time_point::max();
  return pending;
}

// Smooth WRR with weights {4,2,1} serves classes in the exact cycle
// I R I B I R I (interactive 4, rescan 2, bulk 1 per 7 pops).
TEST(SubmissionShards, WeightedFairPopHonorsClassShares) {
  SubmissionShards shards(/*num_shards=*/1, /*per_shard_capacity=*/32,
                          {{4, 2, 1}});
  uint64_t tag = 0;
  for (size_t i = 0; i < 8; ++i) {
    for (size_t c = 0; c < kNumPriorityClasses; ++c) {
      ASSERT_EQ(shards.TryPush(MakePending(static_cast<Priority>(c), ++tag)),
                AdmissionOutcome::kAccepted);
    }
  }
  std::array<size_t, kNumPriorityClasses> popped{};
  for (size_t i = 0; i < 14; ++i) {
    auto pending = shards.TryPopAny();
    ASSERT_TRUE(pending.has_value());
    ++popped[static_cast<size_t>(pending->priority)];
  }
  EXPECT_EQ(popped[static_cast<size_t>(Priority::kInteractive)], 8u);
  EXPECT_EQ(popped[static_cast<size_t>(Priority::kRescan)], 4u);
  EXPECT_EQ(popped[static_cast<size_t>(Priority::kBulk)], 2u);
  shards.Close();
}

// Migrated from the PR-2 priority push-front semantics: an interactive
// submission pushed after a bulk backlog is still served first — now because
// its class lane outweighs bulk, not because it jumped a shared queue.
TEST(SubmissionShards, InteractivePopsAheadOfEarlierBulkBacklog) {
  SubmissionShards shards(/*num_shards=*/2, /*per_shard_capacity=*/8);
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(shards.TryPush(MakePending(Priority::kBulk, 100 + i)),
              AdmissionOutcome::kAccepted);
  }
  ASSERT_EQ(shards.TryPush(MakePending(Priority::kInteractive, 999)),
            AdmissionOutcome::kAccepted);
  auto first = shards.TryPopAny();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->priority, Priority::kInteractive);
  shards.Close();
}

// Work conservation: an idle preferred class never blocks a busy one, and
// banked credit from empty sweeps is refunded (no burst later).
TEST(SubmissionShards, WeightedPopIsWorkConservingWhenClassesAreIdle) {
  SubmissionShards shards(/*num_shards=*/1, /*per_shard_capacity=*/8,
                          {{8, 3, 1}});
  EXPECT_EQ(shards.TryPopAny(), std::nullopt);  // Empty sweep: credit refunded.
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(shards.TryPush(MakePending(Priority::kBulk, 200 + i)),
              AdmissionOutcome::kAccepted);
  }
  for (int i = 0; i < 3; ++i) {
    auto pending = shards.TryPopAny();
    ASSERT_TRUE(pending.has_value());
    EXPECT_EQ(pending->priority, Priority::kBulk);
  }
  shards.Close();
}

// Class isolation: a full bulk lane rejects bulk but interactive still has
// its own slots — a storm cannot occupy the capacity interactive needs.
TEST(SubmissionShards, ClassLanesIsolateCapacity) {
  SubmissionShards shards(/*num_shards=*/1, /*per_shard_capacity=*/2);
  ASSERT_EQ(shards.TryPush(MakePending(Priority::kBulk, 1)),
            AdmissionOutcome::kAccepted);
  ASSERT_EQ(shards.TryPush(MakePending(Priority::kBulk, 2)),
            AdmissionOutcome::kAccepted);
  EXPECT_EQ(shards.TryPush(MakePending(Priority::kBulk, 3)),
            AdmissionOutcome::kQueueFull);
  EXPECT_EQ(shards.TryPush(MakePending(Priority::kInteractive, 4)),
            AdmissionOutcome::kAccepted);
  EXPECT_EQ(shards.ApproxDepthByClass(Priority::kBulk), 2u);
  EXPECT_EQ(shards.ApproxDepthByClass(Priority::kInteractive), 1u);
  shards.Close();
}

TEST(OverloadGovernor, WatermarksEscalateImmediatelyAndReleaseWithHysteresis) {
  OverloadConfig config;
  config.shed = true;
  config.queue_pressure = 0.5;
  config.queue_critical = 0.8;
  config.queue_release = 0.2;
  OverloadGovernor governor(config);
  EXPECT_EQ(governor.Evaluate(1, 10, 0), PressureState::kNormal);
  EXPECT_EQ(governor.Evaluate(5, 10, 0), PressureState::kPressure);
  // Dropping below pressure but above release holds the state (hysteresis).
  EXPECT_EQ(governor.Evaluate(3, 10, 0), PressureState::kPressure);
  EXPECT_EQ(governor.Evaluate(8, 10, 0), PressureState::kCritical);
  EXPECT_EQ(governor.Evaluate(3, 10, 0), PressureState::kCritical);
  EXPECT_EQ(governor.Evaluate(1, 10, 0), PressureState::kNormal);
  EXPECT_EQ(governor.transitions(), 3u);

  // The shed lattice: bulk first, then rescan, never interactive.
  EXPECT_FALSE(OverloadGovernor::ShouldShed(PressureState::kNormal,
                                            Priority::kBulk));
  EXPECT_TRUE(OverloadGovernor::ShouldShed(PressureState::kPressure,
                                           Priority::kBulk));
  EXPECT_FALSE(OverloadGovernor::ShouldShed(PressureState::kPressure,
                                            Priority::kRescan));
  EXPECT_TRUE(OverloadGovernor::ShouldShed(PressureState::kCritical,
                                           Priority::kRescan));
  EXPECT_FALSE(OverloadGovernor::ShouldShed(PressureState::kCritical,
                                            Priority::kInteractive));
}

TEST(OverloadGovernor, BlobPoolWatermarkAloneTriggersPressure) {
  OverloadConfig config;
  config.shed = true;
  config.pool_pressure_bytes = 1000;
  config.pool_critical_bytes = 2000;
  OverloadGovernor governor(config);
  EXPECT_EQ(governor.Evaluate(0, 10, 999), PressureState::kNormal);
  EXPECT_EQ(governor.Evaluate(0, 10, 1000), PressureState::kPressure);
  EXPECT_EQ(governor.Evaluate(0, 10, 2500), PressureState::kCritical);
  // Queue is empty but the pool is still pressured: hold critical.
  EXPECT_EQ(governor.Evaluate(0, 10, 1500), PressureState::kCritical);
  EXPECT_EQ(governor.Evaluate(0, 10, 0), PressureState::kNormal);
}

// End-to-end shed order through the service: with a paused scheduler and a
// tiny lane, bulk sheds at the pressure watermark, rescan at critical, and
// interactive is admitted in every state.
TEST(VettingService, ShedsBulkBeforeRescanAndNeverInteractive) {
  ServiceConfig config = SmallConfig();
  config.num_shards = 1;
  config.shard_capacity = 8;  // class_capacity == 8.
  config.start_paused = true;
  config.overload.shed = true;
  config.overload.queue_pressure = 0.25;  // Depth 2.
  config.overload.queue_critical = 0.50;  // Depth 4.
  config.overload.queue_release = 0.10;
  VettingService service(TestUniverse(), config, TrainedChecker());

  uint64_t seed = 7000;
  auto submit = [&](Priority priority) {
    return service.Submit(MakeSubmission(MakeApkBytes(++seed), priority));
  };
  std::vector<std::future<VettingResult>> queued;

  auto bulk1 = submit(Priority::kBulk);
  auto bulk2 = submit(Priority::kBulk);
  ASSERT_TRUE(bulk1.ok() && bulk2.ok());  // Depth 0, 1: below pressure.
  queued.push_back(std::move(*bulk1));
  queued.push_back(std::move(*bulk2));

  // Depth 2 / 8 == pressure: this bulk submission is shed, immediately.
  auto bulk3 = submit(Priority::kBulk);
  ASSERT_TRUE(bulk3.ok());
  ASSERT_EQ(bulk3->wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const VettingResult shed_result = bulk3->get();
  EXPECT_EQ(shed_result.status, VetStatus::kShedOverload);
  EXPECT_EQ(shed_result.error, "pressure");
  EXPECT_EQ(service.pressure_state(), PressureState::kPressure);

  // Rescan still rides through pressure...
  auto rescan1 = submit(Priority::kRescan);
  auto rescan2 = submit(Priority::kRescan);
  ASSERT_TRUE(rescan1.ok() && rescan2.ok());
  queued.push_back(std::move(*rescan1));
  queued.push_back(std::move(*rescan2));

  // ...until depth 4 / 8 == critical sheds it too.
  auto rescan3 = submit(Priority::kRescan);
  ASSERT_TRUE(rescan3.ok());
  ASSERT_EQ(rescan3->wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(rescan3->get().status, VetStatus::kShedOverload);
  EXPECT_EQ(service.pressure_state(), PressureState::kCritical);

  // Interactive is admitted even at critical.
  for (int i = 0; i < 3; ++i) {
    auto interactive = submit(Priority::kInteractive);
    ASSERT_TRUE(interactive.ok());
    EXPECT_NE(interactive->wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "interactive must be queued, not shed";
    queued.push_back(std::move(*interactive));
  }

  service.Start();
  for (auto& future : queued) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
              std::future_status::ready);
    EXPECT_EQ(future.get().status, VetStatus::kOk);
  }
  service.Shutdown();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, stats.resolved());
  EXPECT_EQ(stats.shed_overload, 2u);
  EXPECT_EQ(stats.shed_by_class[static_cast<size_t>(Priority::kBulk)], 1u);
  EXPECT_EQ(stats.shed_by_class[static_cast<size_t>(Priority::kRescan)], 1u);
  EXPECT_EQ(stats.shed_by_class[static_cast<size_t>(Priority::kInteractive)],
            0u);
  EXPECT_GE(service.pressure_transitions(), 2u);
  EXPECT_GE(CounterValue(obs::names::kServeShedTotal), 2u);
  EXPECT_GE(
      CounterValue(
          ClassSeriesName(obs::names::kServeShedTotal, Priority::kBulk).c_str()),
      1u);
}

// A class SLO acts as the default deadline AND pulls the linger in: a single
// tight-SLO submission in a never-filling batch resolves (here: expires,
// visibly, as class-labeled) at its deadline instead of the 500ms linger.
TEST(VettingService, ClassSloSetsDefaultDeadlineAndBoundsLinger) {
  ServiceConfig config = SmallConfig();
  config.scheduler.batch_size = 16;
  config.scheduler.max_linger = std::chrono::milliseconds(500);
  config.overload.class_slo[static_cast<size_t>(Priority::kInteractive)] =
      std::chrono::milliseconds(40);
  VettingService service(TestUniverse(), config, TrainedChecker());

  const auto start = Clock::now();
  auto accepted =
      service.Submit(MakeSubmission(MakeApkBytes(8101), Priority::kInteractive));
  ASSERT_TRUE(accepted.ok());
  const VettingResult result = accepted->get();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  EXPECT_EQ(result.status, VetStatus::kDeadlineExpired);
  EXPECT_LT(elapsed_ms, 400.0);  // Flushed at the SLO, not the linger.
  service.Shutdown();
  EXPECT_EQ(service.stats().expired_by_class[static_cast<size_t>(
                Priority::kInteractive)],
            1u);
}

// ---------------------------------------------------------------------------
// Property-style storm tier: randomized storms (seeded priorities, sizes,
// fault rates, hot swaps, spill thresholds) must hold the extended accounting
// invariant and the "interactive never shed" guarantee on every seed.
// ---------------------------------------------------------------------------

const std::vector<std::vector<uint8_t>>& StormApkPool() {
  static const std::vector<std::vector<uint8_t>> pool = [] {
    std::vector<std::vector<uint8_t>> apks;
    for (uint64_t i = 0; i < 5; ++i) {
      apks.push_back(MakeApkBytes(9100 + i));
    }
    return apks;
  }();
  return pool;
}

void RunStorm(uint64_t seed) {
  SCOPED_TRACE("storm seed " + std::to_string(seed));
  util::Rng rng(seed);

  const ingest::ApkBlob::SpillConfig previous_spill =
      ingest::ApkBlob::SetSpillConfig(
          seed % 3 == 0
              ? ingest::ApkBlob::SpillConfig{1 + rng.NextBounded(64 * 1024), ""}
              : ingest::ApkBlob::SpillConfig{});

  ServiceConfig config;
  config.num_shards = 1 + rng.NextBounded(3);
  config.shard_capacity = 2 + rng.NextBounded(12);
  config.cache_capacity = 64;
  config.farm.num_emulators = 2;
  config.farm.worker_threads = 2;
  config.scheduler.batch_size = 1 + rng.NextBounded(6);
  config.scheduler.max_linger =
      std::chrono::milliseconds(rng.NextBounded(5));
  config.pool.num_farms = 1 + rng.NextBounded(2);
  if (config.pool.num_farms > 1 && rng.Bernoulli(0.5)) {
    emu::FaultWindow window;
    window.farm_id = 0;
    window.from_batch = 1;
    window.to_batch = 1 + rng.NextBounded(3);
    config.pool.fault_plan.windows.push_back(window);
    config.pool.max_attempts = 2;
  }
  config.start_paused = rng.Bernoulli(0.5);
  config.overload.shed = rng.Bernoulli(0.5);
  config.overload.queue_pressure = rng.Uniform(0.2, 0.6);
  config.overload.queue_critical = config.overload.queue_pressure + 0.2;
  config.overload.queue_release = 0.1;
  for (size_t c = 0; c < kNumPriorityClasses; ++c) {
    config.overload.class_weights[c] =
        static_cast<uint32_t>(1 + rng.NextBounded(8));
  }
  if (rng.Bernoulli(0.5)) {
    config.overload.class_slo[static_cast<size_t>(Priority::kInteractive)] =
        std::chrono::milliseconds(20 + rng.NextBounded(60));
  }
  if (rng.Bernoulli(0.3)) {
    config.overload.class_slo[static_cast<size_t>(Priority::kBulk)] =
        std::chrono::milliseconds(1 + rng.NextBounded(30));
  }

  VettingService service(TestUniverse(), config, TrainedChecker());

  constexpr size_t kSubmissions = 16;
  std::vector<std::future<VettingResult>> futures;
  size_t admission_rejected = 0;
  for (size_t i = 0; i < kSubmissions; ++i) {
    Submission submission;
    submission.priority = static_cast<Priority>(rng.NextBounded(3));
    if (rng.Bernoulli(0.15)) {
      // Garbage bytes of a seeded size: the parse-error path under storm.
      std::vector<uint8_t> junk(4 + rng.NextBounded(512));
      for (auto& byte : junk) {
        byte = static_cast<uint8_t>(rng.Next());
      }
      submission.blob = ingest::ApkBlob::FromBytes(std::move(junk));
    } else {
      submission.blob = ingest::ApkBlob::FromBytes(
          StormApkPool()[rng.NextBounded(StormApkPool().size())]);
    }
    if (rng.Bernoulli(0.2)) {
      submission.deadline = std::chrono::milliseconds(rng.NextBounded(3));
    }
    auto accepted = service.Submit(std::move(submission));
    if (accepted.ok()) {
      futures.push_back(std::move(*accepted));
    } else {
      ++admission_rejected;
    }
    if (i == kSubmissions / 2 && rng.Bernoulli(0.4)) {
      EXPECT_TRUE(service.SwapModelFromBlob(TrainedBlob()).ok());
    }
  }
  service.Start();

  std::array<uint64_t, 5> by_status{};
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "submission hung";
    ++by_status[static_cast<size_t>(future.get().status)];
  }
  service.Shutdown();
  ingest::ApkBlob::SetSpillConfig(previous_spill);

  const ServiceStats stats = service.stats();
  // The tentpole invariant, extended for shedding: every accepted submission
  // resolved with exactly one visible status.
  EXPECT_EQ(stats.accepted, stats.resolved());
  EXPECT_EQ(stats.accepted, futures.size());
  EXPECT_EQ(stats.submitted, stats.accepted + stats.rejected);
  EXPECT_EQ(stats.rejected, admission_rejected);
  EXPECT_EQ(by_status[static_cast<size_t>(VetStatus::kOk)], stats.completed);
  EXPECT_EQ(by_status[static_cast<size_t>(VetStatus::kDeadlineExpired)],
            stats.deadline_expired);
  EXPECT_EQ(by_status[static_cast<size_t>(VetStatus::kParseError)],
            stats.parse_errors);
  EXPECT_EQ(by_status[static_cast<size_t>(VetStatus::kRejectedUnhealthy)],
            stats.rejected_unhealthy);
  EXPECT_EQ(by_status[static_cast<size_t>(VetStatus::kShedOverload)],
            stats.shed_overload);
  // Interactive is never shed, no matter how the storm landed.
  EXPECT_EQ(stats.shed_by_class[static_cast<size_t>(Priority::kInteractive)],
            0u);
  const uint64_t class_shed_sum =
      stats.shed_by_class[0] + stats.shed_by_class[1] + stats.shed_by_class[2];
  EXPECT_EQ(class_shed_sum, stats.shed_overload);
}

TEST(VettingServiceStorm, RandomizedStormsHoldTheAccountingInvariant) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    RunStorm(seed);
    if (testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// Storm soak (ctest label: stress; runs under TSan in tools/ci.sh): four
// producer classes flood a flapping 3-farm pool with shedding enabled while
// the spill threshold crosses mid-storm from "nothing spills" to "everything
// spills". Zero acknowledged verdicts may be lost and interactive is never
// shed.
TEST(VettingServiceSoak, MixedClassStormShedsSpillsAndLosesNothing) {
  const ingest::ApkBlob::SpillConfig previous_spill =
      ingest::ApkBlob::SetSpillConfig({1 << 30, ""});  // Effectively off.

  ServiceConfig config;
  config.num_shards = 2;
  config.shard_capacity = 24;
  config.cache_capacity = 4096;
  config.farm.num_emulators = 4;
  config.farm.worker_threads = 2;
  config.scheduler.batch_size = 4;
  config.scheduler.max_linger = std::chrono::milliseconds(2);
  config.pool.num_farms = 3;
  config.pool.max_attempts = 3;
  config.pool.breaker_failure_streak = 2;
  config.pool.breaker_cooldown = std::chrono::milliseconds(30);
  for (uint64_t from = 1; from <= 13; from += 6) {
    emu::FaultWindow window;
    window.farm_id = 0;
    window.from_batch = from;
    window.to_batch = from + 2;
    config.pool.fault_plan.windows.push_back(window);
  }
  config.overload.shed = true;
  config.overload.queue_pressure = 0.5;
  config.overload.queue_critical = 0.8;
  config.overload.queue_release = 0.3;
  config.overload.class_slo[static_cast<size_t>(Priority::kInteractive)] =
      std::chrono::milliseconds(30'000);  // Generous: a deadline, not a trap.
  VettingService service(TestUniverse(), config, TrainedChecker());

  constexpr size_t kDistinctApks = 6;
  constexpr size_t kSubmitsPerProducer = 40;
  std::vector<std::vector<uint8_t>> apks;
  for (size_t i = 0; i < kDistinctApks; ++i) {
    apks.push_back(MakeApkBytes(9600 + i));
  }

  // Four producer classes: interactive, rescan, and two bulk storms. Blobs
  // are materialized at submit time so the mid-storm spill threshold change
  // actually changes where fresh payloads land.
  const Priority producer_class[4] = {Priority::kInteractive, Priority::kRescan,
                                      Priority::kBulk, Priority::kBulk};
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<VettingResult>>> futures(4);
  std::atomic<size_t> admission_rejected{0};
  for (size_t t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (size_t i = 0; i < kSubmitsPerProducer; ++i) {
        if (t == 0 && i == kSubmitsPerProducer / 2) {
          // Mid-storm spill-threshold crossing: from "nothing spills" to
          // "every fresh APK spills".
          ingest::ApkBlob::SetSpillConfig({8 * 1024, ""});
        }
        Submission submission;
        submission.priority = producer_class[t];
        submission.blob = ingest::ApkBlob::FromBytes(
            apks[(t * 5 + i) % kDistinctApks]);
        auto accepted = service.Submit(std::move(submission));
        if (accepted.ok()) {
          futures[t].push_back(std::move(*accepted));
        } else {
          admission_rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }

  size_t resolved = 0;
  size_t interactive_shed_seen = 0;
  for (size_t t = 0; t < 4; ++t) {
    for (auto& future : futures[t]) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
                std::future_status::ready)
          << "submission hung";
      const VettingResult result = future.get();
      if (producer_class[t] == Priority::kInteractive &&
          result.status == VetStatus::kShedOverload) {
        ++interactive_shed_seen;
      }
      ++resolved;
    }
  }
  service.Shutdown();
  ingest::ApkBlob::SetSpillConfig(previous_spill);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, stats.resolved());  // Zero lost verdicts.
  EXPECT_EQ(stats.accepted, resolved);
  EXPECT_EQ(stats.accepted + admission_rejected.load(),
            4 * kSubmitsPerProducer);
  EXPECT_EQ(interactive_shed_seen, 0u);
  EXPECT_EQ(stats.shed_by_class[static_cast<size_t>(Priority::kInteractive)],
            0u);
  // The threshold crossing actually spilled fresh payloads.
  EXPECT_GT(CounterValue(obs::names::kIngestBlobsSpilledTotal), 0u);
}

}  // namespace
}  // namespace apichecker::serve
