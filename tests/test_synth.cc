// Unit tests for src/synth: behaviour templates, the corpus generator
// (determinism, lineages, evasion mechanics), and APK materialization.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "android/api_universe.h"
#include "apk/apk.h"
#include "synth/behavior_templates.h"
#include "synth/corpus.h"

namespace apichecker::synth {
namespace {

const android::ApiUniverse& TestUniverse() {
  static const android::ApiUniverse universe = [] {
    android::UniverseConfig config;
    config.num_apis = 6'000;
    return android::ApiUniverse::Generate(config);
  }();
  return universe;
}

TEST(BehaviorTemplates, BenignArchetypesAreBenign) {
  const auto archetypes = BuildBenignArchetypes(TestUniverse(), 1);
  EXPECT_EQ(archetypes.size(), 12u);
  for (const auto& t : archetypes) {
    EXPECT_FALSE(t.malicious);
    EXPECT_FALSE(t.name.empty());
    EXPECT_GT(t.mean_activities, 0.0);
  }
}

TEST(BehaviorTemplates, MalwareFamiliesCarrySignal) {
  const auto families = BuildMalwareFamilies(TestUniverse(), 1);
  EXPECT_EQ(families.size(), 16u);
  for (const auto& t : families) {
    EXPECT_TRUE(t.malicious);
    EXPECT_FALSE(t.characteristic_apis.empty());
    EXPECT_LT(t.common_op_scale, 1.0);  // Malware underuses common plumbing.
  }
}

TEST(BehaviorTemplates, FamiliesAreDistinct) {
  const auto families = BuildMalwareFamilies(TestUniverse(), 1);
  std::set<android::ApiId> apis_a, apis_b;
  for (const auto& wa : families[0].characteristic_apis) {
    apis_a.insert(wa.api);
  }
  for (const auto& wa : families[1].characteristic_apis) {
    apis_b.insert(wa.api);
  }
  std::vector<android::ApiId> symmetric_difference;
  std::set_symmetric_difference(apis_a.begin(), apis_a.end(), apis_b.begin(), apis_b.end(),
                                std::back_inserter(symmetric_difference));
  EXPECT_GT(symmetric_difference.size(), 20u);
}

TEST(BehaviorTemplates, GraywareDilutesParent) {
  const auto families = BuildMalwareFamilies(TestUniverse(), 1);
  const BehaviorTemplate gray = MakeGraywareArchetype(families[6], 3);
  EXPECT_FALSE(gray.malicious);
  EXPECT_LT(gray.population_weight, 1.0);
  ASSERT_EQ(gray.characteristic_apis.size(), families[6].characteristic_apis.size());
  for (size_t i = 0; i < gray.characteristic_apis.size(); ++i) {
    EXPECT_LT(gray.characteristic_apis[i].use_probability,
              families[6].characteristic_apis[i].use_probability);
  }
}

TEST(CorpusGenerator, DeterministicStream) {
  CorpusConfig config;
  config.seed = 99;
  CorpusGenerator a(TestUniverse(), config);
  CorpusGenerator b(TestUniverse(), config);
  for (int i = 0; i < 50; ++i) {
    const AppProfile pa = a.Next();
    const AppProfile pb = b.Next();
    EXPECT_EQ(pa.package_name, pb.package_name);
    EXPECT_EQ(pa.malicious, pb.malicious);
    EXPECT_EQ(pa.usage.size(), pb.usage.size());
    EXPECT_EQ(pa.behavior_seed, pb.behavior_seed);
  }
}

TEST(CorpusGenerator, MaliciousFractionApproximatesConfig) {
  CorpusConfig config;
  config.num_apps = 3'000;
  CorpusGenerator gen(TestUniverse(), config);
  size_t malicious = 0;
  for (const AppProfile& p : gen.GenerateAll()) {
    malicious += p.malicious;
  }
  EXPECT_NEAR(static_cast<double>(malicious) / 3'000.0, config.malicious_fraction, 0.02);
}

TEST(CorpusGenerator, UpdatesShareLineage) {
  CorpusConfig config;
  config.update_fraction = 0.9;
  CorpusGenerator gen(TestUniverse(), config);
  std::map<std::string, uint32_t> last_version;
  std::map<std::string, bool> label;
  int updates = 0;
  for (int i = 0; i < 400; ++i) {
    const AppProfile p = gen.Next();
    if (p.is_update) {
      ++updates;
      ASSERT_TRUE(last_version.count(p.package_name));
      EXPECT_GT(p.version_code, last_version[p.package_name]);
      // Updates never flip the ground-truth label of a lineage.
      EXPECT_EQ(label[p.package_name], p.malicious);
    }
    last_version[p.package_name] = p.version_code;
    label[p.package_name] = p.malicious;
  }
  EXPECT_GT(updates, 250);
}

TEST(CorpusGenerator, ActivitiesReferencedSubsetDeclared) {
  CorpusConfig config;
  CorpusGenerator gen(TestUniverse(), config);
  for (int i = 0; i < 200; ++i) {
    const AppProfile p = gen.Next();
    EXPECT_GE(p.num_activities, 1);
    EXPECT_GE(p.num_referenced_activities, 1);
    EXPECT_LE(p.num_referenced_activities, p.num_activities);
    for (const ApiUsage& usage : p.usage) {
      if (usage.activity != 0xFF) {
        EXPECT_LT(usage.activity, p.num_referenced_activities);
      }
    }
  }
}

TEST(CorpusGenerator, ReflectionHiddenUsageKeepsPermissions) {
  CorpusConfig config;
  CorpusGenerator gen(TestUniverse(), config);
  bool found_evader = false;
  for (int i = 0; i < 4'000 && !found_evader; ++i) {
    const AppProfile p = gen.Next();
    if (!p.malicious) {
      continue;
    }
    for (const ApiUsage& usage : p.usage) {
      if (!usage.via_reflection) {
        continue;
      }
      const auto& info = TestUniverse().api(usage.api);
      if (info.permission >= 0) {
        // The permission prerequisite must appear in the manifest even
        // though the API call is hidden (§4.5).
        EXPECT_TRUE(std::find(p.permissions.begin(), p.permissions.end(),
                              static_cast<android::PermissionId>(info.permission)) !=
                    p.permissions.end());
        found_evader = true;
      }
    }
  }
  EXPECT_TRUE(found_evader);
}

TEST(BuildDex, OmitsReflectionUsage) {
  AppProfile p;
  p.package_name = "com.test.app";
  p.behavior_seed = 1;
  p.num_activities = 2;
  p.num_referenced_activities = 2;
  ApiUsage visible;
  visible.api = 0;
  visible.invocations_per_kevent = 5.0f;
  ApiUsage hidden;
  hidden.api = 1;
  hidden.invocations_per_kevent = 5.0f;
  hidden.via_reflection = true;
  p.usage = {visible, hidden};

  const apk::DexFile dex = BuildDex(p, TestUniverse());
  EXPECT_EQ(dex.behaviors.size(), 1u);
  EXPECT_EQ(dex.method_name_idx.size(), 1u);
  EXPECT_EQ(dex.MethodName(0), TestUniverse().api(0).name);
}

TEST(BuildDex, EncodesRuntimeFlagsAndGuards) {
  AppProfile p;
  p.package_name = "com.test.app";
  p.behavior_seed = 2;
  p.num_activities = 1;
  p.num_referenced_activities = 1;
  p.emulator_sensitivity = EmulatorSensitivity::kDetectsConfiguration;
  p.has_native_code = true;
  ApiUsage guarded;
  guarded.api = 3;
  guarded.invocations_per_kevent = 2.0f;
  guarded.guarded = true;
  ApiUsage gated;
  gated.api = 4;
  gated.invocations_per_kevent = 2.0f;
  gated.sensor_gated = true;
  p.usage = {guarded, gated};

  const apk::DexFile dex = BuildDex(p, TestUniverse());
  EXPECT_TRUE(dex.detects_emulator());
  EXPECT_TRUE(dex.has_native_code());
  ASSERT_EQ(dex.behaviors.size(), 2u);
  EXPECT_TRUE(dex.behaviors[0].guarded());
  EXPECT_TRUE(dex.behaviors[1].sensor_gated());
}

TEST(BuildManifest, ResolvesCatalogueNames) {
  CorpusConfig config;
  CorpusGenerator gen(TestUniverse(), config);
  const AppProfile p = gen.Next();
  const apk::Manifest manifest = BuildManifest(p, TestUniverse());
  EXPECT_EQ(manifest.package_name, p.package_name);
  EXPECT_EQ(manifest.permissions.size(), p.permissions.size());
  EXPECT_EQ(manifest.activities.size(), p.num_activities);
  for (const std::string& perm : manifest.permissions) {
    EXPECT_TRUE(perm.rfind("android.permission.", 0) == 0) << perm;
  }
}

TEST(BuildApkBytes, ParsesBackIdentically) {
  CorpusConfig config;
  CorpusGenerator gen(TestUniverse(), config);
  for (int i = 0; i < 20; ++i) {
    const AppProfile p = gen.Next();
    const auto bytes = BuildApkBytes(p, TestUniverse());
    auto apk = apk::ParseApk(bytes);
    ASSERT_TRUE(apk.ok()) << apk.error();
    EXPECT_EQ(apk->manifest.package_name, p.package_name);
    EXPECT_EQ(apk->manifest.version_code, p.version_code);
    EXPECT_EQ(apk->has_native_lib, p.has_native_code);
    EXPECT_EQ(apk->dex.behavior_seed, p.behavior_seed);
    size_t visible = 0;
    for (const ApiUsage& usage : p.usage) {
      visible += usage.via_reflection ? 0 : 1;
    }
    EXPECT_EQ(apk->dex.behaviors.size(), visible);
  }
}

TEST(CorpusGenerator, CloneUpdatesShareBehaviour) {
  CorpusConfig config;
  config.update_fraction = 0.95;
  config.exact_clone_fraction = 1.0;  // Every update is an exact clone.
  CorpusGenerator gen(TestUniverse(), config);
  std::map<std::string, std::vector<ApiUsage>> first_usage;
  int clones_checked = 0;
  for (int i = 0; i < 200; ++i) {
    const AppProfile p = gen.Next();
    auto it = first_usage.find(p.package_name);
    if (it == first_usage.end()) {
      first_usage.emplace(p.package_name, p.usage);
    } else if (p.is_update) {
      ASSERT_EQ(p.usage.size(), it->second.size());
      for (size_t u = 0; u < p.usage.size(); ++u) {
        EXPECT_EQ(p.usage[u].api, it->second[u].api);
      }
      ++clones_checked;
    }
  }
  EXPECT_GT(clones_checked, 50);
}

TEST(CorpusGenerator, UpdateAttacksCompromiseBenignLineages) {
  CorpusConfig config;
  config.update_fraction = 0.9;
  config.malicious_fraction = 0.0;  // Every lineage starts benign.
  config.update_attack_rate = 0.25;
  CorpusGenerator gen(TestUniverse(), config);
  std::map<std::string, bool> compromised;
  int attacks = 0, post_attack_updates = 0;
  for (int i = 0; i < 600; ++i) {
    const AppProfile p = gen.Next();
    if (p.is_update_attack) {
      ++attacks;
      EXPECT_TRUE(p.malicious);
      EXPECT_TRUE(p.is_update);
      EXPECT_FALSE(compromised[p.package_name]);  // First compromise only.
      compromised[p.package_name] = true;
      // The payload is visible in the profile: attacker-useful APIs present.
      size_t useful = 0;
      for (const ApiUsage& usage : p.usage) {
        useful += TestUniverse().api(usage.api).attacker_useful ? 1 : 0;
      }
      EXPECT_GT(useful, 10u);
    } else if (p.is_update && compromised[p.package_name]) {
      // Once compromised, the lineage stays malicious.
      EXPECT_TRUE(p.malicious);
      ++post_attack_updates;
    }
  }
  EXPECT_GT(attacks, 20);
  EXPECT_GT(post_attack_updates, 5);
}

TEST(CorpusGenerator, UpdateAttackEvadesFingerprintButNotManifest) {
  CorpusConfig config;
  config.update_fraction = 1.0;  // Only the first app creates a lineage.
  config.malicious_fraction = 0.0;
  config.update_attack_rate = 1.0;  // First update is always the attack.
  CorpusGenerator gen(TestUniverse(), config);
  const AppProfile v1 = gen.Next();
  AppProfile v2 = gen.Next();
  ASSERT_TRUE(v2.is_update_attack);
  // The attacked version's code differs from every prior version, so a
  // fingerprint database of v1 cannot match it.
  const apk::DexFile dex1 = BuildDex(v1, TestUniverse());
  const apk::DexFile dex2 = BuildDex(v2, TestUniverse());
  EXPECT_NE(dex1.behaviors.size(), dex2.behaviors.size());
  // But the manifest now requests the payload's permissions.
  EXPECT_GT(v2.permissions.size(), v1.permissions.size());
}

TEST(CorpusGenerator, RefreshTemplatesAdoptsNewUniverse) {
  android::UniverseConfig universe_config;
  universe_config.num_apis = 6'000;
  android::ApiUniverse universe = android::ApiUniverse::Generate(universe_config);
  CorpusConfig config;
  CorpusGenerator gen(universe, config);
  const size_t benign_before = gen.benign_templates().size();
  universe.AddSdkLevel(28, 500, 5);
  gen.RefreshTemplates(7);
  EXPECT_EQ(gen.benign_templates().size(), benign_before);
  // New-SDK attacker-useful APIs may now appear in family vocabularies.
  bool uses_new_api = false;
  for (const auto& family : gen.malware_templates()) {
    for (const auto& wa : family.characteristic_apis) {
      uses_new_api |= universe.api(wa.api).sdk_level == 28;
    }
  }
  EXPECT_TRUE(uses_new_api);
}

}  // namespace
}  // namespace apichecker::synth
