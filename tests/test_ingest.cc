// Unit tests for src/ingest and util::Sha1Hasher: incremental hashing agrees
// with the one-shot digest across every block boundary, the chunked readers
// (memory and file) produce identical blobs with exactly one SHA-1 pass, and
// the process-wide blob pool gauge rises and falls with blob lifetimes. The
// ApkBlobSoak suite (ctest label: stress) churns concurrent handle
// copy/release across threads and runs under TSan in tools/ci.sh.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/apk_blob.h"
#include "ingest/stream_reader.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "store/io_fault.h"
#include "util/rng.h"
#include "util/sha1.h"

namespace apichecker::ingest {
namespace {

std::vector<uint8_t> DeterministicBytes(size_t n, uint64_t seed = 7) {
  std::vector<uint8_t> bytes(n);
  util::Rng rng(seed);
  for (auto& byte : bytes) {
    byte = static_cast<uint8_t>(rng.Next() & 0xFF);
  }
  return bytes;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Default().counter(name).value();
}

TEST(Sha1Hasher, MatchesKnownVectors) {
  // FIPS 180-1 appendix vectors.
  util::Sha1Hasher hasher;
  EXPECT_EQ(hasher.FinalHex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  const std::string abc = "abc";
  hasher.Update(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(abc.data()), abc.size()));
  EXPECT_EQ(hasher.FinalHex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Hasher, StreamingMatchesOneShotAcrossBlockBoundaries) {
  // 55/56 straddle the padding split, 63/64/65 the block edge; larger sizes
  // cover multi-block processing.
  for (size_t n : {0u, 1u, 31u, 55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u,
                   1000u, 4096u, 70'000u}) {
    const std::vector<uint8_t> bytes = DeterministicBytes(n, 100 + n);
    const std::string expected = util::Sha1Hex(bytes);
    // Feed byte-at-a-time for small inputs, odd-sized slices for big ones.
    util::Sha1Hasher hasher;
    const size_t step = n < 256 ? 1 : 337;
    for (size_t offset = 0; offset < n; offset += step) {
      const size_t len = std::min(step, n - offset);
      hasher.Update(std::span<const uint8_t>(bytes.data() + offset, len));
    }
    EXPECT_EQ(hasher.FinalHex(), expected) << "n=" << n;
  }
}

TEST(Sha1Hasher, FinalResetsForReuse) {
  const std::vector<uint8_t> bytes = DeterministicBytes(513);
  util::Sha1Hasher hasher;
  hasher.Update(bytes);
  const std::string first = hasher.FinalHex();
  hasher.Update(bytes);  // Same input after the implicit reset...
  EXPECT_EQ(hasher.FinalHex(), first);  // ...same digest.
  EXPECT_EQ(first, util::Sha1Hex(bytes));
}

TEST(ApkBlob, FromBytesHashesOnceAndExposesPayload) {
  const std::vector<uint8_t> bytes = DeterministicBytes(777);
  const uint64_t hashes_before = CounterValue(obs::names::kServeHashOpsTotal);
  const uint64_t blobs_before = CounterValue(obs::names::kIngestBlobsTotal);
  ApkBlob blob = ApkBlob::FromBytes(bytes);
  EXPECT_EQ(CounterValue(obs::names::kServeHashOpsTotal), hashes_before + 1);
  EXPECT_EQ(CounterValue(obs::names::kIngestBlobsTotal), blobs_before + 1);
  EXPECT_EQ(blob.size(), bytes.size());
  EXPECT_EQ(blob.digest(), util::Sha1Hex(bytes));
  EXPECT_TRUE(std::equal(blob.bytes().begin(), blob.bytes().end(), bytes.begin()));
  // Copying the handle is refcounting, not hashing or allocating.
  ApkBlob copy = blob;
  EXPECT_EQ(blob.use_count(), 2u);
  EXPECT_EQ(copy.digest(), blob.digest());
  EXPECT_EQ(CounterValue(obs::names::kServeHashOpsTotal), hashes_before + 1);
  EXPECT_EQ(CounterValue(obs::names::kIngestBlobsTotal), blobs_before + 1);
}

TEST(ApkBlob, EmptyHandleIsInert) {
  ApkBlob blob;
  EXPECT_TRUE(blob.empty());
  EXPECT_EQ(blob.size(), 0u);
  EXPECT_EQ(blob.use_count(), 0);
  EXPECT_TRUE(blob.digest().empty());
  EXPECT_TRUE(blob.bytes().empty());
}

TEST(ApkBlob, PoolGaugeRisesAndFallsWithBlobLifetimes) {
  const uint64_t baseline = ApkBlob::PoolBytes();
  {
    ApkBlob a = ApkBlob::FromBytes(DeterministicBytes(10'000));
    EXPECT_EQ(ApkBlob::PoolBytes(), baseline + 10'000);
    {
      ApkBlob b = ApkBlob::FromBytes(DeterministicBytes(5'000));
      ApkBlob b2 = b;  // A second handle must NOT double-count the bytes.
      EXPECT_EQ(ApkBlob::PoolBytes(), baseline + 15'000);
      EXPECT_GE(ApkBlob::PoolPeakBytes(), baseline + 15'000);
    }
    EXPECT_EQ(ApkBlob::PoolBytes(), baseline + 10'000);
  }
  EXPECT_EQ(ApkBlob::PoolBytes(), baseline);
  EXPECT_GE(ApkBlob::PoolPeakBytes(), baseline + 15'000);
}

TEST(StreamReader, MemoryReaderChunksAndDigestMatchesOneShot) {
  const std::vector<uint8_t> bytes = DeterministicBytes(10'000);
  const uint64_t chunks_before = CounterValue(obs::names::kIngestChunksTotal);
  const uint64_t streamed_before =
      CounterValue(obs::names::kIngestBytesStreamedTotal);
  const uint64_t hashes_before = CounterValue(obs::names::kServeHashOpsTotal);

  MemoryStreamReader reader(bytes);
  ASSERT_EQ(reader.SizeHint(), bytes.size());
  auto blob = ReadApkBlob(reader, /*chunk_bytes=*/1024);
  ASSERT_TRUE(blob.ok()) << blob.error();
  EXPECT_EQ(blob->size(), bytes.size());
  EXPECT_EQ(blob->digest(), util::Sha1Hex(bytes));
  // ceil(10000 / 1024) chunks, one hash pass, every byte accounted.
  EXPECT_EQ(CounterValue(obs::names::kIngestChunksTotal), chunks_before + 10);
  EXPECT_EQ(CounterValue(obs::names::kIngestBytesStreamedTotal),
            streamed_before + bytes.size());
  EXPECT_EQ(CounterValue(obs::names::kServeHashOpsTotal), hashes_before + 1);
}

TEST(StreamReader, ChunkSizeIsConfigurable) {
  const std::vector<uint8_t> bytes = DeterministicBytes(4'096);
  const uint64_t chunks_before = CounterValue(obs::names::kIngestChunksTotal);
  MemoryStreamReader coarse(bytes);
  ASSERT_TRUE(ReadApkBlob(coarse, 4'096).ok());
  const uint64_t after_coarse = CounterValue(obs::names::kIngestChunksTotal);
  EXPECT_EQ(after_coarse, chunks_before + 1);
  MemoryStreamReader fine(bytes);
  ASSERT_TRUE(ReadApkBlob(fine, 256).ok());
  EXPECT_EQ(CounterValue(obs::names::kIngestChunksTotal), after_coarse + 16);
}

TEST(StreamReader, FileReaderStreamsFromDiskIdenticallyToMemory) {
  const std::vector<uint8_t> bytes = DeterministicBytes(50'000, 42);
  const std::string path =
      (std::filesystem::temp_directory_path() / "apichecker_ingest_test.apk")
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  FileStreamReader reader(path);
  EXPECT_EQ(reader.SizeHint(), bytes.size());
  auto from_file = ReadApkBlob(reader, /*chunk_bytes=*/4'096);
  ASSERT_TRUE(from_file.ok()) << from_file.error();
  auto from_path = ReadApkBlobFromFile(path, /*chunk_bytes=*/512);
  ASSERT_TRUE(from_path.ok()) << from_path.error();
  EXPECT_EQ(from_file->digest(), util::Sha1Hex(bytes));
  EXPECT_EQ(from_path->digest(), from_file->digest());
  EXPECT_EQ(from_path->size(), bytes.size());
  std::filesystem::remove(path);
}

TEST(StreamReader, MissingFileIsAResultErrorNotACrash) {
  auto blob = ReadApkBlobFromFile("/nonexistent/apichecker/nope.apk");
  ASSERT_FALSE(blob.ok());
  EXPECT_NE(blob.error().find("nope.apk"), std::string::npos);
}

// Yields at most one byte per Read() call and never reports a size hint —
// the worst legal short-read behavior a network-backed reader can exhibit.
class OneByteReader : public ApkStreamReader {
 public:
  explicit OneByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  util::Result<size_t> Read(std::span<uint8_t> out) override {
    if (offset_ == bytes_.size() || out.empty()) return size_t{0};
    out[0] = bytes_[offset_++];
    return size_t{1};
  }

 private:
  std::span<const uint8_t> bytes_;
  size_t offset_ = 0;
};

// Returns a few bytes, then fails mid-stream — a connection dying partway
// through an upload.
class TornReader : public ApkStreamReader {
 public:
  explicit TornReader(size_t bytes_before_error)
      : remaining_(bytes_before_error) {}

  util::Result<size_t> Read(std::span<uint8_t> out) override {
    if (remaining_ == 0) return util::Err("connection torn mid-chunk");
    const size_t n = std::min(out.size(), remaining_);
    std::fill_n(out.begin(), n, uint8_t{0x5A});
    remaining_ -= n;
    return n;
  }

 private:
  size_t remaining_;
};

TEST(StreamReader, ShortReadProneReaderMatchesOneShotDigest) {
  // ReadApkBlob must keep draining a reader that fills one byte per call;
  // a single short read is not EOF. Digest and size must be identical to
  // the one-shot path, with no dependence on SizeHint.
  const std::vector<uint8_t> bytes = DeterministicBytes(3'000, 11);
  OneByteReader reader(bytes);
  auto blob = ReadApkBlob(reader, /*chunk_bytes=*/256);
  ASSERT_TRUE(blob.ok()) << blob.error();
  EXPECT_EQ(blob->size(), bytes.size());
  EXPECT_EQ(blob->digest(), util::Sha1Hex(bytes));
  EXPECT_EQ(blob->digest(), ApkBlob::FromBytes(std::vector<uint8_t>(bytes)).digest());
}

TEST(StreamReader, EofMidChunkSurfacesAsResultError) {
  TornReader reader(/*bytes_before_error=*/100);
  auto blob = ReadApkBlob(reader, /*chunk_bytes=*/64);
  ASSERT_FALSE(blob.ok());
  EXPECT_NE(blob.error().find("torn mid-chunk"), std::string::npos);
}

TEST(StreamReader, ZeroLengthStreamYieldsEmptyBlob) {
  const std::vector<uint8_t> empty;
  OneByteReader reader(empty);
  auto blob = ReadApkBlob(reader, /*chunk_bytes=*/256);
  ASSERT_TRUE(blob.ok()) << blob.error();
  EXPECT_EQ(blob->size(), 0u);
  // SHA-1 of the empty message, same as the one-shot hasher.
  EXPECT_EQ(blob->digest(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

// Stress suite (ctest label "stress"; tools/ci.sh runs it under TSan):
// concurrent handle churn over shared blobs. The refcount, the pool gauge,
// and the peak tracker are all cross-thread state; a race here corrupts the
// accounting or double-frees the buffer.
TEST(ApkBlobSoak, ConcurrentCopyAndReleaseKeepsPoolAccountingExact) {
  const uint64_t baseline = ApkBlob::PoolBytes();
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 400;
  std::vector<ApkBlob> shared;
  for (size_t i = 0; i < 4; ++i) {
    shared.push_back(ApkBlob::FromBytes(DeterministicBytes(8'192, i)));
  }
  const uint64_t with_shared = ApkBlob::PoolBytes();

  std::atomic<uint64_t> digests_checked{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(t);
      for (size_t round = 0; round < kRounds; ++round) {
        // Copy a shared handle, ingest a private blob, drop both.
        ApkBlob copy = shared[rng.NextBounded(shared.size())];
        ApkBlob own = ApkBlob::FromBytes(
            DeterministicBytes(512 + rng.NextBounded(2'048), t * 10'000 + round));
        if (!copy.digest().empty() && own.size() >= 512) {
          digests_checked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(digests_checked.load(), kThreads * kRounds);
  EXPECT_EQ(ApkBlob::PoolBytes(), with_shared);  // Private blobs all released.
  for (const ApkBlob& blob : shared) {
    EXPECT_EQ(blob.use_count(), 1u);  // Every cross-thread copy released.
  }
  shared.clear();
  EXPECT_EQ(ApkBlob::PoolBytes(), baseline);
  EXPECT_GT(ApkBlob::PoolPeakBytes(), baseline);
}

// ---------------------------------------------------------------------------
// Spill-to-disk blobs: payloads at/above the threshold back onto an mmap'd,
// immediately-unlinked temp file; handle semantics, digests, and accounting
// must be indistinguishable from the heap mode.
// ---------------------------------------------------------------------------

// Restores the process-wide spill policy (and clears the fault hook) when a
// test exits, pass or fail.
struct SpillGuard {
  ApkBlob::SpillConfig previous;
  explicit SpillGuard(ApkBlob::SpillConfig config)
      : previous(ApkBlob::SetSpillConfig(std::move(config))) {}
  ~SpillGuard() {
    ApkBlob::SetSpillConfig(previous);
    ApkBlob::SetSpillWriteFaultHook(nullptr);
  }
};

TEST(ApkBlobSpill, ThresholdBoundarySelectsStorageMode) {
  constexpr size_t kThreshold = 4'096;
  SpillGuard guard({kThreshold, ""});

  ApkBlob below = ApkBlob::FromBytes(DeterministicBytes(kThreshold - 1, 11));
  ApkBlob at = ApkBlob::FromBytes(DeterministicBytes(kThreshold, 12));
  ApkBlob above = ApkBlob::FromBytes(DeterministicBytes(kThreshold + 1, 13));
  EXPECT_FALSE(below.spilled());
  EXPECT_TRUE(at.spilled());
  EXPECT_TRUE(above.spilled());
  EXPECT_EQ(below.size(), kThreshold - 1);
  EXPECT_EQ(at.size(), kThreshold);
  EXPECT_EQ(above.size(), kThreshold + 1);
}

TEST(ApkBlobSpill, SpilledBlobKeepsDigestBytesAndHandleSemantics) {
  SpillGuard guard({1'024, ""});
  const std::vector<uint8_t> bytes = DeterministicBytes(50'000, 21);

  ApkBlob spilled = ApkBlob::FromBytes(bytes);
  ASSERT_TRUE(spilled.spilled());
  // Digest identity across the spill: same bytes, same SHA-1, bit-identical
  // payload through the mmap.
  EXPECT_EQ(spilled.digest(), util::Sha1Hex(bytes));
  ASSERT_EQ(spilled.size(), bytes.size());
  EXPECT_TRUE(
      std::equal(spilled.bytes().begin(), spilled.bytes().end(), bytes.begin()));
  // Zero-copy handle semantics are preserved: copies share the mapping.
  ApkBlob copy = spilled;
  EXPECT_EQ(spilled.use_count(), 2u);
  EXPECT_EQ(copy.bytes().data(), spilled.bytes().data());
}

TEST(ApkBlobSpill, StreamedBlobsSpillThroughTheBuilderPath) {
  SpillGuard guard({1'024, ""});
  const std::vector<uint8_t> bytes = DeterministicBytes(20'000, 31);
  MemoryStreamReader reader(bytes);
  auto blob = ReadApkBlob(reader, /*chunk_bytes=*/1'024);
  ASSERT_TRUE(blob.ok()) << blob.error();
  EXPECT_TRUE(blob->spilled());
  EXPECT_EQ(blob->digest(), util::Sha1Hex(bytes));
}

TEST(ApkBlobSpill, PoolGaugeExcludesSpilledBytesAndBoundsResidency) {
  SpillGuard guard({16 * 1'024, ""});
  const uint64_t pool_baseline = ApkBlob::PoolBytes();
  const uint64_t spilled_baseline = ApkBlob::SpilledBytes();
  ApkBlob::ResetPoolPeakBytes();
  const uint64_t peak_baseline = ApkBlob::PoolPeakBytes();
  {
    std::vector<ApkBlob> storm;
    for (uint64_t i = 0; i < 8; ++i) {
      storm.push_back(ApkBlob::FromBytes(DeterministicBytes(64 * 1'024, 40 + i)));
    }
    // Every payload spilled: the HEAP pool gauge did not move — this is the
    // "pool gauge bounds RSS" property the overload watermarks rely on.
    EXPECT_EQ(ApkBlob::PoolBytes(), pool_baseline);
    EXPECT_EQ(ApkBlob::PoolPeakBytes(), peak_baseline);
    EXPECT_EQ(ApkBlob::SpilledBytes(), spilled_baseline + 8 * 64 * 1'024);
  }
  // Releasing the handles unmaps: spilled accounting returns to baseline.
  EXPECT_EQ(ApkBlob::SpilledBytes(), spilled_baseline);
  EXPECT_EQ(ApkBlob::PoolBytes(), pool_baseline);
}

TEST(ApkBlobSpill, WriteFaultFallsBackToHeapWithoutLosingBytes) {
  SpillGuard guard({1'024, ""});
  // Reuse the store layer's fault-injection plan as the spill-write fault
  // source: the first write faults, the second succeeds.
  store::IoFaultPlan plan;
  plan.short_write_at = {1};
  auto injector = std::make_shared<store::IoFaultInjector>(plan);
  // The process-wide spill ordinal keeps counting across tests, so renumber
  // locally: the injector sees this test's writes as ordinals 1, 2, ...
  auto local_ordinal = std::make_shared<std::atomic<uint64_t>>(0);
  ApkBlob::SetSpillWriteFaultHook([injector, local_ordinal](uint64_t) {
    const uint64_t ordinal = local_ordinal->fetch_add(1) + 1;
    return injector->OnAppend(ordinal) != store::AppendFault::kNone;
  });

  const uint64_t failures_before =
      CounterValue(obs::names::kIngestSpillFailuresTotal);
  const std::vector<uint8_t> bytes = DeterministicBytes(9'000, 51);

  ApkBlob faulted = ApkBlob::FromBytes(bytes);
  EXPECT_FALSE(faulted.spilled());  // Fault → heap fallback, bytes intact.
  EXPECT_EQ(faulted.digest(), util::Sha1Hex(bytes));
  EXPECT_TRUE(
      std::equal(faulted.bytes().begin(), faulted.bytes().end(), bytes.begin()));
  EXPECT_EQ(CounterValue(obs::names::kIngestSpillFailuresTotal),
            failures_before + 1);

  ApkBlob ok = ApkBlob::FromBytes(DeterministicBytes(9'000, 52));
  EXPECT_TRUE(ok.spilled());  // Ordinal 2: no fault, spills normally.
}

}  // namespace
}  // namespace apichecker::ingest
