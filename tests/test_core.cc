// Unit tests for src/core: feature schema, study pipeline, SRC ranking,
// key-API selection, the ApiChecker facade, and the Table 1 baselines.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/checker.h"
#include "core/selection.h"
#include "core/study.h"
#include "synth/corpus.h"

namespace apichecker::core {
namespace {

const android::ApiUniverse& TestUniverse() {
  static const android::ApiUniverse universe = [] {
    android::UniverseConfig config;
    config.num_apis = 6'000;
    return android::ApiUniverse::Generate(config);
  }();
  return universe;
}

// One shared small study corpus for the heavier pipeline tests.
const StudyDataset& TestStudy() {
  static const StudyDataset study = [] {
    synth::CorpusConfig corpus_config;
    synth::CorpusGenerator generator(TestUniverse(), corpus_config);
    StudyConfig config;
    config.num_apps = 2'500;
    return RunStudy(TestUniverse(), generator, config);
  }();
  return study;
}

TEST(FeatureOptions, Labels) {
  EXPECT_EQ(FeatureOptions::All().Label(), "A+P+I");
  EXPECT_EQ(FeatureOptions::ApisOnly().Label(), "A");
  EXPECT_EQ((FeatureOptions{false, true, true}).Label(), "P+I");
}

TEST(FeatureSchema, LaysOutGroupsContiguously) {
  const std::vector<android::ApiId> tracked = {3, 8, 15};
  const FeatureSchema schema(tracked, TestUniverse());
  EXPECT_EQ(schema.num_features(),
            3u + TestUniverse().permissions().size() + TestUniverse().intents().size());
  EXPECT_EQ(schema.ApiFeature(3), 0);
  EXPECT_EQ(schema.ApiFeature(8), 1);
  EXPECT_EQ(schema.ApiFeature(999), -1);
  EXPECT_EQ(schema.PermissionFeatureById(0), 3);
  EXPECT_EQ(schema.IntentFeatureById(0),
            3 + static_cast<int64_t>(TestUniverse().permissions().size()));
  EXPECT_TRUE(schema.TracksApi(15));
  EXPECT_FALSE(schema.TracksApi(16));
}

TEST(FeatureSchema, NameLookupsMatchIdLookups) {
  const FeatureSchema schema({1}, TestUniverse());
  const std::string& perm = TestUniverse().permissions()[5].name;
  EXPECT_EQ(schema.PermissionFeature(perm), schema.PermissionFeatureById(5));
  const std::string& intent = TestUniverse().intents()[3];
  EXPECT_EQ(schema.IntentFeature(intent),
            schema.IntentFeatureById(3));
  EXPECT_EQ(schema.PermissionFeature("bogus"), -1);
}

TEST(FeatureSchema, FeatureNamesUsePaperAliases) {
  const auto sms = TestUniverse().FindByName("android.telephony.SmsManager.sendTextMessage");
  ASSERT_TRUE(sms.has_value());
  const FeatureSchema schema({*sms}, TestUniverse());
  EXPECT_EQ(schema.FeatureName(0), "API: SmsManager_sendTextMessage");
  const int64_t perm_feature = schema.PermissionFeature("android.permission.SEND_SMS");
  ASSERT_GE(perm_feature, 0);
  EXPECT_EQ(schema.FeatureName(static_cast<uint32_t>(perm_feature)), "Permission: SEND_SMS");
}

TEST(FeatureSchema, ApisOnlyExcludesAuxiliary) {
  const FeatureSchema schema({1, 2}, TestUniverse(), FeatureOptions::ApisOnly());
  EXPECT_EQ(schema.num_features(), 2u);
  EXPECT_EQ(schema.PermissionFeatureById(0), -1);
  EXPECT_EQ(schema.IntentFeatureById(0), -1);
}

TEST(Study, RecordsAreComplete) {
  const StudyDataset& study = TestStudy();
  ASSERT_EQ(study.size(), 2'500u);
  EXPECT_GT(study.NumPositive(), 100u);
  EXPECT_LT(study.NumPositive(), 400u);
  size_t with_apis = 0, updates = 0;
  for (const StudyRecord& r : study.records) {
    with_apis += r.observed_apis.empty() ? 0 : 1;
    updates += r.is_update;
    EXPECT_TRUE(std::is_sorted(r.observed_apis.begin(), r.observed_apis.end()));
    EXPECT_TRUE(std::is_sorted(r.static_apis.begin(), r.static_apis.end()));
    EXPECT_GT(r.total_invocations, 0u);
    EXPECT_FALSE(r.package_name.empty());
    // Dynamic observations are a subset of the static references.
    EXPECT_TRUE(std::includes(r.static_apis.begin(), r.static_apis.end(),
                              r.observed_apis.begin(), r.observed_apis.end()));
  }
  EXPECT_EQ(with_apis, study.size());
  EXPECT_GT(updates, study.size() / 2);
}

TEST(Selection, CorrelationsIdentifyAnchors) {
  const auto correlations = ComputeApiCorrelations(TestStudy(), TestUniverse().num_apis());
  ASSERT_EQ(correlations.size(), TestUniverse().num_apis());
  // Common-op plumbing correlates negatively (the 13-API cluster of §4.3).
  double common_src = 0.0;
  for (android::ApiId id : TestUniverse().CommonOpApis()) {
    common_src += correlations[id].src;
    EXPECT_GT(correlations[id].support, TestStudy().size() / 2);
  }
  EXPECT_LT(common_src / 13.0, -0.1);
  // Attacker-useful APIs skew positive.
  double useful_src = 0.0;
  for (android::ApiId id : TestUniverse().AttackerUsefulApis()) {
    useful_src += correlations[id].src;
  }
  EXPECT_GT(useful_src / static_cast<double>(TestUniverse().AttackerUsefulApis().size()), 0.05);
}

TEST(Selection, KeyApisAreUnionOfSets) {
  const auto correlations = ComputeApiCorrelations(TestStudy(), TestUniverse().num_apis());
  const KeyApiSelection sel =
      SelectKeyApis(correlations, TestUniverse(), TestStudy().size());
  EXPECT_EQ(sel.set_p.size(), 112u);
  EXPECT_EQ(sel.set_s.size(), 70u);
  EXPECT_FALSE(sel.set_c.empty());
  std::set<android::ApiId> expected;
  expected.insert(sel.set_c.begin(), sel.set_c.end());
  expected.insert(sel.set_p.begin(), sel.set_p.end());
  expected.insert(sel.set_s.begin(), sel.set_s.end());
  EXPECT_EQ(sel.key_apis.size(), expected.size());
  EXPECT_TRUE(std::is_sorted(sel.key_apis.begin(), sel.key_apis.end()));
  EXPECT_EQ(sel.key_apis.size(),
            sel.set_c.size() + sel.set_p.size() + sel.set_s.size() - sel.total_overlapped());
}

TEST(Selection, SetCHonorsThresholds) {
  const auto correlations = ComputeApiCorrelations(TestStudy(), TestUniverse().num_apis());
  SelectionConfig config;
  const KeyApiSelection sel =
      SelectKeyApis(correlations, TestUniverse(), TestStudy().size(), config);
  for (android::ApiId id : sel.set_c) {
    const ApiCorrelation& c = correlations[id];
    EXPECT_GE(static_cast<double>(c.support), 0.001 * TestStudy().size());
    if (c.src < 0) {
      EXPECT_LE(c.src, -config.src_threshold);
      EXPECT_GE(static_cast<double>(c.support), 0.5 * TestStudy().size());
    } else {
      EXPECT_GE(c.src, config.src_threshold);
    }
  }
}

TEST(Selection, TopCorrelatedPrefersNotSeldom) {
  const auto correlations = ComputeApiCorrelations(TestStudy(), TestUniverse().num_apis());
  const auto top = TopCorrelatedApis(correlations, TestStudy().size(), 100);
  ASSERT_EQ(top.size(), 100u);
  // The head of the priority order is never a seldom-invoked API.
  for (android::ApiId id : top) {
    EXPECT_GE(static_cast<double>(correlations[id].support), 0.001 * TestStudy().size());
  }
  // |SRC| is non-increasing along the head.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(std::fabs(correlations[top[i - 1]].src) + 1e-12,
              std::fabs(correlations[top[i]].src));
  }
}

TEST(BuildDatasetX, MatchesSchemaEncodeOnProductionPath) {
  // The study projection (id-based) and the production Encode (string-based)
  // must produce identical feature vectors for the same app.
  synth::CorpusConfig corpus_config;
  corpus_config.seed = 1234;
  synth::CorpusGenerator generator(TestUniverse(), corpus_config);
  StudyConfig study_config;
  study_config.num_apps = 64;
  // Use a fresh generator stream for both paths.
  const StudyDataset study = RunStudy(TestUniverse(), generator, study_config);

  const auto correlations = ComputeApiCorrelations(study, TestUniverse().num_apis());
  const KeyApiSelection sel = SelectKeyApis(correlations, TestUniverse(), study.size());
  const FeatureSchema schema(sel.key_apis, TestUniverse());
  const ml::Dataset projected = BuildDataset(study, schema, TestUniverse());

  // Re-run the same apps through the engine with the key tracked set (the
  // production path) and Encode the reports.
  synth::CorpusGenerator generator2(TestUniverse(), corpus_config);
  const emu::DynamicAnalysisEngine engine(TestUniverse(), {});
  const emu::TrackedApiSet tracked(sel.key_apis, TestUniverse().num_apis());
  for (size_t i = 0; i < 64; ++i) {
    const synth::AppProfile profile = generator2.Next();
    auto apk = apk::ParseApk(synth::BuildApkBytes(profile, TestUniverse()));
    ASSERT_TRUE(apk.ok());
    const emu::EmulationReport report = engine.Run(*apk, tracked);
    EXPECT_EQ(schema.Encode(report), projected.rows[i]) << "app " << i;
  }
}

TEST(ApiChecker, TrainsAndClassifies) {
  ApiCheckerConfig config;
  config.forest.num_trees = 24;
  ApiChecker checker(TestUniverse(), config);
  EXPECT_FALSE(checker.trained());
  checker.TrainFromStudy(TestStudy());
  ASSERT_TRUE(checker.trained());
  EXPECT_GT(checker.selection().key_apis.size(), 150u);

  // Production classification: emulate fresh apps with the key hooks.
  synth::CorpusConfig corpus_config;
  corpus_config.seed = 777;
  synth::CorpusGenerator generator(TestUniverse(), corpus_config);
  const emu::DynamicAnalysisEngine engine(TestUniverse(), {});
  const emu::TrackedApiSet tracked = checker.MakeTrackedSet();
  ml::ConfusionMatrix cm;
  for (int i = 0; i < 300; ++i) {
    const synth::AppProfile profile = generator.Next();
    auto apk = apk::ParseApk(synth::BuildApkBytes(profile, TestUniverse()));
    ASSERT_TRUE(apk.ok());
    const auto verdict = checker.Classify(engine.Run(*apk, tracked));
    EXPECT_GE(verdict.score, 0.0);
    EXPECT_LE(verdict.score, 1.0);
    cm.Record(profile.malicious, verdict.malicious);
  }
  EXPECT_GT(cm.Precision(), 0.8) << cm.ToString();
  EXPECT_GT(cm.Recall(), 0.7) << cm.ToString();
}

TEST(ApiChecker, TopFeaturesAreNamedAndRanked) {
  ApiCheckerConfig config;
  config.forest.num_trees = 16;
  ApiChecker checker(TestUniverse(), config);
  checker.TrainFromStudy(TestStudy());
  const auto top = checker.TopFeatures(20);
  ASSERT_EQ(top.size(), 20u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
  for (const auto& [name, importance] : top) {
    EXPECT_TRUE(name.rfind("API: ", 0) == 0 || name.rfind("Permission: ", 0) == 0 ||
                name.rfind("Intent: ", 0) == 0)
        << name;
  }
}

TEST(ApiChecker, KeyApisByImportanceIsPermutation) {
  ApiCheckerConfig config;
  config.forest.num_trees = 16;
  ApiChecker checker(TestUniverse(), config);
  checker.TrainFromStudy(TestStudy());
  const auto ranked = checker.KeyApisByImportance();
  EXPECT_EQ(ranked.size(), checker.selection().key_apis.size());
  std::set<android::ApiId> a(ranked.begin(), ranked.end());
  std::set<android::ApiId> b(checker.selection().key_apis.begin(),
                             checker.selection().key_apis.end());
  EXPECT_EQ(a, b);
}

TEST(ApiChecker, ModelSerializes) {
  ApiCheckerConfig config;
  config.forest.num_trees = 8;
  ApiChecker checker(TestUniverse(), config);
  checker.TrainFromStudy(TestStudy());
  const auto bytes = checker.SerializeModel();
  EXPECT_FALSE(bytes.empty());
  auto restored = ml::RandomForest::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
}

TEST(FeatureSchema, FrequencyBucketsAreLogScaled) {
  EXPECT_EQ(FeatureSchema::FrequencyBucket(0, 4), 0u);
  EXPECT_EQ(FeatureSchema::FrequencyBucket(9, 4), 0u);
  EXPECT_EQ(FeatureSchema::FrequencyBucket(10, 4), 1u);
  EXPECT_EQ(FeatureSchema::FrequencyBucket(99, 4), 1u);
  EXPECT_EQ(FeatureSchema::FrequencyBucket(100, 4), 2u);
  EXPECT_EQ(FeatureSchema::FrequencyBucket(1'000'000, 4), 3u);  // Clamped to top.
  EXPECT_EQ(FeatureSchema::FrequencyBucket(12'345, 1), 0u);
}

TEST(FeatureSchema, HistogramEncodingWidensApiGroups) {
  core::FeatureOptions options = core::FeatureOptions::Histogram(4);
  const FeatureSchema schema({3, 8}, TestUniverse(), options);
  EXPECT_EQ(schema.num_features(),
            2u * 4u + TestUniverse().permissions().size() + TestUniverse().intents().size());
  EXPECT_EQ(schema.ApiFeature(3), 0);
  EXPECT_EQ(schema.ApiFeature(8), 4);
  EXPECT_EQ(schema.ApiFeatureForCount(3, 5), 0);
  EXPECT_EQ(schema.ApiFeatureForCount(3, 50), 1);
  EXPECT_EQ(schema.ApiFeatureForCount(8, 5'000), 4 + 3);
  EXPECT_NE(schema.FeatureName(0).find("[freq0]"), std::string::npos);
  EXPECT_EQ(options.Label(), "A(hist4)+P+I");
}

TEST(FeatureSchema, HistogramDatasetMatchesProductionEncode) {
  // The id-based projection and the string-based production Encode must
  // also agree under histogram encoding.
  synth::CorpusConfig corpus_config;
  corpus_config.seed = 4321;
  synth::CorpusGenerator generator(TestUniverse(), corpus_config);
  StudyConfig study_config;
  study_config.num_apps = 32;
  const StudyDataset study = RunStudy(TestUniverse(), generator, study_config);
  const auto correlations = ComputeApiCorrelations(study, TestUniverse().num_apis());
  const KeyApiSelection sel = SelectKeyApis(correlations, TestUniverse(), study.size());
  const FeatureSchema schema(sel.key_apis, TestUniverse(), FeatureOptions::Histogram(4));
  const ml::Dataset projected = BuildDataset(study, schema, TestUniverse());

  synth::CorpusGenerator generator2(TestUniverse(), corpus_config);
  const emu::DynamicAnalysisEngine engine(TestUniverse(), {});
  const emu::TrackedApiSet all = emu::TrackedApiSet::All(TestUniverse().num_apis());
  for (size_t i = 0; i < 32; ++i) {
    const synth::AppProfile profile = generator2.Next();
    auto apk = apk::ParseApk(synth::BuildApkBytes(profile, TestUniverse()));
    ASSERT_TRUE(apk.ok());
    // Track-all run, like the study, so counts are available for key APIs.
    const emu::EmulationReport full = engine.Run(*apk, all);
    // Restrict the report to key APIs the way a key-hook run would see it.
    emu::EmulationReport restricted = full;
    restricted.observed_apis.clear();
    restricted.observed_api_counts.clear();
    for (size_t j = 0; j < full.observed_apis.size(); ++j) {
      if (schema.TracksApi(full.observed_apis[j])) {
        restricted.observed_apis.push_back(full.observed_apis[j]);
        restricted.observed_api_counts.push_back(full.observed_api_counts[j]);
      }
    }
    restricted.observed_intents.clear();
    for (const auto& observed : full.observed_intents) {
      if (schema.TracksApi(observed.carrier)) {
        restricted.observed_intents.push_back(observed);
      }
    }
    EXPECT_EQ(schema.Encode(restricted), projected.rows[i]) << "app " << i;
  }
}

TEST(Baselines, RosterMatchesTable1) {
  const auto specs = StandardBaselines();
  ASSERT_EQ(specs.size(), 7u);
  std::set<std::string> names;
  for (const auto& spec : specs) {
    names.insert(spec.name);
  }
  EXPECT_TRUE(names.count("DREBIN"));
  EXPECT_TRUE(names.count("DroidAPIMiner"));
  EXPECT_TRUE(names.count("DroidCat"));
  EXPECT_TRUE(names.count("Yang et al."));
}

TEST(Baselines, TrainEvaluateAndRespectApiBudget) {
  const auto specs = StandardBaselines();
  // DREBIN-like hybrid: decent accuracy on the synthetic corpus.
  BaselineDetector drebin(TestUniverse(), specs[6], 5);
  drebin.Train(TestStudy());
  EXPECT_LE(drebin.selected_apis().size(), specs[6].num_apis);
  const ml::ConfusionMatrix cm = drebin.Evaluate(TestStudy());
  EXPECT_GT(cm.F1(), 0.6) << cm.ToString();

  util::Rng rng(1);
  const double minutes = drebin.SampleAnalysisMinutes(rng);
  EXPECT_GT(minutes, 0.0);
  EXPECT_LT(minutes, 5.0);  // DREBIN is a fast static recipe.
}

TEST(Baselines, TinyApiBudgetLimitsRecall) {
  // Control for the classifier: the same random forest with a starved API
  // budget and no auxiliary features recalls less than a generous recipe.
  BaselineSpec starved;
  starved.name = "starved";
  starved.mode = BaselineSpec::Mode::kDynamic;
  starved.classifier = ml::ClassifierKind::kRandomForest;
  starved.num_apis = 8;
  BaselineSpec generous = starved;
  generous.name = "generous";
  generous.num_apis = 300;
  generous.use_permissions = true;
  generous.use_intents = true;

  BaselineDetector small(TestUniverse(), starved, 5);
  BaselineDetector large(TestUniverse(), generous, 5);
  small.Train(TestStudy());
  large.Train(TestStudy());
  EXPECT_LE(small.selected_apis().size(), 8u);
  const ml::ConfusionMatrix small_cm = small.Evaluate(TestStudy());
  const ml::ConfusionMatrix large_cm = large.Evaluate(TestStudy());
  EXPECT_GT(large_cm.Recall(), small_cm.Recall());

  // All seven Table 1 recipes remain usable detectors on this corpus.
  for (const auto& spec : StandardBaselines()) {
    BaselineDetector detector(TestUniverse(), spec, 5);
    detector.Train(TestStudy());
    EXPECT_GT(detector.Evaluate(TestStudy()).F1(), 0.55) << spec.name;
  }
}

}  // namespace
}  // namespace apichecker::core
