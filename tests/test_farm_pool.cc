// Deterministic fault-injection tests for serve::FarmPool and the emu-level
// fault hook: scripted farm deaths, failover to healthy farms, circuit-breaker
// open/half-open-probe/close transitions, the all-farms-down visible-rejection
// path (never a hang), and reproducibility of the seeded fault stream.

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apk/apk.h"
#include "core/model_store.h"
#include "core/study.h"
#include "emu/farm.h"
#include "ingest/apk_blob.h"
#include "serve/farm_pool.h"
#include "serve/service.h"
#include "serve/serving_model.h"
#include "synth/corpus.h"

namespace apichecker::serve {
namespace {

using std::chrono::milliseconds;

const android::ApiUniverse& TestUniverse() {
  static const android::ApiUniverse universe = [] {
    android::UniverseConfig config;
    config.num_apis = 6'000;
    return android::ApiUniverse::Generate(config);
  }();
  return universe;
}

const std::vector<uint8_t>& TrainedBlob() {
  static const std::vector<uint8_t> blob = [] {
    synth::CorpusConfig corpus_config;
    synth::CorpusGenerator generator(TestUniverse(), corpus_config);
    core::StudyConfig study_config;
    study_config.num_apps = 1'200;
    const core::StudyDataset study =
        core::RunStudy(TestUniverse(), generator, study_config);
    core::ApiChecker checker(TestUniverse(), {});
    checker.TrainFromStudy(study);
    return core::SerializeChecker(checker);
  }();
  return blob;
}

core::ApiChecker TrainedChecker() {
  auto checker = core::DeserializeChecker(TestUniverse(), TrainedBlob());
  EXPECT_TRUE(checker.ok());
  return std::move(*checker);
}

std::shared_ptr<const ModelSnapshot> Snapshot() {
  return std::make_shared<const ModelSnapshot>(1, TrainedChecker());
}

std::vector<uint8_t> MakeApkBytes(uint64_t seed) {
  synth::CorpusConfig config;
  config.seed = seed;
  config.update_fraction = 0.0;
  synth::CorpusGenerator generator(TestUniverse(), config);
  return synth::BuildApkBytes(generator.Next(), TestUniverse());
}

// A one-blob batch payload for direct pool submissions (the pool's own
// workers run the parse stage).
std::vector<ingest::ApkBlob> MakeBatch(uint64_t seed) {
  std::vector<ingest::ApkBlob> blobs;
  blobs.push_back(ingest::ApkBlob::FromBytes(MakeApkBytes(seed)));
  return blobs;
}

// Parsed payload for driving emu::DeviceFarm directly (below the pool's
// parse stage).
std::vector<apk::ApkFile> MakeApks(uint64_t seed) {
  auto parsed = apk::ParseApk(MakeApkBytes(seed));
  EXPECT_TRUE(parsed.ok());
  std::vector<apk::ApkFile> apks;
  apks.push_back(std::move(*parsed));
  return apks;
}

emu::FarmConfig SmallFarm() {
  emu::FarmConfig farm;
  farm.num_emulators = 2;
  farm.worker_threads = 1;
  return farm;
}

// Kills `farm_id` from its first batch onwards — dead forever.
emu::FaultWindow DeadForever(uint32_t farm_id) {
  emu::FaultWindow window;
  window.farm_id = farm_id;
  window.from_batch = 1;
  return window;
}

// Tracks callback outcomes for one submitted batch. The pool promises exactly
// one callback per batch; the promise traps double resolution as a test
// failure (set_value throws on a satisfied promise).
struct Probe {
  std::promise<bool> done;  // true = completed, false = rejected.
  std::future<bool> future = done.get_future();
  PoolRejectReason reason = PoolRejectReason::kNoHealthyFarms;

  FarmPool::CompleteFn on_complete() {
    return [this](const emu::BatchResult& result, const std::vector<size_t>&) {
      EXPECT_FALSE(result.farm_fault);  // Faulted results never reach callers.
      done.set_value(true);
    };
  }
  FarmPool::RejectFn on_reject() {
    return [this](PoolRejectReason r, const std::vector<size_t>&) {
      reason = r;
      done.set_value(false);
    };
  }
  // Asserts the batch resolved (either way) without hanging.
  bool Resolved(milliseconds timeout = milliseconds(10'000)) {
    return future.wait_for(timeout) == std::future_status::ready;
  }
};

TEST(FarmPool, FaultedBatchFailsOverToHealthyFarmExactlyOnce) {
  FarmPoolConfig config;
  config.num_farms = 2;
  config.max_attempts = 2;
  config.breaker_failure_streak = 2;
  config.fault_plan.windows = {DeadForever(0)};
  FarmPool pool(TestUniverse(), config, SmallFarm());
  auto snapshot = Snapshot();

  constexpr size_t kBatches = 6;
  std::vector<Probe> probes(kBatches);
  for (size_t i = 0; i < kBatches; ++i) {
    // Affinity i: ties between idle farms alternate, so farm 0 is exercised.
    ASSERT_TRUE(pool.Submit(MakeBatch(100 + i), snapshot, /*affinity=*/i,
                            probes[i].on_complete(), probes[i].on_reject()));
  }
  for (auto& probe : probes) {
    ASSERT_TRUE(probe.Resolved());
    EXPECT_TRUE(probe.future.get());  // Every batch completed despite farm 0.
  }
  pool.Close();

  const FarmPoolStats stats = pool.stats();
  ASSERT_EQ(stats.farms.size(), 2u);
  EXPECT_EQ(stats.farms[0].batches_completed, 0u);  // Dead farm finished nothing.
  EXPECT_EQ(stats.farms[1].batches_completed, kBatches);
  EXPECT_GT(stats.faults, 0u);              // Farm 0 faulted at least once...
  EXPECT_EQ(stats.retries, stats.faults);   // ...and every fault was retried.
  EXPECT_GT(stats.farms[1].retries_absorbed, 0u);
  EXPECT_EQ(stats.rejected_batches, 0u);
  // Farm 0's breaker opened after the streak and stayed open (it never heals).
  EXPECT_EQ(stats.farms[0].breaker, BreakerState::kOpen);
  EXPECT_GE(stats.farms[0].breaker_opens, 1u);
  EXPECT_EQ(stats.healthy_farms, 1u);
}

TEST(FarmPool, BreakerOpensCoolsDownAndReprobesToClosed) {
  FarmPoolConfig config;
  config.num_farms = 1;
  config.max_attempts = 1;  // No failover target: faults reject immediately.
  config.breaker_failure_streak = 2;
  config.breaker_cooldown = milliseconds(100);
  // The single farm faults on its first two batches, then recovers.
  emu::FaultWindow outage;
  outage.farm_id = 0;
  outage.from_batch = 1;
  outage.to_batch = 2;
  config.fault_plan.windows = {outage};
  FarmPool pool(TestUniverse(), config, SmallFarm());
  auto snapshot = Snapshot();

  // Batch 1 faults (streak 1 of 2): rejected, breaker still closed.
  Probe first;
  ASSERT_TRUE(pool.Submit(MakeBatch(1), snapshot, 0, first.on_complete(),
                          first.on_reject()));
  ASSERT_TRUE(first.Resolved());
  EXPECT_FALSE(first.future.get());
  EXPECT_EQ(first.reason, PoolRejectReason::kRetryBudgetExhausted);
  EXPECT_EQ(pool.healthy_farms(), 1u);

  // Batch 2 faults (streak 2): the breaker opens.
  Probe second;
  ASSERT_TRUE(pool.Submit(MakeBatch(2), snapshot, 0, second.on_complete(),
                          second.on_reject()));
  ASSERT_TRUE(second.Resolved());
  EXPECT_FALSE(second.future.get());
  EXPECT_EQ(pool.healthy_farms(), 0u);
  EXPECT_EQ(pool.stats().farms[0].breaker, BreakerState::kOpen);

  // Inside the cooldown the open breaker blocks routing: the reject fires
  // synchronously from Submit — degraded, visible, and no hang.
  Probe blocked;
  ASSERT_TRUE(pool.Submit(MakeBatch(3), snapshot, 0, blocked.on_complete(),
                          blocked.on_reject()));
  ASSERT_TRUE(blocked.Resolved(milliseconds(0)));  // Already resolved.
  EXPECT_FALSE(blocked.future.get());
  EXPECT_EQ(blocked.reason, PoolRejectReason::kNoHealthyFarms);

  // After the cooldown the next batch goes through as the half-open probe;
  // the outage window is over, so the probe succeeds and closes the breaker.
  std::this_thread::sleep_for(config.breaker_cooldown + milliseconds(20));
  Probe probe;
  ASSERT_TRUE(pool.Submit(MakeBatch(4), snapshot, 0, probe.on_complete(),
                          probe.on_reject()));
  ASSERT_TRUE(probe.Resolved());
  EXPECT_TRUE(probe.future.get());
  pool.Close();

  const FarmPoolStats stats = pool.stats();
  EXPECT_EQ(stats.farms[0].breaker, BreakerState::kClosed);
  EXPECT_EQ(stats.healthy_farms, 1u);
  EXPECT_EQ(stats.farms[0].faults, 2u);
  EXPECT_EQ(stats.farms[0].breaker_opens, 1u);
  EXPECT_EQ(stats.farms[0].batches_completed, 1u);
  EXPECT_EQ(stats.rejected_batches, 3u);
}

TEST(FarmPool, FailedProbeReopensTheBreaker) {
  FarmPoolConfig config;
  config.num_farms = 1;
  config.max_attempts = 1;
  config.breaker_failure_streak = 1;
  config.breaker_cooldown = milliseconds(50);
  config.fault_plan.windows = {DeadForever(0)};  // Probes keep failing.
  FarmPool pool(TestUniverse(), config, SmallFarm());
  auto snapshot = Snapshot();

  Probe trip;
  ASSERT_TRUE(pool.Submit(MakeBatch(1), snapshot, 0, trip.on_complete(),
                          trip.on_reject()));
  ASSERT_TRUE(trip.Resolved());
  EXPECT_FALSE(trip.future.get());
  EXPECT_EQ(pool.stats().farms[0].breaker, BreakerState::kOpen);

  std::this_thread::sleep_for(config.breaker_cooldown + milliseconds(20));
  Probe probe;
  ASSERT_TRUE(pool.Submit(MakeBatch(2), snapshot, 0, probe.on_complete(),
                          probe.on_reject()));
  ASSERT_TRUE(probe.Resolved());
  EXPECT_FALSE(probe.future.get());  // The probe faulted...
  pool.Close();
  EXPECT_EQ(pool.stats().farms[0].breaker, BreakerState::kOpen);  // ...reopened.
  EXPECT_EQ(pool.stats().farms[0].breaker_opens, 2u);
}

TEST(FarmPool, AllFarmsDownRejectsEveryBatchWithoutHanging) {
  FarmPoolConfig config;
  config.num_farms = 2;
  config.max_attempts = 3;
  config.breaker_failure_streak = 1;
  config.fault_plan.windows = {DeadForever(0), DeadForever(1)};
  FarmPool pool(TestUniverse(), config, SmallFarm());
  auto snapshot = Snapshot();

  // First batch faults on both farms before rejecting (failover was tried).
  Probe first;
  ASSERT_TRUE(pool.Submit(MakeBatch(1), snapshot, 0, first.on_complete(),
                          first.on_reject()));
  ASSERT_TRUE(first.Resolved());
  EXPECT_FALSE(first.future.get());

  // Both breakers are now open: later batches reject synchronously with the
  // distinct no-healthy-farms reason.
  EXPECT_EQ(pool.healthy_farms(), 0u);
  Probe second;
  ASSERT_TRUE(pool.Submit(MakeBatch(2), snapshot, 0, second.on_complete(),
                          second.on_reject()));
  ASSERT_TRUE(second.Resolved(milliseconds(0)));
  EXPECT_FALSE(second.future.get());
  EXPECT_EQ(second.reason, PoolRejectReason::kNoHealthyFarms);
  EXPECT_STREQ(PoolRejectReasonName(second.reason), "no healthy farms");
  pool.Close();

  const FarmPoolStats stats = pool.stats();
  EXPECT_EQ(stats.rejected_batches, 2u);
  EXPECT_EQ(stats.farms[0].batches_completed + stats.farms[1].batches_completed, 0u);
}

// The pool's parse stage: corrupt members resolve through on_parse_error
// exactly once, valid members ride on to the farm, and the emulated-index
// mapping ties reports back to original batch positions.
TEST(FarmPool, ParseErrorsResolvePerIndexAndValidMembersComplete) {
  FarmPool pool(TestUniverse(), FarmPoolConfig{}, SmallFarm());
  std::vector<ingest::ApkBlob> blobs;
  blobs.push_back(ingest::ApkBlob::FromBytes(MakeApkBytes(11)));
  blobs.push_back(ingest::ApkBlob::FromBytes({0xde, 0xad, 0xbe, 0xef}));
  blobs.push_back(ingest::ApkBlob::FromBytes(MakeApkBytes(12)));

  std::promise<void> done;
  std::vector<std::pair<size_t, std::string>> parse_errors;
  std::vector<size_t> completed_indices;
  size_t reports = 0;
  ASSERT_TRUE(pool.Submit(
      std::move(blobs), Snapshot(), 0,
      [&](const emu::BatchResult& result, const std::vector<size_t>& emulated) {
        completed_indices = emulated;
        reports = result.reports.size();
        done.set_value();
      },
      [&](PoolRejectReason, const std::vector<size_t>&) { FAIL() << "rejected"; },
      [&](size_t index, const std::string& error) {
        parse_errors.emplace_back(index, error);
      }));
  ASSERT_EQ(done.get_future().wait_for(milliseconds(10'000)),
            std::future_status::ready);
  pool.Close();

  ASSERT_EQ(parse_errors.size(), 1u);
  EXPECT_EQ(parse_errors[0].first, 1u);
  EXPECT_FALSE(parse_errors[0].second.empty());
  EXPECT_EQ(completed_indices, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(reports, 2u);
}

// A batch whose every member fails the parse stage completes with an empty
// result and never consumes a farm run (fault-plan batch ordinals stay put).
TEST(FarmPool, AllParseFailuresCompleteWithoutConsumingAFarmRun) {
  FarmPool pool(TestUniverse(), FarmPoolConfig{}, SmallFarm());
  std::vector<ingest::ApkBlob> blobs;
  blobs.push_back(ingest::ApkBlob::FromBytes({1, 2, 3}));
  blobs.push_back(ingest::ApkBlob::FromBytes(std::vector<uint8_t>(64, 0)));

  std::promise<void> done;
  size_t parse_errors = 0;
  ASSERT_TRUE(pool.Submit(
      std::move(blobs), Snapshot(), 0,
      [&](const emu::BatchResult& result, const std::vector<size_t>& emulated) {
        EXPECT_TRUE(result.reports.empty());
        EXPECT_TRUE(emulated.empty());
        done.set_value();
      },
      [&](PoolRejectReason, const std::vector<size_t>&) { FAIL() << "rejected"; },
      [&](size_t, const std::string&) { ++parse_errors; }));
  ASSERT_EQ(done.get_future().wait_for(milliseconds(10'000)),
            std::future_status::ready);
  pool.Close();

  EXPECT_EQ(parse_errors, 2u);
  const FarmPoolStats stats = pool.stats();
  size_t farm_batches = 0;
  for (const FarmStats& farm : stats.farms) {
    farm_batches += farm.batches_completed;
  }
  EXPECT_EQ(farm_batches, 0u);  // No RunBatch: ordinals undisturbed.
  EXPECT_EQ(stats.rejected_batches, 0u);
}

// Parse runs once per batch even when the farm run behind it faults and fails
// over: the corrupt member's error fires exactly once, and the valid member
// still completes on the healthy farm.
TEST(FarmPool, ParseStageSurvivesFailoverWithoutDoubleResolution) {
  FarmPoolConfig config;
  config.num_farms = 2;
  config.max_attempts = 2;
  config.fault_plan.windows = {DeadForever(0)};
  FarmPool pool(TestUniverse(), config, SmallFarm());
  auto snapshot = Snapshot();

  // Drive several mixed batches so at least one lands on the dead farm first.
  constexpr size_t kBatches = 6;
  std::vector<std::promise<void>> done(kBatches);
  std::atomic<size_t> parse_errors{0};
  std::atomic<size_t> completed_members{0};
  for (size_t i = 0; i < kBatches; ++i) {
    std::vector<ingest::ApkBlob> blobs;
    blobs.push_back(ingest::ApkBlob::FromBytes(MakeApkBytes(500 + i)));
    blobs.push_back(ingest::ApkBlob::FromBytes({0xbd, static_cast<uint8_t>(i)}));
    ASSERT_TRUE(pool.Submit(
        std::move(blobs), snapshot, /*affinity=*/i,
        [&, i](const emu::BatchResult& result, const std::vector<size_t>& emulated) {
          EXPECT_EQ(emulated, (std::vector<size_t>{0}));
          completed_members += result.reports.size();
          done[i].set_value();
        },
        [&](PoolRejectReason, const std::vector<size_t>&) { FAIL() << "rejected"; },
        [&](size_t index, const std::string&) {
          EXPECT_EQ(index, 1u);
          ++parse_errors;  // A doubled callback would overshoot kBatches.
        }));
  }
  for (auto& promise : done) {
    ASSERT_EQ(promise.get_future().wait_for(milliseconds(10'000)),
              std::future_status::ready);
  }
  pool.Close();

  EXPECT_EQ(parse_errors.load(), kBatches);
  EXPECT_EQ(completed_members.load(), kBatches);
  const FarmPoolStats stats = pool.stats();
  EXPECT_GT(stats.faults, 0u);  // The dead farm was actually exercised.
  EXPECT_EQ(stats.farms[0].batches_completed, 0u);
}

TEST(FarmPool, SubmitAfterCloseReturnsFalseWithoutCallbacks) {
  FarmPool pool(TestUniverse(), FarmPoolConfig{}, SmallFarm());
  pool.Close();
  Probe probe;
  EXPECT_FALSE(pool.Submit(MakeBatch(1), Snapshot(), 0, probe.on_complete(),
                           probe.on_reject()));
  EXPECT_FALSE(probe.Resolved(milliseconds(0)));  // Neither callback fired.
}

// The seeded per-farm Bernoulli fault stream is reproducible: two farms with
// the same id, seed, and rate fault on exactly the same batch ordinals.
TEST(DeviceFarmFaults, SeededFaultStreamIsDeterministicPerFarm) {
  auto run_sequence = [](uint32_t farm_id, uint64_t seed) {
    emu::FarmConfig config = SmallFarm();
    config.farm_id = farm_id;
    config.fault_plan.seed = seed;
    config.fault_plan.fault_rate = 0.5;
    emu::DeviceFarm farm(TestUniverse(), config);
    auto snapshot = Snapshot();
    const std::vector<apk::ApkFile> apks = MakeApks(7);
    std::vector<bool> faulted;
    for (int i = 0; i < 24; ++i) {
      faulted.push_back(farm.RunBatch(apks, snapshot->tracked).farm_fault);
    }
    return faulted;
  };

  const std::vector<bool> a = run_sequence(1, 42);
  const std::vector<bool> b = run_sequence(1, 42);
  EXPECT_EQ(a, b);  // Identical id+seed: identical fault ordinals.
  EXPECT_NE(a, run_sequence(2, 42));  // Another farm draws its own stream.
  size_t faults = 0;
  for (bool f : a) {
    faults += f ? 1 : 0;
  }
  EXPECT_GT(faults, 0u);   // rate 0.5 over 24 batches: some faults...
  EXPECT_LT(faults, 24u);  // ...but not all.
}

TEST(DeviceFarmFaults, ScriptedWindowOnlyHitsItsOwnFarmAndRange) {
  emu::FaultWindow window;
  window.farm_id = 3;
  window.from_batch = 2;
  window.to_batch = 3;

  emu::FarmConfig config = SmallFarm();
  config.farm_id = 3;
  config.fault_plan.windows = {window};
  emu::DeviceFarm farm(TestUniverse(), config);

  emu::FarmConfig other_config = SmallFarm();
  other_config.farm_id = 4;  // Same plan, different identity: never faults.
  other_config.fault_plan.windows = {window};
  emu::DeviceFarm other(TestUniverse(), other_config);

  auto snapshot = Snapshot();
  const std::vector<apk::ApkFile> apks = MakeApks(8);
  std::vector<bool> expected = {false, true, true, false};
  for (size_t i = 0; i < expected.size(); ++i) {
    const emu::BatchResult result = farm.RunBatch(apks, snapshot->tracked);
    EXPECT_EQ(result.farm_fault, expected[i]) << "batch ordinal " << i + 1;
    if (result.farm_fault) {
      EXPECT_FALSE(result.fault_reason.empty());
    }
    EXPECT_FALSE(other.RunBatch(apks, snapshot->tracked).farm_fault);
  }
  EXPECT_EQ(farm.batches_run(), expected.size());
}

// End-to-end: a service whose pool has one dead farm still resolves every
// submission with kOk (failover is invisible to clients), and a service whose
// farms are ALL dead resolves every submission with kRejectedUnhealthy — the
// no-lost-submissions invariant holds in both worlds.
TEST(VettingServiceFaults, FailoverKeepsVerdictsFlowing) {
  ServiceConfig config;
  config.num_shards = 2;
  config.shard_capacity = 64;
  config.farm.num_emulators = 2;
  config.farm.worker_threads = 1;
  config.scheduler.batch_size = 2;
  config.scheduler.max_linger = milliseconds(5);
  config.pool.num_farms = 2;
  config.pool.max_attempts = 2;
  config.pool.fault_plan.windows = {DeadForever(0)};
  VettingService service(TestUniverse(), config, TrainedChecker());

  // Pick an APK whose digest-affinity deterministically breaks the idle-farms
  // tie towards farm 0 (the dead one) — the scheduler hashes the first
  // leader's digest exactly like this. Submitted alone into an idle pool, its
  // batch MUST hit farm 0, fault, and fail over.
  ingest::ApkBlob farm0_blob;
  for (uint64_t seed = 200;; ++seed) {
    ingest::ApkBlob blob = ingest::ApkBlob::FromBytes(MakeApkBytes(seed));
    if (std::hash<std::string>{}(blob.digest()) % 2 == 0) {
      farm0_blob = std::move(blob);
      break;
    }
  }
  auto pinned = service.Submit([&] {
    Submission submission;
    submission.blob = std::move(farm0_blob);
    return submission;
  }());
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->get().status, VetStatus::kOk);  // Failover was invisible.

  std::vector<std::future<VettingResult>> futures;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto accepted = service.Submit([&] {
      Submission submission;
      submission.blob = ingest::ApkBlob::FromBytes(MakeApkBytes(300'000 + seed));
      return submission;
    }());
    ASSERT_TRUE(accepted.ok());
    futures.push_back(std::move(*accepted));
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status, VetStatus::kOk);
  }
  service.Shutdown();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, stats.resolved());
  EXPECT_EQ(stats.rejected_unhealthy, 0u);
  EXPECT_GT(stats.farm_faults, 0u);
  EXPECT_GT(stats.farm_retries, 0u);
  const FarmPoolStats pool_stats = service.farm_pool_stats();
  EXPECT_EQ(pool_stats.farms[0].batches_completed, 0u);
  EXPECT_GT(pool_stats.farms[1].batches_completed, 0u);
}

TEST(VettingServiceFaults, AllFarmsDownResolvesRejectedUnhealthy) {
  ServiceConfig config;
  config.num_shards = 2;
  config.shard_capacity = 64;
  config.farm.num_emulators = 2;
  config.farm.worker_threads = 1;
  config.scheduler.batch_size = 2;
  config.scheduler.max_linger = milliseconds(5);
  config.pool.num_farms = 2;
  config.pool.breaker_failure_streak = 1;
  config.pool.fault_plan.windows = {DeadForever(0), DeadForever(1)};
  VettingService service(TestUniverse(), config, TrainedChecker());

  std::vector<std::future<VettingResult>> futures;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto accepted = service.Submit([&] {
      Submission submission;
      submission.blob = ingest::ApkBlob::FromBytes(MakeApkBytes(300 + seed));
      return submission;
    }());
    ASSERT_TRUE(accepted.ok());
    futures.push_back(std::move(*accepted));
  }
  for (auto& future : futures) {
    // Must resolve — degraded but visible, never hung.
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    const VettingResult result = future.get();
    EXPECT_EQ(result.status, VetStatus::kRejectedUnhealthy);
    EXPECT_FALSE(result.error.empty());
  }
  service.Shutdown();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_unhealthy, 6u);
  EXPECT_EQ(stats.accepted, stats.resolved());
  EXPECT_EQ(stats.completed, 0u);
}

}  // namespace
}  // namespace apichecker::serve
