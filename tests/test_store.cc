// Unit and recovery tests for src/store: WAL framing, torn-tail truncation,
// corrupt-segment quarantine, seq-based last-writer-wins, fsync-policy and
// fault-injection semantics, compaction, and the serve-layer warm start
// (store -> digest cache, stale model versions skipped). The VerdictStoreSoak
// suite (kill-and-restart, compaction under concurrent appends) carries the
// "stress" ctest label and runs under TSan in CI.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "core/model_store.h"
#include "core/study.h"
#include "ingest/apk_blob.h"
#include "serve/service.h"
#include "store/io_fault.h"
#include "store/verdict_store.h"
#include "store/wal.h"
#include "synth/corpus.h"

namespace apichecker::store {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per call; removed by the fixture-less tests
// themselves (recursively) when they finish, best-effort.
std::string ScratchDir() {
  static std::atomic<uint64_t> counter{0};
  const std::string dir =
      (fs::temp_directory_path() /
       ("apichecker_store_test_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter.fetch_add(1))))
          .string();
  fs::remove_all(dir);
  return dir;
}

VerdictRecord MakeRecord(const std::string& digest, uint32_t version,
                         bool malicious, double score) {
  VerdictRecord record;
  record.digest = digest;
  record.model_version = version;
  record.malicious = malicious;
  record.score = score;
  record.timestamp_ms = 1'700'000'000'000ull;
  return record;
}

StoreConfig SmallStoreConfig(const std::string& dir) {
  StoreConfig config;
  config.dir = dir;
  config.fsync_policy = FsyncPolicy::kOsBuffered;  // Tests don't need real fsync.
  config.auto_compact_segments = 0;                // Explicit Compact() only.
  return config;
}

std::unordered_map<std::string, VerdictRecord> LiveMap(const VerdictStore& store) {
  std::unordered_map<std::string, VerdictRecord> live;
  store.ForEachLive([&](const VerdictRecord& r) { live.emplace(r.digest, r); });
  return live;
}

void AppendFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Path of the single *.wal segment in `dir` matching segment id `id`.
std::string SegmentFile(const std::string& dir, uint64_t id) {
  char name[64];
  std::snprintf(name, sizeof(name), "segment-%08llu.wal",
                static_cast<unsigned long long>(id));
  return dir + "/" + name;
}

TEST(Wal, RecordRoundTripsThroughScan) {
  VerdictRecord record = MakeRecord("abc123", 7, true, 0.875);
  record.seq = 42;
  record.flags = 3;
  const std::vector<uint8_t> frame = EncodeRecord(record);

  const SegmentScan scan = ScanSegment(frame);
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.valid_bytes, frame.size());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].digest, "abc123");
  EXPECT_EQ(scan.records[0].seq, 42u);
  EXPECT_EQ(scan.records[0].model_version, 7u);
  EXPECT_EQ(scan.records[0].flags, 3u);
  EXPECT_TRUE(scan.records[0].malicious);
  EXPECT_EQ(scan.records[0].score, 0.875);
}

TEST(Wal, ScanStopsAtPartialTrailingFrame) {
  std::vector<uint8_t> bytes = EncodeRecord(MakeRecord("d1", 1, false, 0.1));
  const size_t first_frame = bytes.size();
  const std::vector<uint8_t> second = EncodeRecord(MakeRecord("d2", 1, true, 0.9));
  bytes.insert(bytes.end(), second.begin(), second.begin() + second.size() / 2);

  const SegmentScan scan = ScanSegment(bytes);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.valid_bytes, first_frame);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].digest, "d1");
}

TEST(Wal, ScanStopsAtFlippedPayloadByte) {
  std::vector<uint8_t> bytes = EncodeRecord(MakeRecord("d1", 1, false, 0.1));
  bytes[bytes.size() / 2] ^= 0xFF;  // Corrupt mid-frame: CRC must catch it.
  const SegmentScan scan = ScanSegment(bytes);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_TRUE(scan.records.empty());
}

TEST(IoFault, ScriptedOrdinalsFireExactlyOnce) {
  IoFaultPlan plan;
  plan.crash_at = {5};
  plan.short_write_at = {2, 3};
  plan.fsync_fail_at = {1};
  IoFaultInjector injector(plan);

  EXPECT_EQ(injector.OnAppend(1), AppendFault::kNone);
  EXPECT_EQ(injector.OnAppend(2), AppendFault::kShortWrite);
  EXPECT_EQ(injector.OnAppend(3), AppendFault::kShortWrite);
  EXPECT_EQ(injector.OnAppend(4), AppendFault::kNone);
  EXPECT_EQ(injector.OnAppend(5), AppendFault::kCrash);
  EXPECT_TRUE(injector.FsyncFails(1));
  EXPECT_FALSE(injector.FsyncFails(2));
}

TEST(IoFault, SeededRatesAreDeterministic) {
  IoFaultPlan plan;
  plan.seed = 99;
  plan.short_write_rate = 0.5;
  IoFaultInjector a(plan);
  IoFaultInjector b(plan);
  for (uint64_t i = 1; i <= 64; ++i) {
    EXPECT_EQ(a.OnAppend(i), b.OnAppend(i)) << "ordinal " << i;
  }
}

TEST(VerdictStore, OpenEmptyDirIsACleanColdStart) {
  const std::string dir = ScratchDir();
  auto store = VerdictStore::Open(SmallStoreConfig(dir));
  ASSERT_TRUE(store.ok()) << store.error();
  const StoreStats stats = (*store)->stats();
  EXPECT_EQ(stats.recovery.segments_scanned, 0u);
  EXPECT_EQ(stats.recovery.records_recovered, 0u);
  EXPECT_EQ(stats.live_records, 0u);
  EXPECT_EQ(stats.segments, 1u);  // Fresh active segment.
  EXPECT_TRUE((*store)->Append(MakeRecord("d", 1, false, 0.2)).ok());
  fs::remove_all(dir);
}

TEST(VerdictStore, AppendCloseReopenReplaysEverything) {
  const std::string dir = ScratchDir();
  {
    auto store = VerdictStore::Open(SmallStoreConfig(dir));
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*store)
                      ->Append(MakeRecord("digest" + std::to_string(i), 1,
                                          i % 3 == 0, 0.01 * i))
                      .ok());
    }
  }
  auto reopened = VerdictStore::Open(SmallStoreConfig(dir));
  ASSERT_TRUE(reopened.ok());
  const StoreStats stats = (*reopened)->stats();
  EXPECT_EQ(stats.recovery.records_recovered, 20u);
  EXPECT_EQ(stats.recovery.tails_truncated, 0u);
  EXPECT_EQ(stats.live_records, 20u);
  const auto live = LiveMap(**reopened);
  ASSERT_TRUE(live.count("digest3"));
  EXPECT_TRUE(live.at("digest3").malicious);
  EXPECT_EQ(live.at("digest3").model_version, 1u);
  fs::remove_all(dir);
}

TEST(VerdictStore, DuplicateDigestsLastWriterWinsAcrossReopen) {
  const std::string dir = ScratchDir();
  {
    auto store = VerdictStore::Open(SmallStoreConfig(dir));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(MakeRecord("dup", 1, false, 0.1)).ok());
    ASSERT_TRUE((*store)->Append(MakeRecord("other", 1, false, 0.2)).ok());
    ASSERT_TRUE((*store)->Append(MakeRecord("dup", 1, true, 0.95)).ok());
    EXPECT_EQ((*store)->live_size(), 2u);
    EXPECT_EQ((*store)->stats().dead_records, 1u);
  }
  // Second process appends the digest again — seq keeps growing across
  // reopens, so this copy must win over both earlier ones.
  {
    auto store = VerdictStore::Open(SmallStoreConfig(dir));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(MakeRecord("dup", 2, false, 0.5)).ok());
  }
  auto reopened = VerdictStore::Open(SmallStoreConfig(dir));
  ASSERT_TRUE(reopened.ok());
  const auto live = LiveMap(**reopened);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_FALSE(live.at("dup").malicious);
  EXPECT_EQ(live.at("dup").model_version, 2u);
  EXPECT_EQ(live.at("dup").score, 0.5);
  fs::remove_all(dir);
}

TEST(VerdictStore, TornTailTruncatedOnReopen) {
  const std::string dir = ScratchDir();
  uint64_t torn_segment = 0;
  {
    auto store = VerdictStore::Open(SmallStoreConfig(dir));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(MakeRecord("kept1", 1, false, 0.1)).ok());
    ASSERT_TRUE((*store)->Append(MakeRecord("kept2", 1, true, 0.8)).ok());
    torn_segment = (*store)->stats().segments;  // == active id here (1).
  }
  // Simulate a torn write the process never noticed: half a frame appended
  // to the segment after close.
  const std::vector<uint8_t> frame = EncodeRecord(MakeRecord("torn", 1, true, 1.0));
  AppendFileBytes(SegmentFile(dir, torn_segment),
                  {frame.begin(), frame.begin() + frame.size() / 2});

  auto reopened = VerdictStore::Open(SmallStoreConfig(dir));
  ASSERT_TRUE(reopened.ok());
  const StoreStats stats = (*reopened)->stats();
  EXPECT_EQ(stats.recovery.tails_truncated, 1u);
  EXPECT_GT(stats.recovery.bytes_truncated, 0u);
  EXPECT_EQ(stats.recovery.records_recovered, 2u);
  const auto live = LiveMap(**reopened);
  EXPECT_EQ(live.size(), 2u);
  EXPECT_EQ(live.count("torn"), 0u);
  fs::remove_all(dir);
}

// The ISSUE's acceptance scenario: a scripted crash-point mid-append leaves a
// partial frame on disk and kills the store; reopening the same directory
// truncates at the torn record and replays everything acknowledged before it.
TEST(VerdictStore, CrashPointMidAppendTruncatesOnReopenAndReplaysPrior) {
  const std::string dir = ScratchDir();
  StoreConfig config = SmallStoreConfig(dir);
  config.fault_plan.crash_at = {3};
  {
    auto store = VerdictStore::Open(config);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(MakeRecord("ack1", 1, false, 0.1)).ok());
    ASSERT_TRUE((*store)->Append(MakeRecord("ack2", 1, true, 0.9)).ok());
    auto crashed = (*store)->Append(MakeRecord("lost", 1, false, 0.3));
    ASSERT_FALSE(crashed.ok());
    EXPECT_NE(crashed.error().find("crash-point"), std::string::npos);
    // The store is dead until reopen: everything after the crash is rejected.
    EXPECT_FALSE((*store)->Append(MakeRecord("after", 1, false, 0.4)).ok());
    EXPECT_FALSE((*store)->Flush().ok());
    EXPECT_TRUE((*store)->stats().failed);
  }
  auto reopened = VerdictStore::Open(SmallStoreConfig(dir));
  ASSERT_TRUE(reopened.ok());
  const StoreStats stats = (*reopened)->stats();
  EXPECT_EQ(stats.recovery.tails_truncated, 1u);   // The partial "lost" frame.
  EXPECT_GT(stats.recovery.bytes_truncated, 0u);
  EXPECT_EQ(stats.recovery.records_recovered, 2u);
  EXPECT_FALSE(stats.failed);
  const auto live = LiveMap(**reopened);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_FALSE(live.at("ack1").malicious);
  EXPECT_TRUE(live.at("ack2").malicious);
  EXPECT_EQ(live.count("lost"), 0u);
  // The reopened store keeps working.
  EXPECT_TRUE((*reopened)->Append(MakeRecord("fresh", 1, false, 0.5)).ok());
  fs::remove_all(dir);
}

TEST(VerdictStore, ShortWriteIsRepairedInPlaceAndReported) {
  const std::string dir = ScratchDir();
  StoreConfig config = SmallStoreConfig(dir);
  config.fault_plan.short_write_at = {2};
  auto store = VerdictStore::Open(config);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Append(MakeRecord("ok1", 1, false, 0.1)).ok());
  auto shorted = (*store)->Append(MakeRecord("dropped", 1, true, 0.7));
  ASSERT_FALSE(shorted.ok());
  EXPECT_NE(shorted.error().find("short write"), std::string::npos);
  // Unlike a crash-point the store stays alive; the torn bytes were truncated
  // away in place, so the next append lands on a clean tail.
  ASSERT_TRUE((*store)->Append(MakeRecord("ok2", 1, false, 0.2)).ok());
  EXPECT_FALSE((*store)->stats().failed);
  EXPECT_EQ((*store)->stats().injected_faults, 1u);
  store->reset();

  auto reopened = VerdictStore::Open(SmallStoreConfig(dir));
  ASSERT_TRUE(reopened.ok());
  const StoreStats stats = (*reopened)->stats();
  EXPECT_EQ(stats.recovery.tails_truncated, 0u);  // Repair left a clean file.
  EXPECT_EQ(stats.recovery.records_recovered, 2u);
  EXPECT_EQ(LiveMap(**reopened).count("dropped"), 0u);
  fs::remove_all(dir);
}

TEST(VerdictStore, FsyncFailureIsVisibleButNonFatal) {
  const std::string dir = ScratchDir();
  StoreConfig config = SmallStoreConfig(dir);
  config.fsync_policy = FsyncPolicy::kEveryRecord;
  config.fault_plan.fsync_fail_at = {2};
  auto store = VerdictStore::Open(config);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Append(MakeRecord("a", 1, false, 0.1)).ok());
  auto failed = (*store)->Append(MakeRecord("b", 1, false, 0.2));
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.error().find("fsync"), std::string::npos);
  // The record hit the file (only durability is uncertain) and the store is
  // not dead: the next append succeeds and re-fsyncs the tail.
  ASSERT_TRUE((*store)->Append(MakeRecord("c", 1, false, 0.3)).ok());
  EXPECT_EQ((*store)->live_size(), 3u);
  EXPECT_EQ((*store)->stats().fsync_failures, 1u);
  fs::remove_all(dir);
}

TEST(VerdictStore, CorruptSealedSegmentIsQuarantinedNotFatal) {
  const std::string dir = ScratchDir();
  StoreConfig config = SmallStoreConfig(dir);
  config.segment_max_bytes = 4096;  // Floor value: rotate every ~64 records.
  {
    auto store = VerdictStore::Open(config);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*store)
                      ->Append(MakeRecord("digest" + std::to_string(i), 1,
                                          false, 0.001 * i))
                      .ok());
    }
    ASSERT_GE((*store)->stats().segments, 3u) << "test needs >= 2 sealed segments";
  }
  // Flip one byte in the middle of the FIRST segment — a sealed file, so the
  // damage is corruption, not a torn tail, and recovery must quarantine it.
  const std::string victim = SegmentFile(dir, 1);
  {
    std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(100, std::ios::beg);
    char byte = 0;
    f.seekg(100, std::ios::beg);
    f.get(byte);
    byte = static_cast<char>(byte ^ 0xFF);
    f.seekp(100, std::ios::beg);
    f.put(byte);
  }

  auto reopened = VerdictStore::Open(SmallStoreConfig(dir));
  ASSERT_TRUE(reopened.ok());
  const StoreStats stats = (*reopened)->stats();
  EXPECT_EQ(stats.recovery.segments_quarantined, 1u);
  EXPECT_GT(stats.recovery.records_quarantined, 0u);
  EXPECT_LT(stats.live_records, 200u);  // The quarantined records are excluded…
  EXPECT_GT(stats.live_records, 0u);    // …but everything else survived.
  EXPECT_FALSE(fs::exists(victim));
  EXPECT_TRUE(fs::exists(victim.substr(0, victim.size() - 4) + ".quarantined"));
  // Serving continues: the store accepts appends after quarantining.
  EXPECT_TRUE((*reopened)->Append(MakeRecord("new", 1, false, 0.5)).ok());
  fs::remove_all(dir);
}

TEST(VerdictStore, CompactionDropsDeadRecordsAndSurvivesReopen) {
  const std::string dir = ScratchDir();
  StoreConfig config = SmallStoreConfig(dir);
  config.segment_max_bytes = 4096;
  auto store = VerdictStore::Open(config);
  ASSERT_TRUE(store.ok());
  // 40 digests overwritten 10 times each: lots of dead frames, many segments.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE((*store)
                      ->Append(MakeRecord("digest" + std::to_string(i), 1,
                                          round == 9, 0.1 * round))
                      .ok());
    }
  }
  const StoreStats before = (*store)->stats();
  EXPECT_EQ(before.live_records, 40u);
  EXPECT_GT(before.dead_records, 0u);
  EXPECT_GT(before.segments, 2u);

  ASSERT_TRUE((*store)->Compact().ok());
  const StoreStats after = (*store)->stats();
  EXPECT_EQ(after.live_records, 40u);
  EXPECT_EQ(after.compactions, 1u);
  EXPECT_LT(after.dead_records, before.dead_records);
  EXPECT_LE(after.segments, 2u);  // Compacted segment + active.
  store->reset();

  auto reopened = VerdictStore::Open(SmallStoreConfig(dir));
  ASSERT_TRUE(reopened.ok());
  const auto live = LiveMap(**reopened);
  ASSERT_EQ(live.size(), 40u);
  for (const auto& [digest, record] : live) {
    EXPECT_TRUE(record.malicious) << digest;  // Round-9 copies won everywhere.
    EXPECT_EQ(record.score, 0.9);
  }
  fs::remove_all(dir);
}

TEST(VerdictStore, AutoCompactionTriggersAtRotation) {
  const std::string dir = ScratchDir();
  StoreConfig config = SmallStoreConfig(dir);
  config.segment_max_bytes = 4096;
  config.auto_compact_segments = 2;
  auto store = VerdictStore::Open(config);
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 12; ++round) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          (*store)
              ->Append(MakeRecord("digest" + std::to_string(i), 1, false, 0.1))
              .ok());
    }
  }
  const StoreStats stats = (*store)->stats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_EQ(stats.live_records, 40u);
  fs::remove_all(dir);
}

// Two stores that evolved independently assign overlapping seq numbers to
// different digests (and different verdicts to the same digest). A full
// round-trip exchange — A's export into B, B's export into A — must converge
// both live sets, with seq strictly-greater deciding the shared digest and
// ties keeping the local copy.
TEST(VerdictStoreExchange, RoundTripWithConflictingSeqsConverges) {
  const std::string dir_a = ScratchDir();
  const std::string dir_b = ScratchDir();
  const std::string export_a = ScratchDir();
  const std::string export_b = ScratchDir();

  auto store_a = VerdictStore::Open(SmallStoreConfig(dir_a));
  auto store_b = VerdictStore::Open(SmallStoreConfig(dir_b));
  ASSERT_TRUE(store_a.ok());
  ASSERT_TRUE(store_b.ok());

  // A: "shared" at seq 1, "a-only" at seq 2.
  ASSERT_TRUE((*store_a)->Append(MakeRecord("shared", 1, false, 0.10)).ok());
  ASSERT_TRUE((*store_a)->Append(MakeRecord("a-only", 1, false, 0.20)).ok());
  // B: "b-only" at seq 1, then a NEWER "shared" at seq 2 — same seq as A's
  // "a-only", greater than A's "shared".
  ASSERT_TRUE((*store_b)->Append(MakeRecord("b-only", 1, false, 0.30)).ok());
  ASSERT_TRUE((*store_b)->Append(MakeRecord("shared", 2, true, 0.95)).ok());

  auto exported_b = (*store_b)->ExportSegments(export_b);
  ASSERT_TRUE(exported_b.ok());
  EXPECT_GE(exported_b->segments, 1u);
  EXPECT_EQ(exported_b->records, 2u);

  // B -> A: both of B's records are newer or new, so both apply.
  auto into_a = (*store_a)->ImportSegments(export_b);
  ASSERT_TRUE(into_a.ok());
  EXPECT_EQ(into_a->records, 2u);
  EXPECT_EQ(into_a->superseded, 0u);

  // A -> B (export AFTER the merge, so it carries B's seq-2 "shared" back):
  // "a-only" applies, "shared" and "b-only" tie on seq and are superseded.
  auto exported_a = (*store_a)->ExportSegments(export_a);
  ASSERT_TRUE(exported_a.ok());
  auto into_b = (*store_b)->ImportSegments(export_a);
  ASSERT_TRUE(into_b.ok());
  EXPECT_EQ(into_b->records, 1u);
  EXPECT_EQ(into_b->superseded, 3u);

  const auto live_a = LiveMap(**store_a);
  const auto live_b = LiveMap(**store_b);
  ASSERT_EQ(live_a.size(), 3u);
  ASSERT_EQ(live_b.size(), 3u);
  for (const auto& [digest, record] : live_a) {
    ASSERT_TRUE(live_b.count(digest)) << digest;
    EXPECT_EQ(live_b.at(digest).seq, record.seq) << digest;
    EXPECT_EQ(live_b.at(digest).malicious, record.malicious) << digest;
    EXPECT_EQ(live_b.at(digest).score, record.score) << digest;
  }
  // The conflicting digest resolved to B's newer verdict on both sides.
  EXPECT_TRUE(live_a.at("shared").malicious);
  EXPECT_EQ(live_a.at("shared").model_version, 2u);

  // The merge is durable: a post-import append must outrank every imported
  // seq, and replay after reopen converges to the same live set.
  ASSERT_TRUE((*store_a)->Append(MakeRecord("shared", 3, false, 0.01)).ok());
  store_a->reset();
  auto reopened = VerdictStore::Open(SmallStoreConfig(dir_a));
  ASSERT_TRUE(reopened.ok());
  const auto live = LiveMap(**reopened);
  ASSERT_EQ(live.size(), 3u);
  EXPECT_FALSE(live.at("shared").malicious);
  EXPECT_EQ(live.at("shared").model_version, 3u);

  for (const auto& dir : {dir_a, dir_b, export_a, export_b}) {
    fs::remove_all(dir);
  }
}

TEST(VerdictStoreExchange, ReimportIsIdempotent) {
  const std::string dir_a = ScratchDir();
  const std::string dir_b = ScratchDir();
  const std::string export_dir = ScratchDir();
  auto store_a = VerdictStore::Open(SmallStoreConfig(dir_a));
  auto store_b = VerdictStore::Open(SmallStoreConfig(dir_b));
  ASSERT_TRUE(store_a.ok());
  ASSERT_TRUE(store_b.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        (*store_a)
            ->Append(MakeRecord("digest" + std::to_string(i), 1, false, 0.1))
            .ok());
  }
  ASSERT_TRUE((*store_a)->ExportSegments(export_dir).ok());

  auto first = (*store_b)->ImportSegments(export_dir);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->records, 8u);
  // Same export again: every record ties on seq against the local copy.
  auto second = (*store_b)->ImportSegments(export_dir);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->records, 0u);
  EXPECT_EQ(second->superseded, 8u);
  EXPECT_EQ((*store_b)->live_size(), 8u);

  // Self-exchange is rejected rather than looping records through itself.
  EXPECT_FALSE((*store_b)->ImportSegments((*store_b)->config().dir).ok());
  EXPECT_FALSE((*store_b)->ExportSegments((*store_b)->config().dir).ok());

  for (const auto& dir : {dir_a, dir_b, export_dir}) {
    fs::remove_all(dir);
  }
}

TEST(VerdictStoreExchange, CorruptTransferSegmentSkippedNeverPartiallyApplied) {
  const std::string dir_a = ScratchDir();
  const std::string dir_b = ScratchDir();
  const std::string export_dir = ScratchDir();
  auto store_a = VerdictStore::Open(SmallStoreConfig(dir_a));
  auto store_b = VerdictStore::Open(SmallStoreConfig(dir_b));
  ASSERT_TRUE(store_a.ok());
  ASSERT_TRUE(store_b.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        (*store_a)
            ->Append(MakeRecord("digest" + std::to_string(i), 1, false, 0.1))
            .ok());
  }
  ASSERT_TRUE((*store_a)->ExportSegments(export_dir).ok());

  // Flip one byte early in the only transferred segment: the scan fails, and
  // the importer must skip the file wholesale — applying the records before
  // the corruption would make the merge order-dependent.
  std::string segment;
  for (const auto& entry : fs::directory_iterator(export_dir)) {
    segment = entry.path().string();
  }
  ASSERT_FALSE(segment.empty());
  {
    std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(10);
    f.put('\xff');
  }
  auto imported = (*store_b)->ImportSegments(export_dir);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported->segments, 0u);
  EXPECT_EQ(imported->records, 0u);
  EXPECT_EQ(imported->skipped_unclean, 1u);
  EXPECT_EQ((*store_b)->live_size(), 0u);

  for (const auto& dir : {dir_a, dir_b, export_dir}) {
    fs::remove_all(dir);
  }
}

TEST(ParseFsyncPolicy, NamesRoundTrip) {
  for (FsyncPolicy policy : {FsyncPolicy::kEveryRecord, FsyncPolicy::kGroupCommit,
                             FsyncPolicy::kOsBuffered}) {
    auto parsed = ParseFsyncPolicy(FsyncPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseFsyncPolicy("laissez-faire").ok());
}

}  // namespace
}  // namespace apichecker::store

// Serve-layer integration: warm start, stale-version filtering, and the
// kill-and-restart soak. Lives in the serve namespace for the test helpers.
namespace apichecker::serve {
namespace {

namespace fs = std::filesystem;

const android::ApiUniverse& TestUniverse() {
  static const android::ApiUniverse universe = [] {
    android::UniverseConfig config;
    config.num_apis = 6'000;
    return android::ApiUniverse::Generate(config);
  }();
  return universe;
}

const std::vector<uint8_t>& TrainedBlob() {
  static const std::vector<uint8_t> blob = [] {
    synth::CorpusConfig corpus_config;
    synth::CorpusGenerator generator(TestUniverse(), corpus_config);
    core::StudyConfig study_config;
    study_config.num_apps = 1'200;
    const core::StudyDataset study =
        core::RunStudy(TestUniverse(), generator, study_config);
    core::ApiChecker checker(TestUniverse(), {});
    checker.TrainFromStudy(study);
    return core::SerializeChecker(checker);
  }();
  return blob;
}

core::ApiChecker TrainedChecker() {
  auto checker = core::DeserializeChecker(TestUniverse(), TrainedBlob());
  EXPECT_TRUE(checker.ok());
  return std::move(*checker);
}

std::vector<std::vector<uint8_t>> MakeApks(size_t count, uint64_t seed) {
  synth::CorpusConfig config;
  config.seed = seed;
  config.update_fraction = 0.0;
  synth::CorpusGenerator generator(TestUniverse(), config);
  std::vector<std::vector<uint8_t>> apks;
  for (size_t i = 0; i < count; ++i) {
    apks.push_back(synth::BuildApkBytes(generator.Next(), TestUniverse()));
  }
  return apks;
}

ServiceConfig StoreServiceConfig(const std::string& dir) {
  ServiceConfig config;
  config.num_shards = 2;
  config.shard_capacity = 64;
  config.farm.num_emulators = 4;
  config.farm.worker_threads = 2;
  config.scheduler.batch_size = 4;
  config.scheduler.max_linger = std::chrono::milliseconds(5);
  config.store.dir = dir;
  config.store.fsync_policy = store::FsyncPolicy::kOsBuffered;
  return config;
}

// Runs `apks` through a fresh service instance on `dir` and returns its final
// stats. Every submission must resolve (the zero-lost invariant is asserted).
ServiceStats RunOnce(const std::string& dir,
                     const std::vector<std::vector<uint8_t>>& apks,
                     const store::IoFaultPlan& fault_plan = {}) {
  ServiceConfig config = StoreServiceConfig(dir);
  config.store.fault_plan = fault_plan;
  VettingService service(TestUniverse(), config, TrainedChecker());
  std::vector<std::future<VettingResult>> futures;
  for (const auto& apk : apks) {
    Submission submission;
    submission.blob = ingest::ApkBlob::FromBytes(apk);
    auto accepted = service.Submit(std::move(submission));
    if (accepted.ok()) {
      futures.push_back(std::move(*accepted));
    }
  }
  for (auto& future : futures) {
    future.get();
  }
  service.Shutdown();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, stats.resolved()) << "lost submissions";
  return stats;
}

TEST(VettingServiceStore, RestartWarmStartsCacheFromStore) {
  const std::string dir = store::ScratchDir();
  const auto apks = MakeApks(12, /*seed=*/7);

  const ServiceStats cold = RunOnce(dir, apks);
  EXPECT_EQ(cold.warm_start_hits, 0u);
  EXPECT_EQ(cold.completed, 12u);

  // Same trace against a new process on the same store dir: every digest was
  // persisted, so the whole trace resolves from the warm-started cache.
  const ServiceStats warm = RunOnce(dir, apks);
  EXPECT_EQ(warm.completed, 12u);
  EXPECT_GT(warm.warm_start_hits, 0u);
  EXPECT_EQ(warm.warm_start_hits, warm.cache_hits);
  fs::remove_all(dir);
}

TEST(VettingServiceStore, StaleModelVersionSkippedOnWarmStart) {
  const std::string dir = store::ScratchDir();
  {
    auto raw = store::VerdictStore::Open([&] {
      store::StoreConfig config;
      config.dir = dir;
      config.fsync_policy = store::FsyncPolicy::kOsBuffered;
      return config;
    }());
    ASSERT_TRUE(raw.ok());
    store::VerdictRecord current;
    current.digest = "digest-current";
    current.model_version = 1;  // A fresh service publishes its model as v1.
    current.malicious = true;
    ASSERT_TRUE((*raw)->Append(current).ok());
    store::VerdictRecord stale;
    stale.digest = "digest-stale";
    stale.model_version = 99;  // From a model this process will never serve.
    ASSERT_TRUE((*raw)->Append(stale).ok());
  }

  ServiceConfig config = StoreServiceConfig(dir);
  config.start_paused = true;  // No traffic needed; just inspect the cache.
  VettingService service(TestUniverse(), config, TrainedChecker());
  EXPECT_EQ(service.cache().size(), 1u);  // Only the version-1 record warmed.
  service.Shutdown();
  fs::remove_all(dir);
}

TEST(VettingServiceStore, ShutdownFlushesInFlightCompletionsToStore) {
  const std::string dir = store::ScratchDir();
  const auto apks = MakeApks(10, /*seed=*/21);
  // Submit and shut down immediately WITHOUT waiting on the futures: Shutdown
  // must drain the pool and flush every completion to the store before the
  // service tears down (the in-flight-completions ordering fix).
  {
    ServiceConfig config = StoreServiceConfig(dir);
    VettingService service(TestUniverse(), config, TrainedChecker());
    std::vector<std::future<VettingResult>> futures;
    for (const auto& apk : apks) {
      Submission submission;
      submission.blob = ingest::ApkBlob::FromBytes(apk);
      auto accepted = service.Submit(std::move(submission));
      ASSERT_TRUE(accepted.ok());
      futures.push_back(std::move(*accepted));
    }
    service.Shutdown();
    const ServiceStats stats = service.stats();
    ASSERT_EQ(stats.accepted, stats.resolved());
  }
  auto reopened = store::VerdictStore::Open([&] {
    store::StoreConfig config;
    config.dir = dir;
    return config;
  }());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->stats().recovery.records_recovered, 10u);
  fs::remove_all(dir);
}

// Stress suite (ctest label "stress"; runs under TSan in CI).

// Repeated service restarts on one store directory, with a store crash-point
// injected in some rounds: acknowledged verdicts survive every restart, no
// submission is ever lost, and from the second round on the warm-started
// cache demonstrably serves hits.
TEST(VerdictStoreSoak, KillAndRestartZeroLostVerdictsAndWarmHits) {
  const std::string dir = store::ScratchDir();
  const auto apks = MakeApks(16, /*seed=*/33);
  constexpr int kRounds = 6;
  uint64_t total_warm_hits = 0;
  for (int round = 0; round < kRounds; ++round) {
    store::IoFaultPlan fault_plan;
    if (round % 2 == 1) {
      // Kill the store partway through the round's appends; the service must
      // keep resolving submissions and the next round must recover cleanly.
      fault_plan.crash_at = {5};
    }
    const ServiceStats stats = RunOnce(dir, apks, fault_plan);
    EXPECT_EQ(stats.accepted, stats.resolved()) << "round " << round;
    if (round > 0) {
      EXPECT_GT(stats.warm_start_hits, 0u) << "round " << round;
    }
    total_warm_hits += stats.warm_start_hits;
  }
  EXPECT_GT(total_warm_hits, 0u);

  // Nothing acknowledged was lost: the final store holds only valid records
  // and recovery reports truncations, never an open failure.
  auto store = store::VerdictStore::Open([&] {
    store::StoreConfig config;
    config.dir = dir;
    return config;
  }());
  ASSERT_TRUE(store.ok()) << store.error();
  EXPECT_GT((*store)->live_size(), 0u);
  EXPECT_EQ((*store)->stats().recovery.segments_quarantined, 0u);
  fs::remove_all(dir);
}

// Store-level crash soak: with fsync-every-record, every append the store
// acknowledged must be present after a scripted crash + reopen — zero lost
// acknowledged verdicts, bit-for-bit.
TEST(VerdictStoreSoak, ScriptedCrashesNeverLoseAcknowledgedRecords) {
  const std::string dir = store::ScratchDir();
  std::unordered_map<std::string, double> acknowledged;
  uint64_t next_digest = 0;
  for (int round = 0; round < 10; ++round) {
    store::StoreConfig config;
    config.dir = dir;
    config.fsync_policy = store::FsyncPolicy::kEveryRecord;
    config.fault_plan.crash_at = {static_cast<uint64_t>(3 + round)};
    auto store = store::VerdictStore::Open(config);
    ASSERT_TRUE(store.ok()) << store.error();

    // Everything acknowledged in previous rounds must have been replayed.
    const auto live = store::LiveMap(**store);
    for (const auto& [digest, score] : acknowledged) {
      auto it = live.find(digest);
      ASSERT_NE(it, live.end()) << "lost acknowledged record " << digest;
      EXPECT_EQ(it->second.score, score) << digest;
    }

    for (int i = 0; i < 16; ++i) {
      const std::string digest = "soak" + std::to_string(next_digest++);
      const double score = 0.001 * static_cast<double>(next_digest);
      auto appended =
          (*store)->Append(store::MakeRecord(digest, 1, false, score));
      if (appended.ok()) {
        acknowledged.emplace(digest, score);
      } else {
        break;  // Crash-point fired; the store is dead for this round.
      }
    }
  }
  EXPECT_GT(acknowledged.size(), 0u);
  fs::remove_all(dir);
}

// Compaction runs while appenders hammer the store from multiple threads; the
// final live set must equal exactly what the appenders wrote last, both in
// memory and after a reopen.
TEST(VerdictStoreSoak, CompactionUnderConcurrentAppends) {
  const std::string dir = store::ScratchDir();
  store::StoreConfig config;
  config.dir = dir;
  config.fsync_policy = store::FsyncPolicy::kOsBuffered;
  config.segment_max_bytes = 4096;
  config.auto_compact_segments = 0;
  auto opened = store::VerdictStore::Open(config);
  ASSERT_TRUE(opened.ok());
  store::VerdictStore& store = **opened;

  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  constexpr int kDigestsPerThread = 8;
  std::vector<std::thread> appenders;
  std::atomic<bool> stop{false};
  for (int t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kDigestsPerThread; ++i) {
          const std::string digest =
              "t" + std::to_string(t) + "_d" + std::to_string(i);
          ASSERT_TRUE(
              store.Append(store::MakeRecord(digest, 1, round == kRounds - 1,
                                             0.01 * round))
                  .ok());
        }
      }
    });
  }
  std::thread compactor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(store.Compact().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& thread : appenders) {
    thread.join();
  }
  stop.store(true, std::memory_order_release);
  compactor.join();
  ASSERT_TRUE(store.Compact().ok());

  const size_t expected_live = kThreads * kDigestsPerThread;
  EXPECT_EQ(store.live_size(), expected_live);
  auto live = store::LiveMap(store);
  for (const auto& [digest, record] : live) {
    EXPECT_TRUE(record.malicious) << digest;  // Last round won everywhere.
  }
  opened->reset();

  auto reopened = store::VerdictStore::Open(config);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->live_size(), expected_live);
  for (const auto& [digest, record] : store::LiveMap(**reopened)) {
    EXPECT_TRUE(record.malicious) << digest;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace apichecker::serve
