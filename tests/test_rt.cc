// Tests for src/rt: the unified async runtime. The timer edge cases here are
// the contract the migrated layers lean on — zero-delay posts (the scheduler
// pump), cancel-after-fire races (gateway deadline timers vs completed
// uploads), coalesced deadlines firing in order (EDF linger flushes), timers
// posted from within timer callbacks (heartbeat ticks rescheduling
// themselves), and executor drain with timers still pending (service
// teardown). RtSoak carries the stress label for the TSan tier.

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "rt/runtime.h"

namespace apichecker::rt {
namespace {

using std::chrono::milliseconds;

bool WaitFor(const std::function<bool()>& predicate,
             milliseconds timeout = milliseconds(5'000)) {
  const Clock::time_point give_up = Clock::now() + timeout;
  while (Clock::now() < give_up) {
    if (predicate()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return predicate();
}

TEST(Runtime, PostRunsTasksOnWorkers) {
  Runtime rt(RuntimeOptions{.workers = 4});
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    rt.Post([&ran] { ran.fetch_add(1); });
  }
  EXPECT_TRUE(WaitFor([&] { return ran.load() == 100; }));
}

TEST(Runtime, ZeroDelayTimerFiresPromptly) {
  Runtime rt(RuntimeOptions{.workers = 2});
  std::promise<void> fired;
  auto done = fired.get_future();
  const Clock::time_point posted = Clock::now();
  rt.PostAfter(milliseconds(0), [&fired] { fired.set_value(); });
  ASSERT_EQ(done.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  // "Promptly" for a zero-delay post: well under the coarsest linger the
  // scheduler ever configures.
  EXPECT_LT(Clock::now() - posted, std::chrono::seconds(2));
}

TEST(Runtime, CancelBeforeFireSuppressesTheCallback) {
  Runtime rt(RuntimeOptions{.workers = 2});
  std::atomic<bool> ran{false};
  CancelToken token =
      rt.PostAfter(milliseconds(200), [&ran] { ran.store(true); });
  EXPECT_TRUE(token.Cancel());
  std::this_thread::sleep_for(milliseconds(350));
  EXPECT_FALSE(ran.load());
  EXPECT_FALSE(token.fired());
}

TEST(Runtime, CancelAfterFireRaceLosesExactlyOnce) {
  // A timer and its cancellation race: whichever CAS wins, the outcome is
  // coherent — Cancel() true means the callback never runs, Cancel() false
  // after the deadline means it ran (or is running).
  Runtime rt(RuntimeOptions{.workers = 2});
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    CancelToken token =
        rt.PostAfter(milliseconds(1), [&ran] { ran.fetch_add(1); });
    std::this_thread::sleep_for(milliseconds(round % 3));
    const bool cancelled = token.Cancel();
    // Let any in-flight fire land before asserting.
    ASSERT_TRUE(WaitFor([&] { return cancelled || ran.load() == 1; }));
    EXPECT_EQ(ran.load(), cancelled ? 0 : 1);
    EXPECT_NE(cancelled, token.fired());
  }
}

TEST(Runtime, CoalescedDeadlinesFireInDeadlineOrder) {
  Runtime rt(RuntimeOptions{.workers = 1});
  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> fired{0};
  // All five deadlines land inside one sweep window; post them shuffled.
  const Clock::time_point base = Clock::now() + milliseconds(50);
  const int shuffled[] = {3, 0, 4, 1, 2};
  for (int i : shuffled) {
    rt.PostAt(base + milliseconds(i), [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      fired.fetch_add(1);
    });
  }
  ASSERT_TRUE(WaitFor([&] { return fired.load() == 5; }));
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Runtime, TimerPostedFromWithinATimerCallback) {
  // The heartbeat-tick shape: a timer callback arms the next tick.
  Runtime rt(RuntimeOptions{.workers = 2});
  std::atomic<int> ticks{0};
  std::function<void()> tick = [&] {
    if (ticks.fetch_add(1) + 1 < 5) {
      rt.PostAfter(milliseconds(5), tick);
    }
  };
  rt.PostAfter(milliseconds(5), tick);
  EXPECT_TRUE(WaitFor([&] { return ticks.load() == 5; }));
}

TEST(Runtime, ShutdownDrainsPostedTasksAndCancelsPendingTimers) {
  std::atomic<int> ran{0};
  std::atomic<bool> late_timer_ran{false};
  {
    Runtime rt(RuntimeOptions{.workers = 2});
    for (int i = 0; i < 64; ++i) {
      // Draining tasks may themselves post: both halves must run.
      rt.Post([&ran, &rt] {
        rt.Post([&ran] { ran.fetch_add(1); });
        ran.fetch_add(1);
      });
    }
    rt.PostAfter(std::chrono::hours(1),
                 [&late_timer_ran] { late_timer_ran.store(true); });
    rt.Shutdown();
    // Idempotent: a second (and third) shutdown is a no-op.
    rt.Shutdown();
    rt.Shutdown();
  }
  EXPECT_EQ(ran.load(), 128);
  EXPECT_FALSE(late_timer_ran.load());
}

TEST(Runtime, PostAfterShutdownIsDropped) {
  Runtime rt(RuntimeOptions{.workers = 2});
  rt.Shutdown();
  std::atomic<bool> ran{false};
  rt.Post([&ran] { ran.store(true); });
  CancelToken token = rt.PostAfter(milliseconds(1), [&ran] { ran.store(true); });
  EXPECT_FALSE(token.valid());
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_FALSE(ran.load());
}

TEST(Runtime, StrandSerializesButInterleavesAcrossStrands) {
  Runtime rt(RuntimeOptions{.workers = 4});
  auto a = rt.MakeStrand();
  auto b = rt.MakeStrand();
  std::atomic<int> in_a{0};
  std::atomic<int> max_in_a{0};
  std::atomic<int> total{0};
  for (int i = 0; i < 200; ++i) {
    a->Post([&] {
      const int now = in_a.fetch_add(1) + 1;
      int seen = max_in_a.load();
      while (now > seen && !max_in_a.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::yield();
      in_a.fetch_sub(1);
      total.fetch_add(1);
    });
    b->Post([&] { total.fetch_add(1); });
  }
  EXPECT_TRUE(WaitFor([&] { return total.load() == 400; }));
  EXPECT_EQ(max_in_a.load(), 1);  // Never two tasks of one strand at once.
}

TEST(Runtime, StrandPreservesFifoOrder) {
  Runtime rt(RuntimeOptions{.workers = 4});
  auto strand = rt.MakeStrand();
  std::vector<int> order;
  std::atomic<int> done{0};
  for (int i = 0; i < 500; ++i) {
    strand->Post([&, i] {
      order.push_back(i);  // Serialized by the strand: no lock needed.
      done.fetch_add(1);
    });
  }
  ASSERT_TRUE(WaitFor([&] { return done.load() == 500; }));
  for (int i = 0; i < 500; ++i) EXPECT_EQ(order[i], i);
}

TEST(Runtime, PostFdFiresOnReadableAndSupportsRearm) {
  Runtime rt(RuntimeOptions{.workers = 2});
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::atomic<int> readable_events{0};
  std::function<void()> on_readable = [&] {
    char buffer[16];
    (void)!read(fds[0], buffer, sizeof(buffer));
    if (readable_events.fetch_add(1) + 1 < 3) {
      rt.PostFd(fds[0], on_readable);  // Re-arm from the callback.
    }
  };
  rt.PostFd(fds[0], on_readable);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(write(fds[1], "x", 1), 1);
    ASSERT_TRUE(WaitFor([&] { return readable_events.load() == i + 1; }));
  }
  close(fds[0]);
  close(fds[1]);
}

TEST(Runtime, CancelledFdWatchNeverFires) {
  Runtime rt(RuntimeOptions{.workers = 2});
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::atomic<bool> fired{false};
  CancelToken token = rt.PostFd(fds[0], [&fired] { fired.store(true); });
  EXPECT_TRUE(token.Cancel());
  ASSERT_EQ(write(fds[1], "x", 1), 1);
  std::this_thread::sleep_for(milliseconds(100));
  EXPECT_FALSE(fired.load());
  close(fds[0]);
  close(fds[1]);
}

TEST(Runtime, WorkStealingKeepsAllWorkersBusy) {
  // Post a burst from one external thread (all tasks land round-robin, but
  // long tasks pile on some queues): stealing must still run everything.
  Runtime rt(RuntimeOptions{.workers = 4});
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    rt.Post([&ran, i] {
      if (i % 8 == 0) std::this_thread::sleep_for(milliseconds(20));
      ran.fetch_add(1);
    });
  }
  EXPECT_TRUE(WaitFor([&] { return ran.load() == 64; }));
}

// Stress shape for the TSan tier: timers, strands, fd readiness, and plain
// posts all churning against a mid-flight Shutdown.
TEST(RtSoak, ConcurrentPostCancelShutdownIsRaceFree) {
  for (int round = 0; round < 5; ++round) {
    Runtime rt(RuntimeOptions{.workers = 4});
    auto strand = rt.MakeStrand();
    std::atomic<int> ran{0};
    std::vector<std::thread> posters;
    for (int t = 0; t < 4; ++t) {
      posters.emplace_back([&, t] {
        std::vector<CancelToken> tokens;
        for (int i = 0; i < 200; ++i) {
          rt.Post([&ran] { ran.fetch_add(1); });
          strand->Post([&ran] { ran.fetch_add(1); });
          tokens.push_back(
              rt.PostAfter(milliseconds(i % 7), [&ran] { ran.fetch_add(1); }));
          if (i % 3 == t % 3) tokens.back().Cancel();
        }
      });
    }
    for (std::thread& thread : posters) thread.join();
    rt.Shutdown();
    EXPECT_GT(ran.load(), 0);
  }
}

}  // namespace
}  // namespace apichecker::rt
