// Unit tests for src/apk: the ZIP container codec, manifest and dex codecs,
// APK assembly/parsing, and tamper detection.

#include <gtest/gtest.h>

#include "apk/apk.h"
#include "apk/dex.h"
#include "apk/manifest.h"
#include "apk/zip.h"
#include "util/rng.h"

namespace apichecker::apk {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(Zip, RoundTripsEntries) {
  ZipWriter writer;
  writer.AddEntry("a.txt", Bytes("hello"));
  writer.AddEntry("dir/b.bin", Bytes(std::string(1000, 'x')));
  writer.AddEntry("empty", {});
  const auto archive = writer.Finish();

  auto reader = ZipReader::Parse(archive);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader->entries().size(), 3u);
  ASSERT_NE(reader->Find("a.txt"), nullptr);
  EXPECT_EQ(*reader->Find("a.txt"), Bytes("hello"));
  EXPECT_EQ(reader->Find("dir/b.bin")->size(), 1000u);
  EXPECT_TRUE(reader->Find("empty")->empty());
  EXPECT_EQ(reader->Find("missing"), nullptr);
}

class ZipManyEntries : public ::testing::TestWithParam<size_t> {};

TEST_P(ZipManyEntries, RoundTripsNEntries) {
  ZipWriter writer;
  for (size_t i = 0; i < GetParam(); ++i) {
    writer.AddEntry("entry" + std::to_string(i), Bytes(std::string(i % 50, 'a' + i % 26)));
  }
  const auto archive = writer.Finish();
  auto reader = ZipReader::Parse(archive);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader->entries().size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZipManyEntries, ::testing::Values(1, 2, 17, 100));

TEST(Zip, DetectsCrcCorruption) {
  ZipWriter writer;
  writer.AddEntry("a", Bytes("payload-payload"));
  auto archive = writer.Finish();
  // Flip one payload byte (local header is 30 bytes + 1 name byte).
  archive[35] ^= 0xFF;
  const auto reader = ZipReader::Parse(archive);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("CRC"), std::string::npos);
}

TEST(Zip, RejectsTruncatedAndGarbage) {
  EXPECT_FALSE(ZipReader::Parse({}).ok());
  const auto garbage = Bytes(std::string(64, 'z'));
  EXPECT_FALSE(ZipReader::Parse(garbage).ok());
  ZipWriter writer;
  writer.AddEntry("a", Bytes("x"));
  auto archive = writer.Finish();
  archive.resize(archive.size() - 4);  // Chop the EOCD tail.
  EXPECT_FALSE(ZipReader::Parse(archive).ok());
}

// --- Hostile-input suite: attacker-shaped archives must come back as Result
// errors, never crashes or out-of-range reads (ci.sh runs these under ASan).

// Overwrites the little-endian u32 at `offset`.
void PutU32At(std::vector<uint8_t>& bytes, size_t offset, uint32_t value) {
  ASSERT_LE(offset + 4, bytes.size());
  bytes[offset] = static_cast<uint8_t>(value & 0xFF);
  bytes[offset + 1] = static_cast<uint8_t>((value >> 8) & 0xFF);
  bytes[offset + 2] = static_cast<uint8_t>((value >> 16) & 0xFF);
  bytes[offset + 3] = static_cast<uint8_t>((value >> 24) & 0xFF);
}

// One-entry archive plus the offsets an attacker would aim at. The EOCD is the
// last 22 bytes (no comment); its central_size/central_offset u32s sit at
// EOCD+12 and EOCD+16. The entry's central record starts at central_offset;
// its uncompressed-size field is 24 bytes in.
struct HostileArchive {
  std::vector<uint8_t> bytes;
  size_t eocd;
  size_t central;

  static HostileArchive Make() {
    ZipWriter writer;
    writer.AddEntry("a.txt", Bytes("attack surface payload"));
    HostileArchive archive;
    archive.bytes = writer.Finish();
    archive.eocd = archive.bytes.size() - 22;
    archive.central = archive.eocd - 46 - 5;  // One record + "a.txt".
    return archive;
  }
};

TEST(ZipHostile, ZeroEntryArchiveRejected) {
  ZipWriter writer;
  const auto archive = writer.Finish();  // Structurally valid, zero entries.
  const auto reader = ZipReader::Parse(archive);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("zero-entry"), std::string::npos);
}

TEST(ZipHostile, TruncatedCentralDirectoryRejected) {
  // Shrinking the advertised central size truncates the record mid-field.
  HostileArchive archive = HostileArchive::Make();
  PutU32At(archive.bytes, archive.eocd + 12, 10);
  EXPECT_FALSE(ZipReader::Parse(archive.bytes).ok());

  // Growing it past the archive end must be caught by the bounds check.
  HostileArchive oversized = HostileArchive::Make();
  PutU32At(oversized.bytes, oversized.eocd + 12, 1u << 20);
  const auto reader = ZipReader::Parse(oversized.bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("out of bounds"), std::string::npos);
}

TEST(ZipHostile, Eocd32BitWrapDoesNotBypassBoundsCheck) {
  // offset + size wraps past 2^32 to a small number: with 32-bit arithmetic
  // the bounds check would pass and the subspan would read out of range.
  HostileArchive archive = HostileArchive::Make();
  PutU32At(archive.bytes, archive.eocd + 16, 0xFFFFFFF0u);  // central_offset
  PutU32At(archive.bytes, archive.eocd + 12, 0x20u);        // central_size
  const auto reader = ZipReader::Parse(archive.bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("out of bounds"), std::string::npos);
}

TEST(ZipHostile, TornLocalHeaderRejected) {
  // Corrupt the local header signature the central record points at.
  HostileArchive torn = HostileArchive::Make();
  torn.bytes[0] ^= 0xFF;
  auto reader = ZipReader::Parse(torn.bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("local header"), std::string::npos);

  // Point the central record's local-header offset past the archive.
  HostileArchive wild = HostileArchive::Make();
  PutU32At(wild.bytes, wild.central + 42, 1u << 24);
  reader = ZipReader::Parse(wild.bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("offset out of bounds"), std::string::npos);
}

TEST(ZipHostile, EntrySizeOverrunRejected) {
  // Inflate the uncompressed size so extraction would run past the payload
  // into the central directory and beyond.
  HostileArchive archive = HostileArchive::Make();
  PutU32At(archive.bytes, archive.central + 24, 1u << 16);
  const auto reader = ZipReader::Parse(archive.bytes);
  ASSERT_FALSE(reader.ok());
  // Either the data read or the CRC cross-check trips — both are clean errors.
}

TEST(ZipHostile, CrcMismatchNamesTheEntry) {
  HostileArchive archive = HostileArchive::Make();
  // Flip one payload byte (30-byte local header + 5-byte name).
  archive.bytes[35] ^= 0xFF;
  const auto reader = ZipReader::Parse(archive.bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("CRC mismatch"), std::string::npos);
  EXPECT_NE(reader.error().find("a.txt"), std::string::npos);
}

TEST(Manifest, RoundTrips) {
  Manifest m;
  m.package_name = "com.example.app";
  m.version_code = 42;
  m.min_sdk = 21;
  m.target_sdk = 27;
  m.permissions = {"android.permission.SEND_SMS", "android.permission.INTERNET"};
  m.activities = {"com.example.app.ui.Activity0", "com.example.app.ui.Activity1"};
  m.intent_filters = {"android.provider.Telephony.SMS_RECEIVED"};
  const auto bytes = EncodeManifest(m);
  auto parsed = ParseManifest(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(*parsed, m);
}

TEST(Manifest, EmptyListsRoundTrip) {
  Manifest m;
  m.package_name = "a";
  auto parsed = ParseManifest(EncodeManifest(m));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->permissions.empty());
  EXPECT_TRUE(parsed->activities.empty());
}

TEST(Manifest, RejectsBadMagicAndTruncation) {
  EXPECT_FALSE(ParseManifest(Bytes("not a manifest")).ok());
  Manifest m;
  m.package_name = "com.x";
  m.permissions = {"p1", "p2"};
  auto bytes = EncodeManifest(m);
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(ParseManifest(bytes).ok());
}

DexFile MakeDex() {
  DexFile dex;
  dex.behavior_seed = 0xfeed;
  dex.crash_prob_q8 = 12;
  dex.runtime_flags = DexFile::kFlagDetectsEmulator | DexFile::kFlagNativeCode;
  const uint32_t s_api = dex.InternString("android.telephony.SmsManager.sendTextMessage");
  const uint32_t s_cls = dex.InternString("com.x.ui.Activity0");
  const uint32_t s_intent = dex.InternString("android.intent.action.SENDTO");
  dex.method_name_idx.push_back(s_api);
  dex.activity_class_idx.push_back(s_cls);
  DexBehavior b;
  b.method_idx = 0;
  b.invocations_per_kevent = 6.5f;
  b.activity = 0;
  b.flags = DexBehavior::kFlagGuarded;
  b.intent_string_idx = s_intent;
  dex.behaviors.push_back(b);
  DexBehavior b2;
  b2.method_idx = 0;
  b2.invocations_per_kevent = 1.0f;
  dex.behaviors.push_back(b2);
  return dex;
}

TEST(Dex, RoundTrips) {
  const DexFile dex = MakeDex();
  auto parsed = ParseDex(EncodeDex(dex));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed->strings, dex.strings);
  EXPECT_EQ(parsed->method_name_idx, dex.method_name_idx);
  EXPECT_EQ(parsed->activity_class_idx, dex.activity_class_idx);
  ASSERT_EQ(parsed->behaviors.size(), 2u);
  EXPECT_EQ(parsed->behaviors[0].intent_string_idx, dex.behaviors[0].intent_string_idx);
  EXPECT_TRUE(parsed->behaviors[0].guarded());
  EXPECT_FALSE(parsed->behaviors[0].sensor_gated());
  EXPECT_EQ(parsed->behaviors[1].intent_string_idx, DexFile::kNoIntent);
  EXPECT_FLOAT_EQ(parsed->behaviors[0].invocations_per_kevent, 6.5f);
  EXPECT_TRUE(parsed->detects_emulator());
  EXPECT_TRUE(parsed->has_native_code());
  EXPECT_FALSE(parsed->needs_real_sensors());
  EXPECT_NEAR(parsed->crash_probability(), 12.0 / 255.0, 1e-9);
  EXPECT_EQ(parsed->MethodName(0), "android.telephony.SmsManager.sendTextMessage");
}

TEST(Dex, InternStringDeduplicates) {
  DexFile dex;
  const uint32_t a = dex.InternString("x");
  const uint32_t b = dex.InternString("y");
  const uint32_t c = dex.InternString("x");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(dex.strings.size(), 2u);
}

TEST(Dex, RejectsOutOfRangeIndices) {
  DexFile dex = MakeDex();
  dex.method_name_idx.push_back(99);  // Points past the string pool.
  EXPECT_FALSE(ParseDex(EncodeDex(dex)).ok());

  DexFile dex2 = MakeDex();
  dex2.behaviors[0].method_idx = 5;  // Points past the method table.
  EXPECT_FALSE(ParseDex(EncodeDex(dex2)).ok());

  DexFile dex3 = MakeDex();
  dex3.behaviors[0].intent_string_idx = 1000;  // Unknown intent string.
  EXPECT_FALSE(ParseDex(EncodeDex(dex3)).ok());
}

TEST(Dex, RejectsBadMagic) {
  EXPECT_FALSE(ParseDex(Bytes("DEXBAD")).ok());
}

TEST(Apk, RoundTripsWithNativeLib) {
  Manifest m;
  m.package_name = "com.x";
  m.version_code = 3;
  m.permissions = {"android.permission.INTERNET"};
  const DexFile dex = MakeDex();

  const auto bytes = BuildApk(m, dex, /*include_native_lib=*/true);
  auto apk = ParseApk(bytes);
  ASSERT_TRUE(apk.ok()) << apk.error();
  EXPECT_EQ(apk->manifest, m);
  EXPECT_EQ(apk->dex.strings, dex.strings);
  EXPECT_TRUE(apk->has_native_lib);
  EXPECT_EQ(apk->digest.size(), 32u);
}

TEST(Apk, OmitsNativeLibWhenNotRequested) {
  Manifest m;
  m.package_name = "com.x";
  auto apk = ParseApk(BuildApk(m, MakeDex(), false));
  ASSERT_TRUE(apk.ok());
  EXPECT_FALSE(apk->has_native_lib);
}

TEST(Apk, DigestChangesWithContent) {
  Manifest m;
  m.package_name = "com.x";
  m.version_code = 1;
  const DexFile dex = MakeDex();
  auto apk1 = ParseApk(BuildApk(m, dex, false));
  m.version_code = 2;  // Same code, bumped version: different APK identity.
  auto apk2 = ParseApk(BuildApk(m, dex, false));
  ASSERT_TRUE(apk1.ok());
  ASSERT_TRUE(apk2.ok());
  EXPECT_NE(apk1->digest, apk2->digest);
}

TEST(Apk, DetectsTamperedDex) {
  Manifest m;
  m.package_name = "com.x";
  auto bytes = BuildApk(m, MakeDex(), false);
  // Re-assemble the archive with a modified dex but the old signature entry.
  auto reader = ZipReader::Parse(bytes);
  ASSERT_TRUE(reader.ok());
  DexFile tampered = MakeDex();
  tampered.crash_prob_q8 = 200;
  ZipWriter writer;
  for (const ZipEntry& entry : reader->entries()) {
    if (entry.name == kDexEntry) {
      writer.AddEntry(entry.name, EncodeDex(tampered));
    } else {
      writer.AddEntry(entry.name, entry.data);
    }
  }
  const auto result = ParseApk(writer.Finish());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("digest"), std::string::npos);
}

TEST(Apk, PadApkGrowsToTargetAndStillParses) {
  Manifest m;
  m.package_name = "com.x";
  const auto original = BuildApk(m, MakeDex(), /*include_native_lib=*/false);
  ASSERT_LT(original.size(), 64u * 1024);

  auto padded = PadApk(original, 64 * 1024, /*seed=*/9);
  ASSERT_TRUE(padded.ok()) << padded.error();
  EXPECT_GE(padded->size(), 63u * 1024);  // Within the entry-overhead slack.
  EXPECT_LE(padded->size(), 65u * 1024);

  // The signature digest covers only manifest+dex, so padding never breaks
  // parsing — and the parsed identity digest is unchanged.
  auto before = ParseApk(original);
  auto after = ParseApk(*padded);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok()) << after.error();
  EXPECT_EQ(before->digest, after->digest);
  EXPECT_EQ(after->manifest, m);

  // Deterministic: same seed, same bytes; the filler entry is present.
  auto again = PadApk(original, 64 * 1024, /*seed=*/9);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*padded, *again);
  auto zip = ZipReader::Parse(*padded);
  ASSERT_TRUE(zip.ok());
  EXPECT_NE(zip->Find("assets/padding.bin"), nullptr);
}

TEST(Apk, PadApkIsANoOpAtOrAboveTarget) {
  Manifest m;
  m.package_name = "com.x";
  const auto original = BuildApk(m, MakeDex(), false);
  auto padded = PadApk(original, original.size() / 2, 1);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(*padded, original);  // Already large enough: bytes unchanged.
  EXPECT_FALSE(PadApk(Bytes("not a zip"), 4096, 1).ok());
}

TEST(Apk, MissingEntriesRejected) {
  ZipWriter writer;
  writer.AddEntry("random.txt", Bytes("x"));
  EXPECT_FALSE(ParseApk(writer.Finish()).ok());
}

// Property test: random single-byte corruptions of a valid APK must never
// crash the parser — every mutation either still parses (rare; e.g. a flip
// in the unused date fields) or returns a structured error.
class ApkMutationRobustness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApkMutationRobustness, ParserNeverCrashes) {
  Manifest m;
  m.package_name = "com.fuzz.target";
  m.permissions = {"android.permission.INTERNET", "android.permission.SEND_SMS"};
  m.activities = {"com.fuzz.target.ui.Activity0"};
  const auto pristine = BuildApk(m, MakeDex(), true);

  util::Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = pristine;
    const size_t flips = 1 + rng.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.NextBounded(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBounded(8));
    }
    const auto result = ParseApk(mutated);  // Must not crash or hang.
    if (result.ok()) {
      EXPECT_FALSE(result->manifest.package_name.empty());
    } else {
      EXPECT_FALSE(result.error().empty());
    }
  }
  // Truncations at every prefix length are equally survivable.
  for (size_t len = 0; len < pristine.size(); len += 97) {
    const std::vector<uint8_t> prefix(pristine.begin(),
                                      pristine.begin() + static_cast<ptrdiff_t>(len));
    (void)ParseApk(prefix);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApkMutationRobustness, ::testing::Values(1, 2, 3, 4, 5));

TEST(Apk, ContentDigestIsStableAndSensitive) {
  const auto a = ContentDigest(Bytes("abc"));
  const auto b = ContentDigest(Bytes("abc"));
  const auto c = ContentDigest(Bytes("abd"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 32u);
}

}  // namespace
}  // namespace apichecker::apk
