// Tests for src/gateway: the network ingest gateway and its hostile-client
// harness. Every failure mode is scripted through gateway::NetFaultPlan on
// the client side — slow-loris stalls, mid-stream disconnects, torn and
// corrupted frames, trickle throughput — and every test closes with the
// extended drain invariant: uploads_accepted == completed + aborted. The soak
// suite doubles as the TSan stress target (ctest -L stress).

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_store.h"
#include "core/study.h"
#include "fabric/messages.h"
#include "fabric/transport.h"
#include "fabric/wire.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "gateway/net_fault.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "serve/service.h"
#include "serve/types.h"
#include "synth/corpus.h"
#include "util/sha1.h"

namespace apichecker::gateway {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;

const android::ApiUniverse& TestUniverse() {
  static const android::ApiUniverse universe = [] {
    android::UniverseConfig config;
    config.num_apis = 6'000;
    return android::ApiUniverse::Generate(config);
  }();
  return universe;
}

core::ApiChecker TrainedChecker() {
  static const std::vector<uint8_t> blob = [] {
    synth::CorpusConfig corpus_config;
    synth::CorpusGenerator generator(TestUniverse(), corpus_config);
    core::StudyConfig study_config;
    study_config.num_apps = 1'000;
    const core::StudyDataset study =
        core::RunStudy(TestUniverse(), generator, study_config);
    core::ApiChecker checker(TestUniverse(), {});
    checker.TrainFromStudy(study);
    return core::SerializeChecker(checker);
  }();
  auto checker = core::DeserializeChecker(TestUniverse(), blob);
  EXPECT_TRUE(checker.ok());
  return std::move(*checker);
}

std::vector<uint8_t> MakeApkBytes(uint64_t seed) {
  synth::CorpusConfig config;
  config.seed = seed;
  config.update_fraction = 0.0;  // Fresh packages only: distinct bytes.
  synth::CorpusGenerator generator(TestUniverse(), config);
  return synth::BuildApkBytes(generator.Next(), TestUniverse());
}

// Fresh unix-socket path per call, under the system temp dir (socket paths
// have a ~100-char limit, so no deep scratch trees).
std::string ScratchSocket() {
  static std::atomic<uint64_t> counter{0};
  return (fs::temp_directory_path() /
          ("apichecker_gw_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock"))
      .string();
}

serve::ServiceConfig SmallServiceConfig() {
  serve::ServiceConfig config;
  config.num_shards = 2;
  config.shard_capacity = 64;
  config.farm.num_emulators = 4;
  config.farm.worker_threads = 2;
  config.scheduler.batch_size = 4;
  config.scheduler.max_linger = milliseconds(5);
  return config;
}

uint64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Default().counter(name.c_str()).value();
}

// Service + gateway pair with the required teardown order baked in: the
// gateway drains BEFORE the service shuts down, because connection threads
// may be parked in future.get() and only the live scheduler resolves them.
class Harness {
 public:
  explicit Harness(GatewayConfig gw_config = {},
                   serve::ServiceConfig service_config = SmallServiceConfig())
      : service_(TestUniverse(), service_config, TrainedChecker()) {
    if (gw_config.endpoint.empty()) {
      gw_config.endpoint = "unix:" + ScratchSocket();
    }
    gateway_ = std::make_unique<IngestGateway>(service_, gw_config);
    auto bound = gateway_->Start();
    EXPECT_TRUE(bound.ok()) << (bound.ok() ? "" : bound.error());
  }

  ~Harness() {
    gateway_->Stop();
    service_.Shutdown();
  }

  std::string endpoint() const { return gateway_->bound_endpoint().ToString(); }
  IngestGateway& gateway() { return *gateway_; }
  serve::VettingService& service() { return service_; }

 private:
  serve::VettingService service_;
  std::unique_ptr<IngestGateway> gateway_;
};

UploadClientConfig FastClient(const std::string& endpoint) {
  UploadClientConfig config;
  config.endpoint = endpoint;
  config.chunk_bytes = 4 * 1024;
  config.connect_timeout = milliseconds(1'000);
  config.io_timeout = milliseconds(10'000);
  config.max_attempts = 2;
  config.backoff_base = milliseconds(10);
  config.backoff_cap = milliseconds(50);
  return config;
}

TEST(IngestGateway, HappyPathUploadThenDigestFastpathOnResubmit) {
  Harness harness;
  const std::vector<uint8_t> apk = MakeApkBytes(101);

  UploadClient client(FastClient(harness.endpoint()));
  auto first = client.Upload(apk);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first->verdict.status,
            static_cast<uint8_t>(serve::VetStatus::kOk));
  EXPECT_EQ(first->attempts, 1u);
  EXPECT_EQ(first->bytes_sent, apk.size());
  EXPECT_FALSE(first->early_verdict);

  // Same bytes again: the declared digest hits the verdict cache and the
  // gateway answers at open time — zero body bytes cross the wire.
  auto second = client.Upload(apk);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(second->verdict.status,
            static_cast<uint8_t>(serve::VetStatus::kOk));
  EXPECT_TRUE(second->early_verdict);
  EXPECT_TRUE(second->verdict.from_cache);
  EXPECT_EQ(second->bytes_sent, 0u);
  EXPECT_EQ(second->verdict.malicious, first->verdict.malicious);

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.aborted, 0u);
  EXPECT_EQ(stats.early_verdicts, 1u);
  EXPECT_TRUE(stats.Balanced());
}

TEST(IngestGateway, ZeroLengthUploadResolvesWithTerminalVerdict) {
  Harness harness;
  UploadClient client(FastClient(harness.endpoint()));
  auto outcome = client.Upload({});
  ASSERT_TRUE(outcome.ok()) << outcome.error();
  // An empty body is not a transport failure — it parses (and fails) like
  // any other hostile APK, producing a real verdict.
  EXPECT_NE(outcome->verdict.status,
            static_cast<uint8_t>(serve::VetStatus::kAbortedUpload));
  const GatewayStats stats = harness.gateway().stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_TRUE(stats.Balanced());
}

TEST(IngestGateway, ScriptedStallIsEvictedAsSlowLorisAndRetrySucceeds) {
  GatewayConfig gw;
  gw.read_deadline = milliseconds(150);
  gw.drain_grace = milliseconds(300);
  Harness harness(gw);

  const uint64_t loris_before =
      CounterValue(obs::names::kGatewaySlowLorisDisconnectsTotal);

  UploadClientConfig config = FastClient(harness.endpoint());
  config.chunk_bytes = 2 * 1024;
  config.fault_plan.stall_before = {2};  // Go silent before the 2nd chunk...
  config.fault_plan.stall_ms = milliseconds(700);  // ...past the deadline.
  UploadClient client(config);

  auto outcome = client.Upload(MakeApkBytes(202));
  ASSERT_TRUE(outcome.ok()) << outcome.error();
  EXPECT_EQ(outcome->verdict.status,
            static_cast<uint8_t>(serve::VetStatus::kOk));
  EXPECT_EQ(outcome->attempts, 2u);  // Attempt 1 died to the stall.
  EXPECT_EQ(outcome->injected_faults, 1u);

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_GE(stats.slow_loris_disconnects, 1u);
  EXPECT_GE(stats.aborted, 1u);
  EXPECT_TRUE(stats.Balanced());
  EXPECT_GE(CounterValue(obs::names::kGatewaySlowLorisDisconnectsTotal),
            loris_before + 1);
}

TEST(IngestGateway, ThroughputFloorEvictsTricklingClient) {
  GatewayConfig gw;
  gw.read_deadline = milliseconds(2'000);  // Deadline alone never fires.
  gw.min_bytes_per_sec = 50'000.0;
  gw.throughput_window = milliseconds(100);
  gw.drain_grace = milliseconds(300);
  Harness harness(gw);

  UploadClientConfig config = FastClient(harness.endpoint());
  config.chunk_bytes = 512;
  config.max_attempts = 1;
  config.fault_plan.throttle_from = 1;
  config.fault_plan.throttle_bytes_per_sec = 4'000.0;  // ~128 ms per chunk.
  UploadClient client(config);

  std::vector<uint8_t> apk = MakeApkBytes(303);
  apk.resize(4 * 1024);  // Bound the worst-case trickle duration.
  auto outcome = client.Upload(apk);
  // The trickler is evicted mid-body; its single attempt ends with the
  // visible abort verdict (or a failed send, if it noticed the hangup).
  if (outcome.ok()) {
    EXPECT_EQ(outcome->verdict.status,
              static_cast<uint8_t>(serve::VetStatus::kAbortedUpload));
  }

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_GE(stats.slow_loris_disconnects, 1u);
  EXPECT_TRUE(stats.Balanced());
}

TEST(IngestGateway, MidStreamDisconnectAbortsVisiblyAndRetrySucceeds) {
  GatewayConfig gw;
  gw.read_deadline = milliseconds(500);
  gw.drain_grace = milliseconds(300);
  Harness harness(gw);

  const std::string disconnect_series = obs::LabeledSeriesName(
      obs::names::kGatewayUploadsAbortedTotal, "reason", "disconnect");
  const uint64_t disconnects_before = CounterValue(disconnect_series);

  UploadClientConfig config = FastClient(harness.endpoint());
  config.chunk_bytes = 2 * 1024;
  config.fault_plan.disconnect_after = {2};
  UploadClient client(config);

  auto outcome = client.Upload(MakeApkBytes(404));
  ASSERT_TRUE(outcome.ok()) << outcome.error();
  EXPECT_EQ(outcome->verdict.status,
            static_cast<uint8_t>(serve::VetStatus::kOk));
  EXPECT_EQ(outcome->attempts, 2u);

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_GE(stats.aborted, 1u);
  EXPECT_TRUE(stats.Balanced());
  EXPECT_GE(CounterValue(disconnect_series), disconnects_before + 1);
  // No acknowledged verdict was lost: the service ledger still balances.
  const serve::ServiceStats sstats = harness.service().stats();
  EXPECT_EQ(sstats.accepted, sstats.resolved());
}

TEST(IngestGateway, RetryResumesByDigestWithoutRetransfer) {
  Harness harness;
  const std::vector<uint8_t> apk = MakeApkBytes(505);

  // Impatient client: attempt 1 uploads the whole body, then hangs up
  // instead of waiting for the verdict. The gateway classifies the intact
  // body anyway — so attempt 2's digest hint resolves from the cache, and
  // the body is never re-transferred (bytes_sent covers one pass only).
  UploadClientConfig config = FastClient(harness.endpoint());
  config.fault_plan.abandon_verdict_waits = 1;
  // Give the service time to classify attempt 1's body before attempt 2
  // opens; the backoff is the only thing between them.
  config.backoff_base = milliseconds(500);
  config.backoff_cap = milliseconds(500);
  UploadClient client(config);
  auto outcome = client.Upload(apk);
  ASSERT_TRUE(outcome.ok()) << outcome.error();
  EXPECT_EQ(outcome->attempts, 2u);
  EXPECT_TRUE(outcome->early_verdict);
  EXPECT_TRUE(outcome->resumed_by_digest);
  EXPECT_TRUE(outcome->verdict.from_cache);
  EXPECT_EQ(outcome->bytes_sent, apk.size());
  EXPECT_EQ(outcome->verdict.status,
            static_cast<uint8_t>(serve::VetStatus::kOk));

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_GE(stats.resumed_by_digest, 1u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);  // Both attempts completed: body + cache.
  EXPECT_TRUE(stats.Balanced());
}

TEST(IngestGateway, CorruptFrameDisconnectsThroughCodecAndRetrySucceeds) {
  GatewayConfig gw;
  gw.read_deadline = milliseconds(500);
  gw.drain_grace = milliseconds(300);
  Harness harness(gw);

  const uint64_t codec_errors_before =
      CounterValue(obs::names::kFabricProtocolErrorsTotal);
  const std::string protocol_series = obs::LabeledSeriesName(
      obs::names::kGatewayUploadsAbortedTotal, "reason", "protocol");
  const uint64_t protocol_before = CounterValue(protocol_series);

  UploadClientConfig config = FastClient(harness.endpoint());
  config.chunk_bytes = 2 * 1024;
  config.fault_plan.corrupt_at = {1};
  UploadClient client(config);

  auto outcome = client.Upload(MakeApkBytes(606));
  ASSERT_TRUE(outcome.ok()) << outcome.error();
  EXPECT_EQ(outcome->verdict.status,
            static_cast<uint8_t>(serve::VetStatus::kOk));
  EXPECT_EQ(outcome->attempts, 2u);

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_GE(stats.aborted, 1u);
  EXPECT_TRUE(stats.Balanced());
  // The stale CRC went through the FAB1 disconnect-and-count path.
  EXPECT_GE(CounterValue(obs::names::kFabricProtocolErrorsTotal),
            codec_errors_before + 1);
  EXPECT_GE(CounterValue(protocol_series), protocol_before + 1);
}

// Hand-rolled wire sessions: the UploadClient never violates the length
// contract, so these speak raw frames.
TEST(IngestGateway, LengthContractViolationsAbortVisibly) {
  GatewayConfig gw;
  gw.drain_grace = milliseconds(300);
  Harness harness(gw);
  auto endpoint = fabric::ParseEndpoint(harness.endpoint());
  ASSERT_TRUE(endpoint.ok());

  auto expect_abort = [&](uint64_t declared, std::vector<uint8_t> body,
                          uint64_t claimed_sent) {
    auto socket = fabric::Socket::Connect(*endpoint, milliseconds(1'000));
    ASSERT_TRUE(socket.ok()) << socket.error();
    socket->SetRecvTimeout(milliseconds(3'000));
    fabric::UploadOpen open;
    open.declared_length = declared;
    open.priority = 2;
    ASSERT_TRUE(socket
                    ->SendFrame(fabric::MsgType::kUploadOpen,
                                fabric::EncodeUploadOpen(open))
                    .ok());
    auto ack_frame = socket->RecvFrame();
    ASSERT_TRUE(ack_frame.ok()) << ack_frame.error();
    ASSERT_EQ(ack_frame->type, fabric::MsgType::kUploadAck);

    fabric::UploadChunk chunk;
    chunk.seq = 1;
    chunk.bytes = std::move(body);
    ASSERT_TRUE(socket
                    ->SendFrame(fabric::MsgType::kUploadChunk,
                                fabric::EncodeUploadChunk(chunk))
                    .ok());
    fabric::UploadEnd end;
    end.sent_length = claimed_sent;
    (void)socket->SendFrame(fabric::MsgType::kUploadEnd,
                            fabric::EncodeUploadEnd(end));

    auto verdict_frame = socket->RecvFrame();
    ASSERT_TRUE(verdict_frame.ok()) << verdict_frame.error();
    ASSERT_EQ(verdict_frame->type, fabric::MsgType::kUploadVerdict);
    auto verdict = fabric::DecodeUploadVerdict(verdict_frame->payload);
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(verdict->status,
              static_cast<uint8_t>(serve::VetStatus::kAbortedUpload));
  };

  // Undersend: declared 10 bytes, delivered 5 (and the End admits it).
  expect_abort(10, std::vector<uint8_t>(5, 0xAB), 10);
  // Lying End frame: delivered everything but claims a different total.
  expect_abort(6, std::vector<uint8_t>(6, 0xCD), 7);

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.aborted, 2u);
  EXPECT_TRUE(stats.Balanced());
}

TEST(IngestGateway, OversendBeyondDeclaredLengthAborts) {
  GatewayConfig gw;
  gw.drain_grace = milliseconds(300);
  Harness harness(gw);
  auto endpoint = fabric::ParseEndpoint(harness.endpoint());
  ASSERT_TRUE(endpoint.ok());

  auto socket = fabric::Socket::Connect(*endpoint, milliseconds(1'000));
  ASSERT_TRUE(socket.ok()) << socket.error();
  socket->SetRecvTimeout(milliseconds(3'000));
  fabric::UploadOpen open;
  open.declared_length = 4;  // ...then ship 64 bytes.
  open.priority = 2;
  ASSERT_TRUE(socket
                  ->SendFrame(fabric::MsgType::kUploadOpen,
                              fabric::EncodeUploadOpen(open))
                  .ok());
  auto ack_frame = socket->RecvFrame();
  ASSERT_TRUE(ack_frame.ok()) << ack_frame.error();

  fabric::UploadChunk chunk;
  chunk.seq = 1;
  chunk.bytes = std::vector<uint8_t>(64, 0xEE);
  ASSERT_TRUE(socket
                  ->SendFrame(fabric::MsgType::kUploadChunk,
                              fabric::EncodeUploadChunk(chunk))
                  .ok());
  auto verdict_frame = socket->RecvFrame();
  ASSERT_TRUE(verdict_frame.ok()) << verdict_frame.error();
  ASSERT_EQ(verdict_frame->type, fabric::MsgType::kUploadVerdict);
  auto verdict = fabric::DecodeUploadVerdict(verdict_frame->payload);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->status,
            static_cast<uint8_t>(serve::VetStatus::kAbortedUpload));

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.aborted, 1u);
  EXPECT_TRUE(stats.Balanced());
}

TEST(IngestGateway, HostileDeclaredLengthRefusedAtOpen) {
  GatewayConfig gw;
  gw.max_declared_bytes = 1'024;
  gw.drain_grace = milliseconds(300);
  Harness harness(gw);
  auto endpoint = fabric::ParseEndpoint(harness.endpoint());
  ASSERT_TRUE(endpoint.ok());

  auto socket = fabric::Socket::Connect(*endpoint, milliseconds(1'000));
  ASSERT_TRUE(socket.ok()) << socket.error();
  socket->SetRecvTimeout(milliseconds(3'000));
  fabric::UploadOpen open;
  open.declared_length = 1ull << 40;  // A terabyte, says the client.
  open.priority = 2;
  ASSERT_TRUE(socket
                  ->SendFrame(fabric::MsgType::kUploadOpen,
                              fabric::EncodeUploadOpen(open))
                  .ok());
  auto frame = socket->RecvFrame();
  ASSERT_TRUE(frame.ok()) << frame.error();
  ASSERT_EQ(frame->type, fabric::MsgType::kUploadVerdict);
  auto verdict = fabric::DecodeUploadVerdict(frame->payload);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->status,
            static_cast<uint8_t>(serve::VetStatus::kAbortedUpload));
  EXPECT_NE(verdict->error.find("declared_too_large"), std::string::npos);

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.aborted, 1u);
  EXPECT_TRUE(stats.Balanced());
}

TEST(IngestGateway, PreOpenGarbageDisconnectsWithoutAdmission) {
  GatewayConfig gw;
  gw.drain_grace = milliseconds(300);
  Harness harness(gw);
  auto endpoint = fabric::ParseEndpoint(harness.endpoint());
  ASSERT_TRUE(endpoint.ok());

  // A connection that leads with the wrong frame type never enters the
  // accepted/completed/aborted ledger.
  auto socket = fabric::Socket::Connect(*endpoint, milliseconds(1'000));
  ASSERT_TRUE(socket.ok()) << socket.error();
  socket->SetRecvTimeout(milliseconds(3'000));
  fabric::UploadEnd end;
  end.sent_length = 0;
  ASSERT_TRUE(socket
                  ->SendFrame(fabric::MsgType::kUploadEnd,
                              fabric::EncodeUploadEnd(end))
                  .ok());
  auto reply = socket->RecvFrame();
  ASSERT_TRUE(reply.ok()) << reply.error();
  EXPECT_EQ(reply->type, fabric::MsgType::kError);

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.aborted, 0u);
  EXPECT_GE(stats.connections, 1u);
  EXPECT_TRUE(stats.Balanced());
}

TEST(IngestGateway, UploadBudgetShedsAtOpenBeforeAnyBodyByte) {
  GatewayConfig gw;
  gw.max_concurrent_uploads = 0;  // Every upload is over budget.
  gw.drain_grace = milliseconds(300);
  Harness harness(gw);

  UploadClient client(FastClient(harness.endpoint()));
  auto outcome = client.Upload(MakeApkBytes(707));
  ASSERT_TRUE(outcome.ok()) << outcome.error();
  EXPECT_EQ(outcome->verdict.status,
            static_cast<uint8_t>(serve::VetStatus::kShedOverload));
  EXPECT_TRUE(outcome->early_verdict);
  EXPECT_EQ(outcome->bytes_sent, 0u);  // Shed before the body, not after.

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.early_verdicts, 1u);
  EXPECT_TRUE(stats.Balanced());
}

TEST(IngestGateway, StopSeversStragglersAsVisibleAborts) {
  GatewayConfig gw;
  gw.read_deadline = milliseconds(5'000);  // The drain, not the deadline.
  gw.drain_grace = milliseconds(100);
  Harness harness(gw);

  UploadClientConfig config = FastClient(harness.endpoint());
  config.chunk_bytes = 2 * 1024;
  config.max_attempts = 1;
  config.fault_plan.stall_before = {2};
  config.fault_plan.stall_ms = milliseconds(1'500);
  UploadClient client(config);

  util::Result<UploadOutcome> outcome = util::Err("not run");
  std::thread uploader(
      [&] { outcome = client.Upload(MakeApkBytes(808)); });
  // Let the first chunk land, then stop the gateway while the client stalls:
  // the in-flight upload outlives drain_grace and must be severed visibly.
  std::this_thread::sleep_for(milliseconds(300));
  harness.gateway().Stop();
  uploader.join();

  const GatewayStats stats = harness.gateway().stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.aborted, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_TRUE(stats.Balanced());
  // The single-attempt client saw its upload die, one way or another.
  if (outcome.ok()) {
    EXPECT_EQ(outcome->verdict.status,
              static_cast<uint8_t>(serve::VetStatus::kAbortedUpload));
  }
}

// Soak: concurrent hostile clients — random stalls past the read deadline,
// scripted disconnects, mixed priorities — must leave the ledger balanced
// and lose no acknowledged verdict. Runs under TSan via ctest -L stress.
TEST(GatewaySoak, ConcurrentHostileClientsHoldTheDrainInvariant) {
  GatewayConfig gw;
  gw.read_deadline = milliseconds(200);
  gw.drain_grace = milliseconds(1'000);
  gw.max_concurrent_uploads = 8;
  Harness harness(gw);

  constexpr size_t kThreads = 6;
  constexpr size_t kUploadsPerThread = 4;
  std::atomic<size_t> resolved{0};
  std::atomic<size_t> failed{0};

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < kUploadsPerThread; ++i) {
        UploadClientConfig config = FastClient(harness.endpoint());
        config.chunk_bytes = 2 * 1024;
        config.max_attempts = 3;
        config.priority = static_cast<uint8_t>((t + i) % 3);
        config.jitter_seed = t * 100 + i;
        config.fault_plan.seed = t * 100 + i;
        config.fault_plan.stall_rate = 0.25;
        config.fault_plan.stall_ms = milliseconds(350);  // Past the deadline.
        if (i % 4 == 1) config.fault_plan.disconnect_after = {3};
        UploadClient client(config);
        auto outcome = client.Upload(MakeApkBytes(1'000 + t * 50 + i));
        if (outcome.ok()) {
          resolved.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  harness.gateway().Stop();

  EXPECT_EQ(resolved.load() + failed.load(), kThreads * kUploadsPerThread);
  const GatewayStats stats = harness.gateway().stats();
  EXPECT_GE(stats.accepted, kThreads * kUploadsPerThread);
  EXPECT_TRUE(stats.Balanced())
      << "accepted " << stats.accepted << " completed " << stats.completed
      << " aborted " << stats.aborted;
  const serve::ServiceStats sstats = harness.service().stats();
  EXPECT_EQ(sstats.accepted, sstats.resolved());
}

}  // namespace
}  // namespace apichecker::gateway
