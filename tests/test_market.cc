// Unit tests for src/market: code fingerprinting, the review pipeline, and a
// scaled-down deployment simulation.

#include <gtest/gtest.h>

#include "market/review_pipeline.h"
#include "market/simulation.h"
#include "synth/corpus.h"

namespace apichecker::market {
namespace {

android::ApiUniverse MakeUniverse() {
  android::UniverseConfig config;
  config.num_apis = 6'000;
  return android::ApiUniverse::Generate(config);
}

TEST(CodeFingerprint, IgnoresVersionButNotCode) {
  const android::ApiUniverse universe = MakeUniverse();
  synth::CorpusConfig corpus_config;
  synth::CorpusGenerator gen(universe, corpus_config);
  const synth::AppProfile profile = gen.Next();

  apk::Manifest m1 = synth::BuildManifest(profile, universe);
  const apk::DexFile dex = synth::BuildDex(profile, universe);
  m1.version_code = 1;
  apk::Manifest m2 = m1;
  m2.version_code = 2;

  auto apk1 = apk::ParseApk(apk::BuildApk(m1, dex, false));
  auto apk2 = apk::ParseApk(apk::BuildApk(m2, dex, false));
  ASSERT_TRUE(apk1.ok());
  ASSERT_TRUE(apk2.ok());
  // Different APK identities (digest) but identical code fingerprints:
  // exactly what fingerprint antivirus relies on for repackaged clones.
  EXPECT_NE(apk1->digest, apk2->digest);
  EXPECT_EQ(CodeFingerprint(apk1->dex), CodeFingerprint(apk2->dex));

  apk::DexFile altered = dex;
  if (!altered.behaviors.empty()) {
    altered.behaviors[0].invocations_per_kevent += 100.0f;
  } else {
    altered.behavior_seed ^= 1;
    altered.strings.push_back("x");
  }
  EXPECT_NE(CodeFingerprint(dex), CodeFingerprint(altered));
}

TEST(FingerprintDatabase, Membership) {
  FingerprintDatabase db;
  EXPECT_FALSE(db.IsKnownMalware(42));
  db.AddMalware(42);
  EXPECT_TRUE(db.IsKnownMalware(42));
  db.AddMalware(42);
  EXPECT_EQ(db.size(), 1u);
}

TEST(ReviewOutcome, NamesAreStable) {
  EXPECT_STREQ(ReviewOutcomeName(ReviewOutcome::kPublished), "published");
  EXPECT_STREQ(ReviewOutcomeName(ReviewOutcome::kRejectedFingerprint),
               "rejected-fingerprint");
  EXPECT_STREQ(ReviewOutcomeName(ReviewOutcome::kRejectedByChecker), "rejected-apichecker");
  EXPECT_STREQ(ReviewOutcomeName(ReviewOutcome::kFalsePositiveReleased),
               "false-positive-released");
}

TEST(MarketSimulation, TwoMonthsProduceSaneStats) {
  android::ApiUniverse universe = MakeUniverse();
  MarketConfig config;
  config.months = 2;
  config.days_per_month = 6;
  config.apps_per_day = 60;
  config.initial_study_apps = 2'000;
  config.checker.forest.num_trees = 24;
  config.sdk_update_every_months = 2;
  config.new_apis_per_sdk_update = 100;

  MarketSimulation sim(universe, config);
  const std::vector<MonthlyStats> months = sim.Run();
  ASSERT_EQ(months.size(), 2u);

  for (const MonthlyStats& m : months) {
    EXPECT_EQ(m.submitted, m.caught_by_fingerprint + m.checker_cm.total());
    EXPECT_GT(m.checker_cm.Precision(), 0.75) << m.checker_cm.ToString();
    EXPECT_GT(m.checker_cm.Recall(), 0.6) << m.checker_cm.ToString();
    EXPECT_GT(m.key_api_count, 100u);
    EXPECT_GT(m.avg_scan_minutes, 0.2);
    EXPECT_LT(m.avg_scan_minutes, 10.0);
    EXPECT_GE(m.flagged_by_checker, m.fp_complaints);
  }
  // Most flagged apps are updates (§5.2's ~90% observation, loosely).
  uint64_t flagged = 0, flagged_updates = 0;
  for (const MonthlyStats& m : months) {
    flagged += m.flagged_by_checker;
    flagged_updates += m.flagged_updates;
  }
  if (flagged > 20) {
    EXPECT_GT(static_cast<double>(flagged_updates) / static_cast<double>(flagged), 0.5);
  }
  // The SDK update fired at month 2.
  EXPECT_EQ(months.back().sdk_level, 27);          // Stats snapshot before evolution...
  EXPECT_EQ(universe.sdk_level(), 28);             // ...but the universe evolved after.
  EXPECT_GT(sim.fingerprints().size(), 0u);
}

TEST(MarketSimulation, FingerprintStageCatchesResubmissions) {
  android::ApiUniverse universe = MakeUniverse();
  MarketConfig config;
  config.months = 1;
  config.days_per_month = 10;
  config.apps_per_day = 80;
  config.initial_study_apps = 1'500;
  config.checker.forest.num_trees = 16;
  config.sdk_update_every_months = 0;  // No SDK churn in this test.

  MarketSimulation sim(universe, config);
  const auto months = sim.Run();
  ASSERT_EQ(months.size(), 1u);
  // With 85% updates and clone lineages, known-malware fingerprints start
  // catching resubmitted malicious packages within the month.
  EXPECT_GT(months[0].caught_by_fingerprint, 0u);
}

}  // namespace
}  // namespace apichecker::market
