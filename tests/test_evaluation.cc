// Unit tests for ml/evaluation (PR curves, ROC-AUC, threshold selection),
// core/model_store (whole-checker persistence), and market/model_registry
// (promotion guard).

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/model_store.h"
#include "core/study.h"
#include "market/model_registry.h"
#include "ml/evaluation.h"
#include "ml/random_forest.h"
#include "synth/corpus.h"

namespace apichecker {
namespace {

using ml::OperatingPoint;
using ml::ScoredExample;

TEST(PrecisionRecallCurve, HandRolledExample) {
  // Scores: 0.9+ , 0.8- , 0.7+ , 0.6+ , 0.5-
  const std::vector<ScoredExample> scored = {
      {0.9, 1}, {0.8, 0}, {0.7, 1}, {0.6, 1}, {0.5, 0},
  };
  const auto curve = ml::PrecisionRecallCurve(scored);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(curve[1].precision, 0.5);
  EXPECT_DOUBLE_EQ(curve[3].precision, 0.75);
  EXPECT_DOUBLE_EQ(curve[3].recall, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
  // Recall is non-decreasing along the curve.
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(PrecisionRecallCurve, TieGroupsConsumedTogether) {
  const std::vector<ScoredExample> scored = {{0.5, 1}, {0.5, 0}, {0.5, 1}};
  const auto curve = ml::PrecisionRecallCurve(scored);
  ASSERT_EQ(curve.size(), 1u);  // One threshold: all-or-nothing.
  EXPECT_DOUBLE_EQ(curve[0].precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
}

TEST(RocAuc, PerfectAndChanceAndInverted) {
  const std::vector<ScoredExample> perfect = {{0.9, 1}, {0.8, 1}, {0.2, 0}, {0.1, 0}};
  EXPECT_DOUBLE_EQ(ml::RocAuc(perfect), 1.0);
  const std::vector<ScoredExample> inverted = {{0.9, 0}, {0.8, 0}, {0.2, 1}, {0.1, 1}};
  EXPECT_DOUBLE_EQ(ml::RocAuc(inverted), 0.0);
  const std::vector<ScoredExample> ties = {{0.5, 1}, {0.5, 0}};
  EXPECT_DOUBLE_EQ(ml::RocAuc(ties), 0.5);
  const std::vector<ScoredExample> degenerate = {{0.5, 1}, {0.6, 1}};
  EXPECT_DOUBLE_EQ(ml::RocAuc(degenerate), 0.5);  // No negatives: undefined -> 0.5.
}

TEST(ThresholdForPrecision, PicksHighestRecallMeetingTarget) {
  const std::vector<ScoredExample> scored = {
      {0.9, 1}, {0.8, 1}, {0.7, 0}, {0.6, 1}, {0.5, 1}, {0.4, 0}, {0.3, 0},
  };
  const auto curve = ml::PrecisionRecallCurve(scored);
  const OperatingPoint point = ml::ThresholdForPrecision(curve, 0.8);
  EXPECT_GE(point.precision, 0.8);
  // At threshold 0.5: 4 TP, 1 FP -> precision 0.8, recall 1.0 (best recall).
  EXPECT_DOUBLE_EQ(point.recall, 1.0);
  EXPECT_DOUBLE_EQ(point.threshold, 0.5);

  // Unreachable target falls back to the most precise point.
  const OperatingPoint fallback = ml::ThresholdForPrecision(curve, 1.01);
  EXPECT_DOUBLE_EQ(fallback.precision, 1.0);
}

TEST(BestF1Point, MaximizesF1) {
  const std::vector<ScoredExample> scored = {
      {0.9, 1}, {0.8, 0}, {0.7, 1}, {0.6, 1}, {0.5, 0}, {0.4, 0},
  };
  const auto curve = ml::PrecisionRecallCurve(scored);
  const OperatingPoint best = ml::BestF1Point(curve);
  for (const OperatingPoint& point : curve) {
    EXPECT_GE(best.F1() + 1e-12, point.F1());
  }
}

TEST(ScoreDataset, UsesModelScores) {
  ml::Dataset data;
  data.num_features = 2;
  for (int i = 0; i < 40; ++i) {
    data.Add(i % 2 ? ml::SparseRow{0} : ml::SparseRow{1}, i % 2);
  }
  ml::RandomForest forest;
  forest.Train(data);
  const auto scored = ml::ScoreDataset(forest, data);
  ASSERT_EQ(scored.size(), 40u);
  EXPECT_GT(ml::RocAuc(scored), 0.99);
}

// ---- Model store ----

struct StoreFixture {
  android::ApiUniverse universe;
  core::StudyDataset study;
  core::ApiChecker checker;

  StoreFixture()
      : universe(android::ApiUniverse::Generate(Config())),
        study(BuildStudy(universe)),
        checker(universe, CheckerConfig()) {
    checker.TrainFromStudy(study);
  }

  static android::UniverseConfig Config() {
    android::UniverseConfig config;
    config.num_apis = 6'000;
    return config;
  }
  static core::ApiCheckerConfig CheckerConfig() {
    core::ApiCheckerConfig config;
    config.forest.num_trees = 12;
    return config;
  }
  static core::StudyDataset BuildStudy(const android::ApiUniverse& universe) {
    synth::CorpusConfig corpus_config;
    synth::CorpusGenerator generator(universe, corpus_config);
    core::StudyConfig config;
    config.num_apps = 1'200;
    return core::RunStudy(universe, generator, config);
  }

  static StoreFixture& Get() {
    static StoreFixture fixture;
    return fixture;
  }
};

TEST(ModelStore, RoundTripsVerdicts) {
  StoreFixture& f = StoreFixture::Get();
  const auto blob = core::SerializeChecker(f.checker);
  ASSERT_FALSE(blob.empty());
  auto restored = core::DeserializeChecker(f.universe, blob);
  ASSERT_TRUE(restored.ok()) << restored.error();
  EXPECT_EQ(restored->selection().key_apis, f.checker.selection().key_apis);
  EXPECT_EQ(restored->schema().num_features(), f.checker.schema().num_features());

  // Identical verdicts on fresh submissions.
  synth::CorpusConfig corpus_config;
  corpus_config.seed = 99;
  synth::CorpusGenerator generator(f.universe, corpus_config);
  const emu::DynamicAnalysisEngine engine(f.universe, {});
  const emu::TrackedApiSet tracked = f.checker.MakeTrackedSet();
  for (int i = 0; i < 40; ++i) {
    auto apk = apk::ParseApk(synth::BuildApkBytes(generator.Next(), f.universe));
    ASSERT_TRUE(apk.ok());
    const auto report = engine.Run(*apk, tracked);
    EXPECT_DOUBLE_EQ(f.checker.Classify(report).score, restored->Classify(report).score);
  }
}

TEST(ModelStore, UntrainedCheckerDoesNotSerialize) {
  StoreFixture& f = StoreFixture::Get();
  core::ApiChecker untrained(f.universe, {});
  EXPECT_TRUE(core::SerializeChecker(untrained).empty());
}

TEST(ModelStore, RejectsGarbageAndTruncation) {
  StoreFixture& f = StoreFixture::Get();
  EXPECT_FALSE(core::DeserializeChecker(f.universe, std::vector<uint8_t>{1, 2, 3}).ok());
  auto blob = core::SerializeChecker(f.checker);
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(core::DeserializeChecker(f.universe, blob).ok());
}

TEST(ModelStore, RejectsOutOfRangeApiIds) {
  StoreFixture& f = StoreFixture::Get();
  auto blob = core::SerializeChecker(f.checker);
  // Corrupt the first id of the Set-C list (header is 18 bytes + u32 count):
  // forcing continuation bits yields an id far beyond the universe (or a
  // truncated varint) — either way deserialization must fail cleanly.
  ASSERT_GT(blob.size(), 30u);
  for (size_t i = 22; i < 27; ++i) {
    blob[i] = 0xFF;
  }
  EXPECT_FALSE(core::DeserializeChecker(f.universe, blob).ok());
}

TEST(ModelStore, FileRoundTrip) {
  StoreFixture& f = StoreFixture::Get();
  const std::string path =
      (std::filesystem::temp_directory_path() / "apichecker_model_test.bin").string();
  auto saved = core::SaveCheckerToFile(f.checker, path);
  ASSERT_TRUE(saved.ok()) << saved.error();
  auto loaded = core::LoadCheckerFromFile(f.universe, path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded->selection().key_apis.size(), f.checker.selection().key_apis.size());
  std::filesystem::remove(path);
  EXPECT_FALSE(core::LoadCheckerFromFile(f.universe, path).ok());
}

// ---- Model registry ----

TEST(ModelRegistry, FirstCandidateAlwaysPromoted) {
  market::ModelRegistry registry;
  market::ModelRecord record;
  record.month = 1;
  record.validation_f1 = 0.5;
  EXPECT_TRUE(registry.Consider(record));
  ASSERT_NE(registry.production(), nullptr);
  EXPECT_EQ(registry.production()->month, 1u);
}

TEST(ModelRegistry, GuardRejectsRegressions) {
  market::ModelRegistry registry;
  market::ModelRecord good;
  good.month = 1;
  good.validation_f1 = 0.95;
  registry.Consider(good);

  market::ModelRecord regressed;
  regressed.month = 2;
  regressed.validation_f1 = 0.80;
  EXPECT_FALSE(registry.Consider(regressed, 0.02));
  EXPECT_EQ(registry.production()->month, 1u);  // Incumbent stays live.
  EXPECT_EQ(registry.rejections(), 1u);
  EXPECT_EQ(registry.history().size(), 2u);
  EXPECT_FALSE(registry.history()[1].promoted);

  market::ModelRecord recovered;
  recovered.month = 3;
  recovered.validation_f1 = 0.94;  // Within tolerance of 0.95.
  EXPECT_TRUE(registry.Consider(recovered, 0.02));
  EXPECT_EQ(registry.production()->month, 3u);
}

TEST(ModelRegistry, ArchiveHonorsExternalDecision) {
  market::ModelRegistry registry;
  market::ModelRecord record;
  record.month = 1;
  record.validation_f1 = 0.9;
  registry.Archive(record, /*promoted=*/false);
  EXPECT_EQ(registry.production(), nullptr);
  EXPECT_EQ(registry.rejections(), 1u);
}

}  // namespace
}  // namespace apichecker
