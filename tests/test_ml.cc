// Unit tests for src/ml: dataset handling, metrics, all nine classifiers
// (parameterized), cross-validation, serialization, and Gini importance.

#include <gtest/gtest.h>

#include "ml/cart.h"
#include "ml/classifier.h"
#include "ml/cross_validation.h"
#include "ml/dataset.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace apichecker::ml {
namespace {

// Synthetic binary-feature task: the label depends on a combination of a few
// "signal" features among many noise features — the same structure as the
// malware problem.
Dataset MakeLearnableDataset(size_t n, uint32_t num_features, uint64_t seed,
                             double positive_rate = 0.3) {
  util::Rng rng(seed);
  Dataset data;
  data.num_features = num_features;
  for (size_t i = 0; i < n; ++i) {
    const bool positive = rng.Bernoulli(positive_rate);
    SparseRow row;
    // Signal features 0..4: strongly class-dependent.
    for (uint32_t f = 0; f < 5 && f < num_features; ++f) {
      if (rng.Bernoulli(positive ? 0.8 : 0.1)) {
        row.push_back(f);
      }
    }
    // Noise features.
    for (uint32_t f = 5; f < num_features; ++f) {
      if (rng.Bernoulli(0.05)) {
        row.push_back(f);
      }
    }
    data.Add(std::move(row), positive ? 1 : 0);
  }
  return data;
}

TEST(Dataset, RowHasFeatureBinarySearches) {
  const SparseRow row = {1, 5, 9};
  EXPECT_TRUE(RowHasFeature(row, 5));
  EXPECT_FALSE(RowHasFeature(row, 4));
  EXPECT_FALSE(RowHasFeature({}, 0));
}

TEST(Dataset, SelectColumnsRemaps) {
  Dataset data;
  data.num_features = 10;
  data.Add({1, 3, 7}, 1);
  data.Add({0, 7}, 0);
  const std::vector<uint32_t> cols = {7, 3};
  const Dataset projected = data.SelectColumns(cols);
  EXPECT_EQ(projected.num_features, 2u);
  EXPECT_EQ(projected.rows[0], (SparseRow{0, 1}));  // 7 -> 0, 3 -> 1, sorted.
  EXPECT_EQ(projected.rows[1], (SparseRow{0}));
  EXPECT_EQ(projected.labels, data.labels);
}

TEST(Dataset, SubsetPicksRows) {
  Dataset data;
  data.num_features = 4;
  data.Add({0}, 0);
  data.Add({1}, 1);
  data.Add({2}, 0);
  const std::vector<uint32_t> idx = {2, 0};
  const Dataset sub = data.Subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.rows[0], (SparseRow{2}));
  EXPECT_EQ(sub.labels[1], 0);
}

TEST(Dataset, DenseRowAndFeatureCounts) {
  Dataset data;
  data.num_features = 4;
  data.Add({0, 2}, 1);
  data.Add({2}, 0);
  const auto dense = data.DenseRow(0);
  EXPECT_EQ(dense, (std::vector<float>{1, 0, 1, 0}));
  EXPECT_EQ(data.FeatureCounts(), (std::vector<uint32_t>{1, 0, 2, 0}));
  EXPECT_EQ(data.NumPositive(), 1u);
}

TEST(Dataset, DeduplicateAgainstDropsSharedVectors) {
  Dataset train;
  train.num_features = 4;
  train.Add({0, 1}, 1);
  Dataset test;
  test.num_features = 4;
  test.Add({0, 1}, 1);  // Duplicate of a training row.
  test.Add({2}, 0);
  test.Add({2}, 0);  // Duplicate within the test set.
  const Dataset deduped = DeduplicateAgainst(test, train);
  EXPECT_EQ(deduped.size(), 1u);
  EXPECT_EQ(deduped.rows[0], (SparseRow{2}));
}

TEST(Metrics, ConfusionMath) {
  ConfusionMatrix cm;
  cm.tp = 90;
  cm.fp = 10;
  cm.fn = 30;
  cm.tn = 870;
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.9);
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.75);
  EXPECT_NEAR(cm.F1(), 2 * 0.9 * 0.75 / (0.9 + 0.75), 1e-12);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.96);
  EXPECT_NEAR(cm.FalsePositiveRate(), 10.0 / 880.0, 1e-12);
  ConfusionMatrix sum;
  sum += cm;
  sum += cm;
  EXPECT_EQ(sum.tp, 180u);
  EXPECT_FALSE(sum.ToString().empty());
}

TEST(Metrics, EmptyIsZeroNotNan) {
  const ConfusionMatrix cm;
  EXPECT_EQ(cm.Precision(), 0.0);
  EXPECT_EQ(cm.Recall(), 0.0);
  EXPECT_EQ(cm.F1(), 0.0);
}

// ---- All nine classifiers must learn the combination task. ----

class ClassifierLearns : public ::testing::TestWithParam<ClassifierKind> {};

TEST_P(ClassifierLearns, SeparatesSignalFromNoise) {
  const Dataset train = MakeLearnableDataset(1200, 40, 1);
  const Dataset test = MakeLearnableDataset(400, 40, 2);
  auto model = MakeClassifier(GetParam(), 7);
  ASSERT_NE(model, nullptr);
  model->Train(train);
  const ConfusionMatrix cm = model->Evaluate(test);
  EXPECT_GT(cm.F1(), 0.8) << ClassifierKindName(GetParam()) << ": " << cm.ToString();
}

TEST_P(ClassifierLearns, ScoresAreProbabilities) {
  const Dataset train = MakeLearnableDataset(400, 20, 3);
  auto model = MakeClassifier(GetParam(), 7);
  model->Train(train);
  for (size_t i = 0; i < 50; ++i) {
    const double score = model->PredictScore(train.rows[i]);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST_P(ClassifierLearns, DeterministicGivenSeed) {
  const Dataset train = MakeLearnableDataset(400, 20, 5);
  auto a = MakeClassifier(GetParam(), 77);
  auto b = MakeClassifier(GetParam(), 77);
  a->Train(train);
  b->Train(train);
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_DOUBLE_EQ(a->PredictScore(train.rows[i]), b->PredictScore(train.rows[i]))
        << ClassifierKindName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllNine, ClassifierLearns,
    ::testing::Values(ClassifierKind::kNaiveBayes, ClassifierKind::kLogisticRegression,
                      ClassifierKind::kSvm, ClassifierKind::kGbdt, ClassifierKind::kKnn,
                      ClassifierKind::kCart, ClassifierKind::kAnn, ClassifierKind::kDnn,
                      ClassifierKind::kRandomForest),
    [](const ::testing::TestParamInfo<ClassifierKind>& info) {
      std::string name = ClassifierKindName(info.param);
      std::erase(name, ' ');
      return name;
    });

TEST(ClassifierFactory, NamesMatchTable2) {
  EXPECT_EQ(ClassifierKindName(ClassifierKind::kRandomForest), "Random Forest");
  EXPECT_EQ(ClassifierKindName(ClassifierKind::kNaiveBayes), "Naive Bayes");
  EXPECT_EQ(MakeClassifier(ClassifierKind::kSvm, 1)->name(), "SVM");
  EXPECT_EQ(MakeClassifier(ClassifierKind::kDnn, 1)->name(), "DNN");
}

TEST(CartTree, PureLeafStopsEarly) {
  Dataset data;
  data.num_features = 4;
  for (int i = 0; i < 10; ++i) {
    data.Add({0}, 1);
    data.Add({1}, 0);
  }
  CartTree tree;
  tree.Train(data);
  EXPECT_LE(tree.depth(), 2u);
  EXPECT_GT(tree.PredictScore({0}), 0.9);
  EXPECT_LT(tree.PredictScore({1}), 0.1);
}

TEST(CartTree, EmptyDatasetYieldsLeaf) {
  Dataset data;
  data.num_features = 4;
  CartTree tree;
  tree.Train(data);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.PredictScore({1, 2}), 0.0);
}

TEST(CartTree, SerializationRoundTrips) {
  const Dataset data = MakeLearnableDataset(300, 20, 11);
  CartTree tree;
  tree.Train(data);
  util::ByteWriter w;
  tree.SerializeInto(w);
  const auto bytes = w.TakeBytes();
  util::ByteReader r(bytes);
  auto restored = CartTree::Deserialize(r);
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(tree.PredictScore(data.rows[i]), restored->PredictScore(data.rows[i]));
  }
}

TEST(CartTree, DeserializeRejectsGarbage) {
  const std::vector<uint8_t> junk = {9, 9, 9};
  util::ByteReader r(junk);
  EXPECT_FALSE(CartTree::Deserialize(r).ok());
}

TEST(RandomForest, ImportanceConcentratesOnSignal) {
  const Dataset data = MakeLearnableDataset(1500, 40, 13);
  RandomForestConfig config;
  config.num_trees = 24;
  RandomForest forest(config);
  forest.Train(data);
  const auto& imp = forest.feature_importance();
  ASSERT_EQ(imp.size(), 40u);
  double signal = 0.0, total = 0.0;
  for (size_t f = 0; f < imp.size(); ++f) {
    total += imp[f];
    if (f < 5) {
      signal += imp[f];
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(signal, 0.7);  // The 5 signal features dominate 35 noise features.
}

TEST(RandomForest, DeterministicGivenSeed) {
  const Dataset data = MakeLearnableDataset(500, 20, 17);
  RandomForestConfig config;
  config.num_trees = 8;
  config.seed = 99;
  RandomForest a(config), b(config);
  a.Train(data);
  b.Train(data);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictScore(data.rows[i]), b.PredictScore(data.rows[i]));
  }
}

TEST(RandomForest, SerializationRoundTrips) {
  const Dataset data = MakeLearnableDataset(500, 20, 19);
  RandomForestConfig config;
  config.num_trees = 12;
  RandomForest forest(config);
  forest.Train(data);
  const auto bytes = forest.Serialize();
  auto restored = RandomForest::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(forest.PredictScore(data.rows[i]), restored->PredictScore(data.rows[i]));
  }
  EXPECT_EQ(restored->feature_importance().size(), 20u);
}

TEST(RandomForest, DeserializeRejectsBadMagic) {
  std::vector<uint8_t> bytes = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  EXPECT_FALSE(RandomForest::Deserialize(bytes).ok());
}

TEST(CrossValidation, StratifiedFoldsBalanceClasses) {
  const Dataset data = MakeLearnableDataset(1000, 10, 23, 0.2);
  const auto folds = StratifiedFoldAssignment(data, 5, 3);
  std::array<int, 5> pos{}, total{};
  for (size_t i = 0; i < data.size(); ++i) {
    ++total[folds[i]];
    pos[folds[i]] += data.labels[i];
  }
  for (int f = 0; f < 5; ++f) {
    EXPECT_NEAR(static_cast<double>(total[f]), 200.0, 1.0);
    EXPECT_NEAR(static_cast<double>(pos[f]) / total[f], 0.2, 0.02);
  }
}

TEST(CrossValidation, RunsAllFoldsAndPools) {
  const Dataset data = MakeLearnableDataset(600, 20, 29);
  const auto result = CrossValidate(data, 4, 7, [] {
    return MakeClassifier(ClassifierKind::kCart, 5);
  });
  EXPECT_EQ(result.folds.size(), 4u);
  EXPECT_GT(result.Precision(), 0.7);
  EXPECT_GT(result.Recall(), 0.7);
  EXPECT_GT(result.total_train_seconds, 0.0);
  uint64_t pooled_total = 0;
  for (const auto& fold : result.folds) {
    pooled_total += fold.total();
  }
  EXPECT_EQ(result.pooled.total(), pooled_total);
}

TEST(SplitTrainTest, PartitionsAllRows) {
  const Dataset data = MakeLearnableDataset(500, 10, 31);
  const auto split = SplitTrainTest(data, 0.2, 3);
  EXPECT_EQ(split.train.size() + split.test.size(), 500u);
  EXPECT_NEAR(static_cast<double>(split.test.size()), 100.0, 2.0);
}

}  // namespace
}  // namespace apichecker::ml
