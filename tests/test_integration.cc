// End-to-end integration tests: the full APICHECKER pipeline from framework
// modelling through corpus synthesis, APK round trips, track-all study,
// key-API selection, training, and production vetting — plus whole-pipeline
// determinism and the headline accuracy/timing shape checks at small scale.

#include <memory>

#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/study.h"
#include "emu/engine.h"
#include "ml/cross_validation.h"
#include "stats/descriptive.h"
#include "synth/corpus.h"

namespace apichecker {
namespace {

// Holds the universe behind a stable pointer: ApiChecker (and engines) keep
// references to it, so it must never move after they are constructed.
struct Pipeline {
  std::unique_ptr<android::ApiUniverse> universe_storage;
  core::StudyDataset study;
  std::unique_ptr<core::ApiChecker> checker_storage;

  const android::ApiUniverse& universe() const { return *universe_storage; }
  const core::ApiChecker& checker() const { return *checker_storage; }

  static Pipeline Build(uint64_t seed, size_t num_apps) {
    Pipeline p;
    android::UniverseConfig universe_config;
    universe_config.num_apis = 8'000;
    universe_config.seed = seed;
    p.universe_storage = std::make_unique<android::ApiUniverse>(
        android::ApiUniverse::Generate(universe_config));

    synth::CorpusConfig corpus_config;
    corpus_config.seed = seed;
    synth::CorpusGenerator generator(*p.universe_storage, corpus_config);
    core::StudyConfig study_config;
    study_config.num_apps = num_apps;
    p.study = core::RunStudy(*p.universe_storage, generator, study_config);

    core::ApiCheckerConfig checker_config;
    checker_config.forest.num_trees = 32;
    p.checker_storage = std::make_unique<core::ApiChecker>(*p.universe_storage, checker_config);
    p.checker_storage->TrainFromStudy(p.study);
    return p;
  }
};

TEST(Integration, PipelineIsDeterministic) {
  const Pipeline a = Pipeline::Build(5, 600);
  const Pipeline b = Pipeline::Build(5, 600);
  EXPECT_EQ(a.checker().selection().key_apis, b.checker().selection().key_apis);
  ASSERT_EQ(a.study.size(), b.study.size());
  for (size_t i = 0; i < a.study.size(); ++i) {
    EXPECT_EQ(a.study.records[i].observed_apis, b.study.records[i].observed_apis);
    EXPECT_EQ(a.study.records[i].label, b.study.records[i].label);
  }
}

TEST(Integration, EndToEndAccuracyShape) {
  const Pipeline p = Pipeline::Build(11, 3'000);

  // 5-fold CV on the key-API A+P+I dataset: production-grade accuracy.
  const ml::Dataset data = core::BuildDataset(p.study, p.checker().schema(), p.universe());
  const auto result = ml::CrossValidate(data, 5, 3, [] {
    return ml::MakeClassifier(ml::ClassifierKind::kRandomForest, 9);
  });
  EXPECT_GT(result.Precision(), 0.90) << result.pooled.ToString();
  EXPECT_GT(result.Recall(), 0.85) << result.pooled.ToString();

  // Ablation shape (Fig 10): A+P+I recall >= A-only recall.
  const core::FeatureSchema a_only(p.checker().selection().key_apis, p.universe(),
                                   core::FeatureOptions::ApisOnly());
  const ml::Dataset a_data = core::BuildDataset(p.study, a_only, p.universe());
  const auto a_result = ml::CrossValidate(a_data, 5, 3, [] {
    return ml::MakeClassifier(ml::ClassifierKind::kRandomForest, 9);
  });
  EXPECT_GE(result.Recall(), a_result.Recall() - 0.005);
}

TEST(Integration, TimingShapeAcrossTrackedSets) {
  const Pipeline p = Pipeline::Build(13, 1'200);

  synth::CorpusConfig corpus_config;
  corpus_config.seed = 13;
  synth::CorpusGenerator generator(p.universe(), corpus_config);
  const emu::DynamicAnalysisEngine google(p.universe(), {});
  emu::EngineConfig light_config;
  light_config.kind = emu::EngineKind::kLightweight;
  const emu::DynamicAnalysisEngine light(p.universe(), light_config);

  const emu::TrackedApiSet none = emu::TrackedApiSet::None(p.universe().num_apis());
  const emu::TrackedApiSet all = emu::TrackedApiSet::All(p.universe().num_apis());
  const emu::TrackedApiSet key = p.checker().MakeTrackedSet();

  std::vector<double> t_none, t_key, t_all, t_light;
  for (int i = 0; i < 150; ++i) {
    auto apk = apk::ParseApk(synth::BuildApkBytes(generator.Next(), p.universe()));
    ASSERT_TRUE(apk.ok());
    t_none.push_back(google.Run(*apk, none).emulation_minutes);
    t_key.push_back(google.Run(*apk, key).emulation_minutes);
    t_all.push_back(google.Run(*apk, all).emulation_minutes);
    t_light.push_back(light.Run(*apk, key).emulation_minutes);
  }
  const double mean_none = stats::Mean(t_none);
  const double mean_key = stats::Mean(t_key);
  const double mean_all = stats::Mean(t_all);
  const double mean_light = stats::Mean(t_light);

  // The paper's ordering: none < key << all, and lightweight ~30% of Google.
  EXPECT_LT(mean_none, mean_key);
  EXPECT_LT(mean_key, mean_all / 3.0);
  EXPECT_GT(mean_all, 10.0 * mean_none);
  EXPECT_LT(mean_light, 0.5 * mean_key);
}

TEST(Integration, ProductionVettingAgreesWithStudyLabels) {
  const Pipeline p = Pipeline::Build(17, 2'500);

  synth::CorpusConfig corpus_config;
  corpus_config.seed = 999;  // Fresh submission stream.
  synth::CorpusGenerator generator(p.universe(), corpus_config);
  emu::EngineConfig light_config;
  light_config.kind = emu::EngineKind::kLightweight;
  const emu::DynamicAnalysisEngine engine(p.universe(), light_config);
  const emu::TrackedApiSet tracked = p.checker().MakeTrackedSet();

  ml::ConfusionMatrix cm;
  for (int i = 0; i < 500; ++i) {
    const synth::AppProfile profile = generator.Next();
    auto apk = apk::ParseApk(synth::BuildApkBytes(profile, p.universe()));
    ASSERT_TRUE(apk.ok());
    const auto verdict = p.checker().Classify(engine.Run(*apk, tracked));
    cm.Record(profile.malicious, verdict.malicious);
  }
  EXPECT_GT(cm.Precision(), 0.85) << cm.ToString();
  EXPECT_GT(cm.Recall(), 0.75) << cm.ToString();
}

TEST(Integration, HiddenFeaturesRescueReflectionEvaders) {
  // An app that hides all its characteristic API calls behind reflection
  // must still be classifiable through permissions/intents (§4.5): build the
  // same profile twice, once hidden, and compare scores.
  const Pipeline p = Pipeline::Build(19, 2'500);

  synth::CorpusConfig corpus_config;
  corpus_config.seed = 4242;
  corpus_config.malicious_fraction = 1.0;
  corpus_config.update_fraction = 0.0;
  synth::CorpusGenerator generator(p.universe(), corpus_config);
  const emu::DynamicAnalysisEngine engine(p.universe(), {});
  const emu::TrackedApiSet tracked = p.checker().MakeTrackedSet();

  int evaders = 0, rescued = 0;
  double sum_score_with_manifest = 0.0, sum_score_blinded = 0.0;
  for (int i = 0; i < 800 && evaders < 10; ++i) {
    synth::AppProfile profile = generator.Next();
    bool all_hidden = false;
    for (const auto& usage : profile.usage) {
      all_hidden |= usage.via_reflection;
    }
    // Manually force full evasion for a stronger test.
    size_t hidden_count = 0;
    for (auto& usage : profile.usage) {
      const auto& info = p.universe().api(usage.api);
      if (info.attacker_useful || android::IsRestrictive(info.protection) ||
          info.sensitive != android::SensitiveOp::kNone) {
        usage.via_reflection = true;
        ++hidden_count;
      }
    }
    (void)all_hidden;
    if (hidden_count < 10) {
      continue;
    }
    ++evaders;
    auto apk = apk::ParseApk(synth::BuildApkBytes(profile, p.universe()));
    ASSERT_TRUE(apk.ok());
    const emu::EmulationReport report = engine.Run(*apk, tracked);
    const auto verdict = p.checker().Classify(report);
    rescued += verdict.malicious ? 1 : 0;
    sum_score_with_manifest += verdict.score;
    // Same model, same app, but with the *suspicious* auxiliary signals
    // suppressed: dangerous/signature permissions and static intent filters
    // are dropped while innocuous normal-level permissions stay (removing
    // those too would itself look anomalous). Isolates what the §4.5
    // features contribute for a full evader.
    emu::EmulationReport blinded = report;
    std::vector<std::string> kept;
    for (const std::string& perm : blinded.requested_permissions) {
      bool restrictive = false;
      for (const auto& info : p.universe().permissions()) {
        if (info.name == perm) {
          restrictive = android::IsRestrictive(info.level);
          break;
        }
      }
      if (!restrictive) {
        kept.push_back(perm);
      }
    }
    blinded.requested_permissions = std::move(kept);
    blinded.manifest_intent_filters.clear();
    blinded.observed_intents.clear();
    sum_score_blinded += p.checker().Classify(blinded).score;
  }
  ASSERT_EQ(evaders, 10);
  // The §4.5 mechanism: with every discriminative API bit hidden, the
  // manifest (permissions + intents) is what keeps the score up.
  EXPECT_GT(sum_score_with_manifest / 10.0, sum_score_blinded / 10.0 + 0.05);
  EXPECT_GE(rescued, 1);
}

}  // namespace
}  // namespace apichecker
