// Unit tests for src/stats: descriptive statistics, CDFs, correlation, curve
// fitting, histograms.

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "stats/cdf.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/fitting.h"
#include "stats/histogram.h"
#include "stats/reservoir.h"
#include "util/rng.h"

namespace apichecker::stats {
namespace {

TEST(Descriptive, KnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = Summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyInputIsZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(Median({}), 0.0);
}

TEST(Descriptive, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 25.0);
  EXPECT_NEAR(Percentile(xs, 25.0), 17.5, 1e-12);
}

TEST(EmpiricalCdf, AtAndQuantile) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.At(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.At(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 2.5);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  util::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.LogNormal(3.0, 0.5));
  }
  const EmpiricalCdf cdf(xs);
  const auto curve = cdf.Curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Correlation, PearsonPerfect) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  const std::vector<double> yn = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, yn), -1.0, 1e-12);
}

TEST(Correlation, PearsonDegenerate) {
  const std::vector<double> short_x = {1, 2};
  const std::vector<double> const_x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(PearsonCorrelation(short_x, y), 0.0);
  EXPECT_EQ(PearsonCorrelation(const_x, y), 0.0);
}

TEST(Correlation, FractionalRanksHandleTies) {
  const std::vector<double> v = {10, 20, 20, 30};
  const std::vector<double> ranks = FractionalRanks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Correlation, SpearmanMonotoneNonlinear) {
  // Spearman is 1 for any strictly increasing relationship.
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(std::exp(i * 0.3));
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(Correlation, BinarySpearmanMatchesGeneric) {
  util::Rng rng(9);
  std::vector<uint8_t> f, l;
  std::vector<double> fd, ld;
  for (int i = 0; i < 500; ++i) {
    const bool label = rng.Bernoulli(0.3);
    const bool feature = rng.Bernoulli(label ? 0.7 : 0.2);
    f.push_back(feature);
    l.push_back(label);
    fd.push_back(feature);
    ld.push_back(label);
  }
  EXPECT_NEAR(BinarySpearman(f, l), SpearmanCorrelation(fd, ld), 1e-9);
}

TEST(Correlation, BinarySpearmanDegenerate) {
  EXPECT_EQ(BinarySpearman({}, {}), 0.0);
  const std::vector<uint8_t> ones = {1, 1, 1};
  const std::vector<uint8_t> mixed = {0, 1, 0};
  EXPECT_EQ(BinarySpearman(ones, mixed), 0.0);  // Zero feature variance.
}

TEST(Fitting, LinearExactRecovery) {
  std::vector<double> x, y;
  for (int i = 0; i < 30; ++i) {
    x.push_back(i);
    y.push_back(3.5 * i - 7.0);
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.a, 3.5, 1e-9);
  EXPECT_NEAR(fit.b, -7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Fitting, PowerExactRecovery) {
  std::vector<double> x, y;
  for (int i = 1; i <= 30; ++i) {
    x.push_back(i);
    y.push_back(2.0 * std::pow(i, 1.7));
  }
  const PowerFit fit = FitPower(x, y);
  EXPECT_NEAR(fit.a, 2.0, 1e-6);
  EXPECT_NEAR(fit.b, 1.7, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Fitting, LogExactRecovery) {
  std::vector<double> x, y;
  for (int i = 1; i <= 30; ++i) {
    x.push_back(i);
    y.push_back(6.4 * std::log(i) - 43.36);
  }
  const LogFit fit = FitLog(x, y);
  EXPECT_NEAR(fit.a, 6.4, 1e-9);
  EXPECT_NEAR(fit.b, -43.36, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Fitting, RSquaredPenalizesBadFit) {
  const std::vector<double> obs = {1, 2, 3, 4};
  const std::vector<double> good = {1.1, 1.9, 3.05, 3.95};
  const std::vector<double> bad = {4, 3, 2, 1};
  EXPECT_GT(RSquared(obs, good), 0.98);
  EXPECT_LT(RSquared(obs, bad), 0.0);  // Worse than predicting the mean.
}

TEST(Fitting, TriModalRecoversPaperEquation) {
  // Synthesize data from Eq. 1 of the paper and check segment recovery.
  std::vector<double> x, y;
  for (double n = 1; n < 800; n += 20) {
    x.push_back(n);
    y.push_back(0.006 * n + 2.06);
  }
  for (double n = 800; n <= 1000; n += 10) {
    x.push_back(n);
    y.push_back(1e-9 * std::pow(n, 3.44));
  }
  for (double n = 1500; n <= 50'000; n *= 1.4) {
    x.push_back(n);
    y.push_back(6.4 * std::log(n) - 43.36);
  }
  const TriModalFit fit = FitTriModal(x, y, 800, 1000);
  EXPECT_NEAR(fit.linear.a, 0.006, 1e-6);
  EXPECT_NEAR(fit.power.b, 3.44, 1e-3);
  EXPECT_NEAR(fit.log.a, 6.4, 1e-6);
  EXPECT_GT(fit.linear.r_squared, 0.999);
  EXPECT_GT(fit.power.r_squared, 0.999);
  EXPECT_GT(fit.log.r_squared, 0.999);
  // Eval dispatches to the right segment.
  EXPECT_NEAR(fit.Eval(100), 0.006 * 100 + 2.06, 1e-3);
  EXPECT_NEAR(fit.Eval(900), 1e-9 * std::pow(900, 3.44), 0.3);
  EXPECT_NEAR(fit.Eval(10'000), 6.4 * std::log(10'000) - 43.36, 1e-3);
  EXPECT_FALSE(fit.ToString().empty());
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.AddAll({-1.0, 0.5, 2.5, 9.9, 100.0});
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.BinCount(0), 2u);  // -1 clamps into the first bin with 0.5.
  EXPECT_EQ(h.BinCount(1), 1u);
  EXPECT_EQ(h.BinCount(4), 2u);  // 100 clamps into the last bin with 9.9.
  EXPECT_DOUBLE_EQ(h.BinLow(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(1), 4.0);
  EXPECT_FALSE(h.Render().empty());
}

TEST(ReservoirSampler, KeepsEverythingBelowCapacity) {
  ReservoirSampler<int> sampler(10, 1);
  for (int i = 0; i < 7; ++i) {
    sampler.Add(i);
  }
  EXPECT_EQ(sampler.sample().size(), 7u);
  EXPECT_EQ(sampler.seen(), 7u);
}

TEST(ReservoirSampler, UniformOverLongStream) {
  // Each of 1000 stream items should land in a 100-slot reservoir with
  // probability ~0.1; check per-decile occupancy over many trials.
  std::array<int, 10> decile_hits{};
  for (uint64_t trial = 0; trial < 200; ++trial) {
    ReservoirSampler<int> sampler(100, trial);
    for (int i = 0; i < 1'000; ++i) {
      sampler.Add(i);
    }
    EXPECT_EQ(sampler.sample().size(), 100u);
    for (int v : sampler.sample()) {
      ++decile_hits[static_cast<size_t>(v / 100)];
    }
  }
  for (int hits : decile_hits) {
    // Expected 200 trials * 10 per decile = 2000 each.
    EXPECT_NEAR(hits, 2000, 250);
  }
}

}  // namespace
}  // namespace apichecker::stats
