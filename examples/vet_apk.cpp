// vet_apk: a deep-dive of the APK container and the dynamic-analysis engine
// on a single app. Builds one submission, dumps its parsed structure
// (manifest metadata, DEX string pool / method table / behaviour records),
// runs it on the un-hardened and hardened emulators plus a real device, and
// shows how emulator detection and sensor gating change what the hooks see.
// Finally routes the same APK through the online vetting service, where a
// byte-identical resubmission hits the digest cache and a model hot-swap
// forces a recompute under the new snapshot — with an unchanged verdict.
//
// Flags: --seed S, --malicious (force a malware sample).

#include <cstdio>
#include <cstring>

#include "android/api_universe.h"
#include "core/model_store.h"
#include "core/study.h"
#include "emu/engine.h"
#include "ingest/stream_reader.h"
#include "serve/service.h"
#include "synth/corpus.h"
#include "util/strings.h"

using namespace apichecker;

namespace {

void PrintReport(const char* label, const emu::EmulationReport& report) {
  std::printf("  %-22s APIs observed: %4zu | invocations: %8s | RAC: %5s | "
              "time: %5.2f min | detected sandbox: %s\n",
              label, report.observed_apis.size(),
              util::FormatCount(static_cast<double>(report.total_invocations)).c_str(),
              util::FormatPercent(report.rac).c_str(), report.emulation_minutes,
              report.emulator_detected ? "YES" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 7;
  bool force_malicious = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--malicious") == 0) {
      force_malicious = true;
    }
  }

  android::UniverseConfig universe_config;
  universe_config.num_apis = 20'000;
  const android::ApiUniverse universe = android::ApiUniverse::Generate(universe_config);

  synth::CorpusConfig corpus_config;
  corpus_config.seed = seed;
  if (force_malicious) {
    corpus_config.malicious_fraction = 1.0;
    corpus_config.update_fraction = 0.0;
  }
  synth::CorpusGenerator generator(universe, corpus_config);
  const synth::AppProfile profile = generator.Next();

  std::printf("== building %s v%u (%s, ground truth: %s) ==\n", profile.package_name.c_str(),
              profile.version_code, profile.is_update ? "update" : "new submission",
              profile.malicious ? "MALICIOUS" : "benign");

  const std::vector<uint8_t> apk_bytes = synth::BuildApkBytes(profile, universe);
  std::printf("APK size: %zu bytes\n\n", apk_bytes.size());

  auto apk = apk::ParseApk(apk_bytes);
  if (!apk.ok()) {
    std::printf("parse error: %s\n", apk.error().c_str());
    return 1;
  }

  std::printf("== AndroidManifest.xml ==\n");
  std::printf("package=%s versionCode=%u minSdk=%u targetSdk=%u\n",
              apk->manifest.package_name.c_str(), apk->manifest.version_code,
              apk->manifest.min_sdk, apk->manifest.target_sdk);
  std::printf("permissions (%zu):\n", apk->manifest.permissions.size());
  for (const std::string& p : apk->manifest.permissions) {
    std::printf("  uses-permission %s\n", p.c_str());
  }
  std::printf("activities: %zu declared; intent filters (%zu):\n",
              apk->manifest.activities.size(), apk->manifest.intent_filters.size());
  for (const std::string& action : apk->manifest.intent_filters) {
    std::printf("  intent-filter action=%s\n", action.c_str());
  }

  std::printf("\n== classes.dex ==\n");
  std::printf("string pool: %zu | framework methods referenced: %zu | behaviour records: %zu\n",
              apk->dex.strings.size(), apk->dex.method_name_idx.size(),
              apk->dex.behaviors.size());
  std::printf("flags: detects_emulator=%d native_code=%d needs_sensors=%d crash_prob=%.3f\n",
              apk->dex.detects_emulator(), apk->dex.has_native_code(),
              apk->dex.needs_real_sensors(), apk->dex.crash_probability());
  std::printf("first method references:\n");
  for (size_t m = 0; m < apk->dex.method_name_idx.size() && m < 8; ++m) {
    std::printf("  [%zu] %s\n", m, apk->dex.MethodName(static_cast<uint32_t>(m)).c_str());
  }
  std::printf("native library entry: %s\n\n", apk->has_native_lib ? "yes" : "no");

  // Run under three environments tracking everything (study configuration).
  const emu::TrackedApiSet all = emu::TrackedApiSet::All(universe.num_apis());

  emu::EngineConfig naked;
  naked.anti_detection = {false, false, false, false};
  emu::EngineConfig enhanced;  // Defaults: all countermeasures on.
  emu::EngineConfig device;
  device.kind = emu::EngineKind::kRealDevice;
  emu::EngineConfig light;
  light.kind = emu::EngineKind::kLightweight;

  std::printf("== dynamic analysis (all %zu APIs hooked, 5K Monkey events) ==\n",
              universe.num_apis());
  PrintReport("original emulator:", emu::DynamicAnalysisEngine(universe, naked).Run(*apk, all));
  PrintReport("enhanced emulator:",
              emu::DynamicAnalysisEngine(universe, enhanced).Run(*apk, all));
  PrintReport("real device:", emu::DynamicAnalysisEngine(universe, device).Run(*apk, all));
  PrintReport("lightweight engine:",
              emu::DynamicAnalysisEngine(universe, light).Run(*apk, all));

  const emu::EmulationReport report =
      emu::DynamicAnalysisEngine(universe, enhanced).Run(*apk, all);
  if (!report.observed_intents.empty()) {
    std::printf("\nintents observed as hooked-API parameters:\n");
    for (const emu::ObservedIntent& intent : report.observed_intents) {
      std::printf("  %s  (via %s)\n", intent.action.c_str(),
                  universe.api(intent.carrier).name.c_str());
    }
  }

  // Production path: the same bytes go through the online vetting service
  // instead of a hand-driven engine. Train a small checker, stand the service
  // up around it, and watch the digest cache and the hot-swap at work.
  std::printf("\n== online vetting service ==\n");
  synth::CorpusConfig study_corpus;
  study_corpus.seed = seed ^ 0x57d9;
  synth::CorpusGenerator study_generator(universe, study_corpus);
  core::StudyConfig study_config;
  study_config.num_apps = 1'500;
  const core::StudyDataset study = core::RunStudy(universe, study_generator, study_config);
  core::ApiChecker checker(universe, {});
  checker.TrainFromStudy(study);
  const std::vector<uint8_t> model_blob = core::SerializeChecker(checker);

  serve::ServiceConfig service_config;
  service_config.farm.engine.kind = emu::EngineKind::kLightweight;
  serve::VettingService service(universe, service_config, std::move(checker));

  // Ingest once: the chunked reader streams the upload into an immutable
  // ref-counted blob, hashing incrementally as bytes arrive. Every submission
  // below shares this one handle — no copies, no re-hashing.
  ingest::MemoryStreamReader upload(apk_bytes);
  auto blob = ingest::ReadApkBlob(upload, /*chunk_bytes=*/64 * 1024);
  if (!blob.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", blob.error().c_str());
    return 1;
  }
  const auto vet = [&](const char* label) {
    serve::Submission submission;
    submission.blob = *blob;
    auto accepted = service.Submit(std::move(submission));
    if (!accepted.ok()) {
      std::printf("  %-26s rejected: %s\n", label, accepted.error().c_str());
      return;
    }
    const serve::VettingResult result = accepted->get();
    std::printf("  %-26s %-9s score=%.3f  model=v%u  cache=%s  e2e=%.1f ms\n", label,
                result.malicious ? "MALICIOUS" : "benign", result.score,
                result.model_version, result.from_cache ? "HIT" : "miss",
                result.total_ms);
  };
  vet("first submission:");
  vet("byte-identical resubmit:");  // Served from the digest cache.
  // Republish the same weights as snapshot v2 — e.g. the monthly retrain
  // promoted a model. The v1 cache entry is now stale, so the resubmission
  // recomputes under v2 and must reach the same verdict.
  if (auto swapped = service.SwapModelFromBlob(model_blob); swapped.ok()) {
    std::printf("  hot-swapped serving model -> v%u\n", *swapped);
  }
  vet("resubmit after hot swap:");
  service.Shutdown();
  const serve::ServiceStats stats = service.stats();
  std::printf("  service: %llu accepted, %llu cache hits, %llu batches, %llu swaps\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.model_swaps));
  return 0;
}
