// selection_study: the researcher workflow behind §4.3–§4.4 — run the
// collaborative study, rank every framework API by its Spearman correlation
// with malice, walk the four selection steps, and export the ranking and the
// selected key-API list as CSV for external plotting.
//
// Flags: --apps N (default 6000), --seed S, --csv PREFIX (write
// PREFIX_ranking.csv and PREFIX_key_apis.csv).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/selection.h"
#include "core/study.h"
#include "synth/corpus.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  size_t num_apps = 6'000;
  uint64_t seed = 42;
  std::string csv_prefix;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--apps") == 0) {
      num_apps = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_prefix = argv[i + 1];
    }
  }

  android::UniverseConfig universe_config;
  universe_config.seed = seed;
  const android::ApiUniverse universe = android::ApiUniverse::Generate(universe_config);
  synth::CorpusConfig corpus_config;
  corpus_config.seed = seed;
  synth::CorpusGenerator generator(universe, corpus_config);

  std::printf("running the collaborative study: %zu apps, %zu APIs hooked...\n", num_apps,
              universe.num_apis());
  core::StudyConfig study_config;
  study_config.num_apps = num_apps;
  const core::StudyDataset study = core::RunStudy(universe, generator, study_config);

  const auto correlations = core::ComputeApiCorrelations(study, universe.num_apis());
  const core::KeyApiSelection sel = core::SelectKeyApis(correlations, universe, study.size());

  std::printf("\n== four-step key-API selection ==\n");
  std::printf("Step 1  Set-C (|SRC| >= 0.2, not seldom)  : %zu APIs\n", sel.set_c.size());
  std::printf("Step 2  Set-P (restrictive permissions)   : %zu APIs\n", sel.set_p.size());
  std::printf("Step 3  Set-S (sensitive operations)      : %zu APIs\n", sel.set_s.size());
  std::printf("Step 4  union                             : %zu key APIs (%zu overlapped)\n",
              sel.key_apis.size(), sel.total_overlapped());

  std::printf("\n== strongest correlations ==\n");
  const auto top = core::TopCorrelatedApis(correlations, study.size(), 15);
  for (android::ApiId id : top) {
    std::printf("  %+0.3f  %s\n", correlations[id].src, universe.api(id).name.c_str());
  }
  std::printf("  ... and the frequent negatives:\n");
  for (android::ApiId id : universe.CommonOpApis()) {
    std::printf("  %+0.3f  %s\n", correlations[id].src, universe.api(id).name.c_str());
  }

  if (!csv_prefix.empty()) {
    {
      util::Table ranking({"api_id", "name", "src", "support"});
      for (const core::ApiCorrelation& c : correlations) {
        if (c.support == 0) {
          continue;
        }
        ranking.AddRow({std::to_string(c.api), universe.api(c.api).name,
                        util::FormatDouble(c.src, 5), std::to_string(c.support)});
      }
      std::ofstream out(csv_prefix + "_ranking.csv");
      ranking.PrintCsv(out);
      std::printf("\nwrote %s_ranking.csv (%zu rows)\n", csv_prefix.c_str(),
                  ranking.num_rows());
    }
    {
      util::Table keys({"api_id", "name", "in_set_c", "in_set_p", "in_set_s"});
      auto contains = [](const std::vector<android::ApiId>& v, android::ApiId id) {
        return std::binary_search(v.begin(), v.end(), id) ||
               std::find(v.begin(), v.end(), id) != v.end();
      };
      for (android::ApiId id : sel.key_apis) {
        keys.AddRow({std::to_string(id), universe.api(id).name,
                     contains(sel.set_c, id) ? "1" : "0", contains(sel.set_p, id) ? "1" : "0",
                     contains(sel.set_s, id) ? "1" : "0"});
      }
      std::ofstream out(csv_prefix + "_key_apis.csv");
      keys.PrintCsv(out);
      std::printf("wrote %s_key_apis.csv (%zu rows)\n", csv_prefix.c_str(), keys.num_rows());
    }
  }
  return 0;
}
