// Quickstart: the full APICHECKER pipeline end to end, scaled to finish in
// about a minute on a laptop core.
//
//   1. Model the Android framework (API universe + catalogues).
//   2. Synthesize a labelled app corpus and run the §4 collaborative study
//      (APK round trip + track-all emulation).
//   3. Select the key APIs (Set-C ∪ Set-P ∪ Set-S) and train the random
//      forest with auxiliary permission/intent features.
//   4. Vet fresh submissions the way the production system does: emulate
//      with key-API hooks only, classify, print verdicts.
//
// Flags: --apps N (study corpus size), --apis N (universe size), --seed S.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/checker.h"
#include "core/study.h"
#include "emu/engine.h"
#include "synth/corpus.h"
#include "util/strings.h"

using namespace apichecker;

namespace {

uint64_t FlagValue(int argc, char** argv, const char* name, uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_apps = FlagValue(argc, argv, "--apps", 6'000);
  const size_t num_apis = FlagValue(argc, argv, "--apis", 50'000);
  const uint64_t seed = FlagValue(argc, argv, "--seed", 42);

  std::printf("== APICHECKER quickstart ==\n");
  std::printf("framework: %zu APIs | corpus: %zu apps | seed: %llu\n\n", num_apis, num_apps,
              static_cast<unsigned long long>(seed));

  // 1. Framework model.
  android::UniverseConfig universe_config;
  universe_config.num_apis = num_apis;
  universe_config.seed = seed;
  android::ApiUniverse universe = android::ApiUniverse::Generate(universe_config);
  std::printf("universe: %zu APIs (%zu restrictive-permission, %zu sensitive-operation)\n",
              universe.num_apis(), universe.RestrictivePermissionApis().size(),
              universe.SensitiveOperationApis().size());

  // 2. Corpus + collaborative study (track-all emulation).
  synth::CorpusConfig corpus_config;
  corpus_config.seed = seed;
  synth::CorpusGenerator generator(universe, corpus_config);
  core::StudyConfig study_config;
  study_config.num_apps = num_apps;
  std::printf("running study (APK build -> parse -> emulate, all APIs hooked)...\n");
  const core::StudyDataset study = core::RunStudy(universe, generator, study_config);
  std::printf("study: %zu apps, %zu malicious (%.1f%%)\n", study.size(), study.NumPositive(),
              100.0 * study.NumPositive() / study.size());

  // 3. Key-API selection + training.
  core::ApiCheckerConfig checker_config;
  core::ApiChecker checker(universe, checker_config);
  checker.TrainFromStudy(study);
  const core::KeyApiSelection& sel = checker.selection();
  std::printf("selection: Set-C=%zu Set-P=%zu Set-S=%zu -> %zu key APIs (%zu overlapped)\n",
              sel.set_c.size(), sel.set_p.size(), sel.set_s.size(), sel.key_apis.size(),
              sel.total_overlapped());
  std::printf("schema: %u features (%s)\n\n", checker.schema().num_features(),
              checker.schema().options().Label().c_str());

  std::printf("top-10 features by Gini importance:\n");
  for (const auto& [name, importance] : checker.TopFeatures(10)) {
    std::printf("  %-55s %.4f\n", name.c_str(), importance);
  }

  // 4. Production vetting of fresh submissions.
  emu::EngineConfig engine_config;
  engine_config.kind = emu::EngineKind::kLightweight;
  const emu::DynamicAnalysisEngine engine(universe, engine_config);
  const emu::TrackedApiSet tracked = checker.MakeTrackedSet();

  std::printf("\nvetting 8 fresh submissions on the lightweight engine:\n");
  for (int i = 0; i < 8; ++i) {
    const synth::AppProfile profile = generator.Next();
    const std::vector<uint8_t> apk_bytes = synth::BuildApkBytes(profile, universe);
    auto report = engine.RunBytes(apk_bytes, tracked);
    if (!report.ok()) {
      std::printf("  %-28s PARSE ERROR: %s\n", profile.package_name.c_str(),
                  report.error().c_str());
      continue;
    }
    const core::ApiChecker::Verdict verdict = checker.Classify(*report);
    std::printf("  %-34s v%-3u scan=%4.1f min score=%.3f -> %-9s (truth: %s)\n",
                profile.package_name.c_str(), profile.version_code,
                report->emulation_minutes, verdict.score,
                verdict.malicious ? "MALICIOUS" : "benign",
                profile.malicious ? "malicious" : "benign");
  }
  return 0;
}
