// market_deployment: a condensed run of the production market pipeline —
// the §5 deployment story. Bootstraps APICHECKER from an offline study, then
// simulates months of daily vetting on a 16-emulator farm with fingerprint
// pre-filtering, developer-complaint and user-report manual loops, monthly
// key-API re-selection + retraining, and quarterly Android SDK growth.
//
// After the simulation, the promoted production model is stood up behind the
// online vetting service and wired to a model registry, showing the
// registry-promotion -> live hot-swap path a real deployment would use.
//
// Flags: --months N (default 4), --apps-per-day N (default 120), --seed S.

#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "core/model_store.h"
#include "ingest/apk_blob.h"
#include "market/simulation.h"
#include "serve/service.h"
#include "synth/corpus.h"
#include "util/strings.h"

using namespace apichecker;

int main(int argc, char** argv) {
  size_t months = 4;
  size_t apps_per_day = 120;
  uint64_t seed = 2018;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--months") == 0) {
      months = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--apps-per-day") == 0) {
      apps_per_day = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  android::UniverseConfig universe_config;
  universe_config.num_apis = 30'000;
  android::ApiUniverse universe = android::ApiUniverse::Generate(universe_config);

  market::MarketConfig config;
  config.months = months;
  config.days_per_month = 10;
  config.apps_per_day = apps_per_day;
  config.initial_study_apps = 6'000;
  config.seed = seed;

  std::printf("== T-Market deployment simulation ==\n");
  std::printf("%zu months x %zu days x %zu submissions/day on a %zu-emulator farm\n", months,
              config.days_per_month, apps_per_day, config.num_emulators);
  std::printf("bootstrapping from a %zu-app offline study (this trains the first model)...\n\n",
              config.initial_study_apps);

  market::MarketSimulation sim(universe, config);
  const std::vector<market::MonthlyStats> timeline = sim.Run();

  std::printf("%-6s %-10s %-12s %-10s %-8s %-8s %-9s %-9s %-10s %-9s\n", "month", "submitted",
              "fingerprint", "flagged", "P", "R", "FP-compl", "FN-repts", "key APIs",
              "scan min");
  for (const market::MonthlyStats& m : timeline) {
    std::printf("%-6zu %-10llu %-12llu %-10llu %-8s %-8s %-9llu %-9llu %-10zu %-9.2f\n",
                m.month, static_cast<unsigned long long>(m.submitted),
                static_cast<unsigned long long>(m.caught_by_fingerprint),
                static_cast<unsigned long long>(m.flagged_by_checker),
                util::FormatPercent(m.checker_cm.Precision()).c_str(),
                util::FormatPercent(m.checker_cm.Recall()).c_str(),
                static_cast<unsigned long long>(m.fp_complaints),
                static_cast<unsigned long long>(m.fn_user_reports), m.key_api_count,
                m.avg_scan_minutes);
  }

  std::printf("\nmalware signature database: %zu fingerprints collected\n",
              sim.fingerprints().size());
  std::printf("final model: %zu key APIs, %u features\n",
              sim.checker().selection().key_apis.size(),
              sim.checker().schema().num_features());
  std::printf("\ntop-10 features the production model relies on:\n");
  for (const auto& [name, importance] : sim.checker().TopFeatures(10)) {
    std::printf("  %-55s %.4f\n", name.c_str(), importance);
  }

  // Deployment epilogue: serve the promoted production model online. A fresh
  // registry is attached to the service, so the next promotion (here: the
  // production blob re-considered as a new candidate) hot-swaps the serving
  // snapshot with zero downtime, mid-traffic.
  const market::ModelRecord* production = sim.registry().production();
  if (production == nullptr) {
    std::printf("\nno promoted model to serve\n");
    return 0;
  }
  auto serving_checker = core::DeserializeChecker(universe, production->blob);
  if (!serving_checker.ok()) {
    std::fprintf(stderr, "cannot deserialize production model: %s\n",
                 serving_checker.error().c_str());
    return 1;
  }
  std::printf("\n== serving the production model (month-%zu promotion, F1 %s) ==\n",
              production->month, util::FormatPercent(production->validation_f1).c_str());

  serve::ServiceConfig service_config;
  service_config.farm.engine.kind = emu::EngineKind::kLightweight;
  serve::VettingService service(universe, service_config, std::move(*serving_checker));

  market::ModelRegistry live_registry;
  service.AttachToRegistry(live_registry);

  synth::CorpusConfig fresh_corpus;
  fresh_corpus.seed = seed ^ 0xf00d;
  synth::CorpusGenerator fresh(universe, fresh_corpus);
  const auto submit_wave = [&](size_t count) {
    std::vector<std::future<serve::VettingResult>> futures;
    for (size_t i = 0; i < count; ++i) {
      serve::Submission submission;
      submission.blob =
          ingest::ApkBlob::FromBytes(synth::BuildApkBytes(fresh.Next(), universe));
      if (auto accepted = service.Submit(std::move(submission)); accepted.ok()) {
        futures.push_back(std::move(*accepted));
      }
    }
    size_t malicious = 0;
    uint32_t version = 0;
    for (auto& future : futures) {
      const serve::VettingResult result = future.get();
      malicious += result.status == serve::VetStatus::kOk && result.malicious;
      version = result.model_version;
    }
    std::printf("  vetted %zu fresh submissions under snapshot v%u (%zu flagged)\n",
                futures.size(), version, malicious);
  };

  submit_wave(8);
  market::ModelRecord next_month = *production;  // Same weights, next cycle.
  next_month.month += 1;
  if (live_registry.Consider(std::move(next_month))) {
    std::printf("  registry promoted the month-%zu candidate -> serving v%u (no restart)\n",
                production->month + 1, service.model_version());
  }
  submit_wave(8);
  live_registry.SetPromotionListener(nullptr);
  service.Shutdown();
  const serve::ServiceStats stats = service.stats();
  std::printf("  service totals: %llu accepted == %llu resolved, %llu model swaps\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.resolved()),
              static_cast<unsigned long long>(stats.model_swaps));
  return 0;
}
