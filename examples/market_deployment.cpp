// market_deployment: a condensed run of the production market pipeline —
// the §5 deployment story. Bootstraps APICHECKER from an offline study, then
// simulates months of daily vetting on a 16-emulator farm with fingerprint
// pre-filtering, developer-complaint and user-report manual loops, monthly
// key-API re-selection + retraining, and quarterly Android SDK growth.
//
// Flags: --months N (default 4), --apps-per-day N (default 120), --seed S.

#include <cstdio>
#include <cstring>

#include "market/simulation.h"
#include "util/strings.h"

using namespace apichecker;

int main(int argc, char** argv) {
  size_t months = 4;
  size_t apps_per_day = 120;
  uint64_t seed = 2018;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--months") == 0) {
      months = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--apps-per-day") == 0) {
      apps_per_day = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  android::UniverseConfig universe_config;
  universe_config.num_apis = 30'000;
  android::ApiUniverse universe = android::ApiUniverse::Generate(universe_config);

  market::MarketConfig config;
  config.months = months;
  config.days_per_month = 10;
  config.apps_per_day = apps_per_day;
  config.initial_study_apps = 6'000;
  config.seed = seed;

  std::printf("== T-Market deployment simulation ==\n");
  std::printf("%zu months x %zu days x %zu submissions/day on a %zu-emulator farm\n", months,
              config.days_per_month, apps_per_day, config.num_emulators);
  std::printf("bootstrapping from a %zu-app offline study (this trains the first model)...\n\n",
              config.initial_study_apps);

  market::MarketSimulation sim(universe, config);
  const std::vector<market::MonthlyStats> timeline = sim.Run();

  std::printf("%-6s %-10s %-12s %-10s %-8s %-8s %-9s %-9s %-10s %-9s\n", "month", "submitted",
              "fingerprint", "flagged", "P", "R", "FP-compl", "FN-repts", "key APIs",
              "scan min");
  for (const market::MonthlyStats& m : timeline) {
    std::printf("%-6zu %-10llu %-12llu %-10llu %-8s %-8s %-9llu %-9llu %-10zu %-9.2f\n",
                m.month, static_cast<unsigned long long>(m.submitted),
                static_cast<unsigned long long>(m.caught_by_fingerprint),
                static_cast<unsigned long long>(m.flagged_by_checker),
                util::FormatPercent(m.checker_cm.Precision()).c_str(),
                util::FormatPercent(m.checker_cm.Recall()).c_str(),
                static_cast<unsigned long long>(m.fp_complaints),
                static_cast<unsigned long long>(m.fn_user_reports), m.key_api_count,
                m.avg_scan_minutes);
  }

  std::printf("\nmalware signature database: %zu fingerprints collected\n",
              sim.fingerprints().size());
  std::printf("final model: %zu key APIs, %u features\n",
              sim.checker().selection().key_apis.size(),
              sim.checker().schema().num_features());
  std::printf("\ntop-10 features the production model relies on:\n");
  for (const auto& [name, importance] : sim.checker().TopFeatures(10)) {
    std::printf("  %-55s %.4f\n", name.c_str(), importance);
  }
  return 0;
}
