// apichecker: command-line front end for the whole system. Works with real
// files on disk — synthesized .apk archives and serialized model blobs — so
// the full production flow can be driven from a shell:
//
//   apichecker universe                      # framework model stats
//   apichecker corpus --apps 50 --out dir/   # write .apk files (+ labels)
//   apichecker study --apps 6000 --model m.bin   # train + save APICHECKER
//   apichecker vet --model m.bin dir/*.apk   # scan APKs, print verdicts
//   apichecker market --months 3             # deployment simulation
//
// Common flags: --apis N, --seed S. The universe is regenerated from the
// seed, so a model trained with one seed must be used with the same seed.
// Observability: --metrics-out=<file> dumps the metrics registry (JSON, or
// Prometheus text when the path ends in .prom) after any command; vet/study/
// market additionally print a stats summary. APICHECKER_LOG_LEVEL=debug|info|
// warn|error controls stderr logging.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <chrono>
#include <future>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "apk/apk.h"
#include "core/model_store.h"
#include "core/study.h"
#include "emu/farm.h"
#include "fabric/transport.h"
#include "fabric/worker.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "gateway/net_fault.h"
#include "ingest/apk_blob.h"
#include "ingest/stream_reader.h"
#include "market/review_pipeline.h"
#include "market/simulation.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/bench_report.h"
#include "obs/trace.h"
#include "obs/trace_collector.h"
#include "serve/service.h"
#include "store/verdict_store.h"
#include "synth/corpus.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace apichecker;

namespace {

struct CommonFlags {
  size_t apis = 30'000;
  uint64_t seed = 42;
  size_t apps = 2'000;
  size_t months = 3;
  std::string model_path = "apichecker_model.bin";
  std::string out_dir = "corpus_out";
  std::string metrics_out;  // Empty = no dump.
  // serve command tuning.
  size_t shards = 4;
  size_t batch = 0;       // 0 = one per farm emulator.
  size_t linger_ms = 10;
  size_t farms = 1;       // Device farms in the serving pool.
  size_t rt_threads = 0;  // Unified-runtime executor threads; 0 = auto-size.
  double fault_rate = 0;  // Per-batch farm fault probability (fault injection).
  std::string store_dir;  // Persistent verdict store; empty = disabled.
  std::string fsync_policy = "group";  // every | group | buffered.
  double store_fault_rate = 0;  // Store short-write/fsync fault probability.
  size_t chunk_kb = 64;    // Streaming-ingest chunk size.
  size_t large_every = 0;  // Pad every Nth trace APK to --large-kb (0 = off).
  size_t large_kb = 8192;  // Target size of padded "large" APKs.
  // Tracing: --trace-out writes completed traces (Chrome trace_event format
  // when the path ends in .trace.json, JSON-lines otherwise). --trace-sample
  // defaults to 1.0 when --trace-out is given, 0 (off) otherwise. An existing
  // --trace-out file is never overwritten without --force.
  std::string trace_out;
  double trace_sample = -1.0;  // < 0 = unset.
  bool force = false;
  std::string bench_out;  // BENCH_*.json perf report; empty = no report.
  // Farm fabric: `serve --fabric N` spawns N `apichecker farm` worker
  // processes on unix sockets and dispatches batches over the wire;
  // --fabric-kill-one SIGKILLs one worker mid-trace to demonstrate the
  // heartbeat-driven breaker + failover path. `farm --listen E` is the
  // worker side (normally spawned by serve, usable standalone for tcp:).
  size_t fabric = 0;
  bool fabric_kill_one = false;
  std::string listen;
  uint32_t worker_id = 0;
  // Overload control & QoS: `serve --shed` turns on watermark-driven load
  // shedding (bulk first, interactive never); --class-weights I,R,B sets the
  // weighted-fair pop shares, --slo-ms I,R,B per-class default deadlines
  // (0 = none), --spill-threshold-kb spills blobs at/above the threshold to
  // unlinked temp files so the blob pool bounds RSS during a storm.
  bool shed = false;
  size_t shard_capacity = 512;
  std::string class_weights;  // "I,R,B"; empty = library default.
  std::string slo_ms;         // "I,R,B" in ms; empty/0 = no class SLO.
  size_t spill_threshold_kb = 0;  // 0 = spilling off.
  // Ingest gateway: `serve --listen E` puts an IngestGateway in front of the
  // service (no synthetic trace; uploads arrive over the wire) and parks
  // until SIGTERM/SIGINT. `submit --connect E` is the client side: streams
  // APKs as framed chunks with retry/resume-by-digest, optionally mangled by
  // a deterministic NetFaultPlan (--stall-at/--disconnect-at/--torn-at/
  // --corrupt-at take comma-separated 1-based chunk ordinals).
  std::string connect;        // submit: gateway endpoint.
  size_t uploads = 4;         // submit: synthetic uploads when no files given.
  size_t attempts = 4;        // submit: max attempts per upload.
  std::string priority = "bulk";  // submit: interactive | rescan | bulk.
  std::string stall_at;       // Scripted stall ordinals.
  size_t stall_ms = 300;      // Stall duration (scripted and random).
  double stall_rate = 0;      // Random per-chunk stall probability.
  std::string disconnect_at;  // Scripted mid-stream disconnect ordinals.
  std::string torn_at;        // Scripted torn-frame ordinals.
  std::string corrupt_at;     // Scripted corrupt-frame ordinals.
  size_t throttle_from = 0;   // Throttle starting at this chunk ordinal.
  double throttle_bps = 0;    // Throttle target, bytes/sec.
  // Gateway tuning (serve --listen side); 0 = library default.
  size_t read_deadline_ms = 0;
  size_t idle_timeout_ms = 0;
  double min_bps = 0;         // Slow-loris throughput floor, bytes/sec.
  size_t max_uploads = 0;     // Concurrent-upload budget.
  std::vector<std::string> positional;
};

// Parses "3,7,12" into 1-based chunk ordinals. Returns false on malformed
// input (ordinal 0 included — the plans are 1-based).
bool ParseOrdinalList(const char* text, std::vector<uint64_t>& out) {
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    const uint64_t value = std::strtoull(p, &end, 10);
    if (end == p || value == 0) return false;
    out.push_back(value);
    if (*end == ',') {
      p = end + 1;
    } else if (*end == '\0') {
      p = end;
    } else {
      return false;
    }
  }
  return !out.empty();
}

// Parses "a,b,c" (interactive,rescan,bulk) into out[3]. Returns false on
// malformed input.
bool ParseClassTriple(const char* text, uint64_t out[3]) {
  char* cursor = nullptr;
  out[0] = std::strtoull(text, &cursor, 10);
  if (cursor == text || *cursor != ',') return false;
  const char* second = cursor + 1;
  out[1] = std::strtoull(second, &cursor, 10);
  if (cursor == second || *cursor != ',') return false;
  const char* third = cursor + 1;
  out[2] = std::strtoull(third, &cursor, 10);
  return cursor != third && *cursor == '\0';
}

CommonFlags ParseFlags(int argc, char** argv, int first) {
  CommonFlags flags;
  for (int i = first; i < argc; ++i) {
    auto next_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--apis") == 0) {
      flags.apis = std::strtoull(next_value("--apis"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      flags.seed = std::strtoull(next_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--apps") == 0) {
      flags.apps = std::strtoull(next_value("--apps"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--months") == 0) {
      flags.months = std::strtoull(next_value("--months"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--model") == 0) {
      flags.model_path = next_value("--model");
    } else if (std::strcmp(argv[i], "--out") == 0) {
      flags.out_dir = next_value("--out");
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      flags.shards = std::strtoull(next_value("--shards"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      flags.batch = std::strtoull(next_value("--batch"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--linger-ms") == 0) {
      flags.linger_ms = std::strtoull(next_value("--linger-ms"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--farms") == 0) {
      flags.farms = std::strtoull(next_value("--farms"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--rt-threads") == 0) {
      flags.rt_threads = std::strtoull(next_value("--rt-threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--fault-rate") == 0) {
      flags.fault_rate = std::strtod(next_value("--fault-rate"), nullptr);
    } else if (std::strcmp(argv[i], "--store-dir") == 0) {
      flags.store_dir = next_value("--store-dir");
    } else if (std::strcmp(argv[i], "--fsync-policy") == 0) {
      flags.fsync_policy = next_value("--fsync-policy");
    } else if (std::strcmp(argv[i], "--store-fault-rate") == 0) {
      flags.store_fault_rate = std::strtod(next_value("--store-fault-rate"), nullptr);
    } else if (std::strcmp(argv[i], "--chunk-kb") == 0) {
      flags.chunk_kb = std::strtoull(next_value("--chunk-kb"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--large-every") == 0) {
      flags.large_every = std::strtoull(next_value("--large-every"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--large-kb") == 0) {
      flags.large_kb = std::strtoull(next_value("--large-kb"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      flags.metrics_out = next_value("--metrics-out");
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      flags.metrics_out = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      flags.trace_out = next_value("--trace-out");
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      flags.trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--trace-sample") == 0) {
      flags.trace_sample = std::strtod(next_value("--trace-sample"), nullptr);
    } else if (std::strcmp(argv[i], "--force") == 0) {
      flags.force = true;
    } else if (std::strcmp(argv[i], "--fabric") == 0) {
      flags.fabric = std::strtoull(next_value("--fabric"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--fabric-kill-one") == 0) {
      flags.fabric_kill_one = true;
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      flags.listen = next_value("--listen");
    } else if (std::strcmp(argv[i], "--worker-id") == 0) {
      flags.worker_id = static_cast<uint32_t>(
          std::strtoul(next_value("--worker-id"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--shed") == 0) {
      flags.shed = true;
    } else if (std::strcmp(argv[i], "--shard-capacity") == 0) {
      flags.shard_capacity =
          std::strtoull(next_value("--shard-capacity"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--class-weights") == 0) {
      flags.class_weights = next_value("--class-weights");
    } else if (std::strcmp(argv[i], "--slo-ms") == 0) {
      flags.slo_ms = next_value("--slo-ms");
    } else if (std::strcmp(argv[i], "--spill-threshold-kb") == 0) {
      flags.spill_threshold_kb =
          std::strtoull(next_value("--spill-threshold-kb"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--bench-out") == 0) {
      flags.bench_out = next_value("--bench-out");
    } else if (std::strncmp(argv[i], "--bench-out=", 12) == 0) {
      flags.bench_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      flags.connect = next_value("--connect");
    } else if (std::strcmp(argv[i], "--uploads") == 0) {
      flags.uploads = std::strtoull(next_value("--uploads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--attempts") == 0) {
      flags.attempts = std::strtoull(next_value("--attempts"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--priority") == 0) {
      flags.priority = next_value("--priority");
    } else if (std::strcmp(argv[i], "--stall-at") == 0) {
      flags.stall_at = next_value("--stall-at");
    } else if (std::strcmp(argv[i], "--stall-ms") == 0) {
      flags.stall_ms = std::strtoull(next_value("--stall-ms"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--stall-rate") == 0) {
      flags.stall_rate = std::strtod(next_value("--stall-rate"), nullptr);
    } else if (std::strcmp(argv[i], "--disconnect-at") == 0) {
      flags.disconnect_at = next_value("--disconnect-at");
    } else if (std::strcmp(argv[i], "--torn-at") == 0) {
      flags.torn_at = next_value("--torn-at");
    } else if (std::strcmp(argv[i], "--corrupt-at") == 0) {
      flags.corrupt_at = next_value("--corrupt-at");
    } else if (std::strcmp(argv[i], "--throttle-from") == 0) {
      flags.throttle_from = std::strtoull(next_value("--throttle-from"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--throttle-bps") == 0) {
      flags.throttle_bps = std::strtod(next_value("--throttle-bps"), nullptr);
    } else if (std::strcmp(argv[i], "--read-deadline-ms") == 0) {
      flags.read_deadline_ms =
          std::strtoull(next_value("--read-deadline-ms"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      flags.idle_timeout_ms =
          std::strtoull(next_value("--idle-timeout-ms"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--min-bps") == 0) {
      flags.min_bps = std::strtod(next_value("--min-bps"), nullptr);
    } else if (std::strcmp(argv[i], "--max-uploads") == 0) {
      flags.max_uploads = std::strtoull(next_value("--max-uploads"), nullptr, 10);
    } else {
      flags.positional.emplace_back(argv[i]);
    }
  }
  return flags;
}

// Compact human-readable dump of every metric that recorded anything: the
// "stats" block printed after vet/study/market runs.
void PrintStatsSummary() {
  std::printf("\nstats\n");
  for (const obs::MetricSnapshot& metric : obs::MetricsRegistry::Default().Snapshot()) {
    switch (metric.kind) {
      case obs::MetricKind::kCounter:
      case obs::MetricKind::kGauge:
        if (metric.value != 0.0) {
          std::printf("  %-52s %.6g\n", metric.name.c_str(), metric.value);
        }
        break;
      case obs::MetricKind::kHistogram: {
        const obs::HistogramSnapshot& hist = metric.histogram;
        if (hist.count > 0) {
          std::printf("  %-52s n=%llu mean=%.3f p50=%.3f p95=%.3f max=%.3f\n",
                      metric.name.c_str(), static_cast<unsigned long long>(hist.count),
                      hist.Mean(), hist.Quantile(0.50), hist.Quantile(0.95), hist.max);
        }
        break;
      }
    }
  }
}

// Honors --metrics-out. Returns false (changing the exit code) on I/O errors.
bool MaybeWriteMetrics(const CommonFlags& flags) {
  if (flags.metrics_out.empty()) {
    return true;
  }
  auto written = obs::WriteMetricsFile(flags.metrics_out, obs::MetricsRegistry::Default(),
                                       &obs::TraceLog::Default());
  if (!written.ok()) {
    std::fprintf(stderr, "metrics dump failed: %s\n", written.error().c_str());
    return false;
  }
  std::printf("metrics written to %s\n", flags.metrics_out.c_str());
  return true;
}

android::ApiUniverse MakeUniverse(const CommonFlags& flags) {
  android::UniverseConfig config;
  config.num_apis = flags.apis;
  config.seed = flags.seed ^ 0xA11D;
  return android::ApiUniverse::Generate(config);
}

int CmdUniverse(const CommonFlags& flags) {
  const android::ApiUniverse universe = MakeUniverse(flags);
  std::printf("framework universe (seed %llu)\n",
              static_cast<unsigned long long>(flags.seed));
  std::printf("  APIs                      : %zu (SDK level %u)\n", universe.num_apis(),
              universe.sdk_level());
  std::printf("  restrictive-permission    : %zu\n",
              universe.RestrictivePermissionApis().size());
  std::printf("  sensitive-operation       : %zu\n", universe.SensitiveOperationApis().size());
  std::printf("  permissions catalogued    : %zu\n", universe.permissions().size());
  std::printf("  intent actions catalogued : %zu\n", universe.intents().size());
  const auto key_like = universe.RestrictivePermissionApis();
  const auto dependents = universe.TransitiveDependents(key_like);
  std::printf("  APIs implemented via restrictive APIs: %zu\n", dependents.size());
  return 0;
}

int CmdCorpus(const CommonFlags& flags) {
  const android::ApiUniverse universe = MakeUniverse(flags);
  synth::CorpusConfig corpus_config;
  corpus_config.seed = flags.seed;
  synth::CorpusGenerator generator(universe, corpus_config);

  std::filesystem::create_directories(flags.out_dir);
  const std::string labels_path = flags.out_dir + "/labels.csv";
  std::ofstream labels(labels_path);
  labels << "file,package,version,ground_truth\n";
  for (size_t i = 0; i < flags.apps; ++i) {
    const synth::AppProfile profile = generator.Next();
    const std::vector<uint8_t> bytes = synth::BuildApkBytes(profile, universe);
    const std::string file = util::StrFormat("%s/app_%05zu.apk", flags.out_dir.c_str(), i);
    std::ofstream out(file, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    labels << util::StrFormat("app_%05zu.apk,%s,%u,%s\n", i, profile.package_name.c_str(),
                              profile.version_code, profile.malicious ? "malicious" : "benign");
  }
  std::printf("wrote %zu APKs and %s\n", flags.apps, labels_path.c_str());
  return 0;
}

int CmdStudy(const CommonFlags& flags) {
  const android::ApiUniverse universe = MakeUniverse(flags);
  synth::CorpusConfig corpus_config;
  corpus_config.seed = flags.seed;
  synth::CorpusGenerator generator(universe, corpus_config);

  std::printf("study: emulating %zu apps with all %zu APIs hooked...\n", flags.apps,
              universe.num_apis());
  core::StudyConfig study_config;
  study_config.num_apps = flags.apps;
  const core::StudyDataset study = core::RunStudy(universe, generator, study_config);

  core::ApiChecker checker(universe, {});
  checker.TrainFromStudy(study);
  std::printf("trained: %zu key APIs, %u features\n", checker.selection().key_apis.size(),
              checker.schema().num_features());

  auto saved = core::SaveCheckerToFile(checker, flags.model_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.error().c_str());
    return 1;
  }
  std::printf("model written to %s\n", flags.model_path.c_str());
  return 0;
}

int CmdVet(const CommonFlags& flags) {
  const android::ApiUniverse universe = MakeUniverse(flags);
  auto checker = core::LoadCheckerFromFile(universe, flags.model_path);
  if (!checker.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n", checker.error().c_str());
    return 1;
  }
  if (flags.positional.empty()) {
    std::fprintf(stderr, "vet: no .apk files given\n");
    return 2;
  }
  obs::TraceSpan span("cli.vet");

  // Parse everything first, then run the parseable APKs as one device-farm
  // batch (the production shape: N emulators vetting a submission queue).
  int exit_code = 0;
  std::vector<apk::ApkFile> apks;
  std::vector<std::string> errors(flags.positional.size());
  std::vector<int64_t> batch_slot(flags.positional.size(), -1);
  for (size_t i = 0; i < flags.positional.size(); ++i) {
    const std::string& path = flags.positional[i];
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      errors[i] = "cannot open";
      continue;
    }
    const std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                     std::istreambuf_iterator<char>());
    auto apk = apk::ParseApk(bytes);
    if (!apk.ok()) {
      errors[i] = apk.error();
      continue;
    }
    batch_slot[i] = static_cast<int64_t>(apks.size());
    apks.push_back(std::move(*apk));
  }

  emu::FarmConfig farm_config;
  farm_config.engine.kind = emu::EngineKind::kLightweight;
  emu::DeviceFarm farm(universe, farm_config);
  const emu::BatchResult batch = farm.RunBatch(apks, checker->MakeTrackedSet());

  for (size_t i = 0; i < flags.positional.size(); ++i) {
    const std::string& path = flags.positional[i];
    if (batch_slot[i] < 0) {
      std::printf("%-28s ERROR: %s\n", path.c_str(), errors[i].c_str());
      exit_code = 1;
      continue;
    }
    const emu::EmulationReport& report = batch.reports[static_cast<size_t>(batch_slot[i])];
    const core::ApiChecker::Verdict verdict = checker->Classify(report);
    market::RecordReviewOutcome(verdict.malicious
                                    ? market::ReviewOutcome::kRejectedByChecker
                                    : market::ReviewOutcome::kPublished);
    std::printf("%-28s scan=%4.1f min  score=%.3f  %s\n", path.c_str(),
                report.emulation_minutes, verdict.score,
                verdict.malicious ? "MALICIOUS" : "benign");
  }
  if (!apks.empty()) {
    std::printf("farm: %zu apps on %zu emulators, makespan %.1f min (total %.1f min)\n",
                apks.size(), farm.config().num_emulators, batch.makespan_minutes,
                batch.total_emulation_minutes);
  }
  return exit_code;
}

// Replays a synthetic submission trace through the online vetting service:
// fresh corpus submissions mixed with byte-identical resubmissions (digest-
// cache traffic), a mid-run model hot-swap, and a final accounting check of
// the no-lost-submissions invariant.
// `apichecker farm --listen unix:/path` — the worker side of the farm
// fabric: one DeviceFarm behind a framed-RPC endpoint, normally spawned by
// `serve --fabric N` but equally usable standalone on tcp: for a real
// two-machine split. The universe is regenerated from --apis/--seed exactly
// as serve does, and the fabric handshake's universe checksum rejects a
// client whose parameters differ.
int CmdFarm(const CommonFlags& flags) {
  if (flags.listen.empty()) {
    std::fprintf(stderr, "farm: --listen unix:/path or tcp:host:port is required\n");
    return 2;
  }
  // Terminate on SIGTERM/SIGINT via sigwait (async-signal-safe shutdown): the
  // signals are blocked, Start() runs, and the main thread parks until one
  // arrives, then stops the worker so the socket file is unlinked.
  sigset_t term_signals;
  sigemptyset(&term_signals);
  sigaddset(&term_signals, SIGTERM);
  sigaddset(&term_signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &term_signals, nullptr);

  const android::ApiUniverse universe = MakeUniverse(flags);
  fabric::FarmWorkerConfig config;
  config.endpoint = flags.listen;
  config.worker_id = flags.worker_id;
  config.rt_threads = flags.rt_threads;
  config.farm.engine.kind = emu::EngineKind::kLightweight;
  config.farm.farm_id = flags.worker_id;
  config.farm.fault_plan.seed = flags.seed + flags.worker_id;
  config.farm.fault_plan.fault_rate = flags.fault_rate;

  fabric::FarmWorker worker(universe, config);
  auto started = worker.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "farm: cannot start: %s\n", started.error().c_str());
    return 1;
  }
  std::printf("farm: worker %u (pid %d) listening on %s\n", flags.worker_id,
              static_cast<int>(::getpid()), started->ToString().c_str());
  std::fflush(stdout);

  int signo = 0;
  sigwait(&term_signals, &signo);
  worker.Stop();
  std::printf("farm: worker %u stopping (signal %d) — %llu connections, "
              "%llu batches served\n",
              flags.worker_id, signo,
              static_cast<unsigned long long>(worker.connections_accepted()),
              static_cast<unsigned long long>(worker.batches_served()));
  return 0;
}

// Forks and execs `apichecker farm` (via /proc/self/exe) for one fabric
// worker. Returns the child pid, or -1 on fork failure.
pid_t SpawnFarmWorker(const std::string& socket_path, size_t index,
                      const CommonFlags& flags) {
  std::vector<std::string> args = {
      "apichecker",
      "farm",
      "--listen",
      "unix:" + socket_path,
      "--apis",
      std::to_string(flags.apis),
      "--seed",
      std::to_string(flags.seed),
      "--worker-id",
      std::to_string(index),
      "--fault-rate",
      std::to_string(flags.fault_rate),
  };
  const pid_t pid = ::fork();
  if (pid != 0) {
    return pid;
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  argv.push_back(nullptr);
  ::execv("/proc/self/exe", argv.data());
  std::fprintf(stderr, "farm: execv failed: %s\n", std::strerror(errno));
  ::_exit(127);
}

int CmdServe(const CommonFlags& flags) {
  // `serve --listen E` is gateway mode: no synthetic trace — an IngestGateway
  // fronts the service and uploads arrive over the wire until SIGTERM/SIGINT.
  // The signals must be blocked before any service thread spawns so sigwait
  // (not a default disposition in some worker thread) receives them.
  const bool gateway_mode = !flags.listen.empty();
  sigset_t term_signals;
  if (gateway_mode) {
    sigemptyset(&term_signals);
    sigaddset(&term_signals, SIGTERM);
    sigaddset(&term_signals, SIGINT);
    pthread_sigmask(SIG_BLOCK, &term_signals, nullptr);
  }
  const android::ApiUniverse universe = MakeUniverse(flags);
  auto checker = core::LoadCheckerFromFile(universe, flags.model_path);
  if (!checker.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n", checker.error().c_str());
    return 1;
  }
  // Round-trip the model into a blob now: the mid-run hot-swap republishes
  // the same weights as a new snapshot version, so verdicts stay comparable
  // across the swap.
  const std::vector<uint8_t> swap_blob = core::SerializeChecker(*checker);

  serve::ServiceConfig config;
  config.rt_threads = flags.rt_threads;
  config.num_shards = std::max<size_t>(1, flags.shards);
  config.shard_capacity = std::max<size_t>(1, flags.shard_capacity);
  config.overload.shed = flags.shed;
  if (!flags.class_weights.empty()) {
    uint64_t weights[3];
    if (!ParseClassTriple(flags.class_weights.c_str(), weights)) {
      std::fprintf(stderr, "--class-weights wants I,R,B (e.g. 8,3,1)\n");
      return 2;
    }
    for (size_t c = 0; c < serve::kNumPriorityClasses; ++c) {
      config.overload.class_weights[c] = static_cast<uint32_t>(weights[c]);
    }
  }
  if (!flags.slo_ms.empty()) {
    uint64_t slo[3];
    if (!ParseClassTriple(flags.slo_ms.c_str(), slo)) {
      std::fprintf(stderr, "--slo-ms wants I,R,B milliseconds (0 = none)\n");
      return 2;
    }
    for (size_t c = 0; c < serve::kNumPriorityClasses; ++c) {
      config.overload.class_slo[c] = std::chrono::milliseconds(slo[c]);
    }
  }
  if (flags.spill_threshold_kb > 0) {
    ingest::ApkBlob::SetSpillConfig({flags.spill_threshold_kb * 1024, ""});
  }
  config.farm.engine.kind = emu::EngineKind::kLightweight;
  config.scheduler.batch_size = flags.batch;  // 0 = one per emulator.
  config.scheduler.max_linger = std::chrono::milliseconds(flags.linger_ms);
  config.pool.num_farms = std::max<size_t>(1, flags.farms);
  config.pool.fault_plan.seed = flags.seed;
  config.pool.fault_plan.fault_rate = flags.fault_rate;
  // --trace-out with no explicit rate means "trace everything": a CLI run is
  // small and the user asked to see traces. Without --trace-out, tracing
  // stays off unless --trace-sample was given.
  config.trace_sample_rate =
      flags.trace_sample >= 0 ? flags.trace_sample
                              : (flags.trace_out.empty() ? 0.0 : 1.0);
  if (!flags.store_dir.empty()) {
    auto policy = store::ParseFsyncPolicy(flags.fsync_policy);
    if (!policy.ok()) {
      std::fprintf(stderr, "%s\n", policy.error().c_str());
      return 2;
    }
    config.store.dir = flags.store_dir;
    config.store.fsync_policy = *policy;
    config.store.fault_plan.seed = flags.seed;
    config.store.fault_plan.short_write_rate = flags.store_fault_rate;
    config.store.fault_plan.fsync_failure_rate = flags.store_fault_rate;
  }

  // --fabric N: the emulator tier becomes N `apichecker farm` child
  // processes on unix sockets; the pool dispatches over the framed RPC
  // transport instead of in-process farms. Workers inherit --apis/--seed so
  // the handshake's universe checksum matches, and --fault-rate so the fault
  // smoke works identically across local and fabric modes.
  std::vector<pid_t> fabric_pids;
  std::string fabric_dir;
  auto reap_fabric = [&]() {
    for (pid_t pid : fabric_pids) {
      ::kill(pid, SIGTERM);
    }
    for (pid_t pid : fabric_pids) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    fabric_pids.clear();
    if (!fabric_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(fabric_dir, ec);
    }
  };
  if (flags.fabric > 0) {
    fabric_dir = (std::filesystem::temp_directory_path() /
                  ("apichecker_fabric_" + std::to_string(::getpid())))
                     .string();
    std::error_code ec;
    std::filesystem::create_directories(fabric_dir, ec);
    for (size_t i = 0; i < flags.fabric; ++i) {
      const std::string socket_path =
          fabric_dir + "/worker-" + std::to_string(i) + ".sock";
      const pid_t pid = SpawnFarmWorker(socket_path, i, flags);
      if (pid < 0) {
        std::fprintf(stderr, "serve: cannot spawn fabric worker %zu: %s\n", i,
                     std::strerror(errno));
        reap_fabric();
        return 1;
      }
      fabric_pids.push_back(pid);
      config.fabric_endpoints.push_back("unix:" + socket_path);
    }
    // Wait for every worker's socket to appear (bind unlinks-then-creates the
    // file, so existence means the listener is up or a frame away from it;
    // the client's reconnect loop absorbs any remaining race).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (const std::string& endpoint : config.fabric_endpoints) {
      const std::string path = endpoint.substr(5);  // Strip "unix:".
      while (!std::filesystem::exists(path) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    std::printf("serve: fabric — %zu farm worker processes spawned under %s\n",
                flags.fabric, fabric_dir.c_str());
  }

  serve::VettingService service(universe, config, std::move(*checker));

  if (gateway_mode) {
    gateway::GatewayConfig gw_config;
    gw_config.endpoint = flags.listen;
    if (flags.read_deadline_ms > 0) {
      gw_config.read_deadline = std::chrono::milliseconds(flags.read_deadline_ms);
    }
    if (flags.idle_timeout_ms > 0) {
      gw_config.idle_timeout = std::chrono::milliseconds(flags.idle_timeout_ms);
    }
    gw_config.min_bytes_per_sec = flags.min_bps;
    if (flags.max_uploads > 0) {
      gw_config.max_concurrent_uploads = flags.max_uploads;
    }
    gw_config.chunk_bytes = std::max<size_t>(1, flags.chunk_kb) * 1024;

    gateway::IngestGateway gw(service, gw_config);
    auto bound = gw.Start();
    if (!bound.ok()) {
      std::fprintf(stderr, "serve: gateway cannot listen: %s\n",
                   bound.error().c_str());
      service.Shutdown();
      reap_fabric();
      return 1;
    }
    std::printf("serve: gateway (pid %d) listening on %s — read deadline "
                "%lld ms, idle timeout %lld ms, min %.0f B/s, budget %zu "
                "uploads\n",
                static_cast<int>(::getpid()), bound->ToString().c_str(),
                static_cast<long long>(gw_config.read_deadline.count()),
                static_cast<long long>(gw_config.idle_timeout.count()),
                gw_config.min_bytes_per_sec, gw_config.max_concurrent_uploads);
    std::fflush(stdout);

    int signo = 0;
    sigwait(&term_signals, &signo);
    std::printf("serve: gateway draining (signal %d)\n", signo);
    // Order matters: conn threads may be parked in future.get(), which only
    // the live scheduler resolves — the gateway must drain before the
    // service shuts down.
    gw.Stop();
    service.Shutdown();

    const gateway::GatewayStats gs = gw.stats();
    const serve::ServiceStats sstats = service.stats();
    std::printf("serve: gateway — %llu connections, %llu uploads accepted, "
                "%llu completed (%llu early, %llu resumed-by-digest), "
                "%llu aborted, %llu slow-loris evictions, %llu bytes in\n",
                static_cast<unsigned long long>(gs.connections),
                static_cast<unsigned long long>(gs.accepted),
                static_cast<unsigned long long>(gs.completed),
                static_cast<unsigned long long>(gs.early_verdicts),
                static_cast<unsigned long long>(gs.resumed_by_digest),
                static_cast<unsigned long long>(gs.aborted),
                static_cast<unsigned long long>(gs.slow_loris_disconnects),
                static_cast<unsigned long long>(gs.bytes_received));
    std::printf("serve: gateway — %llu verdicts sent, %llu verdict send "
                "failures\n",
                static_cast<unsigned long long>(gs.verdicts_sent),
                static_cast<unsigned long long>(gs.verdict_send_failures));
    const bool balanced = gs.Balanced();
    const bool service_ok = sstats.accepted == sstats.resolved();
    std::printf("serve: gateway invariant accepted == completed + aborted: %s\n",
                balanced ? "OK" : "VIOLATED");
    std::printf("serve: invariant accepted == resolved: %s\n",
                service_ok ? "OK" : "VIOLATED");
    reap_fabric();
    return balanced && service_ok ? 0 : 1;
  }

  // Build the trace up front so submission pacing measures the service, not
  // APK synthesis. ~20% of the trace resubmits an earlier APK byte-for-byte
  // (its blob handle is shared — the bytes exist once). Every blob enters
  // through the chunked streaming reader, hashing incrementally as the
  // production frontend would while an upload arrives. --large-every N pads
  // every Nth distinct APK to ~--large-kb KB so the size-bucketed admission
  // histograms get a "large" population.
  const size_t chunk_bytes = std::max<size_t>(1, flags.chunk_kb) * 1024;
  auto ingest_blob = [&](const std::vector<uint8_t>& bytes)
      -> util::Result<ingest::ApkBlob> {
    ingest::MemoryStreamReader reader(bytes);
    return ingest::ReadApkBlob(reader, chunk_bytes);
  };
  synth::CorpusConfig corpus_config;
  corpus_config.seed = flags.seed ^ 0x5e7e;
  synth::CorpusGenerator generator(universe, corpus_config);
  util::Rng resubmit_rng(flags.seed ^ 0xca11);
  std::vector<ingest::ApkBlob> trace;
  trace.reserve(flags.apps);
  size_t resubmissions = 0;
  size_t padded = 0;
  size_t fresh = 0;
  for (size_t i = 0; i < flags.apps; ++i) {
    if (!trace.empty() && resubmit_rng.NextDouble() < 0.20) {
      trace.push_back(trace[resubmit_rng.NextBounded(trace.size())]);
      ++resubmissions;
      continue;
    }
    std::vector<uint8_t> bytes = synth::BuildApkBytes(generator.Next(), universe);
    ++fresh;
    if (flags.large_every > 0 && fresh % flags.large_every == 0) {
      auto inflated = apk::PadApk(bytes, flags.large_kb * 1024, flags.seed ^ fresh);
      if (inflated.ok()) {
        bytes = std::move(*inflated);
        ++padded;
      }
    }
    auto blob = ingest_blob(bytes);
    if (!blob.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", blob.error().c_str());
      return 1;
    }
    trace.push_back(std::move(*blob));
  }
  // Positional .apk files stream straight from disk through the same chunked
  // reader and are prepended to the trace.
  for (auto it = flags.positional.rbegin(); it != flags.positional.rend(); ++it) {
    auto blob = ingest::ReadApkBlobFromFile(*it, chunk_bytes);
    if (!blob.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", blob.error().c_str());
      return 1;
    }
    trace.insert(trace.begin(), std::move(*blob));
  }
  std::printf("serve: replaying %zu submissions (%zu byte-identical resubmissions, "
              "%zu padded large) on %zu shards, %zu farms, batch %zu, linger %zu ms, "
              "fault rate %.2f, chunk %zu KB\n",
              trace.size(), resubmissions, padded, config.num_shards,
              config.pool.num_farms,
              config.scheduler.batch_size == 0 ? config.farm.num_emulators
                                               : config.scheduler.batch_size,
              flags.linger_ms, flags.fault_rate, chunk_bytes / 1024);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<serve::VettingResult>> futures;
  futures.reserve(trace.size());
  size_t rejected_at_submit = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i == trace.size() / 2) {
      // Drain the first half before swapping so its verdicts land stamped
      // with snapshot v1. A fresh boot serves v1 again and warm-starts only
      // v1 records (v2 is stale-skipped), so the restart smoke needs v1
      // verdicts in the store; swapping with the first half still in flight
      // leaves the v1/v2 split to scheduler timing — occasionally zero v1
      // records. The swap-vs-in-flight pinning race itself is covered by
      // bench_serve_throughput and test_serve.
      for (auto& future : futures) {
        future.wait();
      }
      auto swapped = service.SwapModelFromBlob(swap_blob);
      if (swapped.ok()) {
        std::printf("serve: hot-swapped model mid-trace -> snapshot v%u\n", *swapped);
      } else {
        std::fprintf(stderr, "hot swap failed: %s\n", swapped.error().c_str());
      }
      // --fabric-kill-one: SIGKILL (not SIGTERM — no goodbye frame, the
      // heartbeat has to notice) the last worker mid-trace. The breaker must
      // open on the missed heartbeat and the remaining workers absorb the
      // rest of the trace; the accepted == resolved invariant below proves no
      // acknowledged submission was lost to the dead process.
      if (flags.fabric_kill_one && !fabric_pids.empty()) {
        const pid_t victim = fabric_pids.back();
        ::kill(victim, SIGKILL);
        std::printf("serve: fabric — SIGKILLed worker %zu (pid %d) mid-trace\n",
                    fabric_pids.size() - 1, static_cast<int>(victim));
      }
    }
    serve::Submission submission;
    submission.blob = trace[i];
    // Class mix: a trickle of interactive (1/16) and rescan (1/16) riding on
    // a bulk backlog — the storm shape the overload layer is built for.
    submission.priority = i % 16 == 0   ? serve::Priority::kInteractive
                          : i % 16 == 8 ? serve::Priority::kRescan
                                        : serve::Priority::kBulk;
    auto accepted = service.Submit(std::move(submission));
    if (accepted.ok()) {
      futures.push_back(std::move(*accepted));
    } else {
      ++rejected_at_submit;
    }
  }

  size_t malicious = 0, benign = 0, cache_hits = 0, expired = 0, parse_errors = 0;
  size_t unhealthy = 0, shed = 0;
  for (auto& future : futures) {
    const serve::VettingResult result = future.get();
    switch (result.status) {
      case serve::VetStatus::kOk:
        (result.malicious ? malicious : benign) += 1;
        cache_hits += result.from_cache ? 1 : 0;
        break;
      case serve::VetStatus::kDeadlineExpired:
        ++expired;
        break;
      case serve::VetStatus::kParseError:
        ++parse_errors;
        break;
      case serve::VetStatus::kRejectedUnhealthy:
        ++unhealthy;
        break;
      case serve::VetStatus::kShedOverload:
        ++shed;
        break;
      case serve::VetStatus::kAbortedUpload:
        // Only the gateway path produces aborted uploads; the in-process
        // trace replay cannot.
        break;
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  service.Shutdown();

  const serve::ServiceStats stats = service.stats();
  const obs::HistogramSnapshot e2e = obs::MetricsRegistry::Default()
                                         .histogram(obs::names::kServeE2eLatencyMs)
                                         .Snapshot();
  std::printf("serve: accepted %llu, rejected %llu (backpressure)\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.rejected));
  std::printf("serve: verdicts %zu malicious / %zu benign; %zu cache hits, "
              "%zu expired, %zu parse errors, %zu rejected-unhealthy, "
              "%zu shed, %llu batches\n",
              malicious, benign, cache_hits, expired, parse_errors, unhealthy,
              shed, static_cast<unsigned long long>(stats.batches));
  for (size_t c = 0; c < serve::kNumPriorityClasses; ++c) {
    const auto priority = static_cast<serve::Priority>(c);
    std::printf("serve:   class %-11s — %llu accepted, %llu completed, "
                "%llu expired, %llu shed\n",
                serve::PriorityName(priority),
                static_cast<unsigned long long>(stats.accepted_by_class[c]),
                static_cast<unsigned long long>(stats.completed_by_class[c]),
                static_cast<unsigned long long>(stats.expired_by_class[c]),
                static_cast<unsigned long long>(stats.shed_by_class[c]));
  }
  if (flags.shed) {
    std::printf("serve: overload — pressure state %s, %llu transitions, "
                "%llu shed total\n",
                serve::PressureStateName(service.pressure_state()),
                static_cast<unsigned long long>(service.pressure_transitions()),
                static_cast<unsigned long long>(stats.shed_overload));
  }
  if (flags.spill_threshold_kb > 0) {
    obs::MetricsRegistry& spill_reg = obs::MetricsRegistry::Default();
    std::printf("serve: spill — %llu blobs spilled to disk (threshold %zu KB, "
                "%llu failures), %llu KB still mapped\n",
                static_cast<unsigned long long>(
                    spill_reg.counter(obs::names::kIngestBlobsSpilledTotal).value()),
                flags.spill_threshold_kb,
                static_cast<unsigned long long>(
                    spill_reg.counter(obs::names::kIngestSpillFailuresTotal).value()),
                static_cast<unsigned long long>(ingest::ApkBlob::SpilledBytes() /
                                                1024));
  }
  const serve::FarmPoolStats pool_stats = service.farm_pool_stats();
  std::printf("serve: farm pool — %llu routed, %llu faults, %llu retries, "
              "%llu rejected batches, %zu/%zu farms healthy\n",
              static_cast<unsigned long long>(pool_stats.batches_routed),
              static_cast<unsigned long long>(pool_stats.faults),
              static_cast<unsigned long long>(pool_stats.retries),
              static_cast<unsigned long long>(pool_stats.rejected_batches),
              pool_stats.healthy_farms, pool_stats.farms.size());
  for (const serve::FarmStats& farm : pool_stats.farms) {
    // Breaker opens are split by cause: "fault" is the farm itself (emulation
    // faults tripping the streak or a failed probe), "conn-loss" is the
    // fabric link (missed heartbeat, EOF, connect failure) — a sick farm and
    // a severed worker need different operator responses.
    std::printf("serve:   farm %u — %llu batches, %llu faults, %llu retries "
                "absorbed, %llu breaker opens (%llu fault, %llu conn-loss), "
                "busy %.1f min, breaker %s%s\n",
                farm.farm_id, static_cast<unsigned long long>(farm.batches_completed),
                static_cast<unsigned long long>(farm.faults),
                static_cast<unsigned long long>(farm.retries_absorbed),
                static_cast<unsigned long long>(farm.breaker_opens),
                static_cast<unsigned long long>(farm.breaker_opens_fault),
                static_cast<unsigned long long>(farm.breaker_opens_conn),
                farm.busy_minutes, serve::BreakerStateName(farm.breaker),
                farm.conn_lost ? " [link down]" : "");
  }
  if (flags.fabric > 0) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    std::printf("serve: fabric — %llu handshakes (%llu failed), %llu heartbeats "
                "(%llu missed), %llu disconnects, %llu reconnects, %llu model "
                "syncs, %llu/%llu frames sent/received, %llu protocol errors\n",
                static_cast<unsigned long long>(
                    reg.counter(obs::names::kFabricHandshakesTotal).value()),
                static_cast<unsigned long long>(
                    reg.counter(obs::names::kFabricHandshakeFailuresTotal).value()),
                static_cast<unsigned long long>(
                    reg.counter(obs::names::kFabricHeartbeatsTotal).value()),
                static_cast<unsigned long long>(
                    reg.counter(obs::names::kFabricHeartbeatMissesTotal).value()),
                static_cast<unsigned long long>(
                    reg.counter(obs::names::kFabricDisconnectsTotal).value()),
                static_cast<unsigned long long>(
                    reg.counter(obs::names::kFabricReconnectsTotal).value()),
                static_cast<unsigned long long>(
                    reg.counter(obs::names::kFabricModelSyncsTotal).value()),
                static_cast<unsigned long long>(
                    reg.counter(obs::names::kFabricFramesSentTotal).value()),
                static_cast<unsigned long long>(
                    reg.counter(obs::names::kFabricFramesReceivedTotal).value()),
                static_cast<unsigned long long>(
                    reg.counter(obs::names::kFabricProtocolErrorsTotal).value()));
  }
  std::printf("serve: model swaps %llu (serving v%u)\n",
              static_cast<unsigned long long>(stats.model_swaps),
              service.model_version());
  if (const store::VerdictStore* store = service.verdict_store()) {
    const store::StoreStats ss = store->stats();
    std::printf("serve: verdict store — %zu segments, %llu live / %llu dead "
                "records, %llu appends (%llu errors), %llu fsyncs "
                "(%llu failures), %llu compactions, policy %s%s\n",
                ss.segments, static_cast<unsigned long long>(ss.live_records),
                static_cast<unsigned long long>(ss.dead_records),
                static_cast<unsigned long long>(ss.appends),
                static_cast<unsigned long long>(ss.append_errors),
                static_cast<unsigned long long>(ss.fsyncs),
                static_cast<unsigned long long>(ss.fsync_failures),
                static_cast<unsigned long long>(ss.compactions),
                store::FsyncPolicyName(store->config().fsync_policy),
                ss.failed ? " [DEAD: injected crash, reopen to recover]" : "");
    std::printf("serve: store recovery — %zu segments scanned, %llu records "
                "replayed, %llu tails truncated (%llu bytes), %zu quarantined; "
                "%llu warm-start cache hits this run\n",
                ss.recovery.segments_scanned,
                static_cast<unsigned long long>(ss.recovery.records_recovered),
                static_cast<unsigned long long>(ss.recovery.tails_truncated),
                static_cast<unsigned long long>(ss.recovery.bytes_truncated),
                ss.recovery.segments_quarantined,
                static_cast<unsigned long long>(stats.warm_start_hits));
  }
  std::printf("serve: %.0f submissions/sec sustained; e2e latency p50 %.1f ms, "
              "p99 %.1f ms\n",
              elapsed_s > 0 ? static_cast<double>(futures.size()) / elapsed_s : 0.0,
              e2e.Quantile(0.50), e2e.Quantile(0.99));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  std::printf("serve: ingest — %llu blobs, %llu bytes in %llu chunks "
              "(%zu KB each), %llu SHA-1 passes, pool peak %llu KB\n",
              static_cast<unsigned long long>(
                  registry.counter(obs::names::kIngestBlobsTotal).value()),
              static_cast<unsigned long long>(
                  registry.counter(obs::names::kIngestBytesStreamedTotal).value()),
              static_cast<unsigned long long>(
                  registry.counter(obs::names::kIngestChunksTotal).value()),
              chunk_bytes / 1024,
              static_cast<unsigned long long>(
                  registry.counter(obs::names::kServeHashOpsTotal).value()),
              static_cast<unsigned long long>(ingest::ApkBlob::PoolPeakBytes() / 1024));
  std::printf("serve: admission — p99 %.3f ms overall; by size:",
              registry.histogram(obs::names::kServeAdmissionLatencyMs).Quantile(0.99));
  for (const char* bucket : {"small", "medium", "large"}) {
    const obs::HistogramSnapshot snap =
        registry
            .histogram(serve::AdmissionSeriesName(obs::names::kServeAdmissionLatencyMs,
                                                  bucket))
            .Snapshot();
    std::printf(" %s p99 %.3f ms (%llu)", bucket, snap.Quantile(0.99),
                static_cast<unsigned long long>(snap.count));
  }
  std::printf("; fast-path cache hits %llu\n",
              static_cast<unsigned long long>(
                  registry.counter(obs::names::kServeCacheFastpathHitsTotal).value()));

  const bool no_lost = stats.accepted == stats.resolved();
  std::printf("serve: invariant accepted == resolved: %s\n", no_lost ? "OK" : "VIOLATED");
  (void)rejected_at_submit;

  bool io_ok = true;
  obs::TraceCollector& collector = obs::TraceCollector::Default();
  if (!flags.trace_out.empty()) {
    const std::vector<obs::Trace> traces = collector.Completed();
    auto written = obs::WriteTraceFile(flags.trace_out, traces, flags.force);
    if (!written.ok()) {
      std::fprintf(stderr, "trace dump failed: %s\n", written.error().c_str());
      io_ok = false;
    } else {
      std::printf("serve: %zu traces written to %s (%llu spans recorded, "
                  "%llu dropped)\n",
                  traces.size(), flags.trace_out.c_str(),
                  static_cast<unsigned long long>(collector.spans_recorded()),
                  static_cast<unsigned long long>(collector.spans_dropped()));
      // Tail sampler: the slowest complete traces survive ring recycling, so
      // a long run's worst-case submissions are always explainable.
      const std::vector<obs::Trace> slowest = collector.Slowest();
      const size_t show = std::min<size_t>(3, slowest.size());
      for (size_t i = 0; i < show; ++i) {
        std::string stages;
        for (const obs::StageMs& stage : slowest[i].breakdown) {
          stages += util::StrFormat(" %s=%.2fms", stage.stage.c_str(), stage.ms);
        }
        std::printf("serve: slow trace #%llu (%s, %.2f ms total):%s\n",
                    static_cast<unsigned long long>(slowest[i].trace_id),
                    slowest[i].status.c_str(), slowest[i].total_ms,
                    stages.c_str());
      }
    }
  }
  if (!flags.bench_out.empty()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    obs::BenchReport report;
    report.bench = "serve_cli";
    report.git_rev = obs::GitRevisionOrUnknown();
    report.submissions = futures.size();
    report.wall_s = elapsed_s;
    report.throughput_per_sec =
        elapsed_s > 0 ? static_cast<double>(futures.size()) / elapsed_s : 0.0;
    report.sample_rate = config.trace_sample_rate;
    report.traces_completed = collector.traces_completed();
    report.peak_rss_mb = obs::PeakRssMb();
    report.peak_blob_pool_mb =
        static_cast<double>(ingest::ApkBlob::PoolPeakBytes()) / (1024.0 * 1024.0);
    report.rt_tasks_total = static_cast<uint64_t>(
        reg.counter(obs::names::kRtTasksTotal).value());
    report.rt_tasks_per_sec =
        elapsed_s > 0 ? static_cast<double>(report.rt_tasks_total) / elapsed_s
                      : 0.0;
    report.rt_steal_ratio =
        report.rt_tasks_total > 0
            ? reg.counter(obs::names::kRtStealsTotal).value() /
                  static_cast<double>(report.rt_tasks_total)
            : 0.0;
    report.rt_timer_lag_p99_ms =
        reg.histogram(obs::names::kRtTimerLagMs).Snapshot().Quantile(0.99);
    report.rt_process_threads_peak = static_cast<uint64_t>(
        reg.gauge(obs::names::kRtProcessThreadsPeak).value());
    report.stages["rt_timer_lag"] =
        obs::StageFromHistogram(reg, obs::names::kRtTimerLagMs);
    report.stages["admission"] =
        obs::StageFromHistogram(reg, obs::names::kServeAdmissionLatencyMs);
    report.stages["e2e"] =
        obs::StageFromHistogram(reg, obs::names::kServeE2eLatencyMs);
    report.stages["traced_e2e"] =
        obs::StageFromHistogram(reg, obs::names::kServeTracedE2eMs);
    for (const char* stage :
         {obs::stages::kSubmit, obs::stages::kShard, obs::stages::kBatch,
          obs::stages::kFarm, obs::stages::kClassify, obs::stages::kStore,
          obs::stages::kResolve}) {
      report.stages[stage] =
          obs::StageFromHistogram(reg, obs::StageHistogramName(stage));
    }
    auto written = obs::WriteBenchReport(flags.bench_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "bench report write failed: %s\n",
                   written.error().c_str());
      io_ok = false;
    } else {
      std::printf("serve: bench report written to %s\n", flags.bench_out.c_str());
    }
  }
  reap_fabric();
  return no_lost && io_ok ? 0 : 1;
}

int CmdMarket(const CommonFlags& flags) {
  android::ApiUniverse universe = MakeUniverse(flags);
  market::MarketConfig config;
  config.months = flags.months;
  config.days_per_month = 8;
  config.apps_per_day = std::max<size_t>(20, flags.apps / (config.months * 8));
  config.initial_study_apps = std::max<size_t>(1'000, flags.apps);
  config.seed = flags.seed;

  market::MarketSimulation sim(universe, config);
  const auto months = sim.Run();
  std::printf("%-6s %-10s %-8s %-8s %-10s %-9s %-9s\n", "month", "submitted", "P", "R",
              "key APIs", "scan min", "promoted");
  for (const market::MonthlyStats& m : months) {
    std::printf("%-6zu %-10llu %-8s %-8s %-10zu %-9.2f %-9s\n", m.month,
                static_cast<unsigned long long>(m.submitted),
                util::FormatPercent(m.checker_cm.Precision()).c_str(),
                util::FormatPercent(m.checker_cm.Recall()).c_str(), m.key_api_count,
                m.avg_scan_minutes, m.model_promoted ? "yes" : "ROLLBACK");
  }
  std::printf("model registry: %zu archived, %zu rejected by the guard\n",
              sim.registry().history().size(), sim.registry().rejections());
  return 0;
}

// `apichecker submit --connect E` — the uploading client of the ingest
// gateway. Streams positional .apk files (or --uploads synthetic APKs) as
// framed chunks with capped-backoff retry and resume-by-digest; the
// --stall-at/--disconnect-at/--torn-at/--corrupt-at/--throttle-bps flags
// script a deterministic NetFaultPlan against each upload, making this the
// hostile-client harness for a gateway started with `serve --listen`.
int CmdSubmit(const CommonFlags& flags) {
  if (flags.connect.empty()) {
    std::fprintf(stderr,
                 "submit: --connect unix:/path or tcp:host:port is required\n");
    return 2;
  }
  uint8_t priority = 2;
  if (flags.priority == "interactive") {
    priority = 0;
  } else if (flags.priority == "rescan") {
    priority = 1;
  } else if (flags.priority == "bulk") {
    priority = 2;
  } else {
    std::fprintf(stderr, "submit: --priority wants interactive|rescan|bulk\n");
    return 2;
  }

  gateway::NetFaultPlan plan;
  plan.seed = flags.seed;
  plan.stall_rate = flags.stall_rate;
  plan.stall_ms = std::chrono::milliseconds(flags.stall_ms);
  plan.throttle_from = flags.throttle_from;
  plan.throttle_bytes_per_sec = flags.throttle_bps;
  struct OrdinalFlag {
    const char* name;
    const std::string* text;
    std::vector<uint64_t>* out;
  };
  const OrdinalFlag ordinal_flags[] = {
      {"--stall-at", &flags.stall_at, &plan.stall_before},
      {"--disconnect-at", &flags.disconnect_at, &plan.disconnect_after},
      {"--torn-at", &flags.torn_at, &plan.torn_frame_at},
      {"--corrupt-at", &flags.corrupt_at, &plan.corrupt_at},
  };
  for (const OrdinalFlag& flag : ordinal_flags) {
    if (!flag.text->empty() && !ParseOrdinalList(flag.text->c_str(), *flag.out)) {
      std::fprintf(stderr,
                   "submit: %s wants comma-separated 1-based chunk ordinals\n",
                   flag.name);
      return 2;
    }
  }

  // Bodies: positional .apk files verbatim, else --uploads synthetic APKs
  // from the seeded corpus generator (same universe/seed rules as serve).
  std::vector<std::vector<uint8_t>> bodies;
  if (!flags.positional.empty()) {
    for (const std::string& path : flags.positional) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "submit: cannot read %s\n", path.c_str());
        return 1;
      }
      bodies.emplace_back(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
    }
  } else {
    const android::ApiUniverse universe = MakeUniverse(flags);
    synth::CorpusConfig corpus_config;
    corpus_config.seed = flags.seed ^ 0x5e7e;
    synth::CorpusGenerator generator(universe, corpus_config);
    for (size_t i = 0; i < flags.uploads; ++i) {
      bodies.push_back(synth::BuildApkBytes(generator.Next(), universe));
    }
  }

  gateway::UploadClientConfig config;
  config.endpoint = flags.connect;
  config.chunk_bytes = std::max<size_t>(1, flags.chunk_kb) * 1024;
  config.priority = priority;
  config.max_attempts = std::max<size_t>(1, flags.attempts);
  config.jitter_seed = flags.seed;
  config.fault_plan = plan;

  std::printf("submit: %zu uploads to %s (chunk %zu KB, priority %s, "
              "%zu attempts max%s)\n",
              bodies.size(), flags.connect.c_str(), config.chunk_bytes / 1024,
              flags.priority.c_str(), config.max_attempts,
              plan.enabled() ? ", fault plan armed" : "");

  size_t resolved = 0, failed = 0, malicious = 0;
  size_t early = 0, resumed = 0, retried = 0;
  for (size_t i = 0; i < bodies.size(); ++i) {
    // Each upload gets its own injector seed so random stalls decorrelate;
    // scripted ordinals replay identically against every body.
    config.fault_plan.seed = plan.seed + i;
    config.jitter_seed = flags.seed + i;
    gateway::UploadClient client(config);
    auto outcome = client.Upload(bodies[i]);
    if (!outcome.ok()) {
      ++failed;
      std::printf("submit: upload %zu FAILED — %s\n", i, outcome.error().c_str());
      continue;
    }
    ++resolved;
    malicious += outcome->verdict.malicious ? 1 : 0;
    early += outcome->early_verdict ? 1 : 0;
    resumed += outcome->resumed_by_digest ? 1 : 0;
    retried += outcome->attempts > 1 ? 1 : 0;
    const auto status = static_cast<serve::VetStatus>(outcome->verdict.status);
    std::printf("submit: upload %zu — %s%s, %zu attempt%s, %llu bytes sent%s%s\n",
                i, serve::VetStatusName(status),
                status == serve::VetStatus::kOk
                    ? (outcome->verdict.malicious ? " MALICIOUS" : " benign")
                    : "",
                outcome->attempts, outcome->attempts == 1 ? "" : "s",
                static_cast<unsigned long long>(outcome->bytes_sent),
                outcome->early_verdict ? ", early verdict" : "",
                outcome->resumed_by_digest ? " (resumed by digest)" : "");
  }
  std::printf("submit: %zu/%zu resolved (%zu malicious), %zu retried, "
              "%zu early verdicts, %zu resumed by digest, %zu failed\n",
              resolved, bodies.size(), malicious, retried, early, resumed,
              failed);
  return failed == 0 ? 0 : 1;
}

void PrintUsage() {
  std::printf(
      "usage: apichecker <command> [flags]\n"
      "commands:\n"
      "  universe   print framework-model statistics\n"
      "  corpus     synthesize .apk files to a directory (--apps, --out)\n"
      "  study      run the track-all study and save a model (--apps, --model)\n"
      "  vet        scan .apk files with a saved model (--model, files...)\n"
      "  serve      replay a synthetic trace through the online vetting service\n"
      "             (--model, --apps, --shards, --batch, --linger-ms,\n"
      "              --farms M, --fault-rate P for multi-farm fault injection;\n"
      "              --store-dir D persists verdicts across restarts,\n"
      "              --fsync-policy every|group|buffered, --store-fault-rate P\n"
      "              injects store short-writes/fsync failures;\n"
      "              --fabric N spawns N farm worker processes and dispatches\n"
      "              over the fabric RPC transport, --fabric-kill-one SIGKILLs\n"
      "              one mid-trace to exercise heartbeat breakers + failover;\n"
      "              --shed turns on watermark load shedding (bulk first,\n"
      "              interactive never), --shard-capacity N per-class lane\n"
      "              depth, --class-weights I,R,B weighted-fair pop shares,\n"
      "              --slo-ms I,R,B per-class default deadlines (0 = none),\n"
      "              --spill-threshold-kb K spills blobs >= K KB to disk so\n"
      "              the blob pool bounds RSS under a storm;\n"
      "              --listen unix:/path|tcp:host:port skips the trace and\n"
      "              fronts the service with the network ingest gateway until\n"
      "              SIGTERM — tune with --read-deadline-ms, --idle-timeout-ms,\n"
      "              --min-bps (slow-loris floor), --max-uploads, --chunk-kb)\n"
      "  submit     upload .apk files (or --uploads N synthetic) to a gateway\n"
      "             (--connect unix:/path|tcp:host:port, --priority\n"
      "              interactive|rescan|bulk, --attempts N retries with capped\n"
      "              backoff + resume-by-digest; hostile-client fault plan:\n"
      "              --stall-at 2,5 --stall-ms 500 --stall-rate P\n"
      "              --disconnect-at 3 --torn-at 4 --corrupt-at 6\n"
      "              --throttle-from 1 --throttle-bps 1024, ordinals 1-based\n"
      "              per-chunk)\n"
      "  farm       run one fabric farm worker (--listen unix:/path|tcp:host:port,\n"
      "              --worker-id N; --apis/--seed must match the serve front end)\n"
      "  market     run the deployment simulation (--months, --apps)\n"
      "common flags: --apis N (default 30000), --seed S (default 42),\n"
      "              --metrics-out FILE (dump metrics JSON; .prom for Prometheus),\n"
      "              --rt-threads N (unified-runtime executor threads for\n"
      "              serve/farm; 0 = auto-size to cores with a farm-dispatch\n"
      "              floor)\n"
      "environment:  APICHECKER_LOG_LEVEL=debug|info|warn|error,\n"
      "              APICHECKER_LOG_FORMAT=text|json\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  const CommonFlags flags = ParseFlags(argc, argv, 2);
  int exit_code = 2;
  if (command == "universe") {
    exit_code = CmdUniverse(flags);
  } else if (command == "corpus") {
    exit_code = CmdCorpus(flags);
  } else if (command == "study") {
    exit_code = CmdStudy(flags);
    PrintStatsSummary();
  } else if (command == "vet") {
    exit_code = CmdVet(flags);
    PrintStatsSummary();
  } else if (command == "serve") {
    exit_code = CmdServe(flags);
    PrintStatsSummary();
  } else if (command == "submit") {
    exit_code = CmdSubmit(flags);
    PrintStatsSummary();
  } else if (command == "farm") {
    exit_code = CmdFarm(flags);
  } else if (command == "market") {
    exit_code = CmdMarket(flags);
    PrintStatsSummary();
  } else {
    PrintUsage();
    return 2;
  }
  if (!MaybeWriteMetrics(flags) && exit_code == 0) {
    exit_code = 1;
  }
  return exit_code;
}
