#!/bin/sh
# End-to-end CLI smoke test: corpus -> study -> vet on real files.
set -e
CLI="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

"$CLI" universe --apis 8000 --seed 7 > "$DIR/universe.txt"
grep -q "APIs *: 8000" "$DIR/universe.txt"

"$CLI" corpus --apis 8000 --seed 7 --apps 6 --out "$DIR/apks"
[ "$(ls "$DIR"/apks/*.apk | wc -l)" = "6" ]
[ -f "$DIR/apks/labels.csv" ]

"$CLI" study --apis 8000 --seed 7 --apps 400 --model "$DIR/model.bin"
[ -s "$DIR/model.bin" ]

# Verdicts end the per-file line, so anchor to end-of-line (the stats summary
# also mentions metric names like apichecker_core_verdict_benign_total).
"$CLI" vet --apis 8000 --seed 7 --model "$DIR/model.bin" \
       --metrics-out "$DIR/metrics.json" "$DIR"/apks/*.apk > "$DIR/verdicts.txt"
[ "$(grep -cE '(benign|MALICIOUS)$' "$DIR/verdicts.txt")" = "6" ]

# The metrics dump must carry the farm, classifier, and review-outcome series.
grep -q 'apichecker_emu_farm_makespan_minutes' "$DIR/metrics.json"
grep -q 'apichecker_emu_app_minutes' "$DIR/metrics.json"
grep -q 'apichecker_core_classify_latency_us' "$DIR/metrics.json"
grep -q 'apichecker_core_verdict_malicious_total' "$DIR/metrics.json"
grep -q 'apichecker_market_outcome_published_total' "$DIR/metrics.json"

# Online serving: replay a small trace through the vetting service. The run
# must keep the no-lost-submissions invariant and dump the serve series.
"$CLI" serve --apis 8000 --seed 7 --apps 40 --model "$DIR/model.bin" \
       --metrics-out "$DIR/serve_metrics.json" > "$DIR/serve.txt"
grep -q "invariant accepted == resolved: OK" "$DIR/serve.txt"
grep -q "hot-swapped model mid-trace" "$DIR/serve.txt"
grep -q 'apichecker_serve_submissions_total' "$DIR/serve_metrics.json"
grep -q 'apichecker_serve_e2e_latency_ms' "$DIR/serve_metrics.json"

# Vet must fail cleanly on garbage input.
echo "not an apk" > "$DIR/garbage.apk"
if "$CLI" vet --apis 8000 --seed 7 --model "$DIR/model.bin" "$DIR/garbage.apk" | grep -q ERROR; then
  echo "CLI OK"
else
  echo "garbage handling failed" >&2
  exit 1
fi
