#!/bin/sh
# Tier-1 verification script: configure, build, and run the full ctest suite,
# then rebuild the observability tests under AddressSanitizer.
#
# Usage: sh tools/ci.sh [--no-asan]
set -e

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
ASAN=1
[ "${1:-}" = "--no-asan" ] && ASAN=0

echo "=== tier-1: configure + build ==="
cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j

echo "=== tier-1: ctest ==="
(cd "$ROOT/build" && ctest --output-on-failure -j)

if [ "$ASAN" = "1" ]; then
  echo "=== asan: build + run test_obs ==="
  cmake -B "$ROOT/build-asan" -S "$ROOT" -DAPICHECKER_SANITIZE=address >/dev/null
  cmake --build "$ROOT/build-asan" -j --target test_obs
  "$ROOT/build-asan/tests/test_obs"
fi

echo "CI OK"
