#!/bin/sh
# Tier-1 verification script: configure, build, and run the full ctest suite,
# then a serving-layer smoke test of the CLI (trace replay + metrics dump),
# then a fault-injected multi-farm smoke (3 farms, 20% fault rate: failover
# must absorb every fault with zero lost submissions), then a verdict-store
# restart smoke (serve, kill, re-serve the same --store-dir: recovery must
# replay records and the warmed cache must produce hits), then an ingest
# admission-latency smoke (mixed ~64KB/~8MB APKs through the chunked reader:
# the large bucket's Submit() p99 must stay within 2x of the small bucket's),
# then an overload-control storm smoke (shedding on against one small shard:
# bulk sheds, interactive never, the SLO holds, blobs spill, nothing lost),
# then a network-ingest gateway smoke (serve --listen driven by hostile
# `apichecker submit` clients: scripted stalls past the read deadline and a
# mid-upload SIGKILL, with the extended drain invariant
# uploads_accepted == completed + aborted asserted over the metrics dump),
# then a steady-state thread-count gate (the unified runtime keeps process
# threads O(cores): the peak thread gauge must stay flat as concurrent upload
# clients quadruple),
# then rebuild the concurrency-sensitive tests under AddressSanitizer and —
# unless skipped —
# run the stress-labelled suites (farm-pool fault injection + the serve and
# store soak tests) under ThreadSanitizer.
#
# Usage: sh tools/ci.sh [--no-asan] [--no-tsan]
set -e

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
ASAN=1
TSAN=1
for arg in "$@"; do
  [ "$arg" = "--no-asan" ] && ASAN=0
  [ "$arg" = "--no-tsan" ] && TSAN=0
done

echo "=== tier-1: configure + build ==="
cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j

echo "=== tier-1: ctest ==="
(cd "$ROOT/build" && ctest --output-on-failure -j)

echo "=== serve: CLI smoke (trace replay + metrics) ==="
SERVE_TMP=$(mktemp -d)
trap 'rm -rf "$SERVE_TMP"' EXIT
"$ROOT/build/tools/apichecker" study --apps 800 --apis 8000 \
  --model "$SERVE_TMP/model.bin" >/dev/null
"$ROOT/build/tools/apichecker" serve --apps 60 --apis 8000 \
  --model "$SERVE_TMP/model.bin" --metrics-out "$SERVE_TMP/metrics.json" \
  | grep "invariant accepted == resolved: OK"
for series in apichecker_serve_submissions_total apichecker_serve_batches_total \
              apichecker_serve_cache_hits_total apichecker_serve_model_swaps_total \
              apichecker_serve_e2e_latency_ms; do
  grep -q "$series" "$SERVE_TMP/metrics.json" || {
    echo "missing metric series: $series"; exit 1; }
done
echo "serve smoke OK (metrics dump carries the apichecker_serve_* series)"

echo "=== stress: fault-injected multi-farm serve smoke ==="
# 3 farms with a 20% per-batch fault rate: the pool must retry faulted batches
# on healthy farms (retries > 0 in the metrics dump) and still lose nothing
# (the CLI exits non-zero if accepted != resolved).
"$ROOT/build/tools/apichecker" serve --apps 160 --apis 8000 --batch 4 \
  --model "$SERVE_TMP/model.bin" --farms 3 --fault-rate 0.2 \
  --metrics-out "$SERVE_TMP/metrics-faulted.json" \
  | grep "invariant accepted == resolved: OK"
# Integer counters serialize bare in the JSON dump, so a nonzero value is
# simply a leading digit 1-9.
grep -q '"apichecker_serve_farm_faults_total": [1-9]' "$SERVE_TMP/metrics-faulted.json" || {
  echo "fault injection produced no farm faults"; exit 1; }
grep -q '"apichecker_serve_farm_retries_total": [1-9]' "$SERVE_TMP/metrics-faulted.json" || {
  echo "farm faults were not retried"; exit 1; }
grep -q '"apichecker_emu_farm_injected_faults_total": [1-9]' "$SERVE_TMP/metrics-faulted.json" || {
  echo "missing emu-level injected-fault accounting"; exit 1; }
echo "fault smoke OK (faults injected, failover retries observed, zero lost)"

echo "=== fabric: cross-process farm smoke (3 workers, one SIGKILLed mid-run) ==="
# The emulator tier runs as 3 `apichecker farm` child processes behind the
# fabric RPC transport; one is SIGKILLed mid-trace. The heartbeat-driven
# breaker must open for the dead worker (reason="connection_loss"), the
# remaining workers absorb the trace, and no acknowledged submission is lost:
# accepted == completed + expired + parse_errors + rejected_unhealthy.
"$ROOT/build/tools/apichecker" serve --apps 160 --apis 8000 --batch 4 \
  --model "$SERVE_TMP/model.bin" --fabric 3 --fabric-kill-one \
  --metrics-out "$SERVE_TMP/metrics-fabric.json" > "$SERVE_TMP/fabric-serve.out"
grep -q "invariant accepted == resolved: OK" "$SERVE_TMP/fabric-serve.out" || {
  echo "fabric serve lost submissions"; cat "$SERVE_TMP/fabric-serve.out"; exit 1; }
grep -q "SIGKILLed worker" "$SERVE_TMP/fabric-serve.out" || {
  echo "fabric smoke never killed a worker"; exit 1; }
python3 - "$SERVE_TMP/metrics-fabric.json" <<'PYEOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
def count(name):
    return int(counters.get(name, 0))
accepted = count("apichecker_serve_accepted_total")
resolved = (count("apichecker_serve_completed_total")
            + count("apichecker_serve_deadline_expired_total")
            + count("apichecker_serve_parse_errors_total")
            + count("apichecker_serve_farm_rejected_unhealthy_total")
            + count("apichecker_serve_shed_total"))
if accepted == 0:
    raise SystemExit("fabric smoke accepted nothing")
if accepted != resolved:
    raise SystemExit("lost acknowledged verdicts: accepted %d != resolved %d"
                     % (accepted, resolved))
conn_opens = sum(v for k, v in counters.items()
                 if k.startswith("apichecker_serve_farm_breaker_open_total{")
                 and 'reason="connection_loss"' in k)
if conn_opens < 1:
    raise SystemExit("SIGKILLed worker never opened a connection-loss breaker")
fault_opens = sum(v for k, v in counters.items()
                  if k.startswith("apichecker_serve_farm_breaker_open_total{")
                  and 'reason="fault"' in k)
for series in ["apichecker_fabric_handshakes_total",
               "apichecker_fabric_heartbeats_total",
               "apichecker_fabric_frames_sent_total",
               "apichecker_fabric_frames_received_total",
               "apichecker_fabric_model_syncs_total",
               "apichecker_fabric_disconnects_total"]:
    if count(series) <= 0:
        raise SystemExit("fabric metric %s missing or zero" % series)
print("fabric: %d accepted == %d resolved; breaker opens: %d connection-loss, "
      "%d fault; %d handshakes, %d heartbeats, %d disconnects"
      % (accepted, resolved, conn_opens, fault_opens,
         count("apichecker_fabric_handshakes_total"),
         count("apichecker_fabric_heartbeats_total"),
         count("apichecker_fabric_disconnects_total")))
PYEOF
echo "fabric smoke OK (worker killed mid-run, breaker opened on connection loss, zero lost)"

echo "=== store: restart smoke (persist, kill, warm start) ==="
# Run the serve trace twice against the same --store-dir. The second process
# must recover the first one's verdicts from the WAL and serve warm-start
# cache hits (the metric the restart exists to produce).
"$ROOT/build/tools/apichecker" serve --apps 60 --apis 8000 \
  --model "$SERVE_TMP/model.bin" --store-dir "$SERVE_TMP/store" \
  | grep "invariant accepted == resolved: OK"
"$ROOT/build/tools/apichecker" serve --apps 60 --apis 8000 \
  --model "$SERVE_TMP/model.bin" --store-dir "$SERVE_TMP/store" \
  --metrics-out "$SERVE_TMP/metrics-restart.json" \
  | grep "invariant accepted == resolved: OK"
grep -q '"apichecker_store_recovered_records_total": [1-9]' "$SERVE_TMP/metrics-restart.json" || {
  echo "restart recovered no records from the verdict store"; exit 1; }
grep -q '"apichecker_store_warm_start_hits_total": [1-9]' "$SERVE_TMP/metrics-restart.json" || {
  echo "warm-started cache produced no hits after restart"; exit 1; }
echo "store restart smoke OK (records recovered, warm-start hits observed)"

echo "=== ingest: admission-latency smoke (blob handles keep Submit flat) ==="
# Mix ~64KB synthetic APKs with every-3rd padded to ~8MB through the chunked
# streaming reader. Admission cost must not scale with APK size: the large
# bucket's Submit() p99 has to stay within 2x of the small bucket's (with a
# floor absorbing microsecond-scale jitter on near-zero p99s).
"$ROOT/build/tools/apichecker" serve --apps 48 --apis 8000 --batch 4 \
  --model "$SERVE_TMP/model.bin" --large-every 3 --large-kb 8192 --chunk-kb 128 \
  --metrics-out "$SERVE_TMP/metrics-ingest.json" \
  | grep "invariant accepted == resolved: OK"
for series in apichecker_ingest_blobs_total apichecker_ingest_bytes_streamed_total \
              apichecker_ingest_chunks_total apichecker_ingest_blob_pool_peak_bytes \
              apichecker_serve_hash_ops_total apichecker_ingest_parse_stage_ms; do
  grep -q "$series" "$SERVE_TMP/metrics-ingest.json" || {
    echo "missing metric series: $series"; exit 1; }
done
python3 - "$SERVE_TMP/metrics-ingest.json" <<'PYEOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
hist = metrics["histograms"]
def p99(bucket):
    series = hist['apichecker_serve_admission_latency_ms{size="%s"}' % bucket]
    if series["count"] == 0:
        raise SystemExit("no %s-bucket admission samples" % bucket)
    return series["quantiles"]["p99"], series["count"]
small, small_n = p99("small")
large, large_n = p99("large")
# Floor: sub-0.2ms p99s are all "instant"; the 2x bound only means something
# above scheduler-jitter scale.
bound = 2.0 * max(small, 0.2)
print("admission p99: small %.4f ms (n=%d), large %.4f ms (n=%d), bound %.4f ms"
      % (small, small_n, large, large_n, bound))
if large > bound:
    raise SystemExit("large-APK admission p99 %.4f ms exceeds 2x small (%.4f ms): "
                     "Submit() is scaling with APK size" % (large, bound))
PYEOF
echo "ingest smoke OK (large-APK admission p99 within 2x of small)"

echo "=== storm: overload control & QoS smoke (shed + SLO + spill) ==="
# Blast the CLI's mixed-priority trace (1/16 interactive, 1/16 rescan, rest
# bulk) at a single 40-deep shard with shedding on and a 16 KB spill
# threshold. The governor must shed bulk under pressure but NEVER interactive,
# interactive end-to-end p99 must hold its 10 s SLO, at least one blob must
# spill to disk, and the accepted == resolved invariant must extend over the
# shed class (shed submissions resolve visibly, they are not lost).
"$ROOT/build/tools/apichecker" serve --apps 240 --apis 8000 --batch 4 \
  --model "$SERVE_TMP/model.bin" --shards 1 --shard-capacity 40 --shed \
  --slo-ms 10000,0,0 --spill-threshold-kb 16 \
  --metrics-out "$SERVE_TMP/metrics-storm.json" \
  | grep "invariant accepted == resolved: OK"
python3 - "$SERVE_TMP/metrics-storm.json" <<'PYEOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
counters = metrics["counters"]
def count(name):
    return int(counters.get(name, 0))
shed_bulk = count('apichecker_serve_shed_total{class="bulk"}')
shed_interactive = count('apichecker_serve_shed_total{class="interactive"}')
if shed_bulk == 0:
    raise SystemExit("storm smoke: overload governor never shed bulk traffic")
if shed_interactive != 0:
    raise SystemExit("storm smoke: %d interactive submissions were shed"
                     % shed_interactive)
accepted = count("apichecker_serve_accepted_total")
resolved = (count("apichecker_serve_completed_total")
            + count("apichecker_serve_deadline_expired_total")
            + count("apichecker_serve_parse_errors_total")
            + count("apichecker_serve_farm_rejected_unhealthy_total")
            + count("apichecker_serve_shed_total"))
if accepted == 0 or accepted != resolved:
    raise SystemExit("storm smoke lost verdicts: accepted %d != resolved %d"
                     % (accepted, resolved))
interactive = metrics["histograms"].get(
    'apichecker_serve_e2e_latency_ms{class="interactive"}')
if not interactive or interactive["count"] == 0:
    raise SystemExit("storm smoke: no interactive e2e latency samples")
p99 = interactive["quantiles"]["p99"]
if p99 > 10000.0:
    raise SystemExit("storm smoke: interactive e2e p99 %.1f ms blew the "
                     "10000 ms SLO" % p99)
spilled = count("apichecker_ingest_blobs_spilled_total")
if spilled == 0:
    raise SystemExit("storm smoke: no blob spilled past the 16 KB threshold")
if count("apichecker_ingest_spill_failures_total") != 0:
    raise SystemExit("storm smoke: spill write failures on a healthy disk")
print("storm: %d accepted == %d resolved; shed bulk=%d rescan=%d "
      "interactive=%d; interactive p99 %.1f ms; %d blobs spilled"
      % (accepted, resolved, shed_bulk,
         count('apichecker_serve_shed_total{class="rescan"}'),
         shed_interactive, p99, spilled))
PYEOF
echo "storm smoke OK (bulk shed, interactive protected, SLO held, blobs spilled)"

echo "=== trace: end-to-end tracing + BENCH_serve.json schema smoke ==="
# Trace every submission through a store-backed serve run, then require (a)
# every fully-pipelined trace to carry all seven stages, (b) each trace's
# breakdown to sum to its end-to-end latency, and (c) the bench report to be
# schema-complete with finite, non-zero core values.
"$ROOT/build/tools/apichecker" serve --apps 40 --apis 8000 --batch 4 \
  --model "$SERVE_TMP/model.bin" --store-dir "$SERVE_TMP/trace-store" \
  --trace-out "$SERVE_TMP/traces.jsonl" --trace-sample 1 \
  --bench-out "$SERVE_TMP/BENCH_serve.json" \
  | grep "invariant accepted == resolved: OK"
python3 - "$SERVE_TMP/traces.jsonl" "$SERVE_TMP/BENCH_serve.json" <<'PYEOF'
import json, math, sys

STAGES = ["submit", "shard", "batch", "farm", "classify", "store", "resolve"]
full, checked = 0, 0
for line in open(sys.argv[1]):
    trace = json.loads(line)
    checked += 1
    total = trace["total_ms"]
    sum_ms = sum(trace["breakdown"].values())
    if abs(sum_ms - total) > max(0.05, 0.01 * total):
        raise SystemExit("trace %d breakdown sums to %.3f ms but total is %.3f ms"
                         % (trace["trace_id"], sum_ms, total))
    # Cache hits, parse errors, and rejections legitimately skip stages;
    # a fresh fully-emulated verdict must touch every stage.
    if trace["status"] != "ok" or trace["from_cache"]:
        continue
    seen = set(s["stage"] for s in trace["spans"]) | set(trace["breakdown"])
    missing = [s for s in STAGES if s not in seen]
    if missing:
        raise SystemExit("trace %d (status ok, fresh) misses pipeline stages %s"
                         % (trace["trace_id"], missing))
    full += 1
if full == 0:
    raise SystemExit("no fully-pipelined trace found in %d traces" % checked)
print("traces: %d checked, %d fully pipelined (all %d stages)"
      % (checked, full, len(STAGES)))

report = json.load(open(sys.argv[2]))
if report.get("schema") != "apichecker-bench-serve-v1":
    raise SystemExit("bad bench schema: %r" % report.get("schema"))
for key in ["bench", "git_rev", "submissions", "wall_s", "throughput_per_sec",
            "sample_rate", "traces_completed", "peak_rss_mb",
            "peak_blob_pool_mb", "stages"]:
    if key not in report:
        raise SystemExit("bench report missing key: %s" % key)
for key in ["submissions", "wall_s", "throughput_per_sec", "peak_rss_mb",
            "traces_completed"]:
    value = report[key]
    if not (isinstance(value, (int, float)) and math.isfinite(value) and value > 0):
        raise SystemExit("bench report %s must be finite and non-zero, got %r"
                         % (key, value))
for stage in STAGES + ["admission", "e2e", "traced_e2e"]:
    if stage not in report["stages"]:
        raise SystemExit("bench report missing stage quantiles: %s" % stage)
    for q in ["p50_ms", "p99_ms", "count"]:
        if not math.isfinite(report["stages"][stage].get(q, float("nan"))):
            raise SystemExit("bench stage %s.%s not finite" % (stage, q))
print("bench report: schema OK, %d submissions at %.0f/sec, %d traces"
      % (report["submissions"], report["throughput_per_sec"],
         report["traces_completed"]))
PYEOF
# Overwrite protection: a rerun against the existing trace file must refuse
# without --force and succeed with it.
if "$ROOT/build/tools/apichecker" serve --apps 10 --apis 8000 \
  --model "$SERVE_TMP/model.bin" --trace-out "$SERVE_TMP/traces.jsonl" \
  >/dev/null 2>&1; then
  echo "trace-out overwrote an existing file without --force"; exit 1
fi
"$ROOT/build/tools/apichecker" serve --apps 10 --apis 8000 \
  --model "$SERVE_TMP/model.bin" --trace-out "$SERVE_TMP/traces.jsonl" --force \
  >/dev/null
echo "trace smoke OK (stage-complete traces, schema-valid bench report, overwrite guarded)"

echo "=== bench: serve throughput smoke (BENCH_serve.json trajectory) ==="
# Quick two-pass run (baseline vs 1% sampling) of the tracked perf bench; the
# report must land with the same schema the CLI emits.
(cd "$SERVE_TMP" && "$ROOT/build/bench/bench_serve_throughput" --quick --farms 2 \
  --bench-out "$SERVE_TMP/BENCH_serve_bench.json" >/dev/null)
python3 - "$SERVE_TMP/BENCH_serve_bench.json" <<'PYEOF'
import json, math, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "apichecker-bench-serve-v1", report["schema"]
for key in ["throughput_per_sec", "baseline_throughput_per_sec", "submissions"]:
    assert math.isfinite(report[key]) and report[key] > 0, (key, report[key])
assert math.isfinite(report["tracing_overhead_pct"])
# Pass-6 unified-runtime accounting: every pass dispatches through the shared
# runtime, so the task counter must be live and the derived fields finite.
for key in ["rt_tasks_total", "rt_tasks_per_sec", "rt_steal_ratio",
            "rt_timer_lag_p99_ms", "rt_process_threads_peak"]:
    assert key in report and math.isfinite(report[key]), (key, report.get(key))
assert report["rt_tasks_total"] > 0, "unified runtime ran zero tasks"
assert "rt_timer_lag" in report["stages"], "missing rt_timer_lag stage"
print("bench smoke: baseline %.0f/sec, traced %.0f/sec, overhead %.2f%%; "
      "rt %d tasks, steal ratio %.3f"
      % (report["baseline_throughput_per_sec"], report["throughput_per_sec"],
         report["tracing_overhead_pct"], report["rt_tasks_total"],
         report["rt_steal_ratio"]))
PYEOF
echo "bench smoke OK (two-pass BENCH_serve.json written and schema-valid)"

echo "=== gateway: network ingest smoke (hostile clients over a real socket) ==="
# Serve with --listen on a unix socket in the background, then drive it with
# `apichecker submit` clients: a clean batch, a scripted-stall batch whose
# 900 ms stall outlives the 400 ms read deadline (slow-loris eviction on
# attempt 1, clean retry resolves), and one throttled client SIGKILLed
# mid-upload. SIGTERM drains the gateway; the serve process itself exits
# non-zero unless the extended drain invariant
# (uploads accepted == completed + aborted) holds, and the metrics dump must
# show at least one slow-loris eviction.
# TCP with an ephemeral port: the bound endpoint is parsed from the serve
# banner, so the smoke exercises the same address family a real market
# frontend would.
"$ROOT/build/tools/apichecker" serve --apps 8 --apis 8000 \
  --model "$SERVE_TMP/model.bin" --listen "tcp:127.0.0.1:0" \
  --read-deadline-ms 400 --chunk-kb 4 \
  --metrics-out "$SERVE_TMP/metrics-gateway.json" \
  > "$SERVE_TMP/gateway-serve.out" 2>&1 &
GW_PID=$!
GW_ADDR=""
for _ in $(seq 1 100); do
  GW_ADDR=$(sed -n 's/.*listening on \(tcp:[0-9.:]*\).*/\1/p' \
    "$SERVE_TMP/gateway-serve.out" 2>/dev/null | head -n 1)
  [ -n "$GW_ADDR" ] && break
  sleep 0.1
done
[ -n "$GW_ADDR" ] || {
  echo "gateway never printed its bound endpoint"
  cat "$SERVE_TMP/gateway-serve.out"
  kill "$GW_PID" 2>/dev/null; exit 1; }
"$ROOT/build/tools/apichecker" submit --connect "$GW_ADDR" --apis 8000 \
  --uploads 4 --chunk-kb 4 > "$SERVE_TMP/submit-clean.out"
grep -q "4/4 resolved" "$SERVE_TMP/submit-clean.out" || {
  echo "clean submit batch did not fully resolve"
  cat "$SERVE_TMP/submit-clean.out"; exit 1; }
"$ROOT/build/tools/apichecker" submit --connect "$GW_ADDR" --apis 8000 \
  --uploads 2 --chunk-kb 2 --seed 7 --stall-at 2 --stall-ms 900 \
  > "$SERVE_TMP/submit-stall.out"
grep -q "2/2 resolved" "$SERVE_TMP/submit-stall.out" || {
  echo "stalled submit batch did not recover via retry"
  cat "$SERVE_TMP/submit-stall.out"; exit 1; }
# Mid-upload kill: throttled to ~2 KB/s so the client is reliably mid-body
# when the SIGKILL lands — the gateway must resolve the dead connection as a
# visible abort, not hang on it.
"$ROOT/build/tools/apichecker" submit --connect "$GW_ADDR" --apis 8000 \
  --uploads 1 --chunk-kb 1 --seed 9 --throttle-from 1 --throttle-bps 2048 \
  > "$SERVE_TMP/submit-killed.out" 2>&1 &
KILL_PID=$!
sleep 1
kill -9 "$KILL_PID" 2>/dev/null || true
wait "$KILL_PID" 2>/dev/null || true
sleep 1  # Past the read deadline: the severed connection must resolve.
kill -TERM "$GW_PID"
wait "$GW_PID" || {
  echo "gateway serve exited non-zero (invariant violated?)"
  cat "$SERVE_TMP/gateway-serve.out"; exit 1; }
grep -q "gateway invariant accepted == completed + aborted: OK" \
  "$SERVE_TMP/gateway-serve.out" || {
  echo "gateway drain invariant line missing"
  cat "$SERVE_TMP/gateway-serve.out"; exit 1; }
python3 - "$SERVE_TMP/metrics-gateway.json" <<'PYEOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
def count(name):
    return int(counters.get(name, 0))
accepted = count("apichecker_gateway_uploads_accepted_total")
completed = count("apichecker_gateway_uploads_completed_total")
# The bare series is the total; reason-labelled siblings re-count by cause.
aborted = count("apichecker_gateway_uploads_aborted_total")
slow_loris = count("apichecker_gateway_slow_loris_disconnects_total")
if accepted == 0:
    raise SystemExit("gateway smoke accepted no uploads")
if accepted != completed + aborted:
    raise SystemExit("extended drain invariant violated: accepted %d != "
                     "completed %d + aborted %d" % (accepted, completed, aborted))
if slow_loris < 1:
    raise SystemExit("no slow-loris eviction despite a 900 ms stall against a "
                     "400 ms read deadline")
if aborted < 1:
    raise SystemExit("hostile clients produced no visible aborts")
for series in ["apichecker_gateway_connections_total",
               "apichecker_gateway_bytes_received_total",
               "apichecker_gateway_verdicts_sent_total"]:
    if count(series) <= 0:
        raise SystemExit("gateway metric %s missing or zero" % series)
print("gateway: %d accepted == %d completed + %d aborted; %d slow-loris "
      "evictions; %d connections, %d bytes in"
      % (accepted, completed, aborted, slow_loris,
         count("apichecker_gateway_connections_total"),
         count("apichecker_gateway_bytes_received_total")))
PYEOF
echo "gateway smoke OK (slow-loris evicted, mid-upload kill absorbed, drain invariant held)"

echo "=== rt: steady-state thread-count gate (threads O(cores), not O(connections)) ==="
# Two identical gateway rounds, 2 then 8 concurrent upload clients. The
# unified runtime fixes the process's thread complement at startup — every
# connection is a readiness-driven state machine, not a thread — so the peak
# thread gauge must stay flat (small jitter allowance) as clients quadruple.
for CLIENTS in 2 8; do
  "$ROOT/build/tools/apichecker" serve --apps 8 --apis 8000 \
    --model "$SERVE_TMP/model.bin" --listen "tcp:127.0.0.1:0" --chunk-kb 4 \
    --metrics-out "$SERVE_TMP/metrics-threads-$CLIENTS.json" \
    > "$SERVE_TMP/threads-serve-$CLIENTS.out" 2>&1 &
  RT_PID=$!
  RT_ADDR=""
  for _ in $(seq 1 100); do
    RT_ADDR=$(sed -n 's/.*listening on \(tcp:[0-9.:]*\).*/\1/p' \
      "$SERVE_TMP/threads-serve-$CLIENTS.out" 2>/dev/null | head -n 1)
    [ -n "$RT_ADDR" ] && break
    sleep 0.1
  done
  [ -n "$RT_ADDR" ] || {
    echo "thread-gate serve ($CLIENTS clients) never printed its endpoint"
    cat "$SERVE_TMP/threads-serve-$CLIENTS.out"
    kill "$RT_PID" 2>/dev/null; exit 1; }
  i=0; CLIENT_PIDS=""
  while [ "$i" -lt "$CLIENTS" ]; do
    "$ROOT/build/tools/apichecker" submit --connect "$RT_ADDR" --apis 8000 \
      --uploads 2 --chunk-kb 4 --seed $((100 + i)) \
      > "$SERVE_TMP/threads-client-$CLIENTS-$i.out" 2>&1 &
    CLIENT_PIDS="$CLIENT_PIDS $!"
    i=$((i + 1))
  done
  for pid in $CLIENT_PIDS; do
    wait "$pid" || {
      echo "thread-gate upload client failed ($CLIENTS-client round)"; exit 1; }
  done
  kill -TERM "$RT_PID"
  wait "$RT_PID" || {
    echo "thread-gate serve ($CLIENTS clients) exited non-zero"
    cat "$SERVE_TMP/threads-serve-$CLIENTS.out"; exit 1; }
done
python3 - "$SERVE_TMP/metrics-threads-2.json" "$SERVE_TMP/metrics-threads-8.json" <<'PYEOF'
import json, sys
def peak(path):
    gauges = json.load(open(path))["gauges"]
    value = gauges.get("apichecker_rt_process_threads_peak", 0)
    if value <= 0:
        raise SystemExit("%s: apichecker_rt_process_threads_peak missing or zero"
                         % path)
    return value
few, many = peak(sys.argv[1]), peak(sys.argv[2])
if many > few + 2:
    raise SystemExit("thread count scales with connections: peak %d threads at 8 "
                     "clients vs %d at 2 (allowance +2)" % (many, few))
print("thread gate: peak %d threads at 2 clients, %d at 8 — flat" % (few, many))
PYEOF
echo "thread gate OK (process thread peak flat as upload clients quadruple)"

if [ "$ASAN" = "1" ]; then
  echo "=== asan: build + run test_rt test_obs test_apk test_ingest test_serve test_store test_farm_pool test_fabric test_gateway ==="
  cmake -B "$ROOT/build-asan" -S "$ROOT" -DAPICHECKER_SANITIZE=address >/dev/null
  cmake --build "$ROOT/build-asan" -j --target test_rt test_obs test_apk test_ingest \
    test_serve test_store test_farm_pool test_fabric test_gateway
  "$ROOT/build-asan/tests/test_rt"
  "$ROOT/build-asan/tests/test_obs"
  "$ROOT/build-asan/tests/test_apk"
  "$ROOT/build-asan/tests/test_ingest"
  "$ROOT/build-asan/tests/test_serve"
  "$ROOT/build-asan/tests/test_store"
  "$ROOT/build-asan/tests/test_farm_pool"
  "$ROOT/build-asan/tests/test_fabric" --gtest_filter=-FabricSoak.*
  "$ROOT/build-asan/tests/test_gateway" --gtest_filter=-GatewaySoak.*
fi

if [ "$TSAN" = "1" ]; then
  echo "=== tsan: serve races + stress-labelled suites ==="
  cmake -B "$ROOT/build-tsan" -S "$ROOT" -DAPICHECKER_SANITIZE=thread >/dev/null
  cmake --build "$ROOT/build-tsan" -j --target test_rt test_serve test_store \
    test_farm_pool test_ingest test_obs test_fabric test_gateway
  "$ROOT/build-tsan/tests/test_rt"
  "$ROOT/build-tsan/tests/test_serve"
  "$ROOT/build-tsan/tests/test_obs"
  # Stress label = the farm-pool fault suite, the multi-producer serve/store
  # soaks, the concurrent blob-release soak, the fabric connect/disconnect
  # churn soak, and the gateway hostile-client soak (tests/CMakeLists.txt tags
  # them), i.e. the heaviest concurrency paths.
  (cd "$ROOT/build-tsan" && ctest -L stress --output-on-failure)
fi

echo "CI OK"
