#!/bin/sh
# Tier-1 verification script: configure, build, and run the full ctest suite,
# then a serving-layer smoke test of the CLI (trace replay + metrics dump),
# then rebuild the concurrency-sensitive tests under AddressSanitizer (and,
# unless skipped, the serving tests under ThreadSanitizer too).
#
# Usage: sh tools/ci.sh [--no-asan] [--no-tsan]
set -e

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
ASAN=1
TSAN=1
for arg in "$@"; do
  [ "$arg" = "--no-asan" ] && ASAN=0
  [ "$arg" = "--no-tsan" ] && TSAN=0
done

echo "=== tier-1: configure + build ==="
cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j

echo "=== tier-1: ctest ==="
(cd "$ROOT/build" && ctest --output-on-failure -j)

echo "=== serve: CLI smoke (trace replay + metrics) ==="
SERVE_TMP=$(mktemp -d)
trap 'rm -rf "$SERVE_TMP"' EXIT
"$ROOT/build/tools/apichecker" study --apps 800 --apis 8000 \
  --model "$SERVE_TMP/model.bin" >/dev/null
"$ROOT/build/tools/apichecker" serve --apps 60 --apis 8000 \
  --model "$SERVE_TMP/model.bin" --metrics-out "$SERVE_TMP/metrics.json" \
  | grep "invariant accepted == resolved: OK"
for series in apichecker_serve_submissions_total apichecker_serve_batches_total \
              apichecker_serve_cache_hits_total apichecker_serve_model_swaps_total \
              apichecker_serve_e2e_latency_ms; do
  grep -q "$series" "$SERVE_TMP/metrics.json" || {
    echo "missing metric series: $series"; exit 1; }
done
echo "serve smoke OK (metrics dump carries the apichecker_serve_* series)"

if [ "$ASAN" = "1" ]; then
  echo "=== asan: build + run test_obs test_serve ==="
  cmake -B "$ROOT/build-asan" -S "$ROOT" -DAPICHECKER_SANITIZE=address >/dev/null
  cmake --build "$ROOT/build-asan" -j --target test_obs test_serve
  "$ROOT/build-asan/tests/test_obs"
  "$ROOT/build-asan/tests/test_serve"
fi

if [ "$TSAN" = "1" ]; then
  echo "=== tsan: build + run test_serve (hot-swap/backpressure races) ==="
  cmake -B "$ROOT/build-tsan" -S "$ROOT" -DAPICHECKER_SANITIZE=thread >/dev/null
  cmake --build "$ROOT/build-tsan" -j --target test_serve
  "$ROOT/build-tsan/tests/test_serve"
fi

echo "CI OK"
