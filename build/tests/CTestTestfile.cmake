# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;apichecker_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_stats "/root/repo/build/tests/test_stats")
set_tests_properties(test_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;apichecker_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ml "/root/repo/build/tests/test_ml")
set_tests_properties(test_ml PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;apichecker_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_android "/root/repo/build/tests/test_android")
set_tests_properties(test_android PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;apichecker_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_apk "/root/repo/build/tests/test_apk")
set_tests_properties(test_apk PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;apichecker_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_synth "/root/repo/build/tests/test_synth")
set_tests_properties(test_synth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;apichecker_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_emu "/root/repo/build/tests/test_emu")
set_tests_properties(test_emu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;apichecker_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;apichecker_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_market "/root/repo/build/tests/test_market")
set_tests_properties(test_market PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;apichecker_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;apichecker_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_evaluation "/root/repo/build/tests/test_evaluation")
set_tests_properties(test_evaluation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;apichecker_test;/root/repo/tests/CMakeLists.txt;0;")
