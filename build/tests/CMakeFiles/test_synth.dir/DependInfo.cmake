
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_synth.cc" "tests/CMakeFiles/test_synth.dir/test_synth.cc.o" "gcc" "tests/CMakeFiles/test_synth.dir/test_synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/apichecker_market.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/apichecker_core.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/apichecker_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/apichecker_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/apichecker_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/apichecker_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/apichecker_android.dir/DependInfo.cmake"
  "/root/repo/build/src/apk/CMakeFiles/apichecker_apk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/apichecker_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
