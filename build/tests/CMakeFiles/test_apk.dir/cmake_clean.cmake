file(REMOVE_RECURSE
  "CMakeFiles/test_apk.dir/test_apk.cc.o"
  "CMakeFiles/test_apk.dir/test_apk.cc.o.d"
  "test_apk"
  "test_apk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
