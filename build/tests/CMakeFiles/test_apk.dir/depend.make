# Empty dependencies file for test_apk.
# This may be replaced when dependencies are built.
