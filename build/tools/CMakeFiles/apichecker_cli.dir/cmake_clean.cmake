file(REMOVE_RECURSE
  "CMakeFiles/apichecker_cli.dir/apichecker_cli.cc.o"
  "CMakeFiles/apichecker_cli.dir/apichecker_cli.cc.o.d"
  "apichecker"
  "apichecker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apichecker_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
