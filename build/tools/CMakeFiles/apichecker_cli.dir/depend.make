# Empty dependencies file for apichecker_cli.
# This may be replaced when dependencies are built.
