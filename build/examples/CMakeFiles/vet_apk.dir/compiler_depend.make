# Empty compiler generated dependencies file for vet_apk.
# This may be replaced when dependencies are built.
