file(REMOVE_RECURSE
  "CMakeFiles/vet_apk.dir/vet_apk.cpp.o"
  "CMakeFiles/vet_apk.dir/vet_apk.cpp.o.d"
  "vet_apk"
  "vet_apk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vet_apk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
