# Empty dependencies file for selection_study.
# This may be replaced when dependencies are built.
