file(REMOVE_RECURSE
  "CMakeFiles/selection_study.dir/selection_study.cpp.o"
  "CMakeFiles/selection_study.dir/selection_study.cpp.o.d"
  "selection_study"
  "selection_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
