file(REMOVE_RECURSE
  "CMakeFiles/market_deployment.dir/market_deployment.cpp.o"
  "CMakeFiles/market_deployment.dir/market_deployment.cpp.o.d"
  "market_deployment"
  "market_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
