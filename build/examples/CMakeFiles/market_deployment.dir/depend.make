# Empty dependencies file for market_deployment.
# This may be replaced when dependencies are built.
