file(REMOVE_RECURSE
  "CMakeFiles/apichecker_core.dir/baselines.cc.o"
  "CMakeFiles/apichecker_core.dir/baselines.cc.o.d"
  "CMakeFiles/apichecker_core.dir/checker.cc.o"
  "CMakeFiles/apichecker_core.dir/checker.cc.o.d"
  "CMakeFiles/apichecker_core.dir/feature_schema.cc.o"
  "CMakeFiles/apichecker_core.dir/feature_schema.cc.o.d"
  "CMakeFiles/apichecker_core.dir/model_store.cc.o"
  "CMakeFiles/apichecker_core.dir/model_store.cc.o.d"
  "CMakeFiles/apichecker_core.dir/selection.cc.o"
  "CMakeFiles/apichecker_core.dir/selection.cc.o.d"
  "CMakeFiles/apichecker_core.dir/study.cc.o"
  "CMakeFiles/apichecker_core.dir/study.cc.o.d"
  "libapichecker_core.a"
  "libapichecker_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apichecker_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
