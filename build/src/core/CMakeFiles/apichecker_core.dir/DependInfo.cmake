
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/apichecker_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/apichecker_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/checker.cc" "src/core/CMakeFiles/apichecker_core.dir/checker.cc.o" "gcc" "src/core/CMakeFiles/apichecker_core.dir/checker.cc.o.d"
  "/root/repo/src/core/feature_schema.cc" "src/core/CMakeFiles/apichecker_core.dir/feature_schema.cc.o" "gcc" "src/core/CMakeFiles/apichecker_core.dir/feature_schema.cc.o.d"
  "/root/repo/src/core/model_store.cc" "src/core/CMakeFiles/apichecker_core.dir/model_store.cc.o" "gcc" "src/core/CMakeFiles/apichecker_core.dir/model_store.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/core/CMakeFiles/apichecker_core.dir/selection.cc.o" "gcc" "src/core/CMakeFiles/apichecker_core.dir/selection.cc.o.d"
  "/root/repo/src/core/study.cc" "src/core/CMakeFiles/apichecker_core.dir/study.cc.o" "gcc" "src/core/CMakeFiles/apichecker_core.dir/study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/android/CMakeFiles/apichecker_android.dir/DependInfo.cmake"
  "/root/repo/build/src/apk/CMakeFiles/apichecker_apk.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/apichecker_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/apichecker_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/apichecker_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/apichecker_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/apichecker_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
