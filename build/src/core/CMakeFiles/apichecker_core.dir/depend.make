# Empty dependencies file for apichecker_core.
# This may be replaced when dependencies are built.
