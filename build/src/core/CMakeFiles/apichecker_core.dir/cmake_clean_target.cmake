file(REMOVE_RECURSE
  "libapichecker_core.a"
)
