file(REMOVE_RECURSE
  "CMakeFiles/apichecker_stats.dir/cdf.cc.o"
  "CMakeFiles/apichecker_stats.dir/cdf.cc.o.d"
  "CMakeFiles/apichecker_stats.dir/correlation.cc.o"
  "CMakeFiles/apichecker_stats.dir/correlation.cc.o.d"
  "CMakeFiles/apichecker_stats.dir/descriptive.cc.o"
  "CMakeFiles/apichecker_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/apichecker_stats.dir/fitting.cc.o"
  "CMakeFiles/apichecker_stats.dir/fitting.cc.o.d"
  "CMakeFiles/apichecker_stats.dir/histogram.cc.o"
  "CMakeFiles/apichecker_stats.dir/histogram.cc.o.d"
  "libapichecker_stats.a"
  "libapichecker_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apichecker_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
