file(REMOVE_RECURSE
  "libapichecker_stats.a"
)
