# Empty compiler generated dependencies file for apichecker_stats.
# This may be replaced when dependencies are built.
