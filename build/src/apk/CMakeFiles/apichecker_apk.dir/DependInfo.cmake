
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apk/apk.cc" "src/apk/CMakeFiles/apichecker_apk.dir/apk.cc.o" "gcc" "src/apk/CMakeFiles/apichecker_apk.dir/apk.cc.o.d"
  "/root/repo/src/apk/dex.cc" "src/apk/CMakeFiles/apichecker_apk.dir/dex.cc.o" "gcc" "src/apk/CMakeFiles/apichecker_apk.dir/dex.cc.o.d"
  "/root/repo/src/apk/manifest.cc" "src/apk/CMakeFiles/apichecker_apk.dir/manifest.cc.o" "gcc" "src/apk/CMakeFiles/apichecker_apk.dir/manifest.cc.o.d"
  "/root/repo/src/apk/zip.cc" "src/apk/CMakeFiles/apichecker_apk.dir/zip.cc.o" "gcc" "src/apk/CMakeFiles/apichecker_apk.dir/zip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/apichecker_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
