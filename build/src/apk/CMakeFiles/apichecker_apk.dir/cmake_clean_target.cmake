file(REMOVE_RECURSE
  "libapichecker_apk.a"
)
