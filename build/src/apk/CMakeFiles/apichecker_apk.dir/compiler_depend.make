# Empty compiler generated dependencies file for apichecker_apk.
# This may be replaced when dependencies are built.
