file(REMOVE_RECURSE
  "CMakeFiles/apichecker_apk.dir/apk.cc.o"
  "CMakeFiles/apichecker_apk.dir/apk.cc.o.d"
  "CMakeFiles/apichecker_apk.dir/dex.cc.o"
  "CMakeFiles/apichecker_apk.dir/dex.cc.o.d"
  "CMakeFiles/apichecker_apk.dir/manifest.cc.o"
  "CMakeFiles/apichecker_apk.dir/manifest.cc.o.d"
  "CMakeFiles/apichecker_apk.dir/zip.cc.o"
  "CMakeFiles/apichecker_apk.dir/zip.cc.o.d"
  "libapichecker_apk.a"
  "libapichecker_apk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apichecker_apk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
