# Empty compiler generated dependencies file for apichecker_emu.
# This may be replaced when dependencies are built.
