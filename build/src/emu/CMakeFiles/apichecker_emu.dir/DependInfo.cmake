
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emu/coverage.cc" "src/emu/CMakeFiles/apichecker_emu.dir/coverage.cc.o" "gcc" "src/emu/CMakeFiles/apichecker_emu.dir/coverage.cc.o.d"
  "/root/repo/src/emu/engine.cc" "src/emu/CMakeFiles/apichecker_emu.dir/engine.cc.o" "gcc" "src/emu/CMakeFiles/apichecker_emu.dir/engine.cc.o.d"
  "/root/repo/src/emu/farm.cc" "src/emu/CMakeFiles/apichecker_emu.dir/farm.cc.o" "gcc" "src/emu/CMakeFiles/apichecker_emu.dir/farm.cc.o.d"
  "/root/repo/src/emu/monkey.cc" "src/emu/CMakeFiles/apichecker_emu.dir/monkey.cc.o" "gcc" "src/emu/CMakeFiles/apichecker_emu.dir/monkey.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/android/CMakeFiles/apichecker_android.dir/DependInfo.cmake"
  "/root/repo/build/src/apk/CMakeFiles/apichecker_apk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/apichecker_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
