file(REMOVE_RECURSE
  "CMakeFiles/apichecker_emu.dir/coverage.cc.o"
  "CMakeFiles/apichecker_emu.dir/coverage.cc.o.d"
  "CMakeFiles/apichecker_emu.dir/engine.cc.o"
  "CMakeFiles/apichecker_emu.dir/engine.cc.o.d"
  "CMakeFiles/apichecker_emu.dir/farm.cc.o"
  "CMakeFiles/apichecker_emu.dir/farm.cc.o.d"
  "CMakeFiles/apichecker_emu.dir/monkey.cc.o"
  "CMakeFiles/apichecker_emu.dir/monkey.cc.o.d"
  "libapichecker_emu.a"
  "libapichecker_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apichecker_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
