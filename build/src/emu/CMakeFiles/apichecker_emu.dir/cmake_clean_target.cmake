file(REMOVE_RECURSE
  "libapichecker_emu.a"
)
