# Empty compiler generated dependencies file for apichecker_synth.
# This may be replaced when dependencies are built.
