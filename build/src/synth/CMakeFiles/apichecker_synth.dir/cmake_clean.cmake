file(REMOVE_RECURSE
  "CMakeFiles/apichecker_synth.dir/behavior_templates.cc.o"
  "CMakeFiles/apichecker_synth.dir/behavior_templates.cc.o.d"
  "CMakeFiles/apichecker_synth.dir/corpus.cc.o"
  "CMakeFiles/apichecker_synth.dir/corpus.cc.o.d"
  "libapichecker_synth.a"
  "libapichecker_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apichecker_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
