file(REMOVE_RECURSE
  "libapichecker_synth.a"
)
