
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/behavior_templates.cc" "src/synth/CMakeFiles/apichecker_synth.dir/behavior_templates.cc.o" "gcc" "src/synth/CMakeFiles/apichecker_synth.dir/behavior_templates.cc.o.d"
  "/root/repo/src/synth/corpus.cc" "src/synth/CMakeFiles/apichecker_synth.dir/corpus.cc.o" "gcc" "src/synth/CMakeFiles/apichecker_synth.dir/corpus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/android/CMakeFiles/apichecker_android.dir/DependInfo.cmake"
  "/root/repo/build/src/apk/CMakeFiles/apichecker_apk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/apichecker_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
