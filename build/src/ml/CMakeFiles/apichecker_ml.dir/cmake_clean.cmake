file(REMOVE_RECURSE
  "CMakeFiles/apichecker_ml.dir/cart.cc.o"
  "CMakeFiles/apichecker_ml.dir/cart.cc.o.d"
  "CMakeFiles/apichecker_ml.dir/classifier.cc.o"
  "CMakeFiles/apichecker_ml.dir/classifier.cc.o.d"
  "CMakeFiles/apichecker_ml.dir/cross_validation.cc.o"
  "CMakeFiles/apichecker_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/apichecker_ml.dir/dataset.cc.o"
  "CMakeFiles/apichecker_ml.dir/dataset.cc.o.d"
  "CMakeFiles/apichecker_ml.dir/evaluation.cc.o"
  "CMakeFiles/apichecker_ml.dir/evaluation.cc.o.d"
  "CMakeFiles/apichecker_ml.dir/gbdt.cc.o"
  "CMakeFiles/apichecker_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/apichecker_ml.dir/knn.cc.o"
  "CMakeFiles/apichecker_ml.dir/knn.cc.o.d"
  "CMakeFiles/apichecker_ml.dir/linear_model.cc.o"
  "CMakeFiles/apichecker_ml.dir/linear_model.cc.o.d"
  "CMakeFiles/apichecker_ml.dir/metrics.cc.o"
  "CMakeFiles/apichecker_ml.dir/metrics.cc.o.d"
  "CMakeFiles/apichecker_ml.dir/mlp.cc.o"
  "CMakeFiles/apichecker_ml.dir/mlp.cc.o.d"
  "CMakeFiles/apichecker_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/apichecker_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/apichecker_ml.dir/random_forest.cc.o"
  "CMakeFiles/apichecker_ml.dir/random_forest.cc.o.d"
  "libapichecker_ml.a"
  "libapichecker_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apichecker_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
