file(REMOVE_RECURSE
  "libapichecker_ml.a"
)
