# Empty compiler generated dependencies file for apichecker_ml.
# This may be replaced when dependencies are built.
