# Empty compiler generated dependencies file for apichecker_market.
# This may be replaced when dependencies are built.
