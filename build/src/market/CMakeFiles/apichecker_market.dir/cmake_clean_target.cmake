file(REMOVE_RECURSE
  "libapichecker_market.a"
)
