file(REMOVE_RECURSE
  "CMakeFiles/apichecker_market.dir/model_registry.cc.o"
  "CMakeFiles/apichecker_market.dir/model_registry.cc.o.d"
  "CMakeFiles/apichecker_market.dir/review_pipeline.cc.o"
  "CMakeFiles/apichecker_market.dir/review_pipeline.cc.o.d"
  "CMakeFiles/apichecker_market.dir/simulation.cc.o"
  "CMakeFiles/apichecker_market.dir/simulation.cc.o.d"
  "libapichecker_market.a"
  "libapichecker_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apichecker_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
