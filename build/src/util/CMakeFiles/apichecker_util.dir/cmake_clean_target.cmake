file(REMOVE_RECURSE
  "libapichecker_util.a"
)
