# Empty dependencies file for apichecker_util.
# This may be replaced when dependencies are built.
