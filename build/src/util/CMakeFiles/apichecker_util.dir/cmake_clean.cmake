file(REMOVE_RECURSE
  "CMakeFiles/apichecker_util.dir/byte_io.cc.o"
  "CMakeFiles/apichecker_util.dir/byte_io.cc.o.d"
  "CMakeFiles/apichecker_util.dir/crc32.cc.o"
  "CMakeFiles/apichecker_util.dir/crc32.cc.o.d"
  "CMakeFiles/apichecker_util.dir/logging.cc.o"
  "CMakeFiles/apichecker_util.dir/logging.cc.o.d"
  "CMakeFiles/apichecker_util.dir/rng.cc.o"
  "CMakeFiles/apichecker_util.dir/rng.cc.o.d"
  "CMakeFiles/apichecker_util.dir/strings.cc.o"
  "CMakeFiles/apichecker_util.dir/strings.cc.o.d"
  "CMakeFiles/apichecker_util.dir/table.cc.o"
  "CMakeFiles/apichecker_util.dir/table.cc.o.d"
  "CMakeFiles/apichecker_util.dir/thread_pool.cc.o"
  "CMakeFiles/apichecker_util.dir/thread_pool.cc.o.d"
  "libapichecker_util.a"
  "libapichecker_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apichecker_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
