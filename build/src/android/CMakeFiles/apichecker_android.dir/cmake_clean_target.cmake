file(REMOVE_RECURSE
  "libapichecker_android.a"
)
