file(REMOVE_RECURSE
  "CMakeFiles/apichecker_android.dir/api_universe.cc.o"
  "CMakeFiles/apichecker_android.dir/api_universe.cc.o.d"
  "CMakeFiles/apichecker_android.dir/catalogues.cc.o"
  "CMakeFiles/apichecker_android.dir/catalogues.cc.o.d"
  "libapichecker_android.a"
  "libapichecker_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apichecker_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
