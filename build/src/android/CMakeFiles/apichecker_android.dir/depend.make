# Empty dependencies file for apichecker_android.
# This may be replaced when dependencies are built.
