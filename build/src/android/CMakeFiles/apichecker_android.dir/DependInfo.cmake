
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/api_universe.cc" "src/android/CMakeFiles/apichecker_android.dir/api_universe.cc.o" "gcc" "src/android/CMakeFiles/apichecker_android.dir/api_universe.cc.o.d"
  "/root/repo/src/android/catalogues.cc" "src/android/CMakeFiles/apichecker_android.dir/catalogues.cc.o" "gcc" "src/android/CMakeFiles/apichecker_android.dir/catalogues.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/apichecker_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
