file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_top1k_src.dir/bench_fig05_top1k_src.cc.o"
  "CMakeFiles/bench_fig05_top1k_src.dir/bench_fig05_top1k_src.cc.o.d"
  "bench_fig05_top1k_src"
  "bench_fig05_top1k_src.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_top1k_src.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
