# Empty compiler generated dependencies file for bench_fig05_top1k_src.
# This may be replaced when dependencies are built.
