# Empty dependencies file for bench_ext_encoding_ablation.
# This may be replaced when dependencies are built.
