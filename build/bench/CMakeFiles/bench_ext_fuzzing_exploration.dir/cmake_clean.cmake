file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fuzzing_exploration.dir/bench_ext_fuzzing_exploration.cc.o"
  "CMakeFiles/bench_ext_fuzzing_exploration.dir/bench_ext_fuzzing_exploration.cc.o.d"
  "bench_ext_fuzzing_exploration"
  "bench_ext_fuzzing_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fuzzing_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
