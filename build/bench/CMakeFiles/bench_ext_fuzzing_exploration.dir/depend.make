# Empty dependencies file for bench_ext_fuzzing_exploration.
# This may be replaced when dependencies are built.
