file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_gini_importance.dir/bench_fig13_gini_importance.cc.o"
  "CMakeFiles/bench_fig13_gini_importance.dir/bench_fig13_gini_importance.cc.o.d"
  "bench_fig13_gini_importance"
  "bench_fig13_gini_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_gini_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
