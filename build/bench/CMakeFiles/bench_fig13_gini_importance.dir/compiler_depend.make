# Empty compiler generated dependencies file for bench_fig13_gini_importance.
# This may be replaced when dependencies are built.
