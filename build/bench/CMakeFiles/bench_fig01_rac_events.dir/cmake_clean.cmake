file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_rac_events.dir/bench_fig01_rac_events.cc.o"
  "CMakeFiles/bench_fig01_rac_events.dir/bench_fig01_rac_events.cc.o.d"
  "bench_fig01_rac_events"
  "bench_fig01_rac_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_rac_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
