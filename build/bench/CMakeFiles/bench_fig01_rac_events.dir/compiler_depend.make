# Empty compiler generated dependencies file for bench_fig01_rac_events.
# This may be replaced when dependencies are built.
