# Empty dependencies file for bench_fig03_track_all_vs_none.
# This may be replaced when dependencies are built.
