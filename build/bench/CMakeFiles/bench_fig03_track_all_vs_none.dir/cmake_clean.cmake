file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_track_all_vs_none.dir/bench_fig03_track_all_vs_none.cc.o"
  "CMakeFiles/bench_fig03_track_all_vs_none.dir/bench_fig03_track_all_vs_none.cc.o.d"
  "bench_fig03_track_all_vs_none"
  "bench_fig03_track_all_vs_none.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_track_all_vs_none.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
