# Empty compiler generated dependencies file for bench_fig08_set_overlap.
# This may be replaced when dependencies are built.
