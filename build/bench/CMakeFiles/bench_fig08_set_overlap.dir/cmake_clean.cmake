file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_set_overlap.dir/bench_fig08_set_overlap.cc.o"
  "CMakeFiles/bench_fig08_set_overlap.dir/bench_fig08_set_overlap.cc.o.d"
  "bench_fig08_set_overlap"
  "bench_fig08_set_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_set_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
