# Empty compiler generated dependencies file for bench_fig04_src_ranking.
# This may be replaced when dependencies are built.
