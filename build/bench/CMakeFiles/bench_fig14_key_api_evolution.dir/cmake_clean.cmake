file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_key_api_evolution.dir/bench_fig14_key_api_evolution.cc.o"
  "CMakeFiles/bench_fig14_key_api_evolution.dir/bench_fig14_key_api_evolution.cc.o.d"
  "bench_fig14_key_api_evolution"
  "bench_fig14_key_api_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_key_api_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
