# Empty dependencies file for bench_fig14_key_api_evolution.
# This may be replaced when dependencies are built.
