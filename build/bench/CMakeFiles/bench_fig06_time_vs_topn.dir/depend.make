# Empty dependencies file for bench_fig06_time_vs_topn.
# This may be replaced when dependencies are built.
