file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_time_vs_topn.dir/bench_fig06_time_vs_topn.cc.o"
  "CMakeFiles/bench_fig06_time_vs_topn.dir/bench_fig06_time_vs_topn.cc.o.d"
  "bench_fig06_time_vs_topn"
  "bench_fig06_time_vs_topn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_time_vs_topn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
