# Empty dependencies file for bench_fig15_topk_importance.
# This may be replaced when dependencies are built.
