file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_topk_importance.dir/bench_fig15_topk_importance.cc.o"
  "CMakeFiles/bench_fig15_topk_importance.dir/bench_fig15_topk_importance.cc.o.d"
  "bench_fig15_topk_importance"
  "bench_fig15_topk_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_topk_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
