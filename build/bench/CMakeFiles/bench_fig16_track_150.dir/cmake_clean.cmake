file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_track_150.dir/bench_fig16_track_150.cc.o"
  "CMakeFiles/bench_fig16_track_150.dir/bench_fig16_track_150.cc.o.d"
  "bench_fig16_track_150"
  "bench_fig16_track_150.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_track_150.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
