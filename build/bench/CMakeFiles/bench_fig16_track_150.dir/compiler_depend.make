# Empty compiler generated dependencies file for bench_fig16_track_150.
# This may be replaced when dependencies are built.
