# Empty compiler generated dependencies file for bench_fig07_accuracy_vs_topn.
# This may be replaced when dependencies are built.
