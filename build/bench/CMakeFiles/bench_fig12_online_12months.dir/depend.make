# Empty dependencies file for bench_fig12_online_12months.
# This may be replaced when dependencies are built.
