file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_online_12months.dir/bench_fig12_online_12months.cc.o"
  "CMakeFiles/bench_fig12_online_12months.dir/bench_fig12_online_12months.cc.o.d"
  "bench_fig12_online_12months"
  "bench_fig12_online_12months.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_online_12months.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
