# Empty dependencies file for bench_ext_update_attack.
# This may be replaced when dependencies are built.
