file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_update_attack.dir/bench_ext_update_attack.cc.o"
  "CMakeFiles/bench_ext_update_attack.dir/bench_ext_update_attack.cc.o.d"
  "bench_ext_update_attack"
  "bench_ext_update_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_update_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
