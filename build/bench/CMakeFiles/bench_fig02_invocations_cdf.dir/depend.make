# Empty dependencies file for bench_fig02_invocations_cdf.
# This may be replaced when dependencies are built.
