# Empty dependencies file for bench_fig09_key_api_time.
# This may be replaced when dependencies are built.
