file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_key_api_time.dir/bench_fig09_key_api_time.cc.o"
  "CMakeFiles/bench_fig09_key_api_time.dir/bench_fig09_key_api_time.cc.o.d"
  "bench_fig09_key_api_time"
  "bench_fig09_key_api_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_key_api_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
