// Figure 14: evolution of the selected key-API count over 12 months of
// monthly re-selection + retraining, with the Android SDK gaining new APIs
// every several months. Paper: the count only fluctuates between 425 and
// 432, so the per-app detection time stays stable.

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "market/simulation.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);

  android::UniverseConfig universe_config;
  universe_config.num_apis = args.apis;
  universe_config.seed = args.seed ^ 0xA11D;
  android::ApiUniverse universe = android::ApiUniverse::Generate(universe_config);

  market::MarketConfig config;
  config.months = args.quick ? 3 : 12;
  config.days_per_month = args.quick ? 4 : 6;
  config.apps_per_day = args.AppsOr(100);
  config.initial_study_apps = args.quick ? 2'000 : 5'000;
  config.seed = args.seed;
  bench::PrintHeader("Figure 14 — key-API count under monthly model evolution",
                     "count fluctuates only between 425 and 432 over 12 months", args,
                     config.months * config.days_per_month * config.apps_per_day);

  market::MarketSimulation sim(universe, config);
  const auto months = sim.Run();

  util::Table table({"month", "key APIs", "SDK level", "corpus precision", "corpus recall"});
  size_t min_keys = SIZE_MAX, max_keys = 0;
  for (const market::MonthlyStats& m : months) {
    table.AddRow({std::to_string(m.month), std::to_string(m.key_api_count),
                  std::to_string(m.sdk_level), util::FormatPercent(m.checker_cm.Precision()),
                  util::FormatPercent(m.checker_cm.Recall())});
    min_keys = std::min(min_keys, m.key_api_count);
    max_keys = std::max(max_keys, m.key_api_count);
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\n");
  bench::PrintComparison("key-API count range", "425 .. 432",
                         std::to_string(min_keys) + " .. " + std::to_string(max_keys));
  bench::PrintComparison("relative fluctuation", "<2%",
                         util::FormatPercent(static_cast<double>(max_keys - min_keys) /
                                             static_cast<double>(std::max<size_t>(1, max_keys))));
  return 0;
}
