// Figure 6: per-app analysis time as a function of the number of tracked
// top-|SRC| APIs, with the paper's tri-modal fit (Eq. 1): linear growth for
// n < 800 (moderate-frequency, malware-leaning APIs), polynomial for
// n in [800, 1K] (enrollment of APIs heavily used by everyone), logarithmic
// beyond 1K (rare-tail APIs). Paper R^2: 0.96 / 0.99 / 0.99; tracking up to
// ~490 APIs keeps the average under 5 minutes.

#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "core/selection.h"
#include "stats/descriptive.h"
#include "stats/fitting.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const size_t sample = args.AppsOr(300);
  bench::PrintHeader("Figure 6 — analysis time vs top-n tracked APIs (tri-modal fit)",
                     "t(n): linear <800, power 800..1K, log >1K; R^2 = .96/.99/.99", args,
                     sample);

  bench::StudyContext context(args, 3'000);
  const auto apks = bench::MaterializeApks(context, sample, 6);
  const auto priority =
      core::TopCorrelatedApis(context.correlations(), context.study().size(),
                              context.universe().num_apis());

  const emu::EngineConfig google;
  std::vector<double> xs, ys;
  util::Table table({"tracked top-n APIs", "mean time (min)"});
  for (size_t n : {1u, 50u, 100u, 200u, 300u, 400u, 490u, 600u, 800u, 850u, 900u, 950u, 1'000u,
                   1'500u, 2'500u, 5'000u, 10'000u, 20'000u, 35'000u, 50'000u}) {
    if (n > priority.size()) {
      break;
    }
    const std::vector<android::ApiId> top(priority.begin(),
                                          priority.begin() + static_cast<ptrdiff_t>(n));
    const emu::TrackedApiSet tracked(top, context.universe().num_apis());
    const auto minutes = bench::EmulationMinutes(context.universe(), apks, google, tracked);
    const double mean = stats::Mean(minutes);
    xs.push_back(static_cast<double>(n));
    ys.push_back(mean);
    table.AddRow({util::FormatCount(static_cast<double>(n)), util::FormatDouble(mean, 2)});
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  const stats::TriModalFit fit = stats::FitTriModal(xs, ys, 800.0, 1'000.0);
  std::printf("\ntri-modal fit: %s\n\n", fit.ToString().c_str());
  bench::PrintComparison("linear-segment R^2 (n<800)", "0.96",
                         util::FormatDouble(fit.linear.r_squared, 3));
  bench::PrintComparison("power-segment R^2 (800<=n<=1K)", "0.99",
                         util::FormatDouble(fit.power.r_squared, 3));
  bench::PrintComparison("log-segment R^2 (n>1K)", "0.99",
                         util::FormatDouble(fit.log.r_squared, 3));
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] == 490.0) {
      bench::PrintComparison("mean time @ top-490 APIs", "<5 min",
                             util::FormatDouble(ys[i], 2) + " min");
    }
  }
  return 0;
}
