// Figure 2: CDF of the number of framework API invocations during one app's
// emulation (5K Monkey events). Paper: min 15.8M, median 39.7M, mean 42.3M,
// max 64.6M — i.e. one Monkey event triggers ~8,460 invocations on average.

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/common.h"
#include "stats/cdf.h"
#include "stats/descriptive.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 4'000);
  const size_t apps = context.study().size();
  bench::PrintHeader("Figure 2 — CDF of per-app API invocations (5K events)",
                     "min 15.8M / median 39.7M / mean 42.3M / max 64.6M", args, apps);

  std::vector<double> millions;
  millions.reserve(apps);
  for (const core::StudyRecord& record : context.study().records) {
    millions.push_back(static_cast<double>(record.total_invocations) / 1e6);
  }
  const stats::EmpiricalCdf cdf(millions);
  const stats::Summary summary = stats::Summarize(millions);

  util::Table table({"invocations (M)", "CDF"});
  for (const auto& [x, p] : cdf.Curve(20)) {
    table.AddRow({util::FormatDouble(x, 1), util::FormatDouble(p, 3)});
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\n");
  bench::PrintComparison("mean invocations", "42.3M", util::FormatCount(summary.mean * 1e6));
  bench::PrintComparison("median invocations", "39.7M",
                         util::FormatCount(summary.median * 1e6));
  bench::PrintComparison("min invocations", "15.8M", util::FormatCount(summary.min * 1e6));
  bench::PrintComparison("max invocations", "64.6M", util::FormatCount(summary.max * 1e6));
  bench::PrintComparison("invocations per Monkey event", "~8,460",
                         util::FormatCount(summary.mean * 1e6 / 5'000.0));
  return 0;
}
