// Table 2: the nine classification models — precision, recall, and training
// time — when tracking all ~50K framework APIs vs only the 426 key APIs.
// Paper: random forest offers the best balance in both regimes
// (50K: 91.6/90.2 @ 29.1 min; 426: 96.8/93.7 @ 14.4 s); kNN/SVM/DNN are
// orders of magnitude slower to train; most models improve with fewer,
// better features.

#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "ml/cross_validation.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

namespace {

std::string FormatSeconds(double seconds) {
  if (seconds >= 120.0) {
    return util::FormatDouble(seconds / 60.0, 1) + " min";
  }
  return util::FormatDouble(seconds, 1) + " s";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 4'000);
  const size_t apps = context.study().size();
  bench::PrintHeader("Table 2 — nine classifiers, 50K-API vs key-API features",
                     "RF best balance: 50K 91.6/90.2; 426 keys 96.8/93.7, 14.4 s train", args,
                     apps);

  // All-API feature space (API bits only, like the §4.3 study).
  std::vector<android::ApiId> all_apis(context.universe().num_apis());
  for (android::ApiId id = 0; id < all_apis.size(); ++id) {
    all_apis[id] = id;
  }
  const core::FeatureSchema all_schema(std::move(all_apis), context.universe(),
                                       core::FeatureOptions::ApisOnly());
  const ml::Dataset all_data = core::BuildDataset(context.study(), all_schema,
                                                  context.universe());

  // Key-API space (API bits only, for apples-to-apples with the 50K run).
  const core::KeyApiSelection sel = context.Selection();
  const core::FeatureSchema key_schema(sel.key_apis, context.universe(),
                                       core::FeatureOptions::ApisOnly());
  const ml::Dataset key_data = core::BuildDataset(context.study(), key_schema,
                                                  context.universe());
  std::printf("key APIs selected: %zu\n\n", sel.key_apis.size());

  const size_t folds = 2;
  const ml::ClassifierKind kinds[] = {
      ml::ClassifierKind::kNaiveBayes, ml::ClassifierKind::kLogisticRegression,
      ml::ClassifierKind::kSvm,        ml::ClassifierKind::kGbdt,
      ml::ClassifierKind::kKnn,        ml::ClassifierKind::kCart,
      ml::ClassifierKind::kAnn,        ml::ClassifierKind::kDnn,
      ml::ClassifierKind::kRandomForest,
  };

  util::Table table({"model", "P (50K)", "R (50K)", "train (50K)", "P (key)", "R (key)",
                     "train (key)"});
  for (ml::ClassifierKind kind : kinds) {
    const auto on_all = ml::CrossValidate(all_data, folds, 3, [&] {
      return ml::MakeClassifier(kind, 11);
    });
    const auto on_key = ml::CrossValidate(key_data, folds, 3, [&] {
      return ml::MakeClassifier(kind, 11);
    });
    table.AddRow({ml::ClassifierKindName(kind), util::FormatPercent(on_all.Precision()),
                  util::FormatPercent(on_all.Recall()), FormatSeconds(on_all.mean_train_seconds),
                  util::FormatPercent(on_key.Precision()), util::FormatPercent(on_key.Recall()),
                  FormatSeconds(on_key.mean_train_seconds)});
    std::printf("done: %s\n", ml::ClassifierKindName(kind).c_str());
  }
  std::printf("\n");
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\npaper shape checks: RF should lead both precision columns; key-API runs\n"
              "should beat 50K runs for most models; tree/linear models train orders of\n"
              "magnitude faster than kNN/DNN.\n");
  return 0;
}
