// Shared infrastructure for the experiment-regeneration benchmarks. Every
// bench binary reproduces one table or figure from the paper's evaluation:
// it builds the framework model, synthesizes a corpus, runs the study
// pipeline at a configurable scale, and prints the same rows/series the
// paper reports (plus the paper's published values for eyeballing).
//
// Common flags: --apps N, --apis N, --seed S, --quick (tiny scale smoke run).

#ifndef APICHECKER_BENCH_COMMON_H_
#define APICHECKER_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>

#include "android/api_universe.h"
#include "core/checker.h"
#include "core/selection.h"
#include "core/study.h"
#include "emu/engine.h"
#include "synth/corpus.h"

namespace apichecker::bench {

struct BenchArgs {
  size_t apps = 0;       // 0 = per-bench default.
  size_t apis = 50'000;
  uint64_t seed = 42;
  bool quick = false;    // Shrinks everything for CI smoke runs.
  // Where to write the metrics JSON at exit (--metrics-out flag or the
  // APICHECKER_METRICS_OUT env var). A delimited "=== metrics json ===" block
  // also goes to stdout at exit so captured bench output carries the stage
  // latencies either way.
  std::string metrics_out;

  static BenchArgs Parse(int argc, char** argv);

  size_t AppsOr(size_t fallback) const {
    if (apps != 0) {
      return apps;
    }
    return quick ? std::max<size_t>(400, fallback / 20) : fallback;
  }
};

// Universe + generator + study corpus, built once per binary.
class StudyContext {
 public:
  StudyContext(const BenchArgs& args, size_t default_apps);

  const android::ApiUniverse& universe() const { return *universe_; }
  android::ApiUniverse& mutable_universe() { return *universe_; }
  synth::CorpusGenerator& generator() { return *generator_; }
  const core::StudyDataset& study() const { return study_; }
  const BenchArgs& args() const { return args_; }

  // SRC correlations over the study (computed lazily, cached).
  const std::vector<core::ApiCorrelation>& correlations() const;
  // Key-API selection from the cached correlations.
  core::KeyApiSelection Selection() const;

 private:
  BenchArgs args_;
  std::unique_ptr<android::ApiUniverse> universe_;
  std::unique_ptr<synth::CorpusGenerator> generator_;
  core::StudyDataset study_;
  mutable std::vector<core::ApiCorrelation> correlations_;
};

// Prints the standard bench header: what is being regenerated and at what
// scale, plus the reminder that shapes (not absolute values) are the target.
void PrintHeader(const std::string& experiment, const std::string& paper_summary,
                 const BenchArgs& args, size_t apps);

// "paper: X | measured: Y" one-liner.
void PrintComparison(const std::string& metric, const std::string& paper_value,
                     const std::string& measured_value);

// Materializes `count` fresh submissions (APK build + parse) from a stream
// seeded off the context's seed plus `salt`.
std::vector<apk::ApkFile> MaterializeApks(const StudyContext& context, size_t count,
                                          uint64_t salt);

// Per-app emulation minutes for a batch under one engine/tracked-set combo.
std::vector<double> EmulationMinutes(const android::ApiUniverse& universe,
                                     const std::vector<apk::ApkFile>& apks,
                                     const emu::EngineConfig& engine_config,
                                     const emu::TrackedApiSet& tracked);

// Prints an empirical CDF as a table alongside its summary line.
void PrintCdf(const std::string& label, const std::vector<double>& samples, size_t points = 15);

}  // namespace apichecker::bench

#endif  // APICHECKER_BENCH_COMMON_H_
