// Extension (paper §2 threat model): update attacks — a benign package's new
// version smuggles in a malicious payload. Fingerprint antivirus is blind to
// them by construction (the signature database only knows *previously seen*
// malicious code), so they stress exactly the ML stage. This bench runs the
// market pipeline under increasing update-attack pressure and reports how
// many attacks the checker catches and what happens to overall accuracy.

#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "market/simulation.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Extension — update-attack pressure on the pipeline",
                     "§2: repackaging/update attacks evade fingerprints, not the ML stage",
                     args, args.AppsOr(100) * 24);

  util::Table table({"attack rate", "attacks", "caught by checker", "catch rate",
                     "overall precision", "overall recall"});
  for (double rate : {0.0, 0.01, 0.03}) {
    android::UniverseConfig universe_config;
    universe_config.num_apis = args.apis;
    universe_config.seed = args.seed ^ 0xA11D;
    android::ApiUniverse universe = android::ApiUniverse::Generate(universe_config);

    market::MarketConfig config;
    config.months = args.quick ? 2 : 3;
    config.days_per_month = 6;
    config.apps_per_day = args.AppsOr(100);
    config.initial_study_apps = args.quick ? 1'500 : 3'000;
    config.update_attack_rate = rate;
    config.seed = args.seed;

    market::MarketSimulation sim(universe, config);
    const auto months = sim.Run();

    uint64_t attacks = 0, caught = 0;
    ml::ConfusionMatrix cm;
    for (const market::MonthlyStats& m : months) {
      attacks += m.update_attacks_submitted;
      caught += m.update_attacks_caught;
      cm += m.checker_cm;
    }
    table.AddRow({util::FormatPercent(rate), std::to_string(attacks), std::to_string(caught),
                  attacks == 0 ? "n/a"
                               : util::FormatPercent(static_cast<double>(caught) /
                                                     static_cast<double>(attacks)),
                  util::FormatPercent(cm.Precision()), util::FormatPercent(cm.Recall())});
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nexpected shape: most update attacks are caught dynamically; accuracy\n"
              "degrades only mildly as attack pressure rises\n");
  return 0;
}
