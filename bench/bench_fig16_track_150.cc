// Figure 16 / §5.4: time CDFs when tracking no API, the top-150
// Gini-important key APIs, and all 426 key APIs (Google engine), plus the
// accuracy retained at 150. Paper: top-150 achieves 98.3%/96.6% (vs
// 98.6%/96.7% at 426) while cutting the per-app time to ~2.5 min — feasible
// even on low-end vetting hardware.

#include <cstdio>

#include "bench/common.h"
#include "ml/cross_validation.h"
#include "stats/descriptive.h"
#include "util/strings.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 4'000);
  bench::PrintHeader("Figure 16 — tracking none vs top-150 vs all key APIs",
                     "top-150: 98.3/96.6 at ~2.5 min (426: 98.6/96.7 at 4.3 min)", args,
                     context.study().size());

  core::ApiCheckerConfig checker_config;
  core::ApiChecker checker(context.universe(), checker_config);
  checker.TrainFromStudy(context.study());
  const std::vector<android::ApiId> ranked = checker.KeyApisByImportance();
  const size_t k = std::min<size_t>(150, ranked.size());
  const std::vector<android::ApiId> top150(ranked.begin(),
                                           ranked.begin() + static_cast<ptrdiff_t>(k));

  // Accuracy at 150 vs full key set (A+P+I).
  const size_t folds = args.quick ? 3 : 5;
  auto evaluate = [&](const std::vector<android::ApiId>& apis) {
    const core::FeatureSchema schema(apis, context.universe());
    const ml::Dataset data = core::BuildDataset(context.study(), schema, context.universe());
    return ml::CrossValidate(data, folds, 3, [] {
      return ml::MakeClassifier(ml::ClassifierKind::kRandomForest, 11);
    });
  };
  const auto at150 = evaluate(top150);
  const auto at_full = evaluate(checker.selection().key_apis);

  // Time CDFs.
  const auto apks = bench::MaterializeApks(context, args.AppsOr(600), 16);
  const emu::EngineConfig google;
  const auto t_none =
      bench::EmulationMinutes(context.universe(), apks, google,
                              emu::TrackedApiSet::None(context.universe().num_apis()));
  const auto t_150 = bench::EmulationMinutes(
      context.universe(), apks, google,
      emu::TrackedApiSet(top150, context.universe().num_apis()));
  const auto t_key = bench::EmulationMinutes(
      context.universe(), apks, google,
      emu::TrackedApiSet(checker.selection().key_apis, context.universe().num_apis()));

  bench::PrintCdf("Track no API       (minutes)", t_none, 10);
  std::printf("\n");
  bench::PrintCdf("Track top-150 APIs (minutes)", t_150, 10);
  std::printf("\n");
  bench::PrintCdf("Track all key APIs (minutes)", t_key, 10);

  std::printf("\n");
  bench::PrintComparison("top-150 precision/recall", "98.3% / 96.6%",
                         util::FormatPercent(at150.Precision()) + " / " +
                             util::FormatPercent(at150.Recall()));
  bench::PrintComparison("full key-set precision/recall", "98.6% / 96.7%",
                         util::FormatPercent(at_full.Precision()) + " / " +
                             util::FormatPercent(at_full.Recall()));
  bench::PrintComparison("top-150 mean time", "2.5 min",
                         util::FormatDouble(stats::Mean(t_150), 2) + " min");
  bench::PrintComparison("full key-set mean time", "4.3 min",
                         util::FormatDouble(stats::Mean(t_key), 2) + " min");
  return 0;
}
