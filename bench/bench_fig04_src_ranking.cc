// Figure 4: Spearman rank correlation (SRC) of every framework API with the
// malice label, ranked in descending order. Paper: 247 APIs with SRC >= 0.2
// and 2,536 with SRC <= -0.2 (most of the latter seldom invoked); |SRC| <
// 0.2 is considered a trivial relationship.

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 5'000);
  const size_t apps = context.study().size();
  bench::PrintHeader("Figure 4 — SRC of all framework APIs, ranked",
                     "247 APIs with SRC>=0.2; 2,536 with SRC<=-0.2; head/tail asymmetry", args,
                     apps);

  std::vector<double> srcs;
  srcs.reserve(context.universe().num_apis());
  size_t pos_nontrivial = 0, neg_nontrivial = 0, neg_seldom = 0, neg_frequent = 0;
  for (const core::ApiCorrelation& c : context.correlations()) {
    srcs.push_back(c.src);
    if (c.src >= 0.2) {
      ++pos_nontrivial;
    }
    if (c.src <= -0.2) {
      ++neg_nontrivial;
      if (static_cast<double>(c.support) < 0.001 * static_cast<double>(apps)) {
        ++neg_seldom;
      }
      if (static_cast<double>(c.support) >= 0.5 * static_cast<double>(apps)) {
        ++neg_frequent;
      }
    }
  }
  std::sort(srcs.begin(), srcs.end(), std::greater<>());

  util::Table table({"API rank", "SRC"});
  const size_t n = srcs.size();
  for (double fraction : {0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9,
                          0.99, 0.999}) {
    const size_t rank = std::min(n - 1, static_cast<size_t>(fraction * n));
    table.AddRow({util::FormatCount(static_cast<double>(rank + 1)),
                  util::FormatDouble(srcs[rank], 4)});
  }
  table.AddRow({util::FormatCount(static_cast<double>(n)), util::FormatDouble(srcs.back(), 4)});
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\n");
  bench::PrintComparison("APIs with SRC >= 0.2", "247", std::to_string(pos_nontrivial));
  bench::PrintComparison("APIs with SRC <= -0.2", "2,536 (mostly seldom)",
                         std::to_string(neg_nontrivial) + " (" + std::to_string(neg_seldom) +
                             " seldom, " + std::to_string(neg_frequent) + " frequent)");
  bench::PrintComparison("frequent negatives kept for Set-C", "13",
                         std::to_string(neg_frequent));
  return 0;
}
