// Table 1: comparison with representative API-centric malware detectors —
// analysis method, per-app analysis time, API feature budget, and
// precision/recall — all re-measured on the same synthetic corpus. Paper's
// APICHECKER row: dynamic, 78 s/app, 426 APIs, ~500K apps, 98.6%/96.7%.
// Appendix: the §5.4 robustness scan (key APIs cover 10.5% of the framework
// once implementation dependencies are counted).

#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "core/baselines.h"
#include "ml/cross_validation.h"
#include "stats/descriptive.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 5'000);
  const size_t apps = context.study().size();
  bench::PrintHeader("Table 1 — related-work comparison on one corpus",
                     "APICHECKER: dynamic, 78 s/app, 426 APIs, 98.6%/96.7%", args, apps);

  // Train/test split shared by every detector.
  const size_t test_every = 5;  // 80/20 split by index (stream order).
  core::StudyDataset train, test;
  for (size_t i = 0; i < context.study().size(); ++i) {
    ((i % test_every == 0) ? test : train).records.push_back(context.study().records[i]);
  }

  util::Table table({"detector", "analysis", "time/app", "#APIs", "precision", "recall"});
  util::Rng rng(args.seed);
  for (const core::BaselineSpec& spec : core::StandardBaselines()) {
    core::BaselineDetector detector(context.universe(), spec, args.seed);
    detector.Train(train);
    const ml::ConfusionMatrix cm = detector.Evaluate(test);
    std::vector<double> minutes;
    for (int i = 0; i < 200; ++i) {
      minutes.push_back(detector.SampleAnalysisMinutes(rng));
    }
    table.AddRow({spec.name + " " + spec.citation,
                  spec.mode == core::BaselineSpec::Mode::kStatic ? "static" : "dynamic",
                  util::FormatDouble(stats::Mean(minutes) * 60.0, 0) + " s",
                  std::to_string(detector.selected_apis().size()),
                  util::FormatPercent(cm.Precision()), util::FormatPercent(cm.Recall())});
  }

  // APICHECKER row: key-API selection on the training split, A+P+I forest,
  // measured lightweight-engine scan time.
  const auto correlations = core::ComputeApiCorrelations(train, context.universe().num_apis());
  const core::KeyApiSelection sel =
      core::SelectKeyApis(correlations, context.universe(), train.size());
  const core::FeatureSchema schema(sel.key_apis, context.universe());
  const ml::Dataset train_data = core::BuildDataset(train, schema, context.universe());
  const ml::Dataset test_data = core::BuildDataset(test, schema, context.universe());
  auto forest = ml::MakeClassifier(ml::ClassifierKind::kRandomForest, args.seed);
  forest->Train(train_data);
  const ml::ConfusionMatrix cm = forest->Evaluate(test_data);

  emu::EngineConfig light;
  light.kind = emu::EngineKind::kLightweight;
  const auto apks = bench::MaterializeApks(context, 300, 21);
  const auto minutes =
      bench::EmulationMinutes(context.universe(), apks, light,
                              emu::TrackedApiSet(sel.key_apis, context.universe().num_apis()));
  table.AddRow({"APICHECKER (this work)", "dynamic",
                util::FormatDouble(stats::Mean(minutes) * 60.0, 0) + " s",
                std::to_string(sel.key_apis.size()), util::FormatPercent(cm.Precision()),
                util::FormatPercent(cm.Recall())});

  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\n");
  bench::PrintComparison("APICHECKER scan time", "78 s",
                         util::FormatDouble(stats::Mean(minutes) * 60.0, 0) + " s");
  bench::PrintComparison("APICHECKER precision/recall", "98.6% / 96.7%",
                         util::FormatPercent(cm.Precision()) + " / " +
                             util::FormatPercent(cm.Recall()));

  // §5.4 appendix: dependency coverage of the key APIs.
  const auto dependents = context.universe().TransitiveDependents(sel.key_apis);
  const double direct =
      static_cast<double>(sel.key_apis.size()) / context.universe().num_apis();
  const double total = static_cast<double>(sel.key_apis.size() + dependents.size()) /
                       context.universe().num_apis();
  std::printf("\n[§5.4 robustness] key APIs: %zu (%.2f%% of framework); APIs implemented via "
              "them: %zu; combined coverage %.1f%% (paper: 0.85%% direct, 10.5%% combined)\n",
              sel.key_apis.size(), direct * 100.0, dependents.size(), total * 100.0);
  return 0;
}
