// Figure 1: relationship among the number of Monkey events, Referred
// Activity Coverage (RAC), and emulation time. Paper anchors: 5K events ->
// 76.5% RAC at ~2.1 min; 100K events -> ~86% RAC at ~35.7 min; +10K events
// beyond 5K adds only ~1.5% RAC.

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/common.h"
#include "emu/engine.h"
#include "stats/descriptive.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const size_t sample = args.AppsOr(400);
  bench::PrintHeader("Figure 1 — Monkey events vs RAC vs emulation time",
                     "5K events: 76.5% RAC @ 2.1 min; 100K events: 86% RAC @ 35.7 min", args,
                     sample);

  bench::StudyContext context(args, sample);

  // Pre-materialize the sample of APKs once.
  std::vector<apk::ApkFile> apks;
  synth::CorpusConfig corpus_config;
  corpus_config.seed = args.seed + 1;
  synth::CorpusGenerator generator(context.universe(), corpus_config);
  for (size_t i = 0; i < sample; ++i) {
    auto apk = apk::ParseApk(synth::BuildApkBytes(generator.Next(), context.universe()));
    if (apk.ok()) {
      apks.push_back(std::move(*apk));
    }
  }

  const emu::TrackedApiSet none = emu::TrackedApiSet::None(context.universe().num_apis());
  util::Table table({"monkey events", "mean RAC", "expected RAC (model)",
                     "mean emulation time (min)"});
  double rac_at_5k = 0.0, rac_at_100k = 0.0, time_at_5k = 0.0;
  for (uint32_t events : {500u, 1'000u, 2'000u, 3'000u, 5'000u, 7'000u, 10'000u, 15'000u,
                          30'000u, 50'000u, 100'000u}) {
    emu::EngineConfig config;
    config.monkey.num_events = events;
    const emu::DynamicAnalysisEngine engine(context.universe(), config);
    std::vector<double> racs, minutes;
    for (const apk::ApkFile& apk : apks) {
      const emu::EmulationReport report = engine.Run(apk, none);
      racs.push_back(report.rac);
      minutes.push_back(report.emulation_minutes);
    }
    const double mean_rac = stats::Mean(racs);
    const double mean_minutes = stats::Mean(minutes);
    if (events == 5'000) {
      rac_at_5k = mean_rac;
      time_at_5k = mean_minutes;
    }
    if (events == 100'000) {
      rac_at_100k = mean_rac;
    }
    table.AddRow({util::FormatCount(events), util::FormatPercent(mean_rac),
                  util::FormatPercent(emu::ExpectedRac(events)),
                  util::FormatDouble(mean_minutes, 2)});
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\n");
  bench::PrintComparison("RAC @ 5K events", "76.5%", util::FormatPercent(rac_at_5k));
  bench::PrintComparison("emulation time @ 5K events", "2.1 min",
                         util::FormatDouble(time_at_5k, 2) + " min");
  bench::PrintComparison("RAC @ 100K events", "~86%", util::FormatPercent(rac_at_100k));
  return 0;
}
