// Figure 9: per-app emulation time CDF when tracking only the 426 key APIs
// on the original (Google emulator) engine. Paper: mean 4.3 min, median 3.5,
// range 1.1–15.3 — down from 53.6 min (all APIs), close to 2.1 min (none).

#include <cstdio>

#include "bench/common.h"
#include "stats/descriptive.h"
#include "util/strings.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const size_t sample = args.AppsOr(500);
  bench::PrintHeader("Figure 9 — emulation time tracking the key APIs (Google engine)",
                     "mean 4.3 min / median 3.5 / max 15.3 (vs 53.6 all, 2.1 none)", args,
                     sample);

  bench::StudyContext context(args, 4'000);
  const core::KeyApiSelection sel = context.Selection();
  std::printf("key APIs selected: %zu\n\n", sel.key_apis.size());

  const auto apks = bench::MaterializeApks(context, sample, 9);
  const emu::EngineConfig google;
  const emu::TrackedApiSet key(sel.key_apis, context.universe().num_apis());
  const auto t_key = bench::EmulationMinutes(context.universe(), apks, google, key);
  const auto t_none =
      bench::EmulationMinutes(context.universe(), apks, google,
                              emu::TrackedApiSet::None(context.universe().num_apis()));

  bench::PrintCdf("Track key APIs (minutes)", t_key);
  std::printf("\n");
  bench::PrintCdf("Track no API   (minutes)", t_none);

  const stats::Summary s = stats::Summarize(t_key);
  std::printf("\n");
  bench::PrintComparison("key-API mean time", "4.3 min", util::FormatDouble(s.mean, 2) + " min");
  bench::PrintComparison("key-API median time", "3.5 min",
                         util::FormatDouble(s.median, 2) + " min");
  bench::PrintComparison("baseline (no API) mean", "2.1 min",
                         util::FormatDouble(stats::Mean(t_none), 2) + " min");
  return 0;
}
