// Extension (paper §6 future work): richer feature encodings. The deployed
// system uses a One-Hot bit vector, which "could lose certain feature
// information (e.g., API invocation frequency) and lead to over-fitting";
// the authors propose histogram encodings. This bench compares the deployed
// binary encoding against log-scale frequency-bucket encodings of the same
// key APIs, all with auxiliary P+I features, under the same 5-fold CV.

#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "ml/cross_validation.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 4'000);
  bench::PrintHeader("Extension — binary vs histogram feature encoding",
                     "paper §6: histogram encoding should retain invocation frequency", args,
                     context.study().size());

  const core::KeyApiSelection sel = context.Selection();
  const size_t folds = args.quick ? 3 : 5;

  struct Variant {
    const char* label;
    uint8_t buckets;
  };
  const Variant variants[] = {{"binary (deployed)", 0}, {"histogram x2", 2},
                              {"histogram x4", 4}, {"histogram x6", 6}};

  util::Table table({"encoding", "features", "precision", "recall", "F1"});
  for (const Variant& variant : variants) {
    core::FeatureOptions options = core::FeatureOptions::All();
    options.frequency_buckets = variant.buckets;
    const core::FeatureSchema schema(sel.key_apis, context.universe(), options);
    const ml::Dataset data = core::BuildDataset(context.study(), schema, context.universe());
    const auto result = ml::CrossValidate(data, folds, 3, [] {
      return ml::MakeClassifier(ml::ClassifierKind::kRandomForest, 11);
    });
    table.AddRow({variant.label, std::to_string(schema.num_features()),
                  util::FormatPercent(result.Precision()), util::FormatPercent(result.Recall()),
                  util::FormatPercent(result.F1())});
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\n(frequency buckets are log10-scaled per-API one-hot groups)\n");
  return 0;
}
