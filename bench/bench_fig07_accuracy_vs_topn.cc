// Figure 7: random-forest precision/recall when tracking the top-n
// correlated APIs. Paper: top-490 -> 96.3%/92.4%; top-1K -> 94.7%/92.0%;
// all 50K -> 91.6%/90.2% — strategically tracking FEWER APIs beats tracking
// everything (over-fitting on sparse/rare features).

#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "core/selection.h"
#include "ml/cross_validation.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 4'000);
  const size_t apps = context.study().size();
  bench::PrintHeader("Figure 7 — precision/recall vs top-n correlated APIs (RF)",
                     "top-490: 96.3/92.4; top-1K: 94.7/92.0; 50K: 91.6/90.2 (over-fit)", args,
                     apps);

  const auto priority = core::TopCorrelatedApis(context.correlations(), apps,
                                                context.universe().num_apis());
  const size_t folds = args.quick ? 3 : 5;

  util::Table table({"tracked top-n", "precision", "recall", "F1"});
  double p490 = 0.0, r490 = 0.0, p_all = 0.0, r_all = 0.0;
  for (size_t n : {50u, 100u, 200u, 300u, 426u, 490u, 600u, 800u, 1'000u, 10'000u, 50'000u}) {
    const size_t take = std::min(n, priority.size());
    std::vector<android::ApiId> top(priority.begin(),
                                    priority.begin() + static_cast<ptrdiff_t>(take));
    const core::FeatureSchema schema(std::move(top), context.universe(),
                                     core::FeatureOptions::ApisOnly());
    const ml::Dataset data = core::BuildDataset(context.study(), schema, context.universe());
    const auto result = ml::CrossValidate(data, folds, 3, [] {
      return ml::MakeClassifier(ml::ClassifierKind::kRandomForest, 11);
    });
    table.AddRow({util::FormatCount(static_cast<double>(take)),
                  util::FormatPercent(result.Precision()), util::FormatPercent(result.Recall()),
                  util::FormatPercent(result.F1())});
    if (n == 490) {
      p490 = result.Precision();
      r490 = result.Recall();
    }
    if (take == priority.size() || n == 50'000) {
      p_all = result.Precision();
      r_all = result.Recall();
    }
    if (take == priority.size()) {
      break;
    }
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\n");
  bench::PrintComparison("top-490 precision/recall", "96.3% / 92.4%",
                         util::FormatPercent(p490) + " / " + util::FormatPercent(r490));
  bench::PrintComparison("all-APIs precision/recall", "91.6% / 90.2%",
                         util::FormatPercent(p_all) + " / " + util::FormatPercent(r_all));
  bench::PrintComparison("fewer-is-better crossover", "top-490 beats 50K",
                         (p490 + r490 > p_all + r_all) ? "reproduced" : "NOT reproduced");
  return 0;
}
