// Figure 8: sizes and overlaps of the three key-API selection sets. Paper:
// Set-C 260 (statistical correlation), Set-P 112 (restrictive permissions),
// Set-S 70 (sensitive operations); only 16 APIs overlap, so the three
// strategies are near-orthogonal and their union has 426 key APIs.

#include <cstdio>

#include "bench/common.h"
#include "util/strings.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 5'000);
  bench::PrintHeader("Figure 8 — Set-C / Set-P / Set-S sizes and overlaps",
                     "|C|=260 |P|=112 |S|=70, 16 overlapped, union=426", args,
                     context.study().size());

  const core::KeyApiSelection sel = context.Selection();
  std::printf("  Set-C (correlation)      : %zu\n", sel.set_c.size());
  std::printf("  Set-P (permissions)      : %zu\n", sel.set_p.size());
  std::printf("  Set-S (sensitive ops)    : %zu\n", sel.set_s.size());
  std::printf("  C∩P only                 : %zu\n", sel.overlap_cp);
  std::printf("  C∩S only                 : %zu\n", sel.overlap_cs);
  std::printf("  P∩S only                 : %zu\n", sel.overlap_ps);
  std::printf("  C∩P∩S                    : %zu\n", sel.overlap_cps);
  std::printf("\n");
  bench::PrintComparison("Set-C", "260", std::to_string(sel.set_c.size()));
  bench::PrintComparison("Set-P", "112", std::to_string(sel.set_p.size()));
  bench::PrintComparison("Set-S", "70", std::to_string(sel.set_s.size()));
  bench::PrintComparison("total overlapped APIs", "16",
                         std::to_string(sel.total_overlapped()));
  bench::PrintComparison("key APIs (union)", "426", std::to_string(sel.key_apis.size()));
  return 0;
}
