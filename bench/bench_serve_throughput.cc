// Serving-layer load test (paper §5: ~10K APKs/day arrive at the market;
// APICHECKER must return verdicts within the review SLA and swap in the
// monthly retrained model with zero downtime). This bench replays a synthetic
// submission trace from multiple producer threads through serve::VettingService,
// hot-swaps the model mid-run, and checks the two serving invariants:
//   1. zero lost submissions — every accepted submission resolves exactly once
//      (accepted == completed + deadline_expired + parse_errors);
//   2. hot-swap verdict invariance — a probe APK classified before and after
//      the swap (same weights, round-tripped through the model store) gets a
//      byte-identical verdict from both snapshots.
// Reported: sustained submissions/sec (target >= 1000), e2e latency p50/p99,
// and — when run with --farms M [--fault-rate P] — per-farm utilisation skew
// plus fault/failover accounting. Both invariants must hold under injected
// farm faults too: failover retries keep verdicts flowing and nothing is lost.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "apk/apk.h"
#include "bench/common.h"
#include "core/model_store.h"
#include "fabric/worker.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "ingest/apk_blob.h"
#include "ingest/stream_reader.h"
#include "obs/bench_report.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace_collector.h"
#include "serve/service.h"
#include "store/verdict_store.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace apichecker;

namespace {

// Submits one APK and blocks for its verdict (used for the determinism probes
// that bracket the hot swap). Under fault injection a probe batch can land on
// a farm mid-outage and come back rejected-unhealthy; that is the pool telling
// us to resubmit, not a lost verdict — so the probe retries a few times.
serve::VettingResult VetNow(serve::VettingService& service,
                            const ingest::ApkBlob& blob) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    serve::Submission submission;
    submission.blob = blob;
    auto accepted = service.Submit(std::move(submission));
    if (!accepted.ok()) {
      std::fprintf(stderr, "probe submission rejected: %s\n", accepted.error().c_str());
      std::exit(1);
    }
    serve::VettingResult result = accepted->get();
    if (result.status != serve::VetStatus::kRejectedUnhealthy) {
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));  // Cooldown.
  }
  std::fprintf(stderr, "probe never cleared the farm pool (all farms unhealthy)\n");
  std::exit(1);
}

// Fans `slice` of the trace out from `kProducers` threads, collecting every
// accepted future. Rejections (admission backpressure) are counted, not lost.
void SubmitSlice(serve::VettingService& service,
                 const std::vector<ingest::ApkBlob>& trace, size_t begin,
                 size_t end, std::vector<std::future<serve::VettingResult>>& futures,
                 size_t& rejected) {
  constexpr size_t kProducers = 4;
  std::vector<std::vector<std::future<serve::VettingResult>>> per_thread(kProducers);
  std::vector<size_t> per_thread_rejected(kProducers, 0);
  std::vector<std::thread> producers;
  for (size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (size_t i = begin + t; i < end; i += kProducers) {
        serve::Submission submission;
        submission.blob = trace[i];
        submission.priority = i % 32 == 0 ? serve::Priority::kInteractive
                                          : serve::Priority::kBulk;
        auto accepted = service.Submit(std::move(submission));
        if (accepted.ok()) {
          per_thread[t].push_back(std::move(*accepted));
        } else {
          ++per_thread_rejected[t];
        }
      }
    });
  }
  for (size_t t = 0; t < kProducers; ++t) {
    producers[t].join();
    for (auto& future : per_thread[t]) {
      futures.push_back(std::move(future));
    }
    rejected += per_thread_rejected[t];
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // Pool flags are bench-specific; BenchArgs ignores flags it doesn't know.
  size_t farms = 1;
  size_t fabric = 0;  // With N > 0: a third pass dispatching to N FarmWorker
                      // servers over real unix sockets (in-process servers,
                      // out-of-process wire path) to price the fabric hop.
  double fault_rate = 0.0;
  const char* store_dir = nullptr;
  size_t large_every = 16;   // Every Nth distinct APK padded large; 0 = off.
  size_t large_kb = 8'192;   // Padding target for "large" APKs.
  const char* bench_out = "BENCH_serve.json";  // "" disables the report.
  double sample_rate = 0.01;  // Trace-sampling rate of the traced pass.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--farms") == 0 && i + 1 < argc) {
      farms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fabric") == 0 && i + 1 < argc) {
      fabric = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fault-rate") == 0 && i + 1 < argc) {
      fault_rate = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--store-dir") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--large-every") == 0 && i + 1 < argc) {
      large_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--large-kb") == 0 && i + 1 < argc) {
      large_kb = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--bench-out") == 0 && i + 1 < argc) {
      bench_out = argv[++i];
    } else if (std::strcmp(argv[i], "--sample-rate") == 0 && i + 1 < argc) {
      sample_rate = std::strtod(argv[++i], nullptr);
    }
  }
  const size_t trace_size = args.AppsOr(4'000);
  // Whole-bench wall clock for the pass-6 runtime accounting: the rt_*
  // counters accumulate across every pass, so their rate is tasks over the
  // full measured window, not any single pass.
  const auto bench_start = std::chrono::steady_clock::now();
  bench::PrintHeader(
      "Serving throughput — online vetting under load with a mid-run hot swap",
      "§5: 10K APKs/day, verdicts within the review SLA, monthly model swap "
      "with zero downtime",
      args, trace_size);

  bench::StudyContext context(args, 2'000);
  core::ApiChecker checker(context.universe(), {});
  checker.TrainFromStudy(context.study());
  const std::vector<uint8_t> blob = core::SerializeChecker(checker);

  // Build the whole trace up front so the measured window contains service
  // work only. ~25% byte-identical resubmissions model version-unchanged
  // re-uploads (digest-cache traffic); resubmitted blobs share the original
  // handle, so each distinct APK's bytes exist exactly once. Every Nth
  // distinct APK is padded to ~--large-kb KB so the size-bucketed admission
  // histogram exercises the large path.
  synth::CorpusConfig corpus_config;
  corpus_config.seed = args.seed ^ 0x5e77e;
  synth::CorpusGenerator generator(context.universe(), corpus_config);
  util::Rng resubmit_rng(args.seed ^ 0xca11);
  auto make_blob = [&](std::vector<uint8_t> bytes) {
    ingest::MemoryStreamReader reader(bytes);
    auto blob = ingest::ReadApkBlob(reader);
    if (!blob.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", blob.error().c_str());
      std::exit(1);
    }
    return std::move(*blob);
  };
  std::vector<ingest::ApkBlob> trace;
  trace.reserve(trace_size);
  size_t fresh = 0;
  for (size_t i = 0; i < trace_size; ++i) {
    if (!trace.empty() && resubmit_rng.NextDouble() < 0.25) {
      trace.push_back(trace[resubmit_rng.NextBounded(trace.size())]);
      continue;
    }
    std::vector<uint8_t> bytes =
        synth::BuildApkBytes(generator.Next(), context.universe());
    ++fresh;
    if (large_every > 0 && fresh % large_every == 0) {
      auto inflated = apk::PadApk(bytes, large_kb * 1024, args.seed ^ fresh);
      if (inflated.ok()) {
        bytes = std::move(*inflated);
      }
    }
    trace.push_back(make_blob(std::move(bytes)));
  }
  std::vector<ingest::ApkBlob> probes;
  for (int i = 0; i < 3; ++i) {
    probes.push_back(
        make_blob(synth::BuildApkBytes(generator.Next(), context.universe())));
  }

  // Two passes over the identical workload: pass 1 with tracing off (the
  // baseline), pass 2 sampled at --sample-rate. Each pass gets its own
  // service (deserialized from the same trained-model blob) so cache state,
  // store contents, and farm health start identical — the throughput delta
  // between the passes IS the tracing overhead, measured in the same run and
  // recorded in BENCH_serve.json.
  struct PassOutcome {
    double elapsed_s = 0.0;
    size_t resolved = 0;
    double per_sec = 0.0;
    bool ok = true;
  };

  auto run_pass = [&](double rate, const char* label,
                      const std::vector<std::string>& fabric_endpoints =
                          {}) -> PassOutcome {
    PassOutcome out;
    serve::ServiceConfig config;
    config.num_shards = 8;
    config.shard_capacity = 2'048;
    config.farm.engine.kind = emu::EngineKind::kLightweight;
    config.scheduler.max_linger = std::chrono::milliseconds(5);
    config.pool.num_farms = std::max<size_t>(1, farms);
    config.pool.fault_plan.seed = args.seed;
    config.pool.fault_plan.fault_rate = fault_rate;
    config.trace_sample_rate = rate;
    config.fabric_endpoints = fabric_endpoints;
    if (fabric_endpoints.empty()) {
      std::printf(
          "\n--- pass %s: sample rate %.3f, %zu farms, fault rate %.2f ---\n",
          label, rate, config.pool.num_farms, fault_rate);
    } else {
      std::printf(
          "\n--- pass %s: sample rate %.3f, %zu fabric workers (socket "
          "dispatch), fault rate %.2f ---\n",
          label, rate, fabric_endpoints.size(), fault_rate);
    }
    if (store_dir != nullptr) {
      // Durability cost is part of the serving number: group-commit is the
      // production default, so the bench measures it too. Per-pass subdir so
      // the baseline's verdicts cannot warm-start the traced pass.
      config.store.dir = std::string(store_dir) + "/" + label;
      config.store.fault_plan.seed = args.seed;
      std::printf("verdict store: %s (policy %s)\n", config.store.dir.c_str(),
                  store::FsyncPolicyName(config.store.fsync_policy));
    }
    auto restored = core::DeserializeChecker(context.universe(), blob);
    if (!restored.ok()) {
      std::fprintf(stderr, "model restore failed: %s\n", restored.error().c_str());
      std::exit(1);
    }
    serve::VettingService service(context.universe(), config, std::move(*restored));

    const auto start = std::chrono::steady_clock::now();

    // Probe verdicts on snapshot v1, then half the trace, then the hot swap,
    // then the other half, then the probes again on v2. The v2 probes cannot
    // be cache hits: the swap stamps a new model version, which invalidates
    // every v1 cache entry.
    std::vector<serve::VettingResult> probes_v1;
    for (const auto& probe : probes) {
      probes_v1.push_back(VetNow(service, probe));
    }
    std::vector<std::future<serve::VettingResult>> futures;
    futures.reserve(trace.size());
    size_t rejected_at_submit = 0;
    SubmitSlice(service, trace, 0, trace.size() / 2, futures, rejected_at_submit);

    auto swapped = service.SwapModelFromBlob(blob);
    if (!swapped.ok()) {
      std::fprintf(stderr, "hot swap failed: %s\n", swapped.error().c_str());
      std::exit(1);
    }
    std::printf("hot-swapped serving model mid-run -> snapshot v%u\n", *swapped);

    SubmitSlice(service, trace, trace.size() / 2, trace.size(), futures,
                rejected_at_submit);
    std::vector<serve::VettingResult> probes_v2;
    for (const auto& probe : probes) {
      probes_v2.push_back(VetNow(service, probe));
    }

    size_t malicious = 0, cache_hits = 0, expired = 0, parse_errors = 0;
    size_t unhealthy = 0;
    for (auto& future : futures) {
      const serve::VettingResult result = future.get();
      malicious += result.status == serve::VetStatus::kOk && result.malicious;
      cache_hits += result.from_cache;
      expired += result.status == serve::VetStatus::kDeadlineExpired;
      parse_errors += result.status == serve::VetStatus::kParseError;
      unhealthy += result.status == serve::VetStatus::kRejectedUnhealthy;
    }
    out.elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    service.Shutdown();

    for (size_t i = 0; i < probes.size(); ++i) {
      if (probes_v1[i].malicious != probes_v2[i].malicious ||
          probes_v1[i].score != probes_v2[i].score) {
        std::printf("FAIL: probe %zu verdict changed across the hot swap "
                    "(v%u score %.6f -> v%u score %.6f)\n",
                    i, probes_v1[i].model_version, probes_v1[i].score,
                    probes_v2[i].model_version, probes_v2[i].score);
        out.ok = false;
      }
    }
    if (out.ok) {
      std::printf("hot-swap verdict invariance: OK (%zu probes identical on v1 and v2)\n",
                  probes.size());
    }

    const serve::ServiceStats stats = service.stats();
    if (stats.accepted != stats.resolved()) {
      std::printf("FAIL: lost submissions — accepted %llu but resolved %llu\n",
                  static_cast<unsigned long long>(stats.accepted),
                  static_cast<unsigned long long>(stats.resolved()));
      out.ok = false;
    } else {
      std::printf("zero lost submissions: OK (accepted %llu == resolved %llu; "
                  "%zu rejected by admission control)\n",
                  static_cast<unsigned long long>(stats.accepted),
                  static_cast<unsigned long long>(stats.resolved()),
                  rejected_at_submit);
    }

    out.resolved = futures.size() + probes.size() * 2;
    out.per_sec = out.elapsed_s > 0
                      ? static_cast<double>(out.resolved) / out.elapsed_s
                      : 0.0;
    std::printf("%zu submissions end-to-end in %.2f s; %zu cache hits, %zu malicious, "
                "%zu expired, %zu parse errors, %zu rejected-unhealthy, %llu batches\n",
                out.resolved, out.elapsed_s, cache_hits, malicious, expired,
                parse_errors, unhealthy,
                static_cast<unsigned long long>(stats.batches));

    // Per-farm utilisation: simulated busy minutes per farm, plus the skew
    // (max/mean) — 1.00 is a perfectly level pool; least-loaded routing should
    // keep this close to 1 even while faults shift load around.
    const serve::FarmPoolStats pool_stats = service.farm_pool_stats();
    double total_busy = 0.0, max_busy = 0.0;
    for (const serve::FarmStats& farm : pool_stats.farms) {
      std::printf("farm %u: %llu batches, %llu faults, %llu retries absorbed, "
                  "%llu breaker opens, busy %.1f sim-min\n",
                  farm.farm_id, static_cast<unsigned long long>(farm.batches_completed),
                  static_cast<unsigned long long>(farm.faults),
                  static_cast<unsigned long long>(farm.retries_absorbed),
                  static_cast<unsigned long long>(farm.breaker_opens), farm.busy_minutes);
      total_busy += farm.busy_minutes;
      max_busy = std::max(max_busy, farm.busy_minutes);
    }
    const double mean_busy =
        pool_stats.farms.empty()
            ? 0.0
            : total_busy / static_cast<double>(pool_stats.farms.size());
    std::printf("farm pool: %llu routed, %llu faults, %llu retries, utilisation "
                "skew %.2f (max/mean busy)\n",
                static_cast<unsigned long long>(pool_stats.batches_routed),
                static_cast<unsigned long long>(pool_stats.faults),
                static_cast<unsigned long long>(pool_stats.retries),
                mean_busy > 0 ? max_busy / mean_busy : 1.0);
    if (const store::VerdictStore* store = service.verdict_store()) {
      const store::StoreStats ss = store->stats();
      std::printf("verdict store: %llu appends, %llu fsyncs, %zu segments, "
                  "%llu live records, %llu recovered at open, %llu warm-start hits\n",
                  static_cast<unsigned long long>(ss.appends),
                  static_cast<unsigned long long>(ss.fsyncs), ss.segments,
                  static_cast<unsigned long long>(ss.live_records),
                  static_cast<unsigned long long>(ss.recovery.records_recovered),
                  static_cast<unsigned long long>(stats.warm_start_hits));
    }
    return out;
  };

  const PassOutcome baseline = run_pass(0.0, "baseline");
  const PassOutcome traced = run_pass(sample_rate, "traced");
  bool ok = baseline.ok && traced.ok;

  // Optional third pass: the identical workload, untraced, but dispatched to
  // --fabric N FarmWorker servers over real unix-domain sockets. The workers
  // run in-process (threads, not forks) so the measured delta vs the baseline
  // pass is exactly the wire path: framing + CRC + socket hops + the model
  // shipped once per connection. Throughput delta and the per-attempt rpc
  // quantiles both land in BENCH_serve.json.
  PassOutcome fabric_pass;
  double fabric_overhead_pct = 0.0;
  if (fabric > 0) {
    const std::filesystem::path fabric_dir =
        std::filesystem::temp_directory_path() /
        util::StrFormat("apichecker_bench_fab_%d", static_cast<int>(::getpid()));
    std::filesystem::create_directories(fabric_dir);
    std::vector<std::unique_ptr<fabric::FarmWorker>> workers;
    std::vector<std::string> endpoints;
    for (size_t i = 0; i < fabric; ++i) {
      fabric::FarmWorkerConfig worker_config;
      const std::string endpoint =
          "unix:" + (fabric_dir / util::StrFormat("w%zu.sock", i)).string();
      worker_config.endpoint = endpoint;
      worker_config.worker_id = static_cast<uint32_t>(i);
      worker_config.farm.engine.kind = emu::EngineKind::kLightweight;
      worker_config.farm.farm_id = static_cast<uint32_t>(i);
      workers.push_back(std::make_unique<fabric::FarmWorker>(
          context.universe(), std::move(worker_config)));
      auto started = workers.back()->Start();
      if (!started.ok()) {
        std::fprintf(stderr, "fabric worker %zu failed to start: %s\n", i,
                     started.error().c_str());
        return 1;
      }
      endpoints.push_back(endpoint);
    }
    fabric_pass = run_pass(0.0, "fabric", endpoints);
    ok = ok && fabric_pass.ok;
    for (auto& worker : workers) {
      worker->Stop();
    }
    std::error_code ec;
    std::filesystem::remove_all(fabric_dir, ec);
    fabric_overhead_pct =
        baseline.per_sec > 0
            ? (baseline.per_sec - fabric_pass.per_sec) / baseline.per_sec * 100.0
            : 0.0;
    const obs::HistogramSnapshot rpc =
        obs::MetricsRegistry::Default()
            .histogram(obs::names::kFabricRpcMs)
            .Snapshot();
    std::printf(
        "\nfabric dispatch overhead: %.2f%% (in-process %.0f subs/sec -> "
        "socket %.0f subs/sec across %zu workers); rpc p50 %.2f ms, p99 %.2f "
        "ms (n=%llu)\n",
        fabric_overhead_pct, baseline.per_sec, fabric_pass.per_sec, fabric,
        rpc.Quantile(0.50), rpc.Quantile(0.99),
        static_cast<unsigned long long>(rpc.count));
  }

  // -------------------------------------------------------------------------
  // Pass 4: mixed-priority submission storm (overload control & QoS). Bulk is
  // offered far beyond service capacity (small per-class lanes + shedding on,
  // so the governor visibly sheds — proof the offered load exceeded capacity)
  // while a 1-in-128 interactive trickle rides along under a hard SLO deadline.
  // The pass holds when:
  //   1. interactive p99 stays within the SLO (and none expired — each
  //      interactive submission carries the SLO as a real deadline);
  //   2. bulk completions stay within 10% of a bulk-only baseline run with
  //      the identical config, after normalizing for the bulk slots the
  //      trickle displaced (QoS for the few must not starve the many).
  //      Completed COUNTS, not per-second rates: at a fixed trace length the
  //      counts are governor-determined and repeatable, while sub-second
  //      elapsed times put ±20% scheduler noise into any rate ratio;
  //   3. the heap blob pool peak stays under the spill watermark — storm
  //      blobs at/above the spill threshold go to unlinked temp files, so
  //      the pool gauge BOUNDS resident set instead of tracking the storm.
  // -------------------------------------------------------------------------
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  const double main_peak_blob_pool_mb =
      static_cast<double>(ingest::ApkBlob::PoolPeakBytes()) / (1024.0 * 1024.0);
  constexpr double kStormSloMs = 2'000.0;
  constexpr size_t kStormSpillThreshold = 256 * 1024;      // 256 KB.
  constexpr uint64_t kStormHeapAllowance = 64ull << 20;    // 64 MB of heap.
  // Fixed storm length; both passes blast it, so the offered load is
  // instantaneously far beyond capacity and the governor self-regulates.
  const size_t storm_size = 2'048;

  const auto prev_spill =
      ingest::ApkBlob::SetSpillConfig({kStormSpillThreshold, ""});

  std::printf("\n--- pass storm: %zu submissions, spill >= %zu KB, shed on, "
              "interactive SLO %.0f ms ---\n",
              storm_size, kStormSpillThreshold / 1024, kStormSloMs);

  // The storm gets its own trace, built AFTER spilling is enabled: every 8th
  // APK is padded to ~1 MB, so the bulk of the storm's bytes are file-backed
  // from the start and the heap pool only carries the small tail.
  std::vector<ingest::ApkBlob> storm_trace;
  storm_trace.reserve(storm_size);
  for (size_t i = 0; i < storm_size; ++i) {
    std::vector<uint8_t> bytes =
        synth::BuildApkBytes(generator.Next(), context.universe());
    if (i % 8 == 0) {
      auto inflated = apk::PadApk(bytes, 1'024 * 1024, args.seed ^ (0x570 + i));
      if (inflated.ok()) {
        bytes = std::move(*inflated);
      }
    }
    storm_trace.push_back(make_blob(std::move(bytes)));
  }

  // Watermark baseline = the pool AFTER the trace is built: the trace's
  // sub-threshold blobs legitimately sit on the heap for the whole pass (the
  // trace vector holds them), and their total scales with the synthetic APK
  // size. What the gate FORBIDS is the padded MB-scale payloads landing on
  // the heap — a spill regression adds hundreds of MB and blows straight
  // through the fixed in-flight allowance.
  const uint64_t pool_after_trace = ingest::ApkBlob::PoolBytes();
  ingest::ApkBlob::ResetPoolPeakBytes();
  const double storm_watermark_mb =
      static_cast<double>(pool_after_trace + kStormHeapAllowance) /
      (1024.0 * 1024.0);
  std::printf("storm baseline: %.1f MB heap pool (earlier passes + the "
              "storm's sub-threshold tail), %.1f MB spilled to unlinked temp "
              "files\n",
              static_cast<double>(pool_after_trace) / (1024.0 * 1024.0),
              static_cast<double>(ingest::ApkBlob::SpilledBytes()) /
                  (1024.0 * 1024.0));

  auto storm_config = [&]() {
    serve::ServiceConfig config;
    config.num_shards = 4;
    config.shard_capacity = 64;  // Small lanes: the storm MUST overflow them.
    config.farm.engine.kind = emu::EngineKind::kLightweight;
    config.scheduler.max_linger = std::chrono::milliseconds(2);
    config.pool.num_farms = std::max<size_t>(1, farms);
    config.overload.shed = true;
    config.overload.class_slo[static_cast<size_t>(
        serve::Priority::kInteractive)] =
        std::chrono::milliseconds(static_cast<int64_t>(kStormSloMs));
    return config;
  };

  // Submits the storm trace from 4 producer threads; index % 128 == 0 becomes
  // interactive when `mixed`, everything else is bulk. With offered_per_sec
  // > 0 the producers pace submissions to that aggregate rate; 0 = blast
  // (used once to calibrate the storm service's true drain capacity).
  struct StormOutcome {
    double elapsed_s = 0.0;
    uint64_t bulk_completed = 0;
    uint64_t interactive_expired = 0;
    uint64_t shed = 0;
    std::vector<double> interactive_ms;  // Wall latency per interactive verdict.
    bool lost = false;
  };
  auto run_storm = [&](bool mixed, double offered_per_sec) {
    StormOutcome out;
    auto restored = core::DeserializeChecker(context.universe(), blob);
    if (!restored.ok()) {
      std::fprintf(stderr, "model restore failed: %s\n", restored.error().c_str());
      std::exit(1);
    }
    serve::VettingService service(context.universe(), storm_config(),
                                  std::move(*restored));
    constexpr size_t kProducers = 4;
    std::vector<std::vector<std::pair<serve::Priority,
                                      std::future<serve::VettingResult>>>>
        per_thread(kProducers);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> producers;
    for (size_t t = 0; t < kProducers; ++t) {
      producers.emplace_back([&, t] {
        // Paced offering: submission i goes out at start + i / offered_rate,
        // spread across the producers, so the overload is a sustained 2x —
        // the storm shape — not one instantaneous burst.
        const double interval_s =
            offered_per_sec > 0 ? 1.0 / offered_per_sec : 0.0;
        for (size_t i = t; i < storm_trace.size(); i += kProducers) {
          if (interval_s > 0) {
            std::this_thread::sleep_until(
                start +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(interval_s *
                                                  static_cast<double>(i))));
          }
          serve::Submission submission;
          submission.blob = storm_trace[i];
          // 1/128 interactive trickle: all of it completes (never shed), and
          // its capacity consumption sits comfortably inside the 10%
          // bulk-throughput budget asserted below.
          submission.priority = mixed && i % 128 == 0
                                    ? serve::Priority::kInteractive
                                    : serve::Priority::kBulk;
          const serve::Priority priority = submission.priority;
          auto accepted = service.Submit(std::move(submission));
          if (accepted.ok()) {
            per_thread[t].emplace_back(priority, std::move(*accepted));
          }
        }
      });
    }
    for (auto& producer : producers) {
      producer.join();
    }
    for (auto& slice : per_thread) {
      for (auto& [priority, future] : slice) {
        const serve::VettingResult result = future.get();
        if (priority == serve::Priority::kInteractive) {
          out.interactive_ms.push_back(result.total_ms);
          out.interactive_expired +=
              result.status == serve::VetStatus::kDeadlineExpired;
        } else if (result.status == serve::VetStatus::kOk) {
          ++out.bulk_completed;
        }
      }
    }
    out.elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    service.Shutdown();
    const serve::ServiceStats stats = service.stats();
    out.shed = stats.shed_overload;
    out.lost = stats.accepted != stats.resolved();
    if (mixed &&
        stats.shed_by_class[static_cast<size_t>(serve::Priority::kInteractive)] !=
            0) {
      std::printf("FAIL: interactive submissions were shed\n");
      out.lost = true;  // Treat as a storm failure below.
    }
    return out;
  };

  // Both passes blast the whole trace — instantaneous offered load far beyond
  // any machine's capacity — and the backlog-driven governor self-regulates:
  // it accepts until the end-to-end backlog crosses the watermarks, sheds
  // until the hysteresis releases, and cycles. Steady-state bulk completion
  // is therefore capacity-bound in BOTH passes, which is what makes the
  // within-10% comparison meaningful.
  const StormOutcome bulk_only = run_storm(/*mixed=*/false, 0.0);
  const StormOutcome storm = run_storm(/*mixed=*/true, 0.0);
  ingest::ApkBlob::SetSpillConfig(prev_spill);

  const double storm_peak_pool_mb =
      static_cast<double>(ingest::ApkBlob::PoolPeakBytes()) / (1024.0 * 1024.0);
  std::vector<double> interactive_sorted = storm.interactive_ms;
  std::sort(interactive_sorted.begin(), interactive_sorted.end());
  const double interactive_p99 =
      interactive_sorted.empty()
          ? 0.0
          : interactive_sorted[static_cast<size_t>(
                static_cast<double>(interactive_sorted.size() - 1) * 0.99)];
  const uint64_t storm_spilled =
      static_cast<uint64_t>(registry.counter(obs::names::kIngestBlobsSpilledTotal)
                                .value());

  // The trickle converted 1/128 of the trace from bulk to interactive, so the
  // mixed pass OFFERED fewer bulk submissions; scale the baseline down by the
  // same fraction before comparing completions.
  const size_t storm_interactive_offered = (storm_size + 127) / 128;
  const double bulk_offered_ratio =
      static_cast<double>(storm_size - storm_interactive_offered) /
      static_cast<double>(storm_size);
  const double bulk_completed_floor =
      0.90 * bulk_offered_ratio * static_cast<double>(bulk_only.bulk_completed);

  std::printf("storm: interactive p99 %.1f ms over %zu verdicts (SLO %.0f ms, "
              "%llu expired); bulk completed %llu mixed vs %llu bulk-only "
              "(floor %.0f); %llu + %llu shed; %llu blobs spilled, heap pool "
              "peak %.1f MB (watermark %.1f MB)\n",
              interactive_p99, interactive_sorted.size(), kStormSloMs,
              static_cast<unsigned long long>(storm.interactive_expired),
              static_cast<unsigned long long>(storm.bulk_completed),
              static_cast<unsigned long long>(bulk_only.bulk_completed),
              bulk_completed_floor,
              static_cast<unsigned long long>(bulk_only.shed),
              static_cast<unsigned long long>(storm.shed),
              static_cast<unsigned long long>(storm_spilled),
              storm_peak_pool_mb, storm_watermark_mb);
  if (bulk_only.lost || storm.lost) {
    std::printf("FAIL: storm lost submissions or shed interactive traffic\n");
    ok = false;
  }
  if (storm.shed == 0 && !args.quick) {
    std::printf("FAIL: storm never shed — offered load did not exceed capacity\n");
    ok = false;
  }
  if ((interactive_p99 > kStormSloMs || storm.interactive_expired > 0) &&
      !args.quick) {
    std::printf("FAIL: interactive p99 %.1f ms blew the %.0f ms SLO under the "
                "bulk storm\n",
                interactive_p99, kStormSloMs);
    ok = false;
  }
  if (static_cast<double>(storm.bulk_completed) < bulk_completed_floor &&
      !args.quick) {
    std::printf("FAIL: bulk completed %llu under the storm, more than 10%% "
                "below the offered-normalized bulk-only baseline (floor %.0f "
                "of %llu)\n",
                static_cast<unsigned long long>(storm.bulk_completed),
                bulk_completed_floor,
                static_cast<unsigned long long>(bulk_only.bulk_completed));
    ok = false;
  }
  if (storm_peak_pool_mb > storm_watermark_mb) {
    std::printf("FAIL: heap blob pool peaked at %.1f MB, above the %.1f MB "
                "spill watermark — spilling did not bound residency\n",
                storm_peak_pool_mb, storm_watermark_mb);
    ok = false;
  }

  // -------------------------------------------------------------------------
  // Pass 5: network upload ingest. The same admission path, entered through
  // the front door: an IngestGateway on a real unix socket, fed by concurrent
  // UploadClients streaming framed APK bodies. Two legs over DISTINCT bodies
  // (so the socket leg cannot warm-start from the in-memory leg's digest
  // cache): leg A submits via ReadApkBlob + Submit() in-process — the
  // no-network control — and leg B uploads over the socket with 10% of the
  // clients given a scripted NetFaultPlan stall (transient, inside the read
  // deadline: the gateway must absorb it, not evict). The delta prices the
  // network admission path — framing + CRC + socket hops + streamed hashing —
  // and the client-observed p99 shows what a stalled cohort does to the tail.
  // The extended drain invariant (accepted == completed + aborted) is a hard
  // gate, quick mode included.
  // -------------------------------------------------------------------------
  double upload_per_sec = 0.0;
  double upload_inmemory_per_sec = 0.0;
  double upload_admission_overhead_pct = 0.0;
  double upload_admission_p99_ms = 0.0;
  uint64_t upload_resolved = 0;
  {
    const size_t upload_count =
        std::min<size_t>(512, std::max<size_t>(64, trace_size / 8));
    constexpr size_t kUploadClients = 8;
    constexpr double kStalledClientFraction = 0.10;
    const auto stall_every =
        static_cast<size_t>(1.0 / kStalledClientFraction);  // Every 10th.

    auto make_bodies = [&](uint64_t pad_salt) {
      std::vector<std::vector<uint8_t>> bodies;
      bodies.reserve(upload_count);
      for (size_t i = 0; i < upload_count; ++i) {
        std::vector<uint8_t> bytes =
            synth::BuildApkBytes(generator.Next(), context.universe());
        if (i % 16 == 0) {
          // Every 16th body padded to 256 KB so the chunked streaming path
          // (multiple frames per upload) is part of the measured number.
          auto inflated = apk::PadApk(bytes, 256 * 1024, args.seed ^ (pad_salt + i));
          if (inflated.ok()) {
            bytes = std::move(*inflated);
          }
        }
        bodies.push_back(std::move(bytes));
      }
      return bodies;
    };
    const std::vector<std::vector<uint8_t>> mem_bodies = make_bodies(0x9a7e);
    const std::vector<std::vector<uint8_t>> net_bodies = make_bodies(0x9a7f);

    auto restored = core::DeserializeChecker(context.universe(), blob);
    if (!restored.ok()) {
      std::fprintf(stderr, "model restore failed: %s\n", restored.error().c_str());
      std::exit(1);
    }
    serve::ServiceConfig upload_config;
    upload_config.num_shards = 8;
    upload_config.shard_capacity = 2'048;
    upload_config.farm.engine.kind = emu::EngineKind::kLightweight;
    upload_config.scheduler.max_linger = std::chrono::milliseconds(5);
    upload_config.pool.num_farms = std::max<size_t>(1, farms);
    serve::VettingService upload_service(context.universe(), upload_config,
                                         std::move(*restored));

    const std::filesystem::path gw_dir =
        std::filesystem::temp_directory_path() /
        util::StrFormat("apichecker_bench_gw_%d", static_cast<int>(::getpid()));
    std::filesystem::create_directories(gw_dir);
    gateway::GatewayConfig gw_config;
    gw_config.endpoint = "unix:" + (gw_dir / "gw.sock").string();
    gw_config.max_concurrent_uploads = kUploadClients * 2;
    gateway::IngestGateway gw(upload_service, gw_config);
    if (auto started = gw.Start(); !started.ok()) {
      std::fprintf(stderr, "gateway failed to start: %s\n",
                   started.error().c_str());
      std::exit(1);
    }

    std::printf("\n--- pass upload: %zu bodies x 2 legs, %zu clients, %.0f%% "
                "scripted stalls on the socket leg ---\n",
                upload_count, kUploadClients, kStalledClientFraction * 100.0);

    // Leg A: in-memory admission — identical bytes enter through
    // ReadApkBlob + Submit(), no socket in the path.
    const auto mem_start = std::chrono::steady_clock::now();
    {
      std::vector<std::future<serve::VettingResult>> futures;
      futures.reserve(mem_bodies.size());
      for (const auto& bytes : mem_bodies) {
        serve::Submission submission;
        submission.blob = make_blob(bytes);
        auto accepted = upload_service.Submit(std::move(submission));
        if (accepted.ok()) {
          futures.push_back(std::move(*accepted));
        }
      }
      for (auto& future : futures) {
        future.get();
      }
    }
    const double mem_elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      mem_start)
            .count();
    upload_inmemory_per_sec =
        mem_elapsed > 0 ? static_cast<double>(mem_bodies.size()) / mem_elapsed
                        : 0.0;

    // Leg B: the same admission over the socket. Every stall_every-th upload
    // carries a scripted 100 ms stall before its first chunk — well inside
    // the 2 s read deadline, so the gateway rides it out and the stall shows
    // up only in the tail, not as an eviction.
    std::vector<double> upload_wall_ms(net_bodies.size(), 0.0);
    std::atomic<size_t> upload_failures{0};
    const auto net_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> clients;
      for (size_t t = 0; t < kUploadClients; ++t) {
        clients.emplace_back([&, t] {
          for (size_t i = t; i < net_bodies.size(); i += kUploadClients) {
            gateway::UploadClientConfig client_config;
            client_config.endpoint = gw_config.endpoint;
            client_config.client_name = util::StrFormat("bench-%zu", t);
            client_config.jitter_seed = args.seed + i;
            if (i % stall_every == 0) {
              client_config.fault_plan.seed = args.seed + i;
              client_config.fault_plan.stall_before = {1};
              client_config.fault_plan.stall_ms = std::chrono::milliseconds(100);
            }
            gateway::UploadClient client(std::move(client_config));
            const auto start = std::chrono::steady_clock::now();
            auto outcome = client.Upload(net_bodies[i]);
            upload_wall_ms[i] = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
            if (!outcome.ok() ||
                outcome->verdict.status !=
                    static_cast<uint8_t>(serve::VetStatus::kOk)) {
              upload_failures.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      for (auto& client : clients) {
        client.join();
      }
    }
    const double net_elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      net_start)
            .count();
    upload_per_sec =
        net_elapsed > 0 ? static_cast<double>(net_bodies.size()) / net_elapsed
                        : 0.0;
    upload_resolved = net_bodies.size() - upload_failures.load();

    gw.Stop();
    upload_service.Shutdown();
    std::error_code gw_ec;
    std::filesystem::remove_all(gw_dir, gw_ec);

    std::sort(upload_wall_ms.begin(), upload_wall_ms.end());
    upload_admission_p99_ms =
        upload_wall_ms.empty()
            ? 0.0
            : upload_wall_ms[static_cast<size_t>(
                  static_cast<double>(upload_wall_ms.size() - 1) * 0.99)];
    upload_admission_overhead_pct =
        upload_inmemory_per_sec > 0
            ? (upload_inmemory_per_sec - upload_per_sec) /
                  upload_inmemory_per_sec * 100.0
            : 0.0;

    const gateway::GatewayStats gw_stats = gw.stats();
    const obs::HistogramSnapshot body_stage =
        registry.histogram(obs::names::kGatewayUploadStageMs).Snapshot();
    std::printf(
        "upload ingest: in-memory %.0f subs/sec -> socket %.0f subs/sec "
        "(%.2f%% admission overhead); verdict wall p50 %.2f ms, p99 %.2f ms "
        "with %.0f%% stalled clients; body transfer p99 %.2f ms (n=%llu)\n",
        upload_inmemory_per_sec, upload_per_sec, upload_admission_overhead_pct,
        upload_wall_ms.empty()
            ? 0.0
            : upload_wall_ms[upload_wall_ms.size() / 2],
        upload_admission_p99_ms, kStalledClientFraction * 100.0,
        body_stage.Quantile(0.99),
        static_cast<unsigned long long>(body_stage.count));
    std::printf(
        "gateway ledger: %llu accepted == %llu completed + %llu aborted; "
        "%llu early verdicts, %llu slow-loris evictions, %.1f MB received\n",
        static_cast<unsigned long long>(gw_stats.accepted),
        static_cast<unsigned long long>(gw_stats.completed),
        static_cast<unsigned long long>(gw_stats.aborted),
        static_cast<unsigned long long>(gw_stats.early_verdicts),
        static_cast<unsigned long long>(gw_stats.slow_loris_disconnects),
        static_cast<double>(gw_stats.bytes_received) / (1024.0 * 1024.0));
    if (!gw_stats.Balanced()) {
      std::printf("FAIL: gateway drain invariant violated — accepted %llu != "
                  "completed %llu + aborted %llu\n",
                  static_cast<unsigned long long>(gw_stats.accepted),
                  static_cast<unsigned long long>(gw_stats.completed),
                  static_cast<unsigned long long>(gw_stats.aborted));
      ok = false;
    }
    if (upload_failures.load() != 0) {
      std::printf("FAIL: %zu of %zu socket uploads did not resolve to a "
                  "terminal verdict\n",
                  upload_failures.load(), net_bodies.size());
      ok = false;
    }
    const serve::ServiceStats upload_stats = upload_service.stats();
    if (upload_stats.accepted != upload_stats.resolved()) {
      std::printf("FAIL: upload pass lost submissions — accepted %llu but "
                  "resolved %llu\n",
                  static_cast<unsigned long long>(upload_stats.accepted),
                  static_cast<unsigned long long>(upload_stats.resolved()));
      ok = false;
    }
  }

  // -------------------------------------------------------------------------
  // Pass 6: unified-runtime accounting. Every pass above ran its timers, fd
  // readiness, and farm dispatch on shared rt::Runtime instances, so the
  // process-wide apichecker_rt_* series now describe the whole bench: task
  // throughput (executor utilisation), the steal ratio (cross-worker load
  // spread — healthy work-stealing, not a defect), timer-wheel fire lag
  // (deadline fidelity for lingers / heartbeats / read deadlines), and the
  // process threads peak (the O(cores)-not-O(connections) witness that CI
  // also gates on). No new workload runs here; the numbers land in
  // BENCH_serve.json so runtime regressions show up in the trajectory diff.
  // -------------------------------------------------------------------------
  const double bench_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  const auto rt_tasks_total = static_cast<uint64_t>(
      registry.counter(obs::names::kRtTasksTotal).value());
  const auto rt_steals_total = static_cast<uint64_t>(
      registry.counter(obs::names::kRtStealsTotal).value());
  const double rt_tasks_per_sec =
      bench_wall_s > 0 ? static_cast<double>(rt_tasks_total) / bench_wall_s
                       : 0.0;
  const double rt_steal_ratio =
      rt_tasks_total > 0
          ? static_cast<double>(rt_steals_total) /
                static_cast<double>(rt_tasks_total)
          : 0.0;
  const obs::HistogramSnapshot rt_lag =
      registry.histogram(obs::names::kRtTimerLagMs).Snapshot();
  const auto rt_threads_peak = static_cast<uint64_t>(
      registry.gauge(obs::names::kRtProcessThreadsPeak).value());
  std::printf(
      "\n--- pass rt: unified-runtime accounting over the whole bench ---\n");
  std::printf(
      "rt: %llu tasks (%.0f/sec over %.1f s wall), steal ratio %.3f, "
      "%llu timers scheduled / %llu cancelled, timer lag p50 %.2f / p99 %.2f "
      "ms (n=%llu), %llu fd watches, %llu poll wake-ups, process threads "
      "peak %llu\n",
      static_cast<unsigned long long>(rt_tasks_total), rt_tasks_per_sec,
      bench_wall_s, rt_steal_ratio,
      static_cast<unsigned long long>(static_cast<uint64_t>(
          registry.counter(obs::names::kRtTimersScheduledTotal).value())),
      static_cast<unsigned long long>(static_cast<uint64_t>(
          registry.counter(obs::names::kRtTimersCancelledTotal).value())),
      rt_lag.Quantile(0.50), rt_lag.Quantile(0.99),
      static_cast<unsigned long long>(rt_lag.count),
      static_cast<unsigned long long>(static_cast<uint64_t>(
          registry.counter(obs::names::kRtFdWatchesTotal).value())),
      static_cast<unsigned long long>(static_cast<uint64_t>(
          registry.counter(obs::names::kRtPollWakeupsTotal).value())),
      static_cast<unsigned long long>(rt_threads_peak));
  if (rt_tasks_total == 0) {
    std::printf("FAIL: the unified runtime ran zero tasks — every pass above "
                "was supposed to dispatch through it\n");
    ok = false;
  }

  const obs::HistogramSnapshot e2e =
      registry.histogram(obs::names::kServeE2eLatencyMs).Snapshot();
  std::printf("\ne2e latency (both passes): p50 %.1f ms, p99 %.1f ms\n",
              e2e.Quantile(0.50), e2e.Quantile(0.99));

  // Admission latency by APK size bucket: the whole point of blob-handle
  // admission is that Submit() cost does not scale with APK bytes — large
  // should sit within a small constant factor of small.
  std::printf("admission latency (Submit() wall time):");
  for (const char* bucket : {"small", "medium", "large"}) {
    const obs::HistogramSnapshot snap =
        registry
            .histogram(serve::AdmissionSeriesName(
                obs::names::kServeAdmissionLatencyMs, bucket))
            .Snapshot();
    std::printf(" %s p50 %.4f / p99 %.4f ms (n=%llu)", bucket,
                snap.Quantile(0.50), snap.Quantile(0.99),
                static_cast<unsigned long long>(snap.count));
  }
  std::printf("\n");
  std::printf(
      "blob pool: peak resident %.1f MB (%llu blobs streamed, %llu SHA-1 "
      "passes — exactly one per distinct blob)\n",
      static_cast<double>(ingest::ApkBlob::PoolPeakBytes()) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(
          registry.counter(obs::names::kIngestBlobsTotal).value()),
      static_cast<unsigned long long>(
          registry.counter(obs::names::kServeHashOpsTotal).value()));

  // Tracing overhead: same workload, same run, only the sample rate differs.
  // The precise number goes into the report for trend tracking; the bench
  // only hard-fails on a gross (>15%) regression in full-scale runs, because
  // small deltas at bench scale are mostly machine noise.
  const double overhead_pct =
      baseline.per_sec > 0
          ? (baseline.per_sec - traced.per_sec) / baseline.per_sec * 100.0
          : 0.0;
  std::printf("tracing overhead at %.3f sampling: %.2f%% "
              "(baseline %.0f subs/sec -> traced %.0f subs/sec; budget 5%%)\n",
              sample_rate, overhead_pct, baseline.per_sec, traced.per_sec);
  if (overhead_pct > 15.0 && !args.quick) {
    std::printf("FAIL: tracing overhead %.2f%% is a gross regression (>15%%)\n",
                overhead_pct);
    ok = false;
  }

  bench::PrintComparison("sustained throughput",
                         "10K/day (~0.12 subs/sec market arrival rate)",
                         util::StrFormat("%.0f subs/sec (target >= 1000)",
                                         traced.per_sec));
  if (traced.per_sec < 1'000.0 && !args.quick) {
    std::printf("WARNING: below the 1000 subs/sec target on this machine\n");
  }

  if (bench_out != nullptr && bench_out[0] != '\0') {
    obs::BenchReport report;
    report.bench = "serve_throughput";
    report.git_rev = obs::GitRevisionOrUnknown();
    report.submissions = traced.resolved;
    report.wall_s = traced.elapsed_s;
    report.throughput_per_sec = traced.per_sec;
    report.baseline_throughput_per_sec = baseline.per_sec;
    report.tracing_overhead_pct = overhead_pct;
    report.fabric_throughput_per_sec = fabric_pass.per_sec;
    report.fabric_dispatch_overhead_pct = fabric_overhead_pct;
    report.sample_rate = sample_rate;
    report.traces_completed = obs::TraceCollector::Default().traces_completed();
    report.peak_rss_mb = obs::PeakRssMb();
    // Main-workload pool peak, captured before the storm pass reset the
    // high-water mark to measure its own bound.
    report.peak_blob_pool_mb = main_peak_blob_pool_mb;
    report.storm_interactive_p99_ms = interactive_p99;
    report.storm_interactive_slo_ms = kStormSloMs;
    report.storm_bulk_completed = storm.bulk_completed;
    report.storm_bulk_baseline_completed = bulk_only.bulk_completed;
    report.storm_bulk_completed_floor = bulk_completed_floor;
    report.storm_shed_total = storm.shed;
    report.storm_peak_blob_pool_mb = storm_peak_pool_mb;
    report.storm_spill_watermark_mb = storm_watermark_mb;
    report.upload_throughput_per_sec = upload_per_sec;
    report.upload_inmemory_throughput_per_sec = upload_inmemory_per_sec;
    report.upload_admission_overhead_pct = upload_admission_overhead_pct;
    report.upload_admission_p99_ms = upload_admission_p99_ms;
    report.upload_resolved = upload_resolved;
    report.rt_tasks_total = rt_tasks_total;
    report.rt_tasks_per_sec = rt_tasks_per_sec;
    report.rt_steal_ratio = rt_steal_ratio;
    report.rt_timer_lag_p99_ms = rt_lag.Quantile(0.99);
    report.rt_process_threads_peak = rt_threads_peak;
    report.stages["rt_timer_lag"] =
        obs::StageFromHistogram(registry, obs::names::kRtTimerLagMs);
    report.stages["admission"] =
        obs::StageFromHistogram(registry, obs::names::kServeAdmissionLatencyMs);
    report.stages["e2e"] =
        obs::StageFromHistogram(registry, obs::names::kServeE2eLatencyMs);
    report.stages["traced_e2e"] =
        obs::StageFromHistogram(registry, obs::names::kServeTracedE2eMs);
    report.stages[obs::stages::kUpload] =
        obs::StageFromHistogram(registry, obs::names::kGatewayUploadStageMs);
    if (fabric > 0) {
      report.stages["rpc"] =
          obs::StageFromHistogram(registry, obs::names::kFabricRpcMs);
    }
    for (const char* stage :
         {obs::stages::kSubmit, obs::stages::kShard, obs::stages::kBatch,
          obs::stages::kFarm, obs::stages::kClassify, obs::stages::kStore,
          obs::stages::kResolve}) {
      report.stages[stage] =
          obs::StageFromHistogram(registry, obs::StageHistogramName(stage));
    }
    auto written = obs::WriteBenchReport(bench_out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "bench report write failed: %s\n",
                   written.error().c_str());
      ok = false;
    } else {
      std::printf("bench report: %s (schema %s, git %s)\n", bench_out,
                  obs::kBenchServeSchema, report.git_rev.c_str());
    }
  }
  return ok ? 0 : 1;
}
