// Google-benchmark microbenchmarks for the performance-critical primitives:
// APK build/parse, one emulation run, feature encoding, SRC computation, and
// random-forest train/predict. These guard the throughput that lets a single
// commodity server vet ~10K apps/day.

#include <benchmark/benchmark.h>

#include "core/selection.h"
#include "core/study.h"
#include "emu/engine.h"
#include "ml/random_forest.h"
#include "synth/corpus.h"

namespace apichecker {
namespace {

struct Fixture {
  android::ApiUniverse universe;
  synth::AppProfile profile;
  std::vector<uint8_t> apk_bytes;
  apk::ApkFile apk;

  Fixture() : universe(android::ApiUniverse::Generate(SmallUniverse())) {
    synth::CorpusConfig config;
    synth::CorpusGenerator generator(universe, config);
    profile = generator.Next();
    apk_bytes = synth::BuildApkBytes(profile, universe);
    apk = std::move(*apk::ParseApk(apk_bytes));
  }

  static android::UniverseConfig SmallUniverse() {
    android::UniverseConfig config;
    config.num_apis = 20'000;
    return config;
  }

  static Fixture& Get() {
    static Fixture fixture;
    return fixture;
  }
};

void BM_BuildApk(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::BuildApkBytes(f.profile, f.universe));
  }
}
BENCHMARK(BM_BuildApk);

void BM_ParseApk(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    auto parsed = apk::ParseApk(f.apk_bytes);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_ParseApk);

void BM_EmulateTrackAll(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const emu::DynamicAnalysisEngine engine(f.universe, {});
  const emu::TrackedApiSet all = emu::TrackedApiSet::All(f.universe.num_apis());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(f.apk, all).total_invocations);
  }
}
BENCHMARK(BM_EmulateTrackAll);

void BM_EmulateTrackKeySized(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const emu::DynamicAnalysisEngine engine(f.universe, {});
  std::vector<android::ApiId> ids(426);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<android::ApiId>(i * 40);
  }
  const emu::TrackedApiSet key(ids, f.universe.num_apis());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(f.apk, key).tracked_invocations);
  }
}
BENCHMARK(BM_EmulateTrackKeySized);

// Shared small study for the learning benchmarks.
struct StudyFixture {
  android::ApiUniverse universe;
  core::StudyDataset study;
  ml::Dataset data;

  StudyFixture() : universe(android::ApiUniverse::Generate(Fixture::SmallUniverse())) {
    synth::CorpusConfig corpus_config;
    synth::CorpusGenerator generator(universe, corpus_config);
    core::StudyConfig config;
    config.num_apps = 1'500;
    study = core::RunStudy(universe, generator, config);
    const auto correlations = core::ComputeApiCorrelations(study, universe.num_apis());
    const auto sel = core::SelectKeyApis(correlations, universe, study.size());
    const core::FeatureSchema schema(sel.key_apis, universe);
    data = core::BuildDataset(study, schema, universe);
  }

  static StudyFixture& Get() {
    static StudyFixture fixture;
    return fixture;
  }
};

void BM_ComputeApiCorrelations(benchmark::State& state) {
  StudyFixture& f = StudyFixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeApiCorrelations(f.study, f.universe.num_apis()).size());
  }
}
BENCHMARK(BM_ComputeApiCorrelations);

void BM_RandomForestTrain(benchmark::State& state) {
  StudyFixture& f = StudyFixture::Get();
  for (auto _ : state) {
    ml::RandomForestConfig config;
    config.num_trees = 16;
    ml::RandomForest forest(config);
    forest.Train(f.data);
    benchmark::DoNotOptimize(forest.num_trees());
  }
}
BENCHMARK(BM_RandomForestTrain)->Unit(benchmark::kMillisecond);

void BM_RandomForestPredict(benchmark::State& state) {
  StudyFixture& f = StudyFixture::Get();
  static ml::RandomForest forest = [&] {
    ml::RandomForestConfig config;
    ml::RandomForest trained(config);
    trained.Train(f.data);
    return trained;
  }();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.PredictScore(f.data.rows[i++ % f.data.size()]));
  }
}
BENCHMARK(BM_RandomForestPredict);

}  // namespace
}  // namespace apichecker

BENCHMARK_MAIN();
