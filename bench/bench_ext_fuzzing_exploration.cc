// Extension (paper §6 future work): coverage-guided fuzzing as the UI
// exploration driver. The paper flags Monkey's UI coverage as a detection
// bottleneck and proposes fuzzing. This bench compares Monkey vs fuzzing at
// the same event budget: RAC achieved, per-app emulation time (426-key
// hooks), and detection recall of a model trained on each driver's
// observations.

#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "ml/cross_validation.h"
#include "stats/descriptive.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const size_t study_apps = args.AppsOr(2'500);
  bench::PrintHeader("Extension — Monkey vs coverage-guided fuzzing exploration",
                     "paper §6: UI coverage is the feature-extraction bottleneck", args,
                     study_apps);

  struct Variant {
    const char* label;
    emu::ExplorationStrategy strategy;
  };
  const Variant variants[] = {
      {"Monkey (deployed)", emu::ExplorationStrategy::kMonkey},
      {"coverage-guided fuzzing", emu::ExplorationStrategy::kCoverageGuidedFuzzing},
  };

  util::Table table({"driver", "mean RAC", "mean scan (min)", "precision", "recall"});
  for (const Variant& variant : variants) {
    // Independent context per driver: the study itself runs under the
    // driver's engine, so observations and the trained model both reflect it.
    android::UniverseConfig universe_config;
    universe_config.num_apis = args.apis;
    universe_config.seed = args.seed ^ 0xA11D;
    const android::ApiUniverse universe = android::ApiUniverse::Generate(universe_config);
    synth::CorpusConfig corpus_config;
    corpus_config.seed = args.seed;
    synth::CorpusGenerator generator(universe, corpus_config);

    core::StudyConfig study_config;
    study_config.num_apps = study_apps;
    study_config.engine.exploration = variant.strategy;
    const core::StudyDataset study = core::RunStudy(universe, generator, study_config);

    const auto correlations = core::ComputeApiCorrelations(study, universe.num_apis());
    const auto sel = core::SelectKeyApis(correlations, universe, study.size());
    const core::FeatureSchema schema(sel.key_apis, universe);
    const ml::Dataset data = core::BuildDataset(study, schema, universe);
    const auto result = ml::CrossValidate(data, args.quick ? 3 : 5, 3, [] {
      return ml::MakeClassifier(ml::ClassifierKind::kRandomForest, 11);
    });

    std::vector<double> racs;
    for (const core::StudyRecord& record : study.records) {
      racs.push_back(record.rac);
    }

    // Scan time with key hooks on the lightweight engine under this driver.
    emu::EngineConfig light;
    light.kind = emu::EngineKind::kLightweight;
    light.exploration = variant.strategy;
    const emu::DynamicAnalysisEngine engine(universe, light);
    const emu::TrackedApiSet tracked(sel.key_apis, universe.num_apis());
    synth::CorpusConfig fresh_config;
    fresh_config.seed = args.seed + 77;
    synth::CorpusGenerator fresh(universe, fresh_config);
    std::vector<double> minutes;
    for (int i = 0; i < 300; ++i) {
      auto apk = apk::ParseApk(synth::BuildApkBytes(fresh.Next(), universe));
      if (apk.ok()) {
        minutes.push_back(engine.Run(*apk, tracked).emulation_minutes);
      }
    }

    table.AddRow({variant.label, util::FormatPercent(stats::Mean(racs)),
                  util::FormatDouble(stats::Mean(minutes), 2),
                  util::FormatPercent(result.Precision()),
                  util::FormatPercent(result.Recall())});
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nexpected shape: fuzzing raises RAC (and slightly recall) at higher scan cost\n");
  return 0;
}
