// Figure 11: per-app analysis time CDF — default Google Android emulator vs
// the custom lightweight engine (Android-x86 + Houdini binary translation),
// both tracking the 426 key APIs. Paper: Google mean 4.3 min; lightweight
// mean 1.3 min (~70% reduction), including the <1% incompatible apps that
// fall back to the Google engine.

#include <cstdio>

#include "bench/common.h"
#include "emu/farm.h"
#include "stats/descriptive.h"
#include "util/strings.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const size_t sample = args.AppsOr(500);
  bench::PrintHeader("Figure 11 — Google emulator vs lightweight engine (426 key APIs)",
                     "Google mean 4.3 min -> lightweight mean 1.3 min (~70% faster)", args,
                     sample);

  bench::StudyContext context(args, 4'000);
  const core::KeyApiSelection sel = context.Selection();
  const auto apks = bench::MaterializeApks(context, sample, 11);
  const emu::TrackedApiSet key(sel.key_apis, context.universe().num_apis());

  const emu::EngineConfig google;
  emu::EngineConfig light;
  light.kind = emu::EngineKind::kLightweight;

  const auto t_google = bench::EmulationMinutes(context.universe(), apks, google, key);
  const auto t_light = bench::EmulationMinutes(context.universe(), apks, light, key);

  // Fallback accounting (run once more via the engine to count flags).
  const emu::DynamicAnalysisEngine light_engine(context.universe(), light);
  size_t fallbacks = 0;
  for (const apk::ApkFile& apk : apks) {
    fallbacks += light_engine.Run(apk, key).fell_back ? 1 : 0;
  }

  bench::PrintCdf("Google emulator   (minutes)", t_google);
  std::printf("\n");
  bench::PrintCdf("Lightweight engine (minutes)", t_light);

  const double mean_google = stats::Mean(t_google);
  const double mean_light = stats::Mean(t_light);
  std::printf("\n");
  bench::PrintComparison("Google emulator mean", "4.3 min",
                         util::FormatDouble(mean_google, 2) + " min");
  bench::PrintComparison("lightweight mean (incl. fallback)", "1.3 min",
                         util::FormatDouble(mean_light, 2) + " min");
  bench::PrintComparison("time reduction", "~70%",
                         util::FormatPercent(1.0 - mean_light / mean_google));
  bench::PrintComparison("incompatible apps falling back", "<1%",
                         util::FormatPercent(static_cast<double>(fallbacks) /
                                             static_cast<double>(apks.size())));
  return 0;
}
