// Figure 5: the top-1K framework APIs that are NOT seldom invoked, ranked by
// |SRC|. Paper: 260 of them have a non-trivial |SRC| (>= 0.2) — 247 positive
// plus 13 frequently invoked negatives; these become Set-C.

#include <cmath>
#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "core/selection.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 5'000);
  const size_t apps = context.study().size();
  bench::PrintHeader("Figure 5 — top-1K not-seldom APIs by |SRC|",
                     "260 APIs with non-trivial |SRC| >= 0.2 (Set-C)", args, apps);

  const auto& correlations = context.correlations();
  const auto top = core::TopCorrelatedApis(correlations, apps, 1'000);

  size_t nontrivial = 0;
  util::Table table({"rank", "|SRC|", "API"});
  for (size_t i = 0; i < top.size(); ++i) {
    const double abs_src = std::fabs(correlations[top[i]].src);
    if (abs_src >= 0.2) {
      ++nontrivial;
    }
    if (i < 10 || (i + 1) % 100 == 0) {
      table.AddRow({std::to_string(i + 1), util::FormatDouble(abs_src, 4),
                    context.universe().api(top[i]).name});
    }
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  const core::KeyApiSelection selection = context.Selection();
  std::printf("\n");
  bench::PrintComparison("top-1K APIs with |SRC| >= 0.2", "260", std::to_string(nontrivial));
  bench::PrintComparison("Set-C size", "260", std::to_string(selection.set_c.size()));
  return 0;
}
