// Figure 3: per-app emulation time CDF when tracking all ~50K framework APIs
// vs tracking none (5K Monkey events, Google emulator). Paper: track-none
// mean 2.1 min (0.57–5.8); track-all mean 53.6 min (14.7–106.2) — a ~25x
// hooking overhead that makes tracking everything infeasible in production.

#include <cstdio>

#include "bench/common.h"
#include "stats/descriptive.h"
#include "util/strings.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  const size_t sample = args.AppsOr(500);
  bench::PrintHeader("Figure 3 — emulation time: track ALL APIs vs track NO API",
                     "no API: mean 2.1 min; all 50K APIs: mean 53.6 min", args, sample);

  bench::StudyContext context(args, 400);  // Small study: only the universe matters here.
  const auto apks = bench::MaterializeApks(context, sample, 3);

  const emu::EngineConfig google;
  const auto t_none =
      bench::EmulationMinutes(context.universe(), apks, google,
                              emu::TrackedApiSet::None(context.universe().num_apis()));
  const auto t_all =
      bench::EmulationMinutes(context.universe(), apks, google,
                              emu::TrackedApiSet::All(context.universe().num_apis()));

  bench::PrintCdf("Track No API   (minutes)", t_none);
  std::printf("\n");
  bench::PrintCdf("Track All APIs (minutes)", t_all);

  std::printf("\n");
  bench::PrintComparison("track-none mean", "2.1 min",
                         util::FormatDouble(stats::Mean(t_none), 2) + " min");
  bench::PrintComparison("track-all mean", "53.6 min",
                         util::FormatDouble(stats::Mean(t_all), 2) + " min");
  bench::PrintComparison("overhead factor", "~25x",
                         util::FormatDouble(stats::Mean(t_all) / stats::Mean(t_none), 1) + "x");
  return 0;
}
