// Figure 10: the benefit of the auxiliary ("hidden") features — requested
// permissions (P) and used intents (I) — on top of the 426 key APIs (A).
// Paper: A = 96.8/93.7; A+P = -/96.5; A+I = -/94.8; P+I = 97.5/94.6;
// A+P+I = 98.6/96.7 (best). The mechanism: reflection/intent delegation hide
// API calls but not manifests or hooked intent parameters (§4.5).

#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "ml/cross_validation.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 5'000);
  const size_t apps = context.study().size();
  bench::PrintHeader("Figure 10 — auxiliary-feature ablation (A / A+P / A+I / P+I / A+P+I)",
                     "A: 96.8/93.7 -> A+P+I: 98.6/96.7 (recall +3.0)", args, apps);

  const core::KeyApiSelection sel = context.Selection();
  const size_t folds = args.quick ? 3 : 5;

  struct Variant {
    const char* label;
    core::FeatureOptions options;
  };
  const Variant variants[] = {
      {"A", core::FeatureOptions{true, false, false}},
      {"A+P", core::FeatureOptions{true, true, false}},
      {"A+I", core::FeatureOptions{true, false, true}},
      {"P+I", core::FeatureOptions{false, true, true}},
      {"A+P+I", core::FeatureOptions{true, true, true}},
  };

  util::Table table({"features", "precision", "recall", "F1"});
  double recall_a = 0.0, recall_api = 0.0, precision_api = 0.0;
  for (const Variant& variant : variants) {
    // Key APIs stay *tracked* in every variant (hooks still collect intent
    // parameters for P+I), only the feature encoding changes.
    const core::FeatureSchema schema(sel.key_apis, context.universe(), variant.options);
    const ml::Dataset data = core::BuildDataset(context.study(), schema, context.universe());
    const auto result = ml::CrossValidate(data, folds, 3, [] {
      return ml::MakeClassifier(ml::ClassifierKind::kRandomForest, 11);
    });
    table.AddRow({variant.label, util::FormatPercent(result.Precision()),
                  util::FormatPercent(result.Recall()), util::FormatPercent(result.F1())});
    if (std::string(variant.label) == "A") {
      recall_a = result.Recall();
    }
    if (std::string(variant.label) == "A+P+I") {
      recall_api = result.Recall();
      precision_api = result.Precision();
    }
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\n");
  bench::PrintComparison("A+P+I precision", "98.6%", util::FormatPercent(precision_api));
  bench::PrintComparison("A+P+I recall", "96.7%", util::FormatPercent(recall_api));
  bench::PrintComparison("recall gain A -> A+P+I", "+3.0 pts",
                         util::StrFormat("%+.1f pts", (recall_api - recall_a) * 100.0));
  return 0;
}
