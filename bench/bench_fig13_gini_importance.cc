// Figure 13: top-20 most important features of the trained random forest by
// Gini importance. Paper: 7 key APIs, 8 requested permissions, and 5 used
// intents, led by SmsManager_sendTextMessage / SEND_SMS / SMS_RECEIVED,
// falling into three functional groups (privacy theft, event interception,
// attack enablement).

#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 5'000);
  bench::PrintHeader("Figure 13 — top-20 features by Gini importance",
                     "7 APIs + 8 permissions + 5 intents; SMS features lead", args,
                     context.study().size());

  core::ApiCheckerConfig config;
  core::ApiChecker checker(context.universe(), config);
  checker.TrainFromStudy(context.study());

  const auto top = checker.TopFeatures(20);
  util::Table table({"rank", "feature", "Gini importance"});
  size_t apis = 0, permissions = 0, intents = 0;
  for (size_t i = 0; i < top.size(); ++i) {
    table.AddRow({std::to_string(i + 1), top[i].first, util::FormatDouble(top[i].second, 4)});
    if (top[i].first.rfind("API: ", 0) == 0) {
      ++apis;
    } else if (top[i].first.rfind("Permission: ", 0) == 0) {
      ++permissions;
    } else {
      ++intents;
    }
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\n");
  bench::PrintComparison("APIs in top-20", "7", std::to_string(apis));
  bench::PrintComparison("permissions in top-20", "8", std::to_string(permissions));
  bench::PrintComparison("intents in top-20", "5", std::to_string(intents));
  return 0;
}
