// Figure 15: detection F1 and analysis time when tracking only the top-k
// Gini-important key APIs (k in [1, 426]). Paper: most key APIs contribute
// little accuracy but real tracking cost; top-150 retains ~98.3%/96.6%
// accuracy at 2.5 min — the basis of the §5.4 reduced deployment.

#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "ml/cross_validation.h"
#include "stats/descriptive.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::StudyContext context(args, 4'000);
  bench::PrintHeader("Figure 15 — F1 & time vs top-k Gini-important key APIs",
                     "accuracy saturates long before 426; time keeps climbing", args,
                     context.study().size());

  core::ApiCheckerConfig checker_config;
  core::ApiChecker checker(context.universe(), checker_config);
  checker.TrainFromStudy(context.study());
  const std::vector<android::ApiId> ranked = checker.KeyApisByImportance();
  std::printf("key APIs: %zu (ranked by Gini importance)\n\n", ranked.size());

  const auto apks = bench::MaterializeApks(context, args.quick ? 150 : 400, 15);
  const emu::EngineConfig google;
  const size_t folds = args.quick ? 3 : 5;

  util::Table table({"top-k key APIs", "F1 (A+P+I)", "mean emulation time (min)"});
  for (size_t k : {1u, 10u, 25u, 50u, 100u, 150u, 200u, 300u, 426u}) {
    const size_t take = std::min(k, ranked.size());
    std::vector<android::ApiId> top(ranked.begin(),
                                    ranked.begin() + static_cast<ptrdiff_t>(take));
    const core::FeatureSchema schema(top, context.universe());
    const ml::Dataset data = core::BuildDataset(context.study(), schema, context.universe());
    const auto result = ml::CrossValidate(data, folds, 3, [] {
      return ml::MakeClassifier(ml::ClassifierKind::kRandomForest, 11);
    });
    const emu::TrackedApiSet tracked(top, context.universe().num_apis());
    const auto minutes = bench::EmulationMinutes(context.universe(), apks, google, tracked);
    table.AddRow({std::to_string(take), util::FormatPercent(result.F1()),
                  util::FormatDouble(stats::Mean(minutes), 2)});
    if (take == ranked.size()) {
      break;
    }
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);
  return 0;
}
