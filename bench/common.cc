#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/cdf.h"
#include "stats/descriptive.h"

namespace apichecker::bench {

namespace {

std::string* MetricsOutPath() {
  static std::string* path = new std::string();
  return path;
}

// atexit hook: every bench run ends with its metrics JSON, so BENCH_* output
// trajectories pick up the pipeline stage latencies without per-bench code.
void EmitMetricsAtExit() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  const std::string json = obs::ToJson(registry, &obs::TraceLog::Default());
  if (!MetricsOutPath()->empty()) {
    auto written = obs::WriteMetricsFile(*MetricsOutPath(), registry,
                                         &obs::TraceLog::Default());
    if (!written.ok()) {
      std::fprintf(stderr, "metrics dump failed: %s\n", written.error().c_str());
    }
  }
  std::printf("\n=== metrics json ===\n%s=== end metrics json ===\n", json.c_str());
}

}  // namespace

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  if (const char* env_path = std::getenv("APICHECKER_METRICS_OUT")) {
    args.metrics_out = env_path;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--apps") == 0 && i + 1 < argc) {
      args.apps = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--apis") == 0 && i + 1 < argc) {
      args.apis = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      args.metrics_out = argv[++i];
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      args.metrics_out = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("flags: --apps N --apis N --seed S --quick --metrics-out FILE\n");
      std::exit(0);
    }
  }
  if (args.quick && args.apis == 50'000) {
    args.apis = 10'000;
  }
  *MetricsOutPath() = args.metrics_out;
  std::atexit(EmitMetricsAtExit);
  return args;
}

StudyContext::StudyContext(const BenchArgs& args, size_t default_apps) : args_(args) {
  android::UniverseConfig universe_config;
  universe_config.num_apis = args_.apis;
  universe_config.seed = args_.seed ^ 0xA11D;
  universe_ = std::make_unique<android::ApiUniverse>(
      android::ApiUniverse::Generate(universe_config));

  synth::CorpusConfig corpus_config;
  corpus_config.seed = args_.seed;
  generator_ = std::make_unique<synth::CorpusGenerator>(*universe_, corpus_config);

  core::StudyConfig study_config;
  study_config.num_apps = args_.AppsOr(default_apps);
  study_ = core::RunStudy(*universe_, *generator_, study_config);
}

const std::vector<core::ApiCorrelation>& StudyContext::correlations() const {
  if (correlations_.empty()) {
    correlations_ = core::ComputeApiCorrelations(study_, universe_->num_apis());
  }
  return correlations_;
}

core::KeyApiSelection StudyContext::Selection() const {
  return core::SelectKeyApis(correlations(), *universe_, study_.size());
}

void PrintHeader(const std::string& experiment, const std::string& paper_summary,
                 const BenchArgs& args, size_t apps) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper result: %s\n", paper_summary.c_str());
  std::printf("scale: %zu apps, %zu framework APIs, seed %llu%s\n", apps, args.apis,
              static_cast<unsigned long long>(args.seed), args.quick ? " (QUICK)" : "");
  std::printf("note: shapes/orderings are the reproduction target, not absolutes\n");
  std::printf("==================================================================\n");
}

void PrintComparison(const std::string& metric, const std::string& paper_value,
                     const std::string& measured_value) {
  std::printf("  %-44s paper: %-18s measured: %s\n", metric.c_str(), paper_value.c_str(),
              measured_value.c_str());
}

std::vector<apk::ApkFile> MaterializeApks(const StudyContext& context, size_t count,
                                          uint64_t salt) {
  synth::CorpusConfig corpus_config;
  corpus_config.seed = context.args().seed + salt;
  synth::CorpusGenerator generator(context.universe(), corpus_config);
  std::vector<apk::ApkFile> apks;
  apks.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto apk = apk::ParseApk(synth::BuildApkBytes(generator.Next(), context.universe()));
    if (apk.ok()) {
      apks.push_back(std::move(*apk));
    }
  }
  return apks;
}

std::vector<double> EmulationMinutes(const android::ApiUniverse& universe,
                                     const std::vector<apk::ApkFile>& apks,
                                     const emu::EngineConfig& engine_config,
                                     const emu::TrackedApiSet& tracked) {
  const emu::DynamicAnalysisEngine engine(universe, engine_config);
  std::vector<double> minutes;
  minutes.reserve(apks.size());
  for (const apk::ApkFile& apk : apks) {
    minutes.push_back(engine.Run(apk, tracked).emulation_minutes);
  }
  return minutes;
}

void PrintCdf(const std::string& label, const std::vector<double>& samples, size_t points) {
  const stats::EmpiricalCdf cdf(samples);
  const stats::Summary summary = stats::Summarize(samples);
  std::printf("%s: %s\n", label.c_str(), summary.ToString(2).c_str());
  for (const auto& [x, p] : cdf.Curve(points)) {
    std::printf("    %10.2f  %5.3f\n", x, p);
  }
}

}  // namespace apichecker::bench
