// Figure 12: online precision/recall of the deployed system over 12 months
// of market operation (monthly model evolution included). Paper: per-month
// precision 98.5–99.0%, recall 96.5–97.0%; ~2.4K suspicious apps flagged per
// month at ~10K submissions/day, avg scan 1.3 min (1.92 min end-to-end).
// Also reproduces the §5.2 observations: ~90% of flagged apps are updates,
// and unreported FNs are tolerable.

#include <cstdio>
#include <sstream>

#include "bench/common.h"
#include "market/simulation.h"
#include "stats/descriptive.h"
#include "util/strings.h"
#include "util/table.h"

using namespace apichecker;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);

  android::UniverseConfig universe_config;
  universe_config.num_apis = args.apis;
  universe_config.seed = args.seed ^ 0xA11D;
  android::ApiUniverse universe = android::ApiUniverse::Generate(universe_config);

  market::MarketConfig config;
  config.months = args.quick ? 3 : 12;
  config.days_per_month = args.quick ? 5 : 8;
  config.apps_per_day = args.AppsOr(150);
  config.initial_study_apps = args.quick ? 2'000 : 5'000;
  config.seed = args.seed;
  bench::PrintHeader(
      "Figure 12 — online precision/recall over 12 months",
      "precision 98.5-99.0%, recall 96.5-97.0% every month; scan 1.3 min", args,
      config.months * config.days_per_month * config.apps_per_day);

  market::MarketSimulation sim(universe, config);
  const std::vector<market::MonthlyStats> months = sim.Run();

  util::Table table({"month", "submitted", "precision", "recall", "F1", "flagged",
                     "fingerprint hits", "FP complaints", "FN reports", "scan (min)"});
  double min_p = 1.0, max_p = 0.0, min_r = 1.0, max_r = 0.0;
  uint64_t flagged = 0, flagged_updates = 0, fn_total = 0, fn_simple = 0;
  double scan_sum = 0.0;
  for (const market::MonthlyStats& m : months) {
    table.AddRow({std::to_string(m.month), std::to_string(m.submitted),
                  util::FormatPercent(m.checker_cm.Precision()),
                  util::FormatPercent(m.checker_cm.Recall()),
                  util::FormatPercent(m.checker_cm.F1()), std::to_string(m.flagged_by_checker),
                  std::to_string(m.caught_by_fingerprint), std::to_string(m.fp_complaints),
                  std::to_string(m.fn_user_reports), util::FormatDouble(m.avg_scan_minutes, 2)});
    min_p = std::min(min_p, m.checker_cm.Precision());
    max_p = std::max(max_p, m.checker_cm.Precision());
    min_r = std::min(min_r, m.checker_cm.Recall());
    max_r = std::max(max_r, m.checker_cm.Recall());
    flagged += m.flagged_by_checker;
    flagged_updates += m.flagged_updates;
    fn_total += m.fn_total;
    fn_simple += m.fn_barely_uses_key_apis;
    scan_sum += m.avg_scan_minutes;
  }
  std::ostringstream os;
  table.Print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf("\n");
  bench::PrintComparison("per-month precision range", "98.5% .. 99.0%",
                         util::FormatPercent(min_p) + " .. " + util::FormatPercent(max_p));
  bench::PrintComparison("per-month recall range", "96.5% .. 97.0%",
                         util::FormatPercent(min_r) + " .. " + util::FormatPercent(max_r));
  bench::PrintComparison("avg scan time", "1.3 min",
                         util::FormatDouble(scan_sum / months.size(), 2) + " min");
  bench::PrintComparison("flagged apps that are updates", "~90%",
                         flagged == 0 ? "n/a"
                                      : util::FormatPercent(static_cast<double>(flagged_updates) /
                                                            static_cast<double>(flagged)));
  bench::PrintComparison("FNs that barely use key APIs", "87%",
                         fn_total == 0 ? "n/a"
                                       : util::FormatPercent(static_cast<double>(fn_simple) /
                                                             static_cast<double>(fn_total)));
  return 0;
}
