// Monthly model registry with a promotion guard. Every retrain produces a
// candidate model; before the market swaps it into production, the candidate
// is validated on a holdout slice of the corpus and rejected if it regresses
// the incumbent's F1 by more than a tolerance. Archived blobs let operators
// roll back and let large markets ship models to smaller ones (§5.4).

#ifndef APICHECKER_MARKET_MODEL_REGISTRY_H_
#define APICHECKER_MARKET_MODEL_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/model_store.h"

namespace apichecker::market {

struct ModelRecord {
  size_t month = 0;              // Month index the model was trained after.
  std::vector<uint8_t> blob;     // Serialized checker (core/model_store).
  double validation_f1 = 0.0;    // Holdout F1 at promotion time.
  size_t key_api_count = 0;
  bool promoted = false;         // False = rejected by the guard.
};

class ModelRegistry {
 public:
  // Archives a candidate; marks it promoted/rejected. Returns whether it was
  // promoted (candidates are promoted when no incumbent exists, or when
  // their validation F1 is within `tolerance` of — or better than — the
  // incumbent's stored score).
  bool Consider(ModelRecord candidate, double tolerance = 0.02);

  // Archives with an externally decided outcome (e.g. when the incumbent was
  // re-validated on fresher data than its stored score reflects).
  void Archive(ModelRecord candidate, bool promoted);

  // The promoted model currently in production (nullptr before first train).
  const ModelRecord* production() const;

  const std::vector<ModelRecord>& history() const { return records_; }
  size_t rejections() const { return rejections_; }

  // Invoked (synchronously) with each newly promoted record. This is the
  // deployment hook: serve::VettingService::AttachToRegistry wires it to a
  // live hot-swap so a promoted monthly model goes into serving without a
  // restart. Pass nullptr to detach.
  using PromotionListener = std::function<void(const ModelRecord&)>;
  void SetPromotionListener(PromotionListener listener) {
    promotion_listener_ = std::move(listener);
  }

 private:
  std::vector<ModelRecord> records_;
  size_t production_index_ = SIZE_MAX;
  size_t rejections_ = 0;
  PromotionListener promotion_listener_;
};

}  // namespace apichecker::market

#endif  // APICHECKER_MARKET_MODEL_REGISTRY_H_
