// T-Market's app-review process (paper §2): fingerprint-based antivirus
// checking against known malware samples, APICHECKER's ML stage, and manual
// inspection driven by developer complaints (false positives) and user
// reports (false negatives).

#ifndef APICHECKER_MARKET_REVIEW_PIPELINE_H_
#define APICHECKER_MARKET_REVIEW_PIPELINE_H_

#include <cstdint>
#include <string>
#include <unordered_set>

#include "apk/dex.h"

namespace apichecker::market {

// Behaviour-level fingerprint of an app's code (manifest-independent, so a
// repackaged clone with a bumped version code still matches). Plays the role
// of the antivirus signature databases (Symantec/Kaspersky/... of §4.1).
uint64_t CodeFingerprint(const apk::DexFile& dex);

class FingerprintDatabase {
 public:
  void AddMalware(uint64_t fingerprint) { known_malware_.insert(fingerprint); }
  bool IsKnownMalware(uint64_t fingerprint) const {
    return known_malware_.count(fingerprint) != 0;
  }
  size_t size() const { return known_malware_.size(); }

 private:
  std::unordered_set<uint64_t> known_malware_;
};

// Outcome of one submission through the full review pipeline.
enum class ReviewOutcome : uint8_t {
  kPublished = 0,            // Passed every stage.
  kRejectedFingerprint = 1,  // Matched a known malware signature.
  kRejectedByChecker = 2,    // Flagged by APICHECKER, confirmed malicious.
  kFalsePositiveReleased = 3,  // Flagged, developer complained, manual
                               // inspection cleared it (released).
};

const char* ReviewOutcomeName(ReviewOutcome outcome);

// Canonical per-outcome counter name (obs/names.h) for telemetry.
const char* ReviewOutcomeMetricName(ReviewOutcome outcome);

// Bumps apichecker_market_submissions_total plus the per-outcome counter in
// the default metrics registry. Every path that resolves a submission — the
// simulator, the CLI's vet command — reports through this single choke point
// so the review-outcome telemetry stays consistent across entry points.
void RecordReviewOutcome(ReviewOutcome outcome);

}  // namespace apichecker::market

#endif  // APICHECKER_MARKET_REVIEW_PIPELINE_H_
