#include "market/model_registry.h"

namespace apichecker::market {

bool ModelRegistry::Consider(ModelRecord candidate, double tolerance) {
  const ModelRecord* incumbent = production();
  const bool promote =
      incumbent == nullptr || candidate.validation_f1 >= incumbent->validation_f1 - tolerance;
  Archive(std::move(candidate), promote);
  return promote;
}

void ModelRegistry::Archive(ModelRecord candidate, bool promoted) {
  candidate.promoted = promoted;
  records_.push_back(std::move(candidate));
  if (promoted) {
    production_index_ = records_.size() - 1;
    if (promotion_listener_) {
      promotion_listener_(records_.back());
    }
  } else {
    ++rejections_;
  }
}

const ModelRecord* ModelRegistry::production() const {
  return production_index_ == SIZE_MAX ? nullptr : &records_[production_index_];
}

}  // namespace apichecker::market
