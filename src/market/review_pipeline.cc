#include "market/review_pipeline.h"

#include <bit>

#include "obs/metrics.h"
#include "obs/names.h"
#include "util/rng.h"

namespace apichecker::market {

uint64_t CodeFingerprint(const apk::DexFile& dex) {
  // Hash the code-identity-bearing parts: string pool, method table, and the
  // behaviour records (rates quantized so benign float noise from
  // re-serialization does not change the signature). The manifest — and in
  // particular the version code — deliberately does not participate.
  uint64_t h = 0x5f3759df;
  for (const std::string& s : dex.strings) {
    for (char c : s) {
      h = util::SplitMix64(h ^ static_cast<uint8_t>(c));
    }
    h = util::SplitMix64(h ^ 0xff);
  }
  for (uint32_t idx : dex.method_name_idx) {
    h = util::SplitMix64(h ^ idx);
  }
  for (const apk::DexBehavior& b : dex.behaviors) {
    h = util::SplitMix64(h ^ b.method_idx);
    h = util::SplitMix64(h ^ static_cast<uint64_t>(b.invocations_per_kevent * 16.0f));
    h = util::SplitMix64(h ^ b.activity);
    h = util::SplitMix64(h ^ b.intent_string_idx);
  }
  return h;
}

const char* ReviewOutcomeName(ReviewOutcome outcome) {
  switch (outcome) {
    case ReviewOutcome::kPublished:
      return "published";
    case ReviewOutcome::kRejectedFingerprint:
      return "rejected-fingerprint";
    case ReviewOutcome::kRejectedByChecker:
      return "rejected-apichecker";
    case ReviewOutcome::kFalsePositiveReleased:
      return "false-positive-released";
  }
  return "?";
}

const char* ReviewOutcomeMetricName(ReviewOutcome outcome) {
  switch (outcome) {
    case ReviewOutcome::kPublished:
      return obs::names::kMarketOutcomePublishedTotal;
    case ReviewOutcome::kRejectedFingerprint:
      return obs::names::kMarketOutcomeRejectedFingerprintTotal;
    case ReviewOutcome::kRejectedByChecker:
      return obs::names::kMarketOutcomeRejectedCheckerTotal;
    case ReviewOutcome::kFalsePositiveReleased:
      return obs::names::kMarketOutcomeFalsePositiveReleasedTotal;
  }
  return obs::names::kMarketOutcomePublishedTotal;
}

void RecordReviewOutcome(ReviewOutcome outcome) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  metrics.counter(obs::names::kMarketSubmissionsTotal).Increment();
  metrics.counter(ReviewOutcomeMetricName(outcome)).Increment();
}

}  // namespace apichecker::market
