#include "market/simulation.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace apichecker::market {

MarketSimulation::MarketSimulation(android::ApiUniverse& universe, MarketConfig config)
    : universe_(universe),
      config_(config),
      generator_(universe, [&] {
        synth::CorpusConfig corpus_config;
        corpus_config.seed = config.seed;
        corpus_config.update_attack_rate = config.update_attack_rate;
        return corpus_config;
      }()),
      checker_(std::make_unique<core::ApiChecker>(universe, config.checker)),
      rng_(config.seed ^ 0x3a7) {}

std::vector<MonthlyStats> MarketSimulation::Run() {
  // Bootstrap: offline study on the pre-deployment corpus, first model.
  core::StudyConfig study_config;
  study_config.num_apps = config_.initial_study_apps;
  study_config.engine = config_.study_engine;
  training_corpus_ = core::RunStudy(universe_, generator_, study_config);
  checker_->TrainFromStudy(training_corpus_);
  APICHECKER_SLOG(Info, "market.initial_model")
      .With("key_apis", checker_->selection().key_apis.size())
      .With("corpus", training_corpus_.size());

  std::vector<MonthlyStats> months;
  for (size_t month = 1; month <= config_.months; ++month) {
    obs::TraceSpan month_span("market.month");
    MonthlyStats stats;
    stats.month = month;
    scan_minutes_sum_ = 0.0;
    scans_ = 0;
    makespan_sum_ = 0.0;
    days_in_month_so_far_ = 0;

    for (size_t day = 0; day < config_.days_per_month; ++day) {
      RunDay(stats, (month - 1) * config_.days_per_month + day);
    }

    stats.key_api_count = checker_->selection().key_apis.size();
    stats.model_promoted = true;  // Overwritten below by the guard outcome.
    stats.avg_scan_minutes = scans_ == 0 ? 0.0 : scan_minutes_sum_ / static_cast<double>(scans_);
    stats.avg_makespan_minutes_per_day =
        days_in_month_so_far_ == 0
            ? 0.0
            : makespan_sum_ / static_cast<double>(days_in_month_so_far_);
    stats.sdk_level = universe_.sdk_level();
    stats.model_promoted = MonthlyEvolution(month);
    months.push_back(stats);
  }
  return months;
}

void MarketSimulation::RunDay(MonthlyStats& stats, size_t /*day_index*/) {
  obs::TraceSpan day_span("market.day");
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  obs::Histogram& scan_minutes = metrics.histogram(obs::names::kMarketScanMinutes);
  const emu::DynamicAnalysisEngine production_engine(universe_, config_.production_engine);
  const emu::DynamicAnalysisEngine study_engine(universe_, config_.study_engine);
  const emu::TrackedApiSet tracked = checker_->MakeTrackedSet();
  const emu::TrackedApiSet track_all = emu::TrackedApiSet::All(universe_.num_apis());
  const core::StudyRecorder recorder(universe_, config_.study_engine);

  double day_minutes = 0.0;
  for (size_t a = 0; a < config_.apps_per_day; ++a) {
    const synth::AppProfile profile = generator_.Next();
    const std::vector<uint8_t> apk_bytes = synth::BuildApkBytes(profile, universe_);
    auto apk = apk::ParseApk(apk_bytes);
    if (!apk.ok()) {
      APICHECKER_SLOG(Error, "market.bad_submission").With("error", apk.error());
      continue;
    }
    ++stats.submitted;

    // Stage 1: fingerprint-based antivirus checking.
    const uint64_t fingerprint = CodeFingerprint(apk->dex);
    if (fingerprints_.IsKnownMalware(fingerprint)) {
      ++stats.caught_by_fingerprint;
      RecordReviewOutcome(ReviewOutcome::kRejectedFingerprint);
      continue;  // Rejected before emulation.
    }

    // Stage 2: APICHECKER — emulate with the key-API hooks, classify.
    const emu::EmulationReport report = production_engine.Run(*apk, tracked);
    const core::ApiChecker::Verdict verdict = checker_->Classify(report);
    scan_minutes_sum_ += report.emulation_minutes;
    day_minutes += report.emulation_minutes;
    scan_minutes.Observe(report.emulation_minutes);
    ++scans_;
    stats.checker_cm.Record(profile.malicious, verdict.malicious);
    if (profile.is_update_attack) {
      ++stats.update_attacks_submitted;
      stats.update_attacks_caught += verdict.malicious ? 1 : 0;
    }

    // Stage 3: manual loops.
    bool resolved_malicious = false;
    if (verdict.malicious) {
      ++stats.flagged_by_checker;
      if (profile.is_update) {
        ++stats.flagged_updates;  // Quick-vetted against the prior version.
      }
      if (profile.malicious) {
        resolved_malicious = true;  // Confirmed; quarantined.
        fingerprints_.AddMalware(fingerprint);
        RecordReviewOutcome(ReviewOutcome::kRejectedByChecker);
      } else {
        // Developer complaint -> manual inspection -> release. The paper
        // actively drives this queue to zero daily.
        ++stats.fp_complaints;
        RecordReviewOutcome(ReviewOutcome::kFalsePositiveReleased);
      }
    } else if (profile.malicious) {
      // False negative. §5.2 analysis: most FNs barely touch the key APIs
      // (stealthy-but-simple apps), so they pose mild threats.
      ++stats.fn_total;
      if (report.observed_apis.size() <= 10) {
        ++stats.fn_barely_uses_key_apis;
      }
      RecordReviewOutcome(ReviewOutcome::kPublished);  // Slipped through review.
      // Caught only if end users report it.
      if (rng_.Bernoulli(config_.fn_user_report_rate)) {
        ++stats.fn_user_reports;
        resolved_malicious = true;
        fingerprints_.AddMalware(fingerprint);
        metrics.counter(obs::names::kMarketFnReportedTotal).Increment();
      }
    } else {
      RecordReviewOutcome(ReviewOutcome::kPublished);
    }

    // Retraining sampler: replay a slice of the stream offline with all-API
    // hooks. Labels come from the pipeline's resolution, not ground truth:
    // unreported false negatives enter the corpus as (wrongly) benign.
    if (rng_.Bernoulli(config_.retrain_sample_rate)) {
      const emu::EmulationReport full_report = study_engine.Run(*apk, track_all);
      core::StudyRecord record = recorder.BuildRecord(*apk, full_report);
      record.label = resolved_malicious ? 1 : 0;
      record.is_update = profile.is_update ? 1 : 0;
      training_corpus_.records.push_back(std::move(record));
    }
  }
  const double day_makespan =
      day_minutes / static_cast<double>(std::max<size_t>(1, config_.num_emulators));
  makespan_sum_ += day_makespan;
  metrics.histogram(obs::names::kMarketDayMakespanMinutes).Observe(day_makespan);
  ++days_in_month_so_far_;
}

void MarketSimulation::SplitCorpus(core::StudyDataset& train,
                                   core::StudyDataset& holdout) const {
  const size_t stride = std::max<size_t>(2, config_.validation_stride);
  for (size_t i = 0; i < training_corpus_.size(); ++i) {
    ((i % stride == 0) ? holdout : train).records.push_back(training_corpus_.records[i]);
  }
}

double MarketSimulation::ValidationF1(const core::ApiChecker& checker,
                                      const core::StudyDataset& holdout) const {
  if (!checker.trained()) {
    return 0.0;
  }
  const ml::Dataset data = core::BuildDataset(holdout, checker.schema(), universe_);
  return checker.model().Evaluate(data).F1();
}

bool MarketSimulation::MonthlyEvolution(size_t month_index) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  obs::TraceSpan span("market.monthly_evolution");
  obs::ScopedTimer retrain_timer(metrics.histogram(obs::names::kMarketRetrainMs));

  // Quarterly SDK growth: new framework APIs appear and newly generated apps
  // begin adopting them.
  if (config_.sdk_update_every_months > 0 &&
      month_index % config_.sdk_update_every_months == 0) {
    const uint16_t new_level = static_cast<uint16_t>(universe_.sdk_level() + 1);
    universe_.AddSdkLevel(new_level, config_.new_apis_per_sdk_update,
                          config_.seed ^ (0x5dull * new_level));
    // Rebuild templates with the SAME world seed: the ecosystem keeps its
    // identity but newly generated apps start adopting the new SDK APIs
    // (pool-append draws perturb families only incrementally).
    generator_.RefreshTemplates(generator_.config().template_seed);
    APICHECKER_SLOG(Info, "market.sdk_update")
        .With("level", new_level)
        .With("new_apis", config_.new_apis_per_sdk_update);
  }

  // Monthly re-selection + retraining on the cumulative corpus (§5.3), with
  // the promotion guard validating the candidate on a holdout slice first.
  core::StudyDataset train, holdout;
  SplitCorpus(train, holdout);

  core::ApiChecker candidate(universe_, config_.checker);
  candidate.TrainFromStudy(train);

  ModelRecord record;
  record.month = month_index;
  record.key_api_count = candidate.selection().key_apis.size();
  record.validation_f1 = ValidationF1(candidate, holdout);
  record.blob = core::SerializeChecker(candidate);

  bool promoted = true;
  if (config_.enable_model_guard && registry_.production() != nullptr) {
    // Re-validate the incumbent on the same holdout so the comparison is
    // current-month apples to apples (the stored score is a month old).
    const double incumbent_f1 = ValidationF1(*checker_, holdout);
    promoted = record.validation_f1 >= incumbent_f1 - config_.guard_tolerance;
  }
  registry_.Archive(std::move(record), promoted);

  if (promoted) {
    checker_ = std::make_unique<core::ApiChecker>(std::move(candidate));
    metrics.counter(obs::names::kMarketModelPromotionsTotal).Increment();
  } else {
    metrics.counter(obs::names::kMarketModelRollbacksTotal).Increment();
    APICHECKER_SLOG(Warning, "market.model_guard_rollback").With("month", month_index);
  }
  APICHECKER_SLOG(Info, "market.retrain")
      .With("month", month_index)
      .With("key_apis", checker_->selection().key_apis.size())
      .With("corpus", training_corpus_.size())
      .With("promoted", promoted);
  return promoted;
}

}  // namespace apichecker::market
