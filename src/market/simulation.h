// 12-month production deployment simulation (paper §5.2/§5.3): daily vetting
// of the submission stream on a single-server lightweight-emulator farm,
// monthly key-API re-selection + model retraining, quarterly SDK growth, and
// the FP-complaint / FN-report manual loops. Regenerates Fig 12 (online
// precision/recall per month) and Fig 14 (key-API count per month).

#ifndef APICHECKER_MARKET_SIMULATION_H_
#define APICHECKER_MARKET_SIMULATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/checker.h"
#include "core/study.h"
#include "market/model_registry.h"
#include "market/review_pipeline.h"
#include "ml/metrics.h"
#include "synth/corpus.h"

namespace apichecker::market {

struct MarketConfig {
  size_t months = 12;
  size_t days_per_month = 30;
  size_t apps_per_day = 200;          // Scaled stand-in for the paper's ~10K.
  size_t initial_study_apps = 15'000; // Offline corpus for the first model.
  // Fraction of monthly submissions replayed offline under track-all hooks
  // to grow the retraining corpus (selection needs all-API observations).
  double retrain_sample_rate = 0.25;
  double fn_user_report_rate = 0.5;   // P(an FN gets reported within the month).
  size_t sdk_update_every_months = 3; // "SDK is updated every several months".
  size_t new_apis_per_sdk_update = 300;
  size_t num_emulators = 16;
  // Update-attack pressure on the submission stream (synth pass-through).
  double update_attack_rate = 0.0;
  // Model-promotion guard: candidates that regress the incumbent's holdout
  // F1 by more than the tolerance are archived but not promoted.
  bool enable_model_guard = true;
  double guard_tolerance = 0.02;
  size_t validation_stride = 7;  // Every Nth corpus record is holdout.
  core::ApiCheckerConfig checker;
  emu::EngineConfig study_engine;      // Google emulator, track-all (offline).
  emu::EngineConfig production_engine; // Lightweight engine (online).
  uint64_t seed = 0x714a11;

  MarketConfig() {
    production_engine.kind = emu::EngineKind::kLightweight;
  }
};

struct MonthlyStats {
  size_t month = 0;  // 1-based.
  uint64_t submitted = 0;
  uint64_t caught_by_fingerprint = 0;
  uint64_t flagged_by_checker = 0;
  uint64_t flagged_updates = 0;    // §5.2: ~90% of flagged apps are updates.
  uint64_t fp_complaints = 0;      // Developer complaints (all resolved).
  uint64_t fn_user_reports = 0;    // User reports (resolved on report).
  uint64_t update_attacks_submitted = 0;  // Benign packages turning malicious.
  uint64_t update_attacks_caught = 0;     // ...flagged by APICHECKER.
  // §5.2 FN analysis: false negatives that barely exercise the key APIs
  // (the paper manually sampled FNs and found 87% in this category, deeming
  // them mild threats).
  uint64_t fn_total = 0;
  uint64_t fn_barely_uses_key_apis = 0;
  ml::ConfusionMatrix checker_cm;  // APICHECKER verdicts vs ground truth.
  size_t key_api_count = 0;
  bool model_promoted = true;  // Whether this month's retrain went live.
  double avg_scan_minutes = 0.0;
  double avg_makespan_minutes_per_day = 0.0;
  uint16_t sdk_level = 0;
};

class MarketSimulation {
 public:
  // The universe is mutated (SDK growth), hence non-const.
  MarketSimulation(android::ApiUniverse& universe, MarketConfig config);

  // Bootstraps the initial model from an offline study and simulates the
  // configured number of months. Returns one row per month.
  std::vector<MonthlyStats> Run();

  const core::ApiChecker& checker() const { return *checker_; }
  const FingerprintDatabase& fingerprints() const { return fingerprints_; }
  const ModelRegistry& registry() const { return registry_; }

 private:
  void RunDay(MonthlyStats& stats, size_t day_index);
  // Returns whether the candidate model was promoted to production.
  bool MonthlyEvolution(size_t month_index);
  // Splits the cumulative corpus into train/holdout by record stride.
  void SplitCorpus(core::StudyDataset& train, core::StudyDataset& holdout) const;
  // Holdout F1 of a trained checker.
  double ValidationF1(const core::ApiChecker& checker,
                      const core::StudyDataset& holdout) const;

  android::ApiUniverse& universe_;
  MarketConfig config_;
  synth::CorpusGenerator generator_;
  std::unique_ptr<core::ApiChecker> checker_;
  core::StudyDataset training_corpus_;  // Cumulative (initial + sampled new).
  FingerprintDatabase fingerprints_;
  ModelRegistry registry_;
  util::Rng rng_;
  double scan_minutes_sum_ = 0.0;
  uint64_t scans_ = 0;
  double makespan_sum_ = 0.0;
  size_t days_in_month_so_far_ = 0;
};

}  // namespace apichecker::market

#endif  // APICHECKER_MARKET_SIMULATION_H_
