// Binary-feature dataset representation shared by all classifiers.
//
// APICHECKER's feature vectors are One-Hot encodings over tracked APIs plus
// auxiliary permission/intent bits (paper §4.2, §4.5): each row is a sparse
// set of active bit indices. Rows are stored sparse (sorted index lists)
// because an app invokes only a tiny fraction of the ~50K framework APIs;
// classifiers that want dense vectors densify per-row on the fly.

#ifndef APICHECKER_ML_DATASET_H_
#define APICHECKER_ML_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

namespace apichecker::ml {

// Sorted, deduplicated list of active feature indices.
using SparseRow = std::vector<uint32_t>;

// True if the row has the feature (binary membership; rows are sorted).
bool RowHasFeature(const SparseRow& row, uint32_t feature);

struct Dataset {
  uint32_t num_features = 0;
  std::vector<SparseRow> rows;
  std::vector<uint8_t> labels;  // 1 = malicious, 0 = benign.

  size_t size() const { return rows.size(); }

  void Add(SparseRow row, uint8_t label);

  // Number of positive (malicious) labels.
  size_t NumPositive() const;

  // Projects onto a feature subset: keeps only the listed feature columns and
  // renumbers them 0..columns.size()-1 in the given order. Indices in
  // `columns` must be unique and < num_features.
  Dataset SelectColumns(std::span<const uint32_t> columns) const;

  // Returns the subset of this dataset at the given row indices.
  Dataset Subset(std::span<const uint32_t> row_indices) const;

  // Densifies one row into a 0/1 vector of length num_features.
  std::vector<float> DenseRow(size_t row_index) const;

  // Per-column document frequency: in how many rows each feature is active.
  std::vector<uint32_t> FeatureCounts() const;
};

// Removes from `test` every row whose feature vector also appears in `train`
// or earlier in `test` (exact duplicate). The paper applies this inside each
// cross-validation fold to avoid data-leakage-inflated results (§4.2).
Dataset DeduplicateAgainst(const Dataset& test, const Dataset& train);

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_DATASET_H_
