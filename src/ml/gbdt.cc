#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace apichecker::ml {

namespace {
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

double Gbdt::Tree::Predict(const SparseRow& row) const {
  if (nodes.empty()) {
    return 0.0;
  }
  uint32_t index = 0;
  for (;;) {
    const Node& node = nodes[index];
    if (node.feature < 0) {
      return node.value;
    }
    index = RowHasFeature(row, static_cast<uint32_t>(node.feature)) ? node.present_child
                                                                    : node.absent_child;
  }
}

void Gbdt::Train(const Dataset& data) {
  trees_.clear();
  const size_t n = data.size();
  if (n == 0) {
    base_score_ = 0.0;
    return;
  }

  const double pos_rate =
      std::clamp(static_cast<double>(data.NumPositive()) / static_cast<double>(n), 1e-6,
                 1.0 - 1e-6);
  base_score_ = std::log(pos_rate / (1.0 - pos_rate));

  stamp_.assign(data.num_features, 0);
  sum_g_.assign(data.num_features, 0.0);
  sum_h_.assign(data.num_features, 0.0);
  epoch_ = 0;

  std::vector<double> margin(n, base_score_);
  std::vector<double> grad(n), hess(n);
  std::vector<uint32_t> rows(n);

  for (size_t round = 0; round < config_.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(margin[i]);
      grad[i] = p - static_cast<double>(data.labels[i]);  // dLoss/dMargin.
      hess[i] = std::max(1e-12, p * (1.0 - p));
    }
    std::iota(rows.begin(), rows.end(), 0u);
    Tree tree;
    BuildNode(data, rows, 0, n, 0, grad, hess, tree);
    for (size_t i = 0; i < n; ++i) {
      margin[i] += config_.learning_rate * tree.Predict(data.rows[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

uint32_t Gbdt::BuildNode(const Dataset& data, std::vector<uint32_t>& rows, size_t begin,
                         size_t end, size_t depth, const std::vector<double>& grad,
                         const std::vector<double>& hess, Tree& tree) {
  double total_g = 0.0, total_h = 0.0;
  for (size_t i = begin; i < end; ++i) {
    total_g += grad[rows[i]];
    total_h += hess[rows[i]];
  }

  const uint32_t node_index = static_cast<uint32_t>(tree.nodes.size());
  tree.nodes.push_back(Node{});
  tree.nodes[node_index].value =
      static_cast<float>(-total_g / (total_h + config_.l2));

  if (depth >= config_.max_depth || end - begin < 2) {
    return node_index;
  }

  ++epoch_;
  std::vector<uint32_t> touched;
  for (size_t i = begin; i < end; ++i) {
    const uint32_t row = rows[i];
    for (uint32_t f : data.rows[row]) {
      if (stamp_[f] != epoch_) {
        stamp_[f] = epoch_;
        sum_g_[f] = 0.0;
        sum_h_[f] = 0.0;
        touched.push_back(f);
      }
      sum_g_[f] += grad[row];
      sum_h_[f] += hess[row];
    }
  }

  const double parent_score = total_g * total_g / (total_h + config_.l2);
  double best_gain = 1e-9;
  int64_t best_feature = -1;
  for (uint32_t f : touched) {
    const double g1 = sum_g_[f];
    const double h1 = sum_h_[f];
    const double g0 = total_g - g1;
    const double h0 = total_h - h1;
    if (h1 < config_.min_child_weight || h0 < config_.min_child_weight) {
      continue;
    }
    const double gain = g1 * g1 / (h1 + config_.l2) + g0 * g0 / (h0 + config_.l2) - parent_score;
    if (gain > best_gain) {
      best_gain = gain;
      best_feature = f;
    }
  }
  if (best_feature < 0) {
    return node_index;
  }

  const uint32_t split = static_cast<uint32_t>(best_feature);
  const auto mid_it = std::stable_partition(
      rows.begin() + static_cast<ptrdiff_t>(begin), rows.begin() + static_cast<ptrdiff_t>(end),
      [&](uint32_t row) { return !RowHasFeature(data.rows[row], split); });
  const size_t mid = static_cast<size_t>(mid_it - rows.begin());

  const uint32_t absent = BuildNode(data, rows, begin, mid, depth + 1, grad, hess, tree);
  const uint32_t present = BuildNode(data, rows, mid, end, depth + 1, grad, hess, tree);
  tree.nodes[node_index].feature = static_cast<int32_t>(split);
  tree.nodes[node_index].absent_child = absent;
  tree.nodes[node_index].present_child = present;
  return node_index;
}

double Gbdt::PredictScore(const SparseRow& row) const {
  double margin = base_score_;
  for (const Tree& tree : trees_) {
    margin += config_.learning_rate * tree.Predict(row);
  }
  return Sigmoid(margin);
}

}  // namespace apichecker::ml
