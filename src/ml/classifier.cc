#include "ml/classifier.h"

#include "ml/cart.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/linear_model.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace apichecker::ml {

ConfusionMatrix Classifier::Evaluate(const Dataset& data) const {
  ConfusionMatrix cm;
  for (size_t i = 0; i < data.size(); ++i) {
    cm.Record(data.labels[i] != 0, Predict(data.rows[i]));
  }
  return cm;
}

std::string ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kNaiveBayes:
      return "Naive Bayes";
    case ClassifierKind::kLogisticRegression:
      return "Logistic Regression";
    case ClassifierKind::kSvm:
      return "SVM";
    case ClassifierKind::kGbdt:
      return "GBDT";
    case ClassifierKind::kKnn:
      return "kNN";
    case ClassifierKind::kCart:
      return "CART";
    case ClassifierKind::kAnn:
      return "ANN";
    case ClassifierKind::kDnn:
      return "DNN";
    case ClassifierKind::kRandomForest:
      return "Random Forest";
  }
  return "?";
}

std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind, uint64_t seed) {
  switch (kind) {
    case ClassifierKind::kNaiveBayes:
      return std::make_unique<NaiveBayes>();
    case ClassifierKind::kLogisticRegression: {
      LinearModelConfig config;
      config.seed = seed;
      return std::make_unique<LogisticRegression>(config);
    }
    case ClassifierKind::kSvm: {
      LinearModelConfig config;
      config.seed = seed;
      config.epochs = 15;
      return std::make_unique<LinearSvm>(config);
    }
    case ClassifierKind::kGbdt: {
      GbdtConfig config;
      config.seed = seed;
      return std::make_unique<Gbdt>(config);
    }
    case ClassifierKind::kKnn: {
      KnnConfig config;
      config.seed = seed;
      return std::make_unique<Knn>(config);
    }
    case ClassifierKind::kCart: {
      CartConfig config;
      config.seed = seed;
      return std::make_unique<CartTree>(config);
    }
    case ClassifierKind::kAnn: {
      MlpConfig config;
      config.hidden_layers = {32};
      config.display_name = "ANN";
      config.seed = seed;
      return std::make_unique<Mlp>(config);
    }
    case ClassifierKind::kDnn: {
      MlpConfig config;
      config.hidden_layers = {64, 64, 32};
      config.display_name = "DNN";
      config.epochs = 10;
      config.seed = seed;
      return std::make_unique<Mlp>(config);
    }
    case ClassifierKind::kRandomForest: {
      RandomForestConfig config;
      config.seed = seed;
      return std::make_unique<RandomForest>(config);
    }
  }
  return nullptr;
}

}  // namespace apichecker::ml
