#include "ml/knn.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace apichecker::ml {

void Knn::Train(const Dataset& data) {
  postings_.assign(data.num_features, {});
  row_sizes_.clear();
  labels_.clear();

  std::vector<uint32_t> keep(data.size());
  std::iota(keep.begin(), keep.end(), 0u);
  if (config_.max_train_rows > 0 && data.size() > config_.max_train_rows) {
    util::Rng rng(config_.seed);
    keep = rng.SampleWithoutReplacement(data.size(), config_.max_train_rows);
    std::sort(keep.begin(), keep.end());
  }

  row_sizes_.reserve(keep.size());
  labels_.reserve(keep.size());
  for (uint32_t stored = 0; stored < keep.size(); ++stored) {
    const uint32_t src = keep[stored];
    const SparseRow& row = data.rows[src];
    for (uint32_t f : row) {
      postings_[f].push_back(stored);
    }
    row_sizes_.push_back(static_cast<uint32_t>(row.size()));
    labels_.push_back(data.labels[src]);
  }
}

double Knn::PredictScore(const SparseRow& row) const {
  const size_t n = row_sizes_.size();
  if (n == 0) {
    return 0.0;
  }
  std::vector<uint32_t> overlap(n, 0);
  for (uint32_t f : row) {
    if (f < postings_.size()) {
      for (uint32_t train_row : postings_[f]) {
        ++overlap[train_row];
      }
    }
  }
  const uint32_t q = static_cast<uint32_t>(row.size());
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  const size_t k = std::min(config_.k, n);
  // Hamming distance; ties broken by row id for determinism.
  auto distance = [&](uint32_t i) { return row_sizes_[i] + q - 2 * overlap[i]; };
  std::nth_element(order.begin(), order.begin() + static_cast<ptrdiff_t>(k - 1), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     const uint32_t da = distance(a);
                     const uint32_t db = distance(b);
                     return da != db ? da < db : a < b;
                   });
  size_t positives = 0;
  for (size_t i = 0; i < k; ++i) {
    positives += labels_[order[i]];
  }
  return static_cast<double>(positives) / static_cast<double>(k);
}

}  // namespace apichecker::ml
