// Abstract malware classifier interface implemented by the nine learners the
// paper evaluates (Table 2): NB, LR, CART, kNN, SVM, GBDT, ANN, DNN, RF.

#ifndef APICHECKER_ML_CLASSIFIER_H_
#define APICHECKER_ML_CLASSIFIER_H_

#include <memory>
#include <string>

#include "ml/dataset.h"
#include "ml/metrics.h"

namespace apichecker::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  // Fits the model; any previous fit is discarded.
  virtual void Train(const Dataset& data) = 0;

  // Malice score in [0, 1]; >= threshold() classifies as malicious.
  virtual double PredictScore(const SparseRow& row) const = 0;

  virtual std::string name() const = 0;

  bool Predict(const SparseRow& row) const { return PredictScore(row) >= threshold_; }

  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }

  // Evaluates Predict() over every row of `data`.
  ConfusionMatrix Evaluate(const Dataset& data) const;

 protected:
  double threshold_ = 0.5;
};

// Enumerates the nine paper classifiers for factory construction.
enum class ClassifierKind {
  kNaiveBayes,
  kLogisticRegression,
  kSvm,
  kGbdt,
  kKnn,
  kCart,
  kAnn,   // 1 hidden layer MLP.
  kDnn,   // 3 hidden layer MLP.
  kRandomForest,
};

// Human-readable names matching Table 2 rows.
std::string ClassifierKindName(ClassifierKind kind);

// Builds a classifier with paper-appropriate default hyperparameters; `seed`
// controls all internal randomness.
std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind, uint64_t seed);

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_CLASSIFIER_H_
