#include "ml/metrics.h"

#include "util/strings.h"

namespace apichecker::ml {

void ConfusionMatrix::Record(bool actual_positive, bool predicted_positive) {
  if (actual_positive) {
    predicted_positive ? ++tp : ++fn;
  } else {
    predicted_positive ? ++fp : ++tn;
  }
}

double ConfusionMatrix::Precision() const {
  const uint64_t denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::Recall() const {
  const uint64_t denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::Accuracy() const {
  const uint64_t t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

double ConfusionMatrix::FalsePositiveRate() const {
  const uint64_t denom = fp + tn;
  return denom == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(denom);
}

ConfusionMatrix& ConfusionMatrix::operator+=(const ConfusionMatrix& other) {
  tp += other.tp;
  fp += other.fp;
  tn += other.tn;
  fn += other.fn;
  return *this;
}

std::string ConfusionMatrix::ToString() const {
  return util::StrFormat(
      "P=%s R=%s F1=%s (tp=%llu fp=%llu tn=%llu fn=%llu)", util::FormatPercent(Precision()).c_str(),
      util::FormatPercent(Recall()).c_str(), util::FormatPercent(F1()).c_str(),
      static_cast<unsigned long long>(tp), static_cast<unsigned long long>(fp),
      static_cast<unsigned long long>(tn), static_cast<unsigned long long>(fn));
}

}  // namespace apichecker::ml
