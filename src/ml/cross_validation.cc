#include "ml/cross_validation.h"

#include <chrono>

#include "util/rng.h"

namespace apichecker::ml {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

std::vector<uint32_t> StratifiedFoldAssignment(const Dataset& data, size_t folds, uint64_t seed) {
  std::vector<uint32_t> assignment(data.size(), 0);
  util::Rng rng(seed);
  // Shuffle positives and negatives independently, then deal them round-robin
  // so each fold receives the same class mix.
  std::vector<uint32_t> pos, neg;
  for (uint32_t i = 0; i < data.size(); ++i) {
    (data.labels[i] ? pos : neg).push_back(i);
  }
  for (auto* group : {&pos, &neg}) {
    const std::vector<uint32_t> perm = rng.Permutation(group->size());
    for (size_t j = 0; j < group->size(); ++j) {
      assignment[(*group)[perm[j]]] = static_cast<uint32_t>(j % folds);
    }
  }
  return assignment;
}

CrossValidationResult CrossValidate(
    const Dataset& data, size_t folds, uint64_t seed,
    const std::function<std::unique_ptr<Classifier>()>& make_classifier) {
  CrossValidationResult result;
  const std::vector<uint32_t> assignment = StratifiedFoldAssignment(data, folds, seed);

  for (uint32_t fold = 0; fold < folds; ++fold) {
    std::vector<uint32_t> train_rows, test_rows;
    for (uint32_t i = 0; i < data.size(); ++i) {
      (assignment[i] == fold ? test_rows : train_rows).push_back(i);
    }
    const Dataset train = data.Subset(train_rows);
    const Dataset test = DeduplicateAgainst(data.Subset(test_rows), train);

    std::unique_ptr<Classifier> model = make_classifier();
    const auto start = std::chrono::steady_clock::now();
    model->Train(train);
    result.total_train_seconds += SecondsSince(start);

    result.folds.push_back(model->Evaluate(test));
    result.pooled += result.folds.back();
  }
  if (!result.folds.empty()) {
    result.mean_train_seconds = result.total_train_seconds /
                                static_cast<double>(result.folds.size());
  }
  return result;
}

TrainTestSplit SplitTrainTest(const Dataset& data, double test_fraction, uint64_t seed) {
  const size_t folds = test_fraction > 0.0 && test_fraction < 1.0
                           ? static_cast<size_t>(1.0 / test_fraction + 0.5)
                           : 5;
  const std::vector<uint32_t> assignment = StratifiedFoldAssignment(data, folds, seed);
  std::vector<uint32_t> train_rows, test_rows;
  for (uint32_t i = 0; i < data.size(); ++i) {
    (assignment[i] == 0 ? test_rows : train_rows).push_back(i);
  }
  TrainTestSplit split;
  split.train = data.Subset(train_rows);
  split.test = data.Subset(test_rows);
  return split;
}

}  // namespace apichecker::ml
