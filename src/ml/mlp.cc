#include "ml/mlp.h"

#include <cmath>

namespace apichecker::ml {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

void InitWeights(std::vector<double>& weights, size_t fan_in, util::Rng& rng) {
  const double scale = std::sqrt(2.0 / std::max<size_t>(1, fan_in));
  for (double& w : weights) {
    w = rng.Normal(0.0, scale);
  }
}

}  // namespace

void Mlp::Train(const Dataset& data) {
  num_features_ = data.num_features;
  first_width_ = config_.hidden_layers.empty() ? 1 : config_.hidden_layers[0];

  util::Rng rng(config_.seed);
  first_layer_.assign(static_cast<size_t>(num_features_) * first_width_, 0.0);
  first_bias_.assign(first_width_, 0.0);
  // Binary sparse inputs: effective fan-in is the typical number of active
  // features, not num_features. Use a modest constant for stable init.
  InitWeights(first_layer_, 64, rng);
  g2_first_.assign(first_layer_.size(), 1e-8);
  g2_first_bias_.assign(first_width_, 1e-8);

  dense_layers_.clear();
  size_t prev = first_width_;
  std::vector<size_t> remaining(config_.hidden_layers.begin() + (config_.hidden_layers.empty() ? 0 : 1),
                                config_.hidden_layers.end());
  remaining.push_back(1);  // Output unit.
  for (size_t width : remaining) {
    DenseLayer layer;
    layer.in = prev;
    layer.out = width;
    layer.weights.assign(prev * width, 0.0);
    InitWeights(layer.weights, prev, rng);
    layer.bias.assign(width, 0.0);
    layer.g2_weights.assign(layer.weights.size(), 1e-8);
    layer.g2_bias.assign(width, 1e-8);
    dense_layers_.push_back(std::move(layer));
    prev = width;
  }

  if (data.size() == 0) {
    return;
  }

  std::vector<std::vector<double>> activations;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const std::vector<uint32_t> order = rng.Permutation(data.size());
    for (uint32_t idx : order) {
      const SparseRow& row = data.rows[idx];
      const double y = static_cast<double>(data.labels[idx]);
      const double p = Forward(row, activations);

      // Output delta for sigmoid + log loss.
      std::vector<double> delta = {p - y};

      // Backprop through dense layers (last to first).
      for (size_t li = dense_layers_.size(); li-- > 0;) {
        DenseLayer& layer = dense_layers_[li];
        const std::vector<double>& input = activations[li];  // Post-ReLU of previous stage.
        std::vector<double> prev_delta(layer.in, 0.0);
        for (size_t o = 0; o < layer.out; ++o) {
          const double d = delta[o];
          double* w = &layer.weights[o * layer.in];
          double* g2 = &layer.g2_weights[o * layer.in];
          for (size_t i = 0; i < layer.in; ++i) {
            prev_delta[i] += w[i] * d;
            const double g = d * input[i] + config_.l2 * w[i];
            g2[i] += g * g;
            w[i] -= config_.learning_rate / std::sqrt(g2[i]) * g;
          }
          layer.g2_bias[o] += d * d;
          layer.bias[o] -= config_.learning_rate / std::sqrt(layer.g2_bias[o]) * d;
        }
        // ReLU derivative of the layer input.
        for (size_t i = 0; i < layer.in; ++i) {
          if (input[i] <= 0.0) {
            prev_delta[i] = 0.0;
          }
        }
        delta = std::move(prev_delta);
      }

      // First (sparse) layer update: input bits are 1 for active features.
      for (size_t h = 0; h < first_width_; ++h) {
        const double d = delta[h];
        g2_first_bias_[h] += d * d;
        first_bias_[h] -= config_.learning_rate / std::sqrt(g2_first_bias_[h]) * d;
      }
      for (uint32_t f : row) {
        double* w = &first_layer_[static_cast<size_t>(f) * first_width_];
        double* g2 = &g2_first_[static_cast<size_t>(f) * first_width_];
        for (size_t h = 0; h < first_width_; ++h) {
          const double g = delta[h] + config_.l2 * w[h];
          g2[h] += g * g;
          w[h] -= config_.learning_rate / std::sqrt(g2[h]) * g;
        }
      }
    }
  }
}

double Mlp::Forward(const SparseRow& row, std::vector<std::vector<double>>& activations) const {
  activations.clear();
  // First layer: bias plus the sum of active feature columns, then ReLU.
  std::vector<double> h = first_bias_;
  for (uint32_t f : row) {
    if (f >= num_features_) {
      continue;
    }
    const double* w = &first_layer_[static_cast<size_t>(f) * first_width_];
    for (size_t i = 0; i < first_width_; ++i) {
      h[i] += w[i];
    }
  }
  for (double& v : h) {
    v = std::max(0.0, v);
  }
  activations.push_back(h);

  double output = 0.0;
  for (size_t li = 0; li < dense_layers_.size(); ++li) {
    const DenseLayer& layer = dense_layers_[li];
    const std::vector<double>& input = activations.back();
    std::vector<double> z(layer.out, 0.0);
    for (size_t o = 0; o < layer.out; ++o) {
      double acc = layer.bias[o];
      const double* w = &layer.weights[o * layer.in];
      for (size_t i = 0; i < layer.in; ++i) {
        acc += w[i] * input[i];
      }
      z[o] = acc;
    }
    const bool is_last = li + 1 == dense_layers_.size();
    if (is_last) {
      output = Sigmoid(z[0]);
    } else {
      for (double& v : z) {
        v = std::max(0.0, v);
      }
      activations.push_back(std::move(z));
    }
  }
  return output;
}

double Mlp::PredictScore(const SparseRow& row) const {
  std::vector<std::vector<double>> activations;
  return Forward(row, activations);
}

}  // namespace apichecker::ml
