// Classification metrics. Following the paper (§4.2): precision = TP/(TP+FP),
// recall = TP/(TP+FN), where "positive" means classified malicious.

#ifndef APICHECKER_ML_METRICS_H_
#define APICHECKER_ML_METRICS_H_

#include <cstdint>
#include <string>

namespace apichecker::ml {

struct ConfusionMatrix {
  uint64_t tp = 0;
  uint64_t fp = 0;
  uint64_t tn = 0;
  uint64_t fn = 0;

  void Record(bool actual_positive, bool predicted_positive);

  uint64_t total() const { return tp + fp + tn + fn; }
  double Precision() const;
  double Recall() const;
  double F1() const;
  double Accuracy() const;
  double FalsePositiveRate() const;

  ConfusionMatrix& operator+=(const ConfusionMatrix& other);

  std::string ToString() const;
};

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_METRICS_H_
