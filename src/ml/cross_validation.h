// Stratified k-fold cross-validation with per-fold test-set deduplication,
// matching the paper's evaluation protocol (§4.2): 10-fold CV, and within
// each iteration duplicate feature vectors shared between the training and
// test sets are removed from the test set to avoid data leakage.

#ifndef APICHECKER_ML_CROSS_VALIDATION_H_
#define APICHECKER_ML_CROSS_VALIDATION_H_

#include <functional>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/metrics.h"

namespace apichecker::ml {

struct CrossValidationResult {
  ConfusionMatrix pooled;                // Summed over folds.
  std::vector<ConfusionMatrix> folds;    // Per-fold matrices.
  double total_train_seconds = 0.0;      // Wall-clock training time, summed.
  double mean_train_seconds = 0.0;       // Per-fold mean.

  double Precision() const { return pooled.Precision(); }
  double Recall() const { return pooled.Recall(); }
  double F1() const { return pooled.F1(); }
};

// Partitions row indices into `folds` stratified folds (class proportions
// preserved per fold), shuffled with `seed`. Returns fold id per row.
std::vector<uint32_t> StratifiedFoldAssignment(const Dataset& data, size_t folds, uint64_t seed);

// Runs k-fold CV. `make_classifier` is invoked once per fold so state never
// leaks across folds. Duplicate test rows (vs. the fold's training set) are
// dropped before evaluation.
CrossValidationResult CrossValidate(
    const Dataset& data, size_t folds, uint64_t seed,
    const std::function<std::unique_ptr<Classifier>()>& make_classifier);

// Single stratified train/test split (test_fraction of rows held out).
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit SplitTrainTest(const Dataset& data, double test_fraction, uint64_t seed);

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_CROSS_VALIDATION_H_
