#include "ml/random_forest.h"

#include <bit>
#include <cmath>

#include "util/rng.h"

namespace apichecker::ml {

namespace {
constexpr uint32_t kModelMagic = 0x52464d31;  // "RFM1"
}  // namespace

void RandomForest::Train(const Dataset& data) {
  trees_.clear();
  num_features_ = data.num_features;
  importance_.assign(data.num_features, 0.0);
  if (data.size() == 0) {
    return;
  }

  size_t mtry = config_.features_per_split;
  if (mtry == 0) {
    mtry = static_cast<size_t>(std::lround(std::sqrt(static_cast<double>(data.num_features))));
    mtry = std::max<size_t>(1, mtry);
  }

  util::Rng rng(config_.seed);
  trees_.reserve(config_.num_trees);
  for (size_t t = 0; t < config_.num_trees; ++t) {
    // Bootstrap bag: n draws with replacement.
    util::Rng bag_rng = rng.Fork(t * 2 + 1);
    std::vector<uint32_t> bag(data.size());
    for (auto& idx : bag) {
      idx = static_cast<uint32_t>(bag_rng.NextBounded(data.size()));
    }
    CartConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.min_samples_split = std::max<size_t>(2, config_.min_samples_leaf * 2);
    tree_config.features_per_split = mtry;
    tree_config.seed = rng.Fork(t * 2 + 2).Next();
    CartTree tree(tree_config);
    tree.TrainOnRows(data, bag, &importance_);
    trees_.push_back(std::move(tree));
  }

  double total = 0.0;
  for (double v : importance_) {
    total += v;
  }
  if (total > 0.0) {
    for (double& v : importance_) {
      v /= total;
    }
  }
}

double RandomForest::PredictScore(const SparseRow& row) const {
  if (trees_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const CartTree& tree : trees_) {
    sum += tree.PredictScore(row);
  }
  return sum / static_cast<double>(trees_.size());
}

std::vector<uint8_t> RandomForest::Serialize() const {
  util::ByteWriter writer;
  writer.PutU32(kModelMagic);
  writer.PutU32(num_features_);
  writer.PutU32(static_cast<uint32_t>(trees_.size()));
  for (const CartTree& tree : trees_) {
    tree.SerializeInto(writer);
  }
  writer.PutU32(static_cast<uint32_t>(importance_.size()));
  for (double v : importance_) {
    writer.PutU64(std::bit_cast<uint64_t>(v));
  }
  return writer.TakeBytes();
}

util::Result<RandomForest> RandomForest::Deserialize(std::span<const uint8_t> bytes) {
  util::ByteReader reader(bytes);
  auto magic = reader.ReadU32();
  if (!magic.ok() || *magic != kModelMagic) {
    return util::Err("bad random forest model magic");
  }
  auto num_features = reader.ReadU32();
  auto num_trees = reader.ReadU32();
  if (!num_features.ok() || !num_trees.ok()) {
    return util::Err("truncated random forest header");
  }
  RandomForest forest;
  forest.num_features_ = *num_features;
  forest.trees_.reserve(*num_trees);
  for (uint32_t t = 0; t < *num_trees; ++t) {
    auto tree = CartTree::Deserialize(reader);
    if (!tree.ok()) {
      return util::Err(tree.error());
    }
    forest.trees_.push_back(std::move(tree.value()));
  }
  auto importance_size = reader.ReadU32();
  if (!importance_size.ok()) {
    return util::Err("truncated importance vector");
  }
  forest.importance_.reserve(*importance_size);
  for (uint32_t i = 0; i < *importance_size; ++i) {
    auto v = reader.ReadU64();
    if (!v.ok()) {
      return util::Err("truncated importance entry");
    }
    forest.importance_.push_back(std::bit_cast<double>(*v));
  }
  return forest;
}

}  // namespace apichecker::ml
