#include "ml/random_forest.h"

#include <bit>
#include <cmath>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace apichecker::ml {

namespace {
constexpr uint32_t kModelMagic = 0x52464d31;  // "RFM1"
}  // namespace

void RandomForest::Train(const Dataset& data) {
  trees_.clear();
  num_features_ = data.num_features;
  importance_.assign(data.num_features, 0.0);
  if (data.size() == 0) {
    return;
  }

  size_t mtry = config_.features_per_split;
  if (mtry == 0) {
    mtry = static_cast<size_t>(std::lround(std::sqrt(static_cast<double>(data.num_features))));
    mtry = std::max<size_t>(1, mtry);
  }

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  obs::ScopedTimer forest_timer(metrics.histogram(obs::names::kMlForestTrainMs));
  obs::Histogram& tree_train_ms = metrics.histogram(obs::names::kMlTreeTrainMs);

  // Trees train in parallel. Rng::Fork is a pure function of the seed lineage
  // and the stream id, so every tree's randomness is fixed up front and the
  // result is identical to the historical serial loop. Each tree records Gini
  // importance into its own buffer; buffers are folded in tree order below so
  // the floating-point accumulation order stays deterministic too.
  const util::Rng rng(config_.seed);
  trees_.resize(config_.num_trees);
  std::vector<std::vector<double>> tree_importance(
      config_.num_trees, std::vector<double>(data.num_features, 0.0));
  util::ThreadPool pool(config_.train_threads);
  pool.ParallelFor(0, config_.num_trees, [&](size_t t) {
    obs::ScopedTimer tree_timer(tree_train_ms);
    // Bootstrap bag: n draws with replacement.
    util::Rng bag_rng = rng.Fork(t * 2 + 1);
    std::vector<uint32_t> bag(data.size());
    for (auto& idx : bag) {
      idx = static_cast<uint32_t>(bag_rng.NextBounded(data.size()));
    }
    CartConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.min_samples_split = std::max<size_t>(2, config_.min_samples_leaf * 2);
    tree_config.features_per_split = mtry;
    tree_config.seed = rng.Fork(t * 2 + 2).Next();
    CartTree tree(tree_config);
    tree.TrainOnRows(data, bag, &tree_importance[t]);
    trees_[t] = std::move(tree);
  });
  for (const std::vector<double>& per_tree : tree_importance) {
    for (size_t f = 0; f < importance_.size(); ++f) {
      importance_[f] += per_tree[f];
    }
  }
  metrics.counter(obs::names::kMlForestTrainsTotal).Increment();

  double total = 0.0;
  for (double v : importance_) {
    total += v;
  }
  if (total > 0.0) {
    for (double& v : importance_) {
      v /= total;
    }
  }
}

double RandomForest::PredictScore(const SparseRow& row) const {
  if (trees_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const CartTree& tree : trees_) {
    sum += tree.PredictScore(row);
  }
  return sum / static_cast<double>(trees_.size());
}

std::vector<uint8_t> RandomForest::Serialize() const {
  util::ByteWriter writer;
  writer.PutU32(kModelMagic);
  writer.PutU32(num_features_);
  writer.PutU32(static_cast<uint32_t>(trees_.size()));
  for (const CartTree& tree : trees_) {
    tree.SerializeInto(writer);
  }
  writer.PutU32(static_cast<uint32_t>(importance_.size()));
  for (double v : importance_) {
    writer.PutU64(std::bit_cast<uint64_t>(v));
  }
  return writer.TakeBytes();
}

util::Result<RandomForest> RandomForest::Deserialize(std::span<const uint8_t> bytes) {
  util::ByteReader reader(bytes);
  auto magic = reader.ReadU32();
  if (!magic.ok() || *magic != kModelMagic) {
    return util::Err("bad random forest model magic");
  }
  auto num_features = reader.ReadU32();
  auto num_trees = reader.ReadU32();
  if (!num_features.ok() || !num_trees.ok()) {
    return util::Err("truncated random forest header");
  }
  RandomForest forest;
  forest.num_features_ = *num_features;
  forest.trees_.reserve(*num_trees);
  for (uint32_t t = 0; t < *num_trees; ++t) {
    auto tree = CartTree::Deserialize(reader);
    if (!tree.ok()) {
      return util::Err(tree.error());
    }
    forest.trees_.push_back(std::move(tree.value()));
  }
  auto importance_size = reader.ReadU32();
  if (!importance_size.ok()) {
    return util::Err("truncated importance vector");
  }
  forest.importance_.reserve(*importance_size);
  for (uint32_t i = 0; i < *importance_size; ++i) {
    auto v = reader.ReadU64();
    if (!v.ok()) {
      return util::Err("truncated importance entry");
    }
    forest.importance_.push_back(std::bit_cast<double>(*v));
  }
  return forest;
}

}  // namespace apichecker::ml
