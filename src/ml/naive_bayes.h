// Bernoulli naive Bayes over binary features, with Laplace smoothing.
// Matches the "Naive Bayes" row of Table 2 (used by Sharma et al. [35]).

#ifndef APICHECKER_ML_NAIVE_BAYES_H_
#define APICHECKER_ML_NAIVE_BAYES_H_

#include <vector>

#include "ml/classifier.h"

namespace apichecker::ml {

class NaiveBayes : public Classifier {
 public:
  explicit NaiveBayes(double smoothing = 1.0) : smoothing_(smoothing) {}

  void Train(const Dataset& data) override;
  double PredictScore(const SparseRow& row) const override;
  std::string name() const override { return "NaiveBayes"; }

 private:
  double smoothing_;
  double log_prior_pos_ = 0.0;
  double log_prior_neg_ = 0.0;
  // Per-feature log P(f=1 | class) and log P(f=0 | class).
  std::vector<double> log_p1_pos_, log_p0_pos_;
  std::vector<double> log_p1_neg_, log_p0_neg_;
  // Sum over all features of log P(f=0 | class), so scoring a sparse row is
  // O(nnz): start from the all-absent baseline and patch present features.
  double base_pos_ = 0.0;
  double base_neg_ = 0.0;
};

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_NAIVE_BAYES_H_
