// Multi-layer perceptron with ReLU hidden layers and a sigmoid output,
// trained by per-example AdaGrad SGD on log loss. Covers the "ANN" (one
// hidden layer) and "DNN" (three hidden layers) rows of Table 2. The first
// layer is stored feature-major so sparse binary inputs cost O(nnz * width).

#ifndef APICHECKER_ML_MLP_H_
#define APICHECKER_ML_MLP_H_

#include <string>
#include <vector>

#include "ml/classifier.h"
#include "util/rng.h"

namespace apichecker::ml {

struct MlpConfig {
  std::vector<size_t> hidden_layers = {32};
  size_t epochs = 8;
  double learning_rate = 0.05;
  double l2 = 1e-6;
  uint64_t seed = 1;
  std::string display_name = "ANN";
};

class Mlp : public Classifier {
 public:
  explicit Mlp(MlpConfig config = {}) : config_(std::move(config)) {}

  void Train(const Dataset& data) override;
  double PredictScore(const SparseRow& row) const override;
  std::string name() const override { return config_.display_name; }

 private:
  struct DenseLayer {
    size_t in = 0;
    size_t out = 0;
    std::vector<double> weights;  // Row-major [out][in].
    std::vector<double> bias;
    std::vector<double> g2_weights;  // AdaGrad accumulators.
    std::vector<double> g2_bias;
  };

  // Forward pass; fills per-layer activations (post-nonlinearity). Returns
  // the output probability.
  double Forward(const SparseRow& row, std::vector<std::vector<double>>& activations) const;

  MlpConfig config_;
  size_t num_features_ = 0;
  // First layer, feature-major: column f is first_layer_[f * width .. +width).
  std::vector<double> first_layer_;
  std::vector<double> first_bias_;
  std::vector<double> g2_first_;
  std::vector<double> g2_first_bias_;
  size_t first_width_ = 0;
  std::vector<DenseLayer> dense_layers_;  // Hidden-to-hidden and final layer.
};

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_MLP_H_
