#include "ml/naive_bayes.h"

#include <cmath>

namespace apichecker::ml {

void NaiveBayes::Train(const Dataset& data) {
  const size_t n = data.size();
  const size_t n_pos = data.NumPositive();
  const size_t n_neg = n - n_pos;

  log_prior_pos_ = std::log((static_cast<double>(n_pos) + smoothing_) /
                            (static_cast<double>(n) + 2.0 * smoothing_));
  log_prior_neg_ = std::log((static_cast<double>(n_neg) + smoothing_) /
                            (static_cast<double>(n) + 2.0 * smoothing_));

  std::vector<uint32_t> count_pos(data.num_features, 0);
  std::vector<uint32_t> count_neg(data.num_features, 0);
  for (size_t i = 0; i < n; ++i) {
    auto& counts = data.labels[i] ? count_pos : count_neg;
    for (uint32_t f : data.rows[i]) {
      ++counts[f];
    }
  }

  log_p1_pos_.assign(data.num_features, 0.0);
  log_p0_pos_.assign(data.num_features, 0.0);
  log_p1_neg_.assign(data.num_features, 0.0);
  log_p0_neg_.assign(data.num_features, 0.0);
  base_pos_ = 0.0;
  base_neg_ = 0.0;
  for (uint32_t f = 0; f < data.num_features; ++f) {
    const double p1_pos = (count_pos[f] + smoothing_) /
                          (static_cast<double>(n_pos) + 2.0 * smoothing_);
    const double p1_neg = (count_neg[f] + smoothing_) /
                          (static_cast<double>(n_neg) + 2.0 * smoothing_);
    log_p1_pos_[f] = std::log(p1_pos);
    log_p0_pos_[f] = std::log(1.0 - p1_pos);
    log_p1_neg_[f] = std::log(p1_neg);
    log_p0_neg_[f] = std::log(1.0 - p1_neg);
    base_pos_ += log_p0_pos_[f];
    base_neg_ += log_p0_neg_[f];
  }
}

double NaiveBayes::PredictScore(const SparseRow& row) const {
  double lp = log_prior_pos_ + base_pos_;
  double ln = log_prior_neg_ + base_neg_;
  for (uint32_t f : row) {
    if (f < log_p1_pos_.size()) {
      lp += log_p1_pos_[f] - log_p0_pos_[f];
      ln += log_p1_neg_[f] - log_p0_neg_[f];
    }
  }
  // Softmax over the two log-joint terms, numerically stabilized.
  const double m = std::max(lp, ln);
  const double ep = std::exp(lp - m);
  const double en = std::exp(ln - m);
  return ep / (ep + en);
}

}  // namespace apichecker::ml
