// k-nearest-neighbours on binary feature vectors under Hamming distance
// (Table 2 "kNN" row; DroidAPIMiner [1] and DroidMat [43] use kNN). Distance
// between sparse rows a, b is |a| + |b| - 2|a∩b|; intersections are computed
// through an inverted index so one query costs O(sum of posting lengths of
// the query's features + n) rather than O(n * nnz).

#ifndef APICHECKER_ML_KNN_H_
#define APICHECKER_ML_KNN_H_

#include <vector>

#include "ml/classifier.h"

namespace apichecker::ml {

struct KnnConfig {
  size_t k = 5;
  // Optional cap on stored training rows (0 = keep all). The paper notes
  // kNN's training/eval cost is orders of magnitude above RF; production
  // deployments subsample instead.
  size_t max_train_rows = 0;
  uint64_t seed = 1;
};

class Knn : public Classifier {
 public:
  explicit Knn(KnnConfig config = {}) : config_(config) {}

  void Train(const Dataset& data) override;
  double PredictScore(const SparseRow& row) const override;
  std::string name() const override { return "kNN"; }

  size_t num_train_rows() const { return row_sizes_.size(); }

 private:
  KnnConfig config_;
  std::vector<std::vector<uint32_t>> postings_;  // feature -> train row ids.
  std::vector<uint32_t> row_sizes_;
  std::vector<uint8_t> labels_;
};

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_KNN_H_
