#include "ml/evaluation.h"

#include <algorithm>

namespace apichecker::ml {

std::vector<ScoredExample> ScoreDataset(const Classifier& model, const Dataset& data) {
  std::vector<ScoredExample> scored;
  scored.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    scored.push_back({model.PredictScore(data.rows[i]), data.labels[i]});
  }
  return scored;
}

std::vector<OperatingPoint> PrecisionRecallCurve(const std::vector<ScoredExample>& scored) {
  std::vector<ScoredExample> sorted = scored;
  std::sort(sorted.begin(), sorted.end(), [](const ScoredExample& a, const ScoredExample& b) {
    return a.score > b.score;
  });
  uint64_t total_pos = 0;
  for (const ScoredExample& e : sorted) {
    total_pos += e.label;
  }

  std::vector<OperatingPoint> curve;
  uint64_t tp = 0, fp = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    // Consume the whole tie group: a threshold either includes all examples
    // at a score or none.
    const double score = sorted[i].score;
    while (i < sorted.size() && sorted[i].score == score) {
      tp += sorted[i].label;
      fp += 1 - sorted[i].label;
      ++i;
    }
    OperatingPoint point;
    point.threshold = score;
    point.tp = tp;
    point.fp = fp;
    point.fn = total_pos - tp;
    point.tn = (sorted.size() - total_pos) - fp;
    point.precision = (tp + fp) == 0 ? 0.0
                                     : static_cast<double>(tp) / static_cast<double>(tp + fp);
    point.recall =
        total_pos == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(total_pos);
    curve.push_back(point);
  }
  return curve;
}

double RocAuc(const std::vector<ScoredExample>& scored) {
  // Rank-sum (Mann–Whitney U) formulation with average ranks for ties.
  std::vector<ScoredExample> sorted = scored;
  std::sort(sorted.begin(), sorted.end(), [](const ScoredExample& a, const ScoredExample& b) {
    return a.score < b.score;
  });
  const size_t n = sorted.size();
  uint64_t positives = 0;
  for (const ScoredExample& e : sorted) {
    positives += e.label;
  }
  const uint64_t negatives = n - positives;
  if (positives == 0 || negatives == 0) {
    return 0.5;
  }
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && sorted[j + 1].score == sorted[i].score) {
      ++j;
    }
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      if (sorted[k].label) {
        positive_rank_sum += avg_rank;
      }
    }
    i = j + 1;
  }
  const double u = positive_rank_sum -
                   static_cast<double>(positives) * (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

OperatingPoint ThresholdForPrecision(const std::vector<OperatingPoint>& curve,
                                     double target_precision) {
  OperatingPoint best;
  bool found = false;
  for (const OperatingPoint& point : curve) {
    if (point.precision >= target_precision) {
      // Curve is ordered by descending threshold => non-decreasing recall;
      // the last qualifying point has the highest recall.
      best = point;
      found = true;
    }
  }
  if (found) {
    return best;
  }
  // Unreachable target: return the most precise point available.
  for (const OperatingPoint& point : curve) {
    if (!found || point.precision > best.precision) {
      best = point;
      found = true;
    }
  }
  return best;
}

OperatingPoint BestF1Point(const std::vector<OperatingPoint>& curve) {
  OperatingPoint best;
  for (const OperatingPoint& point : curve) {
    if (point.F1() > best.F1()) {
      best = point;
    }
  }
  return best;
}

}  // namespace apichecker::ml
