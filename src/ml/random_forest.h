// Random forest: bagged CART trees with per-node feature subsampling. This is
// the classifier APICHECKER deploys (paper §4.3/Table 2: best precision, good
// recall, small training time, good interpretability via Gini importance).

#ifndef APICHECKER_ML_RANDOM_FOREST_H_
#define APICHECKER_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "ml/cart.h"
#include "ml/classifier.h"
#include "util/byte_io.h"
#include "util/result.h"

namespace apichecker::ml {

struct RandomForestConfig {
  size_t num_trees = 48;
  size_t max_depth = 24;
  size_t min_samples_leaf = 1;
  // Per-node candidate features; 0 selects sqrt(num_features).
  size_t features_per_split = 0;
  uint64_t seed = 1;
  // Worker threads for per-tree training (0 = hardware concurrency, 1 =
  // serial). Trees are seeded up front, so the result is thread-count
  // independent and bit-identical to a serial run.
  size_t train_threads = 0;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestConfig config = {}) : config_(config) {}

  void Train(const Dataset& data) override;
  double PredictScore(const SparseRow& row) const override;
  std::string name() const override { return "RandomForest"; }

  // Normalized Gini importance per feature (sums to 1 unless all zero).
  // Valid after Train().
  const std::vector<double>& feature_importance() const { return importance_; }

  size_t num_trees() const { return trees_.size(); }

  // Model persistence: the production system stores the monthly retrained
  // model (§5.3). The format is a versioned flat byte stream.
  std::vector<uint8_t> Serialize() const;
  static util::Result<RandomForest> Deserialize(std::span<const uint8_t> bytes);

 private:
  RandomForestConfig config_;
  std::vector<CartTree> trees_;
  std::vector<double> importance_;
  uint32_t num_features_ = 0;
};

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_RANDOM_FOREST_H_
