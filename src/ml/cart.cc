#include "ml/cart.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

namespace apichecker::ml {

namespace {

double GiniImpurity(double positives, double total) {
  if (total <= 0.0) {
    return 0.0;
  }
  const double q = positives / total;
  return 2.0 * q * (1.0 - q);
}

uint32_t FloatBits(float f) { return std::bit_cast<uint32_t>(f); }
float BitsFloat(uint32_t u) { return std::bit_cast<float>(u); }

}  // namespace

void CartTree::Train(const Dataset& data) {
  std::vector<uint32_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0u);
  TrainOnRows(data, indices, nullptr);
}

void CartTree::TrainOnRows(const Dataset& data, std::span<const uint32_t> row_indices,
                           std::vector<double>* importance_out) {
  nodes_.clear();
  depth_ = 0;
  total_rows_ = row_indices.size();
  rng_ = util::Rng(config_.seed);
  stamp_.assign(data.num_features, 0);
  count_.assign(data.num_features, 0);
  pos_count_.assign(data.num_features, 0);
  allowed_stamp_.assign(data.num_features, 0);
  epoch_ = 0;

  if (row_indices.empty()) {
    nodes_.push_back(Node{.feature = -1, .score = 0.0f});
    return;
  }
  std::vector<uint32_t> rows(row_indices.begin(), row_indices.end());
  Build(data, rows, 0, rows.size(), 0, importance_out);
}

uint32_t CartTree::Build(const Dataset& data, std::vector<uint32_t>& row_indices, size_t begin,
                         size_t end, size_t depth, std::vector<double>* importance_out) {
  const size_t n = end - begin;
  size_t npos = 0;
  for (size_t i = begin; i < end; ++i) {
    npos += data.labels[row_indices[i]];
  }

  const uint32_t node_index = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].score = static_cast<float>(static_cast<double>(npos) /
                                                static_cast<double>(n));
  depth_ = std::max(depth_, depth);

  if (depth >= config_.max_depth || n < config_.min_samples_split || npos == 0 || npos == n) {
    return node_index;
  }

  // Per-node candidate feature subset (random forest mtry sampling).
  ++epoch_;
  const bool use_subset =
      config_.features_per_split > 0 && config_.features_per_split < data.num_features;
  if (use_subset) {
    for (uint32_t f : rng_.SampleWithoutReplacement(data.num_features,
                                                    config_.features_per_split)) {
      allowed_stamp_[f] = epoch_;
    }
  }

  // Histogram candidate features present in this node's rows.
  std::vector<uint32_t> touched;
  for (size_t i = begin; i < end; ++i) {
    const uint32_t row = row_indices[i];
    const uint8_t label = data.labels[row];
    for (uint32_t f : data.rows[row]) {
      if (use_subset && allowed_stamp_[f] != epoch_) {
        continue;
      }
      if (stamp_[f] != epoch_) {
        stamp_[f] = epoch_;
        count_[f] = 0;
        pos_count_[f] = 0;
        touched.push_back(f);
      }
      ++count_[f];
      pos_count_[f] += label;
    }
  }

  const double parent_impurity = GiniImpurity(static_cast<double>(npos), static_cast<double>(n));
  double best_gain = 1e-12;
  int64_t best_feature = -1;
  for (uint32_t f : touched) {
    const size_t n1 = count_[f];
    const size_t n0 = n - n1;
    if (n1 < config_.min_samples_leaf || n0 < config_.min_samples_leaf) {
      continue;
    }
    const size_t p1 = pos_count_[f];
    const size_t p0 = npos - p1;
    const double child_impurity =
        (static_cast<double>(n1) * GiniImpurity(static_cast<double>(p1),
                                                static_cast<double>(n1)) +
         static_cast<double>(n0) * GiniImpurity(static_cast<double>(p0),
                                                static_cast<double>(n0))) /
        static_cast<double>(n);
    const double gain = parent_impurity - child_impurity;
    if (gain > best_gain) {
      best_gain = gain;
      best_feature = f;
    }
  }

  if (best_feature < 0) {
    return node_index;
  }
  if (importance_out != nullptr) {
    (*importance_out)[static_cast<size_t>(best_feature)] +=
        best_gain * static_cast<double>(n) / static_cast<double>(total_rows_);
  }

  const uint32_t split_feature = static_cast<uint32_t>(best_feature);
  const auto mid_it = std::stable_partition(
      row_indices.begin() + static_cast<ptrdiff_t>(begin),
      row_indices.begin() + static_cast<ptrdiff_t>(end),
      [&](uint32_t row) { return !RowHasFeature(data.rows[row], split_feature); });
  const size_t mid = static_cast<size_t>(mid_it - row_indices.begin());

  // Children are built after the parent; fix up indices afterwards because
  // recursion may reallocate nodes_.
  const uint32_t absent = Build(data, row_indices, begin, mid, depth + 1, importance_out);
  const uint32_t present = Build(data, row_indices, mid, end, depth + 1, importance_out);
  nodes_[node_index].feature = static_cast<int32_t>(split_feature);
  nodes_[node_index].absent_child = absent;
  nodes_[node_index].present_child = present;
  return node_index;
}

double CartTree::PredictScore(const SparseRow& row) const {
  if (nodes_.empty()) {
    return 0.0;
  }
  uint32_t index = 0;
  for (;;) {
    const Node& node = nodes_[index];
    if (node.feature < 0) {
      return node.score;
    }
    index = RowHasFeature(row, static_cast<uint32_t>(node.feature)) ? node.present_child
                                                                    : node.absent_child;
  }
}

void CartTree::SerializeInto(util::ByteWriter& writer) const {
  writer.PutU32(static_cast<uint32_t>(nodes_.size()));
  for (const Node& node : nodes_) {
    writer.PutU32(static_cast<uint32_t>(node.feature));
    writer.PutU32(node.absent_child);
    writer.PutU32(node.present_child);
    writer.PutU32(FloatBits(node.score));
  }
}

util::Result<CartTree> CartTree::Deserialize(util::ByteReader& reader) {
  auto count = reader.ReadU32();
  if (!count.ok()) {
    return util::Err(count.error());
  }
  CartTree tree;
  tree.nodes_.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto feature = reader.ReadU32();
    auto absent = reader.ReadU32();
    auto present = reader.ReadU32();
    auto score = reader.ReadU32();
    if (!feature.ok() || !absent.ok() || !present.ok() || !score.ok()) {
      return util::Err("truncated CART node");
    }
    Node node;
    node.feature = static_cast<int32_t>(*feature);
    node.absent_child = *absent;
    node.present_child = *present;
    node.score = BitsFloat(*score);
    if (node.feature >= 0 && (node.absent_child >= *count || node.present_child >= *count ||
                              node.absent_child <= i || node.present_child <= i)) {
      return util::Err("malformed CART topology");
    }
    tree.nodes_.push_back(node);
  }
  return tree;
}

}  // namespace apichecker::ml
