// Score-based evaluation utilities: precision/recall curves, ROC-AUC, and
// operating-threshold selection. The production system (paper §5.2) actively
// drives false positives down because every FP costs a manual developer-
// complaint investigation; picking the decision threshold for a target
// precision is how that policy is implemented on top of a scoring model.

#ifndef APICHECKER_ML_EVALUATION_H_
#define APICHECKER_ML_EVALUATION_H_

#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace apichecker::ml {

struct ScoredExample {
  double score = 0.0;
  uint8_t label = 0;
};

// Scores every row of `data` with the model.
std::vector<ScoredExample> ScoreDataset(const Classifier& model, const Dataset& data);

struct OperatingPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  uint64_t tp = 0, fp = 0, fn = 0, tn = 0;

  double F1() const {
    const double pr = precision + recall;
    return pr <= 0.0 ? 0.0 : 2.0 * precision * recall / pr;
  }
};

// The full precision/recall curve: one operating point per distinct score,
// thresholds descending (recall non-decreasing along the vector).
std::vector<OperatingPoint> PrecisionRecallCurve(const std::vector<ScoredExample>& scored);

// Area under the ROC curve (probability a random positive outscores a
// random negative; ties count half). 0.5 = chance, 1.0 = perfect.
double RocAuc(const std::vector<ScoredExample>& scored);

// Smallest-recall-loss threshold that achieves at least `target_precision`;
// falls back to the highest-precision point when the target is unreachable.
OperatingPoint ThresholdForPrecision(const std::vector<OperatingPoint>& curve,
                                     double target_precision);

// Threshold maximizing F1.
OperatingPoint BestF1Point(const std::vector<OperatingPoint>& curve);

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_EVALUATION_H_
