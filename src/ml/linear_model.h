// Linear classifiers over binary features: logistic regression (log loss)
// and linear SVM (hinge loss, Pegasos-style). Both train with stochastic
// gradient descent using AdaGrad step sizes; sparse rows make each update
// O(nnz). Scores are mapped to [0, 1] through the logistic function (for the
// SVM this is a fixed squashing of the margin, adequate for thresholding).

#ifndef APICHECKER_ML_LINEAR_MODEL_H_
#define APICHECKER_ML_LINEAR_MODEL_H_

#include <vector>

#include "ml/classifier.h"
#include "util/rng.h"

namespace apichecker::ml {

struct LinearModelConfig {
  size_t epochs = 10;
  double learning_rate = 0.5;
  double l2 = 1e-6;
  uint64_t seed = 1;
};

class LinearModelBase : public Classifier {
 public:
  explicit LinearModelBase(LinearModelConfig config) : config_(config) {}

  void Train(const Dataset& data) override;
  double PredictScore(const SparseRow& row) const override;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 protected:
  // Returns dLoss/dMargin for one example with label y in {-1, +1} at the
  // given margin m = w.x + b. Log loss: -y*sigmoid(-y*m). Hinge: -y if
  // y*m < 1 else 0.
  virtual double LossGradient(double margin, double y) const = 0;

  LinearModelConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;

 private:
  double Margin(const SparseRow& row) const;
};

class LogisticRegression : public LinearModelBase {
 public:
  explicit LogisticRegression(LinearModelConfig config = {}) : LinearModelBase(config) {}
  std::string name() const override { return "LogisticRegression"; }

 protected:
  double LossGradient(double margin, double y) const override;
};

class LinearSvm : public LinearModelBase {
 public:
  explicit LinearSvm(LinearModelConfig config = {}) : LinearModelBase(config) {}
  std::string name() const override { return "SVM"; }

 protected:
  double LossGradient(double margin, double y) const override;
};

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_LINEAR_MODEL_H_
