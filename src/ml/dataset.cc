#include "ml/dataset.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace apichecker::ml {

namespace {

// Order-sensitive hash of a sparse row for duplicate detection.
uint64_t HashRow(const SparseRow& row) {
  uint64_t h = 0x9e3779b97f4a7c15ull ^ row.size();
  for (uint32_t f : row) {
    h = util::SplitMix64(h ^ f);
  }
  return h;
}

}  // namespace

bool RowHasFeature(const SparseRow& row, uint32_t feature) {
  return std::binary_search(row.begin(), row.end(), feature);
}

void Dataset::Add(SparseRow row, uint8_t label) {
  assert(std::is_sorted(row.begin(), row.end()));
  rows.push_back(std::move(row));
  labels.push_back(label);
}

size_t Dataset::NumPositive() const {
  size_t n = 0;
  for (uint8_t l : labels) {
    n += l;
  }
  return n;
}

Dataset Dataset::SelectColumns(std::span<const uint32_t> columns) const {
  // Build old-index -> new-index map.
  std::unordered_map<uint32_t, uint32_t> remap;
  remap.reserve(columns.size());
  for (uint32_t i = 0; i < columns.size(); ++i) {
    assert(columns[i] < num_features);
    remap.emplace(columns[i], i);
  }
  Dataset out;
  out.num_features = static_cast<uint32_t>(columns.size());
  out.rows.reserve(rows.size());
  out.labels = labels;
  for (const SparseRow& row : rows) {
    SparseRow projected;
    for (uint32_t f : row) {
      const auto it = remap.find(f);
      if (it != remap.end()) {
        projected.push_back(it->second);
      }
    }
    std::sort(projected.begin(), projected.end());
    out.rows.push_back(std::move(projected));
  }
  return out;
}

Dataset Dataset::Subset(std::span<const uint32_t> row_indices) const {
  Dataset out;
  out.num_features = num_features;
  out.rows.reserve(row_indices.size());
  out.labels.reserve(row_indices.size());
  for (uint32_t i : row_indices) {
    out.rows.push_back(rows.at(i));
    out.labels.push_back(labels.at(i));
  }
  return out;
}

std::vector<float> Dataset::DenseRow(size_t row_index) const {
  std::vector<float> dense(num_features, 0.0f);
  for (uint32_t f : rows.at(row_index)) {
    dense[f] = 1.0f;
  }
  return dense;
}

std::vector<uint32_t> Dataset::FeatureCounts() const {
  std::vector<uint32_t> counts(num_features, 0);
  for (const SparseRow& row : rows) {
    for (uint32_t f : row) {
      ++counts[f];
    }
  }
  return counts;
}

Dataset DeduplicateAgainst(const Dataset& test, const Dataset& train) {
  std::unordered_set<uint64_t> seen;
  seen.reserve(train.size() + test.size());
  for (const SparseRow& row : train.rows) {
    seen.insert(HashRow(row));
  }
  Dataset out;
  out.num_features = test.num_features;
  for (size_t i = 0; i < test.size(); ++i) {
    const uint64_t h = HashRow(test.rows[i]);
    if (seen.insert(h).second) {
      out.Add(test.rows[i], test.labels[i]);
    }
  }
  return out;
}

}  // namespace apichecker::ml
