// Gradient-boosted decision trees with logistic loss (Table 2 "GBDT" row).
// Base learners are depth-limited regression trees over binary features with
// second-order (gradient/hessian) split gain, XGBoost-style.

#ifndef APICHECKER_ML_GBDT_H_
#define APICHECKER_ML_GBDT_H_

#include <vector>

#include "ml/classifier.h"

namespace apichecker::ml {

struct GbdtConfig {
  size_t num_rounds = 40;
  size_t max_depth = 6;
  double learning_rate = 0.3;
  double l2 = 1.0;              // Leaf value regularization (lambda).
  double min_child_weight = 1.0;  // Minimum hessian sum per child.
  uint64_t seed = 1;
};

class Gbdt : public Classifier {
 public:
  explicit Gbdt(GbdtConfig config = {}) : config_(config) {}

  void Train(const Dataset& data) override;
  double PredictScore(const SparseRow& row) const override;
  std::string name() const override { return "GBDT"; }

  size_t num_trees() const { return trees_.size(); }

 private:
  struct Node {
    int32_t feature = -1;
    uint32_t absent_child = 0;
    uint32_t present_child = 0;
    float value = 0.0f;  // Leaf weight (log-odds increment).
  };
  struct Tree {
    std::vector<Node> nodes;
    double Predict(const SparseRow& row) const;
  };

  uint32_t BuildNode(const Dataset& data, std::vector<uint32_t>& rows, size_t begin, size_t end,
                     size_t depth, const std::vector<double>& grad,
                     const std::vector<double>& hess, Tree& tree);

  GbdtConfig config_;
  std::vector<Tree> trees_;
  double base_score_ = 0.0;  // Initial log-odds.

  // Feature-indexed scratch (epoch-stamped), as in CartTree.
  std::vector<uint32_t> stamp_;
  std::vector<double> sum_g_;
  std::vector<double> sum_h_;
  uint32_t epoch_ = 0;
};

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_GBDT_H_
