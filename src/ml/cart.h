// CART decision tree over binary features (Gini impurity splits), used both
// standalone (Table 2 "CART" row, DroidAPIMiner [1]) and as the base learner
// of the random forest.

#ifndef APICHECKER_ML_CART_H_
#define APICHECKER_ML_CART_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ml/classifier.h"
#include "util/byte_io.h"
#include "util/rng.h"

namespace apichecker::ml {

struct CartConfig {
  size_t max_depth = 24;
  size_t min_samples_leaf = 1;
  size_t min_samples_split = 2;
  // Candidate features per node; 0 means "all features".
  size_t features_per_split = 0;
  uint64_t seed = 1;
};

class CartTree : public Classifier {
 public:
  explicit CartTree(CartConfig config = {}) : config_(config) {}

  void Train(const Dataset& data) override;
  double PredictScore(const SparseRow& row) const override;
  std::string name() const override { return "CART"; }

  // Trains on a caller-chosen multiset of row indices (used by the forest
  // for bootstrap bags). If `importance_out` is non-null it must have
  // data.num_features entries; Gini importance (impurity decrease weighted
  // by node fraction) is accumulated into it.
  void TrainOnRows(const Dataset& data, std::span<const uint32_t> row_indices,
                   std::vector<double>* importance_out);

  size_t num_nodes() const { return nodes_.size(); }
  size_t depth() const { return depth_; }

  void SerializeInto(util::ByteWriter& writer) const;
  static util::Result<CartTree> Deserialize(util::ByteReader& reader);

 private:
  struct Node {
    int32_t feature = -1;  // -1 marks a leaf.
    uint32_t absent_child = 0;
    uint32_t present_child = 0;
    float score = 0.0f;  // Leaf malice probability.
  };

  // Recursive builder over rows[begin, end) of `row_indices` (reordered in
  // place during partitioning). Returns the created node's index.
  uint32_t Build(const Dataset& data, std::vector<uint32_t>& row_indices, size_t begin,
                 size_t end, size_t depth, std::vector<double>* importance_out);

  CartConfig config_;
  std::vector<Node> nodes_;
  size_t depth_ = 0;
  size_t total_rows_ = 0;
  util::Rng rng_{1};

  // Scratch arrays (feature-indexed) reused across nodes via epoch stamping,
  // so per-node reset cost is O(features touched), not O(num_features).
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> count_;
  std::vector<uint32_t> pos_count_;
  std::vector<uint32_t> allowed_stamp_;
  uint32_t epoch_ = 0;
};

}  // namespace apichecker::ml

#endif  // APICHECKER_ML_CART_H_
