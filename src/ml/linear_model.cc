#include "ml/linear_model.h"

#include <cmath>

namespace apichecker::ml {

namespace {
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

double LinearModelBase::Margin(const SparseRow& row) const {
  double m = bias_;
  for (uint32_t f : row) {
    if (f < weights_.size()) {
      m += weights_[f];
    }
  }
  return m;
}

void LinearModelBase::Train(const Dataset& data) {
  weights_.assign(data.num_features, 0.0);
  bias_ = 0.0;
  if (data.size() == 0) {
    return;
  }

  // AdaGrad accumulators.
  std::vector<double> g2(data.num_features, 1e-8);
  double g2_bias = 1e-8;
  util::Rng rng(config_.seed);

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const std::vector<uint32_t> order = rng.Permutation(data.size());
    for (uint32_t i : order) {
      const SparseRow& row = data.rows[i];
      const double y = data.labels[i] ? 1.0 : -1.0;
      const double grad = LossGradient(Margin(row), y);
      if (grad != 0.0) {
        for (uint32_t f : row) {
          // Binary feature => gradient contribution is `grad` itself.
          const double g = grad + config_.l2 * weights_[f];
          g2[f] += g * g;
          weights_[f] -= config_.learning_rate / std::sqrt(g2[f]) * g;
        }
        g2_bias += grad * grad;
        bias_ -= config_.learning_rate / std::sqrt(g2_bias) * grad;
      } else if (config_.l2 > 0.0) {
        // Hinge-satisfied examples still shrink touched weights slightly.
        for (uint32_t f : row) {
          weights_[f] -= config_.learning_rate * config_.l2 * weights_[f];
        }
      }
    }
  }
}

double LinearModelBase::PredictScore(const SparseRow& row) const {
  return Sigmoid(Margin(row));
}

double LogisticRegression::LossGradient(double margin, double y) const {
  // d/dm log(1 + exp(-y m)) = -y * sigmoid(-y m).
  return -y * Sigmoid(-y * margin);
}

double LinearSvm::LossGradient(double margin, double y) const {
  return (y * margin < 1.0) ? -y : 0.0;
}

}  // namespace apichecker::ml
