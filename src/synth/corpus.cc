#include "synth/corpus.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/strings.h"

namespace apichecker::synth {

namespace {

using android::ApiId;
using android::ApiInfo;
using android::ApiUniverse;

constexpr double kHeadPopularityThreshold = 0.02;
constexpr float kMaxUseProbability = 0.98f;

// Malware backbone modulation by API popularity tier (§4.3 / Fig 6 shape):
// complex malware slightly over-exercises medium-popularity framework areas
// and barely over-exercises the hot head.
double MaliceBackboneFactor(double popularity) {
  if (popularity >= 0.7) {
    return 1.0;   // Hot plumbing: used identically by everyone.
  }
  if (popularity >= 0.3) {
    return 1.02;
  }
  if (popularity >= 0.1) {
    return 1.15;  // Mid-popularity framework areas malware leans on.
  }
  return 1.0;
}

}  // namespace

CorpusGenerator::CorpusGenerator(const ApiUniverse& universe, CorpusConfig config)
    : universe_(universe), config_(config), rng_(config.seed) {
  RefreshTemplates(config_.template_seed);
}

void CorpusGenerator::RefreshTemplates(uint64_t seed) {
  benign_ = BuildBenignArchetypes(universe_, seed ^ 0xb519);
  malware_ = BuildMalwareFamilies(universe_, seed ^ 0x3a1c);
  // Grayware: benign apps sharing a malware family's vocabulary (§5.2 FPs).
  benign_.push_back(MakeGraywareArchetype(malware_[6], seed ^ 0x9a4e));
  RebuildBackbonePools();
}

void CorpusGenerator::RebuildBackbonePools() {
  head_apis_.clear();
  tail_apis_.clear();
  tail_cdf_.clear();
  tail_lambda_ = 0.0;
  for (ApiId id = 0; id < universe_.num_apis(); ++id) {
    const ApiInfo& info = universe_.api(id);
    if (info.popularity >= kHeadPopularityThreshold) {
      head_apis_.push_back(id);
    } else if (info.popularity > 0.0f) {
      tail_apis_.push_back(id);
      tail_lambda_ += info.popularity;
      tail_cdf_.push_back(tail_lambda_);
    }
  }
}

void CorpusGenerator::SampleBackbone(AppProfile& profile, const BehaviorTemplate& tmpl,
                                     util::Rng& rng) const {
  const bool malicious = tmpl.malicious;
  for (ApiId id : head_apis_) {
    const ApiInfo& info = universe_.api(id);
    double p = static_cast<double>(info.popularity) * tmpl.backbone_scale;
    if (info.common_op) {
      p = static_cast<double>(info.popularity) * tmpl.common_op_scale;
    } else if (malicious) {
      p *= MaliceBackboneFactor(info.popularity);
    }
    if (rng.Bernoulli(std::min<double>(p, kMaxUseProbability))) {
      ApiUsage usage;
      usage.api = id;
      usage.invocations_per_kevent =
          static_cast<float>(info.invocations_per_kevent * rng.LogNormal(1.0, 0.30));
      profile.usage.push_back(usage);
    }
  }
  // Weighted tail: draw a Poisson number of (deduplicated) rare APIs.
  const uint64_t tail_draws = rng.Poisson(tail_lambda_ * tmpl.backbone_scale);
  std::vector<ApiId> drawn;
  drawn.reserve(tail_draws);
  for (uint64_t d = 0; d < tail_draws; ++d) {
    const double target = rng.NextDouble() * tail_lambda_;
    const auto it = std::lower_bound(tail_cdf_.begin(), tail_cdf_.end(), target);
    const size_t idx = std::min<size_t>(static_cast<size_t>(it - tail_cdf_.begin()),
                                        tail_apis_.size() - 1);
    drawn.push_back(tail_apis_[idx]);
  }
  std::sort(drawn.begin(), drawn.end());
  drawn.erase(std::unique(drawn.begin(), drawn.end()), drawn.end());
  for (ApiId id : drawn) {
    const ApiInfo& info = universe_.api(id);
    ApiUsage usage;
    usage.api = id;
    usage.invocations_per_kevent =
        static_cast<float>(info.invocations_per_kevent * rng.LogNormal(1.0, 0.30));
    profile.usage.push_back(usage);
  }
}

AppProfile CorpusGenerator::Instantiate(const BehaviorTemplate& tmpl, int16_t template_id,
                                        bool malicious, uint64_t profile_seed) {
  util::Rng rng(profile_seed);
  AppProfile profile;
  profile.malicious = malicious;
  profile.template_id = template_id;
  profile.behavior_seed = rng.Fork(0xbe).Next();
  profile.crash_probability =
      static_cast<float>(std::min(0.25, rng.Exponential(tmpl.crash_rate)));
  profile.has_native_code = rng.Bernoulli(tmpl.native_code_rate);

  // Activities: declared vs actually referenced (paper §4.2: ~88%).
  const double activities = std::max(1.0, rng.Normal(tmpl.mean_activities,
                                                     tmpl.mean_activities / 3.0));
  profile.num_activities = static_cast<uint8_t>(std::min(activities, 60.0));
  profile.num_referenced_activities = static_cast<uint8_t>(std::max(
      1.0, std::min<double>(profile.num_activities, profile.num_activities * 0.88 + 0.5)));

  // Emulator sensitivity.
  if (rng.Bernoulli(config_.sensor_dependent_fraction)) {
    profile.emulator_sensitivity = EmulatorSensitivity::kNeedsRealSensors;
  } else if (rng.Bernoulli(config_.config_detector_fraction + tmpl.emulator_detection_rate)) {
    profile.emulator_sensitivity = EmulatorSensitivity::kDetectsConfiguration;
  }

  // App-wide invocation intensity (spreads the Fig 2 CDF).
  const double intensity = rng.LogNormal(1.0, 0.15);

  SampleBackbone(profile, tmpl, rng);

  // Characteristic behaviour on top of the backbone.
  std::unordered_map<ApiId, size_t> usage_index;
  usage_index.reserve(profile.usage.size());
  for (size_t i = 0; i < profile.usage.size(); ++i) {
    usage_index.emplace(profile.usage[i].api, i);
  }
  for (const WeightedApi& wa : tmpl.characteristic_apis) {
    if (!rng.Bernoulli(std::min<double>(wa.use_probability, kMaxUseProbability))) {
      continue;
    }
    const float ipk =
        static_cast<float>(wa.invocations_per_kevent * rng.LogNormal(1.0, 0.4));
    const auto it = usage_index.find(wa.api);
    if (it != usage_index.end()) {
      profile.usage[it->second].invocations_per_kevent += ipk;
    } else {
      ApiUsage usage;
      usage.api = wa.api;
      usage.invocations_per_kevent = ipk;
      usage_index.emplace(wa.api, profile.usage.size());
      profile.usage.push_back(usage);
    }
  }

  // Stealth-simple malware variant: near-empty behavioural footprint. These
  // instances are the paper's tolerated false negatives (§5.2).
  const bool stealth = malicious && rng.Bernoulli(config_.stealth_simple_fraction);
  if (stealth) {
    AppProfile minimal;
    minimal.malicious = true;
    minimal.template_id = template_id;
    minimal.behavior_seed = profile.behavior_seed;
    minimal.crash_probability = profile.crash_probability;
    minimal.num_activities = std::max<uint8_t>(1, profile.num_activities / 4);
    minimal.num_referenced_activities =
        std::max<uint8_t>(1, std::min(minimal.num_activities,
                                      profile.num_referenced_activities));
    minimal.emulator_sensitivity = profile.emulator_sensitivity;
    // Thin backbone only: drop ~70% of usages and all characteristic signal.
    for (const ApiUsage& usage : profile.usage) {
      const ApiInfo& info = universe_.api(usage.api);
      const bool characteristic = info.attacker_useful ||
                                  android::IsRestrictive(info.protection) ||
                                  info.sensitive != android::SensitiveOp::kNone;
      const double keep = universe_.api(usage.api).common_op ? 0.9 : 0.45;
      if (!characteristic && rng.Bernoulli(keep)) {
        minimal.usage.push_back(usage);
      }
    }
    profile = std::move(minimal);
  }

  // Evasion: full or partial reflection hiding (malware only).
  if (malicious && !stealth) {
    const bool full_evader = rng.Bernoulli(tmpl.reflection_evader_rate);
    const bool partial_evader = !full_evader && rng.Bernoulli(tmpl.partial_reflection_rate);
    if (full_evader || partial_evader) {
      for (ApiUsage& usage : profile.usage) {
        const ApiInfo& info = universe_.api(usage.api);
        const bool characteristic = info.attacker_useful ||
                                    android::IsRestrictive(info.protection) ||
                                    info.sensitive != android::SensitiveOp::kNone;
        if (characteristic && (full_evader || rng.Bernoulli(0.4))) {
          usage.via_reflection = true;
        }
      }
    }
  }

  // Runtime intents through intent-carrying APIs (delegation channel).
  if (!stealth) {
    std::vector<ApiId> intent_apis;
    for (const ApiUsage& usage : profile.usage) {
      if (universe_.api(usage.api).intent_related && !usage.via_reflection) {
        intent_apis.push_back(usage.api);
      }
    }
    for (const WeightedIntent& wi : tmpl.runtime_intents) {
      if (!rng.Bernoulli(wi.probability)) {
        continue;
      }
      ApiUsage usage;
      if (!intent_apis.empty()) {
        usage.api = intent_apis[rng.NextBounded(intent_apis.size())];
      } else {
        const auto start_activity =
            universe_.FindByName("android.content.Context.startActivity");
        assert(start_activity.has_value());
        usage.api = *start_activity;
      }
      usage.invocations_per_kevent = static_cast<float>(rng.Uniform(0.5, 6.0));
      usage.runtime_intent = wi.intent;
      profile.usage.push_back(usage);
    }
  }

  // Permissions: implied by used APIs (reflective or not — reflection still
  // needs the permission, §4.5), plus template extras, plus over-requests.
  std::vector<bool> has_permission(universe_.permissions().size(), false);
  for (const ApiUsage& usage : profile.usage) {
    const ApiInfo& info = universe_.api(usage.api);
    if (info.permission >= 0) {
      has_permission[static_cast<size_t>(info.permission)] = true;
    }
  }
  if (!stealth) {
    for (const WeightedPermission& wp : tmpl.extra_permissions) {
      if (rng.Bernoulli(wp.probability)) {
        has_permission[wp.permission] = true;
      }
    }
    // Over-privilege: a couple of stray normal-level permissions.
    const size_t extras = rng.NextBounded(4);
    for (size_t i = 0; i < extras; ++i) {
      const size_t p = rng.NextBounded(universe_.permissions().size());
      if (universe_.permissions()[p].level == android::Protection::kNormal) {
        has_permission[p] = true;
      }
    }
  }
  for (size_t p = 0; p < has_permission.size(); ++p) {
    if (has_permission[p]) {
      profile.permissions.push_back(static_cast<android::PermissionId>(p));
    }
  }

  // Manifest intent filters.
  if (!stealth) {
    std::vector<bool> has_intent(universe_.intents().size(), false);
    for (const WeightedIntent& wi : tmpl.manifest_intents) {
      if (rng.Bernoulli(wi.probability)) {
        has_intent[wi.intent] = true;
      }
    }
    for (size_t i = 0; i < has_intent.size(); ++i) {
      if (has_intent[i]) {
        profile.manifest_intents.push_back(static_cast<android::IntentId>(i));
      }
    }
  }

  // Assign gating activities, emulator guards, and app intensity.
  const bool detects_config =
      profile.emulator_sensitivity == EmulatorSensitivity::kDetectsConfiguration;
  const bool sensor_dependent =
      profile.emulator_sensitivity == EmulatorSensitivity::kNeedsRealSensors;
  for (ApiUsage& usage : profile.usage) {
    usage.invocations_per_kevent = static_cast<float>(usage.invocations_per_kevent * intensity);
    if (!rng.Bernoulli(0.3)) {
      usage.activity =
          static_cast<uint8_t>(rng.NextBounded(profile.num_referenced_activities));
    }
    if (detects_config) {
      const ApiInfo& info = universe_.api(usage.api);
      const bool characteristic = info.attacker_useful ||
                                  android::IsRestrictive(info.protection) ||
                                  info.sensitive != android::SensitiveOp::kNone;
      // Malware wraps its risky call sites in emulator checks; benign
      // anti-tamper code guards a sprinkling of paths.
      if ((malicious && characteristic) || (!malicious && rng.Bernoulli(0.15))) {
        usage.guarded = true;
      }
    }
    if (sensor_dependent && rng.Bernoulli(0.25)) {
      usage.sensor_gated = true;
    }
  }
  std::sort(profile.usage.begin(), profile.usage.end(),
            [](const ApiUsage& a, const ApiUsage& b) { return a.api < b.api; });
  return profile;
}

AppProfile CorpusGenerator::Next() {
  ++num_generated_;
  const bool make_update = !lineages_.empty() && rng_.Bernoulli(config_.update_fraction);
  if (make_update) {
    Lineage& lineage = lineages_[rng_.NextBounded(lineages_.size())];
    lineage.version += 1;
    const bool exact_clone = rng_.Bernoulli(config_.exact_clone_fraction);
    // Clones re-instantiate from the same profile seed (identical behaviour,
    // different APK digest via version_code); true updates mutate the seed.
    const uint64_t seed = exact_clone
                              ? lineage.profile_seed
                              : util::SplitMix64(lineage.profile_seed ^ lineage.version);
    const BehaviorTemplate& tmpl = lineage.malicious
                                       ? malware_[static_cast<size_t>(lineage.template_id)]
                                       : benign_[static_cast<size_t>(lineage.template_id)];
    AppProfile profile = Instantiate(tmpl, lineage.template_id, lineage.malicious, seed);
    profile.package_name = lineage.package_name;
    profile.version_code = lineage.version;
    profile.is_update = true;
    // Update attack: a benign package's new version smuggles in a malware
    // family's payload. The lineage is compromised from here on.
    if (!lineage.malicious && config_.update_attack_rate > 0.0 &&
        rng_.Bernoulli(config_.update_attack_rate)) {
      const size_t family = rng_.NextBounded(malware_.size());
      util::Rng inject_rng(util::SplitMix64(seed ^ 0xa77ac4));
      InjectPayload(profile, malware_[family], inject_rng);
      profile.malicious = true;
      profile.is_update_attack = true;
      lineage.malicious = true;
      lineage.template_id = static_cast<int16_t>(family);
    }
    return profile;
  }

  const bool malicious = rng_.Bernoulli(config_.malicious_fraction);
  const auto& pool = malicious ? malware_ : benign_;
  const int16_t template_id = PickTemplate(pool);
  const uint64_t profile_seed = rng_.Next();

  Lineage lineage;
  lineage.package_name = util::StrFormat(
      "com.%s.app%06zu", pool[static_cast<size_t>(template_id)].name.c_str(), lineages_.size());
  lineage.template_id = template_id;
  lineage.malicious = malicious;
  lineage.version = 1;
  lineage.profile_seed = profile_seed;

  AppProfile profile =
      Instantiate(pool[static_cast<size_t>(template_id)], template_id, malicious, profile_seed);
  profile.package_name = lineage.package_name;
  profile.version_code = 1;
  lineages_.push_back(std::move(lineage));
  return profile;
}

int16_t CorpusGenerator::PickTemplate(const std::vector<BehaviorTemplate>& pool) {
  std::vector<double> weights(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    weights[i] = pool[i].population_weight;
  }
  return static_cast<int16_t>(rng_.WeightedIndex(weights));
}

void CorpusGenerator::InjectPayload(AppProfile& profile, const BehaviorTemplate& family,
                                    util::Rng& rng) const {
  std::unordered_map<ApiId, size_t> usage_index;
  for (size_t i = 0; i < profile.usage.size(); ++i) {
    usage_index.emplace(profile.usage[i].api, i);
  }
  for (const WeightedApi& wa : family.characteristic_apis) {
    if (!rng.Bernoulli(std::min(0.8 * wa.use_probability, 0.95))) {
      continue;
    }
    const float ipk =
        static_cast<float>(wa.invocations_per_kevent * rng.LogNormal(1.0, 0.4));
    const auto it = usage_index.find(wa.api);
    if (it != usage_index.end()) {
      profile.usage[it->second].invocations_per_kevent += ipk;
    } else {
      ApiUsage usage;
      usage.api = wa.api;
      usage.invocations_per_kevent = ipk;
      if (!rng.Bernoulli(0.3) && profile.num_referenced_activities > 0) {
        usage.activity =
            static_cast<uint8_t>(rng.NextBounded(profile.num_referenced_activities));
      }
      usage_index.emplace(wa.api, profile.usage.size());
      profile.usage.push_back(usage);
    }
  }
  // Payload permissions: implied by injected APIs plus the family's extras.
  std::vector<bool> has_permission(universe_.permissions().size(), false);
  for (android::PermissionId p : profile.permissions) {
    has_permission[p] = true;
  }
  for (const ApiUsage& usage : profile.usage) {
    const ApiInfo& info = universe_.api(usage.api);
    if (info.permission >= 0) {
      has_permission[static_cast<size_t>(info.permission)] = true;
    }
  }
  for (const WeightedPermission& wp : family.extra_permissions) {
    if (rng.Bernoulli(0.8 * wp.probability)) {
      has_permission[wp.permission] = true;
    }
  }
  profile.permissions.clear();
  for (size_t p = 0; p < has_permission.size(); ++p) {
    if (has_permission[p]) {
      profile.permissions.push_back(static_cast<android::PermissionId>(p));
    }
  }
  // Family intent filters join the manifest.
  std::vector<bool> has_intent(universe_.intents().size(), false);
  for (android::IntentId i : profile.manifest_intents) {
    has_intent[i] = true;
  }
  for (const WeightedIntent& wi : family.manifest_intents) {
    if (rng.Bernoulli(0.8 * wi.probability)) {
      has_intent[wi.intent] = true;
    }
  }
  profile.manifest_intents.clear();
  for (size_t i = 0; i < has_intent.size(); ++i) {
    if (has_intent[i]) {
      profile.manifest_intents.push_back(static_cast<android::IntentId>(i));
    }
  }
  std::sort(profile.usage.begin(), profile.usage.end(),
            [](const ApiUsage& a, const ApiUsage& b) { return a.api < b.api; });
}

std::vector<AppProfile> CorpusGenerator::GenerateAll() {
  std::vector<AppProfile> profiles;
  profiles.reserve(config_.num_apps);
  for (size_t i = 0; i < config_.num_apps; ++i) {
    profiles.push_back(Next());
  }
  return profiles;
}

apk::Manifest BuildManifest(const AppProfile& profile, const ApiUniverse& universe) {
  apk::Manifest manifest;
  manifest.package_name = profile.package_name;
  manifest.version_code = profile.version_code;
  for (android::PermissionId p : profile.permissions) {
    manifest.permissions.push_back(universe.permissions().at(p).name);
  }
  for (uint8_t a = 0; a < profile.num_activities; ++a) {
    manifest.activities.push_back(
        util::StrFormat("%s.ui.Activity%u", profile.package_name.c_str(), a));
  }
  for (android::IntentId i : profile.manifest_intents) {
    manifest.intent_filters.push_back(universe.intents().at(i));
  }
  return manifest;
}

apk::DexFile BuildDex(const AppProfile& profile, const ApiUniverse& universe) {
  apk::DexFile dex;
  // Hash-based interner: DexFile::InternString is a linear scan, fine for a
  // handful of lookups but quadratic over an app's ~1K method names.
  std::unordered_map<std::string, uint32_t> string_index;
  auto intern = [&](const std::string& s) {
    const auto [it, inserted] =
        string_index.emplace(s, static_cast<uint32_t>(dex.strings.size()));
    if (inserted) {
      dex.strings.push_back(s);
    }
    return it->second;
  };
  dex.behavior_seed = profile.behavior_seed;
  dex.crash_prob_q8 = static_cast<uint8_t>(
      std::min(255.0, profile.crash_probability * 255.0 + 0.5));
  if (profile.emulator_sensitivity == EmulatorSensitivity::kDetectsConfiguration) {
    dex.runtime_flags |= apk::DexFile::kFlagDetectsEmulator;
  }
  if (profile.emulator_sensitivity == EmulatorSensitivity::kNeedsRealSensors) {
    dex.runtime_flags |= apk::DexFile::kFlagNeedsRealSensors;
  }
  if (profile.has_native_code) {
    dex.runtime_flags |= apk::DexFile::kFlagNativeCode;
  }

  // Referenced activity classes.
  for (uint8_t a = 0; a < profile.num_referenced_activities; ++a) {
    dex.activity_class_idx.push_back(intern(
        util::StrFormat("%s.ui.Activity%u", profile.package_name.c_str(), a)));
  }

  // Method table + behaviour records; reflection-hidden usage is absent by
  // construction (invisible both statically and to API hooks).
  std::unordered_map<ApiId, uint32_t> method_index;
  for (const ApiUsage& usage : profile.usage) {
    if (usage.via_reflection) {
      continue;
    }
    uint32_t method_idx;
    const auto it = method_index.find(usage.api);
    if (it != method_index.end()) {
      method_idx = it->second;
    } else {
      method_idx = static_cast<uint32_t>(dex.method_name_idx.size());
      dex.method_name_idx.push_back(intern(universe.api(usage.api).name));
      method_index.emplace(usage.api, method_idx);
    }
    apk::DexBehavior behavior;
    behavior.method_idx = method_idx;
    behavior.invocations_per_kevent = usage.invocations_per_kevent;
    behavior.activity = usage.activity;
    if (usage.guarded) {
      behavior.flags |= apk::DexBehavior::kFlagGuarded;
    }
    if (usage.sensor_gated) {
      behavior.flags |= apk::DexBehavior::kFlagSensorGated;
    }
    if (usage.runtime_intent >= 0) {
      behavior.intent_string_idx =
          intern(universe.intents().at(static_cast<size_t>(usage.runtime_intent)));
    }
    dex.behaviors.push_back(behavior);
  }
  return dex;
}

std::vector<uint8_t> BuildApkBytes(const AppProfile& profile, const ApiUniverse& universe) {
  return apk::BuildApk(BuildManifest(profile, universe), BuildDex(profile, universe),
                       profile.has_native_code);
}

}  // namespace apichecker::synth
