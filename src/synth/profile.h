// Ground-truth app profile: the logical behaviour an APK is synthesized from.
// The profile is the *generator's* view; the detection pipeline only ever
// sees the APK bytes and the emulator's observations.

#ifndef APICHECKER_SYNTH_PROFILE_H_
#define APICHECKER_SYNTH_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "android/types.h"

namespace apichecker::synth {

// One runtime API call site.
struct ApiUsage {
  android::ApiId api = 0;
  float invocations_per_kevent = 0.0f;
  // Activity ordinal (into referenced activities) gating the call site;
  // 0xFF means app-level (fires regardless of UI exploration depth).
  uint8_t activity = 0xFF;
  // Hidden via Java reflection / internal APIs (§4.5): the call site never
  // appears in the DEX and produces no hook events; only its prerequisite
  // permission remains visible in the manifest.
  bool via_reflection = false;
  // When >= 0 the invocation passes this Intent action as a parameter
  // (observable iff the API itself is hooked), modelling intent delegation.
  int32_t runtime_intent = -1;
  // Call site is wrapped in an emulator-detection check: it stays silent on
  // emulators unless the engine's anti-detection countermeasures defeat the
  // check (§4.2's fourfold emulator improvements).
  bool guarded = false;
  // Call site only triggers with live sensor input — never on emulators (the
  // residual 1.4% of §4.2).
  bool sensor_gated = false;
};

// How the app responds to running inside an emulator (paper §4.2).
enum class EmulatorSensitivity : uint8_t {
  kNone = 0,
  // Inspects system configuration / input timing; defeated by the enhanced
  // emulator's countermeasures.
  kDetectsConfiguration = 1,
  // Requires live sensor data (microphone etc.) that no emulator provides;
  // behaves differently even on the enhanced emulator (the residual 1.4%).
  kNeedsRealSensors = 2,
};

struct AppProfile {
  std::string package_name;
  uint32_t version_code = 1;
  bool malicious = false;
  int16_t template_id = -1;  // Malware family or benign archetype index.
  bool is_update = false;
  // True when this version of a previously benign package carries an
  // injected malicious payload (the "update attack" of paper §2).
  bool is_update_attack = false;

  std::vector<ApiUsage> usage;
  std::vector<android::PermissionId> permissions;
  std::vector<android::IntentId> manifest_intents;

  uint8_t num_activities = 1;
  uint8_t num_referenced_activities = 1;

  EmulatorSensitivity emulator_sensitivity = EmulatorSensitivity::kNone;
  bool has_native_code = false;
  float crash_probability = 0.0f;
  uint64_t behavior_seed = 0;
};

}  // namespace apichecker::synth

#endif  // APICHECKER_SYNTH_PROFILE_H_
