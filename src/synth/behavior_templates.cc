#include "synth/behavior_templates.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"
#include "util/strings.h"

namespace apichecker::synth {

namespace {

using android::ApiId;
using android::ApiUniverse;
using android::IntentId;
using android::PermissionId;

PermissionId FindPermission(const ApiUniverse& universe, std::string_view suffix) {
  for (size_t i = 0; i < universe.permissions().size(); ++i) {
    if (util::EndsWith(universe.permissions()[i].name, suffix)) {
      return static_cast<PermissionId>(i);
    }
  }
  assert(false && "unknown permission suffix");
  return 0;
}

IntentId FindIntent(const ApiUniverse& universe, std::string_view suffix) {
  for (size_t i = 0; i < universe.intents().size(); ++i) {
    if (util::EndsWith(universe.intents()[i], suffix)) {
      return static_cast<IntentId>(i);
    }
  }
  assert(false && "unknown intent suffix");
  return 0;
}

ApiId FindApi(const ApiUniverse& universe, const std::string& name) {
  const auto id = universe.FindByName(name);
  assert(id.has_value());
  return *id;
}

}  // namespace

std::vector<BehaviorTemplate> BuildBenignArchetypes(const ApiUniverse& universe, uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<ApiId> restrictive = universe.RestrictivePermissionApis();
  const std::vector<ApiId> sensitive = universe.SensitiveOperationApis();
  const std::vector<ApiId> useful = universe.AttackerUsefulApis();

  const char* const kNames[] = {
      "game",     "messenger", "media_player", "shopping",    "finance",     "social",
      "tools",    "news",      "education",    "travel",      "photography", "sms_utility",
  };

  std::vector<BehaviorTemplate> archetypes;
  for (size_t a = 0; a < std::size(kNames); ++a) {
    util::Rng arch_rng = rng.Fork(a + 1);
    BehaviorTemplate t;
    t.name = kNames[a];
    t.malicious = false;
    t.mean_activities = arch_rng.Uniform(6.0, 26.0);
    t.emulator_detection_rate = 0.02;  // Anti-tamper checks in some benign apps.
    t.native_code_rate = a == 0 ? 0.55 : 0.10;  // Games ship native engines.
    t.crash_rate = arch_rng.Uniform(0.008, 0.02);

    // Legitimate use of a few permission-guarded and sensitive APIs. This is
    // what keeps Set-P/Set-S features from being trivially separating.
    const size_t num_perm_apis = 1 + arch_rng.NextBounded(4);
    for (uint32_t idx : arch_rng.SampleWithoutReplacement(restrictive.size(), num_perm_apis)) {
      t.characteristic_apis.push_back(
          {restrictive[idx], arch_rng.Uniform(0.05, 0.35), arch_rng.Uniform(1.0, 12.0)});
    }
    const size_t num_sens_apis = 1 + arch_rng.NextBounded(3);
    for (uint32_t idx : arch_rng.SampleWithoutReplacement(sensitive.size(), num_sens_apis)) {
      t.characteristic_apis.push_back(
          {sensitive[idx], arch_rng.Uniform(0.04, 0.25), arch_rng.Uniform(2.0, 30.0)});
    }

    // Benign intent traffic.
    t.runtime_intents.push_back({FindIntent(universe, "action.VIEW"), 0.5});
    t.runtime_intents.push_back({FindIntent(universe, "action.SEND"), 0.25});
    t.manifest_intents.push_back({FindIntent(universe, "CONNECTIVITY_CHANGE"), 0.30});
    t.manifest_intents.push_back({FindIntent(universe, "BOOT_COMPLETED"), 0.15});
    t.extra_permissions.push_back({FindPermission(universe, "INTERNET"), 0.9});
    t.extra_permissions.push_back({FindPermission(universe, "ACCESS_NETWORK_STATE"), 0.7});

    if (t.name == "messenger") {
      t.characteristic_apis.push_back(
          {FindApi(universe, "android.telephony.SmsManager.sendTextMessage"), 0.35, 3.0});
      t.extra_permissions.push_back({FindPermission(universe, "RECEIVE_SMS"), 0.35});
      t.manifest_intents.push_back({FindIntent(universe, "SMS_RECEIVED"), 0.45});
    } else if (t.name == "finance") {
      t.characteristic_apis.push_back(
          {FindApi(universe, "javax.crypto.Cipher.doFinal"), 0.8, 20.0});
    } else if (t.name == "tools") {
      t.characteristic_apis.push_back(
          {FindApi(universe, "android.app.ActivityManager.getRunningTasks"), 0.4, 8.0});
      t.characteristic_apis.push_back(
          {FindApi(universe, "java.lang.Runtime.exec"), 0.15, 1.5});
    } else if (t.name == "sms_utility") {
      // The deliberately malware-adjacent benign archetype: the main source
      // of production false positives (§5.2).
      t.characteristic_apis.push_back(
          {FindApi(universe, "android.telephony.SmsManager.sendTextMessage"), 0.7, 6.0});
      t.characteristic_apis.push_back(
          {FindApi(universe, "android.telephony.TelephonyManager.getLine1Number"), 0.4, 2.0});
      t.extra_permissions.push_back({FindPermission(universe, "READ_SMS"), 0.6});
      t.manifest_intents.push_back({FindIntent(universe, "SMS_RECEIVED"), 0.6});
      for (uint32_t idx : arch_rng.SampleWithoutReplacement(useful.size(), 14)) {
        t.characteristic_apis.push_back(
            {useful[idx], 0.35, arch_rng.Uniform(1.0, 8.0)});
      }
    }
    archetypes.push_back(std::move(t));
  }
  return archetypes;
}

std::vector<BehaviorTemplate> BuildMalwareFamilies(const ApiUniverse& universe, uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<ApiId> restrictive = universe.RestrictivePermissionApis();
  const std::vector<ApiId> sensitive = universe.SensitiveOperationApis();
  const std::vector<ApiId> useful = universe.AttackerUsefulApis();

  // Attacker-useful members of the restrictive/sensitive pools: the Set-C
  // overlap APIs that families lean on hardest.
  std::vector<ApiId> useful_restrictive, useful_sensitive, useful_plain;
  for (ApiId id : useful) {
    const android::ApiInfo& info = universe.api(id);
    if (android::IsRestrictive(info.protection)) {
      useful_restrictive.push_back(id);
    } else if (info.sensitive != android::SensitiveOp::kNone) {
      useful_sensitive.push_back(id);
    } else {
      useful_plain.push_back(id);
    }
  }

  const char* const kNames[] = {
      "sms_fraud",        "premium_dialer",  "spyware_contacts", "locker_ransom",
      "crypto_ransom",    "bank_overlay",    "adware_aggressive", "botnet",
      "dropper_dynamic",  "rootkit_privesc", "clicker",           "info_stealer_wifi",
      "stalkerware",      "perm_abuser",     "service_hijacker",  "intent_broker",
  };
  static_assert(std::size(kNames) == 16);

  std::vector<BehaviorTemplate> families;
  for (size_t f = 0; f < std::size(kNames); ++f) {
    util::Rng fam_rng = rng.Fork(100 + f);
    BehaviorTemplate t;
    t.name = kNames[f];
    t.malicious = true;
    t.mean_activities = fam_rng.Uniform(3.0, 14.0);
    t.backbone_scale = fam_rng.Uniform(0.96, 1.0);
    t.common_op_scale = fam_rng.Uniform(0.42, 0.60);
    t.reflection_evader_rate = 0.025;
    t.partial_reflection_rate = 0.04;
    t.emulator_detection_rate = 0.10;
    t.native_code_rate = fam_rng.Uniform(0.10, 0.35);
    t.crash_rate = fam_rng.Uniform(0.015, 0.04);

    // Core signal: each family exercises a distinctive overlapping slice of
    // the attacker-useful plain pool (~28% inclusion => ~65 APIs/family,
    // each API covered by ~4-5 families).
    const bool low_plain_family = f >= 13;  // Last 3 families barely touch
                                            // the plain pool (Set-C misses
                                            // them; Set-P/S catch them).
    const double inclusion = low_plain_family ? 0.04 : 0.50;
    for (ApiId id : useful_plain) {
      if (fam_rng.Bernoulli(inclusion)) {
        t.characteristic_apis.push_back(
            {id, fam_rng.Uniform(0.65, 0.92), fam_rng.Uniform(1.0, 40.0)});
      }
    }

    // Restrictive-permission API usage: ~11 of 16 families.
    const bool uses_perm_apis = (f % 3) != 2 || low_plain_family;
    if (uses_perm_apis) {
      for (ApiId id : useful_restrictive) {
        if (fam_rng.Bernoulli(0.8)) {
          t.characteristic_apis.push_back(
              {id, fam_rng.Uniform(0.60, 0.85), fam_rng.Uniform(1.0, 10.0)});
        }
      }
      const size_t extra = 4 + fam_rng.NextBounded(6);
      for (uint32_t idx : fam_rng.SampleWithoutReplacement(restrictive.size(), extra)) {
        t.characteristic_apis.push_back(
            {restrictive[idx], fam_rng.Uniform(0.35, 0.65), fam_rng.Uniform(0.5, 6.0)});
      }
    }

    // Sensitive-operation API usage: ~11 of 16 families (offset so the
    // perm/sens coverage patterns differ).
    const bool uses_sensitive_apis = ((f + 1) % 3) != 2 || low_plain_family;
    if (uses_sensitive_apis) {
      for (ApiId id : useful_sensitive) {
        if (fam_rng.Bernoulli(0.9)) {
          t.characteristic_apis.push_back(
              {id, fam_rng.Uniform(0.65, 0.90), fam_rng.Uniform(2.0, 25.0)});
        }
      }
      const size_t extra = 8 + fam_rng.NextBounded(6);
      for (uint32_t idx : fam_rng.SampleWithoutReplacement(sensitive.size(), extra)) {
        t.characteristic_apis.push_back(
            {sensitive[idx], fam_rng.Uniform(0.55, 0.80), fam_rng.Uniform(1.0, 15.0)});
      }
    }

    // Family-flavoured manifests and intent traffic.
    auto add_intent = [&](std::string_view suffix, double manifest_p, double runtime_p) {
      const IntentId id = FindIntent(universe, suffix);
      if (manifest_p > 0) {
        t.manifest_intents.push_back({id, manifest_p});
      }
      if (runtime_p > 0) {
        t.runtime_intents.push_back({id, runtime_p});
      }
    };
    switch (f % 4) {
      case 0:  // SMS / telephony flavoured.
        add_intent("SMS_RECEIVED", 0.75, 0.2);
        add_intent("action.SENDTO", 0.0, 0.45);
        t.extra_permissions.push_back({FindPermission(universe, "SEND_SMS"), 0.8});
        t.extra_permissions.push_back({FindPermission(universe, "RECEIVE_SMS"), 0.7});
        t.extra_permissions.push_back({FindPermission(universe, "RECEIVE_MMS"), 0.45});
        t.extra_permissions.push_back({FindPermission(universe, "RECEIVE_WAP_PUSH"), 0.40});
        t.extra_permissions.push_back({FindPermission(universe, "READ_SMS"), 0.5});
        break;
      case 1:  // Boot-persistent background service flavoured.
        add_intent("BOOT_COMPLETED", 0.8, 0.0);
        add_intent("wifi.STATE_CHANGE", 0.6, 0.0);
        add_intent("ACTION_BATTERY_OKAY", 0.45, 0.0);
        t.extra_permissions.push_back(
            {FindPermission(universe, "RECEIVE_BOOT_COMPLETED"), 0.85});
        t.extra_permissions.push_back({FindPermission(universe, "WAKE_LOCK"), 0.5});
        break;
      case 2:  // Device-admin / overlay flavoured.
        add_intent("DEVICE_ADMIN_ENABLED", 0.7, 0.25);
        t.extra_permissions.push_back(
            {FindPermission(universe, "SYSTEM_ALERT_WINDOW"), 0.75});
        t.extra_permissions.push_back({FindPermission(universe, "BIND_DEVICE_ADMIN"), 0.5});
        break;
      case 3:  // Connectivity-snooping flavoured.
        add_intent("bluetooth.adapter.action.STATE_CHANGED", 0.55, 0.0);
        add_intent("CONNECTIVITY_CHANGE", 0.5, 0.0);
        add_intent("PHONE_STATE", 0.45, 0.0);
        t.extra_permissions.push_back(
            {FindPermission(universe, "ACCESS_NETWORK_STATE"), 0.9});
        t.extra_permissions.push_back({FindPermission(universe, "READ_PHONE_STATE"), 0.6});
        break;
    }
    t.extra_permissions.push_back({FindPermission(universe, "INTERNET"), 0.95});

    families.push_back(std::move(t));
  }
  return families;
}

BehaviorTemplate MakeGraywareArchetype(const BehaviorTemplate& family, uint64_t seed) {
  util::Rng rng(seed);
  BehaviorTemplate t = family;
  t.name = family.name + "_grayware";
  t.malicious = false;
  // Grayware (aggressive ad/analytics SDKs) exercises a diluted version of
  // the parent family's behaviour: same API vocabulary, lower intensity,
  // fewer scary permissions — the Bayes-overlapping population behind the
  // production false positives of §5.2.
  // Rare near-twin population: statistically almost indistinguishable from
  // the parent family, so a slice of it inevitably crosses the decision
  // boundary — the irreducible false positives.
  t.population_weight = 0.06;
  for (WeightedApi& wa : t.characteristic_apis) {
    wa.use_probability *= rng.Uniform(0.70, 0.95);
    wa.invocations_per_kevent *= 0.8;
  }
  for (WeightedPermission& wp : t.extra_permissions) {
    wp.probability *= 0.55;
  }
  for (WeightedIntent& wi : t.manifest_intents) {
    wi.probability *= 0.5;
  }
  for (WeightedIntent& wi : t.runtime_intents) {
    wi.probability *= 0.85;
  }
  t.common_op_scale = 0.8;
  t.backbone_scale = 1.0;
  t.reflection_evader_rate = 0.0;
  t.partial_reflection_rate = 0.0;
  t.emulator_detection_rate = 0.03;
  return t;
}

}  // namespace apichecker::synth
