// Corpus generator: synthesizes the T-Market app stream (paper §4.1 —
// ~500K new and updated submissions, ~7.7% malicious, ~85% updates of
// existing packages). Profiles are produced deterministically from a seed,
// and can be materialized into real APK byte archives.

#ifndef APICHECKER_SYNTH_CORPUS_H_
#define APICHECKER_SYNTH_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "android/api_universe.h"
#include "apk/apk.h"
#include "synth/behavior_templates.h"
#include "synth/profile.h"
#include "util/rng.h"

namespace apichecker::synth {

struct CorpusConfig {
  size_t num_apps = 20'000;
  double malicious_fraction = 0.0771;   // 38,698 / 501,971 (paper §4.1).
  double update_fraction = 0.85;        // Share of submissions that are updates.
  double exact_clone_fraction = 0.04;   // Updates that are behavioural clones
                                        // (the duplicate-vector leakage source).
  // Probability that an update to a *benign* package is an update attack:
  // the new version injects a malware family's payload (§2). Once attacked,
  // the lineage stays malicious. Default off; threat-model benches enable it.
  double update_attack_rate = 0.0;
  double stealth_simple_fraction = 0.025;  // Malware with barely any key-API
                                           // footprint (the §5.2 FN cluster).
  double config_detector_fraction = 0.10;  // Baseline emulator-config checks.
  double sensor_dependent_fraction = 0.014;  // Needs live sensors (§4.2: 1.4%).
  uint64_t seed = 0x5eed;          // Submission-stream randomness.
  // Seed for the behaviour-template "world" (archetypes + families). Streams
  // with different `seed` but the same `template_seed` draw from the same
  // app ecosystem — train on one stream, vet another.
  uint64_t template_seed = 0x7ea31d;
};

class CorpusGenerator {
 public:
  CorpusGenerator(const android::ApiUniverse& universe, CorpusConfig config);

  // Generates the next submission in the stream (new app or update).
  AppProfile Next();

  // Convenience: generates config.num_apps submissions.
  std::vector<AppProfile> GenerateAll();

  const std::vector<BehaviorTemplate>& benign_templates() const { return benign_; }
  const std::vector<BehaviorTemplate>& malware_templates() const { return malware_; }
  const CorpusConfig& config() const { return config_; }
  size_t num_generated() const { return num_generated_; }

  // Re-derives template pools after the universe gained new SDK APIs, so
  // freshly generated apps start adopting them (model-evolution driver,
  // §5.3). Call after ApiUniverse::AddSdkLevel.
  void RefreshTemplates(uint64_t seed);

 private:
  struct Lineage {
    std::string package_name;
    int16_t template_id = -1;
    bool malicious = false;
    uint32_t version = 1;
    uint64_t profile_seed = 0;
  };

  AppProfile Instantiate(const BehaviorTemplate& tmpl, int16_t template_id, bool malicious,
                         uint64_t profile_seed);
  // Grafts a malware family's payload onto an (otherwise benign) profile.
  void InjectPayload(AppProfile& profile, const BehaviorTemplate& family, util::Rng& rng) const;
  int16_t PickTemplate(const std::vector<BehaviorTemplate>& pool);
  void SampleBackbone(AppProfile& profile, const BehaviorTemplate& tmpl, util::Rng& rng) const;
  void RebuildBackbonePools();

  const android::ApiUniverse& universe_;
  CorpusConfig config_;
  util::Rng rng_;
  std::vector<BehaviorTemplate> benign_;
  std::vector<BehaviorTemplate> malware_;

  // Backbone sampling pools: head (Bernoulli per app) and weighted tail.
  std::vector<android::ApiId> head_apis_;
  std::vector<android::ApiId> tail_apis_;
  std::vector<double> tail_cdf_;
  double tail_lambda_ = 0.0;

  std::vector<Lineage> lineages_;
  size_t num_generated_ = 0;
};

// Materializes a profile into manifest + dex structures (reflection-hidden
// usage is omitted from the dex by construction) and then into APK bytes.
apk::Manifest BuildManifest(const AppProfile& profile, const android::ApiUniverse& universe);
apk::DexFile BuildDex(const AppProfile& profile, const android::ApiUniverse& universe);
std::vector<uint8_t> BuildApkBytes(const AppProfile& profile,
                                   const android::ApiUniverse& universe);

}  // namespace apichecker::synth

#endif  // APICHECKER_SYNTH_CORPUS_H_
