// Behaviour templates: benign app archetypes and malware families. Templates
// are derived deterministically from the API universe; each names the APIs,
// permissions and intents its instances characteristically exercise. The
// template layer is what makes malice *learnable as combinations* rather than
// single-feature rules: each family touches a distinctive overlapping subset
// of the attacker-useful / restrictive / sensitive pools.

#ifndef APICHECKER_SYNTH_BEHAVIOR_TEMPLATES_H_
#define APICHECKER_SYNTH_BEHAVIOR_TEMPLATES_H_

#include <string>
#include <vector>

#include "android/api_universe.h"
#include "android/types.h"

namespace apichecker::synth {

struct WeightedApi {
  android::ApiId api = 0;
  double use_probability = 0.0;       // P(an instance exercises this API).
  double invocations_per_kevent = 0;  // Typical rate when exercised.
};

struct WeightedPermission {
  android::PermissionId permission = 0;
  double probability = 0.0;
};

struct WeightedIntent {
  android::IntentId intent = 0;
  double probability = 0.0;
};

struct BehaviorTemplate {
  std::string name;
  bool malicious = false;

  std::vector<WeightedApi> characteristic_apis;
  std::vector<WeightedPermission> extra_permissions;
  std::vector<WeightedIntent> manifest_intents;
  // Intent actions passed through intent-carrying framework APIs at runtime
  // (the delegation channel of §4.5).
  std::vector<WeightedIntent> runtime_intents;

  // Multiplier on baseline (popularity-driven) API adoption; <1 models the
  // "simple functionality" end of the spectrum.
  double backbone_scale = 1.0;
  // Multiplier applied to ubiquitous common-op APIs; malware families run
  // slightly below 1.0, producing the negative-SRC cluster of §4.3.
  double common_op_scale = 1.0;

  double mean_activities = 12.0;
  // Relative prevalence when instances of this template are drawn (benign
  // archetypes and malware families are each sampled weight-proportionally).
  double population_weight = 1.0;
  // Evasion / fragility knobs (probabilities per instance).
  double reflection_evader_rate = 0.0;  // Hide ALL characteristic API usage.
  double partial_reflection_rate = 0.0; // Hide each usage with p=0.5.
  double emulator_detection_rate = 0.0;
  double native_code_rate = 0.12;
  double crash_rate = 0.015;
};

// Builds the standard template sets from a universe. Deterministic in `seed`.
std::vector<BehaviorTemplate> BuildBenignArchetypes(const android::ApiUniverse& universe,
                                                    uint64_t seed);
std::vector<BehaviorTemplate> BuildMalwareFamilies(const android::ApiUniverse& universe,
                                                   uint64_t seed);

// Derives a benign "grayware" archetype from a malware family: the same
// behavioural vocabulary at diluted intensity. Populates the corpus with the
// hard-to-separate benign apps that cause production false positives.
BehaviorTemplate MakeGraywareArchetype(const BehaviorTemplate& family, uint64_t seed);

}  // namespace apichecker::synth

#endif  // APICHECKER_SYNTH_BEHAVIOR_TEMPLATES_H_
