// Least-squares curve fitting and goodness-of-fit. The paper fits the
// analysis-time-vs-tracked-API-count relationship with a tri-modal model
// (Eq. 1): linear for n < 800, power-law for 800 <= n <= 1000, logarithmic
// for n > 1000, and reports R^2 of 0.96/0.99/0.99 for the three segments.

#ifndef APICHECKER_STATS_FITTING_H_
#define APICHECKER_STATS_FITTING_H_

#include <span>
#include <string>
#include <vector>

namespace apichecker::stats {

// y = a*x + b.
struct LinearFit {
  double a = 0.0;
  double b = 0.0;
  double r_squared = 0.0;
  double Eval(double x) const { return a * x + b; }
};

// y = a * x^b.
struct PowerFit {
  double a = 0.0;
  double b = 0.0;
  double r_squared = 0.0;
  double Eval(double x) const;
};

// y = a * ln(x) + b.
struct LogFit {
  double a = 0.0;
  double b = 0.0;
  double r_squared = 0.0;
  double Eval(double x) const;
};

LinearFit FitLinear(std::span<const double> x, std::span<const double> y);
// Requires strictly positive x and y (fit is linear in log-log space, then
// R^2 is evaluated in the original space, matching the paper's reporting).
PowerFit FitPower(std::span<const double> x, std::span<const double> y);
// Requires strictly positive x.
LogFit FitLog(std::span<const double> x, std::span<const double> y);

// Coefficient of determination of predictions vs observations.
double RSquared(std::span<const double> observed, std::span<const double> predicted);

// Eq. 1 of the paper: piecewise {linear, power, log} fit over x split at
// `break1` and `break2` (paper: 800 and 1000).
struct TriModalFit {
  LinearFit linear;   // x in [min, break1)
  PowerFit power;     // x in [break1, break2]
  LogFit log;         // x in (break2, max]
  double break1 = 0.0;
  double break2 = 0.0;

  double Eval(double x) const;
  std::string ToString() const;
};

TriModalFit FitTriModal(std::span<const double> x, std::span<const double> y, double break1,
                        double break2);

}  // namespace apichecker::stats

#endif  // APICHECKER_STATS_FITTING_H_
