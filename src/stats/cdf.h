// Empirical cumulative distribution function. The paper reports several
// results as CDFs (Figs 2, 3, 9, 11, 16); benchmark binaries build an
// EmpiricalCdf from per-app samples and print it at fixed quantile steps.

#ifndef APICHECKER_STATS_CDF_H_
#define APICHECKER_STATS_CDF_H_

#include <span>
#include <vector>

namespace apichecker::stats {

class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::span<const double> samples);

  // Fraction of samples <= x.
  double At(double x) const;

  // Inverse CDF: smallest sample value v with At(v) >= p, p in [0, 1].
  double Quantile(double p) const;

  // Evaluates the CDF at `points` evenly spaced x values spanning
  // [min, max]; returns (x, F(x)) pairs. Handy for plotting/printing.
  std::vector<std::pair<double, double>> Curve(size_t points) const;

  size_t size() const { return sorted_.size(); }
  double min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
  double max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace apichecker::stats

#endif  // APICHECKER_STATS_CDF_H_
