// Descriptive statistics over double samples.

#ifndef APICHECKER_STATS_DESCRIPTIVE_H_
#define APICHECKER_STATS_DESCRIPTIVE_H_

#include <span>
#include <string>
#include <vector>

namespace apichecker::stats {

// Five-number-plus summary of a sample.
struct Summary {
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // Sample standard deviation (n-1 denominator).

  // "min/median/mean/max" rendered with `digits` fraction digits.
  std::string ToString(int digits = 2) const;
};

Summary Summarize(std::span<const double> samples);

double Mean(std::span<const double> samples);
double Median(std::span<const double> samples);
double StdDev(std::span<const double> samples);

// Linear-interpolated percentile, q in [0, 100]. Empty input returns 0.
double Percentile(std::span<const double> samples, double q);

}  // namespace apichecker::stats

#endif  // APICHECKER_STATS_DESCRIPTIVE_H_
