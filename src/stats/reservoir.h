// Reservoir sampling: a fixed-size uniform random sample over a stream of
// unknown length (Vitter's algorithm R). The production pipeline uses it to
// keep bounded, unbiased samples of daily submissions for offline analysis
// (the paper's manual FP/FN sampling, §5.2).

#ifndef APICHECKER_STATS_RESERVOIR_H_
#define APICHECKER_STATS_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace apichecker::stats {

template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed) : capacity_(capacity), rng_(seed) {}

  void Add(T item) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(std::move(item));
      return;
    }
    // Keep with probability capacity/seen, replacing a uniform victim.
    const uint64_t slot = rng_.NextBounded(seen_);
    if (slot < capacity_) {
      sample_[static_cast<size_t>(slot)] = std::move(item);
    }
  }

  const std::vector<T>& sample() const { return sample_; }
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  util::Rng rng_;
  std::vector<T> sample_;
  uint64_t seen_ = 0;
};

}  // namespace apichecker::stats

#endif  // APICHECKER_STATS_RESERVOIR_H_
