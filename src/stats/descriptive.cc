#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace apichecker::stats {

double Mean(std::span<const double> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples) {
    sum += s;
  }
  return sum / static_cast<double>(samples.size());
}

double Median(std::span<const double> samples) {
  return Percentile(samples, 50.0);
}

double StdDev(std::span<const double> samples) {
  if (samples.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(samples);
  double ss = 0.0;
  for (double s : samples) {
    const double d = s - mean;
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(samples.size() - 1));
}

double Percentile(std::span<const double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 100.0);
  const double pos = (q / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  s.mean = Mean(samples);
  s.median = Median(samples);
  s.stddev = StdDev(samples);
  return s;
}

std::string Summary::ToString(int digits) const {
  return util::StrFormat("min=%.*f median=%.*f mean=%.*f max=%.*f (n=%zu)", digits, min, digits,
                         median, digits, mean, digits, max, count);
}

}  // namespace apichecker::stats
