#include "stats/histogram.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace apichecker::stats {

Histogram::Histogram(double lo, double hi, size_t bins) : lo_(lo), hi_(hi) {
  assert(hi > lo && bins > 0);
  counts_.assign(bins, 0);
}

void Histogram::Add(double sample) {
  const double span = hi_ - lo_;
  double pos = (sample - lo_) / span * static_cast<double>(counts_.size());
  pos = std::clamp(pos, 0.0, static_cast<double>(counts_.size()) - 1.0);
  ++counts_[static_cast<size_t>(pos)];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& samples) {
  for (double s : samples) {
    Add(s);
  }
}

double Histogram::BinLow(size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::BinHigh(size_t bin) const { return BinLow(bin + 1); }

std::string Histogram::Render(size_t bar_width) const {
  uint64_t max_count = 1;
  for (uint64_t c : counts_) {
    max_count = std::max(max_count, c);
  }
  std::string out;
  for (size_t b = 0; b < counts_.size(); ++b) {
    const size_t bar =
        static_cast<size_t>(static_cast<double>(counts_[b]) / static_cast<double>(max_count) *
                            static_cast<double>(bar_width));
    out += util::StrFormat("[%10.2f, %10.2f) %8llu |", BinLow(b), BinHigh(b),
                           static_cast<unsigned long long>(counts_[b]));
    out += std::string(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace apichecker::stats
