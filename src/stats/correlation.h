// Rank and linear correlation. The paper's feature-selection step (§4.3)
// ranks every framework API by the Spearman rank correlation (SRC) between
// its invocation indicator and the app malice label; |SRC| >= 0.2 marks a
// non-trivial relationship.

#ifndef APICHECKER_STATS_CORRELATION_H_
#define APICHECKER_STATS_CORRELATION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace apichecker::stats {

// Pearson product-moment correlation. Returns 0 for degenerate input
// (length mismatch, <2 samples, or zero variance on either side).
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

// Fractional (average) ranks with tie handling, 1-based as in the classical
// definition. E.g. {10, 20, 20, 30} -> {1, 2.5, 2.5, 4}.
std::vector<double> FractionalRanks(std::span<const double> values);

// Spearman rank correlation: Pearson correlation of the fractional ranks.
double SpearmanCorrelation(std::span<const double> x, std::span<const double> y);

// Specialized fast path for the feature-selection workload: correlation of a
// binary feature column against a binary label column. Both vectors must be
// 0/1 valued and the same length. For binary data, Spearman == Pearson ==
// the phi coefficient, which this computes in O(n) from the contingency
// table instead of O(n log n) rank sorting; with ~50K features x ~100K apps
// that difference dominates the study pipeline's runtime.
double BinarySpearman(std::span<const uint8_t> feature, std::span<const uint8_t> label);

}  // namespace apichecker::stats

#endif  // APICHECKER_STATS_CORRELATION_H_
