#include "stats/cdf.h"

#include <algorithm>
#include <cmath>

namespace apichecker::stats {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::At(double x) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::Quantile(double p) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf::Curve(size_t points) const {
  std::vector<std::pair<double, double>> curve;
  if (sorted_.empty() || points == 0) {
    return curve;
  }
  curve.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (size_t i = 0; i < points; ++i) {
    // Pin the final point to the exact maximum so F(last) == 1 despite
    // floating-point rounding in the interpolation.
    const double x = (points == 1 || i + 1 == points)
                         ? hi
                         : lo + (hi - lo) * static_cast<double>(i) /
                                   static_cast<double>(points - 1);
    curve.emplace_back(x, At(x));
  }
  return curve;
}

}  // namespace apichecker::stats
