#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

namespace apichecker::stats {

double PearsonCorrelation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> FractionalRanks(std::span<const double> values) {
  const size_t n = values.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    // Average rank for the tie group [i, j], 1-based.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = avg;
    }
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    return 0.0;
  }
  const std::vector<double> rx = FractionalRanks(x);
  const std::vector<double> ry = FractionalRanks(y);
  return PearsonCorrelation(rx, ry);
}

double BinarySpearman(std::span<const uint8_t> feature, std::span<const uint8_t> label) {
  if (feature.size() != label.size() || feature.size() < 2) {
    return 0.0;
  }
  // Contingency counts: n11 = feature&label, n10 = feature&!label, etc.
  uint64_t n11 = 0, n10 = 0, n01 = 0, n00 = 0;
  for (size_t i = 0; i < feature.size(); ++i) {
    const bool f = feature[i] != 0;
    const bool l = label[i] != 0;
    if (f && l) {
      ++n11;
    } else if (f) {
      ++n10;
    } else if (l) {
      ++n01;
    } else {
      ++n00;
    }
  }
  const double r1 = static_cast<double>(n11 + n10);  // feature == 1 count
  const double r0 = static_cast<double>(n01 + n00);
  const double c1 = static_cast<double>(n11 + n01);  // label == 1 count
  const double c0 = static_cast<double>(n10 + n00);
  const double denom = std::sqrt(r1 * r0 * c1 * c0);
  if (denom <= 0.0) {
    return 0.0;
  }
  return (static_cast<double>(n11) * static_cast<double>(n00) -
          static_cast<double>(n10) * static_cast<double>(n01)) /
         denom;
}

}  // namespace apichecker::stats
