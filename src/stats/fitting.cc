#include "stats/fitting.h"

#include <cmath>

#include "util/strings.h"

namespace apichecker::stats {

namespace {

// Plain least squares on (x, y); returns {slope, intercept}.
std::pair<double, double> LeastSquares(std::span<const double> x, std::span<const double> y) {
  const size_t n = x.size();
  if (n < 2) {
    return {0.0, n == 1 ? y[0] : 0.0};
  }
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) {
    return {0.0, sy / dn};
  }
  const double a = (dn * sxy - sx * sy) / denom;
  const double b = (sy - a * sx) / dn;
  return {a, b};
}

}  // namespace

double RSquared(std::span<const double> observed, std::span<const double> predicted) {
  if (observed.size() != predicted.size() || observed.empty()) {
    return 0.0;
  }
  double mean = 0.0;
  for (double v : observed) {
    mean += v;
  }
  mean /= static_cast<double>(observed.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    const double t = observed[i] - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot <= 0.0) {
    return ss_res <= 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

double PowerFit::Eval(double x) const { return a * std::pow(x, b); }
double LogFit::Eval(double x) const { return a * std::log(x) + b; }

LinearFit FitLinear(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const auto [a, b] = LeastSquares(x, y);
  fit.a = a;
  fit.b = b;
  std::vector<double> pred(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    pred[i] = fit.Eval(x[i]);
  }
  fit.r_squared = RSquared(y, pred);
  return fit;
}

PowerFit FitPower(std::span<const double> x, std::span<const double> y) {
  PowerFit fit;
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  const auto [b, ln_a] = LeastSquares(lx, ly);
  fit.a = std::exp(ln_a);
  fit.b = b;
  std::vector<double> pred(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    pred[i] = fit.Eval(x[i]);
  }
  fit.r_squared = RSquared(y, pred);
  return fit;
}

LogFit FitLog(std::span<const double> x, std::span<const double> y) {
  LogFit fit;
  std::vector<double> lx, yy;
  lx.reserve(x.size());
  yy.reserve(y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0) {
      lx.push_back(std::log(x[i]));
      yy.push_back(y[i]);
    }
  }
  const auto [a, b] = LeastSquares(lx, yy);
  fit.a = a;
  fit.b = b;
  std::vector<double> pred(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    pred[i] = fit.Eval(x[i]);
  }
  fit.r_squared = RSquared(y, pred);
  return fit;
}

double TriModalFit::Eval(double x) const {
  if (x < break1) {
    return linear.Eval(x);
  }
  if (x <= break2) {
    return power.Eval(x);
  }
  return log.Eval(x);
}

std::string TriModalFit::ToString() const {
  return util::StrFormat(
      "t(n) = %.4g*n%+.4g (n<%g, R2=%.3f) | %.4g*n^%.3f (n<=%g, R2=%.3f) | "
      "%.4g*ln(n)%+.4g (n>%g, R2=%.3f)",
      linear.a, linear.b, break1, linear.r_squared, power.a, power.b, break2, power.r_squared,
      log.a, log.b, break2, log.r_squared);
}

TriModalFit FitTriModal(std::span<const double> x, std::span<const double> y, double break1,
                        double break2) {
  TriModalFit fit;
  fit.break1 = break1;
  fit.break2 = break2;
  std::vector<double> x1, y1, x2, y2, x3, y3;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] < break1) {
      x1.push_back(x[i]);
      y1.push_back(y[i]);
    } else if (x[i] <= break2) {
      x2.push_back(x[i]);
      y2.push_back(y[i]);
    } else {
      x3.push_back(x[i]);
      y3.push_back(y[i]);
    }
  }
  fit.linear = FitLinear(x1, y1);
  fit.power = FitPower(x2, y2);
  fit.log = FitLog(x3, y3);
  return fit;
}

}  // namespace apichecker::stats
