// Fixed-width-bin histogram for report output.

#ifndef APICHECKER_STATS_HISTOGRAM_H_
#define APICHECKER_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace apichecker::stats {

class Histogram {
 public:
  // Bins span [lo, hi) evenly; samples outside are clamped to edge bins.
  Histogram(double lo, double hi, size_t bins);

  void Add(double sample);
  void AddAll(const std::vector<double>& samples);

  uint64_t BinCount(size_t bin) const { return counts_.at(bin); }
  double BinLow(size_t bin) const;
  double BinHigh(size_t bin) const;
  size_t num_bins() const { return counts_.size(); }
  uint64_t total() const { return total_; }

  // Text rendering: one line per bin with a proportional bar.
  std::string Render(size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace apichecker::stats

#endif  // APICHECKER_STATS_HISTOGRAM_H_
