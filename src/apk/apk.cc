#include "apk/apk.h"

#include <algorithm>

#include "apk/zip.h"
#include "util/rng.h"
#include "util/strings.h"

namespace apichecker::apk {

std::string ContentDigest(std::span<const uint8_t> bytes) {
  // Two independent 64-bit mixing chains give a 128-bit digest. Not
  // cryptographic — it plays MD5's *identity* role, not a security role.
  uint64_t a = 0x6a09e667f3bcc908ull;
  uint64_t b = 0xbb67ae8584caa73bull;
  for (uint8_t byte : bytes) {
    a = util::SplitMix64(a ^ byte);
    b = util::SplitMix64(b + (static_cast<uint64_t>(byte) << 1 | 1));
  }
  return util::StrFormat("%016llx%016llx", static_cast<unsigned long long>(a),
                         static_cast<unsigned long long>(b));
}

namespace {

// Stub ELF-flavoured native library payload: a recognizable header plus a
// little deterministic filler. Content is irrelevant to the pipeline beyond
// the entry's existence.
std::vector<uint8_t> NativeLibStub(uint64_t seed) {
  std::vector<uint8_t> lib = {0x7f, 'E', 'L', 'F', 1, 1, 1, 0};
  util::Rng rng(seed);
  for (int i = 0; i < 56; ++i) {
    lib.push_back(static_cast<uint8_t>(rng.Next() & 0xFF));
  }
  return lib;
}

}  // namespace

std::vector<uint8_t> BuildApk(const Manifest& manifest, const DexFile& dex,
                              bool include_native_lib) {
  const std::vector<uint8_t> manifest_bytes = EncodeManifest(manifest);
  const std::vector<uint8_t> dex_bytes = EncodeDex(dex);

  // Digest covers the code-bearing entries, like a real signature digest.
  std::vector<uint8_t> digest_input = manifest_bytes;
  digest_input.insert(digest_input.end(), dex_bytes.begin(), dex_bytes.end());
  const std::string digest = ContentDigest(digest_input);

  ZipWriter writer;
  writer.AddEntry(kManifestEntry, manifest_bytes);
  writer.AddEntry(kDexEntry, dex_bytes);
  if (include_native_lib) {
    writer.AddEntry(kNativeLibEntry, NativeLibStub(dex.behavior_seed));
  }
  writer.AddEntry(kSignatureEntry,
                  std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(digest.data()),
                                           digest.size()));
  return writer.Finish();
}

util::Result<ApkFile> ParseApk(std::span<const uint8_t> bytes) {
  auto zip = ZipReader::Parse(bytes);
  if (!zip.ok()) {
    return util::Err("apk container: " + zip.error());
  }

  const std::vector<uint8_t>* manifest_bytes = zip->Find(kManifestEntry);
  if (manifest_bytes == nullptr) {
    return util::Err("apk missing AndroidManifest.xml");
  }
  const std::vector<uint8_t>* dex_bytes = zip->Find(kDexEntry);
  if (dex_bytes == nullptr) {
    return util::Err("apk missing classes.dex");
  }
  const std::vector<uint8_t>* signature_bytes = zip->Find(kSignatureEntry);
  if (signature_bytes == nullptr) {
    return util::Err("apk missing signature entry");
  }

  auto manifest = ParseManifest(*manifest_bytes);
  if (!manifest.ok()) {
    return util::Err("apk manifest: " + manifest.error());
  }
  auto dex = ParseDex(*dex_bytes);
  if (!dex.ok()) {
    return util::Err("apk dex: " + dex.error());
  }

  std::vector<uint8_t> digest_input = *manifest_bytes;
  digest_input.insert(digest_input.end(), dex_bytes->begin(), dex_bytes->end());
  const std::string expected_digest = ContentDigest(digest_input);
  const std::string stored_digest(signature_bytes->begin(), signature_bytes->end());
  if (stored_digest != expected_digest) {
    return util::Err("apk signature digest mismatch");
  }

  ApkFile apk;
  apk.manifest = std::move(*manifest);
  apk.dex = std::move(*dex);
  apk.has_native_lib = zip->Find(kNativeLibEntry) != nullptr;
  apk.digest = stored_digest;
  return apk;
}

util::Result<std::vector<uint8_t>> PadApk(std::span<const uint8_t> bytes,
                                          size_t target_bytes, uint64_t seed) {
  if (bytes.size() >= target_bytes) {
    return std::vector<uint8_t>(bytes.begin(), bytes.end());
  }
  auto zip = ZipReader::Parse(bytes);
  if (!zip.ok()) {
    return util::Err("apk container: " + zip.error());
  }
  // Headroom for the padding entry's local header + central record (~150 B).
  const size_t overhead = 160;
  const size_t pad_size =
      target_bytes - std::min(target_bytes, bytes.size() + overhead);
  std::vector<uint8_t> filler(pad_size);
  util::Rng rng(seed);
  for (auto& byte : filler) {
    byte = static_cast<uint8_t>(rng.Next() & 0xFF);
  }
  ZipWriter writer;
  for (const ZipEntry& entry : zip->entries()) {
    writer.AddEntry(entry.name, entry.data);
  }
  writer.AddEntry("assets/padding.bin", filler);
  return writer.Finish();
}

}  // namespace apichecker::apk
