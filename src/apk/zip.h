// Minimal ZIP archive codec (store method only, CRC-32 validated), the
// container format of Android APKs. The writer emits local file headers, a
// central directory, and an end-of-central-directory record; the reader
// locates the EOCD from the tail, walks the central directory, and validates
// each entry's CRC — the same structural work a real APK parser performs.

#ifndef APICHECKER_APK_ZIP_H_
#define APICHECKER_APK_ZIP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"

namespace apichecker::apk {

class ZipWriter {
 public:
  // Entry names must be unique and non-empty. Data is stored uncompressed.
  void AddEntry(const std::string& name, std::span<const uint8_t> data);

  // Appends the central directory and EOCD; the writer is consumed.
  std::vector<uint8_t> Finish();

 private:
  struct EntryMeta {
    std::string name;
    uint32_t crc32 = 0;
    uint32_t size = 0;
    uint32_t local_header_offset = 0;
  };

  std::vector<uint8_t> payload_;
  std::vector<EntryMeta> entries_;
};

struct ZipEntry {
  std::string name;
  std::vector<uint8_t> data;
};

class ZipReader {
 public:
  // Parses and CRC-validates the whole archive.
  static util::Result<ZipReader> Parse(std::span<const uint8_t> bytes);

  const std::vector<ZipEntry>& entries() const { return entries_; }

  // Returns the entry's data or null if absent.
  const std::vector<uint8_t>* Find(const std::string& name) const;

 private:
  std::vector<ZipEntry> entries_;
};

}  // namespace apichecker::apk

#endif  // APICHECKER_APK_ZIP_H_
