// AndroidManifest codec. Real APKs carry a binary-XML manifest; this models
// the same metadata — package identity, requested permissions, declared
// activities, and static intent filters — in a compact binary encoding.
// Permissions and intents cross the APK boundary as strings (as in real
// manifests); the feature-extraction layer resolves them against the
// framework catalogues.

#ifndef APICHECKER_APK_MANIFEST_H_
#define APICHECKER_APK_MANIFEST_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"

namespace apichecker::apk {

struct Manifest {
  std::string package_name;
  uint32_t version_code = 1;
  uint16_t min_sdk = 19;
  uint16_t target_sdk = 27;
  std::vector<std::string> permissions;       // Requested permission names.
  std::vector<std::string> activities;        // Declared activity class names.
  std::vector<std::string> intent_filters;    // Statically registered actions.

  bool operator==(const Manifest&) const = default;
};

std::vector<uint8_t> EncodeManifest(const Manifest& manifest);
util::Result<Manifest> ParseManifest(std::span<const uint8_t> bytes);

}  // namespace apichecker::apk

#endif  // APICHECKER_APK_MANIFEST_H_
