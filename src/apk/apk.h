// High-level APK assembly and parsing: an APK is a ZIP archive holding
// AndroidManifest.xml (binary manifest), classes.dex, an optional native
// library, and a META-INF signature entry carrying a content digest (the
// MD5-hash role from the paper §4.1: same package name + different digest
// counts as a different app).

#ifndef APICHECKER_APK_APK_H_
#define APICHECKER_APK_APK_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "apk/dex.h"
#include "apk/manifest.h"
#include "util/result.h"

namespace apichecker::apk {

inline constexpr char kManifestEntry[] = "AndroidManifest.xml";
inline constexpr char kDexEntry[] = "classes.dex";
inline constexpr char kNativeLibEntry[] = "lib/armeabi-v7a/libnative.so";
inline constexpr char kSignatureEntry[] = "META-INF/CERT.SF";

struct ApkFile {
  Manifest manifest;
  DexFile dex;
  bool has_native_lib = false;
  std::string digest;  // Hex content digest from the signature entry.
};

// 128-bit content digest rendered as 32 hex chars.
std::string ContentDigest(std::span<const uint8_t> bytes);

// Serializes the package into APK (ZIP) bytes. When `include_native_lib` is
// set a small ARM-flavoured stub library is embedded (its presence is what
// the pipeline's native-code handling keys on).
std::vector<uint8_t> BuildApk(const Manifest& manifest, const DexFile& dex,
                              bool include_native_lib);

// Parses, validating container structure, entry CRCs, the manifest/dex
// codecs, and the signature digest.
util::Result<ApkFile> ParseApk(std::span<const uint8_t> bytes);

// Rewrites a valid APK with an extra `assets/padding.bin` entry so the
// archive grows to roughly `target_bytes` (deterministic filler seeded by
// `seed`). The signature digest covers only manifest+dex, so the padded APK
// still parses; only its byte-level SHA-1 changes. Used to synthesize
// market-realistic large APKs for ingest benchmarks and the ci.sh
// admission-latency smoke. No-op (returns the original bytes) when the APK
// is already at least `target_bytes`.
util::Result<std::vector<uint8_t>> PadApk(std::span<const uint8_t> bytes,
                                          size_t target_bytes, uint64_t seed = 1);

}  // namespace apichecker::apk

#endif  // APICHECKER_APK_APK_H_
