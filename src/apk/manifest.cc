#include "apk/manifest.h"

#include "util/byte_io.h"

namespace apichecker::apk {

namespace {
constexpr uint32_t kManifestMagic = 0x4c4d5841;  // "AXML" (little-endian).
constexpr uint16_t kManifestVersion = 1;
}  // namespace

std::vector<uint8_t> EncodeManifest(const Manifest& manifest) {
  util::ByteWriter writer;
  writer.PutU32(kManifestMagic);
  writer.PutU16(kManifestVersion);
  writer.PutString(manifest.package_name);
  writer.PutU32(manifest.version_code);
  writer.PutU16(manifest.min_sdk);
  writer.PutU16(manifest.target_sdk);
  writer.PutUleb128(manifest.permissions.size());
  for (const std::string& p : manifest.permissions) {
    writer.PutString(p);
  }
  writer.PutUleb128(manifest.activities.size());
  for (const std::string& a : manifest.activities) {
    writer.PutString(a);
  }
  writer.PutUleb128(manifest.intent_filters.size());
  for (const std::string& i : manifest.intent_filters) {
    writer.PutString(i);
  }
  return writer.TakeBytes();
}

util::Result<Manifest> ParseManifest(std::span<const uint8_t> bytes) {
  util::ByteReader reader(bytes);
  auto magic = reader.ReadU32();
  if (!magic.ok() || *magic != kManifestMagic) {
    return util::Err("bad manifest magic");
  }
  auto version = reader.ReadU16();
  if (!version.ok() || *version != kManifestVersion) {
    return util::Err("unsupported manifest version");
  }
  Manifest manifest;
  auto package_name = reader.ReadString();
  auto version_code = reader.ReadU32();
  auto min_sdk = reader.ReadU16();
  auto target_sdk = reader.ReadU16();
  if (!package_name.ok() || !version_code.ok() || !min_sdk.ok() || !target_sdk.ok()) {
    return util::Err("truncated manifest header");
  }
  manifest.package_name = std::move(*package_name);
  manifest.version_code = *version_code;
  manifest.min_sdk = *min_sdk;
  manifest.target_sdk = *target_sdk;

  auto read_string_list = [&](std::vector<std::string>& out, const char* what)
      -> util::Result<bool> {
    auto count = reader.ReadUleb128();
    if (!count.ok()) {
      return util::Err(std::string("truncated manifest: ") + what);
    }
    if (*count > 100'000) {
      return util::Err(std::string("implausible manifest list size: ") + what);
    }
    out.reserve(static_cast<size_t>(*count));
    for (uint64_t i = 0; i < *count; ++i) {
      auto s = reader.ReadString();
      if (!s.ok()) {
        return util::Err(std::string("truncated manifest entry: ") + what);
      }
      out.push_back(std::move(*s));
    }
    return true;
  };

  if (auto r = read_string_list(manifest.permissions, "permissions"); !r.ok()) {
    return util::Err(r.error());
  }
  if (auto r = read_string_list(manifest.activities, "activities"); !r.ok()) {
    return util::Err(r.error());
  }
  if (auto r = read_string_list(manifest.intent_filters, "intent filters"); !r.ok()) {
    return util::Err(r.error());
  }
  return manifest;
}

}  // namespace apichecker::apk
