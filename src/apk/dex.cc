#include "apk/dex.h"

#include <bit>

#include "util/byte_io.h"

namespace apichecker::apk {

namespace {
constexpr uint32_t kDexMagic = 0x4c584544;  // "DEXL" little-endian.
constexpr uint16_t kDexVersion = 1;
}  // namespace

uint32_t DexFile::InternString(std::string_view s) {
  for (uint32_t i = 0; i < strings.size(); ++i) {
    if (strings[i] == s) {
      return i;
    }
  }
  strings.emplace_back(s);
  return static_cast<uint32_t>(strings.size() - 1);
}

std::vector<uint8_t> EncodeDex(const DexFile& dex) {
  util::ByteWriter writer;
  writer.PutU32(kDexMagic);
  writer.PutU16(kDexVersion);
  writer.PutU8(dex.runtime_flags);
  writer.PutU8(dex.crash_prob_q8);
  writer.PutU64(dex.behavior_seed);

  writer.PutUleb128(dex.strings.size());
  for (const std::string& s : dex.strings) {
    writer.PutString(s);
  }
  writer.PutUleb128(dex.method_name_idx.size());
  for (uint32_t idx : dex.method_name_idx) {
    writer.PutUleb128(idx);
  }
  writer.PutUleb128(dex.activity_class_idx.size());
  for (uint32_t idx : dex.activity_class_idx) {
    writer.PutUleb128(idx);
  }
  writer.PutUleb128(dex.behaviors.size());
  for (const DexBehavior& b : dex.behaviors) {
    writer.PutUleb128(b.method_idx);
    writer.PutU32(std::bit_cast<uint32_t>(b.invocations_per_kevent));
    writer.PutU8(b.activity);
    writer.PutU8(b.flags);
    // Intent index is stored +1 so "none" encodes as a single 0 byte.
    writer.PutUleb128(b.intent_string_idx == DexFile::kNoIntent
                          ? 0
                          : static_cast<uint64_t>(b.intent_string_idx) + 1);
  }
  return writer.TakeBytes();
}

util::Result<DexFile> ParseDex(std::span<const uint8_t> bytes) {
  util::ByteReader reader(bytes);
  auto magic = reader.ReadU32();
  if (!magic.ok() || *magic != kDexMagic) {
    return util::Err("bad dex magic");
  }
  auto version = reader.ReadU16();
  if (!version.ok() || *version != kDexVersion) {
    return util::Err("unsupported dex version");
  }
  DexFile dex;
  auto flags = reader.ReadU8();
  auto crash = reader.ReadU8();
  auto seed = reader.ReadU64();
  if (!flags.ok() || !crash.ok() || !seed.ok()) {
    return util::Err("truncated dex header");
  }
  dex.runtime_flags = *flags;
  dex.crash_prob_q8 = *crash;
  dex.behavior_seed = *seed;

  auto string_count = reader.ReadUleb128();
  if (!string_count.ok() || *string_count > 10'000'000) {
    return util::Err("bad dex string pool size");
  }
  dex.strings.reserve(static_cast<size_t>(*string_count));
  for (uint64_t i = 0; i < *string_count; ++i) {
    auto s = reader.ReadString();
    if (!s.ok()) {
      return util::Err("truncated dex string pool");
    }
    dex.strings.push_back(std::move(*s));
  }

  auto read_index_list = [&](std::vector<uint32_t>& out, const char* what)
      -> util::Result<bool> {
    auto count = reader.ReadUleb128();
    if (!count.ok() || *count > 10'000'000) {
      return util::Err(std::string("bad dex table size: ") + what);
    }
    out.reserve(static_cast<size_t>(*count));
    for (uint64_t i = 0; i < *count; ++i) {
      auto idx = reader.ReadUleb128();
      if (!idx.ok()) {
        return util::Err(std::string("truncated dex table: ") + what);
      }
      if (*idx >= dex.strings.size()) {
        return util::Err(std::string("dex index out of range: ") + what);
      }
      out.push_back(static_cast<uint32_t>(*idx));
    }
    return true;
  };

  if (auto r = read_index_list(dex.method_name_idx, "methods"); !r.ok()) {
    return util::Err(r.error());
  }
  if (auto r = read_index_list(dex.activity_class_idx, "activities"); !r.ok()) {
    return util::Err(r.error());
  }

  auto behavior_count = reader.ReadUleb128();
  if (!behavior_count.ok() || *behavior_count > 10'000'000) {
    return util::Err("bad dex behavior table size");
  }
  dex.behaviors.reserve(static_cast<size_t>(*behavior_count));
  for (uint64_t i = 0; i < *behavior_count; ++i) {
    DexBehavior b;
    auto method_idx = reader.ReadUleb128();
    auto ipk = reader.ReadU32();
    auto activity = reader.ReadU8();
    auto flags = reader.ReadU8();
    auto intent = reader.ReadUleb128();
    if (!method_idx.ok() || !ipk.ok() || !activity.ok() || !flags.ok() || !intent.ok()) {
      return util::Err("truncated dex behavior record");
    }
    if (*method_idx >= dex.method_name_idx.size()) {
      return util::Err("dex behavior references unknown method");
    }
    if (*intent != 0 && *intent - 1 >= dex.strings.size()) {
      return util::Err("dex behavior references unknown intent string");
    }
    b.method_idx = static_cast<uint32_t>(*method_idx);
    b.invocations_per_kevent = std::bit_cast<float>(*ipk);
    b.activity = *activity;
    b.flags = *flags;
    b.intent_string_idx =
        *intent == 0 ? DexFile::kNoIntent : static_cast<uint32_t>(*intent - 1);
    dex.behaviors.push_back(b);
  }
  return dex;
}

}  // namespace apichecker::apk
