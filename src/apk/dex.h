// classes.dex analogue. Like real DEX, the file carries a string pool and a
// method-reference table; framework API references are strings resolved by
// the consumer. On top of that, the code section carries *behaviour records*:
// the ground-truth runtime behaviour that the emulation simulator interprets
// (which API a call site invokes, how often per 1K Monkey events, which
// Activity must be reached to trigger it, and which Intent action — if any —
// the invocation passes as a parameter).
//
// Reflection-based evasion (paper §4.5) is represented by *absence*: an app
// that triggers functionality through hidden/internal APIs has no behaviour
// record and no method-table entry for it — only the prerequisite permission
// in its manifest, exactly the blind spot the paper closes with auxiliary
// features.

#ifndef APICHECKER_APK_DEX_H_
#define APICHECKER_APK_DEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace apichecker::apk {

struct DexBehavior {
  static constexpr uint8_t kFlagGuarded = 0x01;      // Wrapped in an emulator check.
  static constexpr uint8_t kFlagSensorGated = 0x02;  // Requires live sensor input.

  uint32_t method_idx = 0;             // Index into DexFile::method_name_idx.
  float invocations_per_kevent = 0.0f;
  uint8_t activity = 0xFF;             // Gating activity ordinal; 0xFF = app-level.
  uint8_t flags = 0;
  uint32_t intent_string_idx = 0xFFFFFFFF;  // String-pool index or kNoIntent.

  bool guarded() const { return flags & kFlagGuarded; }
  bool sensor_gated() const { return flags & kFlagSensorGated; }
};

struct DexFile {
  static constexpr uint32_t kNoIntent = 0xFFFFFFFF;
  static constexpr uint8_t kAppLevelActivity = 0xFF;
  static constexpr uint8_t kFlagDetectsEmulator = 0x01;
  static constexpr uint8_t kFlagNativeCode = 0x02;
  static constexpr uint8_t kFlagNeedsRealSensors = 0x04;

  std::vector<std::string> strings;           // String pool.
  std::vector<uint32_t> method_name_idx;      // Referenced framework methods.
  std::vector<uint32_t> activity_class_idx;   // Code-referenced activity classes.
  std::vector<DexBehavior> behaviors;
  uint8_t runtime_flags = 0;
  uint8_t crash_prob_q8 = 0;                  // Crash probability * 255.
  uint64_t behavior_seed = 0;                 // Per-app runtime noise seed.

  // Interns a string, returning its pool index (deduplicating).
  uint32_t InternString(std::string_view s);

  const std::string& MethodName(uint32_t method_idx) const {
    return strings.at(method_name_idx.at(method_idx));
  }

  bool detects_emulator() const { return runtime_flags & kFlagDetectsEmulator; }
  bool has_native_code() const { return runtime_flags & kFlagNativeCode; }
  bool needs_real_sensors() const { return runtime_flags & kFlagNeedsRealSensors; }
  double crash_probability() const { return crash_prob_q8 / 255.0; }
};

std::vector<uint8_t> EncodeDex(const DexFile& dex);

// Parses and structurally validates (all indices in range).
util::Result<DexFile> ParseDex(std::span<const uint8_t> bytes);

}  // namespace apichecker::apk

#endif  // APICHECKER_APK_DEX_H_
