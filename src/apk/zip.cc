#include "apk/zip.h"

#include "util/byte_io.h"
#include "util/crc32.h"

namespace apichecker::apk {

namespace {

constexpr uint32_t kLocalHeaderSig = 0x04034b50;    // "PK\3\4"
constexpr uint32_t kCentralDirSig = 0x02014b50;     // "PK\1\2"
constexpr uint32_t kEndOfCentralDirSig = 0x06054b50;  // "PK\5\6"
constexpr uint16_t kVersion = 20;
constexpr uint16_t kMethodStored = 0;

}  // namespace

void ZipWriter::AddEntry(const std::string& name, std::span<const uint8_t> data) {
  EntryMeta meta;
  meta.name = name;
  meta.crc32 = util::Crc32(data);
  meta.size = static_cast<uint32_t>(data.size());
  meta.local_header_offset = static_cast<uint32_t>(payload_.size());

  util::ByteWriter header;
  header.PutU32(kLocalHeaderSig);
  header.PutU16(kVersion);   // Version needed to extract.
  header.PutU16(0);          // General-purpose flags.
  header.PutU16(kMethodStored);
  header.PutU16(0);          // Mod time.
  header.PutU16(0);          // Mod date.
  header.PutU32(meta.crc32);
  header.PutU32(meta.size);  // Compressed size (== raw: stored).
  header.PutU32(meta.size);  // Uncompressed size.
  header.PutU16(static_cast<uint16_t>(name.size()));
  header.PutU16(0);          // Extra field length.
  const auto& header_bytes = header.bytes();
  payload_.insert(payload_.end(), header_bytes.begin(), header_bytes.end());
  payload_.insert(payload_.end(), name.begin(), name.end());
  payload_.insert(payload_.end(), data.begin(), data.end());

  entries_.push_back(std::move(meta));
}

std::vector<uint8_t> ZipWriter::Finish() {
  const uint32_t central_dir_offset = static_cast<uint32_t>(payload_.size());
  util::ByteWriter central;
  for (const EntryMeta& meta : entries_) {
    central.PutU32(kCentralDirSig);
    central.PutU16(kVersion);  // Version made by.
    central.PutU16(kVersion);  // Version needed.
    central.PutU16(0);         // Flags.
    central.PutU16(kMethodStored);
    central.PutU16(0);  // Time.
    central.PutU16(0);  // Date.
    central.PutU32(meta.crc32);
    central.PutU32(meta.size);
    central.PutU32(meta.size);
    central.PutU16(static_cast<uint16_t>(meta.name.size()));
    central.PutU16(0);  // Extra length.
    central.PutU16(0);  // Comment length.
    central.PutU16(0);  // Disk number.
    central.PutU16(0);  // Internal attributes.
    central.PutU32(0);  // External attributes.
    central.PutU32(meta.local_header_offset);
    central.PutBytes(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(meta.name.data()), meta.name.size()));
  }
  const auto& central_bytes = central.bytes();
  const uint32_t central_dir_size = static_cast<uint32_t>(central_bytes.size());
  payload_.insert(payload_.end(), central_bytes.begin(), central_bytes.end());

  util::ByteWriter eocd;
  eocd.PutU32(kEndOfCentralDirSig);
  eocd.PutU16(0);  // Disk number.
  eocd.PutU16(0);  // Central dir start disk.
  eocd.PutU16(static_cast<uint16_t>(entries_.size()));
  eocd.PutU16(static_cast<uint16_t>(entries_.size()));
  eocd.PutU32(central_dir_size);
  eocd.PutU32(central_dir_offset);
  eocd.PutU16(0);  // Comment length.
  const auto& eocd_bytes = eocd.bytes();
  payload_.insert(payload_.end(), eocd_bytes.begin(), eocd_bytes.end());

  entries_.clear();
  return std::move(payload_);
}

util::Result<ZipReader> ZipReader::Parse(std::span<const uint8_t> bytes) {
  // EOCD is 22 bytes when the comment is empty; scan backwards for the
  // signature to tolerate trailing comments.
  if (bytes.size() < 22) {
    return util::Err("archive too small for EOCD");
  }
  size_t eocd_offset = bytes.size();
  for (size_t candidate = bytes.size() - 22 + 1; candidate-- > 0;) {
    if (bytes[candidate] == 0x50 && bytes[candidate + 1] == 0x4b &&
        bytes[candidate + 2] == 0x05 && bytes[candidate + 3] == 0x06) {
      eocd_offset = candidate;
      break;
    }
  }
  if (eocd_offset == bytes.size()) {
    return util::Err("missing end-of-central-directory record");
  }

  util::ByteReader eocd(bytes.subspan(eocd_offset));
  (void)eocd.ReadU32();  // Signature (verified above).
  (void)eocd.ReadU16();  // Disk number.
  (void)eocd.ReadU16();  // Start disk.
  auto entries_this_disk = eocd.ReadU16();
  auto total_entries = eocd.ReadU16();
  auto central_size = eocd.ReadU32();
  auto central_offset = eocd.ReadU32();
  if (!entries_this_disk.ok() || !total_entries.ok() || !central_size.ok() ||
      !central_offset.ok()) {
    return util::Err("truncated EOCD");
  }
  // 64-bit arithmetic: both fields are attacker-controlled uint32s whose sum
  // can wrap at 32 bits and sneak past the bounds check.
  if (static_cast<uint64_t>(*central_offset) + *central_size > bytes.size()) {
    return util::Err("central directory out of bounds");
  }
  if (*total_entries == 0) {
    return util::Err("zero-entry archive");
  }

  ZipReader reader;
  util::ByteReader central(bytes.subspan(*central_offset, *central_size));
  for (uint16_t i = 0; i < *total_entries; ++i) {
    auto sig = central.ReadU32();
    if (!sig.ok() || *sig != kCentralDirSig) {
      return util::Err("bad central directory signature");
    }
    (void)central.ReadU16();  // Version made by.
    (void)central.ReadU16();  // Version needed.
    (void)central.ReadU16();  // Flags.
    auto method = central.ReadU16();
    (void)central.ReadU16();  // Time.
    (void)central.ReadU16();  // Date.
    auto crc = central.ReadU32();
    auto comp_size = central.ReadU32();
    auto uncomp_size = central.ReadU32();
    auto name_len = central.ReadU16();
    auto extra_len = central.ReadU16();
    auto comment_len = central.ReadU16();
    (void)central.ReadU16();  // Disk number.
    (void)central.ReadU16();  // Internal attributes.
    (void)central.ReadU32();  // External attributes.
    auto local_offset = central.ReadU32();
    if (!method.ok() || !crc.ok() || !comp_size.ok() || !uncomp_size.ok() || !name_len.ok() ||
        !extra_len.ok() || !comment_len.ok() || !local_offset.ok()) {
      return util::Err("truncated central directory record");
    }
    if (*method != kMethodStored) {
      return util::Err("unsupported compression method");
    }
    auto name_bytes = central.ReadBytes(*name_len);
    if (!name_bytes.ok()) {
      return util::Err("truncated entry name");
    }
    auto skipped = central.ReadBytes(static_cast<size_t>(*extra_len) + *comment_len);
    if (!skipped.ok()) {
      return util::Err("truncated entry extra/comment");
    }

    // Jump to the local header and cross-check before extracting data.
    util::ByteReader local(bytes);
    if (!local.Seek(*local_offset).ok()) {
      return util::Err("local header offset out of bounds");
    }
    auto local_sig = local.ReadU32();
    if (!local_sig.ok() || *local_sig != kLocalHeaderSig) {
      return util::Err("bad local header signature");
    }
    (void)local.ReadU16();  // Version.
    (void)local.ReadU16();  // Flags.
    (void)local.ReadU16();  // Method.
    (void)local.ReadU16();  // Time.
    (void)local.ReadU16();  // Date.
    (void)local.ReadU32();  // CRC.
    (void)local.ReadU32();  // Compressed size.
    (void)local.ReadU32();  // Uncompressed size.
    auto local_name_len = local.ReadU16();
    auto local_extra_len = local.ReadU16();
    if (!local_name_len.ok() || !local_extra_len.ok()) {
      return util::Err("truncated local header");
    }
    auto local_name = local.ReadBytes(*local_name_len);
    auto local_extra = local.ReadBytes(*local_extra_len);
    if (!local_name.ok() || !local_extra.ok()) {
      return util::Err("truncated local header name");
    }
    auto data = local.ReadBytes(*uncomp_size);
    if (!data.ok()) {
      return util::Err("truncated entry data");
    }
    if (util::Crc32(*data) != *crc) {
      return util::Err("CRC mismatch for entry '" +
                       std::string(name_bytes->begin(), name_bytes->end()) + "'");
    }

    ZipEntry entry;
    entry.name.assign(name_bytes->begin(), name_bytes->end());
    entry.data = std::move(*data);
    reader.entries_.push_back(std::move(entry));
  }
  return reader;
}

const std::vector<uint8_t>* ZipReader::Find(const std::string& name) const {
  for (const ZipEntry& entry : entries_) {
    if (entry.name == name) {
      return &entry.data;
    }
  }
  return nullptr;
}

}  // namespace apichecker::apk
