// Deterministic model of the Android framework API surface (~50K APIs at SDK
// level 27, paper §1/§4.3). Each API carries the metadata the detection
// pipeline consumes:
//
//  * a permission requirement with its protection level (the Axplorer/PScout
//    permission-map analogue used for Set-P, §4.4 Step 2),
//  * a sensitive-operation category (domain knowledge behind Set-S, Step 3),
//  * whether the API carries Intent parameters observable when hooked (§4.5),
//  * popularity / invocation-rate statistics that drive the corpus generator
//    and the emulation cost model (Figs 2, 3, 6),
//  * an `attacker_useful` hint marking functionality that malware families
//    disproportionately exercise (the latent ground truth behind Set-C), and
//  * an intra-SDK dependency edge (`implemented_via`) modelling §5.4's
//    finding that 4,816 additional APIs are implemented on top of key APIs.
//
// The universe also evolves: AddSdkLevel() appends new APIs, as the market
// simulator does monthly (§5.3, Fig 14).

#ifndef APICHECKER_ANDROID_API_UNIVERSE_H_
#define APICHECKER_ANDROID_API_UNIVERSE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "android/catalogues.h"
#include "android/types.h"

namespace apichecker::android {

struct ApiInfo {
  std::string name;                      // package.Class.method
  Protection protection = Protection::kNone;
  int32_t permission = -1;               // PermissionId or -1.
  SensitiveOp sensitive = SensitiveOp::kNone;
  bool intent_related = false;           // Hooking it reveals Intent params.
  bool attacker_useful = false;          // Latent malware-utility hint.
  bool common_op = false;                // Ubiquitous benign plumbing (file IO etc).
  uint16_t sdk_level = 0;                // SDK level that introduced the API.
  float popularity = 0.0f;               // P(a typical benign app uses it).
  float invocations_per_kevent = 0.0f;   // Mean invocations per 1K Monkey events when used.
  int32_t implemented_via = -1;          // ApiId its implementation delegates to, or -1.
};

struct UniverseConfig {
  size_t num_apis = 50'000;
  uint64_t seed = 0x20180301;
  uint16_t base_sdk_level = 27;
  size_t num_restrictive_apis = 112;     // |Set-P| ground truth (paper: 112).
  size_t num_sensitive_apis = 70;        // |Set-S| ground truth (paper: 70).
  size_t num_attacker_useful = 310;      // Latent Set-C candidate pool.
  double dependency_fraction = 0.096;    // §5.4: 9.6% of APIs delegate to key APIs.
  // Mean framework API invocations per Monkey event for a typical app
  // (paper §4.3: one event triggers ~8,460 invocations).
  double invocations_per_event = 8'460.0;
};

class ApiUniverse {
 public:
  static ApiUniverse Generate(const UniverseConfig& config);

  size_t num_apis() const { return apis_.size(); }
  const ApiInfo& api(ApiId id) const { return apis_.at(id); }
  const std::vector<PermissionInfo>& permissions() const { return permissions_; }
  const std::vector<std::string>& intents() const { return intents_; }
  uint16_t sdk_level() const { return sdk_level_; }
  const UniverseConfig& config() const { return config_; }

  // APIs guarded by dangerous/signature permissions (Set-P candidates).
  std::vector<ApiId> RestrictivePermissionApis() const;
  // APIs performing sensitive operations (Set-S candidates).
  std::vector<ApiId> SensitiveOperationApis() const;
  // Latent attacker-useful plain APIs (ground-truth Set-C pool; the pipeline
  // never reads this directly — it must re-discover them via SRC).
  std::vector<ApiId> AttackerUsefulApis() const;
  // Ubiquitous common-operation APIs (the "13 frequent negatives" cluster).
  std::vector<ApiId> CommonOpApis() const;

  // All APIs whose implementation transitively delegates to any API in
  // `roots` (§5.4 coverage scan). Does not include the roots themselves.
  std::vector<ApiId> TransitiveDependents(std::span<const ApiId> roots) const;

  std::optional<ApiId> FindByName(const std::string& name) const;

  // Appends `count` new APIs introduced by a new SDK level; returns their
  // ids. A small fraction are restrictive/sensitive/attacker-useful so the
  // key-API set genuinely drifts over time (Fig 14).
  std::vector<ApiId> AddSdkLevel(uint16_t level, size_t count, uint64_t seed);

 private:
  ApiUniverse() = default;

  ApiId AddApi(ApiInfo info);

  UniverseConfig config_;
  std::vector<ApiInfo> apis_;
  std::vector<PermissionInfo> permissions_;
  std::vector<std::string> intents_;
  std::unordered_map<std::string, ApiId> name_index_;
  uint16_t sdk_level_ = 0;
};

}  // namespace apichecker::android

#endif  // APICHECKER_ANDROID_API_UNIVERSE_H_
