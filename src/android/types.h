// Shared identifier types for the modelled Android framework.

#ifndef APICHECKER_ANDROID_TYPES_H_
#define APICHECKER_ANDROID_TYPES_H_

#include <cstdint>

namespace apichecker::android {

// Index into ApiUniverse::api().
using ApiId = uint32_t;

// Index into ApiUniverse::permissions().
using PermissionId = uint16_t;

// Index into ApiUniverse::intents().
using IntentId = uint16_t;

// Android permission protection levels (paper §4.4 Step 2): APIs guarded by
// dangerous- or signature-level permissions are "restrictive" and form Set-P.
enum class Protection : uint8_t {
  kNone = 0,       // No permission required.
  kNormal = 1,
  kDangerous = 2,
  kSignature = 3,
};

inline bool IsRestrictive(Protection p) {
  return p == Protection::kDangerous || p == Protection::kSignature;
}

// Sensitive-operation taxonomy (paper §4.4 Step 3): five categories commonly
// exploited for attacks.
enum class SensitiveOp : uint8_t {
  kNone = 0,
  kPrivilegeEscalation = 1,  // e.g. shell command execution (root exploits).
  kDataAccess = 2,           // Database/file IO used in privacy leakage.
  kComponentOp = 3,          // Window/overlay creation, Activity hijacking.
  kCrypto = 4,               // Cryptographic ops used by ransomware.
  kDynamicCode = 5,          // Runtime payload loading (update attacks).
};

const char* SensitiveOpName(SensitiveOp op);
const char* ProtectionName(Protection p);

}  // namespace apichecker::android

#endif  // APICHECKER_ANDROID_TYPES_H_
