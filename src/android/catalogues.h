// Static catalogues of Android permissions and broadcast/action intents used
// by the modelled framework. Names follow the real Android SDK so reports
// (e.g. the Fig. 13 Gini-importance listing) read like the paper's.

#ifndef APICHECKER_ANDROID_CATALOGUES_H_
#define APICHECKER_ANDROID_CATALOGUES_H_

#include <string>
#include <vector>

#include "android/types.h"

namespace apichecker::android {

struct PermissionInfo {
  std::string name;
  Protection level = Protection::kNormal;
};

// ~60 permissions spanning normal/dangerous/signature levels, including every
// permission named in the paper's Fig. 13.
std::vector<PermissionInfo> BuiltinPermissions();

// ~48 broadcast actions / intent actions, including every intent named in the
// paper's Fig. 13 (SMS_RECEIVED, wifi.STATE_CHANGE, DEVICE_ADMIN_ENABLED,
// bluetooth.STATE_CHANGED, ACTION_BATTERY_OKAY, ...).
std::vector<std::string> BuiltinIntents();

}  // namespace apichecker::android

#endif  // APICHECKER_ANDROID_CATALOGUES_H_
