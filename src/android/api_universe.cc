#include "android/api_universe.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"
#include "util/strings.h"

namespace apichecker::android {

namespace {

const char* const kPackages[] = {
    "android.app",      "android.content",  "android.view",     "android.widget",
    "android.net",      "android.os",       "android.telephony", "android.database",
    "android.media",    "android.graphics", "android.location", "android.bluetooth",
    "android.hardware", "android.util",     "java.io",          "java.net",
    "java.lang",        "java.util",        "javax.crypto",     "android.webkit",
    "android.provider", "android.accounts", "android.nfc",      "android.print",
};

const char* const kClassPrefixes[] = {
    "Activity", "Package", "Window",  "Media",   "Sensor",  "Telephony", "Storage",
    "Account",  "Display", "Input",   "Network", "Power",   "Sync",      "Download",
    "Backup",   "Print",   "Usb",     "Wallpaper", "Clipboard", "Search",
};

const char* const kClassSuffixes[] = {
    "Manager", "Service", "Provider", "Helper", "Session",
    "Controller", "Monitor", "Adapter", "Client", "Registry",
};

const char* const kMethodVerbs[] = {
    "get",  "set",     "query",  "update",     "open",   "close",  "start",
    "stop", "register", "unregister", "create", "delete", "send",  "read",
    "write", "request", "bind",   "notify",     "load",   "apply",
};

const char* const kMethodNouns[] = {
    "State", "Info",   "Config", "Data",   "Event", "Session", "Task",
    "Record", "Buffer", "Handle", "Status", "Value", "List",    "Item",
    "Channel", "Token", "Policy", "Cache",  "Stream", "Lock",
};

// Unique framework-looking name for bulk API number `i` (mixed radix over
// the name pools; capacity 24*20*10*20*20 = 1.92M >> 50K).
std::string SynthesizeName(uint64_t i) {
  const uint64_t pkg = i % std::size(kPackages);
  i /= std::size(kPackages);
  const uint64_t cls_prefix = i % std::size(kClassPrefixes);
  i /= std::size(kClassPrefixes);
  const uint64_t cls_suffix = i % std::size(kClassSuffixes);
  i /= std::size(kClassSuffixes);
  const uint64_t verb = i % std::size(kMethodVerbs);
  i /= std::size(kMethodVerbs);
  const uint64_t noun = i % std::size(kMethodNouns);
  i /= std::size(kMethodNouns);
  std::string name = util::StrFormat("%s.%s%s.%s%s", kPackages[pkg], kClassPrefixes[cls_prefix],
                                     kClassSuffixes[cls_suffix], kMethodVerbs[verb],
                                     kMethodNouns[noun]);
  if (i > 0) {
    name += util::StrFormat("%llu", static_cast<unsigned long long>(i));
  }
  return name;
}

struct AnchorSpec {
  const char* name;
  const char* permission;  // nullptr = none.
  SensitiveOp sensitive;
  bool intent_related;
  bool attacker_useful;
  bool common_op;
  float popularity;
  float invocations_per_kevent;
};

// The seven key APIs named in the paper's Fig. 13 plus the intent-carrying
// framework entry points tracked for auxiliary intent features (§4.5).
constexpr AnchorSpec kKeyAnchors[] = {
    {"android.telephony.SmsManager.sendTextMessage", "android.permission.SEND_SMS",
     SensitiveOp::kNone, false, true, false, 0.015f, 6.0f},
    {"android.telephony.TelephonyManager.getLine1Number", "android.permission.READ_PHONE_STATE",
     SensitiveOp::kNone, false, true, false, 0.03f, 10.0f},
    {"android.net.wifi.WifiInfo.getMacAddress", nullptr, SensitiveOp::kDataAccess, false, true,
     false, 0.04f, 14.0f},
    {"android.view.View.setBackgroundColor", nullptr, SensitiveOp::kComponentOp, false, true,
     false, 0.30f, 900.0f},
    {"android.database.sqlite.SQLiteDatabase.insertWithOnConflict", nullptr,
     SensitiveOp::kDataAccess, false, true, false, 0.10f, 220.0f},
    {"java.net.HttpURLConnection.connect", nullptr, SensitiveOp::kDataAccess, false, true, false,
     0.45f, 120.0f},
    {"android.app.ActivityManager.getRunningTasks", nullptr, SensitiveOp::kDataAccess, false,
     true, false, 0.05f, 25.0f},
    // Intent-carrying APIs: hooking them exposes used intents (Set-S, §4.5).
    {"android.content.Context.startActivity", nullptr, SensitiveOp::kComponentOp, true, false,
     false, 0.92f, 60.0f},
    {"android.content.Context.sendBroadcast", nullptr, SensitiveOp::kComponentOp, true, true,
     false, 0.35f, 40.0f},
    {"android.content.Context.registerReceiver", nullptr, SensitiveOp::kComponentOp, true, true,
     false, 0.55f, 18.0f},
    {"android.content.Context.startService", nullptr, SensitiveOp::kComponentOp, true, false,
     false, 0.40f, 22.0f},
    {"android.content.Context.bindService", nullptr, SensitiveOp::kComponentOp, true, false,
     false, 0.30f, 16.0f},
    {"android.content.Intent.setAction", nullptr, SensitiveOp::kComponentOp, true, false, false,
     0.80f, 85.0f},
    // Dynamic code loading / privilege escalation / crypto exemplars.
    {"java.lang.Runtime.exec", nullptr, SensitiveOp::kPrivilegeEscalation, false, true, false,
     0.02f, 4.0f},
    {"dalvik.system.DexClassLoader.loadClass", nullptr, SensitiveOp::kDynamicCode, false, true,
     false, 0.015f, 8.0f},
    {"javax.crypto.Cipher.doFinal", nullptr, SensitiveOp::kCrypto, false, true, false, 0.08f,
     45.0f},
    {"android.view.WindowManager.addView", "android.permission.SYSTEM_ALERT_WINDOW",
     SensitiveOp::kComponentOp, false, true, false, 0.06f, 12.0f},
};

// Ubiquitous benign plumbing: invoked by nearly every app, underused by
// (simple) malware — the "13 frequent APIs with SRC <= -0.2" cluster (§4.3).
constexpr AnchorSpec kCommonOpAnchors[] = {
    {"java.io.File.exists", nullptr, SensitiveOp::kNone, false, false, true, 0.97f, 73.0f},
    {"java.io.FileInputStream.read", nullptr, SensitiveOp::kNone, false, false, true, 0.95f,
     131.0f},
    {"java.io.FileOutputStream.write", nullptr, SensitiveOp::kNone, false, false, true, 0.94f,
     122.0f},
    {"java.lang.StringBuilder.append", nullptr, SensitiveOp::kNone, false, false, true, 0.99f,
     245.0f},
    {"java.util.HashMap.put", nullptr, SensitiveOp::kNone, false, false, true, 0.99f, 204.0f},
    {"android.util.Log.d", nullptr, SensitiveOp::kNone, false, false, true, 0.96f, 172.0f},
    {"android.content.SharedPreferences.getString", nullptr, SensitiveOp::kNone, false, false,
     true, 0.93f, 245.0f},
    {"android.os.Handler.post", nullptr, SensitiveOp::kNone, false, false, true, 0.97f, 106.0f},
    {"android.graphics.Canvas.drawRect", nullptr, SensitiveOp::kNone, false, false, true, 0.88f,
     98.0f},
    {"android.view.LayoutInflater.inflate", nullptr, SensitiveOp::kNone, false, false, true,
     0.98f, 326.0f},
    {"java.lang.Thread.start", nullptr, SensitiveOp::kNone, false, false, true, 0.98f, 49.0f},
    {"java.net.URL.openConnection", nullptr, SensitiveOp::kNone, false, false, true, 0.90f,
     25.0f},
    {"android.widget.TextView.setText", nullptr, SensitiveOp::kNone, false, false, true, 0.99f,
     155.0f},
};

constexpr SensitiveOp kSensitiveCategories[] = {
    SensitiveOp::kPrivilegeEscalation, SensitiveOp::kDataAccess, SensitiveOp::kComponentOp,
    SensitiveOp::kCrypto, SensitiveOp::kDynamicCode,
};

}  // namespace

const char* SensitiveOpName(SensitiveOp op) {
  switch (op) {
    case SensitiveOp::kNone:
      return "none";
    case SensitiveOp::kPrivilegeEscalation:
      return "privilege-escalation";
    case SensitiveOp::kDataAccess:
      return "data-access";
    case SensitiveOp::kComponentOp:
      return "component-op";
    case SensitiveOp::kCrypto:
      return "crypto";
    case SensitiveOp::kDynamicCode:
      return "dynamic-code";
  }
  return "?";
}

const char* ProtectionName(Protection p) {
  switch (p) {
    case Protection::kNone:
      return "none";
    case Protection::kNormal:
      return "normal";
    case Protection::kDangerous:
      return "dangerous";
    case Protection::kSignature:
      return "signature";
  }
  return "?";
}

ApiId ApiUniverse::AddApi(ApiInfo info) {
  const ApiId id = static_cast<ApiId>(apis_.size());
  name_index_.emplace(info.name, id);
  apis_.push_back(std::move(info));
  return id;
}

ApiUniverse ApiUniverse::Generate(const UniverseConfig& config) {
  ApiUniverse universe;
  universe.config_ = config;
  universe.sdk_level_ = config.base_sdk_level;
  universe.permissions_ = BuiltinPermissions();
  universe.intents_ = BuiltinIntents();
  universe.apis_.reserve(config.num_apis);

  util::Rng rng(config.seed);

  auto permission_id = [&](const char* name) -> int32_t {
    if (name == nullptr) {
      return -1;
    }
    for (size_t i = 0; i < universe.permissions_.size(); ++i) {
      if (universe.permissions_[i].name == name) {
        return static_cast<int32_t>(i);
      }
    }
    assert(false && "unknown anchor permission");
    return -1;
  };
  auto protection_of = [&](int32_t perm) {
    return perm < 0 ? Protection::kNone
                    : universe.permissions_[static_cast<size_t>(perm)].level;
  };

  // 1. Curated anchors.
  auto add_anchor = [&](const AnchorSpec& spec) {
    ApiInfo info;
    info.name = spec.name;
    info.permission = permission_id(spec.permission);
    info.protection = protection_of(info.permission);
    info.sensitive = spec.sensitive;
    info.intent_related = spec.intent_related;
    info.attacker_useful = spec.attacker_useful;
    info.common_op = spec.common_op;
    info.sdk_level = 1;
    info.popularity = spec.popularity;
    info.invocations_per_kevent = spec.invocations_per_kevent;
    universe.AddApi(std::move(info));
  };
  for (const AnchorSpec& spec : kKeyAnchors) {
    add_anchor(spec);
  }
  for (const AnchorSpec& spec : kCommonOpAnchors) {
    add_anchor(spec);
  }

  // Count curated members of the special pools.
  size_t num_restrictive = 0, num_sensitive = 0, num_useful = 0;
  for (const ApiInfo& info : universe.apis_) {
    num_restrictive += IsRestrictive(info.protection) ? 1 : 0;
    num_sensitive += info.sensitive != SensitiveOp::kNone ? 1 : 0;
    num_useful += info.attacker_useful ? 1 : 0;
  }

  // Restrictive permissions available for assignment.
  std::vector<int32_t> restrictive_permissions;
  for (size_t i = 0; i < universe.permissions_.size(); ++i) {
    if (IsRestrictive(universe.permissions_[i].level)) {
      restrictive_permissions.push_back(static_cast<int32_t>(i));
    }
  }

  uint64_t name_counter = 1;  // Offsets bulk names away from anchor space.

  // 2. Sensitive-operation APIs up to the configured pool size. Two of them
  // also carry restrictive permissions (the paper's Set-P/Set-S overlap),
  // and a handful are attacker-useful (the Set-C overlap).
  size_t sensitive_with_permission = 0;
  size_t extra_useful_sensitive = 0;
  while (num_sensitive < config.num_sensitive_apis) {
    ApiInfo info;
    info.name = SynthesizeName(name_counter++);
    info.sensitive = kSensitiveCategories[num_sensitive % std::size(kSensitiveCategories)];
    if (sensitive_with_permission < 2) {
      info.permission =
          restrictive_permissions[rng.NextBounded(restrictive_permissions.size())];
      info.protection = protection_of(info.permission);
      ++sensitive_with_permission;
      ++num_restrictive;
    }
    // ~5 generated sensitive APIs malware visibly overuses (Set-C overlap).
    if (extra_useful_sensitive < 5 && rng.Bernoulli(0.1)) {
      info.attacker_useful = true;
      ++extra_useful_sensitive;
      ++num_useful;
    }
    info.sdk_level = 1;
    info.popularity = static_cast<float>(rng.Uniform(0.005, 0.12));
    info.invocations_per_kevent = static_cast<float>(rng.LogNormal(25.0, 1.0));
    universe.AddApi(std::move(info));
    ++num_sensitive;
  }

  // 3. Restrictive-permission APIs up to the configured pool size; ~9 total
  // restrictive APIs end up attacker-useful (Set-C/Set-P overlap).
  size_t useful_restrictive = 0;
  for (const ApiInfo& info : universe.apis_) {
    if (IsRestrictive(info.protection) && info.attacker_useful) {
      ++useful_restrictive;
    }
  }
  while (num_restrictive < config.num_restrictive_apis) {
    ApiInfo info;
    info.name = SynthesizeName(name_counter++);
    info.permission = restrictive_permissions[rng.NextBounded(restrictive_permissions.size())];
    info.protection = protection_of(info.permission);
    if (useful_restrictive < 9 && rng.Bernoulli(0.08)) {
      info.attacker_useful = true;
      ++useful_restrictive;
      ++num_useful;
    }
    info.sdk_level = 1;
    info.popularity = static_cast<float>(rng.Uniform(0.002, 0.08));
    info.invocations_per_kevent = static_cast<float>(rng.LogNormal(15.0, 1.0));
    universe.AddApi(std::move(info));
    ++num_restrictive;
  }

  // 4. Plain attacker-useful APIs (the bulk of the latent Set-C pool).
  while (num_useful < config.num_attacker_useful) {
    ApiInfo info;
    info.name = SynthesizeName(name_counter++);
    info.attacker_useful = true;
    info.sdk_level = 1;
    // Moderately popular: the paper's correlated APIs are invoked with
    // "moderate frequency" (§4.3), not from the rare tail.
    info.popularity = static_cast<float>(rng.Uniform(0.015, 0.08));
    info.invocations_per_kevent = static_cast<float>(rng.LogNormal(40.0, 0.8));
    universe.AddApi(std::move(info));
    ++num_useful;
  }

  // 5. Bulk framework APIs with Zipf-ranked popularity: a hot head (UI and
  // collection plumbing) and a long rare tail.
  size_t bulk_rank = 0;
  while (universe.apis_.size() < config.num_apis) {
    ApiInfo info;
    info.name = SynthesizeName(name_counter++);
    info.sdk_level = 1;
    const double pop =
        std::min(0.95, 2.8 / std::pow(static_cast<double>(bulk_rank) + 3.0, 0.55));
    info.popularity = static_cast<float>(pop * rng.Uniform(0.8, 1.2));
    // Invocation rate is decoupled from adoption except for the hot head
    // (UI/collection plumbing): an API most apps *use occasionally* is not
    // an API apps *hammer*.
    const double hot = std::max(0.0, static_cast<double>(info.popularity) - 0.55) / 0.45;
    info.invocations_per_kevent =
        static_cast<float>(rng.LogNormal(8.0 + 2600.0 * hot * hot, 0.9));
    universe.AddApi(std::move(info));
    ++bulk_rank;
  }

  // 6. Normalize invocation rates so a typical app triggers the configured
  // number of API invocations per Monkey event (paper: ~8,460).
  double expected_per_kevent = 0.0;
  for (const ApiInfo& info : universe.apis_) {
    expected_per_kevent +=
        static_cast<double>(info.popularity) * static_cast<double>(info.invocations_per_kevent);
  }
  const double target_per_kevent = config.invocations_per_event * 1000.0;
  if (expected_per_kevent > 0.0) {
    const double scale = target_per_kevent / expected_per_kevent;
    for (ApiInfo& info : universe.apis_) {
      info.invocations_per_kevent = static_cast<float>(info.invocations_per_kevent * scale);
    }
  }

  // 7. Intra-SDK dependencies: a slice of ordinary APIs is implemented via
  // the special pools (§5.4's 9.6% coverage amplification).
  std::vector<ApiId> special;
  for (ApiId id = 0; id < universe.apis_.size(); ++id) {
    const ApiInfo& info = universe.apis_[id];
    if (IsRestrictive(info.protection) || info.sensitive != SensitiveOp::kNone ||
        info.attacker_useful) {
      special.push_back(id);
    }
  }
  for (ApiId id = 0; id < universe.apis_.size(); ++id) {
    ApiInfo& info = universe.apis_[id];
    const bool is_special = IsRestrictive(info.protection) ||
                            info.sensitive != SensitiveOp::kNone || info.attacker_useful ||
                            info.common_op;
    if (!is_special && rng.Bernoulli(config.dependency_fraction)) {
      info.implemented_via = static_cast<int32_t>(special[rng.NextBounded(special.size())]);
    }
  }

  return universe;
}

std::vector<ApiId> ApiUniverse::RestrictivePermissionApis() const {
  std::vector<ApiId> ids;
  for (ApiId id = 0; id < apis_.size(); ++id) {
    if (IsRestrictive(apis_[id].protection)) {
      ids.push_back(id);
    }
  }
  return ids;
}

std::vector<ApiId> ApiUniverse::SensitiveOperationApis() const {
  std::vector<ApiId> ids;
  for (ApiId id = 0; id < apis_.size(); ++id) {
    if (apis_[id].sensitive != SensitiveOp::kNone) {
      ids.push_back(id);
    }
  }
  return ids;
}

std::vector<ApiId> ApiUniverse::AttackerUsefulApis() const {
  std::vector<ApiId> ids;
  for (ApiId id = 0; id < apis_.size(); ++id) {
    if (apis_[id].attacker_useful) {
      ids.push_back(id);
    }
  }
  return ids;
}

std::vector<ApiId> ApiUniverse::CommonOpApis() const {
  std::vector<ApiId> ids;
  for (ApiId id = 0; id < apis_.size(); ++id) {
    if (apis_[id].common_op) {
      ids.push_back(id);
    }
  }
  return ids;
}

std::vector<ApiId> ApiUniverse::TransitiveDependents(std::span<const ApiId> roots) const {
  std::vector<uint8_t> in_closure(apis_.size(), 0);
  for (ApiId id : roots) {
    in_closure.at(id) = 1;
  }
  // implemented_via edges always point at older (lower-id) APIs, so one
  // ascending pass reaches a fixed point.
  std::vector<ApiId> dependents;
  for (ApiId id = 0; id < apis_.size(); ++id) {
    const int32_t via = apis_[id].implemented_via;
    if (via >= 0 && in_closure[static_cast<size_t>(via)] && !in_closure[id]) {
      in_closure[id] = 1;
      dependents.push_back(id);
    }
  }
  return dependents;
}

std::optional<ApiId> ApiUniverse::FindByName(const std::string& name) const {
  const auto it = name_index_.find(name);
  if (it == name_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<ApiId> ApiUniverse::AddSdkLevel(uint16_t level, size_t count, uint64_t seed) {
  assert(level > sdk_level_);
  sdk_level_ = level;
  util::Rng rng(seed);

  std::vector<int32_t> restrictive_permissions;
  for (size_t i = 0; i < permissions_.size(); ++i) {
    if (IsRestrictive(permissions_[i].level)) {
      restrictive_permissions.push_back(static_cast<int32_t>(i));
    }
  }

  std::vector<ApiId> added;
  added.reserve(count);
  const uint64_t name_base = 500'000ull * level;
  for (size_t i = 0; i < count; ++i) {
    ApiInfo info;
    info.name = SynthesizeName(name_base + i);
    info.sdk_level = level;
    if (rng.Bernoulli(0.02)) {
      info.permission =
          restrictive_permissions[rng.NextBounded(restrictive_permissions.size())];
      info.protection = permissions_[static_cast<size_t>(info.permission)].level;
    } else if (rng.Bernoulli(0.02)) {
      info.sensitive = kSensitiveCategories[rng.NextBounded(std::size(kSensitiveCategories))];
    }
    if (rng.Bernoulli(0.03)) {
      info.attacker_useful = true;
    }
    // New APIs start unpopular and gain adoption in the corpus generator.
    info.popularity = static_cast<float>(rng.Uniform(0.001, 0.02));
    info.invocations_per_kevent = static_cast<float>(rng.LogNormal(30.0, 1.0));
    added.push_back(AddApi(std::move(info)));
  }
  return added;
}

}  // namespace apichecker::android
