#include "emu/coverage.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace apichecker::emu {

double ExpectedRac(uint32_t num_events, const CoverageModelParams& params) {
  return params.mean_cap *
         (1.0 - std::exp(-static_cast<double>(num_events) / params.tau_events));
}

CoverageResult ComputeCoverage(uint32_t num_events, uint32_t referenced_count,
                               uint64_t app_seed, const CoverageModelParams& params) {
  CoverageResult result;
  result.covered.assign(referenced_count, false);
  if (referenced_count == 0) {
    return result;
  }
  util::Rng rng(util::SplitMix64(app_seed ^ 0xc0ffee));
  const double cap =
      std::clamp(rng.Normal(params.mean_cap, params.cap_stddev), 0.55, 1.0);
  const double fraction =
      cap * (1.0 - std::exp(-static_cast<double>(num_events) / params.tau_events));
  // Rounded stochastically so a 3-activity app doesn't quantize to the same
  // coverage at every budget.
  const double exact = fraction * static_cast<double>(referenced_count);
  uint32_t count = static_cast<uint32_t>(exact);
  if (rng.Bernoulli(exact - static_cast<double>(count))) {
    ++count;
  }
  count = std::min(count, referenced_count);

  // The covered set is a prefix of a per-app exploration order, so larger
  // event budgets strictly extend smaller ones.
  const std::vector<uint32_t> order = rng.Permutation(referenced_count);
  for (uint32_t i = 0; i < count; ++i) {
    result.covered[order[i]] = true;
  }
  result.covered_count = count;
  result.rac = static_cast<double>(count) / static_cast<double>(referenced_count);
  return result;
}

}  // namespace apichecker::emu
