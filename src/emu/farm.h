// Device farm: N concurrent emulators on one x86 server (paper §4.2/§5.1 run
// 16 emulators on 16 cores, 4 cores reserved for scheduling/monitoring/
// logging). The farm executes a batch of APKs, parallelized over a real
// thread pool, and additionally reports the *simulated* wall-clock makespan
// (greedy first-free-emulator scheduling of per-app emulation minutes) —
// that is the quantity production throughput claims are made about.

#ifndef APICHECKER_EMU_FARM_H_
#define APICHECKER_EMU_FARM_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "emu/engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace apichecker::emu {

// One scripted fault: farm `farm_id` fails every batch whose ordinal (1-based,
// counted per farm) falls in [from_batch, to_batch]. to_batch defaults to
// "forever", which models a farm that dies and stays dead; a finite window
// models a transient outage the farm recovers from.
struct FaultWindow {
  uint32_t farm_id = 0;
  uint64_t from_batch = 1;
  uint64_t to_batch = std::numeric_limits<uint64_t>::max();
};

// Deterministic fault-injection plan for resilience testing. Built in rather
// than bolted on: the plan threads from FarmPoolConfig through the service
// down to every DeviceFarm, so tests, benches, and the CLI can exercise crash,
// flap, and slow-farm scenarios on demand. An empty plan is free: the hook is
// a single branch at the top of RunBatch.
struct FaultPlan {
  // Seeds the per-farm Bernoulli fault stream (farm_id is mixed in, so farms
  // fault independently but reproducibly).
  uint64_t seed = 1;
  // Per-batch probability that a farm faults (randomized stress mode).
  double fault_rate = 0.0;
  // Scripted faults (deterministic mode; both modes compose).
  std::vector<FaultWindow> windows;
  // Real wall-clock delay added to every batch (slow-farm simulation).
  double induced_latency_ms = 0.0;

  bool enabled() const {
    return fault_rate > 0.0 || !windows.empty() || induced_latency_ms > 0.0;
  }
};

struct FarmConfig {
  size_t num_emulators = 16;
  EngineConfig engine;
  // Worker threads for the real computation (0 = hardware concurrency).
  size_t worker_threads = 0;
  // Identity within a FarmPool; selects this farm's FaultWindows and fault
  // RNG stream.
  uint32_t farm_id = 0;
  FaultPlan fault_plan;
};

struct BatchResult {
  std::vector<EmulationReport> reports;  // One per input, input order.
  double makespan_minutes = 0.0;         // Simulated farm wall-clock.
  double total_emulation_minutes = 0.0;  // Sum of per-app minutes.
  size_t crashes = 0;
  size_t fallbacks = 0;
  // Farm-level fault: the whole batch produced no usable reports (emulator
  // server crash/hang). Callers must treat `reports` as invalid and fail the
  // batch over; serve::FarmPool retries it on a healthy farm.
  bool farm_fault = false;
  // Set (alongside farm_fault) when the failure was the transport to a remote
  // farm worker rather than the farm itself — the pool's breaker records the
  // open under a different reason label so operators can tell a sick farm
  // from a severed link.
  bool transport_fault = false;
  std::string fault_reason;
};

class DeviceFarm {
 public:
  DeviceFarm(const android::ApiUniverse& universe, FarmConfig config);

  BatchResult RunBatch(std::span<const apk::ApkFile> apks, const TrackedApiSet& tracked);

  const FarmConfig& config() const { return config_; }
  const DynamicAnalysisEngine& engine() const { return engine_; }
  // Batches attempted so far (faulted ones included).
  uint64_t batches_run() const { return batch_ordinal_.load(std::memory_order_relaxed); }

 private:
  // Returns a non-empty reason when the fault plan fires for `ordinal`.
  std::string FaultFor(uint64_t ordinal);

  FarmConfig config_;
  DynamicAnalysisEngine engine_;
  util::ThreadPool pool_;
  std::atomic<uint64_t> batch_ordinal_{0};
  std::mutex fault_mu_;  // Guards fault_rng_ (RunBatch may be called concurrently).
  util::Rng fault_rng_;
};

}  // namespace apichecker::emu

#endif  // APICHECKER_EMU_FARM_H_
