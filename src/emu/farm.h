// Device farm: N concurrent emulators on one x86 server (paper §4.2/§5.1 run
// 16 emulators on 16 cores, 4 cores reserved for scheduling/monitoring/
// logging). The farm executes a batch of APKs, parallelized over a real
// thread pool, and additionally reports the *simulated* wall-clock makespan
// (greedy first-free-emulator scheduling of per-app emulation minutes) —
// that is the quantity production throughput claims are made about.

#ifndef APICHECKER_EMU_FARM_H_
#define APICHECKER_EMU_FARM_H_

#include <cstdint>
#include <vector>

#include "emu/engine.h"
#include "util/thread_pool.h"

namespace apichecker::emu {

struct FarmConfig {
  size_t num_emulators = 16;
  EngineConfig engine;
  // Worker threads for the real computation (0 = hardware concurrency).
  size_t worker_threads = 0;
};

struct BatchResult {
  std::vector<EmulationReport> reports;  // One per input, input order.
  double makespan_minutes = 0.0;         // Simulated farm wall-clock.
  double total_emulation_minutes = 0.0;  // Sum of per-app minutes.
  size_t crashes = 0;
  size_t fallbacks = 0;
};

class DeviceFarm {
 public:
  DeviceFarm(const android::ApiUniverse& universe, FarmConfig config);

  BatchResult RunBatch(std::span<const apk::ApkFile> apks, const TrackedApiSet& tracked);

  const FarmConfig& config() const { return config_; }
  const DynamicAnalysisEngine& engine() const { return engine_; }

 private:
  FarmConfig config_;
  DynamicAnalysisEngine engine_;
  util::ThreadPool pool_;
};

}  // namespace apichecker::emu

#endif  // APICHECKER_EMU_FARM_H_
