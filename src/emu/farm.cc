#include "emu/farm.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace apichecker::emu {

DeviceFarm::DeviceFarm(const android::ApiUniverse& universe, FarmConfig config)
    : config_(config), engine_(universe, config.engine), pool_(config.worker_threads) {}

BatchResult DeviceFarm::RunBatch(std::span<const apk::ApkFile> apks,
                                 const TrackedApiSet& tracked) {
  obs::TraceSpan span("emu.run_batch");
  BatchResult result;
  result.reports.resize(apks.size());
  pool_.ParallelFor(0, apks.size(), [&](size_t i) {
    result.reports[i] = engine_.Run(apks[i], tracked);
  });

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  obs::Histogram& queue_wait = metrics.histogram(obs::names::kEmuFarmQueueWaitMinutes);

  // Simulated makespan: greedy assignment of each app (in submission order)
  // to the emulator that frees up first. The app's queue wait is the busy
  // time already scheduled on that emulator.
  std::vector<double> emulator_busy_until(std::max<size_t>(1, config_.num_emulators), 0.0);
  for (const EmulationReport& report : result.reports) {
    auto next_free =
        std::min_element(emulator_busy_until.begin(), emulator_busy_until.end());
    queue_wait.Observe(*next_free);
    *next_free += report.emulation_minutes;
    result.total_emulation_minutes += report.emulation_minutes;
    result.crashes += report.crashed ? 1 : 0;
    result.fallbacks += report.fell_back ? 1 : 0;
  }
  result.makespan_minutes =
      *std::max_element(emulator_busy_until.begin(), emulator_busy_until.end());

  metrics.counter(obs::names::kEmuFarmBatchesTotal).Increment();
  metrics.histogram(obs::names::kEmuFarmMakespanMinutes).Observe(result.makespan_minutes);
  metrics.gauge(obs::names::kEmuFarmLastMakespanMinutes).Set(result.makespan_minutes);
  return result;
}

}  // namespace apichecker::emu
