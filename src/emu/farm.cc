#include "emu/farm.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace apichecker::emu {

DeviceFarm::DeviceFarm(const android::ApiUniverse& universe, FarmConfig config)
    : config_(config), engine_(universe, config.engine), pool_(config.worker_threads),
      fault_rng_(util::SplitMix64(config.fault_plan.seed ^
                                  (0x9e3779b97f4a7c15ull * (config.farm_id + 1)))) {}

std::string DeviceFarm::FaultFor(uint64_t ordinal) {
  for (const FaultWindow& window : config_.fault_plan.windows) {
    if (window.farm_id == config_.farm_id && ordinal >= window.from_batch &&
        ordinal <= window.to_batch) {
      return util::StrFormat("scripted fault (farm %u, batch %llu)", config_.farm_id,
                             static_cast<unsigned long long>(ordinal));
    }
  }
  if (config_.fault_plan.fault_rate > 0.0) {
    std::lock_guard<std::mutex> lock(fault_mu_);
    if (fault_rng_.Bernoulli(config_.fault_plan.fault_rate)) {
      return util::StrFormat("random fault (farm %u, batch %llu, rate %.2f)",
                             config_.farm_id, static_cast<unsigned long long>(ordinal),
                             config_.fault_plan.fault_rate);
    }
  }
  return {};
}

BatchResult DeviceFarm::RunBatch(std::span<const apk::ApkFile> apks,
                                 const TrackedApiSet& tracked) {
  obs::TraceSpan span("emu.run_batch");
  BatchResult result;

  if (config_.fault_plan.enabled()) {
    const uint64_t ordinal = batch_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config_.fault_plan.induced_latency_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config_.fault_plan.induced_latency_ms));
    }
    if (std::string reason = FaultFor(ordinal); !reason.empty()) {
      result.farm_fault = true;
      result.fault_reason = std::move(reason);
      obs::MetricsRegistry::Default()
          .counter(obs::names::kEmuFarmInjectedFaultsTotal)
          .Increment();
      return result;
    }
  } else {
    batch_ordinal_.fetch_add(1, std::memory_order_relaxed);
  }

  result.reports.resize(apks.size());
  pool_.ParallelFor(0, apks.size(), [&](size_t i) {
    result.reports[i] = engine_.Run(apks[i], tracked);
  });

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  obs::Histogram& queue_wait = metrics.histogram(obs::names::kEmuFarmQueueWaitMinutes);

  // Simulated makespan: greedy assignment of each app (in submission order)
  // to the emulator that frees up first. The app's queue wait is the busy
  // time already scheduled on that emulator.
  std::vector<double> emulator_busy_until(std::max<size_t>(1, config_.num_emulators), 0.0);
  for (const EmulationReport& report : result.reports) {
    auto next_free =
        std::min_element(emulator_busy_until.begin(), emulator_busy_until.end());
    queue_wait.Observe(*next_free);
    *next_free += report.emulation_minutes;
    result.total_emulation_minutes += report.emulation_minutes;
    result.crashes += report.crashed ? 1 : 0;
    result.fallbacks += report.fell_back ? 1 : 0;
  }
  result.makespan_minutes =
      *std::max_element(emulator_busy_until.begin(), emulator_busy_until.end());

  metrics.counter(obs::names::kEmuFarmBatchesTotal).Increment();
  metrics.histogram(obs::names::kEmuFarmMakespanMinutes).Observe(result.makespan_minutes);
  metrics.gauge(obs::names::kEmuFarmLastMakespanMinutes).Set(result.makespan_minutes);
  return result;
}

}  // namespace apichecker::emu
