#include "emu/engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/names.h"
#include "util/logging.h"
#include "util/rng.h"

namespace apichecker::emu {

TrackedApiSet::TrackedApiSet(std::span<const android::ApiId> ids, size_t universe_size)
    : bitmap_(universe_size, 0), ids_(ids.begin(), ids.end()) {
  for (android::ApiId id : ids_) {
    if (id < bitmap_.size() && bitmap_[id] == 0) {
      bitmap_[id] = 1;
      ++count_;
    }
  }
}

TrackedApiSet TrackedApiSet::All(size_t universe_size) {
  std::vector<android::ApiId> ids(universe_size);
  for (size_t i = 0; i < universe_size; ++i) {
    ids[i] = static_cast<android::ApiId>(i);
  }
  return TrackedApiSet(ids, universe_size);
}

TrackedApiSet TrackedApiSet::None(size_t universe_size) {
  return TrackedApiSet({}, universe_size);
}

DynamicAnalysisEngine::DynamicAnalysisEngine(const android::ApiUniverse& universe,
                                             EngineConfig config)
    : universe_(universe), config_(config) {}

EmulationReport DynamicAnalysisEngine::Run(const apk::ApkFile& apk,
                                           const TrackedApiSet& tracked) const {
  const apk::DexFile& dex = apk.dex;
  EmulationReport report;
  report.requested_permissions = apk.manifest.permissions;
  report.manifest_intent_filters = apk.manifest.intent_filters;

  // Resolve the dex method table against the framework once.
  std::vector<int64_t> method_api(dex.method_name_idx.size(), -1);
  for (size_t m = 0; m < dex.method_name_idx.size(); ++m) {
    if (const auto id = universe_.FindByName(dex.MethodName(static_cast<uint32_t>(m)))) {
      method_api[m] = static_cast<int64_t>(*id);
    }
  }

  const uint32_t events = config_.monkey.num_events;
  const bool fuzzing = config_.exploration == ExplorationStrategy::kCoverageGuidedFuzzing;
  const CoverageResult coverage = ComputeCoverage(
      events, static_cast<uint32_t>(dex.activity_class_idx.size()), dex.behavior_seed,
      fuzzing ? config_.fuzzing_coverage : config_.coverage);
  report.rac = coverage.rac;

  // Emulator detection (§4.2): the app probes system configuration, input
  // timing, and hooking-framework artifacts. Any un-countered probe wins.
  const bool on_emulator = config_.kind != EngineKind::kRealDevice;
  bool detected = false;
  if (on_emulator && dex.detects_emulator()) {
    if (!config_.anti_detection.spoof_device_identity ||
        !config_.anti_detection.hide_hooking_framework) {
      detected = true;
    } else {
      // Timing probe: sample the Monkey stream the app would observe.
      MonkeyConfig probe = config_.monkey;
      probe.num_events = std::min<uint32_t>(256, std::max<uint32_t>(32, events));
      probe.seed = util::SplitMix64(dex.behavior_seed ^ 0x7177);
      if (!config_.anti_detection.humanize_inputs) {
        probe.throttle_ms = 0;  // Raw monkey floods events back-to-back...
        probe.pct_touch = 1.0;  // ...and with a degenerate event mix.
      }
      detected = LooksRobotic(GenerateEventStream(probe));
    }
  }
  report.emulator_detected = detected;

  // Fire behaviours.
  util::Rng behavior_rng(util::SplitMix64(dex.behavior_seed ^ 0xf15e));
  std::vector<uint8_t> api_seen(universe_.num_apis(), 0);
  std::vector<int32_t> tracked_slot(universe_.num_apis(), -1);
  std::unordered_map<std::string, bool> intent_seen;
  for (const apk::DexBehavior& behavior : dex.behaviors) {
    const double jitter = behavior_rng.LogNormal(1.0, 0.1);
    // Gating conditions.
    if (behavior.activity != apk::DexFile::kAppLevelActivity) {
      if (behavior.activity >= coverage.covered.size() ||
          !coverage.covered[behavior.activity]) {
        continue;
      }
    }
    if (behavior.guarded() && detected) {
      continue;  // The app saw the sandbox and keeps this path quiet.
    }
    if (behavior.sensor_gated() && on_emulator) {
      continue;  // No live sensor data on any emulator (the residual 1.4%).
    }

    const double expected =
        static_cast<double>(behavior.invocations_per_kevent) * events / 1000.0 * jitter;
    const uint64_t count =
        expected >= 1.0 ? static_cast<uint64_t>(expected + 0.5)
                        : (behavior_rng.Bernoulli(expected) ? 1 : 0);
    if (count == 0) {
      continue;
    }
    report.total_invocations += count;

    const int64_t api = method_api[behavior.method_idx];
    if (api < 0) {
      continue;  // Unknown framework method (e.g. app-internal call).
    }
    const android::ApiId api_id = static_cast<android::ApiId>(api);
    if (!api_seen[api_id]) {
      api_seen[api_id] = 1;
      ++report.distinct_apis_invoked;
    }
    if (tracked.Contains(api_id)) {
      report.tracked_invocations += count;
      if (tracked_slot[api_id] < 0) {
        tracked_slot[api_id] = static_cast<int32_t>(report.observed_apis.size());
        report.observed_apis.push_back(api_id);
        report.observed_api_counts.push_back(0);
      }
      report.observed_api_counts[static_cast<size_t>(tracked_slot[api_id])] +=
          static_cast<uint32_t>(std::min<uint64_t>(count, 0xFFFFFFFFu));
      if (behavior.intent_string_idx != apk::DexFile::kNoIntent) {
        // Hooked invocation: parameters (the Intent action) are logged.
        const std::string& action = dex.strings[behavior.intent_string_idx];
        if (!intent_seen[action]) {
          intent_seen[action] = true;
          report.observed_intents.push_back({action, api_id});
        }
      }
    }
  }
  // Sort (api, count) pairs by api id, keeping the vectors parallel.
  {
    std::vector<uint32_t> order(report.observed_apis.size());
    for (uint32_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return report.observed_apis[a] < report.observed_apis[b];
    });
    std::vector<android::ApiId> apis(order.size());
    std::vector<uint32_t> counts(order.size());
    for (uint32_t i = 0; i < order.size(); ++i) {
      apis[i] = report.observed_apis[order[i]];
      counts[i] = report.observed_api_counts[order[i]];
    }
    report.observed_apis = std::move(apis);
    report.observed_api_counts = std::move(counts);
  }

  // Simulated emulation cost. The base component is an app property (same
  // across engines), so it derives from the behaviour seed alone.
  util::Rng time_rng(util::SplitMix64(dex.behavior_seed ^ 0x71e3));
  const double event_cost_factor = fuzzing ? config_.fuzzing_event_cost_factor : 1.0;
  const double base_minutes =
      time_rng.LogNormal(config_.per_event_ms_median * event_cost_factor * events / 60'000.0,
                         config_.per_app_time_sigma);
  const double hook_minutes =
      static_cast<double>(report.tracked_invocations) * config_.hook_cost_us / 6.0e7;
  double minutes = base_minutes + hook_minutes;
  if (config_.kind == EngineKind::kLightweight) {
    minutes *= config_.lightweight_speedup;
    // Compatibility gap of Android-x86 + Houdini: a small slice of apps
    // cannot run; the farm detects the failure partway and replays the app
    // on the stock Google emulator (§5.1).
    const bool incompatible =
        time_rng.Bernoulli(config_.lightweight_incompat_rate) ||
        (dex.has_native_code() && time_rng.Bernoulli(config_.lightweight_incompat_rate * 2.0));
    if (incompatible && config_.enable_fallback) {
      report.fell_back = true;
      minutes = 0.4 * minutes + (base_minutes + hook_minutes);
      APICHECKER_SLOG(Warning, "emu.fallback")
          .With("package", apk.manifest.package_name)
          .With("has_native_code", dex.has_native_code())
          .With("minutes", minutes);
    }
  }

  // Crash handling: one automatic retry (SystemServer exception reporting),
  // counted into the emulation time.
  const double crash_p = dex.crash_probability();
  if (crash_p > 0.0 && time_rng.Bernoulli(crash_p)) {
    report.retried = true;
    minutes += minutes * config_.crash_retry_overhead;
    if (time_rng.Bernoulli(crash_p)) {
      report.crashed = true;  // Second failure: give up with partial data.
      APICHECKER_SLOG(Warning, "emu.crash")
          .With("package", apk.manifest.package_name)
          .With("retried", true)
          .With("minutes", minutes);
    }
  }
  report.emulation_minutes = minutes;

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  metrics.counter(obs::names::kEmuAppsTotal).Increment();
  metrics.histogram(obs::names::kEmuAppMinutes).Observe(minutes);
  metrics.counter(obs::names::kEmuTotalInvocationsTotal)
      .Increment(report.total_invocations);
  metrics.counter(obs::names::kEmuTrackedInvocationsTotal)
      .Increment(report.tracked_invocations);
  if (report.emulator_detected) {
    metrics.counter(obs::names::kEmuDetectedTotal).Increment();
  }
  if (report.retried) {
    metrics.counter(obs::names::kEmuRetriesTotal).Increment();
  }
  if (report.crashed) {
    metrics.counter(obs::names::kEmuCrashesTotal).Increment();
  }
  if (report.fell_back) {
    metrics.counter(obs::names::kEmuFallbacksTotal).Increment();
  }
  return report;
}

util::Result<EmulationReport> DynamicAnalysisEngine::RunBytes(
    std::span<const uint8_t> apk_bytes, const TrackedApiSet& tracked) const {
  auto apk = apk::ParseApk(apk_bytes);
  if (!apk.ok()) {
    return util::Err(apk.error());
  }
  return Run(*apk, tracked);
}

}  // namespace apichecker::emu
