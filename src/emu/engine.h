// Dynamic-analysis engine: installs an APK on a (simulated) emulator,
// explores it with Monkey, intercepts the configured API set through the
// hooking layer, and reports observations plus the emulation cost.
//
// Two engine builds exist, matching §4.2 and §5.1:
//  * kGoogleEmulator — full-system QEMU emulation of ARM Android (the study
//    engine; slower baseline).
//  * kLightweight    — Android-x86 with ARM->x86 binary translation for
//    native code (Houdini); ~70% faster, with a small incompatibility rate
//    that triggers fallback onto the Google engine.
// kRealDevice exists for the §4.2 controlled experiment (no emulator
// detection possible, sensors live).

#ifndef APICHECKER_EMU_ENGINE_H_
#define APICHECKER_EMU_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "android/api_universe.h"
#include "apk/apk.h"
#include "emu/coverage.h"
#include "emu/monkey.h"

namespace apichecker::emu {

enum class EngineKind : uint8_t {
  kRealDevice = 0,
  kGoogleEmulator = 1,
  kLightweight = 2,
};

// UI exploration strategy (§6 future work): the deployed system drives apps
// with Monkey; coverage-guided fuzzing reaches more Activities per event at
// a higher per-event instrumentation cost.
enum class ExplorationStrategy : uint8_t {
  kMonkey = 0,
  kCoverageGuidedFuzzing = 1,
};

// The fourfold anti-detection hardening of §4.2. All four default on (the
// "enhanced emulator"); the study's controlled experiment disables them to
// quantify their effect.
struct AntiDetectionConfig {
  bool spoof_device_identity = true;   // IMEI/IMSI/MODEL/network config.
  bool humanize_inputs = true;         // Monkey throttle / touch-mix tuning.
  bool replay_sensor_traces = true;    // Recorded accelerometer/gyro replay.
  bool hide_hooking_framework = true;  // Obfuscated Xposed, patched queries.

  bool AllEnabled() const {
    return spoof_device_identity && humanize_inputs && replay_sensor_traces &&
           hide_hooking_framework;
  }
};

// The set of framework APIs the hooking layer intercepts.
class TrackedApiSet {
 public:
  TrackedApiSet() = default;
  TrackedApiSet(std::span<const android::ApiId> ids, size_t universe_size);

  static TrackedApiSet All(size_t universe_size);
  static TrackedApiSet None(size_t universe_size);

  bool Contains(android::ApiId id) const {
    return id < bitmap_.size() && bitmap_[id] != 0;
  }
  size_t count() const { return count_; }
  const std::vector<android::ApiId>& ids() const { return ids_; }

 private:
  std::vector<uint8_t> bitmap_;
  std::vector<android::ApiId> ids_;
  size_t count_ = 0;
};

struct EngineConfig {
  EngineKind kind = EngineKind::kGoogleEmulator;
  ExplorationStrategy exploration = ExplorationStrategy::kMonkey;
  AntiDetectionConfig anti_detection;
  MonkeyConfig monkey;
  CoverageModelParams coverage;
  // Fuzzing trades throughput for coverage: higher asymptotic RAC, faster
  // saturation, slower event execution (feedback instrumentation).
  CoverageModelParams fuzzing_coverage{.mean_cap = 0.96, .cap_stddev = 0.02,
                                       .tau_events = 1'500.0};
  double fuzzing_event_cost_factor = 1.5;

  // Simulated-cost model (calibrated against the paper's measurements).
  double per_event_ms_median = 25.2;   // Base: 5K events ≈ 2.1 min (Fig 3).
  double per_app_time_sigma = 0.35;    // App-to-app lognormal spread.
  double hook_cost_us = 73.0;          // Per intercepted invocation (Fig 3).
  double lightweight_speedup = 0.30;   // §5.1: ~70% time reduction.
  double lightweight_incompat_rate = 0.008;  // <1% of apps fall back.
  bool enable_fallback = true;
  double crash_retry_overhead = 0.5;   // Retry costs 50% of a run.
};

struct ObservedIntent {
  std::string action;        // Intent action string seen as a parameter.
  android::ApiId carrier = 0;  // The hooked API whose parameters exposed it.
};

struct EmulationReport {
  // Dynamic observations (hooked APIs that actually fired).
  std::vector<android::ApiId> observed_apis;
  // Invocation count per observed API (parallel to observed_apis). Only the
  // hooking layer can count invocations, so this exists for tracked APIs
  // only. Feeds the histogram feature encoding (§6 future work).
  std::vector<uint32_t> observed_api_counts;
  // Intent actions seen as parameters of hooked intent-carrying APIs.
  std::vector<ObservedIntent> observed_intents;
  // Static observations from the manifest.
  std::vector<std::string> requested_permissions;
  std::vector<std::string> manifest_intent_filters;

  uint64_t total_invocations = 0;    // All framework API invocations (Fig 2).
  uint64_t tracked_invocations = 0;  // Invocations that hit a hook.
  double emulation_minutes = 0.0;    // Simulated wall-clock (Figs 3/9/11/16).
  double rac = 0.0;                  // Referred Activity Coverage.
  uint32_t distinct_apis_invoked = 0;

  bool emulator_detected = false;  // App spotted the sandbox and went quiet.
  bool crashed = false;            // Unrecoverable crash (after retry).
  bool retried = false;            // First run crashed; retry succeeded.
  bool fell_back = false;          // Lightweight engine incompatibility.
};

class DynamicAnalysisEngine {
 public:
  DynamicAnalysisEngine(const android::ApiUniverse& universe, EngineConfig config);

  // Runs one app. Deterministic in (apk.dex.behavior_seed, config).
  EmulationReport Run(const apk::ApkFile& apk, const TrackedApiSet& tracked) const;

  // Parses APK bytes first; propagates parse failures.
  util::Result<EmulationReport> RunBytes(std::span<const uint8_t> apk_bytes,
                                         const TrackedApiSet& tracked) const;

  const EngineConfig& config() const { return config_; }

 private:
  const android::ApiUniverse& universe_;
  EngineConfig config_;
};

}  // namespace apichecker::emu

#endif  // APICHECKER_EMU_ENGINE_H_
