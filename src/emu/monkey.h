// Monkey UI-exerciser model (paper §4.2). The engine only needs the event
// budget and the anti-detection tuning knobs (input throttle / touch ratio),
// but the stream generator is also exposed so tests can exercise the event
// mix the way the real tool would produce it.

#ifndef APICHECKER_EMU_MONKEY_H_
#define APICHECKER_EMU_MONKEY_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace apichecker::emu {

enum class UiEventKind : uint8_t {
  kTouch = 0,
  kMotion = 1,
  kTrackball = 2,
  kNavigation = 3,
  kSystemKey = 4,
  kAppSwitch = 5,
};

struct UiEvent {
  UiEventKind kind = UiEventKind::kTouch;
  uint32_t timestamp_ms = 0;
};

struct MonkeyConfig {
  uint32_t num_events = 5'000;
  // --throttle: inter-event interval. 500 ms matches average human input
  // cadence (the anti-detection tuning of §4.2); the emulator itself replays
  // events far faster than the nominal throttle.
  uint32_t throttle_ms = 500;
  // --pct-touch: fraction of touch events, tuned per app type in [0.5, 0.8].
  double pct_touch = 0.65;
  uint64_t seed = 1;
};

// Generates the event stream: kinds follow pct_touch (remainder spread over
// the other kinds), timestamps follow the throttle with human-like jitter.
std::vector<UiEvent> GenerateEventStream(const MonkeyConfig& config);

// Heuristic an emulator-detecting app applies to the stream: perfectly
// regular timing or a degenerate touch ratio reveals a robot. Returns true
// if the stream looks machine-generated.
bool LooksRobotic(const std::vector<UiEvent>& events);

}  // namespace apichecker::emu

#endif  // APICHECKER_EMU_MONKEY_H_
