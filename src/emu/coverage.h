// Referred Activity Coverage (RAC) model — paper §4.2. RAC is the fraction
// of code-referenced Activities actually reached during UI exploration. The
// paper measures a saturating curve: ~76.5% at 5K Monkey events, ~86% at
// 100K, asymptoting below 88%. Coverage here follows
//   covered(e) = cap_app * (1 - exp(-e / tau))
// with a per-app cap drawn around 0.875 and the covered *set* growing as a
// prefix of a per-app activity permutation (so coverage is monotone in e).

#ifndef APICHECKER_EMU_COVERAGE_H_
#define APICHECKER_EMU_COVERAGE_H_

#include <cstdint>
#include <vector>

namespace apichecker::emu {

struct CoverageModelParams {
  double mean_cap = 0.875;   // Asymptotic RAC.
  double cap_stddev = 0.05;
  double tau_events = 2'415.0;  // Saturation constant (calibrated to Fig 1).
};

struct CoverageResult {
  // covered[a] == true iff referenced activity ordinal `a` was reached.
  std::vector<bool> covered;
  uint32_t covered_count = 0;
  double rac = 0.0;  // covered_count / referenced_count.
};

// Deterministic in (app_seed, referenced_count); monotone in num_events.
CoverageResult ComputeCoverage(uint32_t num_events, uint32_t referenced_count,
                               uint64_t app_seed, const CoverageModelParams& params = {});

// Expected RAC at a given event budget (no per-app noise); used by benches
// to print the Fig 1 curve analytically alongside the simulated one.
double ExpectedRac(uint32_t num_events, const CoverageModelParams& params = {});

}  // namespace apichecker::emu

#endif  // APICHECKER_EMU_COVERAGE_H_
