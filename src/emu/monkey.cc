#include "emu/monkey.h"

#include <algorithm>
#include <cmath>

namespace apichecker::emu {

std::vector<UiEvent> GenerateEventStream(const MonkeyConfig& config) {
  util::Rng rng(config.seed);
  std::vector<UiEvent> events;
  events.reserve(config.num_events);
  double clock_ms = 0.0;
  for (uint32_t i = 0; i < config.num_events; ++i) {
    UiEvent event;
    if (rng.Bernoulli(config.pct_touch)) {
      event.kind = UiEventKind::kTouch;
    } else {
      constexpr UiEventKind kOther[] = {UiEventKind::kMotion, UiEventKind::kTrackball,
                                        UiEventKind::kNavigation, UiEventKind::kSystemKey,
                                        UiEventKind::kAppSwitch};
      event.kind = kOther[rng.NextBounded(std::size(kOther))];
    }
    // Human-like jitter: log-normal multiplicative spread around the
    // throttle instead of a metronome.
    clock_ms += config.throttle_ms * rng.LogNormal(1.0, 0.35);
    event.timestamp_ms = static_cast<uint32_t>(clock_ms);
    events.push_back(event);
  }
  return events;
}

bool LooksRobotic(const std::vector<UiEvent>& events) {
  if (events.size() < 16) {
    return false;
  }
  // Timing check: coefficient of variation of inter-event gaps. Real humans
  // are noisy; a zero-throttle robot is metronomic.
  double sum = 0.0, sum_sq = 0.0;
  size_t touches = 0;
  for (size_t i = 1; i < events.size(); ++i) {
    const double gap =
        static_cast<double>(events[i].timestamp_ms) - events[i - 1].timestamp_ms;
    sum += gap;
    sum_sq += gap * gap;
  }
  for (const UiEvent& e : events) {
    touches += e.kind == UiEventKind::kTouch ? 1 : 0;
  }
  const double n = static_cast<double>(events.size() - 1);
  const double mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - mean * mean);
  const double cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;
  const double touch_ratio = static_cast<double>(touches) / static_cast<double>(events.size());
  // Suspicious: metronomic timing, sub-human speed (<50 ms), or a touch mix
  // no human produces.
  return cv < 0.05 || mean < 50.0 || touch_ratio < 0.3 || touch_ratio > 0.95;
}

}  // namespace apichecker::emu
