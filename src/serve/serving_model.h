// RCU-style hot-swappable model handle. The paper replaces the production
// model monthly without stopping the vetting service (§5.3); here a swap
// atomically publishes a new immutable ModelSnapshot (checker + its tracked
// hook set + version) while any in-flight batch keeps classifying against the
// snapshot it acquired — readers pin their snapshot with a shared_ptr, so the
// old model is destroyed only after its last batch finishes. Verdicts are
// therefore never torn between two models.

#ifndef APICHECKER_SERVE_SERVING_MODEL_H_
#define APICHECKER_SERVE_SERVING_MODEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "core/checker.h"
#include "emu/engine.h"
#include "util/result.h"

namespace apichecker::serve {

// Immutable once published. The tracked set is derived at swap time so the
// emulators always hook exactly what the classifying model was trained on.
struct ModelSnapshot {
  uint32_t version = 0;
  core::ApiChecker checker;
  emu::TrackedApiSet tracked;

  ModelSnapshot(uint32_t v, core::ApiChecker c)
      : version(v), checker(std::move(c)), tracked(checker.MakeTrackedSet()) {}
};

class ServingModel {
 public:
  // The initial model is published as version 1.
  explicit ServingModel(core::ApiChecker initial);

  ServingModel(const ServingModel&) = delete;
  ServingModel& operator=(const ServingModel&) = delete;

  // Cheap (one mutex-guarded shared_ptr copy). The returned snapshot stays
  // valid for as long as the caller holds it, across any number of swaps.
  std::shared_ptr<const ModelSnapshot> Acquire() const;

  // Publishes `next` as the new production model; returns its version.
  // In-flight readers keep their old snapshot.
  uint32_t Swap(core::ApiChecker next);

  // Restores a checker from a model-store blob (core/model_store format, the
  // same bytes market::ModelRegistry archives) and swaps it in.
  util::Result<uint32_t> SwapFromBlob(const android::ApiUniverse& universe,
                                      std::span<const uint8_t> blob);

  uint32_t version() const { return version_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ModelSnapshot> current_;
  std::atomic<uint32_t> version_{0};
};

}  // namespace apichecker::serve

#endif  // APICHECKER_SERVE_SERVING_MODEL_H_
