// N sharded, bounded MPMC submission queues with admission control. Producers
// hash a submission's content digest onto a shard (byte-identical resubmits
// land on the same shard, keeping shard load balanced under clone-heavy
// traffic) and TryPush — a full shard rejects the submission outright, which
// is the service's backpressure contract: bounded memory, explicit errors,
// never OOM. Priority submissions jump their shard's line. The consumer side
// is a cross-shard timed pop the batch scheduler uses to assemble batches.

#ifndef APICHECKER_SERVE_SUBMISSION_SHARDS_H_
#define APICHECKER_SERVE_SUBMISSION_SHARDS_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/types.h"
#include "util/bounded_queue.h"

namespace apichecker::serve {

enum class AdmissionOutcome : uint8_t {
  kAccepted = 0,
  kQueueFull = 1,  // Shard at capacity — backpressure.
  kClosed = 2,     // Service shutting down.
};

class SubmissionShards {
 public:
  SubmissionShards(size_t num_shards, size_t per_shard_capacity);

  // Routes by digest hash; priority > 0 pushes to the shard's front.
  AdmissionOutcome TryPush(PendingSubmission pending);

  // Pops from any shard (round-robin sweep from a rotating cursor, so no
  // shard starves). Blocks up to `timeout` when everything is empty; nullopt
  // on timeout or when closed and fully drained.
  std::optional<PendingSubmission> PopAnyFor(std::chrono::milliseconds timeout);

  // Untimed variant: sleeps on the push/close condition variable until a
  // submission arrives or the shards close. Nullopt only when closed and
  // drained — this is what lets an idle consumer wake on the next push
  // immediately instead of at some poll granularity.
  std::optional<PendingSubmission> PopAnyBlocking();

  // Non-blocking variant of PopAnyFor.
  std::optional<PendingSubmission> TryPopAny();

  // Idempotent: fails further pushes, wakes consumers, lets pops drain.
  void Close();
  bool closed() const;

  // Total queued across shards (approximate under concurrency).
  size_t ApproxDepth() const;

  size_t num_shards() const { return shards_.size(); }
  size_t per_shard_capacity() const { return per_shard_capacity_; }

  // Lifetime count of successful pushes. Lets tests prove a fast-path
  // admission (digest-cache hit at Submit) never touched a shard queue.
  uint64_t total_pushes() const;

 private:
  size_t ShardIndexFor(const PendingSubmission& pending) const;

  std::vector<std::unique_ptr<util::BoundedQueue<PendingSubmission>>> shards_;
  const size_t per_shard_capacity_;

  // Consumer wakeup: pushes bump `pushes_` so a sweeping consumer can sleep
  // without missing a submission that lands mid-sweep.
  mutable std::mutex signal_mu_;
  std::condition_variable signal_cv_;
  uint64_t pushes_ = 0;
  bool closed_ = false;
  size_t cursor_ = 0;  // Guarded by signal_mu_; rotates the sweep start.
};

}  // namespace apichecker::serve

#endif  // APICHECKER_SERVE_SUBMISSION_SHARDS_H_
