// N sharded, bounded MPMC submission queues with admission control and
// per-priority-class lanes. Producers hash a submission's content digest onto
// a shard (byte-identical resubmits land on the same shard, keeping shard
// load balanced under clone-heavy traffic), then route into the shard's lane
// for the submission's traffic class and TryPush — a full lane rejects the
// submission outright, which is the service's backpressure contract: bounded
// memory, explicit errors, never OOM. Each class has its own capacity, so a
// bulk storm can never occupy the slots interactive traffic needs.
//
// The consumer side is a cross-shard, cross-class timed pop the batch
// scheduler uses to assemble batches. Classes are served by smooth weighted
// round-robin: each class accrues credit equal to its weight per pop, the
// richest class is swept first, and the winner pays the total weight — giving
// interactive its configured share under contention while staying work-
// conserving (an empty preferred class immediately yields to the next).

#ifndef APICHECKER_SERVE_SUBMISSION_SHARDS_H_
#define APICHECKER_SERVE_SUBMISSION_SHARDS_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/types.h"
#include "util/bounded_queue.h"

namespace apichecker::serve {

enum class AdmissionOutcome : uint8_t {
  kAccepted = 0,
  kQueueFull = 1,  // Class lane at capacity — backpressure.
  kClosed = 2,     // Service shutting down.
};

class SubmissionShards {
 public:
  using ClassWeights = std::array<uint32_t, kNumPriorityClasses>;

  // `per_shard_capacity` bounds EACH class lane of a shard (classes are
  // isolated, not pooled). Zero weights are clamped to 1.
  SubmissionShards(size_t num_shards, size_t per_shard_capacity,
                   ClassWeights class_weights = {{8, 3, 1}});

  // Routes by digest hash onto a shard, then by priority into its class lane.
  AdmissionOutcome TryPush(PendingSubmission pending);

  // Pops from any shard (weighted-fair across classes, round-robin sweep from
  // a rotating cursor within a class, so no shard starves). Blocks up to
  // `timeout` when everything is empty; nullopt on timeout or when closed and
  // fully drained.
  std::optional<PendingSubmission> PopAnyFor(std::chrono::milliseconds timeout);

  // Untimed variant: sleeps on the push/close condition variable until a
  // submission arrives or the shards close. Nullopt only when closed and
  // drained — this is what lets an idle consumer wake on the next push
  // immediately instead of at some poll granularity.
  std::optional<PendingSubmission> PopAnyBlocking();

  // Non-blocking variant of PopAnyFor.
  std::optional<PendingSubmission> TryPopAny();

  // Idempotent: fails further pushes, wakes consumers, lets pops drain.
  void Close();
  bool closed() const;

  // Event-driven consumer hook: `listener` is invoked (outside the internal
  // lock) after every successful push and once by Close(). The batch
  // scheduler registers its pump here so a push schedules assembly work on
  // the runtime instead of waking a dedicated thread. One listener at most;
  // registering replaces the previous one.
  void SetPushListener(std::function<void()> listener);

  // Total queued across shards and classes (approximate under concurrency).
  size_t ApproxDepth() const;
  // Queued in one class's lanes across shards (approximate).
  size_t ApproxDepthByClass(Priority priority) const;

  size_t num_shards() const { return shards_.size(); }
  size_t per_shard_capacity() const { return per_shard_capacity_; }
  // Total capacity of ONE class's lanes (num_shards * per_shard_capacity) —
  // the denominator for the overload governor's queue-depth watermarks.
  size_t class_capacity() const { return shards_.size() * per_shard_capacity_; }

  // Lifetime count of successful pushes. Lets tests prove a fast-path
  // admission (digest-cache hit or shed at Submit) never touched a shard.
  uint64_t total_pushes() const;

 private:
  // One shard = one bounded FIFO lane per priority class.
  using Shard =
      std::array<std::unique_ptr<util::BoundedQueue<PendingSubmission>>,
                 kNumPriorityClasses>;

  size_t ShardIndexFor(const PendingSubmission& pending) const;

  std::vector<Shard> shards_;
  const size_t per_shard_capacity_;
  ClassWeights weights_{};
  uint32_t total_weight_ = 0;

  // Consumer wakeup: pushes bump `pushes_` so a sweeping consumer can sleep
  // without missing a submission that lands mid-sweep.
  mutable std::mutex signal_mu_;
  std::condition_variable signal_cv_;
  uint64_t pushes_ = 0;
  bool closed_ = false;
  std::function<void()> push_listener_;  // Guarded by signal_mu_.
  size_t cursor_ = 0;  // Guarded by signal_mu_; rotates the sweep start.
  // Smooth-WRR credit per class; guarded by signal_mu_.
  std::array<int64_t, kNumPriorityClasses> credit_{};
};

}  // namespace apichecker::serve

#endif  // APICHECKER_SERVE_SUBMISSION_SHARDS_H_
