// FarmPool: M emu::DeviceFarm instances behind the batch scheduler — the
// paper's scale-out story (§5.1: 16 emulators per 20-core server, more
// servers added as market load grows) made explicit as a routed, health-
// checked pool. Each farm is a serialized task queue on the unified runtime
// (one dispatch task in flight per farm, re-posted while its queue is
// non-empty), so M farms chew M batches concurrently while the scheduler
// keeps assembling the next one — without M parked threads.
//
// Routing: least-loaded healthy farm (queued + in-flight batches), with a
// digest-affinity tiebreak so byte-similar traffic tends to revisit the same
// farm. Health: a per-farm circuit breaker opens after a configurable streak
// of consecutive farm-level faults, cools down, then admits a single
// half-open probe batch; the probe's outcome closes or re-opens the breaker.
// Failover: a batch whose farm faults is retried on a healthy farm it has not
// tried yet, up to max_attempts farms; when no healthy farm remains the batch
// is rejected visibly (PoolRejectReason) — the pool never hangs a submission.
//
// Fault injection is built in: FarmPoolConfig carries an emu::FaultPlan that
// is threaded into every farm (farm_id selects each farm's fault windows and
// RNG stream), so every failover path above is exercisable deterministically
// from tests, benches, and the CLI.

#ifndef APICHECKER_SERVE_FARM_POOL_H_
#define APICHECKER_SERVE_FARM_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "apk/apk.h"
#include "emu/farm.h"
#include "fabric/backend.h"
#include "ingest/apk_blob.h"
#include "rt/runtime.h"
#include "serve/serving_model.h"
#include "serve/types.h"

namespace apichecker::serve {

struct FarmPoolConfig {
  size_t num_farms = 1;
  // Max distinct farms one batch may be attempted on before rejection.
  size_t max_attempts = 3;
  // Consecutive farm-level faults that open a farm's circuit breaker.
  size_t breaker_failure_streak = 3;
  // How long an open breaker blocks routing before a half-open re-probe.
  std::chrono::milliseconds breaker_cooldown{250};
  // Threaded into every farm's FarmConfig (farm_id is assigned by the pool).
  emu::FaultPlan fault_plan;
};

enum class PoolRejectReason : uint8_t {
  kNoHealthyFarms = 0,       // Every untried farm is faulted or circuit-broken.
  kRetryBudgetExhausted = 1, // Faulted on max_attempts distinct farms.
  kClosed = 2,               // Pool already closed (shutdown race).
};

const char* PoolRejectReasonName(PoolRejectReason reason);

enum class BreakerState : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* BreakerStateName(BreakerState state);

// Per-farm accounting, exposed through FarmPoolStats.
struct FarmStats {
  uint32_t farm_id = 0;
  uint64_t batches_completed = 0;   // Successful batches executed here.
  uint64_t faults = 0;              // Farm-level faults observed here.
  uint64_t retries_absorbed = 0;    // Batches completed here after faulting elsewhere.
  uint64_t breaker_opens = 0;
  // breaker_opens split by cause: emulation-level faults vs fabric
  // connection loss / missed heartbeats. Sums to breaker_opens.
  uint64_t breaker_opens_fault = 0;
  uint64_t breaker_opens_conn = 0;
  BreakerState breaker = BreakerState::kClosed;
  bool conn_lost = false;           // Remote backend currently disconnected.
  double busy_minutes = 0.0;        // Sum of simulated batch makespans.
};

struct FarmPoolStats {
  std::vector<FarmStats> farms;
  uint64_t batches_routed = 0;      // Dispatches, retries included.
  uint64_t faults = 0;
  uint64_t retries = 0;             // Faulted batches re-routed to another farm.
  uint64_t rejected_batches = 0;    // Batches that exhausted the pool.
  size_t healthy_farms = 0;         // Breaker currently closed.
};

// Per-farm metric series name with an embedded Prometheus label, e.g.
// apichecker_serve_farm_batches_routed_total{farm="2"}.
std::string FarmSeriesName(const char* base, uint32_t farm_id);

// Breaker-open series with both the farm and the open's cause, e.g.
// apichecker_serve_farm_breaker_open_total{farm="2",reason="connection_loss"}.
// Reasons: "fault" (emulation-level farm fault streak / failed probe) and
// "connection_loss" (fabric transport: heartbeat miss, EOF, connect failure).
std::string BreakerOpenSeriesName(uint32_t farm_id, const char* reason);

// The in-process backend set the universe-based FarmPool constructor uses:
// num_farms LocalFarmBackends with the pool's fault plan attached. Exposed so
// callers composing mixed fleets (VettingService with fabric endpoints) reuse
// the same normalization.
std::vector<std::unique_ptr<fabric::FarmBackend>> MakeLocalFarmBackends(
    const android::ApiUniverse& universe, const FarmPoolConfig& config,
    const emu::FarmConfig& farm_template);

class FarmPool {
 public:
  // Batches enter as raw blobs; the first worker that picks a batch up runs
  // the parse stage (apk::ParseApk per blob, off the scheduler thread) and
  // caches the result, so a failover retry never re-parses. Per blob index
  // exactly one of these fires, each on a pool worker thread:
  //  - on_parse_error(index, error): the blob is not a valid APK (resolved
  //    fast-fail; it never occupies an emulator);
  //  - on_complete(result, emulated): fault-free emulation, result.reports[j]
  //    belongs to blob index emulated[j] (parse failures are skipped);
  //  - on_reject(reason, affected): no healthy farm / retry budget spent for
  //    the listed indices (parse failures already resolved are excluded).
  // on_complete also fires (with an empty result) when every member failed
  // parse, so exactly one of complete/reject terminates each batch.
  using CompleteFn = std::function<void(const emu::BatchResult& result,
                                        const std::vector<size_t>& emulated)>;
  using RejectFn = std::function<void(PoolRejectReason reason,
                                      const std::vector<size_t>& affected)>;
  using ParseErrorFn =
      std::function<void(size_t index, const std::string& error)>;

  // `farm_template` is cloned per farm with farm_id = 0..num_farms-1 and the
  // pool's fault plan attached; every farm runs in-process (LocalFarmBackend).
  // `runtime` hosts the dispatch tasks; null makes the pool own a private
  // runtime sized num_farms + 1 (standalone/test construction).
  FarmPool(const android::ApiUniverse& universe, FarmPoolConfig config,
           const emu::FarmConfig& farm_template, rt::Runtime* runtime = nullptr);

  // Generalized form: one serialized dispatch queue per backend, local and
  // remote freely mixed. Remote backends report connection-health transitions
  // that drive the breaker directly (force-open on loss, probe-eligible on
  // reconnect). config.num_farms is overridden by backends.size().
  FarmPool(FarmPoolConfig config,
           std::vector<std::unique_ptr<fabric::FarmBackend>> backends,
           rt::Runtime* runtime = nullptr);
  ~FarmPool();

  FarmPool(const FarmPool&) = delete;
  FarmPool& operator=(const FarmPool&) = delete;

  // Routes the batch to a healthy farm. If none is available the reject
  // callback fires synchronously (visible degradation, never a hang). Returns
  // false only when the pool is closed (no callback has fired). `traces`
  // carries one TraceContext per blob index (the slot leader's); each farm
  // attempt records a sibling `farm` span into every sampled one, so a
  // failed-over batch shows every farm it touched.
  bool Submit(std::vector<ingest::ApkBlob> blobs,
              std::shared_ptr<const ModelSnapshot> snapshot, uint64_t affinity,
              CompleteFn on_complete, RejectFn on_reject,
              ParseErrorFn on_parse_error = nullptr,
              std::vector<obs::TraceContext> traces = {});

  // Stops admission, executes everything still queued (retries included),
  // and waits until no dispatch task is active — after Close() returns, the
  // pool will never post to the runtime again (the service's license to shut
  // the runtime down). Idempotent; the destructor calls it.
  void Close();

  size_t num_farms() const { return backends_.size(); }
  FarmPoolStats stats() const;
  size_t healthy_farms() const;

  // Batches queued or executing across all farms — the downstream backlog
  // the admission governor folds into its queue-depth input (the shard
  // queues alone go shallow the moment the scheduler keeps up, even while
  // the farms drown).
  size_t ApproxBacklogBatches() const;

 private:
  struct PoolBatch {
    std::vector<ingest::ApkBlob> blobs;  // Released once the parse stage ran.
    bool parsed = false;
    std::vector<apk::ApkFile> apks;  // Parse successes, batch order.
    std::vector<size_t> emulated;    // Original blob index per apks entry.
    size_t total_items = 0;          // Blobs at submit time.
    std::shared_ptr<const ModelSnapshot> snapshot;
    uint64_t affinity = 0;
    std::vector<char> tried;  // One flag per farm.
    size_t attempts = 0;      // Farms this batch has faulted on.
    CompleteFn on_complete;
    RejectFn on_reject;
    ParseErrorFn on_parse_error;
    std::vector<obs::TraceContext> traces;  // One per blob index (slot leader).

    // Indices a rejection applies to: everything before the parse stage ran,
    // only the parse survivors after.
    std::vector<size_t> AffectedIndices() const;
  };

  struct FarmHealth {
    BreakerState state = BreakerState::kClosed;
    size_t consecutive_failures = 0;
    Clock::time_point open_until{};
    uint64_t breaker_opens = 0;
    // Set while the backend reports its connection lost. Pins open_until at
    // time_point::max() so the breaker never half-open-probes a dead link;
    // reconnect clears it and makes the breaker probe-eligible immediately.
    bool conn_lost = false;
  };

  // Posts a dispatch task for `farm_index` unless one is already active.
  // Every path that makes a farm's queue non-empty calls this, so a farm has
  // a task in flight exactly while it has (or is executing) work.
  void ScheduleFarmLocked(size_t farm_index);
  // The dispatch task: executes batches off the farm's queue until it is
  // empty, then deactivates. Runs on a runtime worker.
  void RunFarm(size_t farm_index);
  // Parse stage: runs once per batch on the first dispatch task that dequeues
  // it, outside mu_. Resolves parse failures via on_parse_error and drops the
  // blob handles (the pool keeps only the parsed ApkFiles afterwards).
  static void ParseStage(PoolBatch& batch);
  // All *Locked methods require mu_.
  std::optional<size_t> RouteLocked(const PoolBatch& batch);
  void RecordSuccessLocked(size_t farm_index, const emu::BatchResult& result,
                           bool was_retry);
  void RecordFaultLocked(size_t farm_index, bool transport_fault);
  size_t HealthyFarmsLocked() const;
  void PublishHealthGaugeLocked() const;
  // Breaker hook for backend connection-health transitions; called from
  // backend monitor threads (and from a dispatch thread when an rpc fails)
  // until Close() stops the monitors.
  void OnBackendHealth(size_t farm_index, fabric::FarmBackend::Health health,
                       const std::string& reason);

  FarmPoolConfig config_;
  std::vector<std::unique_ptr<fabric::FarmBackend>> backends_;
  std::unique_ptr<rt::Runtime> owned_runtime_;  // Only when none was passed.
  rt::Runtime* rt_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // Close() waits for the drain on it.
  std::vector<std::deque<std::unique_ptr<PoolBatch>>> queues_;  // Per farm.
  std::vector<char> in_flight_;                                 // Per farm.
  std::vector<char> worker_active_;  // Per farm: dispatch task posted/running.
  std::vector<FarmHealth> health_;
  std::vector<FarmStats> farm_stats_;
  uint64_t routed_ = 0;
  uint64_t faults_ = 0;
  uint64_t retries_ = 0;
  uint64_t rejected_batches_ = 0;
  size_t outstanding_ = 0;  // Batches accepted but not yet completed/rejected.
  bool closed_ = false;
};

}  // namespace apichecker::serve

#endif  // APICHECKER_SERVE_FARM_POOL_H_
