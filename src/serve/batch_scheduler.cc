#include "serve/batch_scheduler.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "apk/apk.h"
#include "market/review_pipeline.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace apichecker::serve {

namespace {

double MsSince(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

}  // namespace

BatchScheduler::BatchScheduler(BatchSchedulerConfig config, SubmissionShards& shards,
                               DigestCache& cache, ServingModel& model,
                               emu::DeviceFarm& farm, ServiceCounters& counters)
    : config_(config), shards_(shards), cache_(cache), model_(model), farm_(farm),
      counters_(counters) {
  if (config_.batch_size == 0) {
    config_.batch_size = 1;
  }
}

BatchScheduler::~BatchScheduler() {
  if (thread_.joinable()) {
    shards_.Close();
    thread_.join();
  }
}

void BatchScheduler::Start() {
  if (!thread_.joinable()) {
    thread_ = std::thread([this] { Loop(); });
  }
}

void BatchScheduler::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void BatchScheduler::Loop() {
  for (;;) {
    std::vector<PendingSubmission> batch;
    Clock::time_point linger_deadline{};
    for (;;) {
      std::chrono::milliseconds timeout = config_.idle_poll;
      if (!batch.empty()) {
        const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            linger_deadline - Clock::now());
        if (remaining <= std::chrono::milliseconds::zero()) {
          break;  // Linger expired: flush the partial batch.
        }
        timeout = remaining;
      }
      std::optional<PendingSubmission> popped = shards_.PopAnyFor(timeout);
      if (popped) {
        if (batch.empty()) {
          linger_deadline = Clock::now() + config_.max_linger;
        }
        batch.push_back(std::move(*popped));
        if (batch.size() >= config_.batch_size) {
          break;
        }
        continue;
      }
      if (shards_.closed()) {
        if (batch.empty()) {
          return;  // Closed and drained: scheduler exits.
        }
        break;  // Closed mid-batch: flush what we have.
      }
      if (!batch.empty() && Clock::now() >= linger_deadline) {
        break;
      }
    }
    if (!batch.empty()) {
      ExecuteBatch(std::move(batch));
    }
  }
}

void BatchScheduler::ExecuteBatch(std::vector<PendingSubmission> batch) {
  obs::TraceSpan span("serve.batch");
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  metrics.counter(obs::names::kServeBatchesTotal).Increment();
  metrics.histogram(obs::names::kServeBatchSize)
      .Observe(static_cast<double>(batch.size()));
  metrics.gauge(obs::names::kServeQueueDepth)
      .Set(static_cast<double>(shards_.ApproxDepth()));
  counters_.batches.fetch_add(1, std::memory_order_relaxed);

  // One snapshot for the whole batch: a concurrent hot-swap becomes visible
  // at the next batch boundary, never inside one.
  const std::shared_ptr<const ModelSnapshot> snapshot = model_.Acquire();
  const Clock::time_point assembled_at = Clock::now();

  obs::Histogram& queue_wait = metrics.histogram(obs::names::kServeQueueWaitMs);
  obs::Histogram& e2e = metrics.histogram(obs::names::kServeE2eLatencyMs);

  auto resolve = [&](PendingSubmission& pending, VettingResult result) {
    result.queue_ms = MsSince(pending.admitted_at, assembled_at);
    result.total_ms = MsSince(pending.admitted_at, Clock::now());
    e2e.Observe(result.total_ms);
    switch (result.status) {
      case VetStatus::kOk:
        counters_.completed.fetch_add(1, std::memory_order_relaxed);
        metrics.counter(obs::names::kServeCompletedTotal).Increment();
        market::RecordReviewOutcome(result.malicious
                                        ? market::ReviewOutcome::kRejectedByChecker
                                        : market::ReviewOutcome::kPublished);
        break;
      case VetStatus::kDeadlineExpired:
        counters_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        metrics.counter(obs::names::kServeDeadlineExpiredTotal).Increment();
        break;
      case VetStatus::kParseError:
        counters_.parse_errors.fetch_add(1, std::memory_order_relaxed);
        metrics.counter(obs::names::kServeParseErrorsTotal).Increment();
        break;
    }
    pending.promise.set_value(std::move(result));
  };

  // Triage: expired deadlines and digest-cache hits resolve without touching
  // an emulator; byte-identical members of the same batch emulate once.
  struct EmulationSlot {
    size_t leader;                 // Index into `batch`.
    std::vector<size_t> followers; // Same digest, resolved off the leader.
  };
  std::vector<apk::ApkFile> apks;
  std::vector<EmulationSlot> slots;
  std::unordered_map<std::string, size_t> digest_to_slot;

  for (size_t i = 0; i < batch.size(); ++i) {
    PendingSubmission& pending = batch[i];
    queue_wait.Observe(MsSince(pending.admitted_at, assembled_at));

    if (assembled_at >= pending.deadline) {
      VettingResult result;
      result.status = VetStatus::kDeadlineExpired;
      result.model_version = snapshot->version;
      resolve(pending, std::move(result));
      continue;
    }

    if (auto cached = cache_.Get(pending.digest, snapshot->version)) {
      VettingResult result;
      result.malicious = cached->malicious;
      result.score = cached->score;
      result.from_cache = true;
      result.model_version = snapshot->version;
      counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      metrics.counter(obs::names::kServeCacheHitsTotal).Increment();
      resolve(pending, std::move(result));
      continue;
    }
    metrics.counter(obs::names::kServeCacheMissesTotal).Increment();

    if (auto it = digest_to_slot.find(pending.digest); it != digest_to_slot.end()) {
      slots[it->second].followers.push_back(i);
      continue;
    }

    auto parsed = apk::ParseApk(pending.apk_bytes);
    if (!parsed.ok()) {
      VettingResult result;
      result.status = VetStatus::kParseError;
      result.error = parsed.error();
      result.model_version = snapshot->version;
      resolve(pending, std::move(result));
      continue;
    }
    digest_to_slot.emplace(pending.digest, slots.size());
    slots.push_back({i, {}});
    apks.push_back(std::move(*parsed));
  }

  if (apks.empty()) {
    return;
  }

  const emu::BatchResult farm_result = farm_.RunBatch(apks, snapshot->tracked);

  for (size_t s = 0; s < slots.size(); ++s) {
    PendingSubmission& leader = batch[slots[s].leader];
    const core::ApiChecker::Verdict verdict =
        snapshot->checker.Classify(farm_result.reports[s]);
    cache_.Put(leader.digest,
               {snapshot->version, verdict.malicious, verdict.score});

    VettingResult result;
    result.malicious = verdict.malicious;
    result.score = verdict.score;
    result.model_version = snapshot->version;
    resolve(leader, std::move(result));

    for (size_t follower_idx : slots[s].followers) {
      VettingResult dup;
      dup.malicious = verdict.malicious;
      dup.score = verdict.score;
      dup.from_cache = true;  // Emulation skipped via in-batch dedup.
      dup.model_version = snapshot->version;
      counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      metrics.counter(obs::names::kServeCacheHitsTotal).Increment();
      resolve(batch[follower_idx], std::move(dup));
    }
  }
}

}  // namespace apichecker::serve
