#include "serve/batch_scheduler.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ingest/apk_blob.h"
#include "market/review_pipeline.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "obs/trace_collector.h"
#include "util/logging.h"

namespace apichecker::serve {

namespace {

double MsSince(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

// One emulation slot per distinct digest: the leader is parsed and emulated,
// followers (byte-identical batch members) resolve off the leader's verdict.
struct EmulationSlot {
  size_t leader;
  std::vector<size_t> followers;
};

// Everything the asynchronous pool completion needs to resolve the batch.
// Owned by a shared_ptr captured in both pool callbacks (exactly one fires).
struct BatchState {
  std::vector<PendingSubmission> batch;
  std::vector<EmulationSlot> slots;
  std::shared_ptr<const ModelSnapshot> snapshot;
  Clock::time_point assembled_at;
  Clock::time_point dispatched_at;  // Pool handoff; valid once dispatched.
};

// Per-slot stage timing measured on the pool completion path, consumed by
// resolve() to build the contiguous per-trace latency breakdown.
struct StageTimes {
  Clock::time_point farm_done;  // Reports ready == classify start.
  double classify_ms = 0.0;
  double store_ms = -1.0;       // < 0: no store append happened.
};

}  // namespace

BatchScheduler::BatchScheduler(BatchSchedulerConfig config, rt::Runtime& runtime,
                               SubmissionShards& shards, DigestCache& cache,
                               ServingModel& model, FarmPool& pool,
                               ServiceCounters& counters,
                               store::VerdictStore* store)
    : config_(config), runtime_(runtime), shards_(shards), cache_(cache),
      model_(model), pool_(pool), counters_(counters), store_(store) {
  if (config_.batch_size == 0) {
    config_.batch_size = 1;
  }
}

BatchScheduler::~BatchScheduler() {
  if (started_.load(std::memory_order_acquire) && !drained()) {
    shards_.Close();
    Join();
  }
}

bool BatchScheduler::drained() const {
  std::lock_guard<std::mutex> lock(join_mu_);
  return drained_;
}

void BatchScheduler::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return;
  }
  strand_ = runtime_.MakeStrand();
  shards_.SetPushListener([this] { SchedulePump(); });
  // Sweep once unconditionally: submissions admitted before Start (the
  // start_paused backlog) and a Close that raced the listener registration
  // both predate the listener.
  SchedulePump();
}

void BatchScheduler::Join() {
  if (!started_.load(std::memory_order_acquire)) {
    return;
  }
  std::unique_lock<std::mutex> lock(join_mu_);
  join_cv_.wait(lock, [this] { return drained_; });
}

void BatchScheduler::SchedulePump() {
  if (!started_.load(std::memory_order_acquire)) {
    return;
  }
  // Coalesce: many pushes, one queued pump. The pump clears the flag BEFORE
  // sweeping, so a push that lands mid-sweep queues a fresh pump instead of
  // being lost.
  if (pump_scheduled_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  strand_->Post([this] {
    // exchange (not store): reading the poster's flag write with acquire
    // order makes that poster's shard push visible to the sweep below.
    pump_scheduled_.exchange(false, std::memory_order_acq_rel);
    Pump();
  });
}

void BatchScheduler::Pump() {
  for (;;) {
    // Read the push counter BEFORE sweeping (same protocol as the shards'
    // blocking pop): a push that lands mid-sweep changes the counter, so the
    // drained check below re-sweeps instead of declaring victory early.
    const uint64_t seen = shards_.total_pushes();
    while (batch_.size() < config_.batch_size) {
      auto popped = shards_.TryPopAny();
      if (!popped) {
        break;
      }
      if (batch_.empty()) {
        linger_deadline_ = Clock::now() + config_.max_linger;
      }
      // SLO-aware linger: never linger past a member's deadline. A member
      // whose (class-SLO-derived) deadline is tighter than the configured
      // linger pulls the flush in, so a tight-SLO submission is dispatched —
      // or expired visibly — at its deadline instead of at linger
      // granularity.
      linger_deadline_ = std::min(linger_deadline_, popped->deadline);
      batch_.push_back(std::move(*popped));
    }
    if (batch_.size() >= config_.batch_size) {
      Flush();
      continue;  // The shards may hold another full batch already.
    }
    if (!batch_.empty()) {
      if (shards_.closed() || Clock::now() >= linger_deadline_) {
        // Closed shards never push again — lingering would only add latency.
        Flush();
        continue;
      }
      ArmLingerTimer();
      return;
    }
    if (!shards_.closed()) {
      return;  // Idle: the next push listener schedules the next pump.
    }
    if (shards_.total_pushes() == seen) {
      // Closed, empty sweep, and no push raced it: drained for good (pushes
      // fail after close, so no later pump can find work).
      linger_timer_.Cancel();
      ++timer_generation_;
      {
        std::lock_guard<std::mutex> lock(join_mu_);
        drained_ = true;
      }
      join_cv_.notify_all();
      return;
    }
    // Closed but a push landed mid-sweep: loop and re-sweep.
  }
}

void BatchScheduler::ArmLingerTimer() {
  if (timer_armed_ && armed_deadline_ == linger_deadline_ &&
      !linger_timer_.fired()) {
    return;  // Still pending at the right time; nothing to do.
  }
  linger_timer_.Cancel();
  const uint64_t generation = ++timer_generation_;
  timer_armed_ = true;
  armed_deadline_ = linger_deadline_;
  // The wheel callback runs on a runtime thread; it only bounces onto the
  // strand, where OnLingerTimer may touch batch state. The strand is held
  // alive by the capture; `this` stays valid because the service tears the
  // scheduler down before the runtime (documented teardown sequence).
  auto strand = strand_;
  linger_timer_ = runtime_.PostAt(linger_deadline_, [this, strand, generation] {
    strand->Post([this, generation] { OnLingerTimer(generation); });
  });
}

void BatchScheduler::OnLingerTimer(uint64_t generation) {
  if (generation != timer_generation_) {
    return;  // Stale: the batch it guarded was already flushed or re-armed.
  }
  timer_armed_ = false;
  if (!batch_.empty()) {
    Flush();
  }
  // The flush may have raced new pushes whose pump coalesced into a task that
  // already ran; sweep once more so nothing lingers unarmed.
  Pump();
}

void BatchScheduler::Flush() {
  linger_timer_.Cancel();
  ++timer_generation_;
  timer_armed_ = false;
  std::vector<PendingSubmission> batch = std::move(batch_);
  batch_.clear();
  if (batch.empty()) {
    return;
  }
  // Earliest-deadline-first assembly: triage (and therefore expiry,
  // cache-hit resolution, and slot-leader election) visits the tightest
  // deadlines first. No-deadline members (time_point::max) sort last; ties
  // keep the weighted-fair pop order.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const PendingSubmission& a, const PendingSubmission& b) {
                     return a.deadline < b.deadline;
                   });
  ExecuteBatch(std::move(batch));
}

void BatchScheduler::ExecuteBatch(std::vector<PendingSubmission> batch) {
  obs::TraceSpan span("serve.batch");
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  metrics.counter(obs::names::kServeBatchesTotal).Increment();
  metrics.histogram(obs::names::kServeBatchSize)
      .Observe(static_cast<double>(batch.size()));
  metrics.gauge(obs::names::kServeQueueDepth)
      .Set(static_cast<double>(shards_.ApproxDepth()));
  counters_.batches.fetch_add(1, std::memory_order_relaxed);

  auto state = std::make_shared<BatchState>();
  state->batch = std::move(batch);
  // One snapshot for the whole batch: a concurrent hot-swap becomes visible
  // at the next batch boundary, never inside one.
  state->snapshot = model_.Acquire();
  state->assembled_at = Clock::now();

  // Resolution is invoked from the scheduler thread (triage) and from pool
  // worker threads (async completion); everything it touches is thread-safe.
  // `st` carries the completion path's per-slot stage timing (null for triage
  // and rejection paths); `dispatched` says the batch reached the pool, which
  // decides how post-pop time is attributed (batch vs farm stage).
  auto resolve = [this](const BatchState& s, PendingSubmission& pending,
                        VettingResult result, const StageTimes* st,
                        bool dispatched) {
    const Clock::time_point resolve_entry = Clock::now();
    obs::MetricsRegistry& m = obs::MetricsRegistry::Default();
    result.queue_ms = MsSince(pending.admitted_at, s.assembled_at);
    result.total_ms = MsSince(pending.admitted_at, resolve_entry);
    const size_t cls = static_cast<size_t>(pending.priority);
    m.histogram(obs::names::kServeE2eLatencyMs).Observe(result.total_ms);
    m.histogram(ClassSeriesName(obs::names::kServeE2eLatencyMs, pending.priority))
        .Observe(result.total_ms);
    switch (result.status) {
      case VetStatus::kOk:
        counters_.completed.fetch_add(1, std::memory_order_relaxed);
        counters_.completed_by_class[cls].fetch_add(1, std::memory_order_relaxed);
        m.counter(obs::names::kServeCompletedTotal).Increment();
        m.counter(ClassSeriesName(obs::names::kServeCompletedTotal,
                                  pending.priority))
            .Increment();
        market::RecordReviewOutcome(result.malicious
                                        ? market::ReviewOutcome::kRejectedByChecker
                                        : market::ReviewOutcome::kPublished);
        break;
      case VetStatus::kDeadlineExpired:
        counters_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        counters_.expired_by_class[cls].fetch_add(1, std::memory_order_relaxed);
        m.counter(obs::names::kServeDeadlineExpiredTotal).Increment();
        m.counter(ClassSeriesName(obs::names::kServeDeadlineExpiredTotal,
                                  pending.priority))
            .Increment();
        break;
      case VetStatus::kParseError:
        counters_.parse_errors.fetch_add(1, std::memory_order_relaxed);
        m.counter(obs::names::kServeParseErrorsTotal).Increment();
        break;
      case VetStatus::kRejectedUnhealthy:
        counters_.rejected_unhealthy.fetch_add(1, std::memory_order_relaxed);
        m.counter(obs::names::kServeFarmRejectedUnhealthyTotal).Increment();
        break;
      case VetStatus::kShedOverload:
        // Shedding happens at admission (VettingService::Submit), which does
        // its own accounting; a shed submission never reaches the scheduler.
        break;
      case VetStatus::kAbortedUpload:
        // Aborted uploads resolve inside the gateway before Submit() is ever
        // reached; one cannot flow through the scheduler.
        break;
    }

    if (pending.trace.sampled()) {
      // Build the contiguous latency partition admitted -> now over the stage
      // timestamps this submission accumulated. Each entry feeds its stage
      // histogram; the remainder is the resolve stage — so the stage sums
      // reconstruct the traced end-to-end latency exactly.
      obs::TraceCollector& collector = obs::TraceCollector::Default();
      const Clock::time_point end = Clock::now();
      const double total = MsSince(pending.admitted_at, end);
      std::vector<obs::StageMs> breakdown;
      auto push = [&breakdown](const char* stage, double ms) {
        breakdown.push_back({stage, std::max(0.0, ms)});
      };
      push(obs::stages::kSubmit, MsSince(pending.admitted_at, pending.enqueued_at));
      push(obs::stages::kShard, MsSince(pending.enqueued_at, pending.popped_at));
      if (dispatched) {
        push(obs::stages::kBatch, MsSince(pending.popped_at, s.dispatched_at));
        if (st != nullptr) {
          push(obs::stages::kFarm, MsSince(s.dispatched_at, st->farm_done));
          push(obs::stages::kClassify, st->classify_ms);
          if (st->store_ms >= 0.0) {
            push(obs::stages::kStore, st->store_ms);
          }
        } else {
          // Parse error, pool rejection, or in-batch follower: the whole
          // pool residency is farm time (the attempt spans the pool recorded
          // tell the detailed story, faults included).
          push(obs::stages::kFarm, MsSince(s.dispatched_at, resolve_entry));
        }
      } else {
        // Triage-resolved (deadline, cache hit): never dispatched.
        push(obs::stages::kBatch, MsSince(pending.popped_at, resolve_entry));
      }
      double consumed = 0.0;
      for (const obs::StageMs& entry : breakdown) {
        consumed += entry.ms;
      }
      push(obs::stages::kResolve, total - consumed);

      const double base_ms = collector.ToEpochMs(pending.admitted_at);
      obs::StageSpan shard_span;
      shard_span.stage = obs::stages::kShard;
      shard_span.start_ms = collector.ToEpochMs(pending.enqueued_at);
      shard_span.duration_ms = MsSince(pending.enqueued_at, pending.popped_at);
      collector.Record(pending.trace.trace_id, shard_span);
      if (!dispatched) {
        obs::StageSpan batch_span;
        batch_span.stage = obs::stages::kBatch;
        batch_span.start_ms = collector.ToEpochMs(pending.popped_at);
        batch_span.duration_ms = MsSince(pending.popped_at, resolve_entry);
        batch_span.queue_depth = s.batch.size();
        collector.Record(pending.trace.trace_id, batch_span);
      }
      if (st != nullptr) {
        obs::StageSpan classify_span;
        classify_span.stage = obs::stages::kClassify;
        classify_span.start_ms = collector.ToEpochMs(st->farm_done);
        classify_span.duration_ms = st->classify_ms;
        collector.Record(pending.trace.trace_id, classify_span);
        if (st->store_ms >= 0.0) {
          obs::StageSpan store_span;
          store_span.stage = obs::stages::kStore;
          store_span.start_ms = classify_span.start_ms + st->classify_ms;
          store_span.duration_ms = st->store_ms;
          collector.Record(pending.trace.trace_id, store_span);
        }
      }
      obs::StageSpan resolve_span;
      resolve_span.stage = obs::stages::kResolve;
      resolve_span.start_ms = base_ms + consumed;
      resolve_span.duration_ms = std::max(0.0, total - consumed);
      collector.Record(pending.trace.trace_id, resolve_span);

      obs::ObserveStageBreakdown(breakdown, total);
      collector.Complete(pending.trace.trace_id, VetStatusName(result.status),
                         result.from_cache, std::move(breakdown), total);
    }

    DeliverResult(pending, std::move(result));
  };

  // Triage on the scheduler thread: expired deadlines and digest-cache hits
  // resolve without touching an emulator; byte-identical members of the same
  // batch emulate once. Parsing is NOT done here — the pool's first worker to
  // pick the batch up runs it (off the scheduler, off the submitter), so the
  // scheduler goes straight back to assembling the next batch.
  obs::Histogram& queue_wait = metrics.histogram(obs::names::kServeQueueWaitMs);
  std::vector<ingest::ApkBlob> blobs;  // One per slot leader; refcount bumps only.
  std::unordered_map<std::string, size_t> digest_to_slot;

  for (size_t i = 0; i < state->batch.size(); ++i) {
    PendingSubmission& pending = state->batch[i];
    queue_wait.Observe(MsSince(pending.admitted_at, state->assembled_at));

    if (state->assembled_at >= pending.deadline) {
      VettingResult result;
      result.status = VetStatus::kDeadlineExpired;
      result.model_version = state->snapshot->version;
      resolve(*state, pending, std::move(result), nullptr, false);
      continue;
    }

    if (auto cached = cache_.Get(pending.digest(), state->snapshot->version)) {
      VettingResult result;
      result.malicious = cached->malicious;
      result.score = cached->score;
      result.from_cache = true;
      result.model_version = state->snapshot->version;
      counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      metrics.counter(obs::names::kServeCacheHitsTotal).Increment();
      if (cached->warm) {
        // The verdict came from the persistent store's recovery replay, not
        // from any emulation this process ran — the warm start paid off.
        counters_.warm_start_hits.fetch_add(1, std::memory_order_relaxed);
        metrics.counter(obs::names::kStoreWarmStartHitsTotal).Increment();
      }
      resolve(*state, pending, std::move(result), nullptr, false);
      continue;
    }
    metrics.counter(obs::names::kServeCacheMissesTotal).Increment();

    if (auto it = digest_to_slot.find(pending.digest()); it != digest_to_slot.end()) {
      state->slots[it->second].followers.push_back(i);
      continue;
    }
    digest_to_slot.emplace(pending.digest(), state->slots.size());
    state->slots.push_back({i, {}});
    blobs.push_back(pending.blob);
  }

  if (blobs.empty()) {
    return;
  }

  // Hand the blobs to the pool; the parse stage and classification both
  // happen on the pool worker that picks the batch up. Affinity-hash the
  // first leader's digest so byte-similar traffic prefers the same farm when
  // loads tie.
  const uint64_t affinity =
      std::hash<std::string>{}(state->batch[state->slots.front().leader].digest());

  // Slot index s == blob index s in the vector handed to the pool.
  auto on_parse_error = [this, state, resolve](size_t slot_index,
                                               const std::string& error) {
    (void)this;
    const EmulationSlot& slot = state->slots[slot_index];
    VettingResult result;
    result.status = VetStatus::kParseError;
    result.error = error;
    result.model_version = state->snapshot->version;
    resolve(*state, state->batch[slot.leader], VettingResult(result), nullptr,
            true);
    for (size_t follower_idx : slot.followers) {
      resolve(*state, state->batch[follower_idx], VettingResult(result), nullptr,
              true);
    }
  };

  auto on_complete = [this, state, resolve](const emu::BatchResult& farm_result,
                                            const std::vector<size_t>& emulated) {
    for (size_t j = 0; j < emulated.size(); ++j) {
      const EmulationSlot& slot = state->slots[emulated[j]];
      PendingSubmission& leader = state->batch[slot.leader];
      StageTimes times;
      times.farm_done = Clock::now();
      const core::ApiChecker::Verdict verdict =
          state->snapshot->checker.Classify(farm_result.reports[j]);
      times.classify_ms = MsSince(times.farm_done, Clock::now());
      cache_.Put(leader.digest(),
                 {state->snapshot->version, verdict.malicious, verdict.score});
      if (store_ != nullptr) {
        const Clock::time_point store_start = Clock::now();
        store::VerdictRecord record;
        record.digest = leader.digest();
        record.model_version = state->snapshot->version;
        record.malicious = verdict.malicious;
        record.score = verdict.score;
        record.timestamp_ms = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
        auto appended = store_->Append(std::move(record));
        if (!appended.ok()) {
          // Persistence is best-effort from the serving path: the verdict is
          // already cached and resolving; a dead/faulted store must not take
          // submissions down with it.
          APICHECKER_LOG(Warning)
              << "verdict store append failed: " << appended.error();
        }
        times.store_ms = MsSince(store_start, Clock::now());
      }

      VettingResult result;
      result.malicious = verdict.malicious;
      result.score = verdict.score;
      result.model_version = state->snapshot->version;
      resolve(*state, leader, std::move(result), &times, true);

      for (size_t follower_idx : slot.followers) {
        VettingResult dup;
        dup.malicious = verdict.malicious;
        dup.score = verdict.score;
        dup.from_cache = true;  // Emulation skipped via in-batch dedup.
        dup.model_version = state->snapshot->version;
        counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        obs::MetricsRegistry::Default()
            .counter(obs::names::kServeCacheHitsTotal)
            .Increment();
        resolve(*state, state->batch[follower_idx], std::move(dup), nullptr,
                true);
      }
    }
  };

  auto on_reject = [this, state, resolve](PoolRejectReason reason,
                                          const std::vector<size_t>& affected) {
    (void)this;
    for (size_t slot_index : affected) {
      const EmulationSlot& slot = state->slots[slot_index];
      VettingResult result;
      result.status = VetStatus::kRejectedUnhealthy;
      result.error = PoolRejectReasonName(reason);
      result.model_version = state->snapshot->version;
      resolve(*state, state->batch[slot.leader], std::move(result), nullptr,
              true);
      for (size_t follower_idx : slot.followers) {
        VettingResult dup;
        dup.status = VetStatus::kRejectedUnhealthy;
        dup.error = PoolRejectReasonName(reason);
        dup.model_version = state->snapshot->version;
        resolve(*state, state->batch[follower_idx], std::move(dup), nullptr,
                true);
      }
    }
  };

  // Dispatch timestamp + per-member batch spans are recorded BEFORE the pool
  // handoff: a worker may complete the batch (sealing its traces) before
  // Submit() even returns, and a span recorded after Complete is dropped.
  state->dispatched_at = Clock::now();
  std::vector<obs::TraceContext> slot_traces;
  slot_traces.reserve(state->slots.size());
  {
    obs::TraceCollector& collector = obs::TraceCollector::Default();
    auto record_batch_span = [&](const PendingSubmission& member) {
      if (!member.trace.sampled()) {
        return;
      }
      obs::StageSpan span;
      span.stage = obs::stages::kBatch;
      span.start_ms = collector.ToEpochMs(member.popped_at);
      span.duration_ms = MsSince(member.popped_at, state->dispatched_at);
      span.queue_depth = state->batch.size();
      collector.Record(member.trace.trace_id, span);
    };
    for (const EmulationSlot& slot : state->slots) {
      slot_traces.push_back(state->batch[slot.leader].trace);
      record_batch_span(state->batch[slot.leader]);
      for (size_t follower_idx : slot.followers) {
        record_batch_span(state->batch[follower_idx]);
      }
    }
  }

  const size_t num_slots = state->slots.size();
  if (!pool_.Submit(std::move(blobs), state->snapshot, affinity, on_complete,
                    on_reject, on_parse_error, std::move(slot_traces))) {
    // Shutdown race: the pool closed before this batch reached it. Resolve
    // everything visibly rather than dropping it (nothing was parsed, so
    // every slot is affected).
    std::vector<size_t> all(num_slots);
    for (size_t s = 0; s < num_slots; ++s) {
      all[s] = s;
    }
    on_reject(PoolRejectReason::kClosed, all);
  }
}

}  // namespace apichecker::serve
