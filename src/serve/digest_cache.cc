#include "serve/digest_cache.h"

#include <algorithm>
#include <functional>

namespace apichecker::serve {

DigestCache::DigestCache(size_t capacity, size_t num_shards)
    : capacity_(std::max<size_t>(1, capacity)),
      per_shard_capacity_(std::max<size_t>(
          1, (capacity_ + std::max<size_t>(1, num_shards) - 1) /
                 std::max<size_t>(1, num_shards))),
      num_shards_(std::max<size_t>(1, num_shards)),
      shards_(std::make_unique<Shard[]>(std::max<size_t>(1, num_shards))) {}

DigestCache::Shard& DigestCache::ShardFor(const std::string& digest) {
  return shards_[std::hash<std::string>{}(digest) % num_shards_];
}

std::optional<CachedVerdict> DigestCache::Get(const std::string& digest,
                                              uint32_t model_version) {
  Shard& shard = ShardFor(digest);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(digest);
  if (it == shard.index.end()) {
    return std::nullopt;
  }
  if (it->second->second.model_version != model_version) {
    // Verdict from a superseded model: drop it so the slot can be reused.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void DigestCache::Put(const std::string& digest, const CachedVerdict& verdict) {
  Shard& shard = ShardFor(digest);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(digest);
  if (it != shard.index.end()) {
    it->second->second = verdict;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.emplace_front(digest, verdict);
  shard.index.emplace(digest, shard.lru.begin());
}

size_t DigestCache::size() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].lru.size();
  }
  return total;
}

uint64_t DigestCache::evictions() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].evictions;
  }
  return total;
}

}  // namespace apichecker::serve
