#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "market/review_pipeline.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace_collector.h"
#include "util/logging.h"

namespace apichecker::serve {

namespace {

BatchSchedulerConfig ResolveSchedulerConfig(const ServiceConfig& config) {
  BatchSchedulerConfig resolved = config.scheduler;
  if (resolved.batch_size == 0) {
    resolved.batch_size = std::max<size_t>(1, config.farm.num_emulators);
  }
  return resolved;
}

// Opens the verdict store when configured. A store that fails to open (bad
// disk, unwritable dir) degrades to cold-start serving rather than refusing
// to serve at all.
std::unique_ptr<store::VerdictStore> OpenStoreOrNull(const ServiceConfig& config) {
  if (config.store.dir.empty()) {
    return nullptr;
  }
  auto opened = store::VerdictStore::Open(config.store);
  if (!opened.ok()) {
    APICHECKER_LOG(Error) << "verdict store disabled: " << opened.error();
    return nullptr;
  }
  return std::move(*opened);
}

// Local farms by default; one RemoteFarmClient per fabric endpoint when the
// service is fronting a multi-process fleet. The remote clients share the
// service's runtime for their heartbeat timers and reconnect tasks.
std::vector<std::unique_ptr<fabric::FarmBackend>> MakeBackends(
    const android::ApiUniverse& universe, const ServiceConfig& config,
    rt::Runtime* runtime) {
  if (config.fabric_endpoints.empty()) {
    return MakeLocalFarmBackends(universe, config.pool, config.farm);
  }
  std::vector<std::unique_ptr<fabric::FarmBackend>> backends;
  backends.reserve(config.fabric_endpoints.size());
  for (size_t i = 0; i < config.fabric_endpoints.size(); ++i) {
    fabric::RemoteClientConfig remote = config.fabric_client;
    remote.endpoint = config.fabric_endpoints[i];
    remote.farm_id = static_cast<uint32_t>(i);
    backends.push_back(
        std::make_unique<fabric::RemoteFarmClient>(universe, remote, runtime));
  }
  return backends;
}

// 0 = auto. The floor matters on small machines: farm dispatches and fabric
// heartbeat ticks occupy workers for bounded-blocking stretches, so the
// executor must have headroom beyond the farm count or a fully-dispatched
// pool would starve the scheduler strand.
size_t ResolveRuntimeWorkers(const ServiceConfig& config) {
  if (config.rt_threads > 0) {
    return config.rt_threads;
  }
  const size_t farms = config.fabric_endpoints.empty()
                           ? std::max<size_t>(1, config.pool.num_farms)
                           : config.fabric_endpoints.size();
  const size_t hw = std::max<size_t>(2, std::thread::hardware_concurrency());
  return std::max(hw, 2 * farms + 4);
}

}  // namespace

VettingService::VettingService(const android::ApiUniverse& universe,
                               ServiceConfig config, core::ApiChecker initial_model)
    : universe_(universe),
      config_(config),
      cache_(config.cache_capacity),
      store_(OpenStoreOrNull(config)),
      model_(std::move(initial_model)),
      runtime_(std::make_unique<rt::Runtime>(
          rt::RuntimeOptions{ResolveRuntimeWorkers(config)})),
      pool_(config.pool, MakeBackends(universe, config, runtime_.get()),
            runtime_.get()),
      shards_(config.num_shards, config.shard_capacity,
              config.overload.class_weights),
      governor_(config.overload),
      scheduler_(ResolveSchedulerConfig(config), *runtime_, shards_, cache_,
                 model_, pool_, counters_, store_.get()) {
  batch_size_hint_ = ResolveSchedulerConfig(config).batch_size;
  if (config_.trace_sample_rate > 0.0) {
    sample_every_ = static_cast<size_t>(
        std::max<long long>(1, std::llround(1.0 / config_.trace_sample_rate)));
  }
  WarmStartFromStore();
  if (!config_.start_paused) {
    scheduler_.Start();
  }
}

void VettingService::WarmStartFromStore() {
  if (store_ == nullptr) {
    return;
  }
  const uint32_t version = model_.version();
  size_t warmed = 0;
  size_t stale = 0;
  store_->ForEachLive([&](const store::VerdictRecord& record) {
    // Model-version-stamp invalidation: a verdict from another model version
    // must not be served by this one. (DigestCache::Get would evict it on
    // first touch anyway; filtering here keeps stale records from displacing
    // useful capacity.)
    if (record.model_version != version) {
      ++stale;
      return;
    }
    CachedVerdict verdict;
    verdict.model_version = record.model_version;
    verdict.malicious = record.malicious;
    verdict.score = record.score;
    verdict.warm = true;
    cache_.Put(record.digest, verdict);
    ++warmed;
  });
  if (warmed > 0 || stale > 0) {
    APICHECKER_SLOG(Info, "serve.warm_start")
        .With("cached", static_cast<uint64_t>(warmed))
        .With("stale_skipped", static_cast<uint64_t>(stale))
        .With("model_version", version);
  }
}

VettingService::~VettingService() { Shutdown(); }

void VettingService::Start() { scheduler_.Start(); }

util::Result<std::future<VettingResult>> VettingService::Submit(Submission submission) {
  return SubmitWithCallback(std::move(submission), nullptr);
}

util::Result<std::future<VettingResult>> VettingService::SubmitWithCallback(
    Submission submission, std::function<void(const VettingResult&)> on_result) {
  const Clock::time_point entered_at = Clock::now();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  metrics.counter(obs::names::kServeSubmissionsTotal).Increment();

  if (shut_down_.load(std::memory_order_acquire)) {
    counters_.rejected.fetch_add(1, std::memory_order_relaxed);
    metrics.counter(obs::names::kServeRejectedTotal).Increment();
    return util::Err("service is shut down");
  }

  // Admission does constant work regardless of APK size: the digest was
  // computed once when the blob was materialized (incrementally, while the
  // bytes streamed in) and travels with the handle. Observed into the
  // size-bucketed admission-latency histograms so the "flat in APK size"
  // property is checkable from the metrics dump.
  const char* size_bucket = ApkSizeBucket(submission.blob.size());
  auto observe_admission = [&metrics, entered_at, size_bucket] {
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - entered_at)
            .count();
    metrics.histogram(obs::names::kServeAdmissionLatencyMs).Observe(ms);
    metrics
        .histogram(AdmissionSeriesName(obs::names::kServeAdmissionLatencyMs,
                                       size_bucket))
        .Observe(ms);
  };

  PendingSubmission pending;
  pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending.blob = std::move(submission.blob);
  pending.priority = submission.priority;
  pending.admitted_at = entered_at;
  const size_t cls = static_cast<size_t>(pending.priority);
  // No explicit deadline → the class SLO default (which may itself be unset).
  std::chrono::milliseconds relative_deadline = submission.deadline;
  if (relative_deadline.count() <= 0) {
    relative_deadline = config_.overload.class_slo[cls];
  }
  pending.deadline = relative_deadline.count() > 0
                         ? pending.admitted_at + relative_deadline
                         : Clock::time_point::max();
  pending.on_result = std::move(on_result);
  std::future<VettingResult> future = pending.promise.get_future();

  // Deterministic 1-in-N sampling on the submission id (ids start at 1, so
  // `id % N == 1 % N` picks the first submission and every Nth after it).
  obs::TraceCollector& collector = obs::TraceCollector::Default();
  if (sample_every_ > 0 && pending.id % sample_every_ == 1 % sample_every_) {
    pending.trace.trace_id = collector.StartTrace();
  }

  // Admission fast-path: a digest this model version already judged resolves
  // here, without a queue round-trip — the duplicate-heavy market traffic the
  // paper describes never costs a scheduler wakeup.
  if (auto cached = cache_.Get(pending.digest(), model_.version())) {
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.accepted_by_class[cls].fetch_add(1, std::memory_order_relaxed);
    metrics.counter(obs::names::kServeAcceptedTotal).Increment();
    metrics.counter(ClassSeriesName(obs::names::kServeAcceptedTotal,
                                    pending.priority))
        .Increment();
    VettingResult result;
    result.malicious = cached->malicious;
    result.score = cached->score;
    result.from_cache = true;
    result.model_version = cached->model_version;
    result.total_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - entered_at)
            .count();
    counters_.completed.fetch_add(1, std::memory_order_relaxed);
    counters_.completed_by_class[cls].fetch_add(1, std::memory_order_relaxed);
    metrics.counter(obs::names::kServeCompletedTotal).Increment();
    metrics.counter(ClassSeriesName(obs::names::kServeCompletedTotal,
                                    pending.priority))
        .Increment();
    counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    metrics.counter(obs::names::kServeCacheHitsTotal).Increment();
    metrics.counter(obs::names::kServeCacheFastpathHitsTotal).Increment();
    if (cached->warm) {
      counters_.warm_start_hits.fetch_add(1, std::memory_order_relaxed);
      metrics.counter(obs::names::kStoreWarmStartHitsTotal).Increment();
    }
    metrics.histogram(obs::names::kServeE2eLatencyMs).Observe(result.total_ms);
    metrics
        .histogram(ClassSeriesName(obs::names::kServeE2eLatencyMs,
                                   pending.priority))
        .Observe(result.total_ms);
    market::RecordReviewOutcome(result.malicious
                                    ? market::ReviewOutcome::kRejectedByChecker
                                    : market::ReviewOutcome::kPublished);
    if (pending.trace.sampled()) {
      // Fast-path trace: the whole lifetime is the admission check itself.
      // Breakdown = {submit: total, resolve: 0} so the partition still sums
      // to the end-to-end latency.
      obs::StageSpan submit_span;
      submit_span.stage = obs::stages::kSubmit;
      submit_span.start_ms = collector.ToEpochMs(entered_at);
      submit_span.duration_ms = result.total_ms;
      collector.Record(pending.trace.trace_id, submit_span);
      obs::StageSpan resolve_span;
      resolve_span.stage = obs::stages::kResolve;
      resolve_span.start_ms = submit_span.start_ms + result.total_ms;
      collector.Record(pending.trace.trace_id, resolve_span);
      std::vector<obs::StageMs> breakdown;
      breakdown.push_back({obs::stages::kSubmit, result.total_ms});
      breakdown.push_back({obs::stages::kResolve, 0.0});
      obs::ObserveStageBreakdown(breakdown, result.total_ms);
      collector.Complete(pending.trace.trace_id, VetStatusName(result.status),
                         /*from_cache=*/true, std::move(breakdown),
                         result.total_ms);
    }
    DeliverResult(pending, std::move(result));
    observe_admission();
    return future;
  }

  // Overload control: re-evaluate the watermark state machine on every
  // admission that missed the cache, and shed sheddable classes while it is
  // in pressure/critical. A shed submission is ACCEPTED and resolved
  // immediately with kShedOverload — the caller gets a visible verdict-class
  // drop (to retry later), never a hang, and the no-lost-submissions
  // invariant extends to cover it. Interactive traffic is never shed; its
  // fate is decided by its own isolated lane (kQueueFull backpressure).
  if (config_.overload.shed) {
    // Depth is the END-TO-END backlog: shard queues plus batches queued or
    // executing in the farm pool (converted back to submissions), plus
    // uploads still arriving over the network. The shard queues alone go
    // shallow whenever the scheduler keeps up, even while the farms drown —
    // overload must be judged where the work actually piles.
    const size_t backlog =
        shards_.ApproxDepth() +
        pool_.ApproxBacklogBatches() * batch_size_hint_ +
        (ingress_backlog_probe_ ? ingress_backlog_probe_() : 0);
    const PressureState pressure = governor_.Evaluate(
        backlog, shards_.class_capacity(), ingest::ApkBlob::PoolBytes());
    if (OverloadGovernor::ShouldShed(pressure, pending.priority)) {
      counters_.accepted.fetch_add(1, std::memory_order_relaxed);
      counters_.accepted_by_class[cls].fetch_add(1, std::memory_order_relaxed);
      metrics.counter(obs::names::kServeAcceptedTotal).Increment();
      metrics.counter(ClassSeriesName(obs::names::kServeAcceptedTotal,
                                      pending.priority))
          .Increment();
      counters_.shed_overload.fetch_add(1, std::memory_order_relaxed);
      counters_.shed_by_class[cls].fetch_add(1, std::memory_order_relaxed);
      metrics.counter(obs::names::kServeShedTotal).Increment();
      metrics.counter(ClassSeriesName(obs::names::kServeShedTotal,
                                      pending.priority))
          .Increment();
      VettingResult result;
      result.status = VetStatus::kShedOverload;
      result.model_version = model_.version();
      result.error = PressureStateName(pressure);
      result.total_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - entered_at)
              .count();
      metrics.histogram(obs::names::kServeE2eLatencyMs).Observe(result.total_ms);
      metrics
          .histogram(ClassSeriesName(obs::names::kServeE2eLatencyMs,
                                     pending.priority))
          .Observe(result.total_ms);
      if (pending.trace.sampled()) {
        obs::StageSpan submit_span;
        submit_span.stage = obs::stages::kSubmit;
        submit_span.start_ms = collector.ToEpochMs(entered_at);
        submit_span.duration_ms = result.total_ms;
        collector.Record(pending.trace.trace_id, submit_span);
        std::vector<obs::StageMs> breakdown;
        breakdown.push_back({obs::stages::kSubmit, result.total_ms});
        obs::ObserveStageBreakdown(breakdown, result.total_ms);
        collector.Complete(pending.trace.trace_id,
                           VetStatusName(result.status), /*from_cache=*/false,
                           std::move(breakdown), result.total_ms);
      }
      DeliverResult(pending, std::move(result));
      observe_admission();
      return future;
    }
  }

  // The submit span must be recorded BEFORE the push: once the record is in a
  // shard queue the scheduler may pop, resolve, and seal the trace faster
  // than this thread runs another statement.
  pending.enqueued_at = Clock::now();
  const obs::TraceContext trace = pending.trace;  // Survives the move below.
  if (trace.sampled()) {
    obs::StageSpan span;
    span.stage = obs::stages::kSubmit;
    span.start_ms = collector.ToEpochMs(entered_at);
    span.duration_ms =
        std::chrono::duration<double, std::milli>(pending.enqueued_at - entered_at)
            .count();
    span.queue_depth = shards_.ApproxDepth();
    collector.Record(trace.trace_id, span);
  }

  // Admission-control rejections seal the trace with an empty breakdown (the
  // submission never entered the pipeline, so it must not feed the per-stage
  // histograms — those partition *resolved* submissions only).
  auto complete_rejected = [&collector, &trace] {
    if (trace.sampled()) {
      collector.Complete(trace.trace_id, "rejected", /*from_cache=*/false, {},
                         0.0);
    }
  };

  switch (shards_.TryPush(std::move(pending))) {
    case AdmissionOutcome::kAccepted:
      counters_.accepted.fetch_add(1, std::memory_order_relaxed);
      counters_.accepted_by_class[cls].fetch_add(1, std::memory_order_relaxed);
      metrics.counter(obs::names::kServeAcceptedTotal).Increment();
      metrics
          .counter(ClassSeriesName(obs::names::kServeAcceptedTotal,
                                   static_cast<Priority>(cls)))
          .Increment();
      metrics.gauge(obs::names::kServeQueueDepth)
          .Set(static_cast<double>(shards_.ApproxDepth()));
      observe_admission();
      return future;
    case AdmissionOutcome::kQueueFull:
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      metrics.counter(obs::names::kServeRejectedTotal).Increment();
      complete_rejected();
      return util::Err("admission queue full");
    case AdmissionOutcome::kClosed:
      break;
  }
  counters_.rejected.fetch_add(1, std::memory_order_relaxed);
  metrics.counter(obs::names::kServeRejectedTotal).Increment();
  complete_rejected();
  return util::Err("service is shut down");
}

std::optional<CachedVerdict> VettingService::PeekCachedVerdict(
    const std::string& digest) {
  return cache_.Get(digest, model_.version());
}

bool VettingService::WouldShed(Priority priority) {
  if (!config_.overload.shed) return false;
  const size_t backlog =
      shards_.ApproxDepth() + pool_.ApproxBacklogBatches() * batch_size_hint_ +
      (ingress_backlog_probe_ ? ingress_backlog_probe_() : 0);
  const PressureState pressure = governor_.Evaluate(
      backlog, shards_.class_capacity(), ingest::ApkBlob::PoolBytes());
  return OverloadGovernor::ShouldShed(pressure, priority);
}

void VettingService::SetIngressBacklogProbe(std::function<size_t()> probe) {
  ingress_backlog_probe_ = std::move(probe);
}

void VettingService::RegisterFrontDoor(std::function<void()> stop) {
  front_door_stop_ = std::move(stop);
}

void VettingService::Shutdown() {
  // call_once doubles as the idempotency latch AND the concurrent-shutdown
  // barrier: a second caller blocks until the first teardown completes, so
  // "Shutdown returned" always means "everything is down".
  std::call_once(shutdown_once_, [this] {
    // Teardown order: gateway → admission → scheduler → pool → store →
    // runtime. The front door quiesces FIRST, while admission is still open,
    // so uploads in flight drain to real verdicts instead of rejections; the
    // runtime stops LAST, while every layer whose strand/timer tasks it may
    // still run is alive.
    if (front_door_stop_) {
      front_door_stop_();
    }
    shut_down_.store(true, std::memory_order_release);
    // Scheduler must be running to drain whatever is queued (covers the
    // start_paused case where Start() was never called). The scheduler hands
    // its last batches to the pool before Join() returns, and only then may
    // the pool close — so every accepted submission resolves.
    scheduler_.Start();
    shards_.Close();
    scheduler_.Join();
    pool_.Close();
    // Only after pool_.Close() have all in-flight completions run, so every
    // verdict this process produced has been handed to the store — flush the
    // group-commit tail now, while the store is still alive. (Flushing before
    // the pool drains would race the last appends and lose them to a crash.)
    if (store_ != nullptr) {
      auto flushed = store_->Flush();
      if (!flushed.ok()) {
        APICHECKER_LOG(Warning) << "verdict store flush at shutdown: "
                                << flushed.error();
      }
    }
    // Every layer is drained; no task can be scheduled anymore. Stopping the
    // runtime now (not in ~VettingService) guarantees stale strand/timer
    // tasks can never touch a destroyed member.
    runtime_->Shutdown();
    APICHECKER_SLOG(Info, "serve.drained")
        .With("accepted", counters_.accepted.load())
        .With("resolved", counters_.resolved());
  });
}

uint32_t VettingService::SwapModel(core::ApiChecker next) {
  counters_.model_swaps.fetch_add(1, std::memory_order_relaxed);
  return model_.Swap(std::move(next));
}

util::Result<uint32_t> VettingService::SwapModelFromBlob(std::span<const uint8_t> blob) {
  auto version = model_.SwapFromBlob(universe_, blob);
  if (version.ok()) {
    counters_.model_swaps.fetch_add(1, std::memory_order_relaxed);
  }
  return version;
}

void VettingService::AttachToRegistry(market::ModelRegistry& registry) {
  registry.SetPromotionListener([this](const market::ModelRecord& record) {
    auto swapped = SwapModelFromBlob(record.blob);
    if (!swapped.ok()) {
      APICHECKER_LOG(Error) << "registry promotion not deployed: " << swapped.error();
    }
  });
}

ServiceStats VettingService::stats() const {
  ServiceStats stats;
  stats.submitted = counters_.submitted.load(std::memory_order_relaxed);
  stats.accepted = counters_.accepted.load(std::memory_order_relaxed);
  stats.rejected = counters_.rejected.load(std::memory_order_relaxed);
  stats.completed = counters_.completed.load(std::memory_order_relaxed);
  stats.deadline_expired = counters_.deadline_expired.load(std::memory_order_relaxed);
  stats.parse_errors = counters_.parse_errors.load(std::memory_order_relaxed);
  stats.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
  stats.warm_start_hits = counters_.warm_start_hits.load(std::memory_order_relaxed);
  stats.model_swaps = counters_.model_swaps.load(std::memory_order_relaxed);
  stats.batches = counters_.batches.load(std::memory_order_relaxed);
  stats.rejected_unhealthy =
      counters_.rejected_unhealthy.load(std::memory_order_relaxed);
  stats.shed_overload = counters_.shed_overload.load(std::memory_order_relaxed);
  for (size_t c = 0; c < kNumPriorityClasses; ++c) {
    stats.accepted_by_class[c] =
        counters_.accepted_by_class[c].load(std::memory_order_relaxed);
    stats.completed_by_class[c] =
        counters_.completed_by_class[c].load(std::memory_order_relaxed);
    stats.expired_by_class[c] =
        counters_.expired_by_class[c].load(std::memory_order_relaxed);
    stats.shed_by_class[c] =
        counters_.shed_by_class[c].load(std::memory_order_relaxed);
  }
  const FarmPoolStats pool_stats = pool_.stats();
  stats.farm_faults = pool_stats.faults;
  stats.farm_retries = pool_stats.retries;
  return stats;
}

}  // namespace apichecker::serve
