#include "serve/submission_shards.h"

#include <algorithm>
#include <functional>

namespace apichecker::serve {

SubmissionShards::SubmissionShards(size_t num_shards, size_t per_shard_capacity)
    : per_shard_capacity_(std::max<size_t>(1, per_shard_capacity)) {
  shards_.reserve(std::max<size_t>(1, num_shards));
  for (size_t i = 0; i < std::max<size_t>(1, num_shards); ++i) {
    shards_.push_back(
        std::make_unique<util::BoundedQueue<PendingSubmission>>(per_shard_capacity_));
  }
}

size_t SubmissionShards::ShardIndexFor(const PendingSubmission& pending) const {
  return std::hash<std::string>{}(pending.digest()) % shards_.size();
}

uint64_t SubmissionShards::total_pushes() const {
  std::lock_guard<std::mutex> lock(signal_mu_);
  return pushes_;
}

AdmissionOutcome SubmissionShards::TryPush(PendingSubmission pending) {
  {
    std::lock_guard<std::mutex> lock(signal_mu_);
    if (closed_) {
      return AdmissionOutcome::kClosed;
    }
  }
  const size_t shard = ShardIndexFor(pending);
  const bool urgent = pending.priority > 0;
  if (!shards_[shard]->TryPush(std::move(pending), urgent)) {
    return shards_[shard]->closed() ? AdmissionOutcome::kClosed
                                    : AdmissionOutcome::kQueueFull;
  }
  {
    std::lock_guard<std::mutex> lock(signal_mu_);
    ++pushes_;
  }
  signal_cv_.notify_one();
  return AdmissionOutcome::kAccepted;
}

std::optional<PendingSubmission> SubmissionShards::TryPopAny() {
  size_t start;
  {
    std::lock_guard<std::mutex> lock(signal_mu_);
    start = cursor_;
    cursor_ = (cursor_ + 1) % shards_.size();
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (auto pending = shards_[(start + i) % shards_.size()]->TryPop()) {
      // Every pop path funnels through here: stamp the end of the shard-queue
      // wait so latency attribution never depends on which pop variant ran.
      pending->popped_at = Clock::now();
      return pending;
    }
  }
  return std::nullopt;
}

std::optional<PendingSubmission> SubmissionShards::PopAnyFor(
    std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    // Read the push counter BEFORE sweeping: a push that lands mid-sweep
    // changes the counter, so the wait below wakes instead of stalling.
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(signal_mu_);
      seen = pushes_;
    }
    if (auto pending = TryPopAny()) {
      return pending;
    }
    std::unique_lock<std::mutex> lock(signal_mu_);
    if (closed_ && pushes_ == seen) {
      return std::nullopt;  // Closed and the sweep found nothing: drained.
    }
    if (!signal_cv_.wait_until(lock, deadline,
                               [&] { return pushes_ != seen || closed_; })) {
      return std::nullopt;  // Timed out.
    }
  }
}

std::optional<PendingSubmission> SubmissionShards::PopAnyBlocking() {
  for (;;) {
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(signal_mu_);
      seen = pushes_;
    }
    if (auto pending = TryPopAny()) {
      return pending;
    }
    std::unique_lock<std::mutex> lock(signal_mu_);
    if (closed_ && pushes_ == seen) {
      return std::nullopt;  // Closed and the sweep found nothing: drained.
    }
    signal_cv_.wait(lock, [&] { return pushes_ != seen || closed_; });
  }
}

void SubmissionShards::Close() {
  {
    std::lock_guard<std::mutex> lock(signal_mu_);
    closed_ = true;
  }
  for (auto& shard : shards_) {
    shard->Close();
  }
  signal_cv_.notify_all();
}

bool SubmissionShards::closed() const {
  std::lock_guard<std::mutex> lock(signal_mu_);
  return closed_;
}

size_t SubmissionShards::ApproxDepth() const {
  size_t depth = 0;
  for (const auto& shard : shards_) {
    depth += shard->size();
  }
  return depth;
}

}  // namespace apichecker::serve
