#include "serve/submission_shards.h"

#include <algorithm>
#include <functional>
#include <numeric>

namespace apichecker::serve {

SubmissionShards::SubmissionShards(size_t num_shards, size_t per_shard_capacity,
                                   ClassWeights class_weights)
    : per_shard_capacity_(std::max<size_t>(1, per_shard_capacity)) {
  for (size_t c = 0; c < kNumPriorityClasses; ++c) {
    weights_[c] = std::max<uint32_t>(1, class_weights[c]);
    total_weight_ += weights_[c];
  }
  shards_.resize(std::max<size_t>(1, num_shards));
  for (Shard& shard : shards_) {
    for (auto& lane : shard) {
      lane = std::make_unique<util::BoundedQueue<PendingSubmission>>(
          per_shard_capacity_);
    }
  }
}

size_t SubmissionShards::ShardIndexFor(const PendingSubmission& pending) const {
  return std::hash<std::string>{}(pending.digest()) % shards_.size();
}

uint64_t SubmissionShards::total_pushes() const {
  std::lock_guard<std::mutex> lock(signal_mu_);
  return pushes_;
}

AdmissionOutcome SubmissionShards::TryPush(PendingSubmission pending) {
  {
    std::lock_guard<std::mutex> lock(signal_mu_);
    if (closed_) {
      return AdmissionOutcome::kClosed;
    }
  }
  const size_t shard = ShardIndexFor(pending);
  const size_t lane = static_cast<size_t>(pending.priority);
  if (!shards_[shard][lane]->TryPush(std::move(pending))) {
    return shards_[shard][lane]->closed() ? AdmissionOutcome::kClosed
                                          : AdmissionOutcome::kQueueFull;
  }
  std::function<void()> listener;
  {
    std::lock_guard<std::mutex> lock(signal_mu_);
    ++pushes_;
    listener = push_listener_;
  }
  signal_cv_.notify_one();
  if (listener) listener();
  return AdmissionOutcome::kAccepted;
}

void SubmissionShards::SetPushListener(std::function<void()> listener) {
  std::lock_guard<std::mutex> lock(signal_mu_);
  push_listener_ = std::move(listener);
}

std::optional<PendingSubmission> SubmissionShards::TryPopAny() {
  // Smooth weighted round-robin: every class accrues its weight, the classes
  // are swept richest-first (ties break toward the more urgent class), and
  // the class that yields a submission pays the total weight. An empty sweep
  // refunds the accrual so idle periods don't bank unbounded credit.
  size_t start;
  std::array<size_t, kNumPriorityClasses> order;
  {
    std::lock_guard<std::mutex> lock(signal_mu_);
    start = cursor_;
    cursor_ = (cursor_ + 1) % shards_.size();
    for (size_t c = 0; c < kNumPriorityClasses; ++c) {
      credit_[c] += weights_[c];
      order[c] = c;
    }
    std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      return credit_[a] > credit_[b];
    });
  }
  for (size_t lane : order) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (auto pending = shards_[(start + i) % shards_.size()][lane]->TryPop()) {
        // Every pop path funnels through here: stamp the end of the shard-
        // queue wait so latency attribution never depends on which pop
        // variant ran.
        pending->popped_at = Clock::now();
        std::lock_guard<std::mutex> lock(signal_mu_);
        credit_[lane] -= static_cast<int64_t>(total_weight_);
        return pending;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(signal_mu_);
    for (size_t c = 0; c < kNumPriorityClasses; ++c) {
      credit_[c] -= weights_[c];
    }
  }
  return std::nullopt;
}

std::optional<PendingSubmission> SubmissionShards::PopAnyFor(
    std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    // Read the push counter BEFORE sweeping: a push that lands mid-sweep
    // changes the counter, so the wait below wakes instead of stalling.
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(signal_mu_);
      seen = pushes_;
    }
    if (auto pending = TryPopAny()) {
      return pending;
    }
    std::unique_lock<std::mutex> lock(signal_mu_);
    if (closed_ && pushes_ == seen) {
      return std::nullopt;  // Closed and the sweep found nothing: drained.
    }
    if (!signal_cv_.wait_until(lock, deadline,
                               [&] { return pushes_ != seen || closed_; })) {
      return std::nullopt;  // Timed out.
    }
  }
}

std::optional<PendingSubmission> SubmissionShards::PopAnyBlocking() {
  for (;;) {
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(signal_mu_);
      seen = pushes_;
    }
    if (auto pending = TryPopAny()) {
      return pending;
    }
    std::unique_lock<std::mutex> lock(signal_mu_);
    if (closed_ && pushes_ == seen) {
      return std::nullopt;  // Closed and the sweep found nothing: drained.
    }
    signal_cv_.wait(lock, [&] { return pushes_ != seen || closed_; });
  }
}

void SubmissionShards::Close() {
  std::function<void()> listener;
  {
    std::lock_guard<std::mutex> lock(signal_mu_);
    closed_ = true;
    listener = push_listener_;
  }
  for (Shard& shard : shards_) {
    for (auto& lane : shard) {
      lane->Close();
    }
  }
  signal_cv_.notify_all();
  // After the lanes are closed, so a listener-triggered sweep observes the
  // final state and can flush its partial batch immediately.
  if (listener) listener();
}

bool SubmissionShards::closed() const {
  std::lock_guard<std::mutex> lock(signal_mu_);
  return closed_;
}

size_t SubmissionShards::ApproxDepth() const {
  size_t depth = 0;
  for (const Shard& shard : shards_) {
    for (const auto& lane : shard) {
      depth += lane->size();
    }
  }
  return depth;
}

size_t SubmissionShards::ApproxDepthByClass(Priority priority) const {
  const size_t lane = static_cast<size_t>(priority);
  size_t depth = 0;
  for (const Shard& shard : shards_) {
    depth += shard[lane]->size();
  }
  return depth;
}

}  // namespace apichecker::serve
