// Batch scheduler: drains the sharded submission queues into farm-sized
// batches and drives each batch through parse -> emulate -> classify ->
// cache-fill. Flushes on batch-full OR when the oldest queued member has
// lingered past max_linger — the classic throughput/latency coalescing
// trade-off (a full farm batch keeps all emulators busy; the linger cap keeps
// a trickle of submissions from waiting forever). When the batch is empty the
// scheduler blocks on the shards' condition variable, so the first submission
// after an idle stretch wakes it immediately (no poll granularity).
//
// Since the unified-runtime refactor the scheduler owns NO thread: it is a
// strand of tasks on the rt::Runtime. A shard push schedules a pump task
// (coalesced — at most one queued at a time); the pump assembles the batch
// and arms a linger timer at min(first-member + max_linger, earliest member
// deadline); timer expiry flushes the partial batch. The strand serializes
// pump, timer, and flush, so batch state needs no lock of its own.
//
// Emulation routes through a FarmPool: triage (deadline expiry, digest-cache
// hits, in-batch dedup) runs on the scheduler strand over blob handles only —
// APK parsing is the pool's pipelined parse stage, run by the first worker
// that dequeues the batch, so neither the submitter nor the scheduler ever
// blocks on ZIP/dex decoding. Parse failures fast-fail with kParseError from
// the worker; the rest are emulated and classified asynchronously when their
// farm finishes — so M farms stay busy while the scheduler assembles the next
// batch. A pool-level failure (all farms down, retry budget exhausted)
// resolves every member with kRejectedUnhealthy rather than dropping it.
// Acquires one model snapshot per batch, so hot-swaps take effect at the next
// batch boundary and a batch is never classified by two different models.

#ifndef APICHECKER_SERVE_BATCH_SCHEDULER_H_
#define APICHECKER_SERVE_BATCH_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "rt/runtime.h"
#include "serve/digest_cache.h"
#include "serve/farm_pool.h"
#include "serve/serving_model.h"
#include "serve/submission_shards.h"
#include "serve/types.h"
#include "store/verdict_store.h"

namespace apichecker::serve {

struct BatchSchedulerConfig {
  // Target batch size; defaults to one submission per farm emulator.
  size_t batch_size = 16;
  // Max time the oldest batch member may wait before a partial flush.
  std::chrono::milliseconds max_linger{20};
};

class BatchScheduler {
 public:
  // `store` may be null (persistence disabled); when set, every fresh verdict
  // is appended to it right after the cache fill, on the pool dispatch task.
  // `runtime` hosts the pump strand and linger timers; it must outlive the
  // shards/pool (the service shuts it down LAST in the teardown sequence).
  BatchScheduler(BatchSchedulerConfig config, rt::Runtime& runtime,
                 SubmissionShards& shards, DigestCache& cache,
                 ServingModel& model, FarmPool& pool, ServiceCounters& counters,
                 store::VerdictStore* store = nullptr);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  // Idempotent. Registers the shard push listener and pumps any backlog;
  // assembly work then runs as runtime tasks until the shards are closed and
  // drained.
  void Start();

  // Blocks until the shards are closed and drained and the final partial
  // batch has been handed to the pool (or resolved). The pool must be
  // drained separately to resolve in-flight batches (the shards must already
  // be closed, or this blocks until they are). No-op before Start().
  void Join();

  bool running() const {
    return started_.load(std::memory_order_acquire) && !drained();
  }

 private:
  void SchedulePump();
  void Pump();
  void OnLingerTimer(uint64_t generation);
  void ArmLingerTimer();
  void Flush();
  void ExecuteBatch(std::vector<PendingSubmission> batch);
  bool drained() const;

  BatchSchedulerConfig config_;
  rt::Runtime& runtime_;
  SubmissionShards& shards_;
  DigestCache& cache_;
  ServingModel& model_;
  FarmPool& pool_;
  ServiceCounters& counters_;
  store::VerdictStore* store_;  // Not owned; null when persistence is off.

  std::shared_ptr<rt::Strand> strand_;
  std::atomic<bool> started_{false};
  // Coalesces push notifications: at most one pump task queued at a time.
  std::atomic<bool> pump_scheduled_{false};

  // Strand-confined assembly state (only ever touched by strand tasks).
  std::vector<PendingSubmission> batch_;
  Clock::time_point linger_deadline_{};
  rt::CancelToken linger_timer_;
  uint64_t timer_generation_ = 0;
  bool timer_armed_ = false;
  Clock::time_point armed_deadline_{};

  // Join/running signalling.
  mutable std::mutex join_mu_;
  std::condition_variable join_cv_;
  bool drained_ = false;
};

}  // namespace apichecker::serve

#endif  // APICHECKER_SERVE_BATCH_SCHEDULER_H_
