// Batch scheduler: drains the sharded submission queues into DeviceFarm-sized
// batches and drives each batch through parse -> emulate -> classify ->
// cache-fill. Flushes on batch-full OR when the oldest queued member has
// lingered past max_linger — the classic throughput/latency coalescing
// trade-off (a full farm batch keeps all emulators busy; the linger cap keeps
// a trickle of submissions from waiting forever). Acquires one model snapshot
// per batch, so hot-swaps take effect at the next batch boundary and a batch
// is never classified by two different models.

#ifndef APICHECKER_SERVE_BATCH_SCHEDULER_H_
#define APICHECKER_SERVE_BATCH_SCHEDULER_H_

#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "emu/farm.h"
#include "serve/digest_cache.h"
#include "serve/serving_model.h"
#include "serve/submission_shards.h"
#include "serve/types.h"

namespace apichecker::serve {

struct BatchSchedulerConfig {
  // Target batch size; defaults to one submission per farm emulator.
  size_t batch_size = 16;
  // Max time the oldest batch member may wait before a partial flush.
  std::chrono::milliseconds max_linger{20};
  // Poll granularity while the batch is empty (bounds shutdown latency).
  std::chrono::milliseconds idle_poll{50};
};

class BatchScheduler {
 public:
  BatchScheduler(BatchSchedulerConfig config, SubmissionShards& shards,
                 DigestCache& cache, ServingModel& model, emu::DeviceFarm& farm,
                 ServiceCounters& counters);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  // Idempotent. The scheduler thread runs until the shards are closed and
  // drained.
  void Start();

  // Joins the scheduler thread; every queued submission is resolved first
  // (the shards must already be closed, or this blocks until they are).
  void Join();

  bool running() const { return thread_.joinable(); }

 private:
  void Loop();
  void ExecuteBatch(std::vector<PendingSubmission> batch);

  BatchSchedulerConfig config_;
  SubmissionShards& shards_;
  DigestCache& cache_;
  ServingModel& model_;
  emu::DeviceFarm& farm_;
  ServiceCounters& counters_;
  std::thread thread_;
};

}  // namespace apichecker::serve

#endif  // APICHECKER_SERVE_BATCH_SCHEDULER_H_
