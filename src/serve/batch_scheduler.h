// Batch scheduler: drains the sharded submission queues into farm-sized
// batches and drives each batch through parse -> emulate -> classify ->
// cache-fill. Flushes on batch-full OR when the oldest queued member has
// lingered past max_linger — the classic throughput/latency coalescing
// trade-off (a full farm batch keeps all emulators busy; the linger cap keeps
// a trickle of submissions from waiting forever). When the batch is empty the
// scheduler blocks on the shards' condition variable, so the first submission
// after an idle stretch wakes it immediately (no poll granularity).
//
// Emulation routes through a FarmPool: triage (deadline expiry, digest-cache
// hits, in-batch dedup) runs on the scheduler thread over blob handles only —
// APK parsing is the pool's pipelined parse stage, run by the first worker
// that dequeues the batch, so neither the submitter nor the scheduler ever
// blocks on ZIP/dex decoding. Parse failures fast-fail with kParseError from
// the worker; the rest are emulated and classified asynchronously when their
// farm finishes — so M farms stay busy while the scheduler assembles the next
// batch. A pool-level failure (all farms down, retry budget exhausted)
// resolves every member with kRejectedUnhealthy rather than dropping it.
// Acquires one model snapshot per batch, so hot-swaps take effect at the next
// batch boundary and a batch is never classified by two different models.

#ifndef APICHECKER_SERVE_BATCH_SCHEDULER_H_
#define APICHECKER_SERVE_BATCH_SCHEDULER_H_

#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "serve/digest_cache.h"
#include "serve/farm_pool.h"
#include "serve/serving_model.h"
#include "serve/submission_shards.h"
#include "serve/types.h"
#include "store/verdict_store.h"

namespace apichecker::serve {

struct BatchSchedulerConfig {
  // Target batch size; defaults to one submission per farm emulator.
  size_t batch_size = 16;
  // Max time the oldest batch member may wait before a partial flush.
  std::chrono::milliseconds max_linger{20};
};

class BatchScheduler {
 public:
  // `store` may be null (persistence disabled); when set, every fresh verdict
  // is appended to it right after the cache fill, on the pool worker thread.
  BatchScheduler(BatchSchedulerConfig config, SubmissionShards& shards,
                 DigestCache& cache, ServingModel& model, FarmPool& pool,
                 ServiceCounters& counters, store::VerdictStore* store = nullptr);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  // Idempotent. The scheduler thread runs until the shards are closed and
  // drained.
  void Start();

  // Joins the scheduler thread; every queued submission has been handed to
  // the pool (or resolved) first. The pool must be drained separately to
  // resolve in-flight batches (the shards must already be closed, or this
  // blocks until they are).
  void Join();

  bool running() const { return thread_.joinable(); }

 private:
  void Loop();
  void ExecuteBatch(std::vector<PendingSubmission> batch);

  BatchSchedulerConfig config_;
  SubmissionShards& shards_;
  DigestCache& cache_;
  ServingModel& model_;
  FarmPool& pool_;
  ServiceCounters& counters_;
  store::VerdictStore* store_;  // Not owned; null when persistence is off.
  std::thread thread_;
};

}  // namespace apichecker::serve

#endif  // APICHECKER_SERVE_BATCH_SCHEDULER_H_
