// Overload control for submission storms: a watermark state machine over
// queue depth and blob-pool bytes that decides, per traffic class, whether a
// submission is admitted or shed at the front door.
//
// The paper's market front end (§2, §5) absorbs bursty, heavily duplicated
// traffic; a storm must degrade bulk sweeps first, then rescans, and never
// developer-facing interactive submissions. The governor implements that
// lattice: state kPressure sheds kBulk, state kCritical sheds kBulk and
// kRescan, kInteractive is admitted in every state (its fate is then decided
// by its own bounded lane, not by the storm in the bulk lanes).
//
// Hysteresis: the state escalates as soon as any watermark is crossed but
// only releases once queue depth falls below the (lower) release watermark
// and the blob pool is back under its pressure watermark — so the state does
// not flap at the boundary while producers and consumers race.

#ifndef APICHECKER_SERVE_OVERLOAD_H_
#define APICHECKER_SERVE_OVERLOAD_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "serve/types.h"

namespace apichecker::serve {

enum class PressureState : uint8_t {
  kNormal = 0,    // All classes admitted.
  kPressure = 1,  // Shed bulk.
  kCritical = 2,  // Shed bulk and rescan; interactive only.
};

inline const char* PressureStateName(PressureState state) {
  switch (state) {
    case PressureState::kNormal:
      return "normal";
    case PressureState::kPressure:
      return "pressure";
    case PressureState::kCritical:
      return "critical";
  }
  return "unknown";
}

struct OverloadConfig {
  // Master switch. Off preserves the historical binary accept/reject
  // admission (no shedding, no SLO-default deadlines' shed path).
  bool shed = false;
  // Queue-depth watermarks as a fraction of one class lane's total capacity
  // (num_shards * per_shard_capacity). Depth is the sum across all lanes, so
  // a bulk-only storm alone can drive the ratio past 1.0.
  double queue_pressure = 0.70;
  double queue_critical = 0.90;
  double queue_release = 0.50;  // Hysteresis floor for de-escalation.
  // Blob-pool watermarks in bytes; 0 disables the pool input. These gate on
  // ingest::ApkBlob::PoolBytes(), i.e. heap-resident payload only — spilled
  // blobs never count against them.
  uint64_t pool_pressure_bytes = 0;
  uint64_t pool_critical_bytes = 0;
  // Weighted-fair pop shares for SubmissionShards, indexed by Priority.
  std::array<uint32_t, kNumPriorityClasses> class_weights{{8, 3, 1}};
  // Default relative deadline per class (the class SLO). Applied when a
  // submission carries no explicit deadline; zero means none.
  std::array<std::chrono::milliseconds, kNumPriorityClasses> class_slo{};
};

// Thread-safe; Evaluate() is called on every admission.
class OverloadGovernor {
 public:
  explicit OverloadGovernor(const OverloadConfig& config);

  // Re-evaluates the state machine against current load and returns the
  // (possibly escalated or released) state. `queue_capacity` is one class
  // lane's total capacity; `pool_bytes` is the heap blob pool's current size.
  PressureState Evaluate(size_t queue_depth, size_t queue_capacity,
                         uint64_t pool_bytes);

  // Whether a submission of `priority` is shed in `state`. Static because the
  // shed lattice is fixed; only the state is dynamic.
  static bool ShouldShed(PressureState state, Priority priority);

  PressureState state() const;
  uint64_t transitions() const;

 private:
  const OverloadConfig config_;
  mutable std::mutex mu_;
  PressureState state_ = PressureState::kNormal;
  uint64_t transitions_ = 0;
};

}  // namespace apichecker::serve

#endif  // APICHECKER_SERVE_OVERLOAD_H_
