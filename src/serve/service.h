// VettingService: the online serving facade over the whole pipeline. Accepts
// a stream of APK submissions (the paper's production reality: T-Market
// pushes ~10K APKs/day through APICHECKER and swaps the model monthly with
// zero downtime, §5), applies admission control on sharded bounded queues,
// resolves byte-identical resubmissions from the digest cache, coalesces the
// rest into device-farm batches, and classifies against an RCU-hot-swappable
// model snapshot.
//
// Invariants:
//  * Backpressure, not OOM — a full shard rejects at Submit() with a Result
//    error; accepted work is bounded by num_shards * shard_capacity.
//  * No lost submissions — after Shutdown(), accepted == completed +
//    deadline_expired + parse_errors + rejected_unhealthy + shed_overload.
//    Even with every farm circuit-broken or the overload governor shedding,
//    a submission resolves visibly; it never hangs.
//  * Graceful degradation — under pressure the governor sheds bulk first,
//    then rescan, never interactive (see serve/overload.h).
//  * No torn models — each batch classifies under exactly one ModelSnapshot;
//    swaps publish atomically and in-flight batches pin the old snapshot.

#ifndef APICHECKER_SERVE_SERVICE_H_
#define APICHECKER_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>

#include "core/checker.h"
#include "emu/farm.h"
#include "fabric/remote_client.h"
#include "market/model_registry.h"
#include "rt/runtime.h"
#include "serve/batch_scheduler.h"
#include "serve/digest_cache.h"
#include "serve/farm_pool.h"
#include "serve/overload.h"
#include "serve/serving_model.h"
#include "serve/submission_shards.h"
#include "serve/types.h"
#include "store/verdict_store.h"
#include "util/result.h"

namespace apichecker::serve {

struct ServiceConfig {
  size_t num_shards = 4;
  size_t shard_capacity = 256;   // Bounded admission: max queued per class lane.
  size_t cache_capacity = 8192;  // Digest-cache entries.
  // Overload control: watermark shedding, weighted-fair class shares, and
  // per-class SLO default deadlines (see serve/overload.h).
  OverloadConfig overload;
  emu::FarmConfig farm;  // Per-farm template; batch_size defaults to
                         // farm.num_emulators.
  FarmPoolConfig pool;   // Farm count, failover budget, breaker, fault plan.
  BatchSchedulerConfig scheduler;
  // Persistent verdict store; store.dir empty = persistence disabled. When
  // set, verdicts survive restarts: recovery replays them into the digest
  // cache (stale model versions skipped) before the scheduler starts.
  store::StoreConfig store;
  // When true the scheduler thread is not started; submissions queue up until
  // Start() — the drain-control switch (and how tests fill queues
  // deterministically).
  bool start_paused = false;
  // Fraction of submissions stamped with a TraceContext at admission (0 = off,
  // 1.0 = every submission — tests; 0.01 = the bench's production-like rate).
  // Implemented as deterministic 1-in-N on the submission id, so sampled
  // traffic is reproducible run to run.
  double trace_sample_rate = 0.0;
  // Farm fabric: when non-empty, the pool dispatches to one `apichecker farm`
  // worker process per endpoint (RemoteFarmClient) instead of in-process
  // farms; pool.num_farms is overridden by the endpoint count. The paper's
  // actual deployment shape — front-end and emulator tier as separate,
  // independently restartable processes.
  std::vector<std::string> fabric_endpoints;
  // Template for every remote client (endpoint and farm_id are assigned per
  // entry above).
  fabric::RemoteClientConfig fabric_client;
  // Worker threads of the unified runtime (the one executor hosting the
  // scheduler strand, farm dispatch tasks, fabric heartbeat timers, and
  // gateway upload state machines). 0 = auto: max(hardware_concurrency,
  // 2 * farms + 4) — the floor keeps the executor ahead of the worst-case
  // number of simultaneously-blocking farm dispatches on small machines.
  size_t rt_threads = 0;
};

class VettingService {
 public:
  // `initial_model` must be trained; it is published as model version 1.
  VettingService(const android::ApiUniverse& universe, ServiceConfig config,
                 core::ApiChecker initial_model);
  ~VettingService();

  VettingService(const VettingService&) = delete;
  VettingService& operator=(const VettingService&) = delete;

  // Admission: constant-time regardless of APK size — the blob carries its
  // digest (hashed once, incrementally, at ingest), so Submit() returns as
  // soon as the handle is routed; parsing happens later on a pool worker. A
  // digest the cache already holds for the live model resolves immediately
  // (fast-path), never touching a shard queue. Errors: "admission queue full"
  // (backpressure) or "service is shut down". The future resolves when the
  // submission is classified, expires, or fails to parse — never silently
  // dropped.
  util::Result<std::future<VettingResult>> Submit(Submission submission);

  // Submit variant with an asynchronous completion hook: `on_result` runs
  // (after the future is fulfilled) on whichever runtime task resolved the
  // submission. This is how the event-driven gateway gets its verdict without
  // parking a thread on future.get(). The hook must be cheap and
  // non-blocking; it is NOT invoked on admission errors (the returned Err
  // carries those). The returned future remains valid and may be ignored.
  util::Result<std::future<VettingResult>> SubmitWithCallback(
      Submission submission, std::function<void(const VettingResult&)> on_result);

  // Early-admission hooks for the network ingest gateway, which must be able
  // to answer BEFORE an upload body finishes arriving.
  //
  // PeekCachedVerdict: the digest-cache fastpath, exposed by digest alone — a
  // client that declares a digest it already uploaded gets the live model's
  // verdict without transferring a single body byte. Touches the cache's LRU
  // state but none of the service counters (the upload never became a
  // submission).
  std::optional<CachedVerdict> PeekCachedVerdict(const std::string& digest);
  // WouldShed: runs the overload governor's watermark state machine against
  // the current end-to-end backlog (shards + farm batches + network ingress)
  // and reports whether a submission of `priority` would be shed right now.
  // The gateway uses it to refuse an upload at open time instead of after the
  // multi-MB body has been received, parsed, and pooled.
  bool WouldShed(Priority priority);
  // Registers a probe for in-flight network-upload backlog (the gateway's
  // active-upload count). Its value joins the governor's depth input so
  // uploads still on the wire count as pressure before they reach a shard
  // queue. Must be set before traffic flows (not thread-safe against a
  // concurrent Submit).
  void SetIngressBacklogProbe(std::function<size_t()> probe);

  // Starts the scheduler if start_paused was set. Idempotent.
  void Start();

  // Registers the network front door's quiesce hook (the gateway's Stop).
  // Shutdown() invokes it FIRST, before admission closes, so in-flight
  // uploads drain to verdicts instead of being rejected mid-body. Must be set
  // before Shutdown may run; pass nullptr to detach (a gateway being
  // destroyed before the service must deregister).
  void RegisterFrontDoor(std::function<void()> stop);

  // Tears the service down in dependency order: front door (gateway) →
  // admission → scheduler drain → farm pool → store flush → runtime. The
  // runtime stops LAST, while every layer whose tasks it may still run is
  // alive — this is the lifetime contract that makes stale timer/strand
  // tasks safe. Idempotent and safe to call concurrently (late callers block
  // until the first completes); the destructor calls it.
  void Shutdown();

  // Hot-swap: publishes a new model; in-flight batches finish on the old
  // snapshot. Returns the new version.
  uint32_t SwapModel(core::ApiChecker next);
  // Same, from a core/model_store blob (what market::ModelRegistry archives).
  util::Result<uint32_t> SwapModelFromBlob(std::span<const uint8_t> blob);

  // Wires the registry's promotion event to SwapModelFromBlob, so a model
  // promoted by the monthly evolution loop goes live here without a restart.
  // The registry must outlive this service or be detached first.
  void AttachToRegistry(market::ModelRegistry& registry);

  ServiceStats stats() const;
  // Current watermark state / lifetime transitions of the overload governor.
  PressureState pressure_state() const { return governor_.state(); }
  uint64_t pressure_transitions() const { return governor_.transitions(); }
  FarmPoolStats farm_pool_stats() const { return pool_.stats(); }
  // Null when persistence is disabled or the store failed to open.
  const store::VerdictStore* verdict_store() const { return store_.get(); }
  uint32_t model_version() const { return model_.version(); }
  size_t queue_depth() const { return shards_.ApproxDepth(); }
  // Lifetime shard-queue pushes; lets tests prove the admission fast-path
  // resolved a duplicate without enqueueing it.
  uint64_t shard_pushes() const { return shards_.total_pushes(); }
  const ServiceConfig& config() const { return config_; }
  const DigestCache& cache() const { return cache_; }
  // The unified runtime hosting every asynchronous task of this service; the
  // gateway attaches its upload state machines here. Valid until Shutdown().
  rt::Runtime& runtime() { return *runtime_; }

 private:
  void WarmStartFromStore();

  const android::ApiUniverse& universe_;
  ServiceConfig config_;
  ServiceCounters counters_;
  DigestCache cache_;
  // Declared before pool_/scheduler_ so it outlives the tasks that append
  // to it; Shutdown() flushes it after the pool drains (see Shutdown()).
  std::unique_ptr<store::VerdictStore> store_;
  ServingModel model_;
  // Declared before every layer that posts to it. Destruction order is moot
  // (Shutdown() stops it explicitly, last), but construction order is not:
  // the pool/scheduler take it by reference.
  std::unique_ptr<rt::Runtime> runtime_;
  FarmPool pool_;
  SubmissionShards shards_;
  OverloadGovernor governor_;
  BatchScheduler scheduler_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<bool> shut_down_{false};
  std::once_flag shutdown_once_;
  std::function<void()> front_door_stop_;
  // In-flight network-upload depth, as submissions (empty = no gateway).
  std::function<size_t()> ingress_backlog_probe_;
  size_t sample_every_ = 0;  // 0 = tracing off; N = every Nth submission.
  // Resolved scheduler batch size (0-means-num_emulators already applied):
  // converts the farm pool's batch backlog into submissions for the governor.
  size_t batch_size_hint_ = 1;
};

}  // namespace apichecker::serve

#endif  // APICHECKER_SERVE_SERVICE_H_
