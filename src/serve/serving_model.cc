#include "serve/serving_model.h"

#include <utility>

#include "core/model_store.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace apichecker::serve {

ServingModel::ServingModel(core::ApiChecker initial) {
  current_ = std::make_shared<const ModelSnapshot>(1, std::move(initial));
  version_.store(1, std::memory_order_release);
  obs::MetricsRegistry::Default().gauge(obs::names::kServeModelVersion).Set(1.0);
}

std::shared_ptr<const ModelSnapshot> ServingModel::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint32_t ServingModel::Swap(core::ApiChecker next) {
  std::shared_ptr<const ModelSnapshot> fresh;
  uint32_t version;
  {
    std::lock_guard<std::mutex> lock(mu_);
    version = version_.load(std::memory_order_relaxed) + 1;
    fresh = std::make_shared<const ModelSnapshot>(version, std::move(next));
    current_ = std::move(fresh);
    version_.store(version, std::memory_order_release);
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  metrics.counter(obs::names::kServeModelSwapsTotal).Increment();
  metrics.gauge(obs::names::kServeModelVersion).Set(static_cast<double>(version));
  return version;
}

util::Result<uint32_t> ServingModel::SwapFromBlob(const android::ApiUniverse& universe,
                                                  std::span<const uint8_t> blob) {
  auto checker = core::DeserializeChecker(universe, blob);
  if (!checker.ok()) {
    return util::Err("serving model swap rejected: " + checker.error());
  }
  return Swap(std::move(*checker));
}

}  // namespace apichecker::serve
