#include "serve/overload.h"

#include "obs/metrics.h"
#include "obs/names.h"

namespace apichecker::serve {

OverloadGovernor::OverloadGovernor(const OverloadConfig& config)
    : config_(config) {
  obs::MetricsRegistry::Default().gauge(obs::names::kServePressureState).Set(0);
}

PressureState OverloadGovernor::Evaluate(size_t queue_depth,
                                         size_t queue_capacity,
                                         uint64_t pool_bytes) {
  const double ratio =
      queue_capacity == 0
          ? 0.0
          : static_cast<double>(queue_depth) / static_cast<double>(queue_capacity);
  const bool pool_pressure = config_.pool_pressure_bytes > 0 &&
                             pool_bytes >= config_.pool_pressure_bytes;
  const bool pool_critical = config_.pool_critical_bytes > 0 &&
                             pool_bytes >= config_.pool_critical_bytes;

  PressureState raw = PressureState::kNormal;
  if (ratio >= config_.queue_critical || pool_critical) {
    raw = PressureState::kCritical;
  } else if (ratio >= config_.queue_pressure || pool_pressure) {
    raw = PressureState::kPressure;
  }

  std::lock_guard<std::mutex> lock(mu_);
  PressureState next = state_;
  if (raw > state_) {
    // Escalate immediately: a crossed watermark means the storm is here.
    next = raw;
  } else if (raw < state_) {
    // Release only once depth has drained below the hysteresis floor and the
    // pool is out of pressure; otherwise hold the current state.
    if (ratio < config_.queue_release && !pool_pressure) {
      next = raw;
    }
  }
  if (next != state_) {
    state_ = next;
    ++transitions_;
    obs::MetricsRegistry& m = obs::MetricsRegistry::Default();
    m.gauge(obs::names::kServePressureState).Set(static_cast<double>(state_));
    m.counter(obs::names::kServePressureTransitionsTotal).Increment();
  }
  return state_;
}

bool OverloadGovernor::ShouldShed(PressureState state, Priority priority) {
  switch (state) {
    case PressureState::kNormal:
      return false;
    case PressureState::kPressure:
      return priority == Priority::kBulk;
    case PressureState::kCritical:
      return priority != Priority::kInteractive;
  }
  return false;
}

PressureState OverloadGovernor::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t OverloadGovernor::transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

}  // namespace apichecker::serve
