// Sharded LRU verdict cache keyed by the SHA-1 of the submitted APK bytes.
// Markets see heavy byte-identical resubmission traffic (re-uploads, cloned
// listings, semantically identical repacks — see "On Impact of Semantically
// Similar Apps in Android Malware Datasets"); a digest hit skips emulation
// entirely, which is the single biggest per-submission saving the serving
// layer has. Entries are stamped with the serving-model version that produced
// them so a hot-swap implicitly invalidates stale verdicts.

#ifndef APICHECKER_SERVE_DIGEST_CACHE_H_
#define APICHECKER_SERVE_DIGEST_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace apichecker::serve {

struct CachedVerdict {
  uint32_t model_version = 0;
  bool malicious = false;
  double score = 0.0;
  // True when the entry was replayed from the persistent verdict store at
  // startup rather than produced by this process — lets hit accounting prove
  // a warm start actually paid off.
  bool warm = false;
};

class DigestCache {
 public:
  // `capacity` is the total entry budget, split evenly across `num_shards`
  // independently locked LRU shards.
  explicit DigestCache(size_t capacity, size_t num_shards = 8);

  // Hit only when the entry exists AND was produced by `model_version`
  // (stale-model entries are evicted on sight). Refreshes LRU order.
  std::optional<CachedVerdict> Get(const std::string& digest, uint32_t model_version);

  // Insert-or-overwrite; evicts the shard's least-recently-used entry at
  // capacity.
  void Put(const std::string& digest, const CachedVerdict& verdict);

  size_t size() const;
  uint64_t evictions() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Most-recently-used at the front.
    std::list<std::pair<std::string, CachedVerdict>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, CachedVerdict>>::iterator>
        index;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& digest);

  const size_t capacity_;
  const size_t per_shard_capacity_;
  const size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace apichecker::serve

#endif  // APICHECKER_SERVE_DIGEST_CACHE_H_
